package topo

import "fmt"

// Components tallies the hardware needed by a network architecture, as in
// Table 1 of the paper. Counts cover the switching fabric; host NICs and
// host cables are identical across architectures and excluded.
type Components struct {
	Name string
	// Tiers of switch boxes between hosts and the top of the fabric.
	Tiers int
	// Hops a packet takes through switch chips host-to-host (worst case).
	Hops int
	// Chips is the number of switch ASICs.
	Chips int
	// Boxes is the number of discrete switch enclosures.
	Boxes int
	// Links is the number of physical inter-switch cables. Parallel
	// networks bundle one link per plane into a single cable (§6.1).
	Links int
}

// tiersFor returns the minimum number of folded-Clos tiers of ports-port
// switches needed to serve the given host count: a t-tier folded Clos of
// p-port switches supports 2*(p/2)^t hosts.
func tiersFor(hosts, ports int) int {
	cap := 2
	for t := 1; ; t++ {
		cap *= ports / 2
		if cap >= hosts {
			return t
		}
	}
}

// closChips returns the switch count of a t-tier folded Clos of p-port
// switches at full scale: (2t-1) * (p/2)^(t-1).
func closChips(t, p int) int {
	c := 2*t - 1
	for i := 0; i < t-1; i++ {
		c *= p / 2
	}
	return c
}

// closTopChips returns the top-tier (core) switch count: (p/2)^(t-1).
func closTopChips(t, p int) int {
	c := 1
	for i := 0; i < t-1; i++ {
		c *= p / 2
	}
	return c
}

// SerialScaleOut models a traditional fat tree built from discrete
// chipPorts-port switch boxes (Figure 2a; Table 1 row 1).
func SerialScaleOut(hosts, chipPorts int) Components {
	t := tiersFor(hosts, chipPorts)
	chips := closChips(t, chipPorts)
	top := closTopChips(t, chipPorts)
	return Components{
		Name:  fmt.Sprintf("serial scale-out (%d hosts, %d-port chips)", hosts, chipPorts),
		Tiers: t,
		Hops:  2*t - 1,
		Chips: chips,
		Boxes: chips,
		Links: (chips - top) * chipPorts / 2,
	}
}

// SerialChassis models a chassis-based fat tree (Figure 2b; Table 1 row 2):
// a 2-level fabric of chassisPorts-port boxes, each box internally a Clos
// of chipPorts-port chips. Spine chassis are non-blocking 3-stage
// (3*P/p chips); aggregation chassis are 2-stage (2*P/p chips), blocking
// internally but preserving end-to-end non-blocking operation as deployed
// in production Clos fabrics.
func SerialChassis(hosts, chassisPorts, chipPorts int) Components {
	t := tiersFor(hosts, chassisPorts)
	boxes := closChips(t, chassisPorts)
	topBoxes := closTopChips(t, chassisPorts)
	aggBoxes := boxes - topBoxes
	spineChips := 3 * chassisPorts / chipPorts
	aggChips := 2 * chassisPorts / chipPorts
	// Chip hops: through each aggregation chassis a packet crosses its
	// 2-stage fabric (2 chips), through the spine its 3-stage fabric
	// (3 chips): agg + spine + agg = 7 for t=2. Generally lower tiers are
	// 2-stage and the top is 3-stage.
	hops := 2*(2*(t-1)) + 3
	return Components{
		Name:  fmt.Sprintf("serial chassis (%d hosts, %d-port chassis)", hosts, chassisPorts),
		Tiers: t,
		Hops:  hops,
		Chips: aggBoxes*aggChips + topBoxes*spineChips,
		Boxes: boxes,
		Links: aggBoxes * chassisPorts / 2,
	}
}

// ParallelPNet models an N-way parallel fat tree (Figure 4; Table 1 row 3).
// Each switch chip runs at its native high radix — chipPorts*planes ports
// at 1/planes the per-port speed — so each plane needs fewer tiers. Chips
// serving the same position across planes share one box (§6.1, "flattened
// layer of chips inside each switch box"), and the planes' parallel links
// are bundled into single physical cables.
func ParallelPNet(hosts, planes, chipPorts int) Components {
	radix := chipPorts * planes
	t := tiersFor(hosts, radix)
	chipsPerPlane := closChips(t, radix)
	topPerPlane := closTopChips(t, radix)
	return Components{
		Name:  fmt.Sprintf("parallel %dx (%d hosts, radix-%d chips)", planes, hosts, radix),
		Tiers: t,
		Hops:  2*t - 1,
		Chips: chipsPerPlane * planes,
		Boxes: chipsPerPlane,
		Links: (chipsPerPlane - topPerPlane) * radix / 2,
	}
}

// Table1 reproduces the paper's Table 1: the three architectures at 8192
// hosts built from 16-port switch chips, with 128-port chassis and 8-way
// parallelism.
func Table1() []Components {
	return []Components{
		SerialScaleOut(8192, 16),
		SerialChassis(8192, 128, 16),
		ParallelPNet(8192, 8, 16),
	}
}
