package topo

import "fmt"

// NetworkSet holds the four network types compared throughout the paper's
// evaluation (§5): a serial low-bandwidth baseline, its N-way parallel
// homogeneous and (where applicable) heterogeneous versions, and the ideal
// serial high-bandwidth network with N-times-faster links.
type NetworkSet struct {
	SerialLow      *Topology
	ParallelHomo   *Topology
	ParallelHetero *Topology // nil for fat-tree sets: replicas are identical
	SerialHigh     *Topology
}

// All returns the non-nil members, in evaluation order.
func (s NetworkSet) All() []*Topology {
	out := []*Topology{s.SerialLow, s.ParallelHomo}
	if s.ParallelHetero != nil {
		out = append(out, s.ParallelHetero)
	}
	return append(out, s.SerialHigh)
}

// FatTreeSet builds the four fat-tree evaluation networks: each parallel
// plane is an identical k-ary fat tree with speed-Gb/s links; the serial
// high-bandwidth network is the same tree with planes*speed links. There is
// no heterogeneous fat-tree variant — replicated fat trees are identical by
// construction, which is exactly the paper's observation.
func FatTreeSet(k, planes int, speed float64) NetworkSet {
	plane := FatTreePlane(k)
	homo := make([]PlaneSpec, planes)
	for i := range homo {
		homo[i] = plane
	}
	return NetworkSet{
		SerialLow:    Assemble(fmt.Sprintf("serial-low ft%d 1x%.0fG", k, speed), speed, plane),
		ParallelHomo: Assemble(fmt.Sprintf("parallel-homo ft%d %dx%.0fG", k, planes, speed), speed, homo...),
		SerialHigh:   Assemble(fmt.Sprintf("serial-high ft%d 1x%.0fG", k, float64(planes)*speed), float64(planes)*speed, plane),
	}
}

// JellyfishSet builds the four Jellyfish evaluation networks. Every plane
// uses the same switch count, network degree and hosts per switch; the
// homogeneous P-Net replicates the seed-derived plane, while the
// heterogeneous P-Net instantiates each plane with a distinct seed
// (seed, seed+1, ...), giving different random graphs — the source of the
// shorter-path advantage the paper exploits.
func JellyfishSet(switches, netDegree, hostsPerSwitch, planes int, speed float64, seed int64) NetworkSet {
	base := JellyfishPlane(switches, netDegree, hostsPerSwitch, seed)
	homo := make([]PlaneSpec, planes)
	for i := range homo {
		homo[i] = base
	}
	hetero := make([]PlaneSpec, planes)
	hetero[0] = base
	for i := 1; i < planes; i++ {
		hetero[i] = JellyfishPlane(switches, netDegree, hostsPerSwitch, seed+int64(i))
	}
	name := func(kind string, n int, sp float64) string {
		return fmt.Sprintf("%s jf%d-%d %dx%.0fG", kind, switches, netDegree, n, sp)
	}
	return NetworkSet{
		SerialLow:      Assemble(name("serial-low", 1, speed), speed, base),
		ParallelHomo:   Assemble(name("parallel-homo", planes, speed), speed, homo...),
		ParallelHetero: Assemble(name("parallel-hetero", planes, speed), speed, hetero...),
		SerialHigh:     Assemble(name("serial-high", 1, float64(planes)*speed), float64(planes)*speed, base),
	}
}

// PaperJellyfish686 returns the Jellyfish configuration used by the
// paper's packet-level experiments: 686 hosts as 98 switches with 7 hosts
// and 7 network ports each (14-port switches).
func PaperJellyfish686(planes int, speed float64, seed int64) NetworkSet {
	return JellyfishSet(98, 7, 7, planes, speed, seed)
}

// ScaledJellyfish returns a reduced-size Jellyfish set with the same
// 50% host/network port split as the paper's 686-host configuration, for
// fast tests and benchmarks. hostsPerSwitch is fixed at the paper's 7:7
// ratio scaled down to 4:4 on 8-port switches.
func ScaledJellyfish(switches, planes int, speed float64, seed int64) NetworkSet {
	return JellyfishSet(switches, 4, 4, planes, speed, seed)
}

// MixedPNet builds the §7 "different topology types" P-Net: plane 0 is a
// k-ary fat tree and planes 1..planes-1 are distinct Jellyfish expanders
// over the same hosts, built from the same k-port switch chips (k/2
// hosts and k/2 network ports per expander switch). Operators would pin
// throughput-oriented traffic to the fat tree plane and latency-critical
// traffic to the expander planes (shorter average paths).
func MixedPNet(k, planes int, speed float64, seed int64) *Topology {
	if planes < 2 {
		panic("topo: mixed P-Net needs at least 2 planes")
	}
	specs := make([]PlaneSpec, planes)
	specs[0] = FatTreePlane(k)
	hosts := specs[0].Hosts()
	hps := k / 2
	switches := hosts / hps
	for i := 1; i < planes; i++ {
		specs[i] = JellyfishPlane(switches, k-hps, hps, seed+int64(i))
	}
	return Assemble(fmt.Sprintf("mixed ft%d+%dxjf %dx%.0fG", k, planes-1, planes, speed),
		speed, specs...)
}
