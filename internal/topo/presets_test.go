package topo

import (
	"strings"
	"testing"
)

func TestNetworkSetAll(t *testing.T) {
	ft := FatTreeSet(4, 2, 100)
	if got := len(ft.All()); got != 3 {
		t.Errorf("fat tree set size = %d, want 3 (no hetero)", got)
	}
	jf := JellyfishSet(12, 4, 2, 2, 100, 1)
	if got := len(jf.All()); got != 4 {
		t.Errorf("jellyfish set size = %d, want 4", got)
	}
}

func TestNetworkSetNames(t *testing.T) {
	set := JellyfishSet(12, 4, 2, 4, 100, 1)
	cases := map[string]*Topology{
		"serial-low":      set.SerialLow,
		"parallel-homo":   set.ParallelHomo,
		"parallel-hetero": set.ParallelHetero,
		"serial-high":     set.SerialHigh,
	}
	for prefix, tp := range cases {
		if !strings.HasPrefix(tp.Name, prefix) {
			t.Errorf("name %q missing prefix %q", tp.Name, prefix)
		}
	}
	if !strings.Contains(set.SerialHigh.Name, "400G") {
		t.Errorf("serial high name %q should mention 400G", set.SerialHigh.Name)
	}
}

func TestSetsShareHostCount(t *testing.T) {
	set := JellyfishSet(12, 4, 2, 4, 100, 1)
	n := set.SerialLow.NumHosts()
	for _, tp := range set.All() {
		if tp.NumHosts() != n {
			t.Errorf("%s has %d hosts, want %d", tp.Name, tp.NumHosts(), n)
		}
	}
}

func TestHomogeneousPlanesIdenticalWiring(t *testing.T) {
	set := JellyfishSet(10, 3, 2, 3, 100, 5)
	tp := set.ParallelHomo
	// Each plane must have the same number of inter-switch links.
	counts := make([]int, tp.Planes)
	for _, id := range tp.InterSwitchLinks() {
		counts[tp.G.Link(id).Plane]++
	}
	for p := 1; p < tp.Planes; p++ {
		if counts[p] != counts[0] {
			t.Errorf("plane %d has %d links, plane 0 has %d", p, counts[p], counts[0])
		}
	}
}

func TestPlaneSpecDegrees(t *testing.T) {
	p := JellyfishPlane(10, 4, 2, 3)
	deg := p.Degrees()
	if len(deg) != 10 {
		t.Fatalf("degrees len = %d", len(deg))
	}
	sum := 0
	for _, d := range deg {
		sum += d
	}
	if sum != 2*len(p.Edges) {
		t.Errorf("degree sum %d != 2x edges %d", sum, len(p.Edges))
	}
}

func TestHostBandwidthScalesWithPlanes(t *testing.T) {
	for _, planes := range []int{1, 2, 8} {
		set := FatTreeSet(4, planes, 25)
		var tp *Topology
		if planes == 1 {
			tp = set.SerialLow
		} else {
			tp = set.ParallelHomo
		}
		if got := tp.HostBandwidth(); got != float64(planes)*25 {
			t.Errorf("planes=%d bandwidth = %v", planes, got)
		}
	}
}

func TestPlaneOfSwitch(t *testing.T) {
	set := FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	if got := tp.PlaneOfSwitch(tp.Hosts[0]); got != -1 {
		t.Errorf("host plane = %d, want -1", got)
	}
	if got := tp.PlaneOfSwitch(tp.SwitchBase[0]); got != 0 {
		t.Errorf("plane-0 switch reported plane %d", got)
	}
	if got := tp.PlaneOfSwitch(tp.SwitchBase[1]); got != 1 {
		t.Errorf("plane-1 switch reported plane %d", got)
	}
}

func TestScaledJellyfishShape(t *testing.T) {
	set := ScaledJellyfish(16, 2, 100, 1)
	if set.SerialLow.NumHosts() != 64 {
		t.Errorf("hosts = %d, want 64 (16 switches x 4)", set.SerialLow.NumHosts())
	}
	if set.SerialLow.NumRacks != 16 {
		t.Errorf("racks = %d", set.SerialLow.NumRacks)
	}
}

func TestJellyfishPanicsOnBadConfig(t *testing.T) {
	cases := []struct{ sw, deg, hps int }{
		{1, 1, 1},   // too few switches
		{10, 0, 1},  // zero degree
		{10, 10, 1}, // degree >= switches
		{9, 3, 1},   // odd switch-degree product
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("JellyfishPlane(%d,%d,%d) did not panic", c.sw, c.deg, c.hps)
				}
			}()
			JellyfishPlane(c.sw, c.deg, c.hps, 1)
		}()
	}
}
