package topo

import "fmt"

// FatTreePlane returns the PlaneSpec of a three-tier k-ary fat tree
// [Al-Fares et al., SIGCOMM 2008]: k pods of k/2 edge and k/2 aggregation
// switches plus (k/2)^2 core switches, serving k^3/4 hosts. k must be even
// and at least 4.
//
// Switch numbering within the plane: for pod p, edge switches come first
// (p*k + 0..k/2-1) then aggregation switches (p*k + k/2..k-1); core
// switches follow all pods.
func FatTreePlane(k int) PlaneSpec {
	if k < 4 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat tree arity %d must be even and >= 4", k))
	}
	half := k / 2
	numPods := k
	numCore := half * half
	numSwitches := numPods*k + numCore

	edgeSw := func(pod, i int) int { return pod*k + i }
	aggSw := func(pod, i int) int { return pod*k + half + i }
	coreSw := func(i int) int { return numPods*k + i }

	var edges [][2]int
	for pod := 0; pod < numPods; pod++ {
		// Edge <-> aggregation full bipartite within the pod.
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				edges = append(edges, [2]int{edgeSw(pod, e), aggSw(pod, a)})
			}
		}
		// Aggregation a connects to core switches a*half .. a*half+half-1.
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				edges = append(edges, [2]int{aggSw(pod, a), coreSw(a*half + c)})
			}
		}
	}

	hosts := make([]int, numPods*half*half)
	for pod := 0; pod < numPods; pod++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				hosts[pod*half*half+e*half+h] = edgeSw(pod, e)
			}
		}
	}

	return PlaneSpec{
		Switches: numSwitches,
		Edges:    edges,
		HostPort: hosts,
		Kind:     "fattree",
	}
}

// FatTreeArityForHosts returns the smallest even k such that a k-ary fat
// tree serves at least the requested number of hosts.
func FatTreeArityForHosts(hosts int) int {
	for k := 4; ; k += 2 {
		if k*k*k/4 >= hosts {
			return k
		}
	}
}
