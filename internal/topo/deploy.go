package topo

// Deployment models the physical build-out of a topology under the §6.1
// optimizations: multi-channel cable bundling across planes, patch panels
// or optical circuit switches that localize (and hide) heterogeneity, and
// per-box chip co-packaging.
type Deployment struct {
	// HostCables counts physical host-to-ToR cables. With bundling, the
	// N plane channels of one host share one multi-channel cable (e.g.
	// 4x100G channels in one 400G cable).
	HostCables int
	// CoreCables counts physical inter-switch cables, bundled across
	// planes when the planes' cable runs are parallel (homogeneous
	// P-Nets) or terminated on patch panels (heterogeneous).
	CoreCables int
	// PatchPanelPorts counts the panel ports needed to localize plane
	// heterogeneity at a central location (0 when no panel is used).
	PatchPanelPorts int
	// SwitchBoxes counts discrete switch enclosures: one per rack
	// position holding one chip per plane (co-packaged), plus core boxes.
	SwitchBoxes int
	// Transceivers counts optical transceiver modules: two per physical
	// core cable; host cables use on-board copper/AOC and are excluded,
	// and panel-side connections are passive.
	Transceivers int
}

// DeployOptions selects the §6.1 optimizations.
type DeployOptions struct {
	// Bundle coalesces the planes' parallel links into multi-channel
	// cables (§6.1 "cable bundles"): valid when every plane has the
	// same per-rack layout (homogeneous), or when a patch panel
	// re-sorts channels centrally (heterogeneous + panel).
	Bundle bool
	// PatchPanel inserts a central patch panel / OCS layer, localizing
	// heterogeneity and enabling bundling for heterogeneous planes.
	PatchPanel bool
}

// PlanDeployment computes the physical component counts for a topology.
// Cables are counted as duplex (one fiber pair or channel per direction).
func PlanDeployment(t *Topology, opts DeployOptions) Deployment {
	var d Deployment

	hosts := t.NumHosts()
	if opts.Bundle {
		d.HostCables = hosts // one multi-channel cable per host
	} else {
		d.HostCables = hosts * t.Planes
	}

	// Duplex inter-switch cables per plane.
	interPerPlane := make([]int, t.Planes)
	for _, id := range t.InterSwitchLinks() {
		l := t.G.Link(id)
		if l.Src < l.Dst { // count each duplex pair once
			interPerPlane[l.Plane]++
		}
	}
	totalInter := 0
	maxPerPlane := 0
	for _, c := range interPerPlane {
		totalInter += c
		if c > maxPerPlane {
			maxPerPlane = c
		}
	}

	homogeneous := true
	for _, c := range interPerPlane {
		if c != maxPerPlane {
			homogeneous = false
			break
		}
	}

	switch {
	case opts.Bundle && (homogeneous && isReplicated(t) || opts.PatchPanel):
		// Each bundle carries one channel per plane over the same run.
		d.CoreCables = maxPerPlane
	default:
		d.CoreCables = totalInter
	}
	if opts.PatchPanel {
		// Every core cable terminates on the panel twice (in and out).
		d.PatchPanelPorts = 2 * d.CoreCables
	}

	// Boxes: each rack position packages one chip per plane (§6.1
	// "flattened layer of chips"); non-ToR switches likewise share boxes
	// across planes when plane structure allows, otherwise one box per
	// switch.
	if isReplicated(t) {
		d.SwitchBoxes = t.SwitchCount[0]
	} else {
		for _, c := range t.SwitchCount {
			d.SwitchBoxes += c
		}
	}

	d.Transceivers = 2 * d.CoreCables
	return d
}

// isReplicated reports whether all planes are structural copies of plane
// 0 (same switch count and edge multiset sizes) — the homogeneous case
// where cross-plane co-packaging and bundling apply directly.
func isReplicated(t *Topology) bool {
	for p := 1; p < t.Planes; p++ {
		if t.SwitchCount[p] != t.SwitchCount[0] {
			return false
		}
	}
	// Compare per-plane inter-switch link counts.
	counts := make([]int, t.Planes)
	for _, id := range t.InterSwitchLinks() {
		counts[t.G.Link(id).Plane]++
	}
	for p := 1; p < t.Planes; p++ {
		if counts[p] != counts[0] {
			return false
		}
	}
	// Heterogeneous planes (different seeds) typically have equal counts
	// but different wiring; distinguish by comparing edge endpoints
	// relative to each plane's base.
	type edge struct{ a, b int32 }
	ref := map[edge]int{}
	for _, id := range t.InterSwitchLinks() {
		l := t.G.Link(id)
		base := t.SwitchBase[l.Plane]
		e := edge{int32(l.Src - base), int32(l.Dst - base)}
		if l.Plane == 0 {
			ref[e]++
		}
	}
	for _, id := range t.InterSwitchLinks() {
		l := t.G.Link(id)
		if l.Plane == 0 {
			continue
		}
		base := t.SwitchBase[l.Plane]
		e := edge{int32(l.Src - base), int32(l.Dst - base)}
		if ref[e] == 0 {
			return false
		}
	}
	return true
}
