// Package topo builds the network topologies studied in the P-Net paper:
// k-ary fat trees, Jellyfish random graphs, and their parallel (multi-plane)
// compositions, plus the analytic component-count model behind Table 1.
//
// A topology is described in two steps. A PlaneSpec is a host-count-agnostic
// description of ONE dataplane: its switches, switch-to-switch wiring, and
// which switch hosts each end host's uplink. The assembler then combines one
// or more PlaneSpecs into a Topology — a single graph.Graph in which every
// host appears once (as a non-transit node) with one uplink per plane, and
// each plane's switches are disjoint from every other plane's. This mirrors
// the defining property of a P-Net: planes share nothing but the hosts.
package topo

import (
	"fmt"

	"pnet/internal/graph"
)

// PlaneSpec describes one dataplane, independent of other planes.
type PlaneSpec struct {
	// Switches is the number of switches in this plane.
	Switches int
	// Edges lists duplex switch-to-switch cables as index pairs.
	Edges [][2]int
	// HostPort maps each host (by index) to the switch it uplinks to.
	// Its length defines the number of hosts the plane serves.
	HostPort []int
	// Kind names the plane family ("fattree", "jellyfish", ...).
	Kind string
}

// Hosts returns the number of hosts the plane serves.
func (p PlaneSpec) Hosts() int { return len(p.HostPort) }

// Topology is an assembled (possibly multi-plane) network.
type Topology struct {
	Name string
	// G is the combined graph: hosts first, then plane 0's switches,
	// plane 1's switches, and so on.
	G *graph.Graph
	// Hosts lists the host node IDs (hosts are non-transit).
	Hosts []graph.NodeID
	// Planes is the number of dataplanes.
	Planes int
	// LinkSpeed is the per-link capacity in Gb/s.
	LinkSpeed float64
	// Uplinks[h][p] is the host-to-ToR link of host h on plane p;
	// Downlinks[h][p] is its reverse.
	Uplinks   [][]graph.LinkID
	Downlinks [][]graph.LinkID
	// SwitchBase[p] is the node ID of plane p's first switch; plane p's
	// switches are SwitchBase[p] .. SwitchBase[p]+SwitchCount[p)-1.
	SwitchBase  []graph.NodeID
	SwitchCount []int
	// ToR[h][p] is host h's top-of-rack switch node on plane p.
	ToR [][]graph.NodeID
	// RackOf[h] groups hosts into racks by their plane-0 ToR.
	RackOf []int
	// NumRacks is the number of distinct plane-0 ToR switches with hosts.
	NumRacks int
}

// Assemble combines the given planes into one Topology. All planes must
// serve the same number of hosts. speed is the capacity, in Gb/s, of every
// link (host uplinks and switch-switch links alike).
func Assemble(name string, speed float64, planes ...PlaneSpec) *Topology {
	if len(planes) == 0 {
		panic("topo: no planes")
	}
	hosts := planes[0].Hosts()
	for i, p := range planes {
		if p.Hosts() != hosts {
			panic(fmt.Sprintf("topo: plane %d serves %d hosts, plane 0 serves %d",
				i, p.Hosts(), hosts))
		}
	}

	total := hosts
	for _, p := range planes {
		total += p.Switches
	}
	g := graph.New(total)

	t := &Topology{
		Name:        name,
		G:           g,
		Planes:      len(planes),
		LinkSpeed:   speed,
		Hosts:       make([]graph.NodeID, hosts),
		Uplinks:     make([][]graph.LinkID, hosts),
		Downlinks:   make([][]graph.LinkID, hosts),
		ToR:         make([][]graph.NodeID, hosts),
		SwitchBase:  make([]graph.NodeID, len(planes)),
		SwitchCount: make([]int, len(planes)),
	}
	for h := 0; h < hosts; h++ {
		t.Hosts[h] = graph.NodeID(h)
		g.SetTransit(graph.NodeID(h), false)
		t.Uplinks[h] = make([]graph.LinkID, len(planes))
		t.Downlinks[h] = make([]graph.LinkID, len(planes))
		t.ToR[h] = make([]graph.NodeID, len(planes))
	}

	base := hosts
	for pi, p := range planes {
		t.SwitchBase[pi] = graph.NodeID(base)
		t.SwitchCount[pi] = p.Switches
		sw := func(i int) graph.NodeID { return graph.NodeID(base + i) }
		for _, e := range p.Edges {
			g.AddDuplex(sw(e[0]), sw(e[1]), speed, int32(pi))
		}
		for h, s := range p.HostPort {
			up, down := g.AddDuplex(graph.NodeID(h), sw(s), speed, int32(pi))
			t.Uplinks[h][pi] = up
			t.Downlinks[h][pi] = down
			t.ToR[h][pi] = sw(s)
		}
		base += p.Switches
	}

	// Rack grouping by plane-0 ToR.
	t.RackOf = make([]int, hosts)
	rackIdx := map[graph.NodeID]int{}
	for h := 0; h < hosts; h++ {
		tor := t.ToR[h][0]
		idx, ok := rackIdx[tor]
		if !ok {
			idx = len(rackIdx)
			rackIdx[tor] = idx
		}
		t.RackOf[h] = idx
	}
	t.NumRacks = len(rackIdx)
	return t
}

// NumHosts returns the number of end hosts.
func (t *Topology) NumHosts() int { return len(t.Hosts) }

// HostBandwidth returns the total uplink capacity of one host in Gb/s
// (planes × link speed).
func (t *Topology) HostBandwidth() float64 { return float64(t.Planes) * t.LinkSpeed }

// PlaneOfSwitch returns which plane the switch node n belongs to, or -1 if
// n is a host.
func (t *Topology) PlaneOfSwitch(n graph.NodeID) int {
	for p := t.Planes - 1; p >= 0; p-- {
		if n >= t.SwitchBase[p] {
			return p
		}
	}
	return -1
}

// RackMembers returns the hosts in each rack.
func (t *Topology) RackMembers() [][]graph.NodeID {
	racks := make([][]graph.NodeID, t.NumRacks)
	for h, r := range t.RackOf {
		racks[r] = append(racks[r], graph.NodeID(h))
	}
	return racks
}

// InterSwitchLinks returns the IDs of all switch-to-switch links (each
// direction separately), excluding host uplinks/downlinks.
func (t *Topology) InterSwitchLinks() []graph.LinkID {
	hosts := len(t.Hosts)
	var out []graph.LinkID
	for i := 0; i < t.G.NumLinks(); i++ {
		l := t.G.Link(graph.LinkID(i))
		if int(l.Src) >= hosts && int(l.Dst) >= hosts {
			out = append(out, l.ID)
		}
	}
	return out
}
