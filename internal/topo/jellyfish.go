package topo

import (
	"fmt"
	"math/rand"
)

// JellyfishPlane returns the PlaneSpec of a Jellyfish network [Singla et
// al., NSDI 2012]: a uniform random r-regular graph over switches, with
// hostsPerSwitch hosts attached to every switch. The construction follows
// the paper: repeatedly join random switch pairs that have free ports and
// are not yet adjacent; when progress stalls with free ports remaining,
// perform the paper's edge-swap fixup. The result is deterministic for a
// given seed — heterogeneous P-Nets are built from different seeds.
func JellyfishPlane(switches, netDegree, hostsPerSwitch int, seed int64) PlaneSpec {
	if switches < 2 || netDegree < 1 || netDegree >= switches {
		panic(fmt.Sprintf("topo: invalid jellyfish switches=%d degree=%d", switches, netDegree))
	}
	if switches*netDegree%2 != 0 {
		panic("topo: switches*netDegree must be even")
	}
	rng := rand.New(rand.NewSource(seed))

	adj := make([]map[int]bool, switches)
	free := make([]int, switches)
	for i := range adj {
		adj[i] = make(map[int]bool, netDegree)
		free[i] = netDegree
	}
	var edges [][2]int
	addEdge := func(a, b int) {
		adj[a][b] = true
		adj[b][a] = true
		free[a]--
		free[b]--
		edges = append(edges, [2]int{a, b})
	}
	removeEdge := func(idx int) (a, b int) {
		e := edges[idx]
		a, b = e[0], e[1]
		delete(adj[a], b)
		delete(adj[b], a)
		free[a]++
		free[b]++
		edges[idx] = edges[len(edges)-1]
		edges = edges[:len(edges)-1]
		return a, b
	}

	openSet := func() []int {
		var s []int
		for i, f := range free {
			if f > 0 {
				s = append(s, i)
			}
		}
		return s
	}

	for {
		open := openSet()
		if len(open) == 0 {
			break
		}
		// Try random pairings among switches with free ports.
		progress := false
		for attempt := 0; attempt < 50*len(open); attempt++ {
			a := open[rng.Intn(len(open))]
			b := open[rng.Intn(len(open))]
			if a == b || adj[a][b] || free[a] == 0 || free[b] == 0 {
				continue
			}
			addEdge(a, b)
			progress = true
			break
		}
		if progress {
			continue
		}
		// Stalled: either one switch holds all remaining free ports or the
		// remaining open switches are mutually adjacent. Apply the
		// Jellyfish fixup: remove a random existing edge (c,d) with
		// c,d not adjacent to some open switch x, then add (x,c),(x,d).
		x := -1
		for _, s := range open {
			if free[s] >= 1 {
				x = s
				break
			}
		}
		if x < 0 || len(edges) == 0 {
			break
		}
		swapped := false
		for attempt := 0; attempt < 20*len(edges); attempt++ {
			idx := rng.Intn(len(edges))
			c, d := edges[idx][0], edges[idx][1]
			if c == x || d == x || adj[x][c] || adj[x][d] {
				continue
			}
			if free[x] < 2 {
				// With a single free port we can only rewire one end:
				// replace (c,d) by (x,c), leaving d with a free port for a
				// later pairing round.
				removeEdge(idx)
				addEdge(x, c)
			} else {
				removeEdge(idx)
				addEdge(x, c)
				addEdge(x, d)
			}
			swapped = true
			break
		}
		if !swapped {
			break // give up; graph is as regular as this seed allows
		}
	}

	hosts := make([]int, switches*hostsPerSwitch)
	for s := 0; s < switches; s++ {
		for h := 0; h < hostsPerSwitch; h++ {
			hosts[s*hostsPerSwitch+h] = s
		}
	}
	return PlaneSpec{
		Switches: switches,
		Edges:    edges,
		HostPort: hosts,
		Kind:     "jellyfish",
	}
}

// Degrees returns the switch-to-switch degree of each switch in the spec.
func (p PlaneSpec) Degrees() []int {
	d := make([]int, p.Switches)
	for _, e := range p.Edges {
		d[e[0]]++
		d[e[1]]++
	}
	return d
}
