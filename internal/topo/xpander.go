package topo

import (
	"fmt"
	"math/rand"
)

// XpanderPlane returns the PlaneSpec of an Xpander network [Valadarsky et
// al., CoNEXT 2016], the pseudorandom expander the paper names alongside
// Jellyfish as a heterogeneous-P-Net candidate. Construction follows the
// paper's 2-lift procedure: start from the complete graph K_{d+1} (the
// optimal d-regular expander) and repeatedly apply random 2-lifts — each
// lift doubles the switch count while preserving degree and near-optimal
// spectral expansion. lifts therefore determines the size:
// (netDegree+1) × 2^lifts switches.
//
// The result is deterministic for a given seed; heterogeneous planes use
// different seeds, exactly as with JellyfishPlane.
func XpanderPlane(netDegree, lifts, hostsPerSwitch int, seed int64) PlaneSpec {
	if netDegree < 2 {
		panic(fmt.Sprintf("topo: xpander degree %d < 2", netDegree))
	}
	if lifts < 0 {
		panic("topo: negative lift count")
	}
	rng := rand.New(rand.NewSource(seed))

	// K_{d+1}: every pair of the d+1 switches connected.
	n := netDegree + 1
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}

	for l := 0; l < lifts; l++ {
		// 2-lift: each node u splits into u and u+n; each edge picks
		// straight or crossed wiring at random. Degree is preserved and
		// a random lift of an expander is an expander w.h.p.
		lifted := make([][2]int, 0, 2*len(edges))
		for _, e := range edges {
			u, v := e[0], e[1]
			if rng.Intn(2) == 0 { // straight
				lifted = append(lifted, [2]int{u, v}, [2]int{u + n, v + n})
			} else { // crossed
				lifted = append(lifted, [2]int{u, v + n}, [2]int{u + n, v})
			}
		}
		edges = lifted
		n *= 2
	}

	hosts := make([]int, n*hostsPerSwitch)
	for s := 0; s < n; s++ {
		for h := 0; h < hostsPerSwitch; h++ {
			hosts[s*hostsPerSwitch+h] = s
		}
	}
	return PlaneSpec{
		Switches: n,
		Edges:    edges,
		HostPort: hosts,
		Kind:     "xpander",
	}
}

// XpanderSet builds the four evaluation networks over Xpander planes,
// mirroring JellyfishSet: homogeneous planes replicate one lift sequence,
// heterogeneous planes draw different random lifts per plane.
func XpanderSet(netDegree, lifts, hostsPerSwitch, planes int, speed float64, seed int64) NetworkSet {
	base := XpanderPlane(netDegree, lifts, hostsPerSwitch, seed)
	homo := make([]PlaneSpec, planes)
	for i := range homo {
		homo[i] = base
	}
	hetero := make([]PlaneSpec, planes)
	hetero[0] = base
	for i := 1; i < planes; i++ {
		hetero[i] = XpanderPlane(netDegree, lifts, hostsPerSwitch, seed+int64(i))
	}
	name := func(kind string, n int, sp float64) string {
		return fmt.Sprintf("%s xp%d-%d %dx%.0fG", kind, base.Switches, netDegree, n, sp)
	}
	return NetworkSet{
		SerialLow:      Assemble(name("serial-low", 1, speed), speed, base),
		ParallelHomo:   Assemble(name("parallel-homo", planes, speed), speed, homo...),
		ParallelHetero: Assemble(name("parallel-hetero", planes, speed), speed, hetero...),
		SerialHigh:     Assemble(name("serial-high", 1, float64(planes)*speed), float64(planes)*speed, base),
	}
}
