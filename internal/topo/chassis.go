package topo

import "fmt"

// ChassisPlane builds the chip-level graph of a two-tier chassis-based
// fat tree (Figure 2b): hosts connect to aggregation chassis (2-stage
// internal Clos of chipPorts-port chips), which connect to spine chassis
// (non-blocking 3-stage internal Clos). The returned PlaneSpec's switches
// are individual chips, so shortest host-to-host paths traverse the
// paper's 7 chip hops (2 + 3 + 2) — the structural claim behind Table 1's
// "Hops" column.
//
// Scale: hosts = 2*(chassisPorts/2)^2 at full fan-out; this builder
// divides all counts by `shrink` (≥1) to keep test instances small while
// preserving the hop structure. chassisPorts and chipPorts must be even;
// chassisPorts must be divisible by chipPorts.
func ChassisPlane(chassisPorts, chipPorts, shrink int) PlaneSpec {
	if chassisPorts%2 != 0 || chipPorts%2 != 0 || chassisPorts%chipPorts != 0 {
		panic(fmt.Sprintf("topo: invalid chassis config %d/%d", chassisPorts, chipPorts))
	}
	if shrink < 1 {
		panic("topo: shrink must be >= 1")
	}
	half := chassisPorts / 2 / shrink // down/up ports per agg chassis
	if half < 1 {
		panic("topo: shrink too large")
	}
	aggChassis := 2 * half // lower tier
	spineChassis := half   // top tier

	// Internal chassis structure, scaled with shrink. Aggregation
	// chassis are 2-stage: down-facing chips (p/2 host ports + p/2
	// internal) meshed with up-facing chips (p/2 uplink ports + p/2
	// internal) — the paper's "16 16-port chips in a 2-stage topology"
	// (2P/p chips). Spine chassis are non-blocking 3-stage Clos: 2P/p
	// external leaf chips plus P/p middle chips.
	p2 := chipPorts / 2
	aDown := ceilDiv(half, p2)
	aUp := ceilDiv(half, p2)
	sLeaf := ceilDiv(2*half, p2)
	sMid := ceilDiv(sLeaf*p2, chipPorts)

	type chipID = int
	next := 0
	alloc := func(n int) []chipID {
		ids := make([]chipID, n)
		for i := range ids {
			ids[i] = next
			next++
		}
		return ids
	}

	var edges [][2]int
	// Aggregation chassis chips: down-facing and up-facing stages with a
	// full bipartite copper-backplane mesh.
	aggDowns := make([][]chipID, aggChassis)
	aggUps := make([][]chipID, aggChassis)
	for c := 0; c < aggChassis; c++ {
		aggDowns[c] = alloc(aDown)
		aggUps[c] = alloc(aUp)
		for _, l := range aggDowns[c] {
			for _, s := range aggUps[c] {
				edges = append(edges, [2]int{l, s})
			}
		}
	}
	// Spine chassis chips: leaf + middle, full bipartite internally.
	spineLeafs := make([][]chipID, spineChassis)
	for c := 0; c < spineChassis; c++ {
		spineLeafs[c] = alloc(sLeaf)
		mids := alloc(sMid)
		for _, l := range spineLeafs[c] {
			for _, m := range mids {
				edges = append(edges, [2]int{l, m})
			}
		}
	}
	// Inter-chassis cables: aggregation chassis c uplinks one cable to
	// every spine chassis (folded-Clos wiring), terminating on chips
	// round-robin.
	for c := 0; c < aggChassis; c++ {
		for s := 0; s < spineChassis; s++ {
			up := aggUps[c][s%len(aggUps[c])]
			down := spineLeafs[s][c%len(spineLeafs[s])]
			edges = append(edges, [2]int{up, down})
		}
	}

	// Hosts: `half` per aggregation chassis, spread over its down chips.
	hosts := make([]int, 0, aggChassis*half)
	for c := 0; c < aggChassis; c++ {
		for h := 0; h < half; h++ {
			hosts = append(hosts, aggDowns[c][h%len(aggDowns[c])])
		}
	}

	return PlaneSpec{
		Switches: next,
		Edges:    edges,
		HostPort: hosts,
		Kind:     "chassis",
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
