package topo

import (
	"testing"

	"pnet/internal/graph"
)

func TestXpanderRegularity(t *testing.T) {
	// K_{d+1} lifted any number of times stays exactly d-regular.
	for _, lifts := range []int{0, 1, 2, 3} {
		p := XpanderPlane(5, lifts, 2, 7)
		wantSwitches := 6 << lifts
		if p.Switches != wantSwitches {
			t.Fatalf("lifts=%d: switches = %d, want %d", lifts, p.Switches, wantSwitches)
		}
		for i, d := range p.Degrees() {
			if d != 5 {
				t.Fatalf("lifts=%d: switch %d degree %d, want 5", lifts, i, d)
			}
		}
	}
}

func TestXpanderConnectedAndShortPaths(t *testing.T) {
	p := XpanderPlane(6, 3, 3, 11) // 56 switches, 168 hosts
	tp := Assemble("xp", 100, p)
	dist := graph.HopDistances(tp.G, tp.Hosts[0])
	maxDist := 0
	for _, h := range tp.Hosts {
		if h == tp.Hosts[0] {
			continue
		}
		if dist[h] < 0 {
			t.Fatalf("host %d unreachable", h)
		}
		if dist[h] > maxDist {
			maxDist = dist[h]
		}
	}
	// Expanders have logarithmic diameter: host-to-host within 6 hops
	// here (host + up to 4 switch hops + host).
	if maxDist > 6 {
		t.Errorf("host diameter = %d, want <= 6 for an expander", maxDist)
	}
}

func TestXpanderDeterministicPerSeed(t *testing.T) {
	a := XpanderPlane(4, 2, 1, 3)
	b := XpanderPlane(4, 2, 1, 3)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed, different graphs")
		}
	}
	c := XpanderPlane(4, 2, 1, 4)
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical lifts")
	}
}

func TestXpanderSetShape(t *testing.T) {
	set := XpanderSet(5, 2, 2, 4, 100, 9)
	if set.SerialLow.NumHosts() != 48 { // 24 switches x 2 hosts
		t.Errorf("hosts = %d", set.SerialLow.NumHosts())
	}
	if set.ParallelHetero.Planes != 4 {
		t.Errorf("planes = %d", set.ParallelHetero.Planes)
	}
	// Hetero planes differ in wiring.
	counts := map[int]int{}
	for _, id := range set.ParallelHetero.InterSwitchLinks() {
		counts[int(set.ParallelHetero.G.Link(id).Plane)]++
	}
	for p, c := range counts {
		if c != counts[0] {
			t.Errorf("plane %d link count %d != plane 0 %d", p, c, counts[0])
		}
	}
}

func TestXpanderHeteroShorterPaths(t *testing.T) {
	// The hetero advantage holds for Xpander planes too: min-across-
	// planes hops below single-plane hops.
	set := XpanderSet(5, 2, 2, 4, 100, 9)
	pairs := [][2]graph.NodeID{}
	hosts := set.ParallelHetero.Hosts
	for i := 0; i < 30; i++ {
		pairs = append(pairs, [2]graph.NodeID{hosts[i], hosts[len(hosts)-1-i]})
	}
	het, _ := graph.AvgShortestHops(set.ParallelHetero.G, pairs)
	homo, _ := graph.AvgShortestHops(set.ParallelHomo.G, pairs)
	if het >= homo {
		t.Errorf("hetero avg hops %.3f >= homo %.3f", het, homo)
	}
}

func TestXpanderInvalidConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { XpanderPlane(1, 2, 1, 1) },
		func() { XpanderPlane(4, -1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for invalid xpander config")
				}
			}()
			fn()
		}()
	}
}
