package topo

import "testing"

func TestDeploymentHomogeneousBundling(t *testing.T) {
	set := FatTreeSet(4, 4, 100) // 16 hosts, 4 identical planes
	tp := set.ParallelHomo

	naive := PlanDeployment(tp, DeployOptions{})
	if naive.HostCables != 16*4 {
		t.Errorf("naive host cables = %d, want 64", naive.HostCables)
	}
	// k=4 plane: 32 duplex inter-switch cables per plane, 4 planes.
	if naive.CoreCables != 32*4 {
		t.Errorf("naive core cables = %d, want 128", naive.CoreCables)
	}
	if naive.PatchPanelPorts != 0 {
		t.Errorf("naive panel ports = %d", naive.PatchPanelPorts)
	}

	bundled := PlanDeployment(tp, DeployOptions{Bundle: true})
	if bundled.HostCables != 16 {
		t.Errorf("bundled host cables = %d, want 16", bundled.HostCables)
	}
	if bundled.CoreCables != 32 {
		t.Errorf("bundled core cables = %d, want 32 (4 channels each)", bundled.CoreCables)
	}
	if bundled.Transceivers != 64 {
		t.Errorf("bundled transceivers = %d, want 64", bundled.Transceivers)
	}
}

func TestDeploymentHeterogeneousNeedsPanel(t *testing.T) {
	set := JellyfishSet(12, 4, 2, 4, 100, 3)
	het := set.ParallelHetero

	// Without a patch panel, heterogeneous planes cannot bundle core
	// cables (different wiring per plane).
	noPanel := PlanDeployment(het, DeployOptions{Bundle: true})
	panel := PlanDeployment(het, DeployOptions{Bundle: true, PatchPanel: true})
	if noPanel.CoreCables <= panel.CoreCables {
		t.Errorf("no-panel core cables %d <= panel %d", noPanel.CoreCables, panel.CoreCables)
	}
	if panel.PatchPanelPorts != 2*panel.CoreCables {
		t.Errorf("panel ports = %d, want %d", panel.PatchPanelPorts, 2*panel.CoreCables)
	}
	// Host-side bundling works either way.
	if noPanel.HostCables != het.NumHosts() {
		t.Errorf("host cables = %d", noPanel.HostCables)
	}
}

func TestDeploymentBoxesCoPackaged(t *testing.T) {
	homo := FatTreeSet(4, 4, 100).ParallelHomo
	het := JellyfishSet(12, 4, 2, 4, 100, 3).ParallelHetero

	dHomo := PlanDeployment(homo, DeployOptions{})
	if dHomo.SwitchBoxes != homo.SwitchCount[0] {
		t.Errorf("homogeneous boxes = %d, want %d (one box per position)",
			dHomo.SwitchBoxes, homo.SwitchCount[0])
	}
	dHet := PlanDeployment(het, DeployOptions{})
	want := 0
	for _, c := range het.SwitchCount {
		want += c
	}
	if dHet.SwitchBoxes != want {
		t.Errorf("heterogeneous boxes = %d, want %d", dHet.SwitchBoxes, want)
	}
}

func TestIsReplicated(t *testing.T) {
	if !isReplicated(FatTreeSet(4, 4, 100).ParallelHomo) {
		t.Error("replicated fat tree not detected")
	}
	if isReplicated(JellyfishSet(12, 4, 2, 4, 100, 3).ParallelHetero) {
		t.Error("heterogeneous jellyfish misdetected as replicated")
	}
	if !isReplicated(JellyfishSet(12, 4, 2, 4, 100, 3).ParallelHomo) {
		t.Error("replicated jellyfish not detected")
	}
	if !isReplicated(FatTreeSet(4, 1, 100).SerialLow) {
		t.Error("single plane should count as replicated")
	}
}
