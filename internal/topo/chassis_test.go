package topo

import (
	"testing"

	"pnet/internal/graph"
)

func TestChassisSevenChipHops(t *testing.T) {
	// The structural claim behind Table 1 row 2: a host-to-host path
	// through different aggregation chassis crosses 7 chips
	// (2 agg + 3 spine + 2 agg), i.e. 8 links chip-to-chip plus the two
	// host links = path length 8 in link terms... verify via node count:
	// shortest path nodes = host + 7 chips + host.
	p := ChassisPlane(16, 4, 2)
	tp := Assemble("chassis", 100, p)

	// Pick hosts on different aggregation chassis: hosts are grouped by
	// chassis in order, `half` per chassis.
	h0 := tp.Hosts[0]
	hLast := tp.Hosts[tp.NumHosts()-1]
	path, ok := graph.ShortestPath(tp.G, h0, hLast)
	if !ok {
		t.Fatal("no path between hosts on different chassis")
	}
	nodes := path.Nodes(tp.G)
	chips := len(nodes) - 2
	if chips != 7 {
		t.Errorf("chip hops = %d, want 7 (2+3+2)", chips)
	}
}

func TestChassisSameChassisShortPath(t *testing.T) {
	p := ChassisPlane(16, 4, 2)
	tp := Assemble("chassis", 100, p)
	// Hosts 0 and 1 share the first aggregation chassis; their path
	// stays inside it (1 or 3 chips, never 7).
	path, ok := graph.ShortestPath(tp.G, tp.Hosts[0], tp.Hosts[1])
	if !ok {
		t.Fatal("no intra-chassis path")
	}
	if chips := len(path.Nodes(tp.G)) - 2; chips > 3 {
		t.Errorf("intra-chassis chip hops = %d, want <= 3", chips)
	}
}

func TestChassisAllHostsReachable(t *testing.T) {
	p := ChassisPlane(16, 4, 2)
	tp := Assemble("chassis", 100, p)
	dist := graph.HopDistances(tp.G, tp.Hosts[0])
	for _, h := range tp.Hosts[1:] {
		if dist[h] < 0 {
			t.Fatalf("host %d unreachable", h)
		}
	}
}

func TestChassisMatchesComponentModel(t *testing.T) {
	// At shrink=1, the graph's chip count should match the analytic
	// Components model for the same configuration (16-port chassis of
	// 4-port chips; a small instance of Table 1's construction).
	p := ChassisPlane(16, 4, 1)
	comp := SerialChassis(2*(16/2)*(16/2), 16, 4) // hosts = 128
	if p.Switches != comp.Chips {
		t.Errorf("graph chips = %d, model chips = %d", p.Switches, comp.Chips)
	}
	if p.Hosts() != 128 {
		t.Errorf("hosts = %d, want 128", p.Hosts())
	}
}

func TestChassisInvalidConfigs(t *testing.T) {
	for _, fn := range []func(){
		func() { ChassisPlane(15, 4, 1) },  // odd chassis ports
		func() { ChassisPlane(16, 3, 1) },  // chassis not divisible by chip
		func() { ChassisPlane(16, 4, 0) },  // bad shrink
		func() { ChassisPlane(16, 4, 99) }, // shrink too large
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for invalid chassis config")
				}
			}()
			fn()
		}()
	}
}
