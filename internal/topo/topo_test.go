package topo

import (
	"testing"

	"pnet/internal/graph"
)

func TestFatTreePlaneCounts(t *testing.T) {
	for _, k := range []int{4, 8, 16} {
		p := FatTreePlane(k)
		wantHosts := k * k * k / 4
		wantSwitches := k*k + k*k/4 // k pods of k switches + (k/2)^2 core
		if p.Hosts() != wantHosts {
			t.Errorf("k=%d hosts = %d, want %d", k, p.Hosts(), wantHosts)
		}
		if p.Switches != wantSwitches {
			t.Errorf("k=%d switches = %d, want %d", k, p.Switches, wantSwitches)
		}
		// Total duplex inter-switch cables: edge-agg (k*(k/2)^2) + agg-core (k*(k/2)^2).
		wantEdges := 2 * k * (k / 2) * (k / 2)
		if len(p.Edges) != wantEdges {
			t.Errorf("k=%d edges = %d, want %d", k, len(p.Edges), wantEdges)
		}
	}
}

func TestFatTreePlanePortBudget(t *testing.T) {
	// No switch may use more than k ports (hosts + network).
	k := 8
	p := FatTreePlane(k)
	ports := make([]int, p.Switches)
	for _, e := range p.Edges {
		ports[e[0]]++
		ports[e[1]]++
	}
	for _, s := range p.HostPort {
		ports[s]++
	}
	for i, used := range ports {
		if used > k {
			t.Errorf("switch %d uses %d ports, budget %d", i, used, k)
		}
	}
}

func TestFatTreePlaneInvalidArity(t *testing.T) {
	for _, k := range []int{2, 5, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FatTreePlane(%d) did not panic", k)
				}
			}()
			FatTreePlane(k)
		}()
	}
}

func TestFatTreeArityForHosts(t *testing.T) {
	cases := []struct{ hosts, k int }{
		{16, 4}, {17, 6}, {1024, 16}, {250, 10}, {686, 14},
	}
	for _, c := range cases {
		if got := FatTreeArityForHosts(c.hosts); got != c.k {
			t.Errorf("arity(%d) = %d, want %d", c.hosts, got, c.k)
		}
	}
}

func TestAssembleSerialFatTreeConnectivity(t *testing.T) {
	tp := Assemble("ft4", 100, FatTreePlane(4))
	if tp.NumHosts() != 16 {
		t.Fatalf("hosts = %d", tp.NumHosts())
	}
	dist := graph.HopDistances(tp.G, tp.Hosts[0])
	for _, h := range tp.Hosts[1:] {
		if dist[h] < 0 {
			t.Fatalf("host %d unreachable", h)
		}
	}
	// Same-rack pair: 2 hops (host-edge-host). Hosts 0,1 share an edge switch.
	if dist[tp.Hosts[1]] != 2 {
		t.Errorf("same-rack distance = %d, want 2", dist[tp.Hosts[1]])
	}
	// Cross-pod pair: 6 hops (host-edge-agg-core-agg-edge-host).
	if dist[tp.Hosts[15]] != 6 {
		t.Errorf("cross-pod distance = %d, want 6", dist[tp.Hosts[15]])
	}
}

func TestAssembleHostsNonTransit(t *testing.T) {
	tp := Assemble("ft4", 100, FatTreePlane(4))
	for _, h := range tp.Hosts {
		if tp.G.Transit(h) {
			t.Errorf("host %d is transit", h)
		}
	}
	for p := 0; p < tp.Planes; p++ {
		base := tp.SwitchBase[p]
		for i := 0; i < tp.SwitchCount[p]; i++ {
			if !tp.G.Transit(base + graph.NodeID(i)) {
				t.Errorf("switch %d not transit", base+graph.NodeID(i))
			}
		}
	}
}

func TestAssembleParallelPlanesDisjoint(t *testing.T) {
	set := FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	if tp.Planes != 2 {
		t.Fatalf("planes = %d", tp.Planes)
	}
	// Every link must connect nodes of the same plane, or a host to a
	// switch of the link's tagged plane.
	for i := 0; i < tp.G.NumLinks(); i++ {
		l := tp.G.Link(graph.LinkID(i))
		srcPlane := tp.PlaneOfSwitch(l.Src)
		dstPlane := tp.PlaneOfSwitch(l.Dst)
		switch {
		case srcPlane >= 0 && dstPlane >= 0:
			if srcPlane != dstPlane {
				t.Fatalf("link %d crosses planes %d->%d", i, srcPlane, dstPlane)
			}
			if int32(srcPlane) != l.Plane {
				t.Fatalf("link %d plane tag %d, in plane %d", i, l.Plane, srcPlane)
			}
		case srcPlane < 0 && dstPlane >= 0: // host uplink
			if int32(dstPlane) != l.Plane {
				t.Fatalf("uplink %d tag %d attaches to plane %d", i, l.Plane, dstPlane)
			}
		case srcPlane >= 0 && dstPlane < 0: // host downlink
			if int32(srcPlane) != l.Plane {
				t.Fatalf("downlink %d tag %d from plane %d", i, l.Plane, srcPlane)
			}
		default:
			t.Fatalf("link %d connects two hosts", i)
		}
	}
}

func TestAssembleUplinksPerPlane(t *testing.T) {
	set := FatTreeSet(4, 4, 100)
	tp := set.ParallelHomo
	for h := range tp.Hosts {
		if len(tp.Uplinks[h]) != 4 {
			t.Fatalf("host %d has %d uplinks", h, len(tp.Uplinks[h]))
		}
		for p, id := range tp.Uplinks[h] {
			l := tp.G.Link(id)
			if l.Src != tp.Hosts[h] || l.Plane != int32(p) {
				t.Errorf("host %d plane %d uplink wrong: %+v", h, p, l)
			}
			if tp.G.Link(tp.Downlinks[h][p]).Dst != tp.Hosts[h] {
				t.Errorf("host %d plane %d downlink wrong", h, p)
			}
		}
	}
	if got := tp.HostBandwidth(); got != 400 {
		t.Errorf("host bandwidth = %v, want 400", got)
	}
}

func TestAssembleMismatchedHostsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched plane host counts")
		}
	}()
	Assemble("bad", 100, FatTreePlane(4), FatTreePlane(8))
}

func TestRackGrouping(t *testing.T) {
	tp := Assemble("ft4", 100, FatTreePlane(4))
	// k=4: 2 hosts per edge switch, 8 racks.
	if tp.NumRacks != 8 {
		t.Fatalf("racks = %d, want 8", tp.NumRacks)
	}
	racks := tp.RackMembers()
	for r, members := range racks {
		if len(members) != 2 {
			t.Errorf("rack %d has %d members", r, len(members))
		}
	}
	if tp.RackOf[0] != tp.RackOf[1] || tp.RackOf[0] == tp.RackOf[2] {
		t.Errorf("rack assignment wrong: %v", tp.RackOf[:4])
	}
}

func TestJellyfishRegularAndConnected(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := JellyfishPlane(20, 5, 4, seed)
		deg := p.Degrees()
		full := 0
		for _, d := range deg {
			if d > 5 {
				t.Fatalf("seed %d: degree %d exceeds 5", seed, d)
			}
			if d == 5 {
				full++
			}
		}
		// The construction should place all or nearly all ports.
		if full < 18 {
			t.Errorf("seed %d: only %d/20 switches at full degree", seed, full)
		}
		tp := Assemble("jf", 100, p)
		dist := graph.HopDistances(tp.G, tp.Hosts[0])
		for _, h := range tp.Hosts {
			if h != tp.Hosts[0] && dist[h] < 0 {
				t.Fatalf("seed %d: host %d unreachable", seed, h)
			}
		}
	}
}

func TestJellyfishNoDuplicateEdges(t *testing.T) {
	p := JellyfishPlane(30, 6, 2, 42)
	seen := map[[2]int]bool{}
	for _, e := range p.Edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if a == b {
			t.Fatalf("self edge %v", e)
		}
		if seen[[2]int{a, b}] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[[2]int{a, b}] = true
	}
}

func TestJellyfishDeterministicPerSeed(t *testing.T) {
	a := JellyfishPlane(20, 5, 4, 7)
	b := JellyfishPlane(20, 5, 4, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := JellyfishPlane(20, 5, 4, 8)
	same := len(a.Edges) == len(c.Edges)
	if same {
		identical := true
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestJellyfishSetHeterogeneousDiffers(t *testing.T) {
	set := JellyfishSet(20, 5, 4, 4, 100, 1)
	het := set.ParallelHetero
	if het == nil {
		t.Fatal("no heterogeneous topology")
	}
	if het.Planes != 4 {
		t.Fatalf("planes = %d", het.Planes)
	}
	// Hop distributions of plane 1..3 should differ from plane 0 for at
	// least some host pair (different random graphs).
	homo := set.ParallelHomo
	diff := false
	hetDist := graph.HopDistances(het.G, het.Hosts[0])
	homoDist := graph.HopDistances(homo.G, homo.Hosts[0])
	for _, h := range het.Hosts[1:] {
		if hetDist[h] != homoDist[h] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("heterogeneous and homogeneous min-distances identical for all pairs from host 0 (suspicious)")
	}
}

func TestSerialHighSpeedScaled(t *testing.T) {
	set := FatTreeSet(4, 8, 100)
	if set.SerialHigh.LinkSpeed != 800 {
		t.Errorf("serial high speed = %v, want 800", set.SerialHigh.LinkSpeed)
	}
	if set.SerialLow.LinkSpeed != 100 {
		t.Errorf("serial low speed = %v", set.SerialLow.LinkSpeed)
	}
	l := set.SerialHigh.G.Link(set.SerialHigh.Uplinks[0][0])
	if l.Capacity != 800 {
		t.Errorf("serial high uplink capacity = %v", l.Capacity)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := []Components{
		{Tiers: 4, Hops: 7, Chips: 3584, Boxes: 3584, Links: 24576},
		{Tiers: 2, Hops: 7, Chips: 3584, Boxes: 192, Links: 8192},
		{Tiers: 2, Hops: 3, Chips: 1536, Boxes: 192, Links: 8192},
	}
	for i, w := range want {
		g := rows[i]
		if g.Tiers != w.Tiers || g.Hops != w.Hops || g.Chips != w.Chips ||
			g.Boxes != w.Boxes || g.Links != w.Links {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestInterSwitchLinks(t *testing.T) {
	tp := Assemble("ft4", 100, FatTreePlane(4))
	inter := tp.InterSwitchLinks()
	// Duplex: 2 directed per cable; cables = 2*k*(k/2)^2 = 32 for k=4.
	if len(inter) != 64 {
		t.Errorf("inter-switch directed links = %d, want 64", len(inter))
	}
	for _, id := range inter {
		l := tp.G.Link(id)
		if int(l.Src) < tp.NumHosts() || int(l.Dst) < tp.NumHosts() {
			t.Errorf("link %d touches a host", id)
		}
	}
}

func TestPaperJellyfish686(t *testing.T) {
	set := PaperJellyfish686(2, 100, 3)
	if set.SerialLow.NumHosts() != 686 {
		t.Errorf("hosts = %d, want 686", set.SerialLow.NumHosts())
	}
	if set.SerialLow.NumRacks != 98 {
		t.Errorf("racks = %d, want 98", set.SerialLow.NumRacks)
	}
}
