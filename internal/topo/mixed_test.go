package topo

import (
	"testing"

	"pnet/internal/graph"
)

func TestMixedPNetStructure(t *testing.T) {
	tp := MixedPNet(4, 3, 100, 7)
	if tp.NumHosts() != 16 {
		t.Fatalf("hosts = %d, want 16", tp.NumHosts())
	}
	if tp.Planes != 3 {
		t.Fatalf("planes = %d", tp.Planes)
	}
	// Plane 0 is the fat tree (20 switches for k=4); planes 1-2 are
	// 8-switch expanders (16 hosts / 2 per switch).
	if tp.SwitchCount[0] != 20 {
		t.Errorf("fat tree plane switches = %d, want 20", tp.SwitchCount[0])
	}
	for p := 1; p < 3; p++ {
		if tp.SwitchCount[p] != 8 {
			t.Errorf("expander plane %d switches = %d, want 8", p, tp.SwitchCount[p])
		}
	}
}

func TestMixedPNetConnectivityPerPlane(t *testing.T) {
	tp := MixedPNet(4, 3, 100, 7)
	// Every host pair must be reachable within every plane alone.
	for plane := 0; plane < tp.Planes; plane++ {
		mask := make([]bool, tp.G.NumLinks())
		for i := 0; i < tp.G.NumLinks(); i++ {
			if pl := tp.G.Link(graph.LinkID(i)).Plane; pl >= 0 && pl != int32(plane) {
				mask[i] = true
			}
		}
		for _, dst := range []graph.NodeID{tp.Hosts[5], tp.Hosts[15]} {
			if ps := graph.KShortestPathsMasked(tp.G, tp.Hosts[0], dst, 1, mask); len(ps) == 0 {
				t.Errorf("plane %d cannot reach host %d", plane, dst)
			}
		}
	}
}

func TestMixedPNetDisjointRedundancy(t *testing.T) {
	// A P-Net host pair has exactly one link-disjoint path per plane
	// (each host has one uplink per plane) — the §5.4 redundancy claim.
	for _, planes := range []int{2, 3} {
		tp := MixedPNet(4, planes, 100, 7)
		got := graph.EdgeDisjointPaths(tp.G, tp.Hosts[0], tp.Hosts[15], 0)
		if got != planes {
			t.Errorf("planes=%d: disjoint paths = %d", planes, got)
		}
	}
	// Serial fat tree: single uplink, single disjoint path.
	serial := FatTreeSet(4, 1, 100).SerialLow
	if got := graph.EdgeDisjointPaths(serial.G, serial.Hosts[0], serial.Hosts[15], 0); got != 1 {
		t.Errorf("serial disjoint paths = %d, want 1", got)
	}
}

func TestMixedPNetNeedsTwoPlanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MixedPNet(planes=1) did not panic")
		}
	}()
	MixedPNet(4, 1, 100, 7)
}
