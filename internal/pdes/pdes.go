// Package pdes drives a plane-sharded simulation run: conservative
// parallel discrete-event simulation (PDES) over the shard protocol in
// internal/sim (ShardSet) and the blocking gang barrier in internal/par.
//
// The partition follows the paper's physical structure. Dataplanes are
// disjoint — a packet picks one plane at the sending host and never
// leaves it — so each plane's switch queues form an independent event
// stream, coupled to the rest of the system only through the hosts. Both
// coupling edges (host NIC → ToR, ToR → host NIC) cross one link
// propagation delay, which is therefore the conservative lookahead: in a
// window [T, T+lookahead), every shard (the host shard included) can
// fire its pending events concurrently, because any event one shard
// creates for another lands at or beyond the window's end. Host timer
// callbacks (RTO wakes, sampler ticks, chaos scripts) may touch any
// state, so they bound windows and fire serially — they are microseconds
// to milliseconds apart, versus hundreds of packet events per window.
//
// Determinism is the contract that makes this usable: the run's output,
// including the global and per-plane fingerprint chains of internal/sim,
// is byte-identical to the serial engine at any shard count. See
// internal/sim/shard.go for the provisional-sequence renumbering that
// guarantees it; this package only decides when windows open and who
// runs in them.
package pdes

import (
	"runtime"

	"pnet/internal/graph"
	"pnet/internal/par"
	"pnet/internal/sim"
)

// Config sizes a sharded run.
type Config struct {
	// Shards is the number of plane shards (the host side is extra).
	Shards int
	// HostShards is the number of host sub-shards the host boundary is
	// partitioned into (see sim.NewShardSet). Zero or one selects the
	// classic single host shard.
	HostShards int
	// Lookahead is the conservative window span. Zero (or anything above
	// the network's propagation delay, the provable maximum) selects the
	// propagation delay.
	Lookahead sim.Time
	// Placement, when non-nil, overrides the default round-robin host
	// binding and plane-mod-shards assignment with an explicit partition
	// (see sim.Placement). Placement changes only which engine fires an
	// event, never the committed order, so output stays byte-identical.
	Placement *sim.Placement
}

// Stats counts what the window protocol did — the raw material for
// comparing achieved parallelism against the flight-recorder predictions.
type Stats struct {
	// Windows is the number of parallel windows executed.
	Windows int64
	// GangWindows counts windows fanned out to the worker gang (the rest
	// ran inline because at most one shard had work).
	GangWindows int64
	// WindowEvents is events fired inside windows; SerialEvents is events
	// fired one at a time with all shards synchronized (timers, mostly).
	WindowEvents int64
	SerialEvents int64
}

// Runner owns a sharded engine set and its gang of workers. Create with
// New, drive with RunUntil (from one goroutine), release with Close.
type Runner struct {
	set  *sim.ShardSet
	gang *par.Gang

	// Stats accumulates across RunUntil calls.
	Stats Stats
}

// New shards eng/net into cfg.Shards plane shards. hostSide reports
// whether a link's source node is a host (those queues stay on the host
// shard — that is what puts a full propagation delay on every cross-shard
// edge). The engine must not have been sharded before.
func New(eng *sim.Engine, net *sim.Network, hostSide func(graph.LinkID) bool, cfg Config) *Runner {
	hostShards := cfg.HostShards
	if hostShards < 1 {
		hostShards = 1
	}
	set := sim.NewShardSetPlaced(eng, net, cfg.Shards, hostShards, cfg.Lookahead, hostSide, cfg.Placement)
	r := &Runner{set: set, gang: par.NewGang(set.Engines())}
	// Lend the gang to the barrier so large windows commit their child
	// renumbering and outbox routing in parallel (see sim.ShardSet).
	set.Parallel = func(fn func(worker int)) {
		r.gang.Run(func(worker, of int) { fn(worker) })
	}
	// Sweep cells discard their drivers wholesale; the finalizer reaps the
	// gang's parked goroutines for runners nobody Closed explicitly.
	runtime.SetFinalizer(r, func(r *Runner) { r.gang.Close() })
	return r
}

// Lookahead reports the effective window span.
func (r *Runner) Lookahead() sim.Time { return r.set.Lookahead() }

// Shards reports the plane-shard count (excluding the host sub-shards).
func (r *Runner) Shards() int { return r.set.Engines() - r.set.HostShards() }

// HostShards reports the host sub-shard count (1 = single host shard).
func (r *Runner) HostShards() int { return r.set.HostShards() }

// RunUntil fires all events with timestamps up to and including deadline,
// then advances every shard's clock to it — the sharded equivalent of
// sim.Engine.RunUntil, returning the number of events fired.
func (r *Runner) RunUntil(deadline sim.Time) int {
	set := r.set
	fired := 0
	for {
		limit, parallel, done := set.Advance(deadline)
		if done {
			break
		}
		if !parallel {
			if !set.StepSerial() {
				break
			}
			fired++
			r.Stats.SerialEvents++
			continue
		}
		set.BeginWindow(limit)
		if set.BusyShards(limit) >= 2 {
			r.Stats.GangWindows++
			r.gang.Run(func(worker, of int) {
				set.RunShard(worker, limit)
			})
		} else {
			for i := 0; i < set.Engines(); i++ {
				set.RunShard(i, limit)
			}
		}
		n := set.EndWindow()
		fired += n
		r.Stats.WindowEvents += int64(n)
		r.Stats.Windows++
	}
	set.AdvanceAll(deadline)
	set.Quiesce()
	return fired
}

// Step fires the single globally-next event across all shards — timer or
// actor — in exact serial order, the sharded equivalent of sim.Engine.Step.
// Closed-loop workloads that interleave an exit check between events (RPC
// loops, shuffle stages) drive the run through this instead of RunUntil:
// they trade the window parallelism away for the event-granular stopping
// point the serial engine gives them, so their output stays byte-identical.
// Returns false when no events remain.
func (r *Runner) Step() bool {
	if !r.set.StepSerial() {
		return false
	}
	r.Stats.SerialEvents++
	return true
}

// Close releases the gang's worker goroutines. The runner must be idle.
func (r *Runner) Close() {
	runtime.SetFinalizer(r, nil)
	r.gang.Close()
}
