package pdes

import (
	"reflect"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// world is a synthetic multi-plane ping-pong workload exercising every
// event class the sharded engine must keep deterministic: uplink tx on
// the host shard, hop/tx on plane shards, delivers and replies through
// transport code, fn timers (ticks and a chaos-style link flap), drops
// on congested plane queues, and blackholes on a downed link.
type world struct {
	eng    *sim.Engine
	net    *sim.Network
	g      *graph.Graph
	hosts  int
	planes int
	up     [][]graph.LinkID // [host][plane] host NIC uplink
	down   [][]graph.LinkID // [host][plane] ToR→host downlink

	deliveredAt   []sim.Time
	deliveredFlow []int64
}

func newWorld(hosts, planes int, cfg sim.Config) *world {
	w := &world{hosts: hosts, planes: planes}
	w.g = graph.New(hosts + planes)
	for h := 0; h < hosts; h++ {
		w.g.SetTransit(graph.NodeID(h), false)
	}
	w.up = make([][]graph.LinkID, hosts)
	w.down = make([][]graph.LinkID, hosts)
	for h := 0; h < hosts; h++ {
		w.up[h] = make([]graph.LinkID, planes)
		w.down[h] = make([]graph.LinkID, planes)
		for p := 0; p < planes; p++ {
			sw := graph.NodeID(hosts + p)
			w.up[h][p], w.down[h][p] = w.g.AddDuplex(graph.NodeID(h), sw, 100, int32(p))
		}
	}
	w.eng = sim.NewEngine()
	w.net = sim.NewNetwork(w.eng, w.g, cfg)
	return w
}

// hostSide reports whether a link's source node is a host — the queue
// ownership predicate the sharded engine partitions by.
func (w *world) hostSide(id graph.LinkID) bool {
	return int(w.g.Link(id).Src) < w.hosts
}

// HandlePacket is the "transport": record the delivery, pong back on the
// same plane while the packet has rounds left.
func (w *world) HandlePacket(p *sim.Packet) {
	w.deliveredAt = append(w.deliveredAt, w.eng.Now())
	w.deliveredFlow = append(w.deliveredFlow, p.FlowID)
	if p.Aux > 0 {
		src := int(p.FlowID / 1000)
		dst := int(p.FlowID % 1000)
		w.send(dst, src, int(p.Seq), p.Aux-1)
	}
	w.net.Release(p)
}

func (w *world) send(src, dst, plane int, rounds int64) {
	p := w.net.NewPacket()
	p.Size = 1500
	p.Route = []graph.LinkID{w.up[src][plane], w.down[dst][plane]}
	p.Deliver = w
	p.FlowID = int64(src)*1000 + int64(dst)
	p.Seq = int64(plane)
	p.Aux = rounds
	w.net.Send(p)
}

// start schedules the tick timers: every 50 µs each host opens a 4-round
// ping-pong to a rotating peer on a rotating plane — bursts of same-
// instant events across every plane, interleaved with fn timers. A link
// flap at 1.0–1.2 ms blackholes in-flight traffic on one plane.
func (w *world) start(dur sim.Time) {
	const tickEvery = 50 * sim.Microsecond
	for tick := 0; sim.Time(tick)*tickEvery < dur; tick++ {
		t := sim.Time(tick) * tickEvery
		k := tick
		w.eng.At(t, func() {
			if k%2 == 0 {
				// Incast: everyone to one victim on one plane, overflowing
				// its downlink queue — the plane-shard drop path.
				dst := k % w.hosts
				for h := 0; h < w.hosts; h++ {
					if h != dst {
						w.send(h, dst, k%w.planes, 2)
					}
				}
				return
			}
			for h := 0; h < w.hosts; h++ {
				dst := (h + 1 + k%(w.hosts-1)) % w.hosts
				w.send(h, dst, (h+k)%w.planes, 4)
			}
		})
	}
	flap := w.down[1][0]
	w.eng.At(1000*sim.Microsecond, func() { w.net.SetLinkUp(flap, false) })
	w.eng.At(1200*sim.Microsecond, func() { w.net.SetLinkUp(flap, true) })
}

type outcome struct {
	fpGlobal, fpHost uint64
	fpPlanes         []uint64
	fpEvents         int64
	fired, scheduled uint64
	drops, blackhole int64
	deliveredAt      []sim.Time
	deliveredFlow    []int64
	bins             []sim.ProfileBin
}

func (w *world) outcome() outcome {
	o := outcome{
		fired:         w.eng.EventsFired(),
		scheduled:     w.eng.EventsScheduled(),
		drops:         w.net.TotalDrops(),
		blackhole:     w.net.TotalBlackholed(),
		deliveredAt:   w.deliveredAt,
		deliveredFlow: w.deliveredFlow,
	}
	if fp := w.eng.Fingerprint; fp != nil {
		o.fpGlobal, o.fpHost, o.fpPlanes = fp.Chains()
		o.fpEvents = fp.Events()
	}
	if w.eng.Recorder != nil {
		o.bins = w.eng.Recorder.Snapshot()
	}
	return o
}

// run executes the workload to 2 ms in three RunUntil segments (the
// segment boundaries land mid-traffic on purpose). shards == 0 is the
// untouched serial engine.
func run(t *testing.T, shards int, lookahead sim.Time, instrument bool) outcome {
	t.Helper()
	// Queue of 3 packets at the ToR downlinks forces drops on plane
	// shards when bursts collide.
	w := newWorld(6, 3, sim.Config{QueueBytes: 4500})
	if instrument {
		w.eng.Fingerprint = sim.NewFingerprinter(256)
		w.eng.Recorder = sim.NewFlightRecorder()
	}
	w.start(2000 * sim.Microsecond)
	segments := []sim.Time{700 * sim.Microsecond, 1400 * sim.Microsecond, 2000 * sim.Microsecond}
	if shards == 0 {
		for _, seg := range segments {
			w.eng.RunUntil(seg)
		}
		return w.outcome()
	}
	r := New(w.eng, w.net, w.hostSide, Config{Shards: shards, Lookahead: lookahead})
	defer r.Close()
	for _, seg := range segments {
		r.RunUntil(seg)
	}
	if r.Stats.Windows == 0 {
		t.Fatalf("shards=%d: no parallel windows executed", shards)
	}
	return w.outcome()
}

// TestShardedMatchesSerial is the protocol's core contract: every
// observable — fingerprint chains (global, host, per-plane), event
// counts, sequence counts, drop/blackhole totals, delivery order, and
// profile bin counts — identical to the serial engine at any shard
// count, including more shards than planes.
func TestShardedMatchesSerial(t *testing.T) {
	serial := run(t, 0, 0, true)
	if serial.fpEvents == 0 || serial.drops == 0 || serial.blackhole == 0 {
		t.Fatalf("serial run not exercising enough: %+v", serial)
	}
	for _, shards := range []int{1, 2, 3, 5} {
		got := run(t, shards, 0, true)
		if got.fpGlobal != serial.fpGlobal || got.fpHost != serial.fpHost ||
			!reflect.DeepEqual(got.fpPlanes, serial.fpPlanes) {
			t.Errorf("shards=%d: fingerprint chains diverge: got %x/%x/%x want %x/%x/%x",
				shards, got.fpGlobal, got.fpHost, got.fpPlanes,
				serial.fpGlobal, serial.fpHost, serial.fpPlanes)
		}
		if got.fpEvents != serial.fpEvents || got.fired != serial.fired || got.scheduled != serial.scheduled {
			t.Errorf("shards=%d: counts diverge: events %d/%d fired %d/%d scheduled %d/%d",
				shards, got.fpEvents, serial.fpEvents, got.fired, serial.fired, got.scheduled, serial.scheduled)
		}
		if got.drops != serial.drops || got.blackhole != serial.blackhole {
			t.Errorf("shards=%d: loss diverges: drops %d/%d blackholed %d/%d",
				shards, got.drops, serial.drops, got.blackhole, serial.blackhole)
		}
		if !reflect.DeepEqual(got.deliveredAt, serial.deliveredAt) ||
			!reflect.DeepEqual(got.deliveredFlow, serial.deliveredFlow) {
			t.Errorf("shards=%d: delivery stream diverges (%d vs %d deliveries)",
				shards, len(got.deliveredAt), len(serial.deliveredAt))
		}
		// Bin event counts are deterministic; wall times are not.
		for i := range got.bins {
			got.bins[i].WallNs = 0
		}
		want := append([]sim.ProfileBin(nil), serial.bins...)
		for i := range want {
			want[i].WallNs = 0
		}
		if !reflect.DeepEqual(got.bins, want) {
			t.Errorf("shards=%d: profile bins diverge:\n got %+v\nwant %+v", shards, got.bins, want)
		}
	}
}

// TestShardedBareEngine covers the uninstrumented path (no fingerprint,
// no recorder) where windows skip all bookkeeping except the merge.
func TestShardedBareEngine(t *testing.T) {
	serial := run(t, 0, 0, false)
	got := run(t, 4, 0, false)
	if got.fired != serial.fired || !reflect.DeepEqual(got.deliveredAt, serial.deliveredAt) {
		t.Errorf("bare sharded run diverges: fired %d/%d, deliveries %d/%d",
			got.fired, serial.fired, len(got.deliveredAt), len(serial.deliveredAt))
	}
}

// TestLookaheadClamped: an over-large -lookahead must clamp to the
// propagation delay (larger windows would be unsound), and a tiny one
// must still be exact, just slower.
func TestLookaheadClamped(t *testing.T) {
	serial := run(t, 0, 0, true)
	for _, look := range []sim.Time{100 * sim.Nanosecond, 5 * sim.Microsecond} {
		got := run(t, 2, look, true)
		if got.fpGlobal != serial.fpGlobal {
			t.Errorf("lookahead=%v: global chain diverges", look)
		}
	}
}

// TestRunnerStats sanity-checks the window/serial split: ticks and flap
// timers run serially, packet traffic runs in windows.
func TestRunnerStats(t *testing.T) {
	w := newWorld(6, 3, sim.Config{QueueBytes: 4500})
	w.start(2000 * sim.Microsecond)
	r := New(w.eng, w.net, w.hostSide, Config{Shards: 3})
	defer r.Close()
	fired := r.RunUntil(2000 * sim.Microsecond)
	if fired == 0 || int64(fired) != int64(r.Stats.WindowEvents)+r.Stats.SerialEvents {
		t.Errorf("fired=%d, window=%d serial=%d", fired, r.Stats.WindowEvents, r.Stats.SerialEvents)
	}
	if r.Stats.GangWindows == 0 {
		t.Error("no windows used the gang")
	}
	if r.Stats.WindowEvents < 4*r.Stats.SerialEvents {
		t.Errorf("windows too small: %d window events vs %d serial", r.Stats.WindowEvents, r.Stats.SerialEvents)
	}
	if r.Lookahead() != w.net.PropDelay() {
		t.Errorf("lookahead=%v, want prop delay %v", r.Lookahead(), w.net.PropDelay())
	}
}
