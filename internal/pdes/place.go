package pdes

// Profile-guided placement replay: `pnetstat profile -emit-placement`
// exports the measured per-host and per-plane occupancy of a profiled run
// as a placement file, and `pnetbench -placement file.json` replays those
// counts as exact weights for the LPT planner (sim.PlanHosts/PlanPlanes) —
// the two-run "measure, then rebalance" loop of DESIGN.md §13. The file
// is validated strictly at load time; every violation is a one-line
// *PlacementError naming the problem and how to fix it.

import (
	"encoding/json"
	"fmt"
	"os"
)

// PlacementVersion is the placement file schema version this build reads
// and writes.
const PlacementVersion = 1

// PlacementFile is the JSON shape of a placement file. Weights are
// measured (or expected) event counts; the planner packs by weight. An
// entry's optional Shard pins it to a specific sub-shard / plane shard,
// in which case the HostShards / Shards headers must say which partition
// width the pin is valid for.
type PlacementFile struct {
	Version int `json:"version"`
	// HostShards / Shards record the partition widths the file was
	// generated for (0 = unspecified). When set, a replaying run must use
	// the same widths — pins and measured splits are meaningless across
	// different partitionings.
	HostShards int           `json:"host_shards,omitempty"`
	Shards     int           `json:"shards,omitempty"`
	Hosts      []HostWeight  `json:"hosts"`
	Planes     []PlaneWeight `json:"planes,omitempty"`
}

// HostWeight is one host's measured load; Shard (optional) pins it.
type HostWeight struct {
	Host   int64 `json:"host"`
	Weight int64 `json:"weight"`
	Shard  *int  `json:"shard,omitempty"`
}

// PlaneWeight is one dataplane's measured load; Shard (optional) pins it.
type PlaneWeight struct {
	Plane  int32 `json:"plane"`
	Weight int64 `json:"weight"`
	Shard  *int  `json:"shard,omitempty"`
}

// PlacementError is a placement file's validation failure: what is wrong
// and how to remedy it, rendered on one line.
type PlacementError struct {
	Path   string
	Detail string
	Remedy string
}

func (e *PlacementError) Error() string {
	s := fmt.Sprintf("placement file %s: %s", e.Path, e.Detail)
	if e.Remedy != "" {
		s += " (" + e.Remedy + ")"
	}
	return s
}

const regenRemedy = "regenerate with `pnetstat profile -emit-placement` from a profiled run"

// LoadPlacementFile reads and strictly validates a placement file. Every
// failure is a *PlacementError.
func LoadPlacementFile(path string) (*PlacementFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &PlacementError{Path: path, Detail: err.Error(), Remedy: regenRemedy}
	}
	return ParsePlacementFile(path, data)
}

// ParsePlacementFile decodes and strictly validates placement file bytes;
// path only labels errors. Every failure is a *PlacementError.
func ParsePlacementFile(path string, data []byte) (*PlacementFile, error) {
	var f PlacementFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, &PlacementError{Path: path, Detail: "not valid JSON: " + err.Error(), Remedy: regenRemedy}
	}
	if err := f.validate(path); err != nil {
		return nil, err
	}
	return &f, nil
}

// validate applies the strict schema checks.
func (f *PlacementFile) validate(path string) error {
	fail := func(detail, remedy string) error {
		return &PlacementError{Path: path, Detail: detail, Remedy: remedy}
	}
	if f.Version != PlacementVersion {
		return fail(fmt.Sprintf("unsupported version %d, this build reads version %d", f.Version, PlacementVersion), regenRemedy)
	}
	if f.HostShards < 0 || f.Shards < 0 {
		return fail(fmt.Sprintf("negative partition width host_shards=%d shards=%d", f.HostShards, f.Shards), regenRemedy)
	}
	if len(f.Hosts) == 0 {
		return fail("no host entries", regenRemedy)
	}
	seenHost := make(map[int64]bool, len(f.Hosts))
	for _, h := range f.Hosts {
		if seenHost[h.Host] {
			return fail(fmt.Sprintf("host %d assigned twice", h.Host), "remove the duplicate entry")
		}
		seenHost[h.Host] = true
		if h.Weight < 0 {
			return fail(fmt.Sprintf("host %d has negative weight %d", h.Host, h.Weight), regenRemedy)
		}
		if h.Shard != nil {
			if f.HostShards <= 0 {
				return fail(fmt.Sprintf("host %d pins sub-shard %d but the host_shards header is unset", h.Host, *h.Shard),
					"set host_shards to the partition width the pin targets")
			}
			if *h.Shard < 0 || *h.Shard >= f.HostShards {
				return fail(fmt.Sprintf("host %d pinned to sub-shard %d, outside [0,%d)", h.Host, *h.Shard, f.HostShards),
					"fix the shard field or the host_shards header")
			}
		}
	}
	seenPlane := make(map[int32]bool, len(f.Planes))
	for _, p := range f.Planes {
		if seenPlane[p.Plane] {
			return fail(fmt.Sprintf("plane %d assigned twice", p.Plane), "remove the duplicate entry")
		}
		seenPlane[p.Plane] = true
		if p.Weight < 0 {
			return fail(fmt.Sprintf("plane %d has negative weight %d", p.Plane, p.Weight), regenRemedy)
		}
		if p.Shard != nil {
			if f.Shards <= 0 {
				return fail(fmt.Sprintf("plane %d pins shard %d but the shards header is unset", p.Plane, *p.Shard),
					"set shards to the partition width the pin targets")
			}
			if *p.Shard < 0 || *p.Shard >= f.Shards {
				return fail(fmt.Sprintf("plane %d pinned to shard %d, outside [0,%d)", p.Plane, *p.Shard, f.Shards),
					"fix the shard field or the shards header")
			}
		}
	}
	return nil
}

// HostWeights returns the file's host weight and pin maps, keyed by host
// node ID.
func (f *PlacementFile) HostWeights() (weights map[int64]int64, pins map[int64]int) {
	weights = make(map[int64]int64, len(f.Hosts))
	pins = map[int64]int{}
	for _, h := range f.Hosts {
		weights[h.Host] = h.Weight
		if h.Shard != nil {
			pins[h.Host] = *h.Shard
		}
	}
	return weights, pins
}

// PlaneWeights returns the file's plane weight and pin maps.
func (f *PlacementFile) PlaneWeights() (weights map[int32]int64, pins map[int32]int) {
	weights = make(map[int32]int64, len(f.Planes))
	pins = map[int32]int{}
	for _, p := range f.Planes {
		weights[p.Plane] = p.Weight
		if p.Shard != nil {
			pins[p.Plane] = *p.Shard
		}
	}
	return weights, pins
}

// WritePlacementFile marshals f (indented, trailing newline) to path.
func WritePlacementFile(path string, f *PlacementFile) error {
	if err := f.validate(path); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
