// Package par is the repository's multicore execution layer: a small,
// deterministic worker-pool primitive for fanning independent work items
// out across cores.
//
// Design constraints, in order:
//
//   - Determinism. Results are collected by item index, never by
//     completion order, so callers that give every item its own RNG
//     seed, sim engine, and collector produce bit-identical output at
//     any worker count. Nothing in this package introduces ordering
//     into results.
//   - Bounded fan-out. A process-wide token pool caps the number of
//     extra worker goroutines across all concurrent and nested Do/Map
//     calls. The calling goroutine always participates, so a call that
//     obtains no tokens degrades to a plain serial loop — nested
//     parallelism (experiment cells that call parallel path
//     computation) can never deadlock or oversubscribe the machine.
//   - Panic transparency. A panic in any work item is captured and
//     re-raised in the caller as a *Panic carrying the item index, the
//     original value, and the worker's stack, instead of crashing the
//     process from an anonymous goroutine.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// tokens is the process-wide pool of extra-worker permits. Capacity
// limit-1: the caller of every Do is itself a worker, so limit L means
// at most L goroutines are ever running work items for one call chain.
var (
	tokensMu sync.Mutex
	tokens   chan struct{}
)

func init() { SetLimit(0) }

// SetLimit caps the total number of goroutines running work items
// across all Do/Map calls, nested or concurrent. n <= 0 resets to
// runtime.GOMAXPROCS(0). Call it from main (pnetbench's -workers flag)
// or test setup; changing the limit does not affect calls already in
// flight, and never changes results — only scheduling.
func SetLimit(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	tokensMu.Lock()
	defer tokensMu.Unlock()
	tokens = make(chan struct{}, n-1)
}

// Limit reports the current process-wide worker cap.
func Limit() int {
	tokensMu.Lock()
	defer tokensMu.Unlock()
	return cap(tokens) + 1
}

// Workers resolves a per-call worker request: n > 0 is taken as-is,
// anything else means "use every core" (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Pool occupancy counters, sampled by the event-loop profiler to report
// how busy the execution layer actually was. Counting is atomic (Do runs
// concurrently) but purely observational — it never affects scheduling
// or results.
var (
	poolActive atomic.Int64 // goroutines currently inside a work item
	poolPeak   atomic.Int64 // high-water mark of poolActive
	poolTasks  atomic.Int64 // work items completed since ResetStats
)

// Stats is a snapshot of worker-pool occupancy.
type Stats struct {
	// Limit is the process-wide worker cap (see SetLimit).
	Limit int
	// Peak is the maximum number of goroutines observed running work
	// items simultaneously since the last ResetStats.
	Peak int
	// Tasks is the number of work items completed since ResetStats.
	Tasks int64
}

// PoolStats snapshots the pool's occupancy counters.
func PoolStats() Stats {
	return Stats{
		Limit: Limit(),
		Peak:  int(poolPeak.Load()),
		Tasks: poolTasks.Load(),
	}
}

// ResetStats zeroes the occupancy counters (not the limit).
func ResetStats() {
	poolPeak.Store(0)
	poolTasks.Store(0)
}

// enterItem/leaveItem bracket one work item for occupancy accounting.
func enterItem() {
	a := poolActive.Add(1)
	for {
		p := poolPeak.Load()
		if a <= p || poolPeak.CompareAndSwap(p, a) {
			return
		}
	}
}

func leaveItem() {
	poolActive.Add(-1)
	poolTasks.Add(1)
}

// Panic is re-raised in the Do/Map caller when a work item panicked in
// a worker goroutine.
type Panic struct {
	// Index is the work item that panicked.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("par: work item %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Do runs fn(i) for every i in [0, n) with at most `workers` of them in
// flight at once (0 = GOMAXPROCS), further bounded by the process-wide
// limit. fn must treat shared inputs as read-only; writes must go to
// per-index slots. The call returns when every item has finished. If an
// item panics, remaining unstarted items are skipped and the panic is
// re-raised here as a *Panic once in-flight items drain.
//
// workers == 1 (or n <= 1) runs everything inline on the calling
// goroutine — the serial fallback path, byte-identical by construction.
// In that mode a panic propagates unwrapped, exactly as a plain loop
// would raise it.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 || n == 1 {
		enterItem()
		for i := 0; i < n; i++ {
			fn(i)
			poolTasks.Add(1)
		}
		poolActive.Add(-1)
		return
	}

	tokensMu.Lock()
	pool := tokens
	tokensMu.Unlock()

	var (
		next atomic.Int64
		fail atomic.Pointer[Panic]
		wg   sync.WaitGroup
	)
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				enterItem()
				defer func() {
					leaveItem()
					if r := recover(); r != nil {
						p := &Panic{Index: i, Value: r, Stack: debug.Stack()}
						fail.CompareAndSwap(nil, p)
						next.Store(int64(n)) // stop handing out items
					}
				}()
				fn(i)
			}()
		}
	}
	// Grab up to w-1 extra workers without blocking; whatever the pool
	// cannot spare is simply absorbed by the caller running more items
	// itself. This is what makes nested Do calls safe: inner calls find
	// the pool drained and run inline.
acquire:
	for i := 0; i < w-1; i++ {
		select {
		case pool <- struct{}{}:
		default:
			break acquire // pool drained; the caller absorbs the rest
		}
		wg.Add(1)
		go func() {
			defer func() {
				<-pool
				wg.Done()
			}()
			work()
		}()
	}
	work() // the caller is always a worker
	wg.Wait()
	if p := fail.Load(); p != nil {
		panic(p)
	}
}

// Map runs fn(i) for every i in [0, n) under the same pool rules as Do
// and returns the results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
