package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withLimit runs f under a temporary process-wide worker cap.
func withLimit(t *testing.T, n int, f func()) {
	t.Helper()
	old := Limit()
	SetLimit(n)
	defer SetLimit(old)
	f()
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		withLimit(t, 8, func() {
			got := Map(100, workers, func(i int) int { return i * i })
			for i, v := range got {
				if v != i*i {
					t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
				}
			}
		})
	}
}

func TestDoRunsEveryItemExactlyOnce(t *testing.T) {
	withLimit(t, 8, func() {
		const n = 1000
		counts := make([]atomic.Int32, n)
		Do(n, 0, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("item %d ran %d times", i, c)
			}
		}
	})
}

func TestWorkerOneIsInline(t *testing.T) {
	// workers=1 must run on the calling goroutine, in index order, with
	// no pool interaction — the serial fallback.
	var order []int
	Do(10, 1, func(i int) { order = append(order, i) }) // unsynchronized append: inline or race
	for i, v := range order {
		if v != i {
			t.Fatalf("serial fallback out of order: %v", order)
		}
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	Do(-3, 4, func(int) { ran = true })
	if ran {
		t.Error("fn ran for n <= 0")
	}
	if out := Map(0, 4, func(int) int { return 1 }); len(out) != 0 {
		t.Errorf("Map(0) = %v", out)
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withLimit(t, 4, func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if workers == 1 {
					// The serial fallback is a plain loop: the panic
					// arrives unwrapped.
					if r != "boom" {
						t.Fatalf("workers=1: recovered %v, want raw \"boom\"", r)
					}
					return
				}
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *Panic", workers, r)
				}
				if p.Value != "boom" {
					t.Errorf("panic value = %v, want boom", p.Value)
				}
				if p.Index != 3 {
					t.Errorf("panic index = %d, want 3", p.Index)
				}
				if len(p.Stack) == 0 {
					t.Error("panic lost its stack")
				}
			}()
			Do(8, workers, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		})
	}
}

func TestPanicStopsSchedulingNewItems(t *testing.T) {
	withLimit(t, 2, func() {
		var ran atomic.Int32
		func() {
			defer func() { recover() }()
			Do(10_000, 2, func(i int) {
				if i == 0 {
					panic("early")
				}
				ran.Add(1)
			})
		}()
		// In-flight items may finish, but the bulk of the queue must be
		// skipped once the panic lands.
		if n := ran.Load(); n > 9000 {
			t.Errorf("%d items ran after an item-0 panic", n)
		}
	})
}

func TestNestedDoDoesNotDeadlock(t *testing.T) {
	withLimit(t, 4, func() {
		var sum atomic.Int64
		Do(8, 0, func(i int) {
			// Inner fan-out while the outer call may hold every token:
			// must degrade to inline execution, never block.
			Do(8, 0, func(j int) { sum.Add(int64(i*8 + j)) })
		})
		want := int64(64 * 63 / 2)
		if got := sum.Load(); got != want {
			t.Fatalf("sum = %d, want %d", got, want)
		}
	})
}

func TestBoundedConcurrency(t *testing.T) {
	const limit = 3
	withLimit(t, limit, func() {
		var cur, peak atomic.Int32
		Do(64, 0, func(i int) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			runtime.Gosched()
			cur.Add(-1)
		})
		if p := peak.Load(); p > limit {
			t.Errorf("observed %d concurrent items, limit %d", p, limit)
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Error("zero did not resolve to GOMAXPROCS")
	}
	if Workers(-2) != runtime.GOMAXPROCS(0) {
		t.Error("negative did not resolve to GOMAXPROCS")
	}
	withLimit(t, 7, func() {
		if Limit() != 7 {
			t.Errorf("Limit = %d, want 7", Limit())
		}
	})
}
