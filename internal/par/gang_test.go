package par

import (
	"sync/atomic"
	"testing"
)

func TestGangRunsEveryWorker(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	if g.Workers() != 4 {
		t.Fatalf("Workers() = %d", g.Workers())
	}
	var hits [4]int32
	for round := 0; round < 100; round++ {
		g.Run(func(worker, of int) {
			if of != 4 {
				t.Errorf("of = %d", of)
			}
			atomic.AddInt32(&hits[worker], 1)
		})
	}
	for i, h := range hits {
		if h != 100 {
			t.Errorf("worker %d ran %d/100 times", i, h)
		}
	}
}

func TestGangOfOneRunsInline(t *testing.T) {
	g := NewGang(1)
	defer g.Close()
	ran := false
	g.Run(func(worker, of int) {
		if worker != 0 || of != 1 {
			t.Errorf("worker=%d of=%d", worker, of)
		}
		ran = true
	})
	if !ran {
		t.Fatal("did not run")
	}
}

func TestGangPanicPropagatesAndStaysUsable(t *testing.T) {
	g := NewGang(3)
	defer g.Close()
	func() {
		defer func() {
			p, ok := recover().(*Panic)
			if !ok {
				t.Fatalf("recovered %T, want *Panic", p)
			}
			if p.Index != 2 {
				t.Errorf("Panic.Index = %d, want 2", p.Index)
			}
		}()
		g.Run(func(worker, of int) {
			if worker == 2 {
				panic("boom")
			}
		})
		t.Fatal("Run did not panic")
	}()
	// The barrier completed despite the panic; the gang still works.
	var n int32
	g.Run(func(worker, of int) { atomic.AddInt32(&n, 1) })
	if n != 3 {
		t.Errorf("post-panic Run hit %d/3 workers", n)
	}
}

func TestGangCallerPanicWins(t *testing.T) {
	g := NewGang(2)
	defer g.Close()
	defer func() {
		p, ok := recover().(*Panic)
		if !ok || p.Index != 0 {
			t.Fatalf("recovered %v, want *Panic from worker 0", p)
		}
	}()
	g.Run(func(worker, of int) {
		if worker == 0 {
			panic("caller side")
		}
	})
}

func TestGangCloseTwice(t *testing.T) {
	g := NewGang(2)
	g.Close()
	g.Close()
}
