package par

import "runtime/debug"

// Gang is the blocking fork-join counterpart to the non-blocking token
// pool: a fixed crew of persistent goroutines that execute one function
// in lockstep and barrier before Run returns. The sharded event loop
// (internal/pdes) runs thousands of sub-millisecond windows per simulated
// second — spawning goroutines or contending for pool tokens per window
// would swamp the work, so the gang parks its workers on per-worker job
// channels between windows.
//
// A gang deliberately does NOT draw from the process-wide pool limit:
// pool tokens bound *concurrent sweep cells* (each cell owns an engine),
// while gang workers parallelize the inside of one engine's run. A
// `-workers 1 -shards 4` run is serial across cells and parallel across
// shards, which is exactly what the determinism CI exercises.
type Gang struct {
	n    int
	jobs []chan func(worker int)
	done chan *Panic
}

// NewGang returns a gang of n workers (n ≤ 1 needs no goroutines: Run
// executes inline). The caller participates as worker 0, so a gang of n
// starts n-1 goroutines. Close releases them.
func NewGang(n int) *Gang {
	g := &Gang{n: n}
	if n <= 1 {
		return g
	}
	g.jobs = make([]chan func(worker int), n-1)
	g.done = make(chan *Panic, n-1)
	for i := range g.jobs {
		ch := make(chan func(worker int))
		g.jobs[i] = ch
		// serve is a free function so parked workers reference only their
		// channels, not the Gang — a finalizer on an owner (see
		// internal/pdes) can then reap a gang whose Close was never called.
		go serve(i+1, ch, g.done)
	}
	return g
}

// Workers reports the gang's size (including the caller).
func (g *Gang) Workers() int {
	if g.n < 1 {
		return 1
	}
	return g.n
}

func serve(worker int, ch chan func(worker int), done chan *Panic) {
	for fn := range ch {
		done <- runGuarded(worker, fn)
	}
}

func runGuarded(worker int, fn func(int)) (p *Panic) {
	defer func() {
		if r := recover(); r != nil {
			p = &Panic{Index: worker, Value: r, Stack: debug.Stack()}
		}
	}()
	fn(worker)
	return nil
}

// Run executes fn(worker, of) on every worker — the caller as worker 0 —
// and returns once all have finished. If any worker panicked, Run
// re-panics with a *Panic after the barrier, so the gang is always
// reusable afterwards.
func (g *Gang) Run(fn func(worker, of int)) {
	if g.n <= 1 {
		fn(0, 1)
		return
	}
	of := g.n
	body := func(worker int) { fn(worker, of) }
	for _, ch := range g.jobs {
		ch <- body
	}
	first := runGuarded(0, body)
	for range g.jobs {
		if p := <-g.done; first == nil {
			first = p
		}
	}
	if first != nil {
		panic(first)
	}
}

// Close shuts the worker goroutines down. The gang must be idle; Run
// must not be called afterwards. Safe on a gang of 1 and safe to call
// twice (second call is a no-op).
func (g *Gang) Close() {
	for _, ch := range g.jobs {
		close(ch)
	}
	g.jobs = nil
}
