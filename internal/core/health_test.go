package core

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
	"pnet/internal/topo"
)

// monitoredNet builds a two-plane fat-tree with a simulated dataplane
// and a health monitor probing host 0 ↔ host 1.
func monitoredNet(cfg HealthConfig) (*sim.Engine, *sim.Network, *PNet, *HealthMonitor) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, tp.G, sim.Config{})
	p := New(tp)
	m := NewHealthMonitor(eng, net, p, 0, 1, cfg)
	return eng, net, p, m
}

// setPlanePhysical flips every link of a plane in the simulated
// dataplane only — what a chaos injector does — leaving the hosts' graph
// view untouched.
func setPlanePhysical(net *sim.Network, plane int32, up bool) {
	g := net.G
	for i := 0; i < g.NumLinks(); i++ {
		if g.Link(graph.LinkID(i)).Plane == plane {
			net.SetLinkUp(graph.LinkID(i), up)
		}
	}
}

func TestHealthMonitorQuietOnHealthyNet(t *testing.T) {
	eng, _, p, m := monitoredNet(HealthConfig{})
	var events []PlaneEvent
	m.OnChange = func(e PlaneEvent) { events = append(events, e) }
	m.Start()
	eng.RunUntil(5 * sim.Millisecond)
	if len(events) != 0 {
		t.Fatalf("healthy network produced %d liveness events: %v", len(events), events)
	}
	if m.PlaneDown(0) || m.PlaneDown(1) || !p.PlaneUp(0) || !p.PlaneUp(1) {
		t.Error("healthy plane declared down")
	}
}

func TestHealthMonitorDetectsAndRecovers(t *testing.T) {
	cfg := HealthConfig{Interval: 100 * sim.Microsecond}
	eng, net, p, m := monitoredNet(cfg)
	var events []PlaneEvent
	m.OnChange = func(e PlaneEvent) { events = append(events, e) }
	m.Start()

	faultAt := 5 * sim.Millisecond
	clearAt := 10 * sim.Millisecond
	eng.At(faultAt, func() { setPlanePhysical(net, 0, false) })
	eng.At(clearAt, func() { setPlanePhysical(net, 0, true) })
	eng.RunUntil(15 * sim.Millisecond)

	if len(events) != 2 {
		t.Fatalf("events = %v, want down then up", events)
	}
	down, up := events[0], events[1]
	if down.Plane != 0 || down.Up {
		t.Fatalf("first event = %+v, want plane 0 down", down)
	}
	detect := down.At - faultAt
	if detect <= 0 {
		t.Errorf("detection latency %v not positive — oracle failover?", detect)
	}
	// The verdict needs DownAfter (3×100 µs default) of silence plus at
	// most one probe interval and a round-trip of slack.
	if limit := 600 * sim.Microsecond; detect > limit {
		t.Errorf("detection latency %v too slow (limit %v)", detect, limit)
	}
	if up.Plane != 0 || !up.Up || up.At <= clearAt {
		t.Errorf("second event = %+v, want plane 0 up after %v", up, clearAt)
	}

	// The monitor must have driven the control plane, not just reported.
	if !p.PlaneUp(0) {
		t.Error("plane 0 not restored in PNet after recovery")
	}
	if m.PlaneDown(0) {
		t.Error("monitor verdict still down after recovery")
	}
	// Blackholed probes are the only traffic here; the fault must have
	// eaten some.
	if net.TotalBlackholed() == 0 {
		t.Error("no probes blackholed across a 5ms outage")
	}
}

func TestHealthMonitorDrivesReroute(t *testing.T) {
	eng, net, p, m := monitoredNet(HealthConfig{Interval: 100 * sim.Microsecond})
	m.Start()
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]

	before, ok := p.LowLatencyPath(src, dst)
	if !ok {
		t.Fatal("no path before fault")
	}
	eng.At(2*sim.Millisecond, func() { setPlanePhysical(net, 0, false) })
	eng.RunUntil(5 * sim.Millisecond)

	after, ok := p.LowLatencyPath(src, dst)
	if !ok {
		t.Fatal("no path after plane 0 died — failover failed")
	}
	if after.Plane(p.Topo.G) != 1 {
		t.Errorf("path still on plane %d after detection", after.Plane(p.Topo.G))
	}
	_ = before
}

func TestHealthMonitorUntilStopsProbing(t *testing.T) {
	eng, _, _, m := monitoredNet(HealthConfig{Interval: 100 * sim.Microsecond, Until: sim.Millisecond})
	m.Start()
	// With Until set, the event heap must drain on its own.
	eng.Run()
	if now := eng.Now(); now > 2*sim.Millisecond {
		t.Errorf("engine ran to %v, want to stop soon after Until", now)
	}
}

func TestHealthMonitorStop(t *testing.T) {
	eng, net, _, m := monitoredNet(HealthConfig{Interval: 100 * sim.Microsecond})
	var events []PlaneEvent
	m.OnChange = func(e PlaneEvent) { events = append(events, e) }
	m.Start()
	eng.At(sim.Millisecond, func() { m.Stop() })
	eng.At(2*sim.Millisecond, func() { setPlanePhysical(net, 0, false) })
	eng.RunUntil(10 * sim.Millisecond)
	if len(events) != 0 {
		t.Errorf("stopped monitor still declared %v", events)
	}
}
