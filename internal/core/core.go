// Package core implements the P-Net end-host control plane — the paper's
// primary contribution. In a Parallel Dataplane Network the end host, not
// the fabric, decides which dataplane(s) and path(s) every flow uses
// (§3.4). This package exposes that decision surface:
//
//   - the "low-latency" proxy interface: a single shortest path, which in
//     a heterogeneous P-Net automatically lands on the plane with the
//     fewest hops to the destination;
//   - the "high-throughput" proxy interface: K shortest paths interleaved
//     across planes, for MPTCP multipathing with K scaled to the number
//     of planes (§4's N×8 rule);
//   - per-flow ECMP hashing over planes and equal-cost paths, the naive
//     baseline the paper shows to under-use parallel capacity;
//   - round-robin plane rotation, the default load-balancing of §3.4;
//   - the flow-size policy of §5.1.2: flows up to 100 MB use a single
//     path, flows of 1 GB and beyond go multipath;
//   - link-status-driven failure handling: hosts detect a failed plane
//     and exclude it, degrading gracefully (§3.4, §5.4).
package core

import (
	"fmt"
	"math"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/topo"
)

// Flow-size policy thresholds from §5.1.2: at or below SmallFlowMax a flow
// gains little from MPTCP and should use a single path; at or above
// BulkFlowMin it should multipath. Between the two, the policy defaults to
// single-path (the paper's conservative recommendation pending tuning).
const (
	SmallFlowMax = 100 << 20 // 100 MB
	BulkFlowMin  = 1 << 30   // 1 GB
)

// PNet is the end-host view of a parallel dataplane network. It caches
// routing state (ECMP DAGs, K-shortest-path sets) and invalidates the
// caches when links change state. It is not safe for concurrent use.
type PNet struct {
	Topo *topo.Topology

	planeUp []bool
	rrNext  []uint32 // per-host round-robin plane cursor

	dagCache map[graph.NodeID][][]graph.LinkID
	kspCache map[kspKey][]graph.Path

	// Traffic classes (see isolation.go).
	classes    map[string][]int
	classMasks map[string][]bool
	planeMasks map[int][]bool
}

type kspKey struct {
	src, dst graph.NodeID
	k        int
}

// New wraps a topology in the end-host control plane.
func New(t *topo.Topology) *PNet {
	p := &PNet{
		Topo:    t,
		planeUp: make([]bool, t.Planes),
		rrNext:  make([]uint32, t.NumHosts()),
	}
	for i := range p.planeUp {
		p.planeUp[i] = true
	}
	p.resetCaches()
	return p
}

func (p *PNet) resetCaches() {
	p.dagCache = make(map[graph.NodeID][][]graph.LinkID)
	p.kspCache = make(map[kspKey][]graph.Path)
}

// Planes returns the number of dataplanes.
func (p *PNet) Planes() int { return p.Topo.Planes }

// LowLatencyPath is the single-shortest-path interface: the fewest-hop
// path to dst across all usable planes. In a heterogeneous P-Net this
// exploits the plane with the shortest route for this particular pair —
// the mechanism behind the paper's RPC latency wins (§5.2.1).
func (p *PNet) LowLatencyPath(src, dst graph.NodeID) (graph.Path, bool) {
	return graph.ShortestPath(p.Topo.G, src, dst)
}

// HighThroughputPaths is the multipath interface: up to k shortest paths
// interleaved across planes, suitable for one MPTCP subflow each. Results
// are cached per (src, dst, k).
func (p *PNet) HighThroughputPaths(src, dst graph.NodeID, k int) []graph.Path {
	key := kspKey{src, dst, k}
	if ps, ok := p.kspCache[key]; ok {
		return ps
	}
	ps := route.KSPPaths(p.Topo.G, []route.Commodity{{Src: src, Dst: dst, Demand: 1}}, k)[0]
	p.kspCache[key] = ps
	return ps
}

// ECMPPath returns the hash-pinned single path a naive ECMP deployment
// would give the flow: every hop (including the host's choice among plane
// uplinks) hashes among equal-cost shortest next hops.
func (p *PNet) ECMPPath(src, dst graph.NodeID, flowHash uint64) (graph.Path, bool) {
	dag, ok := p.dagCache[dst]
	if !ok {
		dag = graph.ShortestDAG(p.Topo.G, dst)
		p.dagCache[dst] = dag
	}
	return graph.ECMPPath(p.Topo.G, dag, src, dst, flowHash)
}

// SubflowsFor implements the paper's guidance on multipath degree: a
// serial network saturates at 8 subflows, and an N-plane P-Net needs N
// times as many (§4, Figures 6c and 8c).
func SubflowsFor(planes int) int { return 8 * planes }

// PathsForFlow applies the flow-size policy: small flows get the
// low-latency single path; bulk flows get k multipath routes (k ≤ 0
// selects SubflowsFor(planes)). The middle band defaults to single-path.
func (p *PNet) PathsForFlow(src, dst graph.NodeID, sizeBytes int64, k int) []graph.Path {
	if sizeBytes < BulkFlowMin {
		if path, ok := p.LowLatencyPath(src, dst); ok {
			return []graph.Path{path}
		}
		return nil
	}
	if k <= 0 {
		k = SubflowsFor(p.Planes())
	}
	return p.HighThroughputPaths(src, dst, k)
}

// NextPlane rotates host h's round-robin cursor over usable planes — the
// default load-balancing policy of §3.4. ok is false when every plane is
// down.
func (p *PNet) NextPlane(h int) (int, bool) {
	for i := 0; i < p.Topo.Planes; i++ {
		plane := int(p.rrNext[h]) % p.Topo.Planes
		p.rrNext[h]++
		if p.planeUp[plane] {
			return plane, true
		}
	}
	return 0, false
}

// UplinkFor returns host h's uplink on the given plane.
func (p *PNet) UplinkFor(h, plane int) graph.LinkID { return p.Topo.Uplinks[h][plane] }

// FailLink marks a directed link down and invalidates routing caches.
// Hosts observe uplink failures via link status (§3.4); use MarkPlaneDown
// for whole-plane maintenance events.
func (p *PNet) FailLink(id graph.LinkID) {
	p.Topo.G.SetLinkUp(id, false)
	p.resetCaches()
}

// RestoreLink marks a directed link up again.
func (p *PNet) RestoreLink(id graph.LinkID) {
	p.Topo.G.SetLinkUp(id, true)
	p.resetCaches()
}

// MarkPlaneDown excludes a whole dataplane from selection (e.g. during a
// one-plane-at-a-time upgrade, §6.1); host uplinks to it are downed so
// path computation avoids it too.
func (p *PNet) MarkPlaneDown(plane int) {
	p.setPlane(plane, false)
}

// MarkPlaneUp returns a dataplane to service.
func (p *PNet) MarkPlaneUp(plane int) {
	p.setPlane(plane, true)
}

func (p *PNet) setPlane(plane int, up bool) {
	if plane < 0 || plane >= p.Topo.Planes {
		panic(fmt.Sprintf("core: plane %d of %d", plane, p.Topo.Planes))
	}
	p.planeUp[plane] = up
	for h := range p.Topo.Uplinks {
		p.Topo.G.SetLinkUp(p.Topo.Uplinks[h][plane], up)
		p.Topo.G.SetLinkUp(p.Topo.Downlinks[h][plane], up)
	}
	p.resetCaches()
}

// PlaneUp reports whether a plane is in service.
func (p *PNet) PlaneUp(plane int) bool { return p.planeUp[plane] }

// HopAdvantage quantifies the heterogeneous P-Net's latency edge for one
// pair: the hop difference between plane 0's shortest path and the best
// path across all planes (0 for homogeneous networks).
func (p *PNet) HopAdvantage(src, dst graph.NodeID) int {
	best, ok := p.LowLatencyPath(src, dst)
	if !ok {
		return 0
	}
	// Shortest path within plane 0 only.
	masks := planeZeroMask(p.Topo)
	p0 := graph.KShortestPathsMasked(p.Topo.G, src, dst, 1, masks)
	if len(p0) == 0 {
		return math.MaxInt32
	}
	return p0[0].Len() - best.Len()
}

func planeZeroMask(t *topo.Topology) []bool {
	mask := make([]bool, t.G.NumLinks())
	for i := 0; i < t.G.NumLinks(); i++ {
		if pl := t.G.Link(graph.LinkID(i)).Plane; pl > 0 {
			mask[i] = true
		}
	}
	return mask
}
