package core

import (
	"testing"

	"pnet/internal/topo"
)

func TestPathsForFlowAfterPlaneFailure(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]

	p.MarkPlaneDown(0)
	small := p.PathsForFlow(src, dst, 1<<20, 0)
	if len(small) != 1 || small[0].Plane(p.Topo.G) != 1 {
		t.Errorf("small flow after failure: %d paths on plane %d",
			len(small), small[0].Plane(p.Topo.G))
	}
	bulk := p.PathsForFlow(src, dst, 2<<30, 8)
	for _, q := range bulk {
		if q.Plane(p.Topo.G) != 1 {
			t.Fatal("bulk flow path on downed plane")
		}
	}
}

func TestECMPCacheInvalidatedByFailure(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]

	// Prime the DAG cache, then fail the plane the hashed path used.
	path, ok := p.ECMPPath(src, dst, 3)
	if !ok {
		t.Fatal("no path")
	}
	used := int(path.Plane(p.Topo.G))
	p.MarkPlaneDown(used)
	for h := uint64(0); h < 16; h++ {
		q, ok := p.ECMPPath(src, dst, h)
		if !ok {
			t.Fatal("no ECMP path after plane failure")
		}
		if int(q.Plane(p.Topo.G)) == used {
			t.Fatal("ECMP path still uses downed plane (stale cache)")
		}
	}
}

func TestHighThroughputPathsKExceedsDiversity(t *testing.T) {
	// Asking for more paths than exist returns what exists, without
	// duplicates.
	set := topo.FatTreeSet(4, 1, 100)
	p := New(set.SerialLow)
	// Same-rack pair: k=4 fat tree edge switch reaches the peer in 2
	// hops; path diversity beyond the shared ToR requires longer routes.
	ps := p.HighThroughputPaths(p.Topo.Hosts[0], p.Topo.Hosts[1], 64)
	if len(ps) == 0 {
		t.Fatal("no paths")
	}
	seen := map[string]bool{}
	for _, q := range ps {
		key := ""
		for _, l := range q.Links {
			key += string(rune(l)) + ","
		}
		if seen[key] {
			t.Fatal("duplicate path returned")
		}
		seen[key] = true
		if !q.Valid(p.Topo.G) {
			t.Fatal("invalid path")
		}
	}
}

func TestLowLatencyUnreachable(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	p.MarkPlaneDown(0)
	p.MarkPlaneDown(1)
	if _, ok := p.LowLatencyPath(p.Topo.Hosts[0], p.Topo.Hosts[15]); ok {
		t.Error("found path with all planes down")
	}
	p.MarkPlaneUp(0)
	if _, ok := p.LowLatencyPath(p.Topo.Hosts[0], p.Topo.Hosts[15]); !ok {
		t.Error("no path after restoring a plane")
	}
}

func TestSetPlaneOutOfRangePanics(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range plane")
		}
	}()
	p.MarkPlaneDown(5)
}

func TestPlanesAccessor(t *testing.T) {
	set := topo.FatTreeSet(4, 8, 100)
	if got := New(set.ParallelHomo).Planes(); got != 8 {
		t.Errorf("planes = %d", got)
	}
}
