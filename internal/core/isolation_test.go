package core

import (
	"testing"

	"pnet/internal/topo"
)

func TestSetClassValidation(t *testing.T) {
	p := New(topo.FatTreeSet(4, 2, 100).ParallelHomo)
	if err := p.SetClass("a", []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetClass("bad", []int{2}); err == nil {
		t.Error("no error for out-of-range plane")
	}
	if got := p.Class("a"); len(got) != 2 {
		t.Errorf("class a = %v", got)
	}
	if err := p.SetClass("a", nil); err != nil {
		t.Fatal(err)
	}
	if p.Class("a") != nil {
		t.Error("class not removed")
	}
}

func TestClassPathStaysInPlanes(t *testing.T) {
	set := topo.FatTreeSet(4, 4, 100)
	p := New(set.ParallelHomo)
	if err := p.SetClass("latency", []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]
	planes := map[int32]bool{}
	for h := uint64(0); h < 32; h++ {
		path, ok := p.ClassPath("latency", src, dst, h)
		if !ok {
			t.Fatal("no class path")
		}
		pl := path.Plane(p.Topo.G)
		if pl != 2 && pl != 3 {
			t.Fatalf("class path on plane %d", pl)
		}
		planes[pl] = true
		for _, l := range path.Links {
			if q := p.Topo.G.Link(l).Plane; q != pl {
				t.Fatal("class path crosses planes")
			}
		}
	}
	if len(planes) != 2 {
		t.Errorf("hashing covered %d of 2 class planes", len(planes))
	}
}

func TestClassPathsConfined(t *testing.T) {
	set := topo.FatTreeSet(4, 4, 100)
	p := New(set.ParallelHomo)
	if err := p.SetClass("bulk", []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]
	paths := p.ClassPaths("bulk", src, dst, 8)
	if len(paths) != 8 {
		t.Fatalf("got %d paths", len(paths))
	}
	seen := map[int32]bool{}
	for _, path := range paths {
		pl := path.Plane(p.Topo.G)
		if pl != 0 && pl != 1 {
			t.Fatalf("KSP class path on plane %d", pl)
		}
		seen[pl] = true
		if !path.Valid(p.Topo.G) {
			t.Fatal("invalid class path")
		}
	}
	if len(seen) != 2 {
		t.Errorf("class KSP used %d planes, want 2", len(seen))
	}
}

func TestClassLowLatencyPath(t *testing.T) {
	// Heterogeneous pair: plane 1 is shorter. A class excluding plane 1
	// must settle for the longer plane-0 path.
	p := New(heteroPair())
	if err := p.SetClass("slow", []int{0}); err != nil {
		t.Fatal(err)
	}
	path, ok := p.ClassLowLatencyPath("slow", 0, 1)
	if !ok {
		t.Fatal("no path")
	}
	if path.Plane(p.Topo.G) != 0 || path.Len() != 4 {
		t.Errorf("path plane %d len %d, want plane 0 len 4", path.Plane(p.Topo.G), path.Len())
	}
	if _, ok := p.ClassLowLatencyPath("undefined", 0, 1); ok {
		t.Error("undefined class returned a path")
	}
}

func TestClassPathUndefinedClass(t *testing.T) {
	p := New(topo.FatTreeSet(4, 2, 100).ParallelHomo)
	if _, ok := p.ClassPath("nope", p.Topo.Hosts[0], p.Topo.Hosts[1], 0); ok {
		t.Error("undefined class returned a path")
	}
	if ps := p.ClassPaths("nope", p.Topo.Hosts[0], p.Topo.Hosts[1], 4); ps != nil {
		t.Error("undefined class returned paths")
	}
}

func TestOverlappingClasses(t *testing.T) {
	set := topo.FatTreeSet(4, 4, 100)
	p := New(set.ParallelHomo)
	if err := p.SetClass("a", []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetClass("b", []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]
	pa, _ := p.ClassPath("a", src, dst, 5)
	pb, _ := p.ClassPath("b", src, dst, 5)
	if pl := pa.Plane(p.Topo.G); pl > 2 {
		t.Errorf("class a path on plane %d", pl)
	}
	if pl := pb.Plane(p.Topo.G); pl < 2 {
		t.Errorf("class b path on plane %d", pl)
	}
}
