package core

import (
	"fmt"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// HealthConfig tunes the probe-based plane liveness detector.
type HealthConfig struct {
	// Interval between probe rounds; zero selects 100 µs.
	Interval sim.Time
	// DownAfter is the silence threshold: a plane with no probe echo for
	// this long is declared down. Zero selects 3×Interval. It must
	// comfortably exceed the probe round-trip time, or a healthy plane
	// will be declared down while its first echo is still in flight.
	DownAfter sim.Time
	// ProbeSize is the probe packet size in bytes; zero selects 64.
	ProbeSize int32
	// Until stops probing at this sim time (0 = probe forever — only safe
	// with Engine.RunUntil, since the monitor reschedules perpetually).
	Until sim.Time
}

func (c HealthConfig) interval() sim.Time {
	if c.Interval > 0 {
		return c.Interval
	}
	return 100 * sim.Microsecond
}

func (c HealthConfig) downAfter() sim.Time {
	if c.DownAfter > 0 {
		return c.DownAfter
	}
	return 3 * c.interval()
}

func (c HealthConfig) probeSize() int32 {
	if c.ProbeSize > 0 {
		return c.ProbeSize
	}
	return 64
}

// PlaneEvent is one observed liveness transition, stamped with the sim
// time the monitor made the call — the host's (late) view of a physical
// fault, whose lag behind the injection time IS the detection latency.
type PlaneEvent struct {
	Plane int
	Up    bool
	At    sim.Time
}

// HealthMonitor is the non-oracle fault detector of §3.4: an end host
// that continuously probes every dataplane and drives the PNet failover
// policies (MarkPlaneDown / MarkPlaneUp) from what the probes report,
// never from the simulator's physical state. Each round it loops one
// small probe per plane through the fabric (host → peer → host, pinned
// inside the plane); a plane whose echoes stop for DownAfter is declared
// down, and a declared-down plane whose fresh probes come back is
// declared up again.
//
// Probe routes are computed once at construction, while the graph is
// pristine — a real deployment would pin its liveness probes the same
// way, precisely so that they do not depend on the (possibly broken)
// routing state they are meant to diagnose.
type HealthMonitor struct {
	Eng *sim.Engine
	Net *sim.Network
	P   *PNet

	// OnChange, when set, observes every declared transition.
	OnChange func(PlaneEvent)

	cfg     HealthConfig
	routes  [][]graph.LinkID // per plane: host→peer→host loop
	handler []probeHandler   // per plane, fixed Deliver targets
	// hostNode is the probing host; echoes fire on its sub-shard under
	// host sub-sharding, so echo() reads that engine's clock (resolved
	// per call — the binding can move as flows colocate hosts).
	hostNode graph.NodeID

	lastEcho []sim.Time // latest fresh echo per plane
	declDown []bool     // monitor's current verdict per plane
	reupSeq  []int64    // echoes older than this do not count toward re-up
	seq      int64
	stopped  bool
}

// probeHandler routes a delivered probe back to its monitor with the
// plane identity attached (one fixed handler per plane keeps the hot
// path allocation-free).
type probeHandler struct {
	m     *HealthMonitor
	plane int
}

func (h *probeHandler) HandlePacket(p *sim.Packet) { h.m.echo(h.plane, p) }

// NewHealthMonitor builds a monitor probing from host (an index into the
// topology's hosts) through peer and back, once per plane. It panics if
// some plane has no in-plane loop between the two hosts.
func NewHealthMonitor(eng *sim.Engine, net *sim.Network, p *PNet, host, peer int, cfg HealthConfig) *HealthMonitor {
	if host == peer {
		panic("core: health monitor needs two distinct hosts")
	}
	t := p.Topo
	m := &HealthMonitor{
		Eng:      eng,
		Net:      net,
		P:        p,
		cfg:      cfg,
		hostNode: t.Hosts[host],
		routes:   make([][]graph.LinkID, t.Planes),
		handler:  make([]probeHandler, t.Planes),
		lastEcho: make([]sim.Time, t.Planes),
		declDown: make([]bool, t.Planes),
		reupSeq:  make([]int64, t.Planes),
	}
	for plane := 0; plane < t.Planes; plane++ {
		m.handler[plane] = probeHandler{m: m, plane: plane}
		banned := make([]bool, t.G.NumLinks())
		for i := 0; i < t.G.NumLinks(); i++ {
			if t.G.Link(graph.LinkID(i)).Plane != int32(plane) {
				banned[i] = true
			}
		}
		fwd := graph.KShortestPathsMasked(t.G, t.Hosts[host], t.Hosts[peer], 1, banned)
		if len(fwd) == 0 {
			panic(fmt.Sprintf("core: no probe path in plane %d between hosts %d and %d", plane, host, peer))
		}
		rev, ok := graph.ReversePath(t.G, fwd[0])
		if !ok {
			panic(fmt.Sprintf("core: probe path in plane %d has no reverse", plane))
		}
		m.routes[plane] = append(append([]graph.LinkID(nil), fwd[0].Links...), rev.Links...)
	}
	return m
}

// Start begins probing. Echo timers start at the current sim time, so a
// plane that is already dead is detected DownAfter from now.
func (m *HealthMonitor) Start() {
	now := m.Eng.Now()
	for plane := range m.lastEcho {
		m.lastEcho[plane] = now
	}
	m.tick()
}

// Stop prevents any further probes and verdicts.
func (m *HealthMonitor) Stop() { m.stopped = true }

// PlaneDown reports the monitor's current verdict for a plane.
func (m *HealthMonitor) PlaneDown(plane int) bool { return m.declDown[plane] }

func (m *HealthMonitor) tick() {
	if m.stopped {
		return
	}
	now := m.Eng.Now()
	for plane := range m.routes {
		if !m.declDown[plane] && now-m.lastEcho[plane] > m.cfg.downAfter() {
			m.declDown[plane] = true
			// Echoes already in flight were sent over a plane we just
			// condemned; only probes from here on can rehabilitate it.
			m.reupSeq[plane] = m.seq
			m.P.MarkPlaneDown(plane)
			if m.OnChange != nil {
				m.OnChange(PlaneEvent{Plane: plane, Up: false, At: now})
			}
		}
		m.probe(plane)
	}
	if m.cfg.Until == 0 || now+m.cfg.interval() <= m.cfg.Until {
		m.Eng.After(m.cfg.interval(), m.tick)
	}
}

// probe loops one packet through the plane; declared-down planes keep
// being probed — that is how recovery is noticed.
func (m *HealthMonitor) probe(plane int) {
	p := m.Net.NewPacket()
	p.Size = m.cfg.probeSize()
	p.Route = m.routes[plane]
	p.Deliver = &m.handler[plane]
	p.Seq = m.seq
	p.FlowID = -1 // not transport traffic; keeps probes distinct in traces
	m.seq++
	m.Net.Send(p)
}

func (m *HealthMonitor) echo(plane int, p *sim.Packet) {
	bind := m.Net.BindOf(m.hostNode)
	seq := p.Seq
	m.Net.ReleaseOn(p, bind.Shard())
	if m.stopped {
		return
	}
	if m.declDown[plane] && seq < m.reupSeq[plane] {
		return // stale echo from before the down verdict
	}
	m.lastEcho[plane] = bind.Eng().Now()
	if m.declDown[plane] {
		m.declDown[plane] = false
		m.P.MarkPlaneUp(plane)
		if m.OnChange != nil {
			m.OnChange(PlaneEvent{Plane: plane, Up: true, At: bind.Eng().Now()})
		}
	}
}
