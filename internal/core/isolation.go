package core

import (
	"fmt"
	"sort"

	"pnet/internal/graph"
	"pnet/internal/route"
)

// Traffic-class isolation (§7, "Performance isolation"): because P-Net's
// dataplanes share nothing but the hosts, an operator can pin a traffic
// class — a tenant, or a service tier like "user-facing frontend" vs
// "background analytics" — to a subset of planes and obtain strict
// bandwidth isolation without any in-network scheduler.

// SetClass assigns a named traffic class to a subset of planes. Flows
// routed through ClassPath/ClassPaths never leave those planes. Classes
// may overlap; an empty plane list removes the class.
func (p *PNet) SetClass(name string, planes []int) error {
	for _, pl := range planes {
		if pl < 0 || pl >= p.Topo.Planes {
			return fmt.Errorf("core: class %q references plane %d of %d", name, pl, p.Topo.Planes)
		}
	}
	if p.classes == nil {
		p.classes = make(map[string][]int)
	}
	if len(planes) == 0 {
		delete(p.classes, name)
		delete(p.classMasks, name)
		return nil
	}
	sorted := append([]int(nil), planes...)
	sort.Ints(sorted)
	p.classes[name] = sorted
	if p.classMasks == nil {
		p.classMasks = make(map[string][]bool)
	}
	p.classMasks[name] = p.maskExcept(sorted)
	return nil
}

// Class returns the planes assigned to a class, or nil if undefined.
func (p *PNet) Class(name string) []int { return p.classes[name] }

// maskExcept builds a banned-links mask that confines routing to the
// given planes (plane −1 links stay usable everywhere).
func (p *PNet) maskExcept(planes []int) []bool {
	allowed := map[int32]bool{}
	for _, pl := range planes {
		allowed[int32(pl)] = true
	}
	g := p.Topo.G
	mask := make([]bool, g.NumLinks())
	for i := 0; i < g.NumLinks(); i++ {
		if pl := g.Link(graph.LinkID(i)).Plane; pl >= 0 && !allowed[pl] {
			mask[i] = true
		}
	}
	return mask
}

// ClassPath returns a single path for a flow of the given class: the flow
// hash picks one of the class's planes, then the shortest path within it.
// ok is false when the class is undefined or no path exists.
func (p *PNet) ClassPath(name string, src, dst graph.NodeID, flowHash uint64) (graph.Path, bool) {
	planes := p.classes[name]
	if len(planes) == 0 {
		return graph.Path{}, false
	}
	// Hash across the class's planes, then route within that plane;
	// fall back to the other class planes if the hashed one has no path.
	start := int(flowHash % uint64(len(planes)))
	for i := 0; i < len(planes); i++ {
		plane := planes[(start+i)%len(planes)]
		mask := p.planeMask(plane)
		if ps := graph.KShortestPathsMasked(p.Topo.G, src, dst, 1, mask); len(ps) > 0 {
			return ps[0], true
		}
	}
	return graph.Path{}, false
}

// ClassLowLatencyPath returns the lowest-hop path across the class's
// planes — the class-scoped version of LowLatencyPath.
func (p *PNet) ClassLowLatencyPath(name string, src, dst graph.NodeID) (graph.Path, bool) {
	mask, ok := p.classMasks[name]
	if !ok {
		return graph.Path{}, false
	}
	ps := graph.KShortestPathsMasked(p.Topo.G, src, dst, 1, mask)
	if len(ps) == 0 {
		return graph.Path{}, false
	}
	return ps[0], true
}

// ClassPaths returns up to k shortest paths confined to the class's
// planes, interleaved across them — the class-scoped version of
// HighThroughputPaths.
func (p *PNet) ClassPaths(name string, src, dst graph.NodeID, k int) []graph.Path {
	planes := p.classes[name]
	if len(planes) == 0 {
		return nil
	}
	var all []graph.Path
	for _, plane := range planes {
		all = append(all, graph.KShortestPathsMasked(p.Topo.G, src, dst, k, p.planeMask(plane))...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Len() < all[j].Len() })
	all = route.InterleavePlanes(p.Topo.G, all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// planeMask returns (and caches) the banned-links mask confining routing
// to a single plane.
func (p *PNet) planeMask(plane int) []bool {
	if p.planeMasks == nil {
		p.planeMasks = make(map[int][]bool)
	}
	if m, ok := p.planeMasks[plane]; ok {
		return m
	}
	m := p.maskExcept([]int{plane})
	p.planeMasks[plane] = m
	return m
}
