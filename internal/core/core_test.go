package core

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/topo"
)

func heteroPair() *topo.Topology {
	// Plane 0: 2 switch hops between ToRs; plane 1: direct.
	long := topo.PlaneSpec{
		Switches: 3,
		Edges:    [][2]int{{0, 1}, {1, 2}},
		HostPort: []int{0, 2},
	}
	short := topo.PlaneSpec{
		Switches: 2,
		Edges:    [][2]int{{0, 1}},
		HostPort: []int{0, 1},
	}
	return topo.Assemble("hetero-pair", 100, long, short)
}

func TestLowLatencyPicksShortestPlane(t *testing.T) {
	p := New(heteroPair())
	path, ok := p.LowLatencyPath(0, 1)
	if !ok {
		t.Fatal("no path")
	}
	if path.Plane(p.Topo.G) != 1 {
		t.Errorf("plane = %d, want 1", path.Plane(p.Topo.G))
	}
	if path.Len() != 3 {
		t.Errorf("len = %d, want 3", path.Len())
	}
}

func TestHighThroughputPathsSpreadAndCache(t *testing.T) {
	set := topo.FatTreeSet(4, 4, 100)
	p := New(set.ParallelHomo)
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]
	ps := p.HighThroughputPaths(src, dst, 8)
	if len(ps) != 8 {
		t.Fatalf("got %d paths", len(ps))
	}
	if route.PlaneSpread(p.Topo.G, ps) != 4 {
		t.Errorf("spread = %d, want 4", route.PlaneSpread(p.Topo.G, ps))
	}
	// Cached: same slice back.
	ps2 := p.HighThroughputPaths(src, dst, 8)
	if &ps[0] != &ps2[0] {
		t.Error("KSP result not cached")
	}
}

func TestECMPPathDeterministicPerHash(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]
	a, ok1 := p.ECMPPath(src, dst, 7)
	b, ok2 := p.ECMPPath(src, dst, 7)
	if !ok1 || !ok2 || !a.Equal(b) {
		t.Error("ECMP path not deterministic")
	}
	planes := map[int32]bool{}
	for h := uint64(0); h < 32; h++ {
		q, _ := p.ECMPPath(src, dst, h)
		planes[q.Plane(p.Topo.G)] = true
	}
	if len(planes) != 2 {
		t.Errorf("ECMP hashes onto %d planes, want 2", len(planes))
	}
}

func TestSubflowsFor(t *testing.T) {
	for planes, want := range map[int]int{1: 8, 2: 16, 4: 32, 8: 64} {
		if got := SubflowsFor(planes); got != want {
			t.Errorf("SubflowsFor(%d) = %d, want %d", planes, got, want)
		}
	}
}

func TestPathsForFlowPolicy(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]

	small := p.PathsForFlow(src, dst, 1<<20, 0) // 1 MB
	if len(small) != 1 {
		t.Errorf("small flow got %d paths, want 1", len(small))
	}
	mid := p.PathsForFlow(src, dst, 500<<20, 0) // 500 MB: middle band
	if len(mid) != 1 {
		t.Errorf("mid flow got %d paths, want 1 (conservative)", len(mid))
	}
	bulk := p.PathsForFlow(src, dst, 2<<30, 0) // 2 GB
	if len(bulk) != SubflowsFor(2) {
		t.Errorf("bulk flow got %d paths, want %d", len(bulk), SubflowsFor(2))
	}
	bulk4 := p.PathsForFlow(src, dst, 2<<30, 4)
	if len(bulk4) != 4 {
		t.Errorf("bulk flow with explicit k got %d paths", len(bulk4))
	}
}

func TestNextPlaneRoundRobin(t *testing.T) {
	set := topo.FatTreeSet(4, 4, 100)
	p := New(set.ParallelHomo)
	var got []int
	for i := 0; i < 8; i++ {
		pl, ok := p.NextPlane(0)
		if !ok {
			t.Fatal("no plane")
		}
		got = append(got, pl)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	// Hosts rotate independently.
	pl, _ := p.NextPlane(1)
	if pl != 0 {
		t.Errorf("host 1 first plane = %d, want 0", pl)
	}
}

func TestNextPlaneSkipsDownPlane(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	p.MarkPlaneDown(0)
	for i := 0; i < 4; i++ {
		pl, ok := p.NextPlane(0)
		if !ok || pl != 1 {
			t.Fatalf("plane = %d ok=%v, want 1", pl, ok)
		}
	}
	p.MarkPlaneDown(1)
	if _, ok := p.NextPlane(0); ok {
		t.Error("NextPlane succeeded with all planes down")
	}
	p.MarkPlaneUp(0)
	if pl, ok := p.NextPlane(0); !ok || pl != 0 {
		t.Errorf("after restore: plane = %d ok=%v", pl, ok)
	}
}

func TestMarkPlaneDownReroutesPaths(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]

	p.MarkPlaneDown(0)
	path, ok := p.LowLatencyPath(src, dst)
	if !ok {
		t.Fatal("no path with plane 0 down")
	}
	if path.Plane(p.Topo.G) != 1 {
		t.Errorf("path on plane %d, want 1", path.Plane(p.Topo.G))
	}
	ps := p.HighThroughputPaths(src, dst, 8)
	for _, q := range ps {
		if q.Plane(p.Topo.G) != 1 {
			t.Errorf("KSP path on downed plane")
		}
	}
	if p.PlaneUp(0) || !p.PlaneUp(1) {
		t.Error("plane status wrong")
	}
}

func TestMarkPlaneDownUpRoundTrip(t *testing.T) {
	// Re-upping a plane must restore the exact pre-fault selection, not
	// just some path: caches and link states have to round-trip cleanly.
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]

	orig, ok := p.LowLatencyPath(src, dst)
	if !ok {
		t.Fatal("no path before fault")
	}
	p.MarkPlaneDown(0)
	during, ok := p.LowLatencyPath(src, dst)
	if !ok || during.Plane(p.Topo.G) != 1 {
		t.Fatalf("path during outage = %v ok=%v, want plane 1", during, ok)
	}
	p.MarkPlaneUp(0)
	restored, ok := p.LowLatencyPath(src, dst)
	if !ok {
		t.Fatal("no path after re-up")
	}
	if !restored.Equal(orig) {
		t.Errorf("restored path %v != original %v", restored, orig)
	}
	if !p.PlaneUp(0) || !p.PlaneUp(1) {
		t.Error("plane status not restored")
	}
	// The graph view must round-trip too: every plane-0 host link back up.
	for h := range p.Topo.Uplinks {
		if !p.Topo.G.Link(p.Topo.Uplinks[h][0]).Up || !p.Topo.G.Link(p.Topo.Downlinks[h][0]).Up {
			t.Fatalf("host %d plane-0 links not restored", h)
		}
	}
}

func TestFailLinkInvalidatesCaches(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	src, dst := p.Topo.Hosts[0], p.Topo.Hosts[15]
	before := p.HighThroughputPaths(src, dst, 4)
	// Fail the first path's first link (host 0's uplink on its plane).
	failed := before[0].Links[0]
	p.FailLink(failed)
	after := p.HighThroughputPaths(src, dst, 4)
	for _, q := range after {
		for _, l := range q.Links {
			if l == failed {
				t.Fatal("path still uses failed link")
			}
		}
	}
	p.RestoreLink(failed)
	restored := p.HighThroughputPaths(src, dst, 4)
	if len(restored) != 4 {
		t.Errorf("after restore got %d paths", len(restored))
	}
}

func TestHopAdvantage(t *testing.T) {
	p := New(heteroPair())
	// Plane 0 path: host-sw-sw-sw-host = 4 links; plane 1: 3 links.
	if adv := p.HopAdvantage(0, 1); adv != 1 {
		t.Errorf("advantage = %d, want 1", adv)
	}
	// Homogeneous network: no advantage.
	set := topo.FatTreeSet(4, 2, 100)
	hp := New(set.ParallelHomo)
	if adv := hp.HopAdvantage(hp.Topo.Hosts[0], hp.Topo.Hosts[15]); adv != 0 {
		t.Errorf("homogeneous advantage = %d, want 0", adv)
	}
}

func TestUplinkFor(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	p := New(set.ParallelHomo)
	for h := 0; h < 4; h++ {
		for pl := 0; pl < 2; pl++ {
			id := p.UplinkFor(h, pl)
			l := p.Topo.G.Link(id)
			if l.Src != graph.NodeID(h) || l.Plane != int32(pl) {
				t.Errorf("uplink(%d,%d) = %+v", h, pl, l)
			}
		}
	}
}
