package traces

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllDistributionsValid(t *testing.T) {
	for _, c := range All() {
		if err := c.validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestAllNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range All() {
		if seen[c.Name] {
			t.Errorf("duplicate name %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(seen) != 5 {
		t.Errorf("expected 5 traces, got %d", len(seen))
	}
}

func TestByName(t *testing.T) {
	c, ok := ByName("websearch")
	if !ok || c.Name != "websearch" {
		t.Errorf("ByName(websearch) = %v %v", c.Name, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("found nonexistent trace")
	}
}

func TestQuantileMonotone(t *testing.T) {
	for _, c := range All() {
		prev := 0.0
		for p := 0.0; p <= 1.0; p += 0.01 {
			q := c.Quantile(p)
			if q < prev {
				t.Fatalf("%s: quantile not monotone at p=%v", c.Name, p)
			}
			prev = q
		}
	}
}

func TestQuantileEndpoints(t *testing.T) {
	for _, c := range All() {
		first := c.Points[0].Bytes
		last := c.Points[len(c.Points)-1].Bytes
		if got := c.Quantile(0); got != first {
			t.Errorf("%s: Quantile(0) = %v, want %v", c.Name, got, first)
		}
		if got := c.Quantile(1); got != last {
			t.Errorf("%s: Quantile(1) = %v, want %v", c.Name, got, last)
		}
	}
}

func TestCDFAtInvertsQuantile(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := All()[rng.Intn(len(All()))]
		p := rng.Float64()
		q := c.Quantile(p)
		back := c.CDFAt(q)
		diff := back - p
		if diff < 0 {
			diff = -diff
		}
		return diff < 0.02
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range All() {
		lo := int64(c.Points[0].Bytes)
		hi := int64(c.Points[len(c.Points)-1].Bytes)
		for i := 0; i < 1000; i++ {
			s := c.Sample(rng)
			if s < lo || s > hi {
				t.Fatalf("%s: sample %d outside [%d, %d]", c.Name, s, lo, hi)
			}
		}
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	// Empirical median of many samples should be near Quantile(0.5).
	rng := rand.New(rand.NewSource(11))
	for _, c := range All() {
		n := 20000
		under := 0
		med := c.Quantile(0.5)
		for i := 0; i < n; i++ {
			if float64(c.Sample(rng)) <= med {
				under++
			}
		}
		frac := float64(under) / float64(n)
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("%s: %.3f of samples under the median", c.Name, frac)
		}
	}
}

func TestHeavyTailCharacter(t *testing.T) {
	// The defining contrast of Figure 13a: datamining has many tiny
	// flows and a GB tail; websearch has neither tiny flows nor a GB
	// tail.
	if DataMining.Quantile(0.5) > 2e3 {
		t.Error("datamining median should be ~1 kB")
	}
	if DataMining.Quantile(1) < 5e8 {
		t.Error("datamining tail should reach ~1 GB")
	}
	if WebSearch.Quantile(0.01) < 5e3 {
		t.Error("websearch should have no tiny flows")
	}
	if WebSearch.Quantile(1) > 1e8 {
		t.Error("websearch tail should stay under 100 MB")
	}
}

func TestMeanBytesOrdering(t *testing.T) {
	// Mean sizes should reflect the byte-heaviness ordering: webserver
	// (tiny) < websearch < datamining (GB tail dominates the mean).
	ws := WebServer.MeanBytes()
	se := WebSearch.MeanBytes()
	dm := DataMining.MeanBytes()
	if !(ws < se && se < dm) {
		t.Errorf("mean ordering violated: webserver=%.0f websearch=%.0f datamining=%.0f", ws, se, dm)
	}
}
