// Package traces embeds the flow-size distributions of the five published
// datacenter workloads the paper evaluates (§5.3, Figure 13a): web search
// [DCTCP, Alizadeh et al. 2010], data mining [VL2, Greenberg et al. 2009],
// and the Facebook web-server, cache, and Hadoop traces [Roy et al. 2015].
//
// The paper's artifact ships these as CSV files digitized from the source
// papers' CDF figures; this package embeds equivalent piecewise
// distributions directly. Points are approximate digitizations — the
// experiments consume only the overall shape (the mice/elephant mix), not
// exact values.
package traces

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Point is one knot of a flow-size CDF: P(size ≤ Bytes) = P.
type Point struct {
	Bytes float64
	P     float64
}

// SizeCDF is a piecewise log-linear flow-size distribution.
type SizeCDF struct {
	Name   string
	Points []Point
}

// validate panics if the CDF is malformed; called by the package tests on
// every embedded distribution.
func (c SizeCDF) validate() error {
	if len(c.Points) < 2 {
		return fmt.Errorf("traces: %s has %d points", c.Name, len(c.Points))
	}
	if c.Points[0].P != 0 || c.Points[len(c.Points)-1].P != 1 {
		return fmt.Errorf("traces: %s does not span [0,1]", c.Name)
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Bytes <= c.Points[i-1].Bytes || c.Points[i].P < c.Points[i-1].P {
			return fmt.Errorf("traces: %s not monotone at %d", c.Name, i)
		}
	}
	return nil
}

// Sample draws a flow size by inverse-transform sampling with log-linear
// interpolation between knots (flow sizes span 5+ decades, so linear
// interpolation in log-size matches the published log-x CDF plots).
func (c SizeCDF) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	return int64(math.Round(c.Quantile(u)))
}

// Quantile returns the flow size at cumulative probability p ∈ [0,1].
func (c SizeCDF) Quantile(p float64) float64 {
	pts := c.Points
	if p <= 0 {
		return pts[0].Bytes
	}
	if p >= 1 {
		return pts[len(pts)-1].Bytes
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].P >= p })
	if i == 0 {
		return pts[0].Bytes
	}
	lo, hi := pts[i-1], pts[i]
	if hi.P == lo.P {
		return hi.Bytes
	}
	frac := (p - lo.P) / (hi.P - lo.P)
	logSize := math.Log(lo.Bytes) + frac*(math.Log(hi.Bytes)-math.Log(lo.Bytes))
	return math.Exp(logSize)
}

// CDFAt returns P(size ≤ bytes).
func (c SizeCDF) CDFAt(bytes float64) float64 {
	pts := c.Points
	if bytes <= pts[0].Bytes {
		return 0
	}
	if bytes >= pts[len(pts)-1].Bytes {
		return 1
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Bytes >= bytes })
	lo, hi := pts[i-1], pts[i]
	frac := (math.Log(bytes) - math.Log(lo.Bytes)) / (math.Log(hi.Bytes) - math.Log(lo.Bytes))
	return lo.P + frac*(hi.P-lo.P)
}

// MeanBytes numerically integrates the distribution's mean flow size.
func (c SizeCDF) MeanBytes() float64 {
	const steps = 10000
	var sum float64
	for i := 0; i < steps; i++ {
		sum += c.Quantile((float64(i) + 0.5) / steps)
	}
	return sum / steps
}

// WebSearch is the flow-size distribution of the DCTCP web-search
// workload: no tiny flows, a heavy mix of 10 kB–1 MB queries, and a tail
// to ~30 MB.
var WebSearch = SizeCDF{
	Name: "websearch",
	Points: []Point{
		{6e3, 0}, {1e4, 0.15}, {2e4, 0.20}, {3e4, 0.30}, {5e4, 0.40},
		{8e4, 0.53}, {2e5, 0.60}, {1e6, 0.70}, {2e6, 0.80}, {5e6, 0.90},
		{1e7, 0.97}, {3e7, 1},
	},
}

// DataMining is the VL2 data-mining distribution: more than half the
// flows are under 1 kB but nearly all bytes live in multi-MB-to-GB flows.
var DataMining = SizeCDF{
	Name: "datamining",
	Points: []Point{
		{50, 0}, {100, 0.10}, {300, 0.30}, {1e3, 0.50}, {2e3, 0.60},
		{1e4, 0.70}, {1e5, 0.80}, {1e6, 0.85}, {1e7, 0.90}, {1e8, 0.96},
		{1e9, 1},
	},
}

// WebServer is the Facebook web-server distribution: dominated by
// sub-10 kB request/response traffic.
var WebServer = SizeCDF{
	Name: "webserver",
	Points: []Point{
		{70, 0}, {100, 0.03}, {300, 0.20}, {1e3, 0.50}, {3e3, 0.75},
		{1e4, 0.90}, {1e5, 0.97}, {1e6, 0.99}, {1e7, 1},
	},
}

// Cache is the Facebook cache-follower distribution: mostly kB-to-MB
// object transfers.
var Cache = SizeCDF{
	Name: "cache",
	Points: []Point{
		{100, 0}, {1e3, 0.10}, {1e4, 0.40}, {1e5, 0.75}, {1e6, 0.90},
		{1e7, 0.97}, {1e8, 1},
	},
}

// Hadoop is the Facebook Hadoop distribution: a broad mix from control
// messages to 100 MB block transfers.
var Hadoop = SizeCDF{
	Name: "hadoop",
	Points: []Point{
		{100, 0}, {1e3, 0.30}, {1e4, 0.55}, {1e5, 0.75}, {1e6, 0.90},
		{1e7, 0.97}, {1e8, 1},
	},
}

// All returns the five embedded distributions in the paper's order.
func All() []SizeCDF {
	return []SizeCDF{WebServer, Cache, Hadoop, DataMining, WebSearch}
}

// ByName returns the named distribution, or false.
func ByName(name string) (SizeCDF, bool) {
	for _, c := range All() {
		if c.Name == name {
			return c, true
		}
	}
	return SizeCDF{}, false
}
