package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// SpecSyntax documents the -chaos flag grammar for CLI help text.
const SpecSyntax = `semicolon-separated fault entries:
  link:ID@T[+D]     link ID down at T, back up after D (omit D = rest of run)
  switch:ID@T[+D]   every link of switch ID down at T
  plane:ID@T[+D]    whole dataplane ID down at T
  flap:ID@T*N/P     link ID flaps N cycles of period P starting at T
  poisson:mttf=D,mttr=D,until=T[,plane=ID]
                    seeded exponential up/down process on every link
                    (or just plane ID's links) until T
T and D are Go durations, e.g. "30ms" or "1.5ms" (sim time).`

// Spec is a parsed -chaos flag: a topology-independent fault script that
// Build materializes into a Schedule for a concrete graph.
type Spec struct {
	entries []specEntry
	src     string
}

type specEntry struct {
	kind    string // "link" | "switch" | "plane" | "flap" | "poisson"
	id      int64
	at, dur sim.Time
	cycles  int
	period  sim.Time
	mttf    sim.Time
	mttr    sim.Time
	until   sim.Time
	plane   int64 // poisson scope; -1 = all links
}

// String returns the spec's source text.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	return s.src
}

// ParseSpec parses a -chaos flag value (see SpecSyntax). An empty string
// yields a nil Spec and no error.
func ParseSpec(text string) (*Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	spec := &Spec{src: text}
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseEntry(part)
		if err != nil {
			return nil, fmt.Errorf("chaos spec %q: %w", part, err)
		}
		spec.entries = append(spec.entries, e)
	}
	if len(spec.entries) == 0 {
		return nil, fmt.Errorf("chaos spec %q: no entries", text)
	}
	return spec, nil
}

func parseEntry(s string) (specEntry, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return specEntry{}, fmt.Errorf("missing ':' (want kind:...)")
	}
	switch kind {
	case "link", "switch", "plane":
		return parseTimed(kind, rest)
	case "flap":
		return parseFlap(rest)
	case "poisson":
		return parsePoisson(rest)
	}
	return specEntry{}, fmt.Errorf("unknown kind %q (want link|switch|plane|flap|poisson)", kind)
}

// parseTimed handles "ID@T" and "ID@T+D".
func parseTimed(kind, s string) (specEntry, error) {
	idStr, tStr, ok := strings.Cut(s, "@")
	if !ok {
		return specEntry{}, fmt.Errorf("missing '@' (want %s:ID@T)", kind)
	}
	id, err := strconv.ParseInt(idStr, 10, 32)
	if err != nil {
		return specEntry{}, fmt.Errorf("bad id %q: %v", idStr, err)
	}
	e := specEntry{kind: kind, id: id}
	atStr, durStr, hasDur := strings.Cut(tStr, "+")
	if e.at, err = parseSimTime(atStr); err != nil {
		return specEntry{}, err
	}
	if hasDur {
		if e.dur, err = parseSimTime(durStr); err != nil {
			return specEntry{}, err
		}
		if e.dur <= 0 {
			return specEntry{}, fmt.Errorf("duration must be positive, got %q", durStr)
		}
	}
	return e, nil
}

// parseFlap handles "ID@T*N/P".
func parseFlap(s string) (specEntry, error) {
	idStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return specEntry{}, fmt.Errorf("missing '@' (want flap:ID@T*N/P)")
	}
	id, err := strconv.ParseInt(idStr, 10, 32)
	if err != nil {
		return specEntry{}, fmt.Errorf("bad id %q: %v", idStr, err)
	}
	atStr, cyc, ok := strings.Cut(rest, "*")
	if !ok {
		return specEntry{}, fmt.Errorf("missing '*' (want flap:ID@T*N/P)")
	}
	nStr, pStr, ok := strings.Cut(cyc, "/")
	if !ok {
		return specEntry{}, fmt.Errorf("missing '/' (want flap:ID@T*N/P)")
	}
	e := specEntry{kind: "flap", id: id}
	if e.at, err = parseSimTime(atStr); err != nil {
		return specEntry{}, err
	}
	if e.cycles, err = strconv.Atoi(nStr); err != nil || e.cycles <= 0 {
		return specEntry{}, fmt.Errorf("bad cycle count %q", nStr)
	}
	if e.period, err = parseSimTime(pStr); err != nil {
		return specEntry{}, err
	}
	if e.period <= 0 {
		return specEntry{}, fmt.Errorf("period must be positive, got %q", pStr)
	}
	return e, nil
}

// parsePoisson handles "mttf=D,mttr=D,until=T[,plane=ID]".
func parsePoisson(s string) (specEntry, error) {
	e := specEntry{kind: "poisson", plane: -1}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return specEntry{}, fmt.Errorf("bad key=value %q", kv)
		}
		var err error
		switch key {
		case "mttf":
			e.mttf, err = parseSimTime(val)
		case "mttr":
			e.mttr, err = parseSimTime(val)
		case "until":
			e.until, err = parseSimTime(val)
		case "plane":
			e.plane, err = strconv.ParseInt(val, 10, 32)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return specEntry{}, err
		}
	}
	if e.mttf <= 0 || e.mttr <= 0 || e.until <= 0 {
		return specEntry{}, fmt.Errorf("poisson needs positive mttf, mttr, until")
	}
	return e, nil
}

func parseSimTime(s string) (sim.Time, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %v", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond, nil
}

// Build materializes the spec for a concrete graph. Poisson entries draw
// from the given seed; everything else is literal. Target validity
// (link/switch/plane existence) is checked later by NewInjector, which
// knows the network.
func (s *Spec) Build(g *graph.Graph, seed int64) Schedule {
	var sched Schedule
	if s == nil {
		return sched
	}
	for i, e := range s.entries {
		switch e.kind {
		case "link":
			sched.LinkFault(graph.LinkID(e.id), e.at, e.dur)
		case "switch":
			sched.SwitchCrash(graph.NodeID(e.id), e.at, e.dur)
		case "plane":
			sched.PlaneOutage(int32(e.id), e.at, e.dur)
		case "flap":
			sched.Flap(graph.LinkID(e.id), e.at, e.period, e.cycles)
		case "poisson":
			var links []graph.LinkID
			for l := 0; l < g.NumLinks(); l++ {
				if e.plane < 0 || g.Link(graph.LinkID(l)).Plane == int32(e.plane) {
					links = append(links, graph.LinkID(l))
				}
			}
			// Offset the seed per entry so two poisson entries do not
			// replay the same draws.
			sched.Poisson(seed+int64(i), links, e.mttf, e.mttr, e.until)
		}
	}
	sched.sortEvents()
	return sched
}
