// Package chaos is the runtime fault-injection engine: it turns a
// deterministic, seeded script of fault events — single links, whole
// switches, entire dataplanes, flapping, Poisson MTTF/MTTR processes —
// into timed sim.Network.SetLinkUp calls inside the discrete-event loop.
//
// The injector changes only the dataplane's physical truth. It never
// touches graph.Link.Up, the end hosts' administrative view: hosts must
// notice faults themselves (core.HealthMonitor probes) before their
// path selection reacts, which is what makes detection and failover
// latency measurable quantities instead of zero by construction. This
// is the runtime counterpart of internal/failure, which studies the
// post-failure topology statically (§3.4 and Fig. 14 of the paper).
//
// All randomness comes from explicit seeds, and all timing from the
// simulation clock, so a schedule replays identically across runs.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// Kind enumerates fault event kinds. Down kinds inject a fault; Up kinds
// clear one.
type Kind int

// Fault event kinds.
const (
	LinkDown Kind = iota
	LinkUp
	SwitchDown
	SwitchUp
	PlaneDown
	PlaneUp
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	case PlaneDown:
		return "plane-down"
	case PlaneUp:
		return "plane-up"
	}
	return "unknown"
}

// Injecting reports whether the kind injects a fault (as opposed to
// clearing one).
func (k Kind) Injecting() bool {
	return k == LinkDown || k == SwitchDown || k == PlaneDown
}

// Event is one timed fault transition. Exactly one of Link, Node, Plane
// is meaningful, selected by Kind.
type Event struct {
	At   sim.Time
	Kind Kind

	Link  graph.LinkID // LinkDown / LinkUp
	Node  graph.NodeID // SwitchDown / SwitchUp
	Plane int32        // PlaneDown / PlaneUp
}

// Target names the fault's subject, e.g. "link:12", "switch:3",
// "plane:1" — the correlation key between inject, detect, and recover
// records.
func (e Event) Target() string {
	switch e.Kind {
	case LinkDown, LinkUp:
		return fmt.Sprintf("link:%d", e.Link)
	case SwitchDown, SwitchUp:
		return fmt.Sprintf("switch:%d", e.Node)
	default:
		return fmt.Sprintf("plane:%d", e.Plane)
	}
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("t=%v %s %s", e.At, e.Target(), e.Kind)
}

// Schedule is a fault script: a set of events the injector will apply in
// time order. Build one with the fault constructors below, or assemble
// Events directly.
type Schedule struct {
	Events []Event
}

// Add appends one event.
func (s *Schedule) Add(e Event) { s.Events = append(s.Events, e) }

// Len returns the number of scheduled events.
func (s *Schedule) Len() int { return len(s.Events) }

// sortEvents orders events by time, breaking ties by insertion order
// (sort.SliceStable), so a schedule built deterministically applies
// deterministically.
func (s *Schedule) sortEvents() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
}

// LinkFault takes one link down at `at`; dur > 0 brings it back after
// that long, dur == 0 leaves it down for the rest of the run.
func (s *Schedule) LinkFault(link graph.LinkID, at, dur sim.Time) {
	s.Add(Event{At: at, Kind: LinkDown, Link: link})
	if dur > 0 {
		s.Add(Event{At: at + dur, Kind: LinkUp, Link: link})
	}
}

// SwitchCrash takes every link touching a node down at `at` (the node
// stops forwarding entirely); dur > 0 reboots it after that long.
func (s *Schedule) SwitchCrash(node graph.NodeID, at, dur sim.Time) {
	s.Add(Event{At: at, Kind: SwitchDown, Node: node})
	if dur > 0 {
		s.Add(Event{At: at + dur, Kind: SwitchUp, Node: node})
	}
}

// PlaneOutage takes a whole dataplane down at `at` — the paper's
// headline fault scenario (one plane of a P-Net dies, traffic must
// survive on the others); dur > 0 restores it after that long.
func (s *Schedule) PlaneOutage(plane int32, at, dur sim.Time) {
	s.Add(Event{At: at, Kind: PlaneDown, Plane: plane})
	if dur > 0 {
		s.Add(Event{At: at + dur, Kind: PlaneUp, Plane: plane})
	}
}

// Flap makes a link oscillate: starting at `at`, each of `cycles`
// periods spends the first half down and the second half up — the
// pathological case for any health monitor with hysteresis.
func (s *Schedule) Flap(link graph.LinkID, at, period sim.Time, cycles int) {
	if period <= 0 || cycles <= 0 {
		panic(fmt.Sprintf("chaos: flap needs positive period and cycles, got %v x%d", period, cycles))
	}
	for i := 0; i < cycles; i++ {
		t := at + sim.Time(i)*period
		s.LinkFault(link, t, period/2)
	}
}

// Poisson overlays each given link with an alternating renewal process:
// exponential up-times of mean mttf, exponential down-times of mean
// mttr, truncated at `until`. All draws come from the seeded generator,
// so the same arguments always produce the same schedule.
func (s *Schedule) Poisson(seed int64, links []graph.LinkID, mttf, mttr, until sim.Time) {
	if mttf <= 0 || mttr <= 0 {
		panic(fmt.Sprintf("chaos: poisson needs positive mttf/mttr, got %v/%v", mttf, mttr))
	}
	rng := rand.New(rand.NewSource(seed))
	exp := func(mean sim.Time) sim.Time {
		// Inverse-CDF sampling; Float64 is in [0,1), so 1-F is in (0,1].
		return sim.Time(math.Round(-math.Log(1-rng.Float64()) * float64(mean)))
	}
	for _, link := range links {
		t := exp(mttf)
		for t < until {
			down := exp(mttr)
			if down == 0 {
				down = 1 // a zero draw would read as "permanent" to LinkFault
			}
			if t+down > until {
				down = until - t
			}
			s.LinkFault(link, t, down)
			t += down + exp(mttf)
		}
	}
	s.sortEvents()
}
