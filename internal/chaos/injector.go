package chaos

import (
	"fmt"

	"pnet/internal/graph"
	"pnet/internal/obs"
	"pnet/internal/sim"
)

// Injector applies a Schedule to one simulated network. Every event
// expands to a set of directed links (a switch crash is all links
// touching the node, a plane outage all links of the plane), and each
// link carries a down-reference count so overlapping faults compose: a
// link downed by both a Poisson glitch and a plane outage comes back
// only when both have cleared.
type Injector struct {
	Eng *sim.Engine
	Net *sim.Network

	// Obs, when set, receives an "inject"/"clear" FaultRecord per event.
	Obs *obs.Collector
	// NetID tags the records when several networks share a collector.
	NetID int
	// OnEvent, when set, observes each event just after it is applied —
	// the hook experiments use to correlate injection times with
	// detection and recovery.
	OnEvent func(Event)

	sched     Schedule
	downCount []int
	armed     bool
}

// NewInjector builds an injector for net. Call Arm (after setting Obs /
// OnEvent) to schedule the events.
func NewInjector(eng *sim.Engine, net *sim.Network, sched Schedule) *Injector {
	in := &Injector{
		Eng:       eng,
		Net:       net,
		sched:     sched,
		downCount: make([]int, net.G.NumLinks()),
	}
	for _, e := range sched.Events {
		in.validate(e)
	}
	return in
}

// validate panics early on targets the network does not have, naming the
// event — a mistyped schedule should fail at construction, not mid-run.
func (in *Injector) validate(e Event) {
	g := in.Net.G
	switch e.Kind {
	case LinkDown, LinkUp:
		g.Link(e.Link) // bounds-checked, panics with the offending ID
	case SwitchDown, SwitchUp:
		if e.Node < 0 || int(e.Node) >= g.NumNodes() {
			panic(fmt.Sprintf("chaos: %v: node %d out of range [0,%d)", e, e.Node, g.NumNodes()))
		}
	case PlaneDown, PlaneUp:
		if len(in.planeLinks(e.Plane)) == 0 {
			panic(fmt.Sprintf("chaos: %v: no links in plane %d", e, e.Plane))
		}
	default:
		panic(fmt.Sprintf("chaos: unknown event kind %d", e.Kind))
	}
}

// Arm schedules every event of the schedule into the engine. Call once,
// before running the simulation past the first event time.
func (in *Injector) Arm() {
	if in.armed {
		panic("chaos: injector armed twice")
	}
	in.armed = true
	for _, e := range in.sched.Events {
		e := e
		in.Eng.At(e.At, func() { in.apply(e) })
	}
}

// Events returns the armed schedule's events.
func (in *Injector) Events() []Event { return in.sched.Events }

// LinksDown reports how many directed links are currently held down by
// the injector.
func (in *Injector) LinksDown() int {
	n := 0
	for _, c := range in.downCount {
		if c > 0 {
			n++
		}
	}
	return n
}

// apply expands an event to its links and flips the refcounts; only the
// 0→1 and 1→0 transitions touch the network.
func (in *Injector) apply(e Event) {
	for _, id := range in.targetLinks(e) {
		if e.Kind.Injecting() {
			in.downCount[id]++
			if in.downCount[id] == 1 {
				in.Net.SetLinkUp(id, false)
			}
		} else if in.downCount[id] > 0 {
			in.downCount[id]--
			if in.downCount[id] == 0 {
				in.Net.SetLinkUp(id, true)
			}
		}
	}
	if in.Obs != nil {
		ev := "clear"
		if e.Kind.Injecting() {
			ev = "inject"
		}
		in.Obs.RecordFault(obs.FaultRecord{
			Net:    in.NetID,
			TPs:    int64(in.Eng.Now()),
			Event:  ev,
			Target: e.Target(),
			Plane:  in.eventPlane(e),
		})
	}
	if in.OnEvent != nil {
		in.OnEvent(e)
	}
}

// targetLinks expands an event to the directed links it affects.
func (in *Injector) targetLinks(e Event) []graph.LinkID {
	g := in.Net.G
	switch e.Kind {
	case LinkDown, LinkUp:
		return []graph.LinkID{e.Link}
	case SwitchDown, SwitchUp:
		links := append([]graph.LinkID(nil), g.OutLinks(e.Node)...)
		return append(links, g.InLinks(e.Node)...)
	default:
		return in.planeLinks(e.Plane)
	}
}

// eventPlane reports the dataplane an event affects, -1 when it is not
// plane-specific (a switch touches every plane's links... or none).
func (in *Injector) eventPlane(e Event) int32 {
	switch e.Kind {
	case LinkDown, LinkUp:
		return in.Net.G.Link(e.Link).Plane
	case PlaneDown, PlaneUp:
		return e.Plane
	default:
		return -1
	}
}

func (in *Injector) planeLinks(plane int32) []graph.LinkID {
	g := in.Net.G
	var links []graph.LinkID
	for i := 0; i < g.NumLinks(); i++ {
		if g.Link(graph.LinkID(i)).Plane == plane {
			links = append(links, graph.LinkID(i))
		}
	}
	return links
}
