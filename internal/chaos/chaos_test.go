package chaos

import (
	"reflect"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/obs"
	"pnet/internal/sim"
)

// twoPlane builds hosts 0,1 attached to two switches (2 = plane 0,
// 3 = plane 1), the minimal two-plane P-Net.
func twoPlane() (*sim.Engine, *sim.Network, *graph.Graph) {
	g := graph.New(4)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	g.AddDuplex(0, 2, 100, 0) // links 0,1
	g.AddDuplex(1, 2, 100, 0) // links 2,3
	g.AddDuplex(0, 3, 100, 1) // links 4,5
	g.AddDuplex(1, 3, 100, 1) // links 6,7
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	return eng, net, g
}

func TestLinkFaultDownAndUp(t *testing.T) {
	eng, net, _ := twoPlane()
	var sched Schedule
	sched.LinkFault(0, 10*sim.Microsecond, 5*sim.Microsecond)
	inj := NewInjector(eng, net, sched)
	inj.Arm()

	eng.RunUntil(12 * sim.Microsecond)
	if net.LinkUp(0) {
		t.Error("link 0 up during fault window")
	}
	if inj.LinksDown() != 1 {
		t.Errorf("LinksDown = %d, want 1", inj.LinksDown())
	}
	eng.RunUntil(20 * sim.Microsecond)
	if !net.LinkUp(0) {
		t.Error("link 0 still down after fault cleared")
	}
	if inj.LinksDown() != 0 {
		t.Errorf("LinksDown = %d, want 0", inj.LinksDown())
	}
}

func TestSwitchCrashTakesAllitsLinks(t *testing.T) {
	eng, net, g := twoPlane()
	var sched Schedule
	sched.SwitchCrash(2, 10*sim.Microsecond, 0)
	inj := NewInjector(eng, net, sched)
	inj.Arm()
	eng.RunUntil(11 * sim.Microsecond)

	for id := 0; id < g.NumLinks(); id++ {
		l := g.Link(graph.LinkID(id))
		touches := l.Src == 2 || l.Dst == 2
		if up := net.LinkUp(graph.LinkID(id)); up == touches {
			t.Errorf("link %d (src=%d dst=%d): up=%v after switch 2 crash", id, l.Src, l.Dst, up)
		}
	}
}

func TestPlaneOutageTakesWholePlane(t *testing.T) {
	eng, net, g := twoPlane()
	var sched Schedule
	sched.PlaneOutage(1, 10*sim.Microsecond, 0)
	inj := NewInjector(eng, net, sched)
	inj.Arm()
	eng.RunUntil(11 * sim.Microsecond)

	for id := 0; id < g.NumLinks(); id++ {
		inPlane := g.Link(graph.LinkID(id)).Plane == 1
		if up := net.LinkUp(graph.LinkID(id)); up == inPlane {
			t.Errorf("link %d (plane %d): up=%v after plane 1 outage", id, g.Link(graph.LinkID(id)).Plane, up)
		}
	}
}

func TestOverlappingFaultsRefcount(t *testing.T) {
	// Link 4 is in plane 1. A link fault inside a plane outage: the link
	// must stay down until BOTH clear.
	eng, net, _ := twoPlane()
	var sched Schedule
	sched.PlaneOutage(1, 10*sim.Microsecond, 20*sim.Microsecond) // down 10..30
	sched.LinkFault(4, 15*sim.Microsecond, 30*sim.Microsecond)   // down 15..45
	inj := NewInjector(eng, net, sched)
	inj.Arm()

	eng.RunUntil(32 * sim.Microsecond) // plane cleared, link fault not
	if net.LinkUp(4) {
		t.Error("link 4 up after plane cleared but link fault still active")
	}
	if !net.LinkUp(6) {
		t.Error("link 6 (plane-only) still down after plane cleared")
	}
	eng.RunUntil(50 * sim.Microsecond)
	if !net.LinkUp(4) {
		t.Error("link 4 still down after both faults cleared")
	}
}

func TestFlapSchedule(t *testing.T) {
	var sched Schedule
	sched.Flap(3, 10*sim.Microsecond, 4*sim.Microsecond, 3)
	if sched.Len() != 6 {
		t.Fatalf("flap events = %d, want 6", sched.Len())
	}
	// Cycle i: down at 10+4i, up at 12+4i.
	wantDown := []sim.Time{10, 14, 18}
	for i, e := range sched.Events {
		if i%2 == 0 {
			if e.Kind != LinkDown || e.At != wantDown[i/2]*sim.Microsecond {
				t.Errorf("event %d = %v", i, e)
			}
		} else if e.Kind != LinkUp || e.At != (wantDown[i/2]+2)*sim.Microsecond {
			t.Errorf("event %d = %v", i, e)
		}
	}
}

func TestPoissonDeterministicAndPaired(t *testing.T) {
	links := []graph.LinkID{0, 2}
	build := func() Schedule {
		var s Schedule
		s.Poisson(7, links, 100*sim.Microsecond, 10*sim.Microsecond, sim.Millisecond)
		return s
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed produced different poisson schedules")
	}
	if a.Len() == 0 {
		t.Fatal("poisson produced no events over 10 expected failures")
	}
	// Every down must be paired with an up (truncation at `until` keeps
	// the pair), and times must be sorted.
	downs, ups := 0, 0
	for i, e := range a.Events {
		if e.Kind == LinkDown {
			downs++
		} else {
			ups++
		}
		if i > 0 && e.At < a.Events[i-1].At {
			t.Fatalf("events not time-sorted at %d", i)
		}
	}
	if downs != ups {
		t.Errorf("downs=%d ups=%d, want paired", downs, ups)
	}

	var c Schedule
	c.Poisson(8, links, 100*sim.Microsecond, 10*sim.Microsecond, sim.Millisecond)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestInjectorRecordsFaults(t *testing.T) {
	eng, net, _ := twoPlane()
	var sched Schedule
	sched.PlaneOutage(0, 10*sim.Microsecond, 10*sim.Microsecond)
	inj := NewInjector(eng, net, sched)
	col := obs.NewCollector()
	inj.Obs = col
	var seen []Event
	inj.OnEvent = func(e Event) { seen = append(seen, e) }
	inj.Arm()
	eng.Run()

	if len(col.Faults) != 2 {
		t.Fatalf("fault records = %d, want 2", len(col.Faults))
	}
	if col.Faults[0].Event != "inject" || col.Faults[0].Target != "plane:0" || col.Faults[0].Plane != 0 {
		t.Errorf("inject record = %+v", col.Faults[0])
	}
	if col.Faults[1].Event != "clear" || col.Faults[1].TPs != int64(20*sim.Microsecond) {
		t.Errorf("clear record = %+v", col.Faults[1])
	}
	if got := col.Reg.Counter("faults.injected").Value(); got != 1 {
		t.Errorf("faults.injected = %d", got)
	}
	if len(seen) != 2 {
		t.Errorf("OnEvent saw %d events, want 2", len(seen))
	}
}

func TestInjectorValidatesTargets(t *testing.T) {
	eng, net, _ := twoPlane()
	cases := []Schedule{
		{Events: []Event{{At: 1, Kind: LinkDown, Link: 99}}},
		{Events: []Event{{At: 1, Kind: SwitchDown, Node: 99}}},
		{Events: []Event{{At: 1, Kind: PlaneDown, Plane: 9}}},
	}
	for i, sched := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad target did not panic", i)
				}
			}()
			NewInjector(eng, net, sched)
		}()
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("plane:1@30ms; link:2@10ms+5ms; flap:3@1ms*2/500us")
	if err != nil {
		t.Fatal(err)
	}
	_, _, g := twoPlane()
	sched := spec.Build(g, 1)
	// plane outage (1 event, permanent) + link fault (2) + flap 2 cycles (4).
	if sched.Len() != 7 {
		t.Fatalf("events = %d, want 7: %v", sched.Len(), sched.Events)
	}
	if sched.Events[0].At != sim.Millisecond || sched.Events[0].Kind != LinkDown {
		t.Errorf("first event = %v, want flap down at 1ms", sched.Events[0])
	}
	last := sched.Events[len(sched.Events)-1]
	if last.Kind != PlaneDown || last.At != 30*sim.Millisecond {
		t.Errorf("last event = %v, want plane down at 30ms", last)
	}
}

func TestParseSpecPoisson(t *testing.T) {
	spec, err := ParseSpec("poisson:mttf=100us,mttr=10us,until=1ms,plane=1")
	if err != nil {
		t.Fatal(err)
	}
	_, _, g := twoPlane()
	a := spec.Build(g, 42)
	b := spec.Build(g, 42)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed produced different schedules via spec")
	}
	for _, e := range a.Events {
		if g.Link(e.Link).Plane != 1 {
			t.Fatalf("poisson plane=1 touched link %d of plane %d", e.Link, g.Link(e.Link).Plane)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"gibberish",
		"link:abc@1ms",
		"link:1",
		"link:1@1ms+0ms",
		"flap:1@1ms",
		"flap:1@1ms*0/1ms",
		"poisson:mttf=1ms",
		"poisson:mttf=1ms,mttr=1ms,until=1ms,bogus=2",
		";;",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
	if spec, err := ParseSpec(""); spec != nil || err != nil {
		t.Errorf("empty spec = %v, %v; want nil, nil", spec, err)
	}
}

// TestParseSpecErrorStrings pins the exact error text of every ParseSpec
// failure path: these strings are the CLI's only diagnostics for a bad
// -chaos flag, so changing one is a user-visible break that should show
// up in review, not in a bug report.
func TestParseSpecErrorStrings(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"gibberish",
			`chaos spec "gibberish": missing ':' (want kind:...)`},
		{"warp:1@1ms",
			`chaos spec "warp:1@1ms": unknown kind "warp" (want link|switch|plane|flap|poisson)`},
		{"link:abc@1ms",
			`chaos spec "link:abc@1ms": bad id "abc": strconv.ParseInt: parsing "abc": invalid syntax`},
		{"link:1",
			`chaos spec "link:1": missing '@' (want link:ID@T)`},
		{"switch:1",
			`chaos spec "switch:1": missing '@' (want switch:ID@T)`},
		{"link:1@xx",
			`chaos spec "link:1@xx": bad duration "xx": time: invalid duration "xx"`},
		{"link:1@-1ms",
			`chaos spec "link:1@-1ms": negative duration "-1ms"`},
		{"link:1@1ms+0ms",
			`chaos spec "link:1@1ms+0ms": duration must be positive, got "0ms"`},
		{"flap:1@1ms",
			`chaos spec "flap:1@1ms": missing '*' (want flap:ID@T*N/P)`},
		{"flap:1@1ms*2",
			`chaos spec "flap:1@1ms*2": missing '/' (want flap:ID@T*N/P)`},
		{"flap:1@1ms*0/1ms",
			`chaos spec "flap:1@1ms*0/1ms": bad cycle count "0"`},
		{"flap:1@1ms*2/0ms",
			`chaos spec "flap:1@1ms*2/0ms": period must be positive, got "0ms"`},
		{"poisson:junk",
			`chaos spec "poisson:junk": bad key=value "junk"`},
		{"poisson:mttf=1ms,mttr=1ms,until=1ms,bogus=2",
			`chaos spec "poisson:mttf=1ms,mttr=1ms,until=1ms,bogus=2": unknown key "bogus"`},
		{"poisson:mttf=1ms",
			`chaos spec "poisson:mttf=1ms": poisson needs positive mttf, mttr, until`},
		{";;",
			`chaos spec ";;": no entries`},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", c.spec)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("ParseSpec(%q)\n  got:  %s\n  want: %s", c.spec, err, c.want)
		}
	}
}
