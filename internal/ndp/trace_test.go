package ndp

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// trimTracer counts trim events and checks flow attribution.
type trimTracer struct {
	trims, enqueues, delivers int
	flowIDs                   map[int64]bool
}

func (tr *trimTracer) PacketEvent(ev sim.TraceEvent, p *sim.Packet, _ graph.LinkID) {
	switch ev {
	case sim.TraceTrim:
		tr.trims++
		if tr.flowIDs == nil {
			tr.flowIDs = map[int64]bool{}
		}
		tr.flowIDs[p.FlowID] = true
	case sim.TraceEnqueue:
		tr.enqueues++
	case sim.TraceDeliver:
		tr.delivers++
	}
}

// TestTracerSeesNDPTrims runs an NDP flow whose initial window (12
// packets) overflows the 8-packet trimming queue: the tracer must see
// the trim events, attribute them to the flow, and the flow must still
// complete (trims become NACKs, not timeouts).
func TestTracerSeesNDPTrims(t *testing.T) {
	g, _ := star(2)
	eng, net := ndpNet(g)
	tr := &trimTracer{}
	net.Tracer = tr

	p, _ := graph.ShortestPath(g, 0, 1)
	f, err := NewFlow(net, Config{}, []graph.Path{p}, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	f.ID = 42
	f.Start()
	eng.RunUntil(sim.Second)

	if !f.Done() {
		t.Fatalf("flow incomplete: got %d of %d", f.gotCount, f.SizePkts)
	}
	if tr.trims == 0 {
		t.Fatal("no trim events traced despite window > queue")
	}
	if f.Trims == 0 {
		t.Error("flow saw no trimmed-data notifications")
	}
	if !tr.flowIDs[42] {
		t.Errorf("trim events not attributed to flow 42: %v", tr.flowIDs)
	}
	if tr.enqueues == 0 || tr.delivers == 0 {
		t.Errorf("lifecycle events missing: %d enqueues, %d delivers", tr.enqueues, tr.delivers)
	}
}
