// Package ndp implements a simplified NDP transport [Handley et al.,
// SIGCOMM 2017] — the incast-aware direction the paper points to in §6.5.
// NDP pairs three mechanisms:
//
//   - switches trim overflowing packets to headers instead of dropping
//     them (sim.Config.TrimToBytes), so the receiver learns of every
//     loss one RTT after it happens, never by timeout;
//   - senders spray packets per-packet across all given paths — on a
//     P-Net, across all dataplanes — so no single queue sees a burst;
//   - receivers drive the sender with pull credits, clocking transmission
//     to the receiver's drain rate, which tames incast by construction.
//
// Simplifications versus full NDP, documented here: trimmed headers and
// control packets share the FIFO with data (no priority queueing), the
// first window is paced only by the initial window size, and the
// receiver measures completion (NDP's natural vantage point).
package ndp

import (
	"fmt"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// Config holds NDP parameters. The zero value selects the defaults.
type Config struct {
	// MTU is the data packet size (default 1500).
	MTU int32
	// HeaderSize is the trimmed/control packet size (default 64). The
	// network must be built with sim.Config.TrimToBytes = HeaderSize.
	HeaderSize int32
	// InitWindow is the unsolicited first window in packets (default 12,
	// roughly one BDP of the paper's 100 G / few-µs fabric).
	InitWindow int
	// RTx is the backstop retransmission timer for lost control packets
	// (default 4 ms; NDP rarely needs it because trimming converts data
	// loss into prompt NACKs).
	RTx sim.Time
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = 1500
	}
	if c.HeaderSize == 0 {
		c.HeaderSize = 64
	}
	if c.InitWindow == 0 {
		c.InitWindow = 12
	}
	if c.RTx == 0 {
		c.RTx = 4 * sim.Millisecond
	}
	return c
}

// Flow is one NDP transfer: SizePkts MTU packets sprayed over the given
// paths.
type Flow struct {
	net *sim.Network
	cfg Config

	// ID labels the flow in packet traces (sim.Packet.FlowID); assign
	// before Start for per-flow telemetry.
	ID int64

	SizePkts int64
	fwd      [][]graph.LinkID // data paths (spray round-robin)
	rev      [][]graph.LinkID // control return paths

	// Sender.
	nextNew  int64
	rtxQueue []int64
	inflight int
	sprayRR  int

	// Receiver.
	got       []uint64 // bitset of received sequences
	gotCount  int64
	returnRR  int
	delivered bool

	// Started is stamped by Start; Finished when the receiver holds all
	// packets (NDP's receiver-driven design makes the receiver the
	// natural completion observer).
	Started, Finished sim.Time

	// OnComplete fires at the receiver on full delivery.
	OnComplete func(*Flow)

	// Trims counts trimmed-data notifications processed (diagnostic).
	Trims int64

	// Latency attribution (see sim.SpanAttribution): NDP measures FCT at
	// the receiver, so progress instants are first-time arrivals of
	// untrimmed data and journeys cover send→delivery only. The charged
	// components sum to FCT exactly.
	spanOn       bool
	spanCause    sim.SpanCause
	lastProgress sim.Time
	attrib       sim.SpanAttribution

	dataH dataHandler
	ctlH  ctlHandler
	// Backstop timer uses the lazy-deadline pattern (see tcp.subflow):
	// armRTx only moves the deadline, so the event heap never fills with
	// cancelled timers.
	rtxDeadline sim.Time
	rtxEv       *sim.Event
}

type dataHandler struct{ f *Flow }

func (h dataHandler) HandlePacket(p *sim.Packet) { h.f.onData(p) }

type ctlHandler struct{ f *Flow }

func (h ctlHandler) HandlePacket(p *sim.Packet) { h.f.onControl(p) }

// control packet kinds, carried in Packet.Aux.
const (
	ctlPull = iota // deliver one more packet (Seq unused)
	ctlNack        // Seq was trimmed: queue it for retransmission (also pulls)
)

// NewFlow prepares an NDP transfer over the given paths.
func NewFlow(net *sim.Network, cfg Config, paths []graph.Path, sizeBytes int64) (*Flow, error) {
	cfg = cfg.withDefaults()
	if len(paths) == 0 {
		return nil, fmt.Errorf("ndp: flow needs at least one path")
	}
	if sizeBytes <= 0 {
		return nil, fmt.Errorf("ndp: flow size %d", sizeBytes)
	}
	f := &Flow{
		net:      net,
		cfg:      cfg,
		SizePkts: (sizeBytes + int64(cfg.MTU) - 1) / int64(cfg.MTU),
		spanOn:   net.SpansOn(),
	}
	src, dst := paths[0].Src(net.G), paths[0].Dst(net.G)
	for i, p := range paths {
		if p.Src(net.G) != src || p.Dst(net.G) != dst {
			return nil, fmt.Errorf("ndp: path %d endpoints differ", i)
		}
		rev, ok := graph.ReversePath(net.G, p)
		if !ok {
			return nil, fmt.Errorf("ndp: path %d has no reverse", i)
		}
		f.fwd = append(f.fwd, p.Links)
		f.rev = append(f.rev, rev.Links)
	}
	f.got = make([]uint64, (f.SizePkts+63)/64)
	f.dataH = dataHandler{f}
	f.ctlH = ctlHandler{f}
	return f, nil
}

// Done reports whether the receiver holds every packet.
func (f *Flow) Done() bool { return f.delivered }

// FCT returns the (receiver-measured) flow completion time.
func (f *Flow) FCT() sim.Time { return f.Finished - f.Started }

// Attribution returns the flow's FCT decomposition, sorted by
// (component, plane). Empty unless the network has spans enabled.
func (f *Flow) Attribution() []sim.SpanTotal { return f.attrib.Totals() }

// AttributedTime sums the attributed components; when the flow is done
// it equals FCT exactly.
func (f *Flow) AttributedTime() sim.Time { return f.attrib.Total() }

// Start sprays the initial window.
func (f *Flow) Start() {
	f.Started = f.net.Eng.Now()
	f.lastProgress = f.Started
	w := int64(f.cfg.InitWindow)
	if w > f.SizePkts {
		w = f.SizePkts
	}
	for i := int64(0); i < w; i++ {
		f.sendNext()
	}
	f.armRTx()
}

// sendNext transmits one packet: a queued retransmission if any, else
// fresh data; sprayed on the next path round-robin.
func (f *Flow) sendNext() {
	var seq int64
	switch {
	case len(f.rtxQueue) > 0:
		seq = f.rtxQueue[0]
		f.rtxQueue = f.rtxQueue[1:]
		if f.has(seq) {
			// Already arrived via an earlier retransmission.
			f.sendNext()
			return
		}
	case f.nextNew < f.SizePkts:
		seq = f.nextNew
		f.nextNew++
	default:
		return
	}
	p := f.net.NewPacket()
	p.Size = f.cfg.MTU
	p.Route = f.fwd[f.sprayRR]
	p.Deliver = f.dataH
	p.Seq = seq
	p.FlowID = f.ID
	if f.spanOn {
		p.AttachSpan(f.net.NewSpan(f.spanCause, f.net.Eng.Now()))
	}
	f.sprayRR = (f.sprayRR + 1) % len(f.fwd)
	f.inflight++
	f.net.Send(p)
}

func (f *Flow) has(seq int64) bool { return f.got[seq/64]&(1<<(seq%64)) != 0 }
func (f *Flow) set(seq int64) bool {
	if f.has(seq) {
		return false
	}
	f.got[seq/64] |= 1 << (seq % 64)
	f.gotCount++
	return true
}

// onData runs at the receiver: record (or NACK) and return a credit.
func (f *Flow) onData(p *sim.Packet) {
	seq := p.Seq
	trimmed := p.Trimmed
	span := p.TakeSpan()
	f.net.Release(p)

	kind := int64(ctlPull)
	if trimmed {
		kind = ctlNack
		f.Trims++
	} else if f.set(seq) {
		// Progress: charge [lastProgress, now] to this packet's journey
		// before the completion check, so that at completion lastProgress
		// has reached Finished and the attribution sums to FCT exactly.
		if f.spanOn {
			now := f.net.Eng.Now()
			f.attrib.Attribute(span, f.lastProgress, now)
			f.lastProgress = now
		}
		if f.gotCount == f.SizePkts && !f.delivered {
			f.delivered = true
			f.Finished = f.net.Eng.Now()
			if f.rtxEv != nil {
				f.rtxEv.Cancel()
			}
			if f.OnComplete != nil {
				f.OnComplete(f)
			}
		}
	}
	f.net.FreeSpan(span)

	ctl := f.net.NewPacket()
	ctl.Size = f.cfg.HeaderSize
	ctl.Route = f.rev[f.returnRR]
	ctl.Deliver = f.ctlH
	ctl.Seq = seq
	ctl.Aux = kind
	ctl.FlowID = f.ID
	f.returnRR = (f.returnRR + 1) % len(f.rev)
	f.net.Send(ctl)
}

// onControl runs at the sender: a pull credit releases the next packet; a
// NACK first queues the trimmed sequence for retransmission.
func (f *Flow) onControl(p *sim.Packet) {
	kind, seq := p.Aux, p.Seq
	f.net.Release(p)
	if f.delivered {
		return
	}
	f.inflight--
	if kind == ctlNack {
		f.rtxQueue = append(f.rtxQueue, seq)
	}
	// Credit-clocked sends (including trim-driven resends, which arrive
	// one RTT after the loss, not after a timeout) are "fresh": any gap
	// before them is pacing, charged to host_wait.
	f.spanCause = sim.CauseFresh
	f.sendNext()
	f.armRTx()
}

// armRTx moves the backstop deadline: if control packets are lost the
// credit clock stalls, and the timer re-sprays every missing sequence.
func (f *Flow) armRTx() {
	eng := f.net.Eng
	f.rtxDeadline = eng.Now() + f.cfg.RTx
	if f.rtxEv == nil || !f.rtxEv.Pending() {
		f.rtxEv = eng.At(f.rtxDeadline, f.rtxWake)
	}
}

func (f *Flow) rtxWake() {
	if f.delivered {
		return
	}
	eng := f.net.Eng
	if eng.Now() < f.rtxDeadline {
		f.rtxEv = eng.At(f.rtxDeadline, f.rtxWake)
		return
	}
	f.onRTx()
}

func (f *Flow) onRTx() {
	f.spanCause = sim.CauseRTO
	f.inflight = 0
	f.rtxQueue = f.rtxQueue[:0]
	resent := 0
	for seq := int64(0); seq < f.nextNew && resent < f.cfg.InitWindow; seq++ {
		if !f.has(seq) {
			f.rtxQueue = append(f.rtxQueue, seq)
			resent++
		}
	}
	for i := 0; i < resent || (resent == 0 && i == 0); i++ {
		f.sendNext()
	}
	f.armRTx()
}
