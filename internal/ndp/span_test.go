package ndp

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

func ndpComponentSums(totals []sim.SpanTotal) map[sim.SpanComponent]sim.Time {
	out := map[sim.SpanComponent]sim.Time{}
	for _, t := range totals {
		out[t.Comp] += t.Dur
	}
	return out
}

// ndpCheckConservation asserts the receiver-side books balance: span
// components sum exactly to the receiver-measured FCT.
func ndpCheckConservation(t *testing.T, f *Flow) map[sim.SpanComponent]sim.Time {
	t.Helper()
	if got, want := f.AttributedTime(), f.FCT(); got != want {
		t.Fatalf("attributed time %v != FCT %v (residual %v)", got, want, want-got)
	}
	return ndpComponentSums(f.Attribution())
}

func TestNDPSpanConservationClean(t *testing.T) {
	g, _ := star(2)
	eng, net := ndpNet(g)
	net.EnableSpans()
	p, _ := graph.ShortestPath(g, 0, 1)
	f, err := NewFlow(net, Config{}, []graph.Path{p}, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	eng.RunUntil(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	sums := ndpCheckConservation(t, f)
	if sums[sim.SpanSerialize] == 0 {
		t.Errorf("clean transfer shows no serialization: %v", sums)
	}
	if sums[sim.SpanRTOStall] != 0 {
		t.Errorf("clean transfer charged rto_stall: %v", sums)
	}
}

func TestNDPSpanConservationIncast(t *testing.T) {
	// 16-to-1 incast trims heavily. Trim-driven resends are pull-clocked
	// pacing, not stalls, so the dead time between pulls lands in
	// host_wait — and every flow's books must balance exactly.
	const fanIn = 16
	g, _ := star(fanIn + 1)
	eng, net := ndpNet(g)
	net.EnableSpans()
	var flows []*Flow
	for i := 1; i <= fanIn; i++ {
		p, _ := graph.ShortestPath(g, graph.NodeID(i), 0)
		f, err := NewFlow(net, Config{}, []graph.Path{p}, 256_000)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
		f.Start()
	}
	eng.RunUntil(sim.Second)
	var trims int64
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
		trims += f.Trims
		sums := ndpCheckConservation(t, f)
		if sums[sim.SpanRTOStall] != 0 {
			t.Errorf("incast flow hit the backstop timer: %v", sums)
		}
	}
	if trims == 0 {
		t.Error("incast produced no trims; scenario not exercising resends")
	}
}

func TestNDPSpanConservationBackstopRTO(t *testing.T) {
	// Cut the only path mid-transfer: the credit clock dies with it and
	// only the backstop timer (4ms default) can restart the flow after
	// the link heals. That outage is a genuine stall and must be charged
	// to rto_stall, with the books still exact.
	g, _ := star(2)
	eng, net := ndpNet(g)
	net.EnableSpans()
	p, _ := graph.ShortestPath(g, 0, 1)
	setPath := func(up bool) {
		for _, id := range p.Links {
			net.SetLinkUp(id, up)
			if rid, ok := net.G.ReverseLink(id); ok {
				net.SetLinkUp(rid, up)
			}
		}
	}
	f, err := NewFlow(net, Config{}, []graph.Path{p}, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	eng.At(20*sim.Microsecond, func() { setPath(false) })
	eng.At(10*sim.Millisecond, func() { setPath(true) })
	eng.RunUntil(5 * sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete after the link healed")
	}
	sums := ndpCheckConservation(t, f)
	if sums[sim.SpanRTOStall] < 5*sim.Millisecond {
		t.Errorf("rto_stall = %v, want most of the ~12ms outage+timer wait: %v",
			sums[sim.SpanRTOStall], sums)
	}
}

func TestNDPSpanDisabledNoAttribution(t *testing.T) {
	g, _ := star(2)
	eng, net := ndpNet(g)
	p, _ := graph.ShortestPath(g, 0, 1)
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 15_000)
	f.Start()
	eng.RunUntil(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if len(f.Attribution()) != 0 || f.AttributedTime() != 0 {
		t.Errorf("spans disabled but attribution = %v", f.Attribution())
	}
}
