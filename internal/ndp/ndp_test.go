package ndp

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/sim"
	"pnet/internal/topo"
)

// ndpNet builds a network with NDP trimming enabled (queue 8 packets, as
// in the NDP paper).
func ndpNet(g *graph.Graph) (*sim.Engine, *sim.Network) {
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{
		QueueBytes:  8 * 1500,
		TrimToBytes: 64,
	})
	return eng, net
}

func star(hosts int) (*graph.Graph, graph.NodeID) {
	g := graph.New(hosts + 1)
	sw := graph.NodeID(hosts)
	for i := 0; i < hosts; i++ {
		g.SetTransit(graph.NodeID(i), false)
		g.AddDuplex(graph.NodeID(i), sw, 100, 0)
	}
	return g, sw
}

func TestNDPValidation(t *testing.T) {
	g, _ := star(2)
	_, net := ndpNet(g)
	if _, err := NewFlow(net, Config{}, nil, 1000); err == nil {
		t.Error("no error for empty paths")
	}
	p, _ := graph.ShortestPath(g, 0, 1)
	if _, err := NewFlow(net, Config{}, []graph.Path{p}, 0); err == nil {
		t.Error("no error for zero size")
	}
}

func TestNDPSingleTransfer(t *testing.T) {
	g, _ := star(2)
	eng, net := ndpNet(g)
	p, _ := graph.ShortestPath(g, 0, 1)
	f, err := NewFlow(net, Config{}, []graph.Path{p}, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	f.OnComplete = func(*Flow) { done = true }
	f.Start()
	eng.RunUntil(sim.Second)
	if !done || !f.Done() {
		t.Fatalf("flow incomplete: got %d of %d", f.gotCount, f.SizePkts)
	}
	// Pull-clocked line rate: 1000 packets at 120 ns plus a few RTTs.
	if f.FCT() > 2*sim.Millisecond {
		t.Errorf("FCT = %v, want ~120us-ish", f.FCT())
	}
}

func TestNDPSpraysAcrossPlanes(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, tp.G, sim.Config{QueueBytes: 8 * 1500, TrimToBytes: 64})
	paths := route.KSPPaths(tp.G, []route.Commodity{{Src: tp.Hosts[0], Dst: tp.Hosts[15], Demand: 1}}, 4)
	f, err := NewFlow(net, Config{}, paths[0], 600_000)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	eng.RunUntil(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	// Per-packet spraying must put bytes on both planes.
	bytes := net.PlaneBytes()
	if bytes[0] == 0 || bytes[1] == 0 {
		t.Errorf("spray imbalance: plane bytes %v", bytes)
	}
	ratio := float64(bytes[0]) / float64(bytes[1])
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("spray ratio = %.2f, want near 1", ratio)
	}
}

func TestNDPIncastNoTimeouts(t *testing.T) {
	// 16-to-1 incast into an 8-packet queue: TCP would lose whole
	// windows; NDP's trimming and pulls complete near the drain-rate
	// optimum with zero drops.
	const fanIn = 16
	g, _ := star(fanIn + 1)
	eng, net := ndpNet(g)
	done := 0
	var last sim.Time
	for i := 1; i <= fanIn; i++ {
		p, _ := graph.ShortestPath(g, graph.NodeID(i), 0)
		f, err := NewFlow(net, Config{}, []graph.Path{p}, 256_000)
		if err != nil {
			t.Fatal(err)
		}
		f.OnComplete = func(fl *Flow) {
			done++
			last = eng.Now()
		}
		f.Start()
	}
	eng.RunUntil(sim.Second)
	if done != fanIn {
		t.Fatalf("%d of %d flows done", done, fanIn)
	}
	// Drain-rate floor: 16 x 171 pkts x 120 ns ≈ 329 µs.
	floor := 329 * sim.Microsecond
	if last > 2*floor {
		t.Errorf("incast completion %v, want < 2x floor %v (no timeout cliff)", last, floor)
	}
	if drops := net.TotalDrops(); drops != 0 {
		t.Errorf("drops = %d with trimming enabled, want 0", drops)
	}
}

func TestNDPSurvivesControlLoss(t *testing.T) {
	// A brutal 1-packet queue trims/drops aggressively, including
	// control packets; the backstop timer must still finish the flow.
	g, _ := star(2)
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{QueueBytes: 3000, TrimToBytes: 64})
	p, _ := graph.ShortestPath(g, 0, 1)
	f, _ := NewFlow(net, Config{InitWindow: 32}, []graph.Path{p}, 60_000)
	f.Start()
	eng.RunUntil(5 * sim.Second)
	if !f.Done() {
		t.Fatalf("flow incomplete: %d of %d", f.gotCount, f.SizePkts)
	}
}

func TestNDPTrimsReported(t *testing.T) {
	const fanIn = 8
	g, _ := star(fanIn + 1)
	eng, net := ndpNet(g)
	var flows []*Flow
	for i := 1; i <= fanIn; i++ {
		p, _ := graph.ShortestPath(g, graph.NodeID(i), 0)
		f, _ := NewFlow(net, Config{InitWindow: 24}, []graph.Path{p}, 150_000)
		flows = append(flows, f)
		f.Start()
	}
	eng.RunUntil(sim.Second)
	var trims int64
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
		trims += f.Trims
	}
	if trims == 0 {
		t.Error("expected trims under incast with 8-packet queues")
	}
	// Link stats should agree that trims happened somewhere.
	var statTrims int64
	for i := 0; i < net.G.NumLinks(); i++ {
		statTrims += net.Stats(graph.LinkID(i)).Trims
	}
	if statTrims == 0 {
		t.Error("no trims in link stats")
	}
}
