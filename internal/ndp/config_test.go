package ndp

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MTU != 1500 || c.HeaderSize != 64 || c.InitWindow != 12 {
		t.Errorf("defaults = %+v", c)
	}
	if c.RTx != 4*sim.Millisecond {
		t.Errorf("rtx default = %v", c.RTx)
	}
	c2 := Config{InitWindow: 3, MTU: 9000}.withDefaults()
	if c2.InitWindow != 3 || c2.MTU != 9000 {
		t.Errorf("overrides lost: %+v", c2)
	}
}

func TestNDPEndpointMismatch(t *testing.T) {
	g, _ := star(3)
	_, net := ndpNet(g)
	p1, _ := graph.ShortestPath(g, 0, 1)
	p2, _ := graph.ShortestPath(g, 0, 2)
	if _, err := NewFlow(net, Config{}, []graph.Path{p1, p2}, 1000); err == nil {
		t.Error("no error for mismatched path endpoints")
	}
}

func TestNDPSmallFlowSinglePacket(t *testing.T) {
	g, _ := star(2)
	eng, net := ndpNet(g)
	p, _ := graph.ShortestPath(g, 0, 1)
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 100)
	if f.SizePkts != 1 {
		t.Fatalf("SizePkts = %d", f.SizePkts)
	}
	f.Start()
	eng.RunUntil(sim.Second)
	if !f.Done() {
		t.Fatal("single-packet flow incomplete")
	}
	// One data packet, no trims, receiver-measured FCT of ~one way.
	if f.Trims != 0 {
		t.Errorf("trims = %d", f.Trims)
	}
	if f.FCT() <= 0 || f.FCT() > 10*sim.Microsecond {
		t.Errorf("FCT = %v", f.FCT())
	}
}

func TestNDPBitsetBookkeeping(t *testing.T) {
	g, _ := star(2)
	_, net := ndpNet(g)
	p, _ := graph.ShortestPath(g, 0, 1)
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 130*1500)
	if got := len(f.got); got != 3 { // ceil(130/64) words
		t.Errorf("bitset words = %d, want 3", got)
	}
	if f.has(5) {
		t.Error("fresh bitset claims receipt")
	}
	if !f.set(5) || f.set(5) {
		t.Error("set/dedup broken")
	}
	if !f.has(5) || f.gotCount != 1 {
		t.Error("bookkeeping broken")
	}
}
