package graph

import "sync"

// Scratch holds the reusable working state for repeated path searches on
// a Frozen view: distance/parent arrays, epoch-marked visited sets, an
// interface-free priority queue, and a BFS ring. After the arrays have
// grown to the graph's size once, every further search allocates nothing
// — the visited sets are invalidated by bumping a generation counter
// instead of being cleared, the same trick the sim engine uses for its
// event heap reuse.
//
// A Scratch is single-goroutine state. Concurrent searches need one
// Scratch each; GetScratch/PutScratch pool them across calls.
type Scratch struct {
	dist    []float64
	parent  []LinkID
	reached []uint32 // reached[n] == epoch: dist/parent valid this search
	settled []uint32 // settled[n] == epoch: n popped (Dijkstra) this search
	epoch   uint32
	heap    spHeap
	queue   []NodeID
}

// NewScratch returns an empty scratch space; it grows lazily to fit
// whatever graph it is first used on.
func NewScratch() *Scratch { return &Scratch{} }

var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// GetScratch takes a scratch space from the process-wide pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch space to the pool.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// begin sizes the scratch for an n-node graph and starts a new search
// generation. Marks from previous searches become invalid without any
// clearing; on the (rare) epoch wraparound the mark arrays are zeroed.
func (s *Scratch) begin(n int) {
	if len(s.dist) < n {
		s.dist = make([]float64, n)
		s.parent = make([]LinkID, n)
		s.reached = make([]uint32, n)
		s.settled = make([]uint32, n)
	}
	s.epoch++
	if s.epoch == 0 {
		for i := range s.reached {
			s.reached[i] = 0
			s.settled[i] = 0
		}
		s.epoch = 1
	}
	s.heap = s.heap[:0]
	s.queue = s.queue[:0]
}

// Reached reports whether node n was reached by the last search.
func (s *Scratch) Reached(n NodeID) bool { return s.reached[n] == s.epoch }

// Dist returns the distance assigned to n by the last search; only valid
// when Reached(n) is true.
func (s *Scratch) Dist(n NodeID) float64 { return s.dist[n] }

// Parent returns the link over which n was reached; only valid when
// Reached(n) is true and n was not the source.
func (s *Scratch) Parent(n NodeID) LinkID { return s.parent[n] }

// spHeap is an interface-free priority queue of (dist, node) pairs that
// replicates container/heap's binary sift-up/sift-down mechanics — and
// with them its pop order among equal-distance entries — exactly. The
// arity is deliberately binary, not 4-ary like the sim engine's
// eventHeap: Dijkstra's comparison keys tie constantly under Garg–
// Könemann's uniform initial lengths, equal-key pop order decides which
// of several shortest paths becomes the parent tree, and the committed
// experiment baselines pin the trajectory the historical container/heap
// oracle produced. Changing arity would silently reroute the solver.
// The win over container/heap is keeping it: no interface boxing, no
// per-push allocation, no dynamic dispatch per comparison.
type spHeap []spItem

type spItem struct {
	dist float64
	node NodeID
}

// push appends it and sifts up, mirroring container/heap.Push: the new
// element rises only past strictly greater parents.
func (h *spHeap) push(it spItem) {
	*h = append(*h, it)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

// pop removes and returns the minimum, mirroring container/heap.Pop:
// swap root with last, sift down over the shrunk range, detach last.
func (h *spHeap) pop() spItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].dist < s[j1].dist {
			j = j2
		}
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// Dijkstra runs a shortest-path search from src under the given link
// weights (non-negative), honoring down links and the no-transit-through-
// hosts rule, into the scratch space. If until is a valid node the search
// stops as soon as until settles and reports whether it was reached;
// until < 0 computes the full shortest-path tree and always reports true.
//
// The relaxation order, strict-improvement rule, and equal-distance pop
// order are bit-compatible with WeightedShortestPath, so the parent tree
// — and any path traced from it — matches the historical per-pair oracle
// exactly. After warm-up the search performs no allocations.
func (fz *Frozen) Dijkstra(s *Scratch, src NodeID, weight []float64, until NodeID) bool {
	s.begin(fz.numNodes)
	s.dist[src] = 0
	s.reached[src] = s.epoch
	s.heap.push(spItem{dist: 0, node: src})
	for len(s.heap) > 0 {
		it := s.heap.pop()
		u := it.node
		if s.settled[u] == s.epoch {
			continue
		}
		s.settled[u] = s.epoch
		if u == until {
			return true
		}
		if u != src && !fz.transit[u] {
			continue
		}
		du := s.dist[u]
		for _, id := range fz.outList[fz.outStart[u]:fz.outStart[u+1]] {
			v := fz.linkDst[id]
			if !fz.linkUp[id] || s.settled[v] == s.epoch {
				continue
			}
			nd := du + weight[id]
			if s.reached[v] != s.epoch || nd < s.dist[v] {
				s.dist[v] = nd
				s.parent[v] = id
				s.reached[v] = s.epoch
				s.heap.push(spItem{dist: nd, node: v})
			}
		}
	}
	return until < 0
}

// BFS runs an unweighted (hop count) search from src, honoring down
// links, the transit rule, and the optional banned masks (either may be
// nil). If until is a valid node the search stops as soon as until is
// discovered and reports whether it was; until < 0 sweeps everything
// reachable and always reports true. Discovery order matches the
// *Graph-based BFS implementations link for link, so traced paths are
// identical. Distances are hop counts in Dist. Allocation-free after
// warm-up.
func (fz *Frozen) BFS(s *Scratch, src NodeID, until NodeID, bannedLinks, bannedNodes []bool) bool {
	s.begin(fz.numNodes)
	s.dist[src] = 0
	s.reached[src] = s.epoch
	s.queue = append(s.queue, src)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		if u != src && !fz.transit[u] {
			continue
		}
		du := s.dist[u]
		for _, id := range fz.outList[fz.outStart[u]:fz.outStart[u+1]] {
			if bannedLinks != nil && bannedLinks[id] {
				continue
			}
			v := fz.linkDst[id]
			if !fz.linkUp[id] || s.reached[v] == s.epoch {
				continue
			}
			if bannedNodes != nil && bannedNodes[v] {
				continue
			}
			s.dist[v] = du + 1
			s.parent[v] = id
			s.reached[v] = s.epoch
			if v == until {
				return true
			}
			s.queue = append(s.queue, v)
		}
	}
	return until < 0
}

// AppendPath traces the search tree in s from src to dst and appends the
// path's links, in forward order, to buf — reusing buf's capacity, so a
// caller that recycles its buffer gets an allocation-free trace. dst must
// have been reached by the last search on s.
func (fz *Frozen) AppendPath(s *Scratch, src, dst NodeID, buf []LinkID) []LinkID {
	start := len(buf)
	for n := dst; n != src; {
		id := s.parent[n]
		buf = append(buf, id)
		n = fz.linkSrc[id]
	}
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// PathTo returns the path from src to dst traced from the last search on
// s as a freshly allocated Path.
func (fz *Frozen) PathTo(s *Scratch, src, dst NodeID) Path {
	return Path{Links: fz.AppendPath(s, src, dst, nil)}
}
