package graph

import "testing"

func TestEdgeDisjointDiamond(t *testing.T) {
	g := diamond()
	// Three link-disjoint routes exist: via 1, via 2, and via 4-5.
	if got := EdgeDisjointPaths(g, 0, 3, 0); got != 3 {
		t.Errorf("disjoint paths = %d, want 3", got)
	}
}

func TestEdgeDisjointLimit(t *testing.T) {
	g := diamond()
	if got := EdgeDisjointPaths(g, 0, 3, 2); got != 2 {
		t.Errorf("limited disjoint paths = %d, want 2", got)
	}
}

func TestEdgeDisjointLine(t *testing.T) {
	g := line(4)
	if got := EdgeDisjointPaths(g, 0, 3, 0); got != 1 {
		t.Errorf("line disjoint paths = %d, want 1", got)
	}
}

func TestEdgeDisjointDisconnected(t *testing.T) {
	g := New(2)
	if got := EdgeDisjointPaths(g, 0, 1, 0); got != 0 {
		t.Errorf("disconnected disjoint paths = %d", got)
	}
	if got := EdgeDisjointPaths(g, 0, 0, 0); got != 0 {
		t.Errorf("self disjoint paths = %d", got)
	}
}

func TestEdgeDisjointRespectsDownLinks(t *testing.T) {
	g := diamond()
	// Down the 0->1 link: only two routes remain.
	for _, id := range g.OutLinks(0) {
		if g.Link(id).Dst == 1 {
			g.SetLinkUp(id, false)
		}
	}
	if got := EdgeDisjointPaths(g, 0, 3, 0); got != 2 {
		t.Errorf("disjoint paths after failure = %d, want 2", got)
	}
}

func TestEdgeDisjointNoTransitThroughHosts(t *testing.T) {
	// 0 -> {1,2} -> 3 where 1 is a host: only the route via 2 counts.
	g := New(4)
	g.AddDuplex(0, 1, 1, 0)
	g.AddDuplex(1, 3, 1, 0)
	g.AddDuplex(0, 2, 1, 0)
	g.AddDuplex(2, 3, 1, 0)
	g.SetTransit(1, false)
	if got := EdgeDisjointPaths(g, 0, 3, 0); got != 1 {
		t.Errorf("disjoint paths = %d, want 1 (host can't relay)", got)
	}
}

func TestEdgeDisjointNeedsAugmentReroute(t *testing.T) {
	// Classic max-flow case where a greedy path must be re-routed via a
	// residual (backward) edge:
	//   0->1, 0->2, 1->3, 2->3 and a tempting shortcut 1->2.
	// Greedy BFS may route 0-1-2-3 first; max flow is still 2.
	g := New(4)
	g.AddLink(0, 1, 1, 0)
	g.AddLink(0, 2, 1, 0)
	g.AddLink(1, 3, 1, 0)
	g.AddLink(2, 3, 1, 0)
	g.AddLink(1, 2, 1, 0)
	if got := EdgeDisjointPaths(g, 0, 3, 0); got != 2 {
		t.Errorf("disjoint paths = %d, want 2", got)
	}
}
