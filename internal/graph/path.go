package graph

// Path is an ordered sequence of directed links from a source to a
// destination. A valid path's links are contiguous: link i's Dst equals
// link i+1's Src.
type Path struct {
	Links []LinkID
}

// Len returns the number of hops (links) in the path.
func (p Path) Len() int { return len(p.Links) }

// Nodes expands the path into the node sequence it traverses.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p.Links) == 0 {
		return nil
	}
	nodes := make([]NodeID, 0, len(p.Links)+1)
	nodes = append(nodes, g.Link(p.Links[0]).Src)
	for _, l := range p.Links {
		nodes = append(nodes, g.Link(l).Dst)
	}
	return nodes
}

// Src returns the first node of the path, or -1 for an empty path.
func (p Path) Src(g *Graph) NodeID {
	if len(p.Links) == 0 {
		return -1
	}
	return g.Link(p.Links[0]).Src
}

// Dst returns the last node of the path, or -1 for an empty path.
func (p Path) Dst(g *Graph) NodeID {
	if len(p.Links) == 0 {
		return -1
	}
	return g.Link(p.Links[len(p.Links)-1]).Dst
}

// Plane returns the dataplane the path travels through, defined as the
// plane tag of its first link, or -1 for an empty path. In a P-Net every
// link of a host-to-host path shares one plane because planes are disjoint
// and hosts do not forward.
func (p Path) Plane(g *Graph) int32 {
	if len(p.Links) == 0 {
		return -1
	}
	return g.Link(p.Links[0]).Plane
}

// Valid reports whether the path is link-contiguous, loop-free, and uses
// only up links with no transit through non-transit interior nodes.
func (p Path) Valid(g *Graph) bool {
	if len(p.Links) == 0 {
		return false
	}
	seen := map[NodeID]bool{g.Link(p.Links[0]).Src: true}
	for i, id := range p.Links {
		l := g.Link(id)
		if !l.Up {
			return false
		}
		if i > 0 {
			prev := g.Link(p.Links[i-1])
			if prev.Dst != l.Src {
				return false
			}
			if !g.Transit(l.Src) {
				return false
			}
		}
		if seen[l.Dst] {
			return false
		}
		seen[l.Dst] = true
	}
	return true
}

// Equal reports whether two paths traverse the same link sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Links) != len(q.Links) {
		return false
	}
	for i := range p.Links {
		if p.Links[i] != q.Links[i] {
			return false
		}
	}
	return true
}

// key returns a comparable representation used for de-duplication.
func (p Path) key() string {
	b := make([]byte, 0, 4*len(p.Links))
	for _, l := range p.Links {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}
