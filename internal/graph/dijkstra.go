package graph

import "container/heap"

// WeightedShortestPath returns the minimum-total-weight path from src to
// dst, where weight[l] is the length of link l (must be non-negative).
// Down links and transit through non-transit nodes are excluded, as in the
// unweighted algorithms. ok is false when dst is unreachable.
//
// This is the reference implementation of the Garg–Könemann oracle's
// shortest-path search. The solver hot path uses Frozen.Dijkstra, which
// is bit-compatible with this function (same relaxation order, same
// equal-distance pop order) but allocation-free; the equivalence is
// enforced by tests in internal/graph and internal/mcf. Keep the two in
// lockstep when touching either.
func WeightedShortestPath(g *Graph, src, dst NodeID, weight []float64) (p Path, dist float64, ok bool) {
	if src == dst {
		return Path{}, 0, false
	}
	n := g.NumNodes()
	d := make([]float64, n)
	parent := make([]LinkID, n)
	done := make([]bool, n)
	for i := range d {
		d[i] = -1
		parent[i] = -1
	}
	d[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			return tracePath(g, parent, src, dst), d[u], true
		}
		if u != src && !g.Transit(u) {
			continue
		}
		for _, id := range g.OutLinks(u) {
			l := g.Link(id)
			if !l.Up || done[l.Dst] {
				continue
			}
			nd := d[u] + weight[id]
			if d[l.Dst] < 0 || nd < d[l.Dst] {
				d[l.Dst] = nd
				parent[l.Dst] = id
				heap.Push(pq, nodeItem{node: l.Dst, dist: nd})
			}
		}
	}
	return Path{}, 0, false
}

type nodeItem struct {
	node NodeID
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return
}
