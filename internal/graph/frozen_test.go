package graph

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// randomGraph builds a random connected-ish multigraph with duplex links,
// a sprinkling of non-transit hosts on the rim, and two plane tags, to
// exercise every field the frozen view snapshots.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddDuplex(NodeID(rng.Intn(i)), NodeID(i), 40+float64(rng.Intn(3))*30, int32(rng.Intn(2)))
	}
	for e := 0; e < 2*n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddDuplex(NodeID(a), NodeID(b), 100, int32(rng.Intn(2)))
		}
	}
	for i := 0; i < n/4; i++ {
		g.SetTransit(NodeID(rng.Intn(n)), false)
	}
	for i := 0; i < n/5; i++ {
		g.SetLinkUp(LinkID(rng.Intn(g.NumLinks())), false)
	}
	return g
}

func TestFrozenMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 40)
	fz := g.Frozen()
	if fz.NumNodes() != g.NumNodes() || fz.NumLinks() != g.NumLinks() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d links",
			fz.NumNodes(), g.NumNodes(), fz.NumLinks(), g.NumLinks())
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		if fz.Transit(id) != g.Transit(id) {
			t.Fatalf("node %d transit mismatch", n)
		}
		out, fout := g.OutLinks(id), fz.OutLinks(id)
		if len(out) != len(fout) {
			t.Fatalf("node %d out-degree mismatch", n)
		}
		for i := range out {
			if out[i] != fout[i] {
				t.Fatalf("node %d out-link order mismatch at %d", n, i)
			}
		}
		in, fin := g.InLinks(id), fz.InLinks(id)
		if len(in) != len(fin) {
			t.Fatalf("node %d in-degree mismatch", n)
		}
		for i := range in {
			if in[i] != fin[i] {
				t.Fatalf("node %d in-link order mismatch at %d", n, i)
			}
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		id := LinkID(i)
		l := g.Link(id)
		if fz.LinkSrc(id) != l.Src || fz.LinkDst(id) != l.Dst ||
			fz.LinkCap(id) != l.Capacity || fz.LinkUp(id) != l.Up ||
			fz.LinkPlane(id) != l.Plane {
			t.Fatalf("link %d field mismatch", i)
		}
	}
}

func TestFrozenCachesAndInvalidates(t *testing.T) {
	g := line(5)
	fz := g.Frozen()
	if g.Frozen() != fz {
		t.Fatal("unchanged graph should share one snapshot")
	}
	g.SetLinkUp(0, false)
	fz2 := g.Frozen()
	if fz2 == fz {
		t.Fatal("SetLinkUp must invalidate the snapshot")
	}
	if fz2.LinkUp(0) {
		t.Fatal("rebuilt snapshot must see the down link")
	}
	if !fz.LinkUp(0) {
		t.Fatal("old snapshot is immutable")
	}
	g.SetCapacity(1, 7)
	if g.Frozen() == fz2 {
		t.Fatal("SetCapacity must invalidate the snapshot")
	}
	if got := g.Frozen().LinkCap(1); got != 7 {
		t.Fatalf("capacity not refreshed: %v", got)
	}
	g.AddNode(true)
	if g.Frozen().NumNodes() != 6 {
		t.Fatal("AddNode must invalidate the snapshot")
	}
}

// referenceBFS is a copy of the historical queue-based BFS that
// ShortestPath used before the CSR port, kept as an independent check of
// discovery order and parent choice.
func referenceBFS(g *Graph, src, dst NodeID) (Path, bool) {
	if src == dst {
		return Path{}, false
	}
	parent := make([]LinkID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u != src && !g.Transit(u) {
			continue
		}
		for _, id := range g.OutLinks(u) {
			l := g.Link(id)
			if !l.Up || visited[l.Dst] {
				continue
			}
			visited[l.Dst] = true
			parent[l.Dst] = id
			if l.Dst == dst {
				return tracePath(g, parent, src, dst), true
			}
			queue = append(queue, l.Dst)
		}
	}
	return Path{}, false
}

func TestFrozenBFSMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 30)
		for pair := 0; pair < 30; pair++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			want, wok := referenceBFS(g, src, dst)
			got, gok := ShortestPath(g, src, dst)
			if wok != gok {
				t.Fatalf("trial %d %d->%d: ok %v vs reference %v", trial, src, dst, gok, wok)
			}
			if wok && !got.Equal(want) {
				t.Fatalf("trial %d %d->%d: path %v vs reference %v", trial, src, dst, got.Links, want.Links)
			}
		}
	}
}

// TestFrozenDijkstraMatchesReference drives the scratch-space Dijkstra
// against WeightedShortestPath on weight vectors full of exact ties —
// the regime the Garg–Könemann solver lives in, where equal-distance
// heap pop order decides the parent tree. Paths and distances must be
// bit-identical, whether the search terminates at dst or computes the
// full tree first.
func TestFrozenDijkstraMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tieWeights := []float64{1, 1, 1, 2, 0.5}
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 30)
		fz := g.Frozen()
		w := make([]float64, g.NumLinks())
		for i := range w {
			w[i] = tieWeights[rng.Intn(len(tieWeights))]
		}
		s := NewScratch()
		full := NewScratch()
		for pair := 0; pair < 30; pair++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			if src == dst {
				continue
			}
			want, wd, wok := WeightedShortestPath(g, src, dst, w)
			gok := fz.Dijkstra(s, src, w, dst)
			if wok != gok {
				t.Fatalf("trial %d %d->%d: ok %v vs reference %v", trial, src, dst, gok, wok)
			}
			if !wok {
				continue
			}
			got := fz.PathTo(s, src, dst)
			if !got.Equal(want) {
				t.Fatalf("trial %d %d->%d: path %v vs reference %v", trial, src, dst, got.Links, want.Links)
			}
			if gd := s.Dist(dst); gd != wd {
				t.Fatalf("trial %d %d->%d: dist %v vs reference %v", trial, src, dst, gd, wd)
			}
			// The full tree must agree with the early-terminated search.
			fz.Dijkstra(full, src, w, -1)
			if !full.Reached(dst) {
				t.Fatalf("trial %d: full tree misses %d", trial, dst)
			}
			if tp := fz.PathTo(full, src, dst); !tp.Equal(want) {
				t.Fatalf("trial %d %d->%d: tree path %v vs reference %v", trial, src, dst, tp.Links, want.Links)
			}
		}
	}
}

// TestScratchZeroAlloc is the graph-level half of the solver's
// allocation-regression guard: once warm, Dijkstra, BFS, and path
// tracing into a recycled buffer must not allocate.
func TestScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 64)
	fz := g.Frozen()
	w := make([]float64, g.NumLinks())
	for i := range w {
		w[i] = 1 + rng.Float64()
	}
	s := NewScratch()
	var buf []LinkID
	run := func() {
		fz.Dijkstra(s, 0, w, -1)
		for n := 1; n < fz.NumNodes(); n++ {
			if s.Reached(NodeID(n)) && fz.Transit(NodeID(n)) {
				buf = fz.AppendPath(s, 0, NodeID(n), buf[:0])
				break
			}
		}
		fz.BFS(s, 0, -1, nil, nil)
	}
	run() // warm: grow arrays, heap, queue, buffer
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("warm scratch search allocates %v allocs/run, want 0", avg)
	}
}

func TestScratchEpochWraparound(t *testing.T) {
	g := line(6)
	fz := g.Frozen()
	s := NewScratch()
	fz.BFS(s, 0, -1, nil, nil)
	if !s.Reached(5) {
		t.Fatal("node 5 should be reached")
	}
	s.epoch = ^uint32(0) // next begin() wraps to 0 and must clear marks
	fz.BFS(s, 5, -1, nil, nil)
	if !s.Reached(0) || s.epoch != 1 {
		t.Fatalf("wraparound search broken: reached(0)=%v epoch=%d", s.Reached(0), s.epoch)
	}
	if got := s.Dist(0); got != 5 {
		t.Fatalf("dist after wraparound = %v, want 5", got)
	}
}

// referenceReverseLink is the historical O(out-degree) scan.
func referenceReverseLink(g *Graph, id LinkID) (LinkID, bool) {
	l := g.Link(id)
	for _, rid := range g.OutLinks(l.Dst) {
		r := g.Link(rid)
		if r.Dst == l.Src && r.Plane == l.Plane {
			return rid, true
		}
	}
	return 0, false
}

func TestReverseLinkMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 24)
	// A one-way link with no twin, and parallel duplex pairs (the cache
	// must pick the same first match as the scan).
	g.AddLink(0, 5, 10, 0)
	g.AddDuplex(1, 2, 10, 1)
	g.AddDuplex(1, 2, 10, 1)
	for i := 0; i < g.NumLinks(); i++ {
		want, wok := referenceReverseLink(g, LinkID(i))
		got, gok := g.ReverseLink(LinkID(i))
		if wok != gok || (wok && got != want) {
			t.Fatalf("link %d: twin (%d,%v), scan says (%d,%v)", i, got, gok, want, wok)
		}
	}
}

func TestReverseLinkInvalidatesOnGrowth(t *testing.T) {
	g := New(3)
	ab, _ := g.AddDuplex(0, 1, 100, 0)
	bc := g.AddLink(1, 2, 100, 0)
	if _, ok := g.ReverseLink(bc); ok {
		t.Fatal("one-way link should have no twin yet")
	}
	cb := g.AddLink(2, 1, 100, 0)
	if rid, ok := g.ReverseLink(bc); !ok || rid != cb {
		t.Fatalf("twin table stale after AddLink: got (%d,%v)", rid, ok)
	}
	if rid, ok := g.ReverseLink(ab); !ok || rid != ab+1 {
		t.Fatalf("duplex twin wrong: got (%d,%v)", rid, ok)
	}
}

// TestReverseLinkConcurrent hammers the lazily built twin table from
// many goroutines; under -race this proves the once-per-graph build is
// safe for the parallel ACK-route construction the transports do.
func TestReverseLinkConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				id := LinkID(r.Intn(g.NumLinks()))
				want, wok := referenceReverseLink(g, id)
				got, gok := g.ReverseLink(id)
				if wok != gok || (wok && got != want) {
					t.Errorf("link %d: twin (%d,%v), scan says (%d,%v)", id, got, gok, want, wok)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestSetCapacityBounds(t *testing.T) {
	g := line(3)
	g.SetCapacity(0, 42) // in range: fine
	if got := g.Link(0).Capacity; got != 42 {
		t.Fatalf("capacity = %v, want 42", got)
	}
	for _, id := range []LinkID{-1, LinkID(g.NumLinks())} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("SetCapacity(%d) did not panic", id)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "out of range") {
					t.Fatalf("SetCapacity(%d) panic %v, want named out-of-range message", id, r)
				}
			}()
			g.SetCapacity(id, 1)
		}()
	}
}
