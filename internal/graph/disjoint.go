package graph

// EdgeDisjointPaths returns the maximum number of pairwise link-disjoint
// paths from src to dst (up to limit; limit <= 0 means unbounded), via
// unit-capacity max-flow with BFS augmentation. Host non-transit rules
// and link state apply, so for a P-Net host pair the answer is bounded by
// the number of usable planes — the redundancy a P-Net buys (§5.4).
func EdgeDisjointPaths(g *Graph, src, dst NodeID, limit int) int {
	if src == dst {
		return 0
	}
	used := make([]bool, g.NumLinks()) // forward flow on link
	count := 0
	for limit <= 0 || count < limit {
		if !augment(g, src, dst, used) {
			break
		}
		count++
	}
	return count
}

// augment finds one augmenting path in the unit-capacity residual graph
// and flips its links. Residual arcs: unused forward links, plus reverse
// traversal of used links (cancelling flow).
func augment(g *Graph, src, dst NodeID, used []bool) bool {
	type step struct {
		link    LinkID
		forward bool
	}
	parent := make(map[NodeID]step, 64)
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []NodeID{src}

	for len(queue) > 0 && !visited[dst] {
		u := queue[0]
		queue = queue[1:]
		if u != src && !g.Transit(u) && u != dst {
			continue
		}
		for _, id := range g.OutLinks(u) {
			l := g.Link(id)
			if !l.Up || used[id] || visited[l.Dst] {
				continue
			}
			visited[l.Dst] = true
			parent[l.Dst] = step{link: id, forward: true}
			queue = append(queue, l.Dst)
		}
		for _, id := range g.InLinks(u) {
			l := g.Link(id)
			if !l.Up || !used[id] || visited[l.Src] {
				continue
			}
			visited[l.Src] = true
			parent[l.Src] = step{link: id, forward: false}
			queue = append(queue, l.Src)
		}
	}
	if !visited[dst] {
		return false
	}
	for n := dst; n != src; {
		s := parent[n]
		if s.forward {
			used[s.link] = true
			n = g.Link(s.link).Src
		} else {
			used[s.link] = false
			n = g.Link(s.link).Dst
		}
	}
	return true
}
