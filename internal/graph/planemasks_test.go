package graph

import (
	"sync"
	"testing"
)

// twoPlane builds 0-1 on plane 0, 0-1 on plane 1, and one untagged
// management link 1-0.
func twoPlane() *Graph {
	g := New(2)
	g.AddLink(0, 1, 100, 0)
	g.AddLink(0, 1, 100, 1)
	g.AddLink(1, 0, 100, -1)
	return g
}

func TestPlaneMasksSemantics(t *testing.T) {
	g := twoPlane()
	masks := g.PlaneMasks()
	if len(masks) != 2 {
		t.Fatalf("got %d masks, want 2", len(masks))
	}
	// mask[p] excludes links tagged with a *different* plane; untagged
	// links stay usable from every plane.
	for p, want := range [][]bool{{false, true, false}, {true, false, false}} {
		for l, excl := range want {
			if masks[p][l] != excl {
				t.Errorf("mask[%d][%d] = %v, want %v", p, l, masks[p][l], excl)
			}
		}
	}
}

func TestPlaneMasksCached(t *testing.T) {
	g := twoPlane()
	a, b := g.PlaneMasks(), g.PlaneMasks()
	if &a[0] != &b[0] {
		t.Error("second call rebuilt the masks instead of hitting the cache")
	}
	// Link-state flips must NOT invalidate: masks depend only on the
	// immutable Plane tags, and KSP on a degraded graph relies on that.
	g.SetLinkUp(0, false)
	if c := g.PlaneMasks(); &a[0] != &c[0] {
		t.Error("SetLinkUp invalidated the plane-mask cache")
	}
	// Growing the graph must invalidate and cover the new link.
	id := g.AddLink(1, 0, 100, 1)
	d := g.PlaneMasks()
	if &a[0] == &d[0] {
		t.Fatal("AddLink did not invalidate the cache")
	}
	if len(d[0]) != g.NumLinks() || !d[0][id] || d[1][id] {
		t.Errorf("new plane-1 link %d masked wrong: plane0=%v plane1=%v", id, d[0][id], d[1][id])
	}
}

func TestPlaneMasksUntaggedGraph(t *testing.T) {
	g := line(3) // all links plane 0? no: AddDuplex(..., 0) tags plane 0
	g2 := New(2)
	g2.AddLink(0, 1, 100, -1)
	if g2.PlaneMasks() != nil {
		t.Error("untagged graph should have nil masks")
	}
	// The nil result must be cached too — repeated calls stay cheap and
	// consistent.
	if g2.PlaneMasks() != nil {
		t.Error("second call on untagged graph not nil")
	}
	if g.PlaneMasks() == nil {
		t.Error("plane-0-tagged line lost its masks")
	}
}

func TestPlaneMasksCloneIndependent(t *testing.T) {
	g := twoPlane()
	_ = g.PlaneMasks()
	c := g.Clone()
	c.AddLink(0, 1, 100, 2)
	if got := len(c.PlaneMasks()); got != 3 {
		t.Errorf("clone masks cover %d planes, want 3", got)
	}
	if got := len(g.PlaneMasks()); got != 2 {
		t.Errorf("original masks cover %d planes after clone mutation, want 2", got)
	}
}

// TestPlaneMasksConcurrent exercises the cache from parallel readers —
// the KSP fan-out calls PlaneMasks from every worker. Meaningful under
// -race.
func TestPlaneMasksConcurrent(t *testing.T) {
	g := twoPlane()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if len(g.PlaneMasks()) != 2 {
					t.Error("bad mask count")
					return
				}
			}
		}()
	}
	wg.Wait()
}
