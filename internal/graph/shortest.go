package graph

// HopDistances returns the hop count of a shortest path from src to every
// node, or -1 where no path exists. Non-transit nodes other than src are
// never expanded, so distances "through" a host are not reported.
func HopDistances(g *Graph, src NodeID) []int {
	fz := g.Frozen()
	s := GetScratch()
	defer PutScratch(s)
	fz.BFS(s, src, -1, nil, nil)
	dist := make([]int, fz.NumNodes())
	for i := range dist {
		if s.Reached(NodeID(i)) {
			dist[i] = int(s.Dist(NodeID(i)))
		} else {
			dist[i] = -1
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst by BFS, breaking
// ties by link insertion order. ok is false when dst is unreachable.
func ShortestPath(g *Graph, src, dst NodeID) (p Path, ok bool) {
	if src == dst {
		return Path{}, false
	}
	fz := g.Frozen()
	s := GetScratch()
	defer PutScratch(s)
	if !fz.BFS(s, src, dst, nil, nil) {
		return Path{}, false
	}
	return fz.PathTo(s, src, dst), true
}

// tracePath rebuilds a path from a parent-link array filled by a
// *Graph-based search.
func tracePath(g *Graph, parent []LinkID, src, dst NodeID) Path {
	var rev []LinkID
	for n := dst; n != src; {
		id := parent[n]
		rev = append(rev, id)
		n = g.Link(id).Src
	}
	links := make([]LinkID, len(rev))
	for i := range rev {
		links[i] = rev[len(rev)-1-i]
	}
	return Path{Links: links}
}

// ShortestDAG returns, for every node u, the out-links of u that lie on
// some shortest path from u to dst. This is the next-hop set an ECMP
// router would install for destination dst.
func ShortestDAG(g *Graph, dst NodeID) [][]LinkID {
	fz := g.Frozen()
	// BFS backwards from dst over in-links.
	dist := make([]int, fz.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range fz.InLinks(u) {
			if !fz.linkUp[id] {
				continue
			}
			// l.Src forwards into u; l.Src must be allowed to forward
			// (transit) unless it is the origin of a path, which is always
			// permitted, so no transit check on l.Src here. But u must be
			// transit to extend the path beyond it, unless u == dst.
			if u != dst && !fz.transit[u] {
				continue
			}
			if src := fz.linkSrc[id]; dist[src] < 0 {
				dist[src] = dist[u] + 1
				queue = append(queue, src)
			}
		}
	}
	dag := make([][]LinkID, fz.NumNodes())
	for u := 0; u < fz.NumNodes(); u++ {
		if dist[u] <= 0 {
			continue
		}
		for _, id := range fz.OutLinks(NodeID(u)) {
			if !fz.linkUp[id] {
				continue
			}
			v := fz.linkDst[id]
			if v != dst && !fz.transit[v] {
				continue
			}
			if d := dist[v]; d >= 0 && d == dist[u]-1 {
				dag[u] = append(dag[u], id)
			}
		}
	}
	return dag
}

// ECMPPath walks the shortest-path DAG toward dst starting at src, at each
// node choosing among the equal-cost next hops by the flow hash. This
// models per-flow ECMP: a given (flow hash, dst) pair is pinned to one
// deterministic path. ok is false when dst is unreachable from src.
func ECMPPath(g *Graph, dag [][]LinkID, src, dst NodeID, flowHash uint64) (Path, bool) {
	if src == dst {
		return Path{}, false
	}
	fz := g.Frozen()
	var links []LinkID
	u := src
	h := flowHash
	for u != dst {
		next := dag[u]
		if len(next) == 0 {
			return Path{}, false
		}
		h = splitmix64(h)
		id := next[int(h%uint64(len(next)))]
		links = append(links, id)
		u = fz.linkDst[id]
	}
	return Path{Links: links}, true
}

// splitmix64 is the SplitMix64 mixing function, used to derive per-hop
// hash decisions from a single per-flow hash the way a switch pipeline
// re-hashes the five-tuple at every hop.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AvgShortestHops returns the mean hop count of shortest paths over the
// given (src, dst) pairs, ignoring unreachable pairs, and the number of
// unreachable pairs. Used by the fault-tolerance analysis (Figure 14).
func AvgShortestHops(g *Graph, pairs [][2]NodeID) (avg float64, unreachable int) {
	// Group by source so each source needs one BFS.
	bySrc := make(map[NodeID][]NodeID)
	for _, p := range pairs {
		bySrc[p[0]] = append(bySrc[p[0]], p[1])
	}
	var sum, n float64
	for src, dsts := range bySrc {
		dist := HopDistances(g, src)
		for _, d := range dsts {
			if dist[d] < 0 {
				unreachable++
				continue
			}
			sum += float64(dist[d])
			n++
		}
	}
	if n == 0 {
		return 0, unreachable
	}
	return sum / n, unreachable
}
