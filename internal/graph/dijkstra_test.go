package graph

import (
	"testing"
	"testing/quick"
)

func TestWeightedShortestBasic(t *testing.T) {
	// Diamond with weights: short hop-count path made expensive.
	g := diamond()
	w := make([]float64, g.NumLinks())
	for i := range w {
		w[i] = 1
	}
	// Make every link out of node 0 toward 1 and 2 expensive except the
	// detour via 4.
	for _, id := range g.OutLinks(0) {
		if d := g.Link(id).Dst; d == 1 || d == 2 {
			w[id] = 100
		}
	}
	p, dist, ok := WeightedShortestPath(g, 0, 3, w)
	if !ok {
		t.Fatal("no path")
	}
	if p.Len() != 3 { // 0-4-5-3
		t.Errorf("path len = %d, want 3 (detour)", p.Len())
	}
	if dist != 3 {
		t.Errorf("dist = %v, want 3", dist)
	}
}

func TestWeightedShortestMatchesBFSOnUnitWeights(t *testing.T) {
	prop := func(seed int64) bool {
		g, src, dst := randomConnected(seed, 14, 20)
		w := make([]float64, g.NumLinks())
		for i := range w {
			w[i] = 1
		}
		wp, dist, ok1 := WeightedShortestPath(g, src, dst, w)
		bp, ok2 := ShortestPath(g, src, dst)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return wp.Len() == bp.Len() && int(dist) == bp.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWeightedShortestRespectsTransitAndState(t *testing.T) {
	g := line(3)
	w := []float64{1, 1, 1, 1}
	g.SetTransit(1, false)
	if _, _, ok := WeightedShortestPath(g, 0, 2, w); ok {
		t.Error("routed through a host")
	}
	g.SetTransit(1, true)
	if _, _, ok := WeightedShortestPath(g, 0, 2, w); !ok {
		t.Error("no path with transit restored")
	}
	for _, id := range g.OutLinks(1) {
		g.SetLinkUp(id, false)
	}
	if _, _, ok := WeightedShortestPath(g, 0, 2, w); ok {
		t.Error("routed over down link")
	}
}

func TestWeightedShortestSameNode(t *testing.T) {
	g := line(2)
	if _, _, ok := WeightedShortestPath(g, 0, 0, []float64{1, 1}); ok {
		t.Error("path from node to itself")
	}
}

func TestReverseLink(t *testing.T) {
	g := New(3)
	ab, ba := g.AddDuplex(0, 1, 100, 2)
	if rid, ok := g.ReverseLink(ab); !ok || rid != ba {
		t.Errorf("reverse of ab = %d %v", rid, ok)
	}
	if rid, ok := g.ReverseLink(ba); !ok || rid != ab {
		t.Errorf("reverse of ba = %d %v", rid, ok)
	}
	// A one-way link has no reverse.
	one := g.AddLink(1, 2, 100, 0)
	if _, ok := g.ReverseLink(one); ok {
		t.Error("one-way link reported a reverse")
	}
}

func TestReverseLinkMatchesPlane(t *testing.T) {
	// Two parallel duplexes on different planes between the same nodes:
	// the reverse must stay on the same plane.
	g := New(2)
	a0, b0 := g.AddDuplex(0, 1, 100, 0)
	a1, b1 := g.AddDuplex(0, 1, 100, 1)
	if rid, _ := g.ReverseLink(a0); rid != b0 {
		t.Errorf("plane-0 reverse = %d, want %d", rid, b0)
	}
	if rid, _ := g.ReverseLink(a1); rid != b1 {
		t.Errorf("plane-1 reverse = %d, want %d", rid, b1)
	}
}

func TestReversePathRoundTrip(t *testing.T) {
	g := diamond()
	p, _ := ShortestPath(g, 0, 3)
	rev, ok := ReversePath(g, p)
	if !ok {
		t.Fatal("no reverse path")
	}
	if rev.Src(g) != 3 || rev.Dst(g) != 0 {
		t.Errorf("reverse endpoints %d -> %d", rev.Src(g), rev.Dst(g))
	}
	if !rev.Valid(g) {
		t.Error("reverse path invalid")
	}
	back, _ := ReversePath(g, rev)
	if !back.Equal(p) {
		t.Error("double reverse != original")
	}
}

func TestSplitmixSpreads(t *testing.T) {
	// The per-hop hash must spread well over small moduli.
	counts := make([]int, 4)
	x := uint64(12345)
	for i := 0; i < 4000; i++ {
		x = splitmix64(x)
		counts[x%4]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("bucket %d = %d of 4000 (poor spread)", i, c)
		}
	}
}

func TestHopDistancesFromHostSource(t *testing.T) {
	// A non-transit SOURCE may still originate traffic.
	g := line(3)
	g.SetTransit(0, false)
	d := HopDistances(g, 0)
	if d[2] != 2 {
		t.Errorf("dist from host source = %d, want 2", d[2])
	}
}
