package graph

// Frozen is a compact, read-only adjacency snapshot of a Graph in CSR
// (compressed sparse row) form, built for the solver and routing hot
// paths. Out- and in-edges live in two flat arrays indexed by per-node
// offsets, and the per-link fields the inner loops touch (destination,
// capacity, up state) are split into parallel arrays, so edge relaxation
// is a cache-linear scan instead of a pointer chase through slice-of-
// slices adjacency with a bounds-checked Link struct copy per edge.
//
// Edge order within a node is the Graph's insertion order, so every
// algorithm ported to the frozen view visits links in exactly the order
// the *Graph-based implementations do — deterministic tie-breaking, and
// therefore results, are preserved bit for bit.
//
// A Frozen is immutable. Obtain one with Graph.Frozen(), which caches
// the snapshot and rebuilds it only after the graph mutates. All methods
// are safe for concurrent use.
type Frozen struct {
	numNodes int

	outStart []int32 // len numNodes+1; out-links of n are outList[outStart[n]:outStart[n+1]]
	outList  []LinkID
	inStart  []int32
	inList   []LinkID

	// Hot per-link arrays, indexed by LinkID.
	linkSrc   []NodeID
	linkDst   []NodeID
	linkCap   []float64
	linkUp    []bool
	linkPlane []int32

	transit []bool
}

// Frozen returns the CSR snapshot of the graph, building it on first use
// and after any mutation (AddNode/AddLink, SetLinkUp, SetCapacity,
// SetTransit, ScaleCapacities). Concurrent callers against an unchanged
// graph share one snapshot; the build happens at most once per graph
// version. The returned view must be treated as read-only.
func (g *Graph) Frozen() *Frozen {
	g.frozenMu.Lock()
	defer g.frozenMu.Unlock()
	if g.frozen != nil && g.frozenVersion == g.version {
		return g.frozen
	}
	g.frozen = g.buildFrozen()
	g.frozenVersion = g.version
	return g.frozen
}

func (g *Graph) buildFrozen() *Frozen {
	n, m := len(g.transit), len(g.links)
	fz := &Frozen{
		numNodes:  n,
		outStart:  make([]int32, n+1),
		outList:   make([]LinkID, 0, m),
		inStart:   make([]int32, n+1),
		inList:    make([]LinkID, 0, m),
		linkSrc:   make([]NodeID, m),
		linkDst:   make([]NodeID, m),
		linkCap:   make([]float64, m),
		linkUp:    make([]bool, m),
		linkPlane: make([]int32, m),
		transit:   append([]bool(nil), g.transit...),
	}
	for i := range g.links {
		l := &g.links[i]
		fz.linkSrc[i] = l.Src
		fz.linkDst[i] = l.Dst
		fz.linkCap[i] = l.Capacity
		fz.linkUp[i] = l.Up
		fz.linkPlane[i] = l.Plane
	}
	for u := 0; u < n; u++ {
		fz.outStart[u] = int32(len(fz.outList))
		fz.outList = append(fz.outList, g.out[u]...)
		fz.inStart[u] = int32(len(fz.inList))
		fz.inList = append(fz.inList, g.in[u]...)
	}
	fz.outStart[n] = int32(len(fz.outList))
	fz.inStart[n] = int32(len(fz.inList))
	return fz
}

// NumNodes returns the number of nodes in the snapshot.
func (fz *Frozen) NumNodes() int { return fz.numNodes }

// NumLinks returns the number of directed links, including down links.
func (fz *Frozen) NumLinks() int { return len(fz.linkSrc) }

// OutLinks returns the IDs of links leaving node n, in insertion order.
// The slice aliases the CSR array and must not be modified.
func (fz *Frozen) OutLinks(n NodeID) []LinkID {
	return fz.outList[fz.outStart[n]:fz.outStart[n+1]]
}

// InLinks returns the IDs of links entering node n, in insertion order.
func (fz *Frozen) InLinks(n NodeID) []LinkID {
	return fz.inList[fz.inStart[n]:fz.inStart[n+1]]
}

// Transit reports whether node n may forward traffic.
func (fz *Frozen) Transit(n NodeID) bool { return fz.transit[n] }

// LinkSrc returns the source node of link id.
func (fz *Frozen) LinkSrc(id LinkID) NodeID { return fz.linkSrc[id] }

// LinkDst returns the destination node of link id.
func (fz *Frozen) LinkDst(id LinkID) NodeID { return fz.linkDst[id] }

// LinkCap returns the capacity of link id in Gb/s.
func (fz *Frozen) LinkCap(id LinkID) float64 { return fz.linkCap[id] }

// LinkUp reports the administrative state of link id at snapshot time.
func (fz *Frozen) LinkUp(id LinkID) bool { return fz.linkUp[id] }

// LinkPlane returns the dataplane tag of link id.
func (fz *Frozen) LinkPlane(id LinkID) int32 { return fz.linkPlane[id] }
