// Package graph provides the directed multigraph and path algorithms that
// underlie every topology in this repository.
//
// A Graph is a static set of nodes connected by directed links. Links carry
// a capacity (in Gb/s) and an administrative up/down state so that the
// failure-analysis experiments can knock links out without rebuilding the
// topology. Nodes carry a Transit flag: end hosts are non-transit, which
// prevents any path-finding algorithm from relaying traffic through a host —
// the defining forwarding constraint of a Parallel Dataplane Network, where
// a packet that has entered one plane may not hop through a host into
// another plane.
//
// All algorithms in this package treat the graph as unweighted (hop count
// metric), matching the shortest-path and K-shortest-path routing used in
// the paper's evaluation.
package graph

import (
	"fmt"
	"sync"
)

// NodeID identifies a node within a Graph.
type NodeID int32

// LinkID identifies a directed link within a Graph.
type LinkID int32

// Link is a directed, capacitated edge.
type Link struct {
	ID       LinkID
	Src, Dst NodeID
	// Capacity is the link speed in Gb/s.
	Capacity float64
	// Plane tags which dataplane the link belongs to. Host uplinks carry
	// the plane they attach to; links of single-plane (serial) networks
	// use plane 0. A value of -1 means "not plane-specific".
	Plane int32
	// Up reports the administrative state. Down links are invisible to
	// all path algorithms.
	Up bool
}

// Graph is a directed multigraph. The zero value is unusable; create one
// with New.
type Graph struct {
	transit []bool
	links   []Link
	out     [][]LinkID
	in      [][]LinkID

	// version counts mutations (node/link growth, up/capacity/transit
	// changes). Derived snapshots cache against it; a stale version
	// triggers a rebuild on next access. Mutators run single-threaded by
	// contract — only read-only access may be concurrent.
	version uint64

	// Plane-mask cache (see PlaneMasks). Guarded by masksMu so that
	// concurrent path computations against one shared read-only graph —
	// the parallel-sweep execution model — build the masks exactly once.
	masksMu    sync.Mutex
	masks      [][]bool
	masksValid bool
	masksLinks int // NumLinks when masks was computed; invalidates on growth

	// Frozen CSR snapshot cache (see Frozen), keyed by version.
	frozenMu      sync.Mutex
	frozen        *Frozen
	frozenVersion uint64

	// Reverse-twin cache (see ReverseLink), invalidated on link growth
	// like the plane masks — up/capacity changes never affect twins.
	twinMu    sync.Mutex
	twin      []LinkID
	twinLinks int
}

// New returns an empty graph with n nodes, all transit-capable.
func New(n int) *Graph {
	return &Graph{
		transit: newBools(n, true),
		out:     make([][]LinkID, n),
		in:      make([][]LinkID, n),
	}
}

func newBools(n int, v bool) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = v
	}
	return b
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(transit bool) NodeID {
	g.version++
	g.transit = append(g.transit, transit)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return NodeID(len(g.transit) - 1)
}

// AddLink adds a directed link from src to dst and returns its ID.
// The link starts in the up state.
func (g *Graph) AddLink(src, dst NodeID, capacity float64, plane int32) LinkID {
	if src == dst {
		panic(fmt.Sprintf("graph: self-loop at node %d", src))
	}
	g.version++
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{
		ID: id, Src: src, Dst: dst, Capacity: capacity, Plane: plane, Up: true,
	})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	return id
}

// AddDuplex adds a pair of directed links between a and b (one in each
// direction) and returns their IDs.
func (g *Graph) AddDuplex(a, b NodeID, capacity float64, plane int32) (ab, ba LinkID) {
	return g.AddLink(a, b, capacity, plane), g.AddLink(b, a, capacity, plane)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.transit) }

// NumLinks returns the number of directed links, including down links.
func (g *Graph) NumLinks() int { return len(g.links) }

// checkLink validates a link ID before indexing, so a bad ID (typically
// from a hand-written chaos schedule) fails with a message naming the
// culprit instead of a bare slice-bounds panic.
func (g *Graph) checkLink(id LinkID) {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("graph: link %d out of range [0,%d)", id, len(g.links)))
	}
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link {
	g.checkLink(id)
	return g.links[id]
}

// OutLinks returns the IDs of links leaving node n, including down links.
func (g *Graph) OutLinks(n NodeID) []LinkID { return g.out[n] }

// InLinks returns the IDs of links entering node n, including down links.
func (g *Graph) InLinks(n NodeID) []LinkID { return g.in[n] }

// Transit reports whether node n may forward traffic (false for end hosts).
func (g *Graph) Transit(n NodeID) bool { return g.transit[n] }

// SetTransit sets the transit capability of node n.
func (g *Graph) SetTransit(n NodeID, transit bool) {
	g.version++
	g.transit[n] = transit
}

// SetLinkUp sets the administrative state of a link.
func (g *Graph) SetLinkUp(id LinkID, up bool) {
	g.checkLink(id)
	g.version++
	g.links[id].Up = up
}

// SetCapacity overwrites the capacity of a link. Used to derive "serial
// high-bandwidth" networks from their low-bandwidth twins.
func (g *Graph) SetCapacity(id LinkID, capacity float64) {
	g.checkLink(id)
	g.version++
	g.links[id].Capacity = capacity
}

// ScaleCapacities multiplies every link capacity by f.
func (g *Graph) ScaleCapacities(f float64) {
	g.version++
	for i := range g.links {
		g.links[i].Capacity *= f
	}
}

// Clone returns a deep copy of the graph. Failure experiments clone a
// topology before tearing links down.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		transit: append([]bool(nil), g.transit...),
		links:   append([]Link(nil), g.links...),
		out:     make([][]LinkID, len(g.out)),
		in:      make([][]LinkID, len(g.in)),
	}
	for i := range g.out {
		c.out[i] = append([]LinkID(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]LinkID(nil), g.in[i]...)
	}
	return c
}

// PlaneMasks returns, in increasing plane order, the banned-link masks
// that confine a path search to each dataplane: mask[p][l] is true when
// link l belongs to a different plane than p (untagged plane -1 links are
// allowed everywhere). The result is nil when no link carries a plane tag.
//
// The masks are computed once per graph and cached; the cache is
// invalidated when links are added, and the returned slices are shared —
// callers must treat them as read-only. Safe for concurrent use as long
// as the topology itself is not mutated concurrently, which is the
// contract for all parallel path computation.
func (g *Graph) PlaneMasks() [][]bool {
	g.masksMu.Lock()
	defer g.masksMu.Unlock()
	if g.masksValid && g.masksLinks == len(g.links) {
		return g.masks
	}
	g.masksValid = true
	g.masksLinks = len(g.links)
	g.masks = nil
	maxPlane := int32(-1)
	for i := range g.links {
		if p := g.links[i].Plane; p > maxPlane {
			maxPlane = p
		}
	}
	if maxPlane < 0 {
		return nil
	}
	masks := make([][]bool, maxPlane+1)
	for p := int32(0); p <= maxPlane; p++ {
		mask := make([]bool, len(g.links))
		for i := range g.links {
			if q := g.links[i].Plane; q >= 0 && q != p {
				mask[i] = true
			}
		}
		masks[p] = mask
	}
	g.masks = masks
	return masks
}

// ReverseLink returns the link running opposite to id (same endpoints and
// plane, reversed direction). ok is false if none exists. Topologies built
// with AddDuplex always have one; transports call it once per hop of
// every ACK-route build, so the twin table is precomputed: the first call
// builds it in one O(links) pass and later calls are a single array load.
// The cache is invalidated when links are added (twins depend only on
// endpoints and plane tags, which never change after AddLink) and is safe
// to build and read concurrently, like PlaneMasks.
func (g *Graph) ReverseLink(id LinkID) (LinkID, bool) {
	g.checkLink(id)
	rid := g.twins()[id]
	return rid, rid >= 0
}

// twins returns the cached reverse-twin table, building it if stale.
// twin[l] is the lowest-numbered link with reversed endpoints and the
// same plane as l, or -1 — "lowest-numbered" matches the historical
// linear scan, which walked the out-links of l's destination in link
// insertion order.
func (g *Graph) twins() []LinkID {
	g.twinMu.Lock()
	defer g.twinMu.Unlock()
	if g.twin != nil && g.twinLinks == len(g.links) {
		return g.twin
	}
	type key struct {
		src, dst NodeID
		plane    int32
	}
	first := make(map[key]LinkID, len(g.links))
	for i := range g.links {
		l := &g.links[i]
		k := key{l.Src, l.Dst, l.Plane}
		if _, ok := first[k]; !ok {
			first[k] = LinkID(i)
		}
	}
	twin := make([]LinkID, len(g.links))
	for i := range g.links {
		l := &g.links[i]
		if rid, ok := first[key{l.Dst, l.Src, l.Plane}]; ok {
			twin[i] = rid
		} else {
			twin[i] = -1
		}
	}
	g.twin = twin
	g.twinLinks = len(g.links)
	return twin
}

// ReversePath returns the hop-by-hop reverse of p. ok is false if any link
// lacks a reverse twin.
func ReversePath(g *Graph, p Path) (Path, bool) {
	links := make([]LinkID, len(p.Links))
	for i, id := range p.Links {
		rid, ok := g.ReverseLink(id)
		if !ok {
			return Path{}, false
		}
		links[len(p.Links)-1-i] = rid
	}
	return Path{Links: links}, true
}
