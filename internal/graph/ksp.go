package graph

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing hop-count order, using Yen's algorithm over unit link weights.
// Ties between equal-length paths are broken deterministically by link
// insertion order, so results are reproducible for a fixed topology.
//
// In a P-Net the planes are disjoint except at hosts and hosts never
// forward, so every returned path is confined to a single plane; running
// KSP on the combined multi-plane graph therefore yields exactly the
// paper's "K shortest paths across all dataplanes".
func KShortestPaths(g *Graph, src, dst NodeID, k int) []Path {
	return KShortestPathsMasked(g, src, dst, k, nil)
}

// KShortestPathsMasked is KShortestPaths restricted to links where
// banned[link] is false. banned may be nil. It is used to confine the
// search to a single dataplane.
//
// The spur searches — the hot loop of Yen's algorithm — run on the CSR
// frozen view with one pooled scratch space reused across every spur, so
// the per-spur cost is a cache-linear BFS with no per-search allocation.
func KShortestPathsMasked(g *Graph, src, dst NodeID, k int, banned []bool) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	fz := g.Frozen()
	s := GetScratch()
	defer PutScratch(s)

	baseline := banned
	if baseline == nil {
		baseline = make([]bool, fz.NumLinks())
	}
	if !fz.BFS(s, src, dst, baseline, nil) {
		return nil
	}
	first := fz.PathTo(s, src, dst)
	result := []Path{first}
	seen := map[string]bool{first.key(): true}
	var candidates candidateHeap

	bannedLinks := append([]bool(nil), baseline...)
	bannedNodes := make([]bool, fz.NumNodes())

	for len(result) < k {
		prev := result[len(result)-1]
		prevNodes := prev.Nodes(g)
		// Spur from each node of the previous path except the last.
		for i := 0; i < len(prev.Links); i++ {
			spurNode := prevNodes[i]
			rootLinks := prev.Links[:i]

			// Ban links that would recreate a known path with this root.
			for _, p := range result {
				if hasPrefix(p.Links, rootLinks) && len(p.Links) > i {
					bannedLinks[p.Links[i]] = true
				}
			}
			for _, c := range candidates {
				if hasPrefix(c.Links, rootLinks) && len(c.Links) > i {
					bannedLinks[c.Links[i]] = true
				}
			}
			// Ban root-path nodes (except the spur node) to keep loopless.
			for _, n := range prevNodes[:i] {
				bannedNodes[n] = true
			}

			if fz.BFS(s, spurNode, dst, bannedLinks, bannedNodes) {
				links := make([]LinkID, 0, len(rootLinks)+8)
				links = append(links, rootLinks...)
				links = fz.AppendPath(s, spurNode, dst, links)
				cand := Path{Links: links}
				if key := cand.key(); !seen[key] {
					seen[key] = true
					candidates.push(cand)
				}
			}

			copy(bannedLinks, baseline)
			for j := range bannedNodes {
				bannedNodes[j] = false
			}
		}
		if len(candidates) == 0 {
			break
		}
		result = append(result, candidates.pop())
	}
	return result
}

func hasPrefix(links, prefix []LinkID) bool {
	if len(links) < len(prefix) {
		return false
	}
	for i := range prefix {
		if links[i] != prefix[i] {
			return false
		}
	}
	return true
}

// candidateHeap is an interface-free 4-ary min-heap of candidate paths,
// mirroring the sim engine's eventHeap and the scratch-space spHeap: no
// container/heap boxing, no allocation per push. Unlike Dijkstra's
// distance heap, the comparison here is a strict total order on distinct
// paths (length, then link sequence), so the pop sequence is the sorted
// order regardless of heap arity — switching from container/heap's
// binary layout cannot change which candidate is promoted next.
type candidateHeap []Path

// pathLess orders candidates by hop count, ties broken by link sequence.
func pathLess(a, b Path) bool {
	if len(a.Links) != len(b.Links) {
		return len(a.Links) < len(b.Links)
	}
	for x := range a.Links {
		if a.Links[x] != b.Links[x] {
			return a.Links[x] < b.Links[x]
		}
	}
	return false
}

func (h *candidateHeap) push(p Path) {
	*h = append(*h, p)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !pathLess(p, s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = p
}

func (h *candidateHeap) pop() Path {
	s := *h
	top := s[0]
	last := s[len(s)-1]
	s[len(s)-1] = Path{}
	s = s[:len(s)-1]
	*h = s
	if len(s) == 0 {
		return top
	}
	// Sift the former last element down from the root.
	i := 0
	for {
		child := 4*i + 1
		if child >= len(s) {
			break
		}
		end := child + 4
		if end > len(s) {
			end = len(s)
		}
		best := child
		for c := child + 1; c < end; c++ {
			if pathLess(s[c], s[best]) {
				best = c
			}
		}
		if !pathLess(s[best], last) {
			break
		}
		s[i] = s[best]
		i = best
	}
	s[i] = last
	return top
}
