package graph

import "container/heap"

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing hop-count order, using Yen's algorithm over unit link weights.
// Ties between equal-length paths are broken deterministically by link
// insertion order, so results are reproducible for a fixed topology.
//
// In a P-Net the planes are disjoint except at hosts and hosts never
// forward, so every returned path is confined to a single plane; running
// KSP on the combined multi-plane graph therefore yields exactly the
// paper's "K shortest paths across all dataplanes".
func KShortestPaths(g *Graph, src, dst NodeID, k int) []Path {
	return KShortestPathsMasked(g, src, dst, k, nil)
}

// KShortestPathsMasked is KShortestPaths restricted to links where
// banned[link] is false. banned may be nil. It is used to confine the
// search to a single dataplane.
func KShortestPathsMasked(g *Graph, src, dst NodeID, k int, banned []bool) []Path {
	if k <= 0 {
		return nil
	}
	baseline := banned
	if baseline == nil {
		baseline = make([]bool, g.NumLinks())
	}
	first, ok := shortestMasked(g, src, dst, baseline, nil)
	if !ok {
		return nil
	}
	result := []Path{first}
	seen := map[string]bool{first.key(): true}
	var candidates candidateHeap

	bannedLinks := append([]bool(nil), baseline...)
	bannedNodes := make([]bool, g.NumNodes())

	for len(result) < k {
		prev := result[len(result)-1]
		prevNodes := prev.Nodes(g)
		// Spur from each node of the previous path except the last.
		for i := 0; i < len(prev.Links); i++ {
			spurNode := prevNodes[i]
			rootLinks := prev.Links[:i]

			// Ban links that would recreate a known path with this root.
			for _, p := range result {
				if hasPrefix(p.Links, rootLinks) && len(p.Links) > i {
					bannedLinks[p.Links[i]] = true
				}
			}
			for _, c := range candidates {
				if hasPrefix(c.path.Links, rootLinks) && len(c.path.Links) > i {
					bannedLinks[c.path.Links[i]] = true
				}
			}
			// Ban root-path nodes (except the spur node) to keep loopless.
			for _, n := range prevNodes[:i] {
				bannedNodes[n] = true
			}

			if spur, ok := shortestMasked(g, spurNode, dst, bannedLinks, bannedNodes); ok {
				links := make([]LinkID, 0, len(rootLinks)+len(spur.Links))
				links = append(links, rootLinks...)
				links = append(links, spur.Links...)
				cand := Path{Links: links}
				if key := cand.key(); !seen[key] {
					seen[key] = true
					heap.Push(&candidates, candidate{path: cand})
				}
			}

			copy(bannedLinks, baseline)
			for j := range bannedNodes {
				bannedNodes[j] = false
			}
		}
		if candidates.Len() == 0 {
			break
		}
		result = append(result, heap.Pop(&candidates).(candidate).path)
	}
	return result
}

func hasPrefix(links, prefix []LinkID) bool {
	if len(links) < len(prefix) {
		return false
	}
	for i := range prefix {
		if links[i] != prefix[i] {
			return false
		}
	}
	return true
}

// shortestMasked is BFS shortest path honoring banned links and nodes.
// Either mask may be nil.
func shortestMasked(g *Graph, src, dst NodeID, bannedLinks, bannedNodes []bool) (Path, bool) {
	if src == dst {
		return Path{}, false
	}
	parent := make([]LinkID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u != src && !g.Transit(u) {
			continue
		}
		for _, id := range g.OutLinks(u) {
			if bannedLinks != nil && bannedLinks[id] {
				continue
			}
			l := g.Link(id)
			if !l.Up || visited[l.Dst] {
				continue
			}
			if bannedNodes != nil && bannedNodes[l.Dst] {
				continue
			}
			visited[l.Dst] = true
			parent[l.Dst] = id
			if l.Dst == dst {
				return tracePath(g, parent, src, dst), true
			}
			queue = append(queue, l.Dst)
		}
	}
	return Path{}, false
}

type candidate struct {
	path Path
}

type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if len(h[i].path.Links) != len(h[j].path.Links) {
		return len(h[i].path.Links) < len(h[j].path.Links)
	}
	// Deterministic tie-break on link sequence.
	a, b := h[i].path.Links, h[j].path.Links
	for x := range a {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}
func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x any)   { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return
}
