package graph

import (
	"testing"
	"testing/quick"
)

// line builds a simple chain 0-1-2-...-n-1 with duplex 100G links.
func line(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddDuplex(NodeID(i), NodeID(i+1), 100, 0)
	}
	return g
}

// diamond builds src(0) -> {1,2} -> dst(3) plus a longer detour 0-4-5-3.
func diamond() *Graph {
	g := New(6)
	g.AddDuplex(0, 1, 100, 0)
	g.AddDuplex(0, 2, 100, 0)
	g.AddDuplex(1, 3, 100, 0)
	g.AddDuplex(2, 3, 100, 0)
	g.AddDuplex(0, 4, 100, 0)
	g.AddDuplex(4, 5, 100, 0)
	g.AddDuplex(5, 3, 100, 0)
	return g
}

func TestAddLinkBookkeeping(t *testing.T) {
	g := New(3)
	ab, ba := g.AddDuplex(0, 1, 40, 2)
	if g.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", g.NumLinks())
	}
	l := g.Link(ab)
	if l.Src != 0 || l.Dst != 1 || l.Capacity != 40 || l.Plane != 2 || !l.Up {
		t.Errorf("link ab = %+v", l)
	}
	if got := g.Link(ba); got.Src != 1 || got.Dst != 0 {
		t.Errorf("link ba = %+v", got)
	}
	if len(g.OutLinks(0)) != 1 || len(g.InLinks(0)) != 1 {
		t.Errorf("adjacency of node 0 = out %v in %v", g.OutLinks(0), g.InLinks(0))
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddLink(0,0) did not panic")
		}
	}()
	New(1).AddLink(0, 0, 1, 0)
}

func TestHopDistancesLine(t *testing.T) {
	g := line(5)
	d := HopDistances(g, 0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New(3)
	g.AddDuplex(0, 1, 100, 0)
	d := HopDistances(g, 0)
	if d[2] != -1 {
		t.Errorf("dist[2] = %d, want -1", d[2])
	}
}

func TestHopDistancesRespectsDownLinks(t *testing.T) {
	g := line(3)
	// Take down both directions of the 1-2 hop.
	for _, id := range g.OutLinks(1) {
		if g.Link(id).Dst == 2 {
			g.SetLinkUp(id, false)
		}
	}
	d := HopDistances(g, 0)
	if d[2] != -1 {
		t.Errorf("dist[2] = %d after link down, want -1", d[2])
	}
}

func TestNoTransitThroughHosts(t *testing.T) {
	// 0 -- 1 -- 2 where 1 is a host: 0 cannot reach 2.
	g := line(3)
	g.SetTransit(1, false)
	if d := HopDistances(g, 0); d[2] != -1 {
		t.Errorf("dist through host = %d, want -1", d[2])
	}
	if _, ok := ShortestPath(g, 0, 2); ok {
		t.Error("ShortestPath found a path through a host")
	}
	// But the host itself remains reachable.
	if d := HopDistances(g, 0); d[1] != 1 {
		t.Errorf("dist to host = %d, want 1", d[1])
	}
}

func TestShortestPathDiamond(t *testing.T) {
	g := diamond()
	p, ok := ShortestPath(g, 0, 3)
	if !ok {
		t.Fatal("no path found")
	}
	if p.Len() != 2 {
		t.Errorf("path length = %d, want 2", p.Len())
	}
	if !p.Valid(g) {
		t.Errorf("path %v invalid", p.Links)
	}
	if p.Src(g) != 0 || p.Dst(g) != 3 {
		t.Errorf("endpoints = %d -> %d", p.Src(g), p.Dst(g))
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := line(2)
	if _, ok := ShortestPath(g, 0, 0); ok {
		t.Error("found path from node to itself")
	}
}

func TestPathNodes(t *testing.T) {
	g := line(4)
	p, _ := ShortestPath(g, 0, 3)
	nodes := p.Nodes(g)
	want := []NodeID{0, 1, 2, 3}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}

func TestPathValidRejectsBroken(t *testing.T) {
	g := diamond()
	p, _ := ShortestPath(g, 0, 3)
	// Non-contiguous: duplicate the first link.
	bad := Path{Links: []LinkID{p.Links[0], p.Links[0]}}
	if bad.Valid(g) {
		t.Error("non-contiguous path reported valid")
	}
	if (Path{}).Valid(g) {
		t.Error("empty path reported valid")
	}
	// Down link invalidates.
	g.SetLinkUp(p.Links[0], false)
	if p.Valid(g) {
		t.Error("path over down link reported valid")
	}
}

func TestShortestDAGDiamond(t *testing.T) {
	g := diamond()
	dag := ShortestDAG(g, 3)
	if len(dag[0]) != 2 {
		t.Errorf("node 0 next hops = %d, want 2 (via 1 and 2)", len(dag[0]))
	}
	for _, id := range dag[0] {
		d := g.Link(id).Dst
		if d != 1 && d != 2 {
			t.Errorf("unexpected next hop %d", d)
		}
	}
	// Node 4 is on the long detour only; it still has a next hop toward 3
	// (through 5), since from 4 the shortest path is 4-5-3.
	if len(dag[4]) != 1 || g.Link(dag[4][0]).Dst != 5 {
		t.Errorf("node 4 dag = %v", dag[4])
	}
}

func TestECMPPathDeterministic(t *testing.T) {
	g := diamond()
	dag := ShortestDAG(g, 3)
	p1, ok1 := ECMPPath(g, dag, 0, 3, 12345)
	p2, ok2 := ECMPPath(g, dag, 0, 3, 12345)
	if !ok1 || !ok2 {
		t.Fatal("ECMP path not found")
	}
	if !p1.Equal(p2) {
		t.Error("same hash produced different ECMP paths")
	}
	if p1.Len() != 2 {
		t.Errorf("ECMP path length = %d, want 2", p1.Len())
	}
	if !p1.Valid(g) {
		t.Error("ECMP path invalid")
	}
}

func TestECMPPathSpreads(t *testing.T) {
	g := diamond()
	dag := ShortestDAG(g, 3)
	used := map[NodeID]bool{}
	for h := uint64(0); h < 64; h++ {
		p, ok := ECMPPath(g, dag, 0, 3, h)
		if !ok {
			t.Fatal("no path")
		}
		used[g.Link(p.Links[0]).Dst] = true
	}
	if !used[1] || !used[2] {
		t.Errorf("ECMP used only next hops %v, want both 1 and 2", used)
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g := diamond()
	paths := KShortestPaths(g, 0, 3, 10)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	wantLens := []int{2, 2, 3}
	for i, p := range paths {
		if p.Len() != wantLens[i] {
			t.Errorf("path %d length = %d, want %d", i, p.Len(), wantLens[i])
		}
		if !p.Valid(g) {
			t.Errorf("path %d invalid: %v", i, p.Links)
		}
		if p.Src(g) != 0 || p.Dst(g) != 3 {
			t.Errorf("path %d endpoints wrong", i)
		}
	}
	// All distinct.
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if paths[i].Equal(paths[j]) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
}

func TestKShortestPathsOrdering(t *testing.T) {
	g := diamond()
	paths := KShortestPaths(g, 0, 3, 3)
	for i := 1; i < len(paths); i++ {
		if paths[i].Len() < paths[i-1].Len() {
			t.Errorf("paths out of order: len[%d]=%d < len[%d]=%d",
				i, paths[i].Len(), i-1, paths[i-1].Len())
		}
	}
}

func TestKShortestPathsK1MatchesShortest(t *testing.T) {
	g := diamond()
	paths := KShortestPaths(g, 0, 3, 1)
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
	sp, _ := ShortestPath(g, 0, 3)
	if paths[0].Len() != sp.Len() {
		t.Errorf("KSP[0] length %d != shortest %d", paths[0].Len(), sp.Len())
	}
}

func TestKShortestPathsUnreachable(t *testing.T) {
	g := New(2)
	if paths := KShortestPaths(g, 0, 1, 4); paths != nil {
		t.Errorf("got %d paths in disconnected graph", len(paths))
	}
}

// TestKShortestLoopless: property-based check on random graphs that every
// returned path is valid (and hence loopless) and that lengths are
// non-decreasing.
func TestKShortestLoopless(t *testing.T) {
	prop := func(seed int64) bool {
		g, src, dst := randomConnected(seed, 12, 24)
		paths := KShortestPaths(g, src, dst, 6)
		prev := 0
		for _, p := range paths {
			if !p.Valid(g) || p.Src(g) != src || p.Dst(g) != dst {
				return false
			}
			if p.Len() < prev {
				return false
			}
			prev = p.Len()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomConnected builds a random graph guaranteed connected by a ring
// backbone plus extra random chords derived from seed.
func randomConnected(seed int64, n, extra int) (*Graph, NodeID, NodeID) {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddDuplex(NodeID(i), NodeID((i+1)%n), 100, 0)
	}
	s := uint64(seed)
	for i := 0; i < extra; i++ {
		s = splitmix64(s)
		a := NodeID(s % uint64(n))
		s = splitmix64(s)
		b := NodeID(s % uint64(n))
		if a != b {
			g.AddDuplex(a, b, 100, 0)
		}
	}
	return g, 0, NodeID(n / 2)
}

func TestAvgShortestHops(t *testing.T) {
	g := line(4)
	pairs := [][2]NodeID{{0, 1}, {0, 3}, {1, 3}}
	avg, unreach := AvgShortestHops(g, pairs)
	if unreach != 0 {
		t.Fatalf("unreachable = %d", unreach)
	}
	want := (1.0 + 3.0 + 2.0) / 3.0
	if avg != want {
		t.Errorf("avg = %v, want %v", avg, want)
	}
}

func TestAvgShortestHopsUnreachable(t *testing.T) {
	g := New(3)
	g.AddDuplex(0, 1, 100, 0)
	avg, unreach := AvgShortestHops(g, [][2]NodeID{{0, 1}, {0, 2}})
	if unreach != 1 {
		t.Errorf("unreachable = %d, want 1", unreach)
	}
	if avg != 1 {
		t.Errorf("avg = %v, want 1", avg)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := line(3)
	c := g.Clone()
	c.SetLinkUp(0, false)
	if !g.Link(0).Up {
		t.Error("mutating clone affected original")
	}
	c.SetTransit(1, false)
	if !g.Transit(1) {
		t.Error("clone shares transit slice")
	}
}

func TestScaleCapacities(t *testing.T) {
	g := line(2)
	g.ScaleCapacities(4)
	if got := g.Link(0).Capacity; got != 400 {
		t.Errorf("capacity = %v, want 400", got)
	}
}

func TestPathPlane(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1, 100, 7)
	g.AddLink(1, 2, 100, 7)
	p := Path{Links: []LinkID{0, 1}}
	if p.Plane(g) != 7 {
		t.Errorf("plane = %d, want 7", p.Plane(g))
	}
	if (Path{}).Plane(g) != -1 {
		t.Error("empty path plane != -1")
	}
}

func TestLinkIDBoundsChecked(t *testing.T) {
	g := line(2) // links 0 and 1
	for _, id := range []LinkID{-1, 2, 99} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Link(%d) did not panic", id)
					return
				}
				if s, ok := r.(string); !ok || s == "" {
					t.Errorf("Link(%d) panic = %v, want descriptive string", id, r)
				}
			}()
			g.Link(id)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLinkUp(%d) did not panic", id)
				}
			}()
			g.SetLinkUp(id, false)
		}()
	}
}
