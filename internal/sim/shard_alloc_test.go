package sim

import (
	"testing"

	"pnet/internal/graph"
)

// bounceSink returns each delivered packet along the reverse route and
// releases it when it comes home. Round trips matter here: event and
// packet pool entries are freed on the engine that fires them, so a
// one-way stream would migrate one pool entry downstream per packet
// (transports never do that — every data packet begets an ACK, which
// carries the pool entries back).
type bounceSink struct {
	net  *Network
	rev  []graph.LinkID
	back bool
}

func (b *bounceSink) HandlePacket(p *Packet) {
	if b.back {
		b.back = false
		b.net.Release(p)
		return
	}
	b.back = true
	p.Route = b.rev
	b.net.Send(p)
}

// TestWindowPathZeroAlloc guards the sharded engine's allocation-free
// packet path: once the sub-shard pools, window logs, and merge scratch
// are warm, a packet round trip through the window protocol
// (Advance / BeginWindow / RunShard / EndWindow) must not allocate —
// with fingerprinting on, mirroring TestPacketPathZeroAllocFingerprint
// on the serial engine. The driver loop below is pdes.Runner.RunUntil
// inlined with the shards run serially, which is the same in-window
// code path the gang executes (minus the dispatch).
func TestWindowPathZeroAlloc(t *testing.T) {
	eng, net, fwd, rev := hostPair(100, Config{PropDelay: 500 * Nanosecond})
	// Attach before sharding: NewShardSet copies the fingerprinter into
	// every sub-shard and plane engine.
	eng.Fingerprint = NewFingerprinter(1 << 40)
	hostSide := func(id graph.LinkID) bool {
		src := net.G.Link(id).Src
		return src == 0 || src == 1
	}
	set := NewShardSet(eng, net, 2, 2, 0, hostSide)
	s := &bounceSink{net: net, rev: rev}
	send := func() {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		p.FlowID = 7
		net.Send(p)
		for {
			limit, parallel, done := set.Advance(1 << 60)
			if done {
				break
			}
			if !parallel {
				if !set.StepSerial() {
					break
				}
				continue
			}
			set.BeginWindow(limit)
			for i := 0; i < set.Engines(); i++ {
				set.RunShard(i, limit)
			}
			set.EndWindow()
		}
	}
	for i := 0; i < 64; i++ {
		send() // warm pools, window logs, and merge scratch
	}
	if avg := testing.AllocsPerRun(100, send); avg != 0 {
		t.Errorf("allocs per packet = %v, want 0", avg)
	}
}
