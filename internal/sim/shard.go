package sim

// Plane-sharded conservative PDES (ROADMAP item 1): a ShardSet splits one
// logical simulation across several Engines — engines[0..H-1] are *host
// sub-shards* (transport code: delivers, timers, and the host-side NIC
// queues, partitioned by host; H=1 is the classic single host shard) and
// engines[H..] are *plane shards*, each owning the switch queues of the
// dataplanes mapped to it. Planes are physically disjoint in a P-Net and
// hosts only touch each other through the fabric, so every cross-shard
// event edge — host↔ToR in either direction, between any pair of shards —
// is one full propagation delay long. That delay is the conservative
// lookahead: all shards may fire events with timestamps inside the window
// [T, T+lookahead) concurrently without ever needing an event another
// shard has not yet produced.
//
// Host sub-sharding has one extra constraint: a transport flow couples
// its two endpoints synchronously (zero-delay calls between sender and
// receiver state), so both ends of a flow must share a sub-shard. The
// binding layer in hostbind.go (Network.Colocate) maintains that by
// union-finding host components as flows are created; binding is pure
// placement and never affects event order. fn timers stay on a single
// boundary-serial heap owned by engines[0] regardless of H, preserving
// the serial semantics of transport callbacks.
//
// The determinism contract (PR 4/7) is byte-identical output at any shard
// count, including the order-sensitive global fingerprint chain. The
// mechanism is provisional sequence numbers: during a window each shard
// stamps newly scheduled events with provisional seqs (dense per-shard
// indices above provSeqBase) and logs every fired event plus every
// scheduled child. At the barrier, a k-way merge replays the window's
// fired events in exact serial order — (at, true seq) — folding the
// shared fingerprinter and renumbering children from the set-wide counter
// in the order the serial engine would have assigned them. Three
// invariants make this sound:
//
//  1. A provisional seq sorts after every true seq (provSeqBase = 2^63),
//     and within one shard provisional order equals creation order, which
//     equals the serial engine's relative order for same-shard events —
//     so each shard's in-window fire order matches the serial projection.
//  2. A fired record's provisional seq is resolvable at merge time
//     because its creating (parent) event fired earlier in the same
//     shard's log and has therefore already committed.
//  3. Renumbering preserves heap order (new true seqs are assigned in
//     provisional order and exceed all pre-window seqs), so events left
//     pending in a heap need no re-heapify.
//
// Host-side fn callbacks (RTO wakes, sampler ticks, chaos scripts) can
// touch any state — they are window *boundaries*, kept in a separate
// timer heap and fired one at a time with every shard quiesced and all
// clocks synchronized (StepSerial). Every transport timer in this
// codebase is ≥ 100 µs out, far beyond the ~1 µs lookahead, so timers
// cost serial steps only a few times per simulated RTT.

import (
	"fmt"
	"time"

	"pnet/internal/graph"
)

// provSeqBase is the first provisional sequence number. True seqs count
// up from 1; provisional seqs count up from 2^63, so any provisional seq
// sorts after any true seq at the same timestamp — exactly the serial
// order, since in-window children are scheduled after every pre-window
// event was.
const provSeqBase = uint64(1) << 63

// firedRec is one event fired inside a window: enough to replay the
// fingerprint fold and renumber the children it scheduled.
type firedRec struct {
	at      Time
	seq     uint64 // seq at fire time: true, or provisional (resolved via trueOf)
	childLo int32  // [childLo, childHi) indexes windowLog.children
	childHi int32
	info    eventInfo
}

// mergeHead is a shard's next uncommitted fired record's sort key,
// cached across merge iterations (at < 0 marks an exhausted shard).
type mergeHead struct {
	at  Time
	seq uint64
}

// windowLog is one shard's record of a window: events fired, events
// scheduled (children), and the true seqs assigned to those children at
// the barrier. Buffers are reused across windows.
type windowLog struct {
	fired    []firedRec
	children []*Event   // child i holds provisional seq provSeqBase+i until renumbered
	outbox   [][]*Event // children owned by another shard, by target engine index
	trueOf   []uint64   // trueOf[i] is child i's true seq, filled at commit
}

// engineShard is an Engine's membership in a ShardSet.
type engineShard struct {
	set *ShardSet
	idx int // 0..hostShards-1 = host sub-shards, rest = plane shards

	// timers holds fn (callback) events — engines[0] only. Keeping them
	// out of the actor heap lets the window protocol treat the next timer
	// as a boundary without scanning the heap.
	timers eventHeap

	// fnPark stages fn events scheduled by this host sub-shard inside a
	// window: the shared timer heap cannot be pushed concurrently, so the
	// events wait here (logged as children, so they get true seqs) and the
	// barrier flushes them to engines[0]'s timers once renumbered.
	fnPark []*Event

	wl windowLog
}

// ShardSet couples a host engine with its sub-shard and plane-shard
// engines. Construct with NewShardSet; drive with the window protocol in
// internal/pdes.
type ShardSet struct {
	engines    []*Engine // engines[0..hostShards-1] host sub-shards, rest plane shards
	net        *Network
	look       Time
	hostShards int
	place      *Placement // nil = round-robin hosts, plane mod shards
	seq        uint64     // shared true-seq counter, continues the host engine's

	windowOpen  bool
	windowLimit Time

	mergeIdx   []int       // k-way merge scratch
	mergeHeads []mergeHead // cached per-shard merge keys

	// Parallel, when set, fans a function out over one worker per engine
	// (worker i handles engine i) and barriers before returning — the
	// driver's gang, lent to EndWindow so child renumbering and outbox
	// flushing can run in parallel on large windows. Nil commits serially.
	Parallel func(fn func(worker int))
}

// parallelCommitMin is the window child count below which EndWindow
// commits serially even when Parallel is available: a gang dispatch
// costs more than patching a few hundred pointers.
const parallelCommitMin = 256

// NewShardSet splits eng (which becomes host sub-shard 0) and net across
// hostShards host sub-shards plus shards plane-shard engines. Plane p's
// switch queues go to engine hostShards + p mod shards; queues whose
// source node is a host (hostSide) go to their host's sub-shard, which is
// what gives every cross-shard edge a full propagation delay of
// lookahead. hostShards is the host-boundary partition width (1 = the
// classic single host shard). lookahead ≤ 0 or > net.PropDelay() selects
// net.PropDelay() — larger values would be unsound, smaller ones only
// shrink the window. Events already scheduled on eng are re-routed to
// their owning shards with their seqs intact.
func NewShardSet(eng *Engine, net *Network, shards, hostShards int, lookahead Time, hostSide func(graph.LinkID) bool) *ShardSet {
	return NewShardSetPlaced(eng, net, shards, hostShards, lookahead, hostSide, nil)
}

// NewShardSetPlaced is NewShardSet with an explicit shard placement: hosts
// and planes listed in place override the default round-robin / plane mod
// shards assignment (see Placement). Placement is pure ownership — it
// never changes committed event order — so output stays byte-identical to
// serial and to every other placement. A placement that names an
// out-of-range shard or splits a colocation group panics.
func NewShardSetPlaced(eng *Engine, net *Network, shards, hostShards int, lookahead Time, hostSide func(graph.LinkID) bool, place *Placement) *ShardSet {
	if eng.shard != nil {
		panic("sim: engine is already part of a ShardSet")
	}
	if shards < 1 {
		panic(fmt.Sprintf("sim: NewShardSet with %d shards", shards))
	}
	if hostShards < 1 {
		panic(fmt.Sprintf("sim: NewShardSet with %d host shards", hostShards))
	}
	if place != nil {
		for h, s := range place.Hosts {
			if s < 0 || s >= hostShards {
				panic(fmt.Sprintf("sim: placement puts host %d on sub-shard %d, outside [0,%d)", h, s, hostShards))
			}
		}
		for p, s := range place.Planes {
			if s < 0 || s >= shards {
				panic(fmt.Sprintf("sim: placement puts plane %d on shard %d, outside [0,%d)", p, s, shards))
			}
		}
	}
	if lookahead <= 0 || lookahead > net.PropDelay() {
		lookahead = net.PropDelay()
	}
	set := &ShardSet{net: net, look: lookahead, hostShards: hostShards, place: place, seq: eng.seq}
	set.engines = make([]*Engine, hostShards+shards)
	set.engines[0] = eng
	eng.shard = &engineShard{set: set, idx: 0}
	for i := 1; i < hostShards+shards; i++ {
		e := &Engine{now: eng.now, Fingerprint: eng.Fingerprint}
		if eng.Recorder != nil {
			e.Recorder = NewFlightRecorder()
		}
		e.shard = &engineShard{set: set, idx: i}
		set.engines[i] = e
	}
	for _, e := range set.engines {
		e.shard.wl.outbox = make([][]*Event, len(set.engines))
	}
	set.mergeIdx = make([]int, len(set.engines))
	set.mergeHeads = make([]mergeHead, len(set.engines))
	net.bindShards(set, hostSide)

	// Re-home whatever was scheduled before sharding (sampler ticks,
	// chaos scripts, early packets); seqs are already true and preserved.
	pending := eng.events
	eng.events = nil
	for len(pending) > 0 {
		ev := pending.pop()
		if ev.fn != nil {
			eng.shard.timers.push(ev)
		} else {
			set.engineFor(ev.who).events.push(ev)
		}
	}
	return set
}

// Engines returns the total engine count (host sub-shards + plane shards).
func (s *ShardSet) Engines() int { return len(s.engines) }

// HostShards returns the host sub-shard count H (1 = single host shard).
func (s *ShardSet) HostShards() int { return s.hostShards }

// Host returns host sub-shard 0 (the engine NewShardSet was given; the
// owner of the timer heap and the shared pools).
func (s *ShardSet) Host() *Engine { return s.engines[0] }

// Lookahead returns the effective conservative lookahead.
func (s *ShardSet) Lookahead() Time { return s.look }

// engineFor returns the shard that must fire an actor event: packet
// arrivals run where the *next* queue lives (the arrival enqueues there),
// final-hop arrivals run transport code on the destination host's
// sub-shard, and a queue's tx-complete runs on its owner.
func (s *ShardSet) engineFor(who actor) *Engine {
	switch a := who.(type) {
	case *Packet:
		if int(a.Hop) == len(a.Route)-1 {
			if s.hostShards > 1 {
				if b := s.net.binds[s.net.G.Link(a.Route[a.Hop]).Dst]; b != nil {
					return b.eng
				}
			}
			return s.engines[0]
		}
		return s.net.queues[a.Route[a.Hop+1]].eng
	case *queue:
		return a.eng
	}
	return s.engines[0]
}

// route places a newly scheduled actor event. Inside a window the firing
// shard logs it as a child under a provisional seq — same-shard events
// enter the local heap (they may still fire this window) and occupy their
// children slot; cross-shard events park in the outbox (their timestamps
// are ≥ the window limit by the lookahead argument, so parking them is
// invisible) and leave a nil children slot, so the commit pass touches
// each event exactly once (the outbox patch owns cross-shard seqs).
// Outside a window the shared counter assigns the true seq immediately.
func (sh *engineShard) route(e *Engine, ev *Event) {
	set := sh.set
	tgt := set.engineFor(ev.who)
	if set.windowOpen {
		wl := &sh.wl
		ev.seq = provSeqBase + uint64(len(wl.children))
		if tgt == e {
			wl.children = append(wl.children, ev)
			e.events.push(ev)
		} else {
			wl.children = append(wl.children, nil)
			ti := tgt.shard.idx
			wl.outbox[ti] = append(wl.outbox[ti], ev)
		}
		return
	}
	set.seq++
	ev.seq = set.seq
	tgt.events.push(ev)
}

// routeFn places a newly scheduled fn (timer) event on the boundary
// timer heap (owned by engines[0]). Timers are window boundaries, so one
// landing *inside* the open window would mean shards have already fired
// events the timer was entitled to reorder — impossible while every
// timer delay exceeds the lookahead, and checked here so a violation
// fails loudly instead of diverging silently. In-window, host sub-shards
// cannot push the shared heap concurrently, so the event is staged in
// the sub-shard's fnPark (logged as a child for renumbering) and flushed
// by the barrier; a parked event reads as Pending, so lazy-wakeup timers
// (RTO) behave exactly as on the serial engine.
func (sh *engineShard) routeFn(e *Engine, ev *Event) {
	set := sh.set
	host := set.engines[0]
	if set.windowOpen {
		if sh.idx >= set.hostShards {
			panic("sim: fn event scheduled from a plane shard during an open window")
		}
		if ev.at < set.windowLimit {
			panic(fmt.Sprintf("sim: timer at %v scheduled inside the open window (limit %v); lookahead exceeds the minimum timer delay", ev.at, set.windowLimit))
		}
		wl := &sh.wl
		ev.seq = provSeqBase + uint64(len(wl.children))
		wl.children = append(wl.children, ev)
		sh.fnPark = append(sh.fnPark, ev)
		return
	}
	set.seq++
	ev.seq = set.seq
	host.shard.timers.push(ev)
}

// peek returns the next live event without removing it, discarding
// cancelled entries as they surface.
func (h *eventHeap) peek() *Event {
	for len(*h) > 0 {
		top := (*h)[0]
		if top.canceled {
			h.pop()
			continue
		}
		return top
	}
	return nil
}

// NextTimer reports the timestamp of the next host fn event — the next
// mandatory serial point.
func (s *ShardSet) NextTimer() (Time, bool) {
	if ev := s.engines[0].shard.timers.peek(); ev != nil {
		return ev.at, true
	}
	return 0, false
}

// NextActor reports the earliest pending actor event across all shards.
func (s *ShardSet) NextActor() (Time, bool) {
	var best Time
	ok := false
	for _, e := range s.engines {
		if ev := e.events.peek(); ev != nil && (!ok || ev.at < best) {
			best, ok = ev.at, true
		}
	}
	return best, ok
}

// BusyShards counts shards holding an event before limit — the window's
// parallelism, used to decide whether fanning out is worth a barrier.
func (s *ShardSet) BusyShards(limit Time) int {
	n := 0
	for _, e := range s.engines {
		if ev := e.events.peek(); ev != nil && ev.at < limit {
			n++
		}
	}
	return n
}

// Advance decides the next move for a driver loop running events with
// timestamps ≤ deadline. done means nothing is left before the deadline
// (the caller should AdvanceAll(deadline) and stop). parallel means open
// a window up to limit — every shard may fire its events before limit
// concurrently; the conservative-lookahead argument is that any event one
// shard schedules onto another carries a timestamp ≥ now + propagation
// delay ≥ limit, so no shard can receive work inside the window it is
// already executing. Otherwise the single globally-next event is a timer
// (or the lone runnable event): fire it with StepSerial.
func (s *ShardSet) Advance(deadline Time) (limit Time, parallel, done bool) {
	tT, hasT := s.NextTimer()
	tA, hasA := s.NextActor()
	if (!hasT || tT > deadline) && (!hasA || tA > deadline) {
		return 0, false, true
	}
	// The window may extend past the deadline by design: RunUntil(t)
	// fires events at exactly t, hence the +1.
	limit = deadline + 1
	if hasT && tT < limit {
		limit = tT
	}
	if hasA && tA+s.look < limit {
		limit = tA + s.look
	}
	if hasA && tA < limit {
		return limit, true, false
	}
	return 0, false, false
}

// BeginWindow opens a window: until EndWindow, shards may run
// concurrently (one goroutine per shard at most) and newly scheduled
// events take provisional seqs.
func (s *ShardSet) BeginWindow(limit Time) {
	s.windowOpen = true
	s.windowLimit = limit
}

// RunShard fires shard i's actor events with timestamps before limit.
// Safe to call concurrently for distinct shards inside an open window.
func (s *ShardSet) RunShard(i int, limit Time) int {
	return s.engines[i].runWindow(limit)
}

// runWindow is the in-window event loop: Engine.fire specialized for
// actor events, with the fingerprint fold deferred to the barrier (the
// global chain is order-sensitive and only the merge knows the order)
// and the flight recorder fed locally (bins are commutative).
func (e *Engine) runWindow(limit Time) int {
	wl := &e.shard.wl
	n := 0
	for len(e.events) > 0 {
		top := e.events[0]
		if top.canceled {
			e.events.pop()
			continue
		}
		if top.at >= limit {
			break
		}
		ev := e.events.pop()
		e.now = ev.at
		e.fired++
		who := ev.who
		if who == nil {
			panic("sim: fn event on a shard's actor heap")
		}
		rec := firedRec{at: ev.at, seq: ev.seq, childLo: int32(len(wl.children))}
		ev.who = nil
		ev.next = e.free
		e.free = ev
		rec.info = classify(who)
		if e.Recorder != nil {
			start := time.Now()
			who.act()
			e.Recorder.record(rec.info.kind, rec.info.plane, time.Since(start).Nanoseconds())
		} else {
			who.act()
		}
		rec.childHi = int32(len(wl.children))
		wl.fired = append(wl.fired, rec)
		n++
	}
	return n
}

// EndWindow is the barrier: with all shards quiesced, it replays the
// window's fired events in serial order, folding the shared
// fingerprinter and assigning true seqs to every child in exactly the
// order the serial engine would have, then flushes cross-shard events to
// their heaps and returns freelisted packets to the shared pools.
// Returns the number of events committed.
//
// The protocol is split into an order-sensitive serial pass and a
// parallelizable commit pass:
//
//   - Pass 1 (serial) computes the merge order and fills trueOf — the
//     child-index → true-seq table — and folds the fingerprint chain.
//     When only one shard fired anything, the merge collapses to a
//     linear walk of that shard's log (the single-occupancy fast path:
//     no k-way scan, no head refreshes).
//   - A serial outbox sweep then renumbers cross-shard children (they
//     never fire or recycle inside their creating window, so their seqs
//     are unconditionally provisional).
//   - Pass 2 (commitShard, parallel across engines when the driver lent
//     a gang and the window is large enough) patches same-shard children,
//     routes every outbox into its target heap, and resets the logs.
//     Worker w touches only engines[w]'s heap, children, and trueOf plus
//     each source's outbox[w] — all disjoint, so no synchronization.
func (s *ShardSet) EndWindow() int {
	s.windowOpen = false
	fp := s.engines[0].Fingerprint
	busy, nBusy := -1, 0
	children := 0
	for i, e := range s.engines {
		if len(e.shard.wl.fired) > 0 {
			busy, nBusy = i, nBusy+1
		}
		children += len(e.shard.wl.children)
	}
	total := 0
	if nBusy == 1 {
		// Single-occupancy fast path: this shard's log order IS the
		// serial order (invariant 1), so commit it front to back.
		wl := &s.engines[busy].shard.wl
		for j := range wl.fired {
			fr := &wl.fired[j]
			if len(wl.trueOf) != int(fr.childLo) {
				panic("sim: shard window child ranges out of order")
			}
			for c := fr.childLo; c < fr.childHi; c++ {
				s.seq++
				wl.trueOf = append(wl.trueOf, s.seq)
			}
			if fp != nil {
				fp.fold(fr.at, fr.info)
			}
			total++
		}
	} else if nBusy > 1 {
		// Merge state: one cached (at, true-seq) key per shard with
		// pending records, refreshed only when that shard's head advances.
		// A key resolved through trueOf stays valid across other shards'
		// commits — committed true seqs never change — so each iteration
		// costs a scan of at most K scalar pairs plus one head refresh for
		// the winner.
		idx := s.mergeIdx
		heads := s.mergeHeads
		refresh := func(i int) {
			wl := &s.engines[i].shard.wl
			j := idx[i]
			if j >= len(wl.fired) {
				heads[i].at = -1 // exhausted
				return
			}
			fr := &wl.fired[j]
			ts := fr.seq
			if ts >= provSeqBase {
				// Resolvable: the child's parent fired earlier in this
				// shard's log and has already committed (invariant 2).
				ts = wl.trueOf[ts-provSeqBase]
			}
			heads[i] = mergeHead{at: fr.at, seq: ts}
		}
		for i := range idx {
			idx[i] = 0
			refresh(i)
		}
		for {
			best := -1
			var bestAt Time
			var bestSeq uint64
			for i := range heads {
				h := heads[i]
				if h.at < 0 {
					continue
				}
				if best < 0 || h.at < bestAt || (h.at == bestAt && h.seq < bestSeq) {
					best, bestAt, bestSeq = i, h.at, h.seq
				}
			}
			if best < 0 {
				break
			}
			wl := &s.engines[best].shard.wl
			fr := &wl.fired[idx[best]]
			idx[best]++
			if len(wl.trueOf) != int(fr.childLo) {
				panic("sim: shard window child ranges out of order")
			}
			for c := fr.childLo; c < fr.childHi; c++ {
				s.seq++
				wl.trueOf = append(wl.trueOf, s.seq)
			}
			if fp != nil {
				fp.fold(fr.at, fr.info)
			}
			refresh(best)
			total++
		}
	}
	// Cross-shard children renumber serially before the commit fans out:
	// the commit worker that pushes an outbox event reads its seq, and
	// racing that read against the creating shard's patch would need a
	// guard the serial sweep makes unnecessary.
	for _, e := range s.engines {
		wl := &e.shard.wl
		for _, box := range wl.outbox {
			for _, ev := range box {
				ev.seq = wl.trueOf[ev.seq-provSeqBase]
			}
		}
	}
	if s.Parallel != nil && children >= parallelCommitMin {
		s.Parallel(s.commitShard)
	} else {
		for w := range s.engines {
			s.commitShard(w)
		}
	}
	// Flush fn events the host sub-shards parked during the window; their
	// seqs are true now, so heap order is the serial order (invariant 3).
	host := s.engines[0]
	for i := 0; i < s.hostShards; i++ {
		sh := s.engines[i].shard
		for k, ev := range sh.fnPark {
			host.shard.timers.push(ev)
			sh.fnPark[k] = nil
		}
		sh.fnPark = sh.fnPark[:0]
	}
	s.net.spliceShardPools()
	return total
}

// commitShard is one worker's slice of EndWindow's commit pass: patch
// engine w's same-shard children to their true seqs, drain every
// engine's outbox bound for w into w's heap, and reset w's window log.
// Safe to run concurrently for distinct w — all touched state is either
// owned by engine w or a distinct outbox slot.
func (s *ShardSet) commitShard(w int) {
	wl := &s.engines[w].shard.wl
	for i, ev := range wl.children {
		// A pooled child that already fired this window may have been
		// recycled and reused; only rewrite the Event if it still carries
		// this child's provisional seq (the fired record keeps its own
		// copy either way). Nil slots are cross-shard children, renumbered
		// by the serial outbox sweep.
		if ev != nil && ev.seq == provSeqBase+uint64(i) {
			ev.seq = wl.trueOf[i]
		}
	}
	tgt := s.engines[w]
	for _, e := range s.engines {
		box := e.shard.wl.outbox[w]
		for k, ev := range box {
			tgt.events.push(ev)
			box[k] = nil
		}
		e.shard.wl.outbox[w] = box[:0]
	}
	wl.fired = wl.fired[:0]
	wl.children = wl.children[:0]
	wl.trueOf = wl.trueOf[:0]
}

// StepSerial fires the single globally-next event — timer or actor —
// with every shard's clock advanced to its timestamp first, so host code
// reading any engine's Now() sees the serial engine's value. Returns
// false when no events remain.
func (s *ShardSet) StepSerial() bool {
	var bestE *Engine
	var bestH *eventHeap
	var bestEv *Event
	consider := func(e *Engine, h *eventHeap) {
		ev := h.peek()
		if ev == nil {
			return
		}
		if bestEv == nil || ev.at < bestEv.at || (ev.at == bestEv.at && ev.seq < bestEv.seq) {
			bestE, bestH, bestEv = e, h, ev
		}
	}
	host := s.engines[0]
	consider(host, &host.shard.timers)
	for _, e := range s.engines {
		consider(e, &e.events)
	}
	if bestEv == nil {
		return false
	}
	ev := bestH.pop()
	s.AdvanceAll(ev.at)
	bestE.fire(ev)
	return true
}

// AdvanceAll moves every shard's clock forward to t (never backward).
func (s *ShardSet) AdvanceAll(t Time) {
	for _, e := range s.engines {
		if e.now < t {
			e.now = t
		}
	}
}

// Quiesce reconciles cross-shard state at a known-quiet point (end of a
// RunUntil segment): shard freelist pools splice back into the shared
// ones (a serial-phase blackhole can park carcasses with no window
// barrier following) and plane flight recorders drain into the host's.
func (s *ShardSet) Quiesce() {
	s.net.spliceShardPools()
	s.DrainRecorders()
}

// DrainRecorders folds the plane shards' flight-recorder bins into the
// host engine's recorder (the one telemetry snapshots), leaving the
// plane recorders empty. Call after a run segment, with shards quiesced.
func (s *ShardSet) DrainRecorders() {
	host := s.engines[0]
	if host.Recorder == nil {
		return
	}
	for _, e := range s.engines[1:] {
		if e.Recorder != nil {
			host.Recorder.MergeFrom(e.Recorder)
		}
	}
}
