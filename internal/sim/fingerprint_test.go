package sim

import "testing"

// fpRun sends n packets end to end on a warm hostPair network with the
// given fingerprinter attached and returns its final chains.
func fpRun(n int, f *Fingerprinter) *Fingerprinter {
	eng, net, fwd, _ := hostPair(100, Config{})
	eng.Fingerprint = f
	s := &releaseSink{net: net}
	for i := 0; i < n; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		p.FlowID = int64(i%4 + 1)
		p.Seq = int64(i)
		net.Send(p)
		eng.Run()
	}
	return f
}

// TestFingerprintDeterministic: identical runs produce identical chains;
// a run with different content diverges in every chain it touches.
func TestFingerprintDeterministic(t *testing.T) {
	a := fpRun(50, NewFingerprinter(16))
	b := fpRun(50, NewFingerprinter(16))
	ag, ah, ap := a.Chains()
	bg, bh, bp := b.Chains()
	if ag != bg || ah != bh {
		t.Fatalf("identical runs diverged: global %016x vs %016x, host %016x vs %016x", ag, bg, ah, bh)
	}
	if len(ap) != len(bp) {
		t.Fatalf("plane chain counts differ: %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Errorf("plane %d chains diverged: %016x vs %016x", i, ap[i], bp[i])
		}
	}
	if a.Events() != b.Events() || a.Events() == 0 {
		t.Fatalf("event counts %d vs %d — comparison proved nothing", a.Events(), b.Events())
	}
	c := fpRun(51, NewFingerprinter(16))
	if cg, _, _ := c.Chains(); cg == ag {
		t.Errorf("runs with different event content share global chain %016x", cg)
	}
}

// TestFingerprintCheckpoints pins the cadence math: one checkpoint per
// full epoch, cumulative event counts, a trailing Partial checkpoint for
// the in-progress epoch, and idempotent snapshots.
func TestFingerprintCheckpoints(t *testing.T) {
	f := fpRun(50, NewFingerprinter(16))
	cps := f.Checkpoints()
	if len(cps) == 0 {
		t.Fatal("no checkpoints recorded")
	}
	total := f.Events()
	wantFull := total / 16
	wantPartial := total%16 != 0
	n := int(wantFull)
	if wantPartial {
		n++
	}
	if len(cps) != n {
		t.Fatalf("got %d checkpoints, want %d (events=%d, epoch=16)", len(cps), n, total)
	}
	for i, cp := range cps {
		last := i == len(cps)-1
		if cp.Partial != (wantPartial && last) {
			t.Errorf("checkpoint %d: Partial=%v unexpectedly", i, cp.Partial)
		}
		if !cp.Partial {
			if cp.Events != int64(i+1)*16 {
				t.Errorf("checkpoint %d: Events=%d, want %d", i, cp.Events, (i+1)*16)
			}
			if cp.Epoch != int64(i) {
				t.Errorf("checkpoint %d: Epoch=%d, want %d", i, cp.Epoch, i)
			}
		}
	}
	final := cps[len(cps)-1]
	g, h, _ := f.Chains()
	if final.Events != total || final.Global != g || final.Host != h {
		t.Errorf("final checkpoint %+v does not match live chains (events=%d global=%016x host=%016x)", final, total, g, h)
	}
	again := f.Checkpoints()
	if len(again) != len(cps) {
		t.Errorf("Checkpoints not idempotent: %d then %d", len(cps), len(again))
	}
}

// TestFingerprintJournal: the journal sees every folded event in order,
// with epoch/index bookkeeping matching the checkpoint cadence and the
// running hash equal to the global chain.
func TestFingerprintJournal(t *testing.T) {
	f := NewFingerprinter(8)
	var entries []FingerprintJournalEntry
	f.Journal = func(e FingerprintJournalEntry) { entries = append(entries, e) }
	fpRun(20, f)
	if int64(len(entries)) != f.Events() {
		t.Fatalf("journal has %d entries, engine fired %d", len(entries), f.Events())
	}
	for i, e := range entries {
		if e.Epoch != int64(i)/8 || e.Index != int64(i)%8 {
			t.Errorf("entry %d: epoch/index = %d/%d, want %d/%d", i, e.Epoch, e.Index, i/8, i%8)
		}
	}
	g, _, _ := f.Chains()
	if last := entries[len(entries)-1]; last.Hash != g {
		t.Errorf("last journal hash %016x != global chain %016x", last.Hash, g)
	}
}

// TestFingerprintOrderSensitive: folding the same two events in swapped
// order must change the chain — the property divergence bisection needs.
func TestFingerprintOrderSensitive(t *testing.T) {
	a := NewFingerprinter(0)
	b := NewFingerprinter(0)
	e1 := eventInfo{kind: EvHop, plane: 0, link: 3, flow: 1, seq: 10, size: 1500}
	e2 := eventInfo{kind: EvHop, plane: 0, link: 3, flow: 2, seq: 10, size: 1500}
	a.fold(100, e1)
	a.fold(100, e2)
	b.fold(100, e2)
	b.fold(100, e1)
	ag, _, _ := a.Chains()
	bg, _, _ := b.Chains()
	if ag == bg {
		t.Fatalf("swapping two events left global chain unchanged: %016x", ag)
	}
}

// TestPacketPathZeroAllocFingerprint extends the zero-alloc guard to the
// fingerprint-enabled path: once the plane slice is warm and no epoch
// boundary lands inside the measured window, folding costs nothing. The
// epoch is set high enough that no checkpoint append happens mid-run.
func TestPacketPathZeroAllocFingerprint(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	eng.Fingerprint = NewFingerprinter(1 << 40)
	s := &releaseSink{net: net}
	send := func() {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		p.FlowID = 7
		net.Send(p)
		eng.Run()
	}
	for i := 0; i < 64; i++ {
		send() // warm pools and the per-plane chain slice
	}
	if avg := testing.AllocsPerRun(100, send); avg != 0 {
		t.Errorf("allocs per packet with fingerprinting = %v, want 0", avg)
	}
}
