package sim

import "time"

// The event-loop flight recorder answers the PDES sizing question of
// ROADMAP item 1 with measurements instead of guesses: per-plane event
// rates bound how much work parallel per-plane event queues would get,
// and the host-boundary event fraction bounds the serial residue under
// conservative synchronization with lookahead = the host–ToR link
// latency. Attach one per engine (Engine.Recorder); a nil recorder
// costs one branch per event.

// EventKind classifies a dispatched event by where a per-plane PDES
// partition would have to run it.
type EventKind uint8

// Event kinds.
const (
	// EvHop is a packet arriving at an intermediate node — work that
	// stays inside the link's plane.
	EvHop EventKind = iota
	// EvDeliver is a packet arriving at its final node: the event crosses
	// the host boundary (transport code runs), so a per-plane partition
	// must synchronize here.
	EvDeliver
	// EvTx is a queue finishing a transmission — in-plane work.
	EvTx
	// EvTimer is a callback event (RTO wake, sampler tick, chaos script):
	// host-domain work with no plane.
	EvTimer

	numEventKinds
)

var eventKindNames = [numEventKinds]string{"hop", "deliver", "tx", "timer"}

// String names the kind as it appears in profile records.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// ParseEventKind resolves a kind name from a profile record.
func ParseEventKind(s string) (EventKind, bool) {
	for i, n := range eventKindNames {
		if n == s {
			return EventKind(i), true
		}
	}
	return 0, false
}

// HostBoundary reports whether events of this kind execute host-side
// code — the work a per-plane PDES partition cannot parallelize.
func (k EventKind) HostBoundary() bool { return k == EvDeliver || k == EvTimer }

// ProfileBin is one (kind, plane) cell of a recorder snapshot. Plane is
// -1 for timer events (no plane) and the link's plane otherwise; event
// counts are deterministic for a fixed seed, wall time is not.
type ProfileBin struct {
	Kind   EventKind
	Plane  int32
	Events int64
	WallNs int64
}

type planeBin struct {
	events int64
	wallNs int64
}

// FlightRecorder bins every dispatched event's count and wall time by
// (kind, plane). It belongs to exactly one engine (single-threaded, no
// atomics); snapshots merge across engines in internal/report.
type FlightRecorder struct {
	bins [numEventKinds]struct {
		none     planeBin // plane -1
		perPlane []planeBin
	}
}

// NewFlightRecorder returns an empty recorder.
func NewFlightRecorder() *FlightRecorder { return &FlightRecorder{} }

func (r *FlightRecorder) record(kind EventKind, plane int32, wallNs int64) {
	b := &r.bins[kind]
	if plane < 0 {
		b.none.events++
		b.none.wallNs += wallNs
		return
	}
	for int(plane) >= len(b.perPlane) {
		b.perPlane = append(b.perPlane, planeBin{})
	}
	b.perPlane[plane].events++
	b.perPlane[plane].wallNs += wallNs
}

// Events returns the total number of recorded events.
func (r *FlightRecorder) Events() int64 {
	var n int64
	for k := range r.bins {
		n += r.bins[k].none.events
		for _, p := range r.bins[k].perPlane {
			n += p.events
		}
	}
	return n
}

// MergeFrom adds src's bins into r and resets src. The sharded engine
// gives each plane shard its own recorder (record stays single-threaded)
// and drains them into the host recorder at quiescent points.
func (r *FlightRecorder) MergeFrom(src *FlightRecorder) {
	for k := range src.bins {
		sb := &src.bins[k]
		rb := &r.bins[k]
		rb.none.events += sb.none.events
		rb.none.wallNs += sb.none.wallNs
		sb.none = planeBin{}
		for pl := range sb.perPlane {
			for pl >= len(rb.perPlane) {
				rb.perPlane = append(rb.perPlane, planeBin{})
			}
			rb.perPlane[pl].events += sb.perPlane[pl].events
			rb.perPlane[pl].wallNs += sb.perPlane[pl].wallNs
			sb.perPlane[pl] = planeBin{}
		}
	}
}

// Snapshot returns the non-empty bins sorted by (kind, plane).
func (r *FlightRecorder) Snapshot() []ProfileBin {
	var out []ProfileBin
	for k := range r.bins {
		if b := r.bins[k].none; b.events > 0 {
			out = append(out, ProfileBin{EventKind(k), -1, b.events, b.wallNs})
		}
		for pl, b := range r.bins[k].perPlane {
			if b.events > 0 {
				out = append(out, ProfileBin{EventKind(k), int32(pl), b.events, b.wallNs})
			}
		}
	}
	return out
}

// fireInstrumented is Engine.fire with classification around the
// dispatch, feeding the flight recorder (with wall timing) and/or the
// fingerprinter (simulated quantities only — no clock reads, so a
// fingerprint-only run stays cheap). It must mirror fire exactly; the
// classification reads the actor before dispatch because pooled events
// are recycled on firing.
func (e *Engine) fireInstrumented(ev *Event) {
	e.now = ev.at
	e.fired++
	var who actor
	fn := ev.fn
	if ev.who != nil {
		who = ev.who
		ev.who = nil
		ev.next = e.free
		e.free = ev
	}
	info := classify(who)
	if e.Fingerprint != nil {
		e.Fingerprint.fold(ev.at, info)
	}
	if e.Recorder == nil {
		if who != nil {
			who.act()
		} else {
			fn()
		}
		return
	}
	start := time.Now()
	if who != nil {
		who.act()
	} else {
		fn()
	}
	e.Recorder.record(info.kind, info.plane, time.Since(start).Nanoseconds())
}
