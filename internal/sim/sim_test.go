package sim

import (
	"testing"

	"pnet/internal/graph"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("now = %v", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 2) })
	e.Run()
	if order[0] != 1 || order[1] != 2 {
		t.Errorf("same-instant order = %v", order)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	if !ev.Pending() {
		t.Error("event not pending after scheduling")
	}
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEngineScheduleFromEvent(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Errorf("nested event at %v, want 15", at)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i*10), func() { count++ })
	}
	if fired := e.RunUntil(30); fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
	if count != 3 || e.Now() != 30 {
		t.Errorf("count = %d now = %v", count, e.Now())
	}
	e.Run()
	if count != 5 {
		t.Errorf("final count = %d", count)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{120 * Nanosecond, "120ns"},
		{3 * Microsecond, "3.000us"},
		{10 * Millisecond, "10.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d -> %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// sink records delivered packets.
type sink struct {
	times []Time
	pkts  []*Packet
	eng   *Engine
}

func (s *sink) HandlePacket(p *Packet) {
	s.times = append(s.times, s.eng.Now())
	s.pkts = append(s.pkts, p)
}

// hostPair is a two-host, one-switch network: 0 -sw(2)- 1.
func hostPair(speed float64, cfg Config) (*Engine, *Network, []graph.LinkID, []graph.LinkID) {
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	up0, _ := g.AddDuplex(0, 2, speed, 0)
	up1, down1 := g.AddDuplex(1, 2, speed, 0)
	_ = up1
	eng := NewEngine()
	net := NewNetwork(eng, g, cfg)
	fwd := []graph.LinkID{up0, down1}
	p2, _ := graph.ShortestPath(g, 1, 0)
	return eng, net, fwd, p2.Links
}

func TestSerializationAndPropagation(t *testing.T) {
	// 1500 B at 100 Gb/s = 120 ns per hop serialization; 500 ns prop.
	// Two hops: depart host at 120, arrive switch 620, depart 740,
	// arrive host 1240 ns.
	eng, net, fwd, _ := hostPair(100, Config{PropDelay: 500 * Nanosecond})
	s := &sink{eng: eng}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = fwd
	p.Deliver = s
	net.Send(p)
	eng.Run()
	if len(s.times) != 1 {
		t.Fatalf("delivered %d packets", len(s.times))
	}
	want := 2 * (120 + 500) * Nanosecond
	if s.times[0] != want {
		t.Errorf("delivery at %v, want %v", s.times[0], want)
	}
}

func TestSerializationAt400G(t *testing.T) {
	eng, net, fwd, _ := hostPair(400, Config{PropDelay: Nanosecond})
	s := &sink{eng: eng}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = fwd
	p.Deliver = s
	net.Send(p)
	eng.Run()
	want := 2 * (30*Nanosecond + Nanosecond) // 30 ns serialization per hop
	if s.times[0] != want {
		t.Errorf("delivery at %v, want %v", s.times[0], want)
	}
}

func TestBackToBackQueueing(t *testing.T) {
	// Second packet waits for the first's serialization at each hop but
	// pipelines across hops: deliveries 120 ns apart.
	eng, net, fwd, _ := hostPair(100, Config{})
	s := &sink{eng: eng}
	for i := 0; i < 2; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()
	if len(s.times) != 2 {
		t.Fatalf("delivered %d", len(s.times))
	}
	if gap := s.times[1] - s.times[0]; gap != 120*Nanosecond {
		t.Errorf("inter-delivery gap = %v, want 120ns", gap)
	}
}

func TestDropTail(t *testing.T) {
	// Queue capacity of 2 packets: sending 5 at once drops 3 at the
	// first hop (two buffered, three dropped — the first is buffered and
	// in transmission).
	eng, net, fwd, _ := hostPair(100, Config{QueueBytes: 3000})
	s := &sink{eng: eng}
	for i := 0; i < 5; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()
	if len(s.times) != 2 {
		t.Errorf("delivered %d, want 2", len(s.times))
	}
	if net.TotalDrops() != 3 {
		t.Errorf("drops = %d, want 3", net.TotalDrops())
	}
	if net.Drops[fwd[0]] != 3 {
		t.Errorf("drops on first link = %d", net.Drops[fwd[0]])
	}
}

func TestQueueDrainsAndReuses(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{PropDelay: 500 * Nanosecond})
	s := &sink{eng: eng}
	send := func() {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	send()
	eng.Run()
	if net.QueueDepth(fwd[0]) != 0 {
		t.Errorf("queue not drained: %d bytes", net.QueueDepth(fwd[0]))
	}
	// Send again after idle: link restarts cleanly.
	first := s.times[0]
	send()
	eng.Run()
	if len(s.times) != 2 {
		t.Fatalf("second packet not delivered")
	}
	if s.times[1]-first != 620*2*Nanosecond {
		t.Errorf("second delivery delta = %v", s.times[1]-first)
	}
}

func TestPacketFreelist(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	_ = eng
	a := net.NewPacket()
	a.Seq = 42
	net.Release(a)
	b := net.NewPacket()
	if b.Seq != 0 {
		t.Error("recycled packet not zeroed")
	}
	if b != a {
		t.Error("freelist did not reuse the released packet")
	}
	_ = fwd
}

func TestBidirectionalIndependence(t *testing.T) {
	// Opposite directions must not share a queue.
	eng, net, fwd, rev := hostPair(100, Config{PropDelay: 500 * Nanosecond})
	s1 := &sink{eng: eng}
	s2 := &sink{eng: eng}
	p1 := net.NewPacket()
	p1.Size = 1500
	p1.Route = fwd
	p1.Deliver = s1
	p2 := net.NewPacket()
	p2.Size = 1500
	p2.Route = rev
	p2.Deliver = s2
	net.Send(p1)
	net.Send(p2)
	eng.Run()
	want := 1240 * Nanosecond
	if s1.times[0] != want || s2.times[0] != want {
		t.Errorf("deliveries %v %v, want both %v", s1.times[0], s2.times[0], want)
	}
}
