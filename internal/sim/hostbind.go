package sim

// Host sub-sharding (ROADMAP item 1, continued): under a ShardSet the
// host boundary — transport callbacks, final-hop delivers, and the NIC
// uplink queues — can itself be partitioned across H sub-shard engines,
// keyed by host. Every cross-sub-shard event edge is still a host↔ToR
// link one full propagation delay long, so the conservative-lookahead
// argument of shard.go carries over unchanged.
//
// The one structural constraint is that a TCP flow's two endpoints share
// state synchronously (the receiver's ACK is sent from inside the
// sender's packet delivery, and sender-side SACK repair reads receiver
// maps), so both endpoints of every flow must live on one sub-shard.
// Transports declare that with Network.Colocate, which union-finds host
// components and migrates the smaller component onto the larger one's
// engine. Binding is pure placement: it decides which engine fires a
// host's events, never their order, so output stays byte-identical to
// serial at every (shards, host-shards) combination.

import (
	"sort"

	"pnet/internal/graph"
)

// HostBind is a host's placement cell: the sub-shard engine that fires
// its delivers, timers, and NIC uplinks. Cells are per-host and updated
// in place by Colocate, so holders (flows, monitors) may cache them.
type HostBind struct {
	eng   *Engine
	shard int
}

// Eng returns the engine that fires the bound host's events — the
// correct clock to read from transport code running on that host.
func (b *HostBind) Eng() *Engine { return b.eng }

// Shard returns the engine's index in the ShardSet (0 when serial or
// when host sub-sharding is off) — the pool index for NewPacketOn.
func (b *HostBind) Shard() int { return b.shard }

// BindOf returns node's placement cell. Hosts under an H>1 ShardSet get
// their per-host cell; everything else (serial runs, H=1, non-host
// nodes) shares one cell naming the primary engine, so callers can hold
// a bind unconditionally.
func (n *Network) BindOf(node graph.NodeID) *HostBind {
	if n.binds != nil {
		if b := n.binds[node]; b != nil {
			return b
		}
	}
	if n.serialBind == nil {
		n.serialBind = &HostBind{eng: n.Eng, shard: 0}
	}
	return n.serialBind
}

// ufFind resolves a node's colocation-component root, with path halving.
func (n *Network) ufFind(x graph.NodeID) graph.NodeID {
	for n.ufParent[x] != x {
		n.ufParent[x] = n.ufParent[n.ufParent[x]]
		x = n.ufParent[x]
	}
	return x
}

// Colocate merges the colocation components of hosts a and b so both
// fire on one sub-shard engine — required before coupling their state
// synchronously (a transport flow between them). The smaller component
// moves: its hosts' cells and uplink queues are rebound in place and any
// pending events on the vacated engine are re-routed with their seqs
// intact, which preserves pop order. Before the ShardSet materializes
// (PrepareHostBinds ran, NewShardSet has not) every cell still names the
// serial engine, so the merge only updates the union-find and the
// round-robin plannedShard — which is exactly what makes the lazy
// default binding identical to the eager one. No-op when host
// sub-sharding is off or the hosts already share a component. Must be
// called at a serial point; calls during an open window panic (shards
// are running).
func (n *Network) Colocate(a, b graph.NodeID) {
	if n.binds == nil || a == b {
		return
	}
	ra, rb := n.ufFind(a), n.ufFind(b)
	if ra == rb || n.binds[ra] == nil || n.binds[rb] == nil {
		return
	}
	set := n.shardSet
	if set != nil && set.windowOpen {
		panic("sim: Colocate during an open window")
	}
	// The larger component wins (fewer rebinds); ties go to the lower
	// root so the merge order NewFlow produces is deterministic.
	win, lose := ra, rb
	if len(n.ufMembers[lose]) > len(n.ufMembers[win]) ||
		(len(n.ufMembers[lose]) == len(n.ufMembers[win]) && lose < win) {
		win, lose = lose, win
	}
	target := n.binds[win]
	old := n.binds[lose].eng
	for _, h := range n.ufMembers[lose] {
		hb := n.binds[h]
		hb.eng, hb.shard = target.eng, target.shard
		n.plannedShard[h] = n.plannedShard[win]
		for _, l := range n.hostUplinks[h] {
			q := &n.queues[l]
			q.eng, q.shard = target.eng, target.shard
		}
	}
	n.ufMembers[win] = append(n.ufMembers[win], n.ufMembers[lose]...)
	n.ufMembers[lose] = nil
	n.ufParent[lose] = win
	if old == target.eng {
		return
	}
	// Re-home the vacated engine's pending events (in-flight packets,
	// queue tx-completes) through the updated bindings. Seqs are true and
	// preserved, so re-pushing reproduces the exact pop order; events for
	// components still bound here simply land back on the same heap.
	pending := old.events
	old.events = nil
	for len(pending) > 0 {
		ev := pending.pop()
		set.engineFor(ev.who).events.push(ev)
	}
}

// ColocationGroups returns the current colocation components over bound
// hosts — each group's members sorted by node ID, groups sorted by their
// smallest member — the deterministic input a placement planner packs.
// Nil when host binds are absent.
func (n *Network) ColocationGroups() [][]graph.NodeID {
	if n.binds == nil {
		return nil
	}
	var out [][]graph.NodeID
	for _, h := range n.hostList {
		if n.ufMembers[h] == nil {
			continue // not a component root
		}
		g := append([]graph.NodeID(nil), n.ufMembers[h]...)
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
