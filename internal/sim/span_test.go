package sim

import (
	"testing"

	"pnet/internal/graph"
)

func TestSpanComponentNames(t *testing.T) {
	for i := SpanComponent(0); i < numSpanComponents; i++ {
		name := i.String()
		if name == "unknown" {
			t.Fatalf("component %d has no name", i)
		}
		got, ok := ParseSpanComponent(name)
		if !ok || got != i {
			t.Errorf("ParseSpanComponent(%q) = %v, %v; want %v, true", name, got, ok, i)
		}
	}
	if _, ok := ParseSpanComponent("bogus"); ok {
		t.Error("ParseSpanComponent accepted a bogus name")
	}
}

func TestEventKindNames(t *testing.T) {
	for i := EventKind(0); i < numEventKinds; i++ {
		got, ok := ParseEventKind(i.String())
		if !ok || got != i {
			t.Errorf("ParseEventKind(%q) = %v, %v; want %v, true", i.String(), got, ok, i)
		}
	}
	if !EvDeliver.HostBoundary() || !EvTimer.HostBoundary() {
		t.Error("deliver/timer must be host-boundary kinds")
	}
	if EvHop.HostBoundary() || EvTx.HostBoundary() {
		t.Error("hop/tx must be in-plane kinds")
	}
}

// TestSpanJourneyContiguous sends one packet over a warm two-hop path
// and checks the span's segments sum exactly to delivery − send: the
// queue records wait + serialization + propagation with no gaps.
func TestSpanJourneyContiguous(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{PropDelay: 500 * Nanosecond})
	net.EnableSpans()
	var got *SpanLog
	s := &sinkFn{fn: func(p *Packet) {
		got = p.TakeSpan()
		net.Release(p)
	}}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = fwd
	p.Deliver = s
	sent := eng.Now()
	p.AttachSpan(net.NewSpan(CauseFresh, sent))
	net.Send(p)
	eng.Run()
	if got == nil {
		t.Fatal("no span delivered")
	}
	if got.SentAt != sent {
		t.Errorf("SentAt = %v, want %v", got.SentAt, sent)
	}
	if total, fct := got.Total(), eng.Now()-sent; total != fct {
		t.Errorf("journey total %v != delivery time %v", total, fct)
	}
	// Two hops, each serialize (120ns) + propagate (500ns), no queueing.
	wantSer, wantProp := 2*120*Nanosecond, 2*500*Nanosecond
	var ser, prop, queue Time
	for _, sg := range got.Segments() {
		switch sg.Comp {
		case SpanSerialize:
			ser += sg.Dur
		case SpanPropagate:
			prop += sg.Dur
		case SpanQueue:
			queue += sg.Dur
		}
	}
	if ser != wantSer || prop != wantProp || queue != 0 {
		t.Errorf("ser=%v prop=%v queue=%v, want %v/%v/0", ser, prop, queue, wantSer, wantProp)
	}
	net.FreeSpan(got)
}

type sinkFn struct{ fn func(*Packet) }

func (s *sinkFn) HandlePacket(p *Packet) { s.fn(p) }

// TestSpanPoolReuse checks NewSpan/FreeSpan recycle logs and reset state.
func TestSpanPoolReuse(t *testing.T) {
	_, net, _, _ := hostPair(100, Config{})
	s := net.NewSpan(CauseRTO, 7)
	s.hop(3, 1, 2, 3)
	net.FreeSpan(s)
	s2 := net.NewSpan(CauseFresh, 9)
	if s2 != s {
		t.Error("span not recycled from pool")
	}
	if s2.Cause != CauseFresh || s2.SentAt != 9 || len(s2.Segments()) != 0 || s2.wait != 0 {
		t.Errorf("recycled span not reset: %+v", s2)
	}
	net.FreeSpan(nil) // must not panic
}

// TestSpanReleaseFreesUnclaimed checks Release returns an attached span
// to the pool (the drop/blackhole path cannot leak logs).
func TestSpanReleaseFreesUnclaimed(t *testing.T) {
	_, net, _, _ := hostPair(100, Config{})
	s := net.NewSpan(CauseFresh, 0)
	p := net.NewPacket()
	p.AttachSpan(s)
	net.Release(p)
	if got := net.NewSpan(CauseFresh, 1); got != s {
		t.Error("Release did not return the span to the pool")
	}
}

func TestAttributeExactPartition(t *testing.T) {
	var a SpanAttribution

	// Journey sent before the interval start: only the suffix counts,
	// the boundary segment split exactly.
	s := &SpanLog{SentAt: 0, Cause: CauseFresh}
	s.hop(0, 10, 20, 30) // queue 10, ser 20, prop 30 → delivery at 60
	a.Attribute(s, 35, 60)
	if got := a.Total(); got != 25 {
		t.Fatalf("suffix attribution total %d, want 25", got)
	}
	// Backward walk: prop 30 then 0 left? 25 < 30 → prop truncated to 25.
	cells := a.Totals()
	if len(cells) != 1 || cells[0].Comp != SpanPropagate || cells[0].Dur != 25 {
		t.Fatalf("suffix cells = %+v, want one propagate/25", cells)
	}

	// Journey sent inside the interval: the gap charges the cause stall.
	var b SpanAttribution
	r := &SpanLog{SentAt: 40, Cause: CauseRTO}
	r.hop(1, 0, 5, 15) // delivery at 60
	b.Attribute(r, 0, 60)
	if got := b.Total(); got != 60 {
		t.Fatalf("gap attribution total %d, want 60", got)
	}
	var stall Time
	for _, c := range b.Totals() {
		if c.Comp == SpanRTOStall {
			stall = c.Dur
		}
	}
	if stall != 40 {
		t.Errorf("rto_stall = %d, want 40", stall)
	}

	// Nil span (no causing packet known): everything is host wait.
	var c SpanAttribution
	c.Attribute(nil, 10, 30)
	cells = c.Totals()
	if len(cells) != 1 || cells[0].Comp != SpanHostWait || cells[0].Dur != 20 {
		t.Errorf("nil-span cells = %+v, want host_wait/20", cells)
	}

	// Empty interval: no-op.
	c.Attribute(nil, 30, 30)
	if c.Total() != 20 {
		t.Error("empty interval changed the attribution")
	}
}

func TestAttributionTotalsSorted(t *testing.T) {
	var a SpanAttribution
	a.add(SpanPropagate, 2, 5)
	a.add(SpanQueue, 1, 5)
	a.add(SpanQueue, 0, 5)
	a.add(SpanPropagate, 2, 7) // merges
	cells := a.Totals()
	want := []SpanTotal{{SpanQueue, 0, 5}, {SpanQueue, 1, 5}, {SpanPropagate, 2, 12}}
	if len(cells) != len(want) {
		t.Fatalf("cells = %+v", cells)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cell %d = %+v, want %+v", i, cells[i], want[i])
		}
	}
}

// TestSpansDisabledZeroAlloc proves the tentpole's hot-path contract:
// with spans off and no flight recorder, the per-packet span hooks are
// nil checks and the packet path still allocates nothing.
func TestSpansDisabledZeroAlloc(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	if net.SpansOn() {
		t.Fatal("spans must be off by default")
	}
	s := &releaseSink{net: net}
	send := func() {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
		eng.Run()
	}
	for i := 0; i < 64; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(100, send); avg != 0 {
		t.Errorf("allocs per packet with spans disabled = %v, want 0", avg)
	}
}

// TestFlightRecorderCounts drives packets with the recorder attached and
// checks the (kind, plane) event counts against the known path shape.
func TestFlightRecorderCounts(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	rec := NewFlightRecorder()
	eng.Recorder = rec
	s := &releaseSink{net: net}
	const n = 5
	for i := 0; i < n; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.After(Microsecond, func() {}) // one timer event
	eng.Run()

	byKind := map[EventKind]int64{}
	for _, b := range rec.Snapshot() {
		byKind[b.Kind] += b.Events
		if b.Kind == EvTimer && b.Plane != -1 {
			t.Errorf("timer bin on plane %d, want -1", b.Plane)
		}
	}
	// Each packet: one hop arrival at the switch, one delivery at the
	// host, and two queue tx completions.
	if byKind[EvHop] != n || byKind[EvDeliver] != n || byKind[EvTx] != 2*n || byKind[EvTimer] != 1 {
		t.Errorf("kind counts = %+v, want hop=%d deliver=%d tx=%d timer=1", byKind, n, n, 2*n)
	}
	if rec.Events() != int64(4*n+1) {
		t.Errorf("Events() = %d, want %d", rec.Events(), 4*n+1)
	}
}

// TestFlightRecorderSameResults checks that profiling does not perturb
// the simulation: identical workloads with and without the recorder
// deliver at identical times and fire identical event counts.
func TestFlightRecorderSameResults(t *testing.T) {
	run := func(profile bool) ([]Time, uint64) {
		eng, net, fwd, _ := hostPair(100, Config{PropDelay: 200 * Nanosecond})
		if profile {
			eng.Recorder = NewFlightRecorder()
		}
		s := &sink{eng: eng}
		for i := 0; i < 8; i++ {
			p := net.NewPacket()
			p.Size = 1500
			p.Route = fwd
			p.Deliver = s
			net.Send(p)
		}
		eng.Run()
		return s.times, eng.EventsFired()
	}
	plainT, plainN := run(false)
	profT, profN := run(true)
	if plainN != profN {
		t.Errorf("events fired: plain %d, profiled %d", plainN, profN)
	}
	if len(plainT) != len(profT) {
		t.Fatalf("deliveries: plain %d, profiled %d", len(plainT), len(profT))
	}
	for i := range plainT {
		if plainT[i] != profT[i] {
			t.Errorf("delivery %d at %v profiled vs %v plain", i, profT[i], plainT[i])
		}
	}
}

// TestFlightRecorderPlanes checks plane attribution of hop/tx events on
// a two-plane topology.
func TestFlightRecorderPlanes(t *testing.T) {
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	up, _ := g.AddDuplex(0, 2, 100, 1)
	_, down := g.AddDuplex(1, 2, 100, 1)
	eng := NewEngine()
	net := NewNetwork(eng, g, Config{})
	rec := NewFlightRecorder()
	eng.Recorder = rec
	s := &releaseSink{net: net}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = []graph.LinkID{up, down}
	p.Deliver = s
	net.Send(p)
	eng.Run()
	for _, b := range rec.Snapshot() {
		if (b.Kind == EvHop || b.Kind == EvTx || b.Kind == EvDeliver) && b.Plane != 1 {
			t.Errorf("%v bin on plane %d, want 1", b.Kind, b.Plane)
		}
	}
}
