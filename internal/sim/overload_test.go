package sim

import "testing"

// TestStatsUnderOverload drives a burst far past a tiny queue's capacity
// and checks the monitoring counters stay consistent with each other:
// every packet either transmits or drops, Stats mirrors the Drops array,
// and utilization stays in [0, 1] while the bottleneck is saturated.
func TestStatsUnderOverload(t *testing.T) {
	// Queue of 2 packets, burst of 20.
	eng, net, fwd, _ := hostPair(100, Config{QueueBytes: 3000})
	s := &sink{eng: eng}
	const burst = 20
	for i := 0; i < burst; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()

	delivered := int64(len(s.times))
	st := net.Stats(fwd[0])
	if st.Drops == 0 {
		t.Fatal("overload produced no drops")
	}
	if st.Drops != net.Drops[fwd[0]] {
		t.Errorf("Stats.Drops = %d, Drops[link] = %d", st.Drops, net.Drops[fwd[0]])
	}
	if net.TotalDrops() != st.Drops {
		t.Errorf("TotalDrops = %d, want %d (all drops at the first hop)", net.TotalDrops(), st.Drops)
	}
	if delivered+st.Drops != burst {
		t.Errorf("delivered %d + dropped %d != sent %d", delivered, st.Drops, burst)
	}
	if st.TxPackets != delivered || st.TxBytes != delivered*1500 {
		t.Errorf("tx = %d pkts / %d bytes, want %d / %d", st.TxPackets, st.TxBytes, delivered, delivered*1500)
	}
	u := net.Utilization(fwd[0])
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want (0, 1]", u)
	}
	// Busy time is exactly the survivors' serialization (120 ns each at
	// 100 Gb/s), and utilization is that over the elapsed sim time.
	if st.Busy != Time(delivered)*120*Nanosecond {
		t.Errorf("busy = %v, want %v", st.Busy, Time(delivered)*120*Nanosecond)
	}
	if want := st.Busy.Seconds() / eng.Now().Seconds(); u != want {
		t.Errorf("utilization = %v, want %v", u, want)
	}
	// Second hop saw only the survivors.
	if st2 := net.Stats(fwd[1]); st2.TxPackets != delivered || st2.Drops != 0 {
		t.Errorf("second hop stats = %+v", st2)
	}
}
