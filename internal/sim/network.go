package sim

import (
	"fmt"
	"math"

	"pnet/internal/graph"
)

// Handler consumes a packet that has reached the end of its route.
type Handler interface {
	HandlePacket(*Packet)
}

// Packet is a source-routed simulated packet. The transport layer fills
// the Seq/Ack fields; the simulator only reads Size, Route, Hop, and
// Deliver.
type Packet struct {
	// Size is the on-wire size in bytes.
	Size int32
	// Route is the full sequence of directed links host-to-host.
	Route []graph.LinkID
	// Hop indexes the link currently being traversed.
	Hop int32
	// Deliver receives the packet at the final node.
	Deliver Handler

	// Transport fields (opaque to the simulator).
	Seq    int64 // data sequence, in packets
	AckSeq int64 // cumulative ack, in packets
	Aux    int64 // transport scratch (e.g. echoed timestamp)
	// FlowID identifies the transport flow the packet belongs to, for
	// tracing; transports stamp it, the simulator only carries it.
	FlowID int64
	// CE is the ECN congestion-experienced codepoint, set by a queue
	// whose occupancy exceeds the marking threshold; ECE echoes it back
	// to the sender on ACKs (set by the transport).
	CE, ECE bool
	// Trimmed marks a packet whose payload was cut to the header by an
	// overflowing queue (NDP-style trimming) — the receiver learns of
	// the loss immediately instead of inferring it from a timeout.
	Trimmed bool

	net  *Network
	next *Packet // freelist
	// span, when non-nil, is the packet's latency-attribution timeline
	// (see span.go); queues record segments into it as the packet moves.
	span *SpanLog
}

// act delivers the packet at the node it has propagated to; packets are
// scheduled as pooled actor events to keep per-hop allocations at zero.
func (p *Packet) act() { p.net.arrive(p) }

// Config sets network-wide parameters.
type Config struct {
	// QueueBytes is each link queue's drop-tail capacity. Zero selects
	// 100 full-size packets (150 kB), a common htsim configuration.
	QueueBytes int32
	// PropDelay is the per-link propagation delay. Zero selects 1 µs —
	// the paper's assumption of ~200 m of fiber per switch hop (§5.2.1),
	// which makes propagation dominate serialization for small packets.
	PropDelay Time
	// ECNThresholdBytes enables ECN marking: a packet entering a queue
	// whose occupancy exceeds the threshold is marked CE, as in DCTCP's
	// instantaneous-queue marking. Zero disables marking.
	ECNThresholdBytes int32
	// TrimToBytes enables NDP-style packet trimming: instead of dropping
	// a packet that overflows a queue, the queue cuts it to this header
	// size and forwards it (if even the header does not fit, the packet
	// drops). Zero disables trimming. NDP additionally gives trimmed
	// headers priority; this model keeps FIFO order, a documented
	// simplification.
	TrimToBytes int32
}

func (c Config) queueBytes() int32 {
	if c.QueueBytes == 0 {
		return 100 * 1500
	}
	return c.QueueBytes
}

func (c Config) propDelay() Time {
	if c.PropDelay == 0 {
		return Microsecond
	}
	return c.PropDelay
}

// TraceEvent identifies a packet lifecycle point for a Tracer.
type TraceEvent int

// Trace event kinds.
const (
	TraceEnqueue   TraceEvent = iota // packet accepted by a queue
	TraceDrop                        // packet lost to a full queue
	TraceTrim                        // packet payload trimmed (NDP)
	TraceDeliver                     // packet handed to its Deliver handler
	TraceBlackhole                   // packet lost to a down link (runtime fault)
)

// String names the event kind for logs and traces.
func (e TraceEvent) String() string {
	switch e {
	case TraceEnqueue:
		return "enqueue"
	case TraceDrop:
		return "drop"
	case TraceTrim:
		return "trim"
	case TraceDeliver:
		return "deliver"
	case TraceBlackhole:
		return "blackhole"
	}
	return "unknown"
}

// Tracer observes packet events, htsim-log style. Tracing is optional;
// a nil tracer costs one branch per event.
type Tracer interface {
	PacketEvent(ev TraceEvent, p *Packet, link graph.LinkID)
}

// Network instantiates queues for every link of a graph and forwards
// source-routed packets between them.
type Network struct {
	Eng    *Engine
	G      *graph.Graph
	queues []queue
	free   *Packet

	// shardPools are per-shard packet/span freelists for the sharded
	// engine (see shard.go): a plane shard dropping or blackholing a
	// packet inside a window cannot touch the shared freelists, so it
	// parks the carcass here and the barrier splices it back. Host
	// sub-shards 1..hostShards-1 instead keep their pool permanently —
	// their transports allocate and release on the same sub-shard (flow
	// endpoints are colocated), so the pool is a private freelist that
	// never needs splicing. Nil in serial runs.
	shardPools []shardPool

	// Host sub-sharding state (see hostbind.go). binds is per-node, nil
	// except at hosts under an H>1 ShardSet (or once PrepareHostBinds ran
	// ahead of one); hostUplinks lists each host's NIC uplink queues for
	// rebinding on Colocate; ufParent / ufMembers are the colocation
	// union-find (members only at roots). hostList is every bound host in
	// node-ID order; plannedShard tracks the round-robin sub-shard each
	// host's component would get, maintained across Colocate merges so a
	// lazily-materialized ShardSet reproduces the eager binding exactly.
	shardSet     *ShardSet
	hostShards   int
	binds        []*HostBind
	serialBind   *HostBind
	hostList     []graph.NodeID
	hostUplinks  [][]graph.LinkID
	ufParent     []graph.NodeID
	ufMembers    [][]graph.NodeID
	plannedShard []int

	// hostLoad, when enabled (EnableHostLoad), counts final-hop packet
	// delivers per destination node — the measured per-host occupancy
	// behind profile-guided placement. Disabled it costs one branch per
	// deliver. Race-free under sub-sharding: each host's delivers all fire
	// on the one sub-shard that owns it.
	hostLoad []int64

	// Span (latency attribution) state: a pool of SpanLogs and the
	// enable flag transports consult once per flow. See span.go.
	spansOn   bool
	freeSpans *SpanLog
	prop      Time // per-link propagation delay (the PDES lookahead)

	// Drops counts packets lost to full queues, by link.
	Drops []int64
	// Blackholed counts packets lost to administratively-down links, by
	// link — the signature of a runtime fault, kept separate from
	// congestion drops so fault experiments can tell the two apart.
	Blackholed []int64

	// Tracer, when set, observes every packet event.
	Tracer Tracer
}

// NewNetwork builds a Network over g. Link rates come from the graph's
// capacities (Gb/s).
func NewNetwork(eng *Engine, g *graph.Graph, cfg Config) *Network {
	n := &Network{
		Eng:        eng,
		G:          g,
		queues:     make([]queue, g.NumLinks()),
		Drops:      make([]int64, g.NumLinks()),
		Blackholed: make([]int64, g.NumLinks()),
	}
	for i := range n.queues {
		l := g.Link(graph.LinkID(i))
		if l.Capacity <= 0 {
			panic(fmt.Sprintf("sim: link %d has capacity %v", i, l.Capacity))
		}
		n.queues[i] = queue{
			net:      n,
			eng:      eng,
			id:       graph.LinkID(i),
			plane:    l.Plane,
			psPerBit: 1000 / l.Capacity, // ps per bit at `Capacity` Gb/s
			prop:     cfg.propDelay(),
			capBytes: cfg.queueBytes(),
			ecnMark:  cfg.ECNThresholdBytes,
			trimTo:   cfg.TrimToBytes,
		}
	}
	n.prop = cfg.propDelay()
	return n
}

// PropDelay reports the per-link propagation delay the network was built
// with — the conservative lookahead a per-plane PDES partition would
// have (planes only couple at hosts, one propagation delay away).
func (n *Network) PropDelay() Time { return n.prop }

// LinkStats are the per-link monitoring counters (§7 of the paper notes
// that multi-dataplane monitoring must merge per-plane statistics; these
// counters are the raw material).
type LinkStats struct {
	TxPackets int64
	TxBytes   int64
	Drops     int64
	Marks     int64 // ECN CE marks applied
	Trims     int64 // NDP payload trims applied
	// Blackholed counts packets lost because the link was down.
	Blackholed int64
	// Busy is cumulative transmission time; Busy/elapsed is utilization.
	Busy Time
}

// Stats returns a link's counters.
func (n *Network) Stats(id graph.LinkID) LinkStats {
	q := &n.queues[id]
	return LinkStats{
		TxPackets:  q.txPkts,
		TxBytes:    q.txBytes,
		Drops:      n.Drops[id],
		Marks:      q.marks,
		Trims:      q.trims,
		Blackholed: n.Blackholed[id],
		Busy:       q.busyTime,
	}
}

// SetLinkUp changes a link's runtime state. Taking a link down blackholes
// its queued packets (except one already mid-transmission, which dies
// when its last bit would have left) and every later arrival until the
// link comes back up. Packets already propagating toward the far node
// are considered past the cut and still arrive — the fault takes effect
// at the queue, as a failed transceiver or cut cable would.
//
// This is the dataplane's physical truth; it is deliberately separate
// from graph.Link.Up, the end host's administrative view, so that hosts
// must *detect* faults (core.HealthMonitor) rather than observe them by
// oracle.
func (n *Network) SetLinkUp(id graph.LinkID, up bool) {
	q := &n.queues[id]
	if q.down == !up {
		return
	}
	q.down = !up
	if up {
		return
	}
	// Blackhole everything queued behind the packet in transmission; the
	// head (if any) is reaped by act() when its transmission completes.
	keep := 0
	if q.busy {
		keep = 1
	}
	for _, p := range q.buf[keep:] {
		q.bytes -= p.Size
		q.blackhole(p)
	}
	for i := keep; i < len(q.buf); i++ {
		q.buf[i] = nil
	}
	q.buf = q.buf[:keep]
}

// LinkUp reports a link's runtime state.
func (n *Network) LinkUp(id graph.LinkID) bool { return !n.queues[id].down }

// TotalBlackholed sums blackholed packets over all links.
func (n *Network) TotalBlackholed() int64 {
	var total int64
	for _, b := range n.Blackholed {
		total += b
	}
	return total
}

// blackhole counts and releases a packet lost to a down link. It runs on
// the queue's owning shard, so the release goes through the shard-aware
// path.
func (q *queue) blackhole(p *Packet) {
	n := q.net
	n.Blackholed[q.id]++
	if n.Tracer != nil {
		n.Tracer.PacketEvent(TraceBlackhole, p, q.id)
	}
	n.releaseOn(p, q.shard)
}

// shardPool holds packets and spans released by one shard mid-window.
type shardPool struct {
	pkts  *Packet
	spans *SpanLog
}

// releaseOn releases a packet from shard code. The host shard (and the
// serial engine, shard 0 by default) owns the shared freelists directly;
// a plane shard parks carcasses in its pool until the window barrier.
func (n *Network) releaseOn(p *Packet, shard int) {
	if shard == 0 {
		n.Release(p)
		return
	}
	sp := &n.shardPools[shard]
	if s := p.span; s != nil {
		p.span = nil
		s.next = sp.spans
		sp.spans = s
	}
	p.next = sp.pkts
	sp.pkts = p
}

// prepareHostBinds builds the per-host placement cells, uplink lists, and
// colocation union-find for an H-way host partition — every cell
// provisionally on the serial engine, hosts round-robined over sub-shards
// in node-ID order into plannedShard. Idempotent; bindShards later swaps
// the cells onto real shard engines in place, which is what lets flows
// created before the ShardSet exists cache their cells safely.
func (n *Network) prepareHostBinds(hostShards int, hostSide func(graph.LinkID) bool) {
	if n.binds != nil {
		return
	}
	n.binds = make([]*HostBind, n.G.NumNodes())
	n.hostUplinks = make([][]graph.LinkID, n.G.NumNodes())
	var hosts []graph.NodeID
	for i := range n.queues {
		id := graph.LinkID(i)
		if hostSide(id) {
			src := n.G.Link(id).Src
			if n.hostUplinks[src] == nil {
				hosts = append(hosts, src)
			}
			n.hostUplinks[src] = append(n.hostUplinks[src], id)
		}
	}
	// Queue order is link order, so hosts arrive sorted by first
	// uplink, not by node ID; sort for a topology-stable assignment.
	for i := 1; i < len(hosts); i++ {
		for j := i; j > 0 && hosts[j] < hosts[j-1]; j-- {
			hosts[j], hosts[j-1] = hosts[j-1], hosts[j]
		}
	}
	n.hostList = hosts
	n.ufParent = make([]graph.NodeID, n.G.NumNodes())
	for i := range n.ufParent {
		n.ufParent[i] = graph.NodeID(i)
	}
	n.ufMembers = make([][]graph.NodeID, n.G.NumNodes())
	n.plannedShard = make([]int, n.G.NumNodes())
	for k, h := range hosts {
		n.binds[h] = &HostBind{eng: n.Eng, shard: 0}
		n.ufMembers[h] = []graph.NodeID{h}
		n.plannedShard[h] = k % hostShards
	}
}

// PrepareHostBinds pre-creates the per-host placement cells before any
// ShardSet exists, so transports created first cache cells that the
// eventual bindShards rebinds in place (lazy sharding: workload.Driver
// defers NewShardSet to the first run so placement can use accumulated
// workload knowledge). Until materialization every cell names the serial
// engine; Colocate meanwhile merges components and keeps plannedShard
// consistent, so the default binding comes out identical to an eagerly
// built set's. No-op when hostShards ≤ 1 or already prepared.
func (n *Network) PrepareHostBinds(hostShards int, hostSide func(graph.LinkID) bool) {
	if hostShards > 1 {
		n.prepareHostBinds(hostShards, hostSide)
	}
}

// BoundHosts returns every host with a placement cell, in node-ID order
// (nil when host binds are absent). The slice is owned by the network.
func (n *Network) BoundHosts() []graph.NodeID { return n.hostList }

// EnableHostLoad starts counting final-hop delivers per destination node
// (see hostLoad). Idempotent.
func (n *Network) EnableHostLoad() {
	if n.hostLoad == nil {
		n.hostLoad = make([]int64, n.G.NumNodes())
	}
}

// HostLoads returns the per-node deliver counts, indexed by node ID, or
// nil when EnableHostLoad was never called. Read at a quiesced point.
func (n *Network) HostLoads() []int64 { return n.hostLoad }

// bindShards assigns every queue to its owning shard engine: host-side
// queues (the NIC uplinks, per hostSide) to their host's sub-shard,
// switch queues to their plane's shard. With H>1 it also builds (or
// adopts, when PrepareHostBinds ran earlier) the per-host placement cells
// and the colocation union-find. Hosts default to their round-robin
// plannedShard, planes to plane mod planeShards; a ShardSet Placement
// overrides either side per entry. Called once by NewShardSet.
func (n *Network) bindShards(set *ShardSet, hostSide func(graph.LinkID) bool) {
	n.shardSet = set
	n.hostShards = set.hostShards
	planes := len(set.engines) - set.hostShards
	n.shardPools = make([]shardPool, len(set.engines))
	place := set.place
	if set.hostShards > 1 {
		n.prepareHostBinds(set.hostShards, hostSide)
		for _, h := range n.hostList {
			s := n.plannedShard[h]
			if place != nil {
				if ps, ok := place.Hosts[h]; ok {
					s = ps
				}
			}
			hb := n.binds[h]
			hb.eng, hb.shard = set.engines[s], s
		}
		// A placement must keep each colocation group whole: colocated
		// flow endpoints share state synchronously and cannot be split
		// across sub-shard engines.
		if place != nil && len(place.Hosts) > 0 {
			for _, h := range n.hostList {
				for _, m := range n.ufMembers[h] {
					if n.binds[m].shard != n.binds[h].shard {
						panic(fmt.Sprintf("sim: placement splits colocated hosts %d (sub-shard %d) and %d (sub-shard %d)",
							h, n.binds[h].shard, m, n.binds[m].shard))
					}
				}
			}
		}
	}
	for i := range n.queues {
		q := &n.queues[i]
		if hostSide(graph.LinkID(i)) {
			if n.binds != nil {
				if hb := n.binds[n.G.Link(graph.LinkID(i)).Src]; hb != nil {
					q.eng, q.shard = hb.eng, hb.shard
					continue
				}
			}
			q.eng, q.shard = set.engines[0], 0
			continue
		}
		if q.plane < 0 {
			q.eng, q.shard = set.engines[0], 0
			continue
		}
		ps := int(q.plane) % planes
		if place != nil {
			if s, ok := place.Planes[q.plane]; ok {
				ps = s
			}
		}
		s := set.hostShards + ps
		q.eng = set.engines[s]
		q.shard = s
	}
}

// spliceShardPools folds the plane shards' pools back into the shared
// freelists. Called at window barriers, with all shards quiesced. Host
// sub-shard pools (indices 1..hostShards-1) are deliberately skipped:
// they are permanent per-sub-shard freelists (see shardPools).
func (n *Network) spliceShardPools() {
	for i := range n.shardPools {
		if i > 0 && i < n.hostShards {
			continue
		}
		sp := &n.shardPools[i]
		for p := sp.pkts; p != nil; {
			next := p.next
			p.next = n.free
			n.free = p
			p = next
		}
		sp.pkts = nil
		for s := sp.spans; s != nil; {
			next := s.next
			s.next = n.freeSpans
			n.freeSpans = s
			s = next
		}
		sp.spans = nil
	}
}

// Utilization returns a link's lifetime utilization in [0,1] at the
// current simulated time.
func (n *Network) Utilization(id graph.LinkID) float64 {
	if n.Eng.Now() == 0 {
		return 0
	}
	return n.queues[id].busyTime.Seconds() / n.Eng.Now().Seconds()
}

// PlaneBytes aggregates transmitted bytes per dataplane — the merged
// cross-plane view a P-Net monitoring system needs.
func (n *Network) PlaneBytes() map[int32]int64 {
	out := map[int32]int64{}
	for i := range n.queues {
		plane := n.G.Link(graph.LinkID(i)).Plane
		out[plane] += n.queues[i].txBytes
	}
	return out
}

// NewPacket returns a zeroed packet from the freelist.
func (n *Network) NewPacket() *Packet {
	if p := n.free; p != nil {
		n.free = p.next
		*p = Packet{net: n}
		return p
	}
	return &Packet{net: n}
}

// NewPacketOn returns a zeroed packet from the freelist owned by the
// given shard (a HostBind.Shard value). Shard 0 — serial runs, H=1, and
// the primary host sub-shard — is the shared freelist; other host
// sub-shards draw from their private pool, which their own releases
// feed, so the packet path stays allocation-free inside windows without
// any shard ever touching another's freelist.
func (n *Network) NewPacketOn(shard int) *Packet {
	if shard <= 0 {
		return n.NewPacket()
	}
	sp := &n.shardPools[shard]
	if p := sp.pkts; p != nil {
		sp.pkts = p.next
		*p = Packet{net: n}
		return p
	}
	return &Packet{net: n}
}

// ReleaseOn is Release from code running on the given shard (a
// HostBind.Shard value): shard 0 releases to the shared freelist,
// anything else parks in that shard's pool.
func (n *Network) ReleaseOn(p *Packet, shard int) { n.releaseOn(p, shard) }

// Release returns a delivered or dropped packet to the freelist. Callers
// must not retain the packet afterwards. A span the transport did not
// claim (drops, blackholes, packets released without TakeSpan) is
// returned to the span pool here.
func (n *Network) Release(p *Packet) {
	if p.span != nil {
		n.FreeSpan(p.span)
		p.span = nil
	}
	p.next = n.free
	n.free = p
}

// Send injects a packet at the head of its route. The packet must have a
// non-empty Route, Hop 0, and a Deliver handler.
func (n *Network) Send(p *Packet) {
	if len(p.Route) == 0 || p.Deliver == nil {
		panic("sim: packet without route or handler")
	}
	p.Hop = 0
	n.queues[p.Route[0]].enqueue(p)
}

// QueueDepth reports the current occupancy, in bytes, of a link's queue
// (including the packet in transmission).
func (n *Network) QueueDepth(id graph.LinkID) int32 { return n.queues[id].bytes }

// TotalDrops sums packet drops over all links.
func (n *Network) TotalDrops() int64 {
	var total int64
	for _, d := range n.Drops {
		total += d
	}
	return total
}

// arrive is called when a packet reaches the node at the end of link
// Route[Hop]: it either forwards to the next queue or delivers.
func (n *Network) arrive(p *Packet) {
	if int(p.Hop) == len(p.Route)-1 {
		if n.hostLoad != nil {
			n.hostLoad[n.G.Link(p.Route[p.Hop]).Dst]++
		}
		if n.Tracer != nil {
			n.Tracer.PacketEvent(TraceDeliver, p, p.Route[p.Hop])
		}
		p.Deliver.HandlePacket(p)
		return
	}
	p.Hop++
	n.queues[p.Route[p.Hop]].enqueue(p)
}

// queue is a drop-tail FIFO output queue feeding one directed link.
type queue struct {
	net *Network
	// eng is the engine this queue schedules on and reads time from — the
	// shared engine in serial runs, the owning shard's under a ShardSet.
	// shard is that engine's index in the set (0 when serial).
	eng      *Engine
	shard    int
	id       graph.LinkID
	plane    int32
	psPerBit float64
	prop     Time
	capBytes int32
	ecnMark  int32 // CE-mark threshold in bytes; 0 disables
	trimTo   int32 // trim-to-header size in bytes; 0 disables

	buf   []*Packet // FIFO; buf[0] is in transmission when busy
	bytes int32
	busy  bool
	down  bool // runtime fault state; a down queue blackholes packets

	txPkts, txBytes int64
	marks           int64
	trims           int64
	busyTime        Time
}

func (q *queue) txTime(size int32) Time {
	return Time(math.Round(float64(size) * 8 * q.psPerBit))
}

func (q *queue) enqueue(p *Packet) {
	if q.down {
		q.blackhole(p)
		return
	}
	// With trimming enabled, headers and control packets (Size <=
	// trimTo) may use a reserved headroom of 64 headers beyond the data
	// budget — modelling NDP's separate high-priority header queue.
	limit := q.capBytes
	if q.trimTo > 0 && p.Size <= q.trimTo {
		limit += 64 * q.trimTo
	}
	if q.bytes+p.Size > limit {
		if q.trimTo > 0 && p.Size > q.trimTo && q.bytes+q.trimTo <= q.capBytes+64*q.trimTo {
			p.Size = q.trimTo
			p.Trimmed = true
			q.trims++
			if q.net.Tracer != nil {
				q.net.Tracer.PacketEvent(TraceTrim, p, q.id)
			}
		} else {
			q.net.Drops[q.id]++
			if q.net.Tracer != nil {
				q.net.Tracer.PacketEvent(TraceDrop, p, q.id)
			}
			q.net.releaseOn(p, q.shard)
			return
		}
	}
	if q.ecnMark > 0 && q.bytes > q.ecnMark {
		p.CE = true
		q.marks++
	}
	if q.net.Tracer != nil {
		q.net.Tracer.PacketEvent(TraceEnqueue, p, q.id)
	}
	if p.span != nil {
		p.span.wait = q.eng.Now()
	}
	q.buf = append(q.buf, p)
	q.bytes += p.Size
	if !q.busy {
		q.busy = true
		q.startTx()
	}
}

func (q *queue) startTx() {
	p := q.buf[0]
	eng := q.eng
	tx := q.txTime(p.Size)
	q.busyTime += tx
	q.txPkts++
	q.txBytes += int64(p.Size)
	if p.span != nil {
		// The hop's full cost is known here: queueing wait since enqueue,
		// then tx, then propagation. Recording prop now is safe — if the
		// link dies mid-flight the packet is blackholed and its span
		// discarded with it, never attributed.
		p.span.hop(q.plane, eng.Now()-p.span.wait, tx, q.prop)
	}
	eng.schedule(eng.Now()+tx, q)
}

// act fires when the head packet's last bit leaves the queue: the packet
// is scheduled to arrive after the propagation delay and the next packet
// (if any) begins transmission.
func (q *queue) act() {
	if q.down {
		// The head's last bit "left" into a dead link; it (and anything
		// else still buffered) is lost.
		for i, p := range q.buf {
			q.blackhole(p)
			q.buf[i] = nil
		}
		q.buf = q.buf[:0]
		q.bytes = 0
		q.busy = false
		return
	}
	p := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	q.bytes -= p.Size

	eng := q.eng
	eng.schedule(eng.Now()+q.prop, p)

	if len(q.buf) > 0 {
		q.startTx()
	} else {
		q.busy = false
	}
}
