// Package sim is a discrete-event, source-routed packet-level network
// simulator in the mold of htsim [Handley et al., SIGCOMM 2017], which the
// paper's artifact builds on. It models links with serialization and
// propagation delay, output drop-tail queues, and packets that carry their
// full route (a sequence of directed links) from source to destination —
// the forwarding model of both htsim and a P-Net end host that picks a
// dataplane and path for every packet.
package sim

import (
	"fmt"
)

// Time is simulated time in picoseconds. Picosecond resolution keeps
// serialization delays exact at every link speed in the paper's sweeps
// (a 64 B ACK at 400 Gb/s lasts 1.28 ns).
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// actor is the allocation-free alternative to a closure callback: hot-path
// simulation objects (queues, packets) implement act and are scheduled
// directly, letting the engine pool their events.
type actor interface {
	act()
}

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; cancelling an already-fired event is a no-op.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	who      actor // pooled internal events use who instead of fn
	canceled bool
	index    int    // heap position, -1 once popped
	next     *Event // freelist
}

// Cancel prevents the event from firing.
func (e *Event) Cancel() { e.canceled = true }

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && !e.canceled && e.index >= 0 }

// Engine is a single-threaded discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order.
type Engine struct {
	now    Time
	seq    uint64
	fired  uint64
	events eventHeap
	free   *Event // pool for internal (actor) events

	// Recorder, when set, profiles every dispatched event (kind, plane,
	// wall time) — the event-loop flight recorder behind `pnetstat
	// profile`. Nil costs one branch per event.
	Recorder *FlightRecorder

	// Fingerprint, when set, folds every dispatched event into a rolling
	// determinism hash chain (see fingerprint.go). Nil costs one branch
	// per event, same as Recorder.
	Fingerprint *Fingerprinter

	// shard, when non-nil, makes this engine one member of a ShardSet
	// (see shard.go): scheduling routes events to their owning shard and
	// sequence numbers come from the set's shared counter. Nil — the
	// serial engine — costs one branch per scheduled event.
	shard *engineShard
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns the number of events dispatched so far — the
// engine's work counter, sampled by telemetry to report event rates. On
// the host engine of a ShardSet it aggregates over every shard, so
// samplers and report gates see the same totals at any shard count.
func (e *Engine) EventsFired() uint64 {
	if sh := e.shard; sh != nil && sh.idx == 0 {
		var n uint64
		for _, s := range sh.set.engines {
			n += s.fired
		}
		return n
	}
	return e.fired
}

// SubShardEvents returns the per-host-sub-shard fired-event counts when
// this engine heads a ShardSet with host sub-sharding on (H > 1), and
// nil otherwise — the occupancy telemetry behind `pnetstat profile`'s
// sub-shard breakdown. Call at a quiesced point.
func (e *Engine) SubShardEvents() []int64 {
	sh := e.shard
	if sh == nil || sh.idx != 0 || sh.set.hostShards <= 1 {
		return nil
	}
	out := make([]int64, sh.set.hostShards)
	for i := range out {
		out[i] = int64(sh.set.engines[i].fired)
	}
	return out
}

// PlaneShardEvents returns the per-plane-shard fired-event counts when
// this engine heads a ShardSet with more than one plane shard, and nil
// otherwise — the occupancy telemetry behind `pnetstat profile`'s
// plane-shard imbalance. Call at a quiesced point.
func (e *Engine) PlaneShardEvents() []int64 {
	sh := e.shard
	if sh == nil || sh.idx != 0 || len(sh.set.engines)-sh.set.hostShards <= 1 {
		return nil
	}
	out := make([]int64, len(sh.set.engines)-sh.set.hostShards)
	for i := range out {
		out[i] = int64(sh.set.engines[sh.set.hostShards+i].fired)
	}
	return out
}

// EventsScheduled returns the number of events ever scheduled. On a
// sharded engine the set's shared counter is the total.
func (e *Engine) EventsScheduled() uint64 {
	if sh := e.shard; sh != nil {
		return sh.set.seq
	}
	return e.seq
}

// HeapLen reports the number of pending (possibly cancelled) events.
// Telemetry samples it as the engine's working-set size; a periodic
// sampler also uses it to detect that it is the only remaining work and
// stop rescheduling itself. On the host engine of a ShardSet it
// aggregates every shard's heap (plus the host timer heap), so the
// sampler's "am I the last event" check stays correct under sharding.
func (e *Engine) HeapLen() int {
	if sh := e.shard; sh != nil && sh.idx == 0 {
		n := len(sh.timers)
		for _, s := range sh.set.engines {
			n += len(s.events)
		}
		return n
	}
	return len(e.events)
}

// At schedules fn at absolute time t (not before the current time) and
// returns a cancellable handle.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < %v", t, e.now))
	}
	ev := &Event{at: t, fn: fn}
	if e.shard == nil {
		e.seq++
		ev.seq = e.seq
		e.events.push(ev)
		return ev
	}
	e.shard.routeFn(e, ev)
	return ev
}

// After schedules fn d after the current time.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// schedule enqueues an internal actor event from the pool. Pooled events
// have no external handle, so they cannot be cancelled and are recycled
// the moment they fire — the hot path of the simulator allocates nothing.
func (e *Engine) schedule(at Time, who actor) {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &Event{}
	}
	ev.at = at
	ev.who = who
	ev.fn = nil
	ev.canceled = false
	if e.shard == nil {
		e.seq++
		ev.seq = e.seq
		e.events.push(ev)
		return
	}
	e.shard.route(e, ev)
}

// fire dispatches a popped event, recycling pooled ones.
func (e *Engine) fire(ev *Event) {
	if e.Recorder != nil || e.Fingerprint != nil {
		e.fireInstrumented(ev)
		return
	}
	e.now = ev.at
	e.fired++
	if ev.who != nil {
		who := ev.who
		ev.who = nil
		ev.next = e.free
		e.free = ev
		who.act()
		return
	}
	ev.fn()
}

// Step fires the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.events.pop()
		if ev.canceled {
			continue
		}
		e.fire(ev)
		return true
	}
	return false
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps up to and including t, then
// advances the clock to t. It returns the number of events fired.
func (e *Engine) RunUntil(t Time) int {
	fired := 0
	for len(e.events) > 0 {
		next := e.events[0]
		if next.canceled {
			e.events.pop()
			continue
		}
		if next.at > t {
			break
		}
		e.events.pop()
		e.fire(next)
		fired++
	}
	if e.now < t {
		e.now = t
	}
	return fired
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). A 4-ary
// layout halves the depth of the dominant sift-down path, and avoiding
// container/heap's interface dispatch roughly doubles event throughput —
// the engine's hot loop is pure heap traffic.
type eventHeap []*Event

func (h eventHeap) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(ev, s[parent]) {
			break
		}
		s[i] = s[parent]
		s[i].index = i
		i = parent
	}
	s[i] = ev
	ev.index = i
}

func (h *eventHeap) pop() *Event {
	s := *h
	top := s[0]
	top.index = -1
	last := s[len(s)-1]
	s[len(s)-1] = nil
	s = s[:len(s)-1]
	*h = s
	if len(s) == 0 {
		return top
	}
	// Sift the former last element down from the root.
	i := 0
	for {
		child := 4*i + 1
		if child >= len(s) {
			break
		}
		end := child + 4
		if end > len(s) {
			end = len(s)
		}
		best := child
		for c := child + 1; c < end; c++ {
			if s.less(s[c], s[best]) {
				best = c
			}
		}
		if !s.less(s[best], last) {
			break
		}
		s[i] = s[best]
		s[i].index = i
		i = best
	}
	s[i] = last
	last.index = i
	return top
}
