package sim

import (
	"testing"
)

func TestDownLinkBlackholesArrivals(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	s := &sink{eng: eng}
	tr := &countingTracer{}
	net.Tracer = tr

	net.SetLinkUp(fwd[0], false)
	if net.LinkUp(fwd[0]) {
		t.Fatal("link reported up after SetLinkUp(false)")
	}
	for i := 0; i < 3; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()

	if len(s.times) != 0 {
		t.Errorf("delivered %d packets through a down link", len(s.times))
	}
	if got := net.TotalBlackholed(); got != 3 {
		t.Errorf("blackholed = %d, want 3", got)
	}
	if net.Blackholed[fwd[0]] != 3 {
		t.Errorf("blackholed on first link = %d, want 3", net.Blackholed[fwd[0]])
	}
	if tr.counts[TraceBlackhole] != 3 {
		t.Errorf("blackhole trace events = %d, want 3", tr.counts[TraceBlackhole])
	}
	if net.TotalDrops() != 0 {
		t.Errorf("congestion drops = %d, want 0 (faults are not drops)", net.TotalDrops())
	}
	if st := net.Stats(fwd[0]); st.Blackholed != 3 {
		t.Errorf("Stats.Blackholed = %d, want 3", st.Blackholed)
	}
}

func TestLinkDownBlackholesQueuedPackets(t *testing.T) {
	// Queue 5 packets, then cut the link mid-transmission of the first:
	// the head dies when its last bit "leaves", the rest die immediately.
	eng, net, fwd, _ := hostPair(100, Config{})
	s := &sink{eng: eng}
	for i := 0; i < 5; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	// 1500 B at 100 Gb/s = 120 ns serialization; cut at 60 ns.
	eng.At(60*Nanosecond, func() { net.SetLinkUp(fwd[0], false) })
	eng.Run()

	if len(s.times) != 0 {
		t.Errorf("delivered %d packets across the cut", len(s.times))
	}
	if got := net.TotalBlackholed(); got != 5 {
		t.Errorf("blackholed = %d, want 5", got)
	}
	if net.QueueDepth(fwd[0]) != 0 {
		t.Errorf("down queue holds %d bytes", net.QueueDepth(fwd[0]))
	}
}

func TestPacketPastTheCutStillArrives(t *testing.T) {
	// A packet that fully left the first queue before the cut is
	// propagating on the wire: cutting the link behind it must not
	// retroactively lose it.
	eng, net, fwd, _ := hostPair(100, Config{PropDelay: 500 * Nanosecond})
	s := &sink{eng: eng}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = fwd
	p.Deliver = s
	net.Send(p)
	// Serialization ends at 120 ns; cut at 200 ns while propagating.
	eng.At(200*Nanosecond, func() { net.SetLinkUp(fwd[0], false) })
	eng.Run()

	if len(s.times) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.times))
	}
	if net.TotalBlackholed() != 0 {
		t.Errorf("blackholed = %d, want 0", net.TotalBlackholed())
	}
}

func TestLinkBackUpResumesDelivery(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	s := &sink{eng: eng}

	net.SetLinkUp(fwd[0], false)
	p := net.NewPacket()
	p.Size = 1500
	p.Route = fwd
	p.Deliver = s
	net.Send(p) // blackholed

	eng.At(Microsecond, func() {
		net.SetLinkUp(fwd[0], true)
		q := net.NewPacket()
		q.Size = 1500
		q.Route = fwd
		q.Deliver = s
		net.Send(q)
	})
	eng.Run()

	if !net.LinkUp(fwd[0]) {
		t.Fatal("link reported down after SetLinkUp(true)")
	}
	if len(s.times) != 1 {
		t.Fatalf("delivered %d packets after re-up, want 1", len(s.times))
	}
	if net.TotalBlackholed() != 1 {
		t.Errorf("blackholed = %d, want 1", net.TotalBlackholed())
	}
	// Delivery timing identical to a fresh link: sent at 1us, two hops of
	// 120 ns serialization + 1 us propagation each.
	want := Microsecond + 2*(120*Nanosecond+Microsecond)
	if s.times[0] != want {
		t.Errorf("delivery at %v, want %v", s.times[0], want)
	}
}

func TestSetLinkUpIdempotent(t *testing.T) {
	_, net, fwd, _ := hostPair(100, Config{})
	net.SetLinkUp(fwd[0], false)
	net.SetLinkUp(fwd[0], false) // no-op
	net.SetLinkUp(fwd[0], true)
	net.SetLinkUp(fwd[0], true) // no-op
	if !net.LinkUp(fwd[0]) {
		t.Error("link not up after paired down/up")
	}
	if net.TotalBlackholed() != 0 {
		t.Errorf("blackholed = %d on an idle link", net.TotalBlackholed())
	}
}
