package sim

// Latency attribution: every packet can carry a SpanLog, a pooled
// per-journey timeline of (component, plane, duration) segments the
// queues fill in as the packet moves. Transports partition a flow's
// lifetime [Started, Finished] at ACK/arrival progress instants and
// charge each interval to the causing packet's journey, so the
// per-component totals sum to the flow completion time *exactly* (all
// arithmetic is integer picoseconds). Spans are off by default and cost
// one nil check per hot-path hook when disabled; see DESIGN.md §9.

// SpanComponent classifies one slice of a flow's completion time.
type SpanComponent uint8

// Span components. The first three are per-hop network time recorded by
// queues; the last three are sender-side gaps classified by the cause of
// the packet that ended them.
const (
	// SpanQueue is time spent waiting behind other packets in a queue.
	SpanQueue SpanComponent = iota
	// SpanSerialize is transmission (store-and-forward clock-out) time.
	SpanSerialize
	// SpanPropagate is link propagation time.
	SpanPropagate
	// SpanRTOStall is dead time before a retransmission-timeout resend —
	// the flow made no progress because it was waiting for a timer.
	SpanRTOStall
	// SpanRepathGap is dead time before a resend on a *replacement* path
	// (Flow.Repath): the cost of detecting a stalled route and moving.
	SpanRepathGap
	// SpanHostWait is sender-side wait that is not a protocol stall:
	// cwnd/credit pacing between a progress ACK and the next useful send.
	SpanHostWait

	numSpanComponents
)

var spanComponentNames = [numSpanComponents]string{
	"queue", "serialize", "propagate", "rto_stall", "repath_gap", "host_wait",
}

// String names the component as it appears in JSONL records and reports.
func (c SpanComponent) String() string {
	if int(c) < len(spanComponentNames) {
		return spanComponentNames[c]
	}
	return "unknown"
}

// SpanComponentNames lists every valid component name, in enum order.
func SpanComponentNames() []string {
	return append([]string(nil), spanComponentNames[:]...)
}

// ParseSpanComponent resolves a component name; ok is false for names no
// version of this enum ever emitted (the reader's schema check).
func ParseSpanComponent(s string) (SpanComponent, bool) {
	for i, n := range spanComponentNames {
		if n == s {
			return SpanComponent(i), true
		}
	}
	return 0, false
}

// SpanCause records why a packet was sent; it classifies the sender-side
// gap between the previous progress instant and the packet's send time.
type SpanCause uint8

// Span causes.
const (
	// CauseFresh marks a normally-clocked (window/credit) transmission.
	CauseFresh SpanCause = iota
	// CauseRTO marks a transmission triggered by a retransmission timeout.
	CauseRTO
	// CauseRepath marks the first transmission after a stall-driven path
	// swap (Flow.Repath).
	CauseRepath
)

// stall maps a cause to the component its preceding dead time charges.
func (c SpanCause) stall() SpanComponent {
	switch c {
	case CauseRTO:
		return SpanRTOStall
	case CauseRepath:
		return SpanRepathGap
	}
	return SpanHostWait
}

// SpanSeg is one contiguous slice of a packet's journey.
type SpanSeg struct {
	Comp  SpanComponent
	Plane int32
	Dur   Time
}

// SpanLog is one packet's timeline from send to delivery (and, for TCP,
// on through the ACK's return journey — the transport moves the log from
// the data packet to its ACK). Segments are chronological and contiguous:
// their durations sum to now−SentAt at every instant the packet (or its
// ACK) is being processed. Logs are pooled on the Network like packets.
type SpanLog struct {
	// SentAt is the simulated send time.
	SentAt Time
	// Cause is why the packet was sent (fresh, RTO, repath).
	Cause SpanCause

	wait Time // enqueue instant of the hop in progress
	segs []SpanSeg
	next *SpanLog // freelist
}

// Segments exposes the journey; callers must not retain it past the
// log's release.
func (s *SpanLog) Segments() []SpanSeg { return s.segs }

// Total sums the recorded segment durations.
func (s *SpanLog) Total() Time {
	var t Time
	for _, sg := range s.segs {
		t += sg.Dur
	}
	return t
}

// hop appends one hop's worth of segments. Zero durations are skipped —
// they carry no time, so sums stay exact without the clutter.
func (s *SpanLog) hop(plane int32, wait, tx, prop Time) {
	if wait > 0 {
		s.segs = append(s.segs, SpanSeg{SpanQueue, plane, wait})
	}
	if tx > 0 {
		s.segs = append(s.segs, SpanSeg{SpanSerialize, plane, tx})
	}
	if prop > 0 {
		s.segs = append(s.segs, SpanSeg{SpanPropagate, plane, prop})
	}
}

// EnableSpans turns span recording on for packets subsequently attached
// a span by their transport. Transports check SpansOn once per flow.
func (n *Network) EnableSpans() { n.spansOn = true }

// SpansOn reports whether span recording is enabled.
func (n *Network) SpansOn() bool { return n.spansOn }

// NewSpan returns a pooled, reset span log stamped with its send time
// and cause.
func (n *Network) NewSpan(cause SpanCause, at Time) *SpanLog {
	s := n.freeSpans
	if s != nil {
		n.freeSpans = s.next
		s.next = nil
		s.segs = s.segs[:0]
	} else {
		s = &SpanLog{}
	}
	s.SentAt = at
	s.Cause = cause
	s.wait = 0
	return s
}

// NewSpanOn is NewSpan drawing from the given shard's pool (a
// HostBind.Shard value); shard 0 is the shared pool.
func (n *Network) NewSpanOn(cause SpanCause, at Time, shard int) *SpanLog {
	if shard <= 0 {
		return n.NewSpan(cause, at)
	}
	sp := &n.shardPools[shard]
	s := sp.spans
	if s != nil {
		sp.spans = s.next
		s.next = nil
		s.segs = s.segs[:0]
	} else {
		s = &SpanLog{}
	}
	s.SentAt = at
	s.Cause = cause
	s.wait = 0
	return s
}

// FreeSpanOn is FreeSpan returning to the given shard's pool (a
// HostBind.Shard value); shard 0 is the shared pool. Nil is a no-op.
func (n *Network) FreeSpanOn(s *SpanLog, shard int) {
	if s == nil {
		return
	}
	if shard <= 0 {
		n.FreeSpan(s)
		return
	}
	sp := &n.shardPools[shard]
	s.next = sp.spans
	sp.spans = s
}

// FreeSpan returns a span log to the pool. Nil is a no-op, so callers
// can free unconditionally on every exit path.
func (n *Network) FreeSpan(s *SpanLog) {
	if s == nil {
		return
	}
	s.next = n.freeSpans
	n.freeSpans = s
}

// AttachSpan hands a span log to a packet; the queues it traverses will
// record segments into it. Release frees an unclaimed span automatically.
func (p *Packet) AttachSpan(s *SpanLog) { p.span = s }

// TakeSpan detaches and returns the packet's span log (nil when spans
// are off). The caller owns it and must FreeSpan it or attach it to
// another packet.
func (p *Packet) TakeSpan() *SpanLog {
	s := p.span
	p.span = nil
	return s
}

// SpanTotal is one (component, plane) cell of a flow's attribution.
// Plane is -1 for components that are not tied to a link (stalls and
// host waits).
type SpanTotal struct {
	Comp  SpanComponent
	Plane int32
	Dur   Time
}

// SpanAttribution accumulates a flow's FCT decomposition. Transports
// call Attribute once per progress interval; the running totals then sum
// to exactly the time attributed so far. The zero value is ready to use.
type SpanAttribution struct {
	totals []SpanTotal
}

func (a *SpanAttribution) add(c SpanComponent, plane int32, d Time) {
	if d <= 0 {
		return
	}
	for i := range a.totals {
		if a.totals[i].Comp == c && a.totals[i].Plane == plane {
			a.totals[i].Dur += d
			return
		}
	}
	a.totals = append(a.totals, SpanTotal{c, plane, d})
}

// Attribute charges the progress interval [from, to] to the journey of
// the packet that produced the progress. The journey (span) is
// contiguous from its send time to `to`, so:
//
//   - if the packet was sent before `from`, the interval is covered by
//     the journey's suffix of length to−from (walked backward, splitting
//     the boundary segment exactly);
//   - if the packet was sent inside the interval, the gap [from, SentAt]
//     is dead time charged to the packet's cause (RTO stall, repath gap,
//     or host wait) and the full journey covers the rest.
//
// Either way the charged durations sum to exactly to−from, which is what
// makes per-flow attribution conservative: summing over all progress
// intervals reproduces the FCT to the picosecond.
func (a *SpanAttribution) Attribute(span *SpanLog, from, to Time) {
	left := to - from
	if left <= 0 {
		return
	}
	if span == nil {
		a.add(SpanHostWait, -1, left)
		return
	}
	if gap := span.SentAt - from; gap > 0 {
		if gap > left {
			gap = left
		}
		a.add(span.Cause.stall(), -1, gap)
		left -= gap
	}
	segs := span.segs
	for i := len(segs) - 1; i >= 0 && left > 0; i-- {
		d := segs[i].Dur
		if d > left {
			d = left
		}
		a.add(segs[i].Comp, segs[i].Plane, d)
		left -= d
	}
	if left > 0 {
		// A journey with missing coverage (cannot happen for queues built
		// by this package); charge the remainder honestly rather than
		// dropping time and breaking conservation.
		a.add(SpanHostWait, -1, left)
	}
}

// Total sums every attributed duration — by construction, the sum of all
// Attribute(…, from, to) interval lengths.
func (a *SpanAttribution) Total() Time {
	var t Time
	for _, c := range a.totals {
		t += c.Dur
	}
	return t
}

// Totals returns the attribution cells sorted by (component, plane), a
// deterministic order independent of accumulation order.
func (a *SpanAttribution) Totals() []SpanTotal {
	out := append([]SpanTotal(nil), a.totals...)
	// Insertion sort: the cell count is tiny (≤ components × planes).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && spanTotalLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func spanTotalLess(a, b SpanTotal) bool {
	if a.Comp != b.Comp {
		return a.Comp < b.Comp
	}
	return a.Plane < b.Plane
}
