package sim

import (
	"testing"

	"pnet/internal/graph"
)

type countingTracer struct {
	counts map[TraceEvent]int
	links  map[graph.LinkID]bool
}

func (c *countingTracer) PacketEvent(ev TraceEvent, p *Packet, link graph.LinkID) {
	if c.counts == nil {
		c.counts = map[TraceEvent]int{}
		c.links = map[graph.LinkID]bool{}
	}
	c.counts[ev]++
	c.links[link] = true
}

func TestTracerSeesLifecycle(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	tr := &countingTracer{}
	net.Tracer = tr
	s := &sink{eng: eng}
	for i := 0; i < 3; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()
	// Each packet: 2 enqueues (one per hop) + 1 delivery.
	if tr.counts[TraceEnqueue] != 6 {
		t.Errorf("enqueues = %d, want 6", tr.counts[TraceEnqueue])
	}
	if tr.counts[TraceDeliver] != 3 {
		t.Errorf("delivers = %d, want 3", tr.counts[TraceDeliver])
	}
	if tr.counts[TraceDrop] != 0 || tr.counts[TraceTrim] != 0 {
		t.Errorf("unexpected drop/trim events: %v", tr.counts)
	}
	if len(tr.links) != 2 {
		t.Errorf("links seen = %d, want 2", len(tr.links))
	}
}

func TestTracerSeesDropsAndTrims(t *testing.T) {
	// Tiny queue without trimming: drops traced.
	eng, net, fwd, _ := hostPair(100, Config{QueueBytes: 1500})
	tr := &countingTracer{}
	net.Tracer = tr
	s := &sink{eng: eng}
	for i := 0; i < 4; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()
	if tr.counts[TraceDrop] != 3 {
		t.Errorf("drops traced = %d, want 3", tr.counts[TraceDrop])
	}

	// Same with trimming: trims traced instead.
	eng2, net2, fwd2, _ := hostPair(100, Config{QueueBytes: 1500, TrimToBytes: 64})
	tr2 := &countingTracer{}
	net2.Tracer = tr2
	s2 := &sink{eng: eng2}
	for i := 0; i < 4; i++ {
		p := net2.NewPacket()
		p.Size = 1500
		p.Route = fwd2
		p.Deliver = s2
		net2.Send(p)
	}
	eng2.Run()
	if tr2.counts[TraceTrim] != 3 {
		t.Errorf("trims traced = %d, want 3", tr2.counts[TraceTrim])
	}
	if tr2.counts[TraceDrop] != 0 {
		t.Errorf("drops traced = %d with trimming on", tr2.counts[TraceDrop])
	}
}

func TestNilTracerIsFree(t *testing.T) {
	// Just exercises the nil-check path.
	eng, net, fwd, _ := hostPair(100, Config{})
	s := &sink{eng: eng}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = fwd
	p.Deliver = s
	net.Send(p)
	eng.Run()
	if len(s.times) != 1 {
		t.Fatal("delivery failed without tracer")
	}
}
