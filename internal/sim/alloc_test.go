package sim

import "testing"

// releaseSink recycles delivered packets without recording anything, so
// the measurement below sees only the simulator's own allocations.
type releaseSink struct{ net *Network }

func (r *releaseSink) HandlePacket(p *Packet) { r.net.Release(p) }

// TestPacketPathZeroAlloc guards the simulator's allocation-free packet
// path: once the freelist, queue buffers, and event pool are warm,
// sending a packet end to end (two hops + delivery) must not allocate.
// Telemetry hooks (nil Tracer, FlowID stamp) ride the same path, so this
// also proves instrumentation is free when disabled.
func TestPacketPathZeroAlloc(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	s := &releaseSink{net: net}
	send := func() {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		p.FlowID = 7
		net.Send(p)
		eng.Run()
	}
	for i := 0; i < 64; i++ {
		send() // warm pools
	}
	if avg := testing.AllocsPerRun(100, send); avg != 0 {
		t.Errorf("allocs per packet = %v, want 0", avg)
	}
}
