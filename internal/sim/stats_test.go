package sim

import (
	"testing"

	"pnet/internal/graph"
)

func TestLinkStatsCounters(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{PropDelay: 500 * Nanosecond})
	s := &sink{eng: eng}
	for i := 0; i < 3; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()
	st := net.Stats(fwd[0])
	if st.TxPackets != 3 || st.TxBytes != 4500 {
		t.Errorf("stats = %+v", st)
	}
	if st.Busy != 3*120*Nanosecond {
		t.Errorf("busy = %v, want 360ns", st.Busy)
	}
	if st.Drops != 0 || st.Marks != 0 {
		t.Errorf("unexpected drops/marks: %+v", st)
	}
}

func TestUtilization(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{PropDelay: 500 * Nanosecond})
	s := &sink{eng: eng}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = fwd
	p.Deliver = s
	net.Send(p)
	eng.Run()
	u := net.Utilization(fwd[0])
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestECNMarking(t *testing.T) {
	// Queue threshold of 2 packets: a burst of 6 marks the later ones.
	eng, net, fwd, _ := hostPair(100, Config{ECNThresholdBytes: 3000})
	marked := 0
	s := &markSink{eng: eng, marked: &marked}
	for i := 0; i < 6; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()
	if marked == 0 {
		t.Error("no packets marked CE above threshold")
	}
	if st := net.Stats(fwd[0]); st.Marks == 0 {
		t.Error("mark counter not incremented")
	}
}

func TestECNDisabledByDefault(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	marked := 0
	s := &markSink{eng: eng, marked: &marked}
	for i := 0; i < 20; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
	}
	eng.Run()
	if marked != 0 {
		t.Errorf("%d packets marked with ECN disabled", marked)
	}
}

func TestPlaneBytes(t *testing.T) {
	g := graph.New(4)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	g.AddDuplex(0, 2, 100, 0)
	g.AddDuplex(2, 1, 100, 0)
	g.AddDuplex(0, 3, 100, 1)
	g.AddDuplex(3, 1, 100, 1)
	eng := NewEngine()
	net := NewNetwork(eng, g, Config{})
	s := &sink{eng: eng}
	p0, _ := graph.ShortestPath(g, 0, 1)
	pkt := net.NewPacket()
	pkt.Size = 1500
	pkt.Route = p0.Links
	pkt.Deliver = s
	net.Send(pkt)
	eng.Run()
	bytes := net.PlaneBytes()
	if bytes[p0.Plane(g)] != 3000 { // two hops on the same plane
		t.Errorf("plane bytes = %v", bytes)
	}
}

type markSink struct {
	eng    *Engine
	marked *int
}

func (m *markSink) HandlePacket(p *Packet) {
	if p.CE {
		*m.marked++
	}
}
