package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestHeapFiresInOrder: whatever order events are scheduled in, they must
// fire in non-decreasing time, with FIFO order at equal times.
func TestHeapFiresInOrder(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 200 + rng.Intn(200)
		var fired []Time
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(50)) // many collisions
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHeapInterleavedPushPop: schedule from within events (the
// simulator's real access pattern) and verify monotonic time.
func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine()
	var last Time
	count := 0
	var tick func()
	tick = func() {
		if e.Now() < last {
			t.Fatal("time went backwards")
		}
		last = e.Now()
		count++
		if count < 5000 {
			// Schedule 0-2 future events.
			for i := 0; i < rng.Intn(3); i++ {
				e.After(Time(1+rng.Intn(100)), tick)
			}
		}
	}
	e.At(0, tick)
	e.At(1, tick)
	e.At(1, tick)
	e.Run()
	if count < 3 {
		t.Fatalf("count = %d", count)
	}
}

// TestPooledEventsRecycled: actor events must reuse Event structs rather
// than grow the pool indefinitely.
func TestPooledEventsRecycled(t *testing.T) {
	eng, net, fwd, _ := hostPair(100, Config{})
	s := &sink{eng: eng}
	// Send sequentially: each packet's events finish before the next is
	// injected, so the pool should stay tiny.
	var send func(i int)
	send = func(i int) {
		if i == 0 {
			return
		}
		p := net.NewPacket()
		p.Size = 1500
		p.Route = fwd
		p.Deliver = s
		net.Send(p)
		eng.After(10*Microsecond, func() { send(i - 1) })
	}
	send(100)
	eng.Run()
	if len(s.times) != 100 {
		t.Fatalf("delivered %d", len(s.times))
	}
	// Count pool length.
	n := 0
	for ev := eng.free; ev != nil; ev = ev.next {
		n++
	}
	if n > 16 {
		t.Errorf("event pool grew to %d for sequential traffic", n)
	}
}

func TestCancelledPooledInteraction(t *testing.T) {
	// Cancel public events interleaved with pooled ones; both must
	// behave.
	eng, net, fwd, _ := hostPair(100, Config{})
	s := &sink{eng: eng}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = fwd
	p.Deliver = s
	cancelled := false
	ev := eng.At(50*Nanosecond, func() { cancelled = true })
	ev.Cancel()
	net.Send(p)
	eng.Run()
	if cancelled {
		t.Error("cancelled event fired")
	}
	if len(s.times) != 1 {
		t.Error("packet lost")
	}
}
