package sim

// Determinism fingerprints: a rolling 64-bit hash chain over every event
// the engine fires, folded per dataplane and globally, with a checkpoint
// every epoch (N events). The chain is the determinism contract of
// ROADMAP item 1 made checkable: two runs that fired the same events in
// the same order at the same simulated times carry identical chains, and
// the first divergent epoch (then, with a journal, the first divergent
// event) can be found by bisection instead of by staring at report
// diffs. Attach one per engine (Engine.Fingerprint); a nil fingerprinter
// costs one branch per event, same as the flight recorder.
//
// The chain deliberately hashes only simulated quantities — timestamp,
// event kind, plane, link, flow, sequence, size — never wall time or
// heap addresses, so it is invariant across worker counts, machines, and
// runs of the same binary. Plane chains fold only that plane's events;
// events with no plane (timers) fold into the host chain. XOR-folding
// final chains across engines is therefore order-free, which is what
// makes the run-level fingerprint worker-count invariant even though
// engines attach in completion order.

// DefaultFingerprintEpoch is the checkpoint cadence when none is given:
// one checkpoint per 65536 events keeps checkpoint streams small (a few
// hundred lines per engine on the paper's small-scale runs) while
// bounding the journal a divergence re-run must record to one epoch.
const DefaultFingerprintEpoch = 1 << 16

// mix64 is the splitmix64 finalizer: a cheap, well-dispersed 64-bit
// permutation. Chaining it (h = mix64(h ^ v)) makes the fingerprint
// order-sensitive — swapping two events changes every later value.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// FingerprintCheckpoint is the chain state at one epoch boundary.
type FingerprintCheckpoint struct {
	// Epoch is the 0-based index of the epoch this checkpoint closes.
	Epoch int64
	// Events is the cumulative event count at the checkpoint.
	Events int64
	// T is the simulated time of the last folded event.
	T Time
	// Global, Host, and Planes are the cumulative chains: every event,
	// plane-less (timer) events, and per-plane events respectively.
	Global uint64
	Host   uint64
	Planes []uint64
	// Partial marks a trailing checkpoint synthesized at snapshot time
	// for an epoch still in progress (Events is not a multiple of the
	// cadence).
	Partial bool
}

// FingerprintJournalEntry is one folded event, as seen by the optional
// journal hook — the record a divergence re-run writes so `pnetstat
// divergence` can name the exact event two runs first disagreed on.
type FingerprintJournalEntry struct {
	Epoch int64
	Index int64 // 0-based position within the epoch
	T     Time
	Kind  EventKind
	Plane int32
	Link  int64
	Flow  int64
	Seq   int64
	Size  int32
	Hash  uint64 // global chain after folding this event
}

// Fingerprinter folds fired events into the hash chains. It belongs to
// exactly one engine (single-threaded, no atomics); run-level folds
// happen in internal/report. The hot path is allocation-free once the
// plane slice is warm; checkpoints allocate once per epoch.
type Fingerprinter struct {
	epoch  int64 // events per checkpoint
	events int64
	global uint64
	host   uint64
	planes []uint64
	lastT  Time
	cps    []FingerprintCheckpoint

	// Journal, when non-nil, receives every folded event. This is the
	// heavyweight divergence-debugging mode (one record per event); leave
	// it nil for fingerprint-only runs.
	Journal func(FingerprintJournalEntry)
}

// NewFingerprinter returns a fingerprinter checkpointing every
// epochEvents events (<= 0 selects DefaultFingerprintEpoch).
func NewFingerprinter(epochEvents int64) *Fingerprinter {
	if epochEvents <= 0 {
		epochEvents = DefaultFingerprintEpoch
	}
	return &Fingerprinter{epoch: epochEvents}
}

// EpochEvents returns the checkpoint cadence.
func (f *Fingerprinter) EpochEvents() int64 { return f.epoch }

// Events returns the number of events folded so far.
func (f *Fingerprinter) Events() int64 { return f.events }

// Chains returns the cumulative global chain, the host (plane-less)
// chain, and the per-plane chains. Callers must not mutate the slice.
func (f *Fingerprinter) Chains() (global, host uint64, planes []uint64) {
	return f.global, f.host, f.planes
}

// Fold folds one event described by its simulated identity — the entry
// point for replay and divergence tooling outside the engine (the
// engine's dispatch path calls fold directly with its classification).
// Plane is -1 for plane-less events, link -1 for non-packet events.
func (f *Fingerprinter) Fold(t Time, kind EventKind, plane int32, link, flow, seq int64, size int32) {
	f.fold(t, eventInfo{kind: kind, plane: plane, link: link, flow: flow, seq: seq, size: size})
}

// fold mixes one fired event into the chains. Only simulated quantities
// enter the hash; see the package comment for why.
func (f *Fingerprinter) fold(t Time, info eventInfo) {
	v := mix64(uint64(t) ^ uint64(info.kind)<<56 ^ uint64(uint32(info.plane))<<40)
	v = mix64(v ^ uint64(info.link)<<32 ^ uint64(uint32(info.size)))
	v = mix64(v ^ uint64(info.flow)<<16 ^ uint64(info.seq))
	f.global = mix64(f.global ^ v)
	if info.plane < 0 {
		f.host = mix64(f.host ^ v)
	} else {
		for int(info.plane) >= len(f.planes) {
			f.planes = append(f.planes, 0)
		}
		f.planes[info.plane] = mix64(f.planes[info.plane] ^ v)
	}
	f.lastT = t
	idx := f.events % f.epoch
	f.events++
	if f.Journal != nil {
		f.Journal(FingerprintJournalEntry{
			Epoch: (f.events - 1) / f.epoch, Index: idx, T: t,
			Kind: info.kind, Plane: info.plane, Link: info.link,
			Flow: info.flow, Seq: info.seq, Size: info.size,
			Hash: f.global,
		})
	}
	if f.events%f.epoch == 0 {
		f.cps = append(f.cps, f.checkpoint(false))
	}
}

func (f *Fingerprinter) checkpoint(partial bool) FingerprintCheckpoint {
	epoch := (f.events - 1) / f.epoch
	if f.events == 0 {
		epoch = 0
	}
	return FingerprintCheckpoint{
		Epoch:   epoch,
		Events:  f.events,
		T:       f.lastT,
		Global:  f.global,
		Host:    f.host,
		Planes:  append([]uint64(nil), f.planes...),
		Partial: partial,
	}
}

// Checkpoints returns the epoch checkpoints recorded so far plus, when
// events have been folded past the last boundary, a trailing Partial
// checkpoint with the current chain state — so a run whose event count
// is not a multiple of the cadence still ends on a comparable record.
// Idempotent; call after the engine has stopped.
func (f *Fingerprinter) Checkpoints() []FingerprintCheckpoint {
	out := append([]FingerprintCheckpoint(nil), f.cps...)
	if f.events%f.epoch != 0 {
		out = append(out, f.checkpoint(true))
	}
	return out
}

// eventInfo classifies one dispatched event for the flight recorder and
// the fingerprinter: what kind of work it is, which plane owns it, and
// the packet identity (link/flow/seq/size; -1/0 when not a packet).
type eventInfo struct {
	kind  EventKind
	plane int32
	link  int64
	flow  int64
	seq   int64
	size  int32
}

// classify extracts an event's identity from its actor. It must run
// before dispatch: pooled events are recycled the moment they fire.
func classify(who actor) eventInfo {
	info := eventInfo{kind: EvTimer, plane: -1, link: -1}
	switch a := who.(type) {
	case *Packet:
		link := a.Route[a.Hop]
		info.link = int64(link)
		info.plane = a.net.queues[link].plane
		info.flow = a.FlowID
		info.seq = a.Seq
		info.size = a.Size
		if int(a.Hop) == len(a.Route)-1 {
			info.kind = EvDeliver
		} else {
			info.kind = EvHop
		}
	case *queue:
		info.kind = EvTx
		info.plane = a.plane
		info.link = int64(a.id)
	}
	return info
}
