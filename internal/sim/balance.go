package sim

// Deterministic load-balanced shard placement (DESIGN.md §13): instead of
// round-robining hosts over sub-shards and mapping plane p to shard p mod
// N, a Placement assigns each colocation group and each dataplane to the
// shard that balances *weight* — expected or measured event load. The
// planner here is classic LPT (longest processing time first) greedy
// bin-packing with fully deterministic tie-breaking, so a fixed input
// always yields one placement: items are packed heaviest first (ties by
// lowest host/plane ID), each onto the lightest bin (ties by fewest items,
// then lowest bin index). With all-equal weights the count tie-break makes
// LPT degenerate to exactly the round-robin the default binding uses.
//
// Placement is pure: it decides which engine owns which host or plane,
// never the committed event order, so the window protocol's output stays
// byte-identical to serial under every placement (see shard.go).

import (
	"fmt"
	"sort"

	"pnet/internal/graph"
)

// Placement overrides the default host and plane shard assignment of a
// ShardSet. Hosts maps each host to its sub-shard in [0, hostShards);
// Planes maps each dataplane to its plane shard in [0, shards). Entries
// absent from a map keep the default (round-robin / plane mod shards)
// assignment. Every member of a colocation group must land on one
// sub-shard — the planners below guarantee that by assigning per group,
// and NewShardSetPlaced checks it.
type Placement struct {
	Hosts  map[graph.NodeID]int
	Planes map[int32]int
}

// lptItem is one unit of placeable work: a colocation group or a plane.
type lptItem struct {
	weight int64
	key    int64 // ascending tie-break: lowest member host ID, or plane ID
	pin    int   // forced bin, -1 when free
}

// lptPack assigns items to bins by LPT: heaviest first (ties by lowest
// key), each onto the lightest bin (ties by fewest items, then lowest bin
// index). Pinned items charge their bin but do not move. The count
// tie-break makes equal-weight inputs degenerate to round-robin in key
// order. Returns the bin of each item, parallel to items.
func lptPack(items []lptItem, bins int) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := items[order[i]], items[order[j]]
		if a.weight != b.weight {
			return a.weight > b.weight
		}
		return a.key < b.key
	})
	load := make([]int64, bins)
	count := make([]int, bins)
	out := make([]int, len(items))
	for _, oi := range order {
		it := items[oi]
		b := it.pin
		if b < 0 {
			b = 0
			for j := 1; j < bins; j++ {
				if load[j] < load[b] || (load[j] == load[b] && count[j] < count[b]) {
					b = j
				}
			}
		}
		load[b] += it.weight
		count[b]++
		out[oi] = b
	}
	return out
}

// PlanHosts packs colocation groups onto hostShards sub-shards. Each
// group's weight is the sum of its members' weights (absent hosts weigh
// zero); a pin forces the whole group onto one sub-shard. Two colocated
// hosts pinned to different sub-shards are an error — their flows couple
// them synchronously, so they cannot be split.
func PlanHosts(groups [][]graph.NodeID, weights map[graph.NodeID]int64,
	pins map[graph.NodeID]int, hostShards int) (map[graph.NodeID]int, error) {

	if hostShards < 1 {
		return nil, fmt.Errorf("sim: PlanHosts with %d sub-shards", hostShards)
	}
	items := make([]lptItem, len(groups))
	for gi, g := range groups {
		it := lptItem{pin: -1}
		if len(g) == 0 {
			return nil, fmt.Errorf("sim: PlanHosts given an empty colocation group")
		}
		min := g[0]
		for _, h := range g {
			if h < min {
				min = h
			}
			it.weight += weights[h]
			if p, ok := pins[h]; ok {
				if p < 0 || p >= hostShards {
					return nil, fmt.Errorf("sim: host %d pinned to sub-shard %d, outside [0,%d)", h, p, hostShards)
				}
				if it.pin >= 0 && it.pin != p {
					return nil, fmt.Errorf("sim: colocated hosts pinned to sub-shards %d and %d; flow endpoints must share one sub-shard", it.pin, p)
				}
				it.pin = p
			}
		}
		it.key = int64(min)
		items[gi] = it
	}
	bins := lptPack(items, hostShards)
	out := make(map[graph.NodeID]int)
	for gi, g := range groups {
		for _, h := range g {
			out[h] = bins[gi]
		}
	}
	return out, nil
}

// PlanPlanes packs dataplanes onto plane shards by weight (expected event
// rate: measured occupancy, or aggregate capacity for a static plan). The
// weights map defines the plane set — include zero-weight planes. A pin
// forces a plane onto one shard.
func PlanPlanes(weights map[int32]int64, pins map[int32]int, shards int) (map[int32]int, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sim: PlanPlanes with %d shards", shards)
	}
	planes := make([]int32, 0, len(weights))
	for p := range weights {
		planes = append(planes, p)
	}
	sort.Slice(planes, func(i, j int) bool { return planes[i] < planes[j] })
	items := make([]lptItem, len(planes))
	for i, p := range planes {
		items[i] = lptItem{weight: weights[p], key: int64(p), pin: -1}
		if s, ok := pins[p]; ok {
			if s < 0 || s >= shards {
				return nil, fmt.Errorf("sim: plane %d pinned to shard %d, outside [0,%d)", p, s, shards)
			}
			items[i].pin = s
		}
	}
	bins := lptPack(items, shards)
	out := make(map[int32]int, len(planes))
	for i, p := range planes {
		out[p] = bins[i]
	}
	return out, nil
}

// PlaneLoadsFromCapacity returns per-plane weights proportional to each
// dataplane's aggregate link capacity — the static expected event rate of
// a heterogeneous P-Net, where a faster plane serializes more packets per
// unit time. Weights are milli-Gb/s so fractional link speeds stay exact.
func PlaneLoadsFromCapacity(g *graph.Graph) map[int32]int64 {
	out := map[int32]int64{}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		if l.Plane < 0 {
			continue
		}
		out[l.Plane] += int64(l.Capacity * 1000)
	}
	return out
}
