// Package exp implements one experiment per table and figure in the
// paper's evaluation. Each experiment builds its topologies, runs the LP
// (max-concurrent-flow) solver or the packet simulator, and renders the
// same rows/series the paper reports. The cmd/pnetbench harness and the
// repository's benchmark suite both call into this package.
//
// Experiments run at two scales: ScaleSmall (the default) shrinks host
// counts and flow sizes so every experiment finishes in seconds to
// minutes on a laptop; ScaleFull uses the paper's sizes (1024-host fat
// trees, 686-host Jellyfish, 100 GB shuffles) and can take hours, exactly
// like the original artifact. EXPERIMENTS.md records the mapping.
package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"pnet/internal/chaos"
	"pnet/internal/mcf"
	"pnet/internal/obs"
	"pnet/internal/par"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleSmall shrinks topologies and flow sizes for fast runs.
	ScaleSmall Scale = iota
	// ScaleFull uses the paper's published sizes.
	ScaleFull
)

func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "small"
}

// Params configures a run.
type Params struct {
	Scale Scale
	// Seed makes runs reproducible; experiments derive all randomness
	// from it.
	Seed int64
	// Obs, when non-nil, collects telemetry: packet-simulation
	// experiments attach tracers/samplers to every network they build,
	// and LP-backed experiments record solver instrumentation. Nil (the
	// default) costs nothing.
	Obs *obs.Collector
	// Chaos, when non-nil, overrides the built-in fault script of
	// fault-aware experiments (currently "faults"): each materializes it
	// against its own topology with Build. Parsed from pnetbench's
	// -chaos flag; other experiments ignore it.
	Chaos *chaos.Spec
	// Workers caps how many independent sweep cells run concurrently:
	// 0 uses every core (GOMAXPROCS), 1 forces the serial path. Results
	// are bit-identical at any value — each cell owns its sim engine and
	// RNG seed, and everything shared (the collector, per-graph caches)
	// aggregates commutatively.
	Workers int
	// Shards, when > 1, runs every packet simulation on the plane-sharded
	// PDES engine with that many plane shards (internal/pdes); Lookahead
	// overrides the conservative window span (0 = the propagation delay).
	// Orthogonal to Workers: shards parallelize inside one cell's engine,
	// workers parallelize across cells. Results are bit-identical at any
	// combination.
	Shards int
	// HostShards, when > 1 (and Shards > 1), additionally partitions the
	// host boundary of every sharded simulation into that many per-host
	// sub-shards (see sim.NewShardSet). Results stay bit-identical.
	HostShards int
	Lookahead  sim.Time
	// Placement selects how sharded simulations partition hosts and
	// planes (see workload.Placement; zero value = round-robin). Results
	// stay bit-identical at every placement.
	Placement workload.Placement
}

// cells fans an experiment's n independent cells out across p.Workers
// goroutines (further bounded by the process-wide par limit). A cell
// must derive all state from its index: its own topology or a shared
// read-only one, its own driver/engine/RNG, and per-index result slots.
func (p Params) cells(n int, fn func(i int)) { par.Do(n, p.Workers, fn) }

// newDriver builds a workload driver, instrumented when telemetry is on.
// Experiments must create drivers through this so every network a run
// touches reports to the same collector.
func (p Params) newDriver(tp *topo.Topology, simCfg sim.Config, tcpCfg tcp.Config) *workload.Driver {
	d := workload.NewDriver(tp, simCfg, tcpCfg)
	if p.Obs != nil {
		d.Instrument(p.Obs)
	}
	// After Instrument, so shard engines inherit the fingerprinter and
	// flight recorder; before any flow or timer exists.
	d.ShardPlaced(p.Shards, p.HostShards, p.Lookahead, p.Placement)
	return d
}

// recordSolver forwards one LP/flow-solver result to the collector.
func (p Params) recordSolver(expID, solver string, k int, r mcf.Result) {
	if p.Obs == nil {
		return
	}
	p.Obs.RecordSolver(obs.SolverRecord{
		Exp:        expID,
		Solver:     solver,
		K:          k,
		Lambda:     r.Lambda,
		Phases:     r.Stats.Phases,
		Iterations: r.Stats.Iterations,
		Attempts:   r.Stats.Attempts,
		WallSec:    r.Stats.Wall.Seconds(),
	})
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes around cells that
// contain commas or quotes), for piping into plotting tools — the role
// the original artifact's CSV intermediates played.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// JSON renders the table as a single JSON object, including the
// elapsed wall-clock seconds, for machine consumers of -format json.
func (t Table) JSON(elapsedSec float64) string {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	b, err := json.Marshal(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Note    string     `json:"note,omitempty"`
		Header  []string   `json:"header"`
		Rows    [][]string `json:"rows"`
		Elapsed float64    `json:"elapsed_s"`
	}{t.ID, t.Title, t.Note, t.Header, rows, elapsedSec})
	if err != nil {
		panic(err) // strings-only struct: cannot fail
	}
	return string(b)
}

// Experiment pairs an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) Table
}

var registry []Experiment

func register(id, title string, run func(Params) Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// f2 formats a float with two decimals; f3 with three.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// secs formats seconds with engineering-friendly precision.
func secs(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.3gs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3gms", v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%.3gus", v*1e6)
	default:
		return fmt.Sprintf("%.0fns", v*1e9)
	}
}

// meanStd returns mean and population standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std /= float64(len(xs))
	return mean, math.Sqrt(std)
}
