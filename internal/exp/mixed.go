package exp

import (
	"fmt"

	"pnet/internal/metrics"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func init() {
	register("mixed", "Extension (§7): mixed fat-tree + expander P-Net with per-class plane choice", runMixed)
}

// runMixed builds a 4-plane P-Net whose plane 0 is a fat tree and planes
// 1-3 are expanders, then measures each class of traffic on each plane
// family: small RPCs (latency-bound) and permutation bulk transfers
// (throughput-bound). The §7 hypothesis: expanders serve latency traffic
// better (shorter paths), while the fat tree plane serves dense bulk
// traffic without expander path collisions.
func runMixed(p Params) Table {
	k := 8
	if p.Scale == ScaleFull {
		k = 14 // 686 hosts, matching the paper's Jellyfish scale
	}
	tp := topo.MixedPNet(k, 4, 100, p.Seed)

	t := Table{
		ID:    "mixed",
		Title: "Mixed-topology P-Net: per-class plane families (extension of paper §7)",
		Note: fmt.Sprintf("%d hosts; plane 0 = k=%d fat tree, planes 1-3 = expanders; "+
			"classes pin traffic to one family", tp.NumHosts(), k),
		Header: []string{"workload", "plane family", "median", "p99"},
	}

	mkDriver := func() *workload.Driver {
		d := p.newDriver(tp, sim.Config{}, tcp.Config{})
		if err := d.PNet.SetClass("fattree", []int{0}); err != nil {
			panic(err)
		}
		if err := d.PNet.SetClass("expander", []int{1, 2, 3}); err != nil {
			panic(err)
		}
		return d
	}

	// Small RPCs per family.
	for _, class := range []string{"fattree", "expander"} {
		d := mkDriver()
		samples, err := workload.RunRPC(d, workload.RPCConfig{
			ReqBytes: 1500, RespBytes: 1500,
			Rounds: 20, LoopsPerHost: 1,
			Sel:  workload.Selection{Policy: workload.ECMP, Class: class},
			Seed: p.Seed,
		})
		if err != nil {
			t.Rows = append(t.Rows, []string{"1500B RPC", class, "stall", ""})
			continue
		}
		s := metrics.Summarize(samples)
		t.Rows = append(t.Rows, []string{"1500B RPC", class, secs(s.Median), secs(s.P99)})
	}

	// Bulk permutation per family: one 10 MB flow per host.
	for _, class := range []string{"fattree", "expander"} {
		d := mkDriver()
		hosts := tp.Hosts
		// Per-flow slots: completions may fire concurrently (and out of
		// order) under host sub-sharding, and Summarize is order-sensitive.
		fcts := make([]float64, len(hosts))
		for h := range hosts {
			h := h
			dst := hosts[(h+len(hosts)/2)%len(hosts)]
			_, err := d.StartFlow(hosts[h], dst, 10_000_000,
				workload.Selection{Policy: workload.ECMP, Class: class}, nil,
				func(f *tcp.Flow) { fcts[h] = f.FCT().Seconds() })
			if err != nil {
				panic(err)
			}
		}
		if err := d.MustRunUntil(60*sim.Second, int64(len(hosts))); err != nil {
			t.Rows = append(t.Rows, []string{"10MB bulk", class, "stall", ""})
			continue
		}
		s := metrics.Summarize(fcts)
		t.Rows = append(t.Rows, []string{"10MB bulk", class, secs(s.Median), secs(s.P99)})
	}
	return t
}
