package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pnet/internal/obs"
)

// TestFig6cTelemetry is the acceptance path: running fig6c with a
// collector must yield Garg–Könemann solver records, a packet-level
// companion trace with enqueue and deliver events, and metric/trace
// streams where every line is valid JSON.
func TestFig6cTelemetry(t *testing.T) {
	var mbuf, tbuf bytes.Buffer
	c := obs.NewCollector()
	c.StreamMetrics(&mbuf)
	c.StreamTrace(&tbuf)

	e, ok := ByID("fig6c")
	if !ok {
		t.Fatal("fig6c not registered")
	}
	table := e.Run(Params{Seed: 1, Obs: c})
	if len(table.Rows) == 0 {
		t.Fatal("fig6c returned no rows")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Solver instrumentation: one record per (network, K) of the sweep,
	// with GK phase/iteration counts and wall time.
	if len(c.Solver) == 0 {
		t.Fatal("no solver records")
	}
	for _, r := range c.Solver {
		if r.Exp != "fig6c" || r.Solver != "gk-fixed" {
			t.Errorf("solver record = %+v", r)
		}
		if r.Phases <= 0 || r.Iterations <= 0 || r.Attempts <= 0 {
			t.Errorf("empty GK stats: %+v", r)
		}
		if r.WallSec <= 0 {
			t.Errorf("no wall time: %+v", r)
		}
	}

	// Companion packet run: flows recorded with plane choices.
	if len(c.Flows) == 0 {
		t.Fatal("no flow records from the companion run")
	}
	for _, f := range c.Flows {
		if f.FCT <= 0 || f.Bytes <= 0 || len(f.Planes) == 0 {
			t.Errorf("flow record = %+v", f)
		}
	}

	// Streams: every line valid JSON; trace covers enqueue and deliver.
	evs := map[string]int{}
	for _, line := range splitLines(tbuf.String()) {
		var rec struct {
			Type string `json:"type"`
			Ev   string `json:"ev"`
			TPs  int64  `json:"t_ps"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		evs[rec.Ev]++
	}
	if evs["enqueue"] == 0 || evs["deliver"] == 0 {
		t.Errorf("trace events = %v, want enqueue and deliver", evs)
	}
	solverLines := 0
	for _, line := range splitLines(mbuf.String()) {
		if !json.Valid([]byte(line)) {
			t.Fatalf("bad metrics line %q", line)
		}
		if strings.Contains(line, `"type":"solver"`) {
			solverLines++
		}
	}
	if solverLines != len(c.Solver) {
		t.Errorf("metrics stream has %d solver lines, want %d", solverLines, len(c.Solver))
	}
}

// TestParamsWithoutObs checks experiments run identically with telemetry
// off — the nil path every benchmark takes.
func TestParamsWithoutObs(t *testing.T) {
	e, _ := ByID("fig6c")
	table := e.Run(Params{Seed: 1})
	if len(table.Rows) == 0 {
		t.Fatal("fig6c returned no rows without a collector")
	}
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
