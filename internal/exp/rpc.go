package exp

import (
	"fmt"

	"pnet/internal/metrics"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/workload"
)

func init() {
	register("fig10", "1500B RPC completion time distribution, single-path routing", runFig10)
	register("table2", "1500B RPC completion statistics relative to serial low-bw", runTable2)
	register("fig11", "Concurrent 100kB RPC completion time vs concurrency", runFig11)
}

// rpcNets returns the four networks for the §5.2.1 experiments.
func rpcNets(p Params) []netUnderTest {
	sw, deg, hps := 24, 4, 4
	if p.Scale == ScaleFull {
		sw, deg, hps = 98, 7, 7
	}
	// Small RPCs use single-path routing; ECMP hashing spreads distinct
	// flows over shortest paths and planes (§5.2.1).
	sel := workload.Selection{Policy: workload.ECMP}
	return jellyfishNUT(sw, deg, hps, 4, 100, p.Seed, sel, sel)
}

// rpcSamples measures request completion times for every network, one
// concurrent cell per network; the name-keyed map is assembled after
// the join so cell completion order never shows.
func rpcSamples(p Params, reqBytes, respBytes int64, loops, rounds int) map[string][]float64 {
	nets := rpcNets(p)
	all := make([][]float64, len(nets))
	p.cells(len(nets), func(i int) {
		n := nets[i]
		d := p.newDriver(n.tp, sim.Config{}, tcp.Config{})
		// On error, keep what completed; the table will show the shortfall.
		samples, _ := workload.RunRPC(d, workload.RPCConfig{
			ReqBytes:     reqBytes,
			RespBytes:    respBytes,
			Rounds:       rounds,
			LoopsPerHost: loops,
			Sel:          n.sel,
			Seed:         p.Seed,
			Deadline:     120 * sim.Second,
		})
		all[i] = samples
	})
	out := make(map[string][]float64)
	for i, n := range nets {
		out[n.name] = all[i]
	}
	return out
}

func rpcRounds(p Params) int {
	if p.Scale == ScaleFull {
		return 1000 // the paper's 1000 rounds
	}
	return 50
}

func runFig10(p Params) Table {
	samples := rpcSamples(p, 1500, 1500, 1, rpcRounds(p))
	t := Table{
		ID:     "fig10",
		Title:  "1500B RPC request completion time (paper Fig. 10)",
		Note:   "ping-pong RPC on 4-plane Jellyfish, single-path routing; CDF probe points",
		Header: []string{"network", "p10", "p25", "median", "p75", "p90", "p99"},
	}
	for _, n := range rpcNets(p) {
		xs := samples[n.name]
		if len(xs) == 0 {
			t.Rows = append(t.Rows, []string{n.name, "stall"})
			continue
		}
		c := metrics.NewCDF(xs)
		t.Rows = append(t.Rows, []string{
			n.name,
			secs(c.Quantile(0.10)), secs(c.Quantile(0.25)), secs(c.Quantile(0.50)),
			secs(c.Quantile(0.75)), secs(c.Quantile(0.90)), secs(c.Quantile(0.99)),
		})
	}
	return t
}

func runTable2(p Params) Table {
	samples := rpcSamples(p, 1500, 1500, 1, rpcRounds(p))
	t := Table{
		ID:     "table2",
		Title:  "1500B RPC completion statistics vs serial low-bw (paper Table 2)",
		Header: []string{"network", "median", "average", "99%-tile"},
	}
	base, ok := samples["serial low-bw"]
	if !ok || len(base) == 0 {
		t.Rows = append(t.Rows, []string{"serial low-bw stalled", "", "", ""})
		return t
	}
	bs := metrics.Summarize(base)
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
	for _, n := range rpcNets(p) {
		xs := samples[n.name]
		if len(xs) == 0 {
			continue
		}
		r := metrics.Summarize(xs).Relative(bs)
		t.Rows = append(t.Rows, []string{n.name, pct(r.Median), pct(r.Mean), pct(r.P99)})
	}
	return t
}

func runFig11(p Params) Table {
	concurrencies := []int{1, 2, 4, 8}
	rounds := 5
	if p.Scale == ScaleFull {
		concurrencies = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		rounds = 20
	}
	t := Table{
		ID:     "fig11",
		Title:  "Concurrent 100kB RPC completion times (paper Fig. 11)",
		Note:   "closed-loop 100kB RPCs per host; median / p90 / p99 per concurrency level",
		Header: []string{"network", "concurrency", "median", "p90", "p99", "drops"},
	}
	// The (network, concurrency) grid is independent — each cell owns a
	// driver, so the whole grid runs concurrently into per-index rows.
	nets := rpcNets(p)
	rows := make([][]string, len(nets)*len(concurrencies))
	p.cells(len(rows), func(idx int) {
		n, conc := nets[idx/len(concurrencies)], concurrencies[idx%len(concurrencies)]
		d := p.newDriver(n.tp, sim.Config{}, tcp.Config{})
		samples, err := workload.RunRPC(d, workload.RPCConfig{
			ReqBytes:     100_000,
			RespBytes:    1500,
			Rounds:       rounds,
			LoopsPerHost: conc,
			Sel:          n.sel,
			Seed:         p.Seed,
			Deadline:     120 * sim.Second,
		})
		if err != nil || len(samples) == 0 {
			rows[idx] = []string{n.name, fmt.Sprint(conc), "stall", "", "", ""}
			return
		}
		s := metrics.Summarize(samples)
		rows[idx] = []string{
			n.name, fmt.Sprint(conc),
			secs(s.Median), secs(s.P90), secs(s.P99),
			fmt.Sprint(d.Net.TotalDrops()),
		}
	})
	t.Rows = append(t.Rows, rows...)
	return t
}
