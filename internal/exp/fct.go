package exp

import (
	"fmt"
	"math/rand"

	"pnet/internal/metrics"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/traces"
	"pnet/internal/workload"
)

func init() {
	register("fig9", "Small-flow FCT vs flow size (permutation, 4-plane Jellyfish)", runFig9)
	register("fig13a", "Flow size distributions of published DC traces", runFig13a)
	register("fig13b", "Datamining-trace FCT distribution on Jellyfish", func(p Params) Table {
		return runTraceFCT("fig13b", traces.DataMining, 100, "jellyfish", p)
	})
	register("fig13c", "Websearch-trace FCT distribution on Jellyfish", func(p Params) Table {
		return runTraceFCT("fig13c", traces.WebSearch, 100, "jellyfish", p)
	})
	register("figapp", "Appendix: trace FCTs across speeds and topologies (Figs. 16-20)", runFigAppendix)
}

// fctNets enumerates the four §5 network types for a Jellyfish
// configuration at the given base speed, with their paper-chosen routing.
type netUnderTest struct {
	name string
	tp   *topo.Topology
	sel  workload.Selection
}

// jellyfishNUT builds the four networks; parallel networks get `parallelSel`
// routing and serial ones `serialSel`.
func jellyfishNUT(sw, deg, hps, planes int, speed float64, seed int64, serialSel, parallelSel workload.Selection) []netUnderTest {
	set := topo.JellyfishSet(sw, deg, hps, planes, speed, seed)
	return []netUnderTest{
		{"serial low-bw", set.SerialLow, serialSel},
		{"parallel homogeneous", set.ParallelHomo, parallelSel},
		{"parallel heterogeneous", set.ParallelHetero, parallelSel},
		{"serial high-bw", set.SerialHigh, serialSel},
	}
}

func fatTreeNUT(k, planes int, speed float64, serialSel, parallelSel workload.Selection) []netUnderTest {
	set := topo.FatTreeSet(k, planes, speed)
	return []netUnderTest{
		{"serial low-bw", set.SerialLow, serialSel},
		{"parallel homogeneous", set.ParallelHomo, parallelSel},
		{"serial high-bw", set.SerialHigh, serialSel},
	}
}

// permutationFCT starts one flow of sizeBytes per host (random
// permutation) and returns mean FCT in seconds.
func permutationFCT(tp *topo.Topology, sel workload.Selection, sizeBytes int64, p Params) (float64, error) {
	d := p.newDriver(tp, sim.Config{}, tcp.Config{})
	rng := rand.New(rand.NewSource(p.Seed))
	cs := workload.PermutationCommodities(tp, 1, rng)
	// Completions land in per-flow slots: under host sub-sharding the
	// callbacks can fire concurrently (and in a different order), and the
	// float sum below is order-sensitive, so append-in-completion-order
	// would both race and change the mean's low bits.
	fcts := make([]float64, len(cs))
	for i, c := range cs {
		i := i
		_, err := d.StartFlow(c.Src, c.Dst, sizeBytes, sel, nil, func(f *tcp.Flow) {
			fcts[i] = f.FCT().Seconds()
		})
		if err != nil {
			return 0, err
		}
	}
	if err := d.MustRunUntil(120*sim.Second, int64(len(cs))); err != nil {
		return 0, err
	}
	return metrics.Mean(fcts), nil
}

func runFig9(p Params) Table {
	sw, deg, hps := 16, 4, 4
	sizes := []int64{100_000, 1_000_000, 10_000_000, 100_000_000}
	if p.Scale == ScaleFull {
		sw, deg, hps = 98, 7, 7
		sizes = append(sizes, 1_000_000_000)
	}
	// Paper: single-path is best for serial networks, 4-way KSP for the
	// 4-plane parallel networks.
	nets := jellyfishNUT(sw, deg, hps, 4, 100, p.Seed,
		workload.Selection{Policy: workload.ECMP},
		workload.Selection{Policy: workload.KSP, K: 4})

	t := Table{
		ID:    "fig9",
		Title: "Small flow FCT with varying flow sizes (paper Fig. 9)",
		Note: fmt.Sprintf("%d-host 4-plane Jellyfish, permutation; serial=single path, parallel=4-way KSP; mean FCT",
			sw*hps),
		Header: append([]string{"network"}, func() []string {
			h := make([]string, len(sizes))
			for i, s := range sizes {
				h[i] = byteLabel(s)
			}
			return h
		}()...),
	}
	// The (network, size) grid is fully independent: every cell builds
	// its own driver and RNG from p.Seed, so all cells run concurrently
	// into per-index slots.
	vals := make([]string, len(nets)*len(sizes))
	p.cells(len(vals), func(idx int) {
		n, size := nets[idx/len(sizes)], sizes[idx%len(sizes)]
		m, err := permutationFCT(n.tp, n.sel, size, p)
		if err != nil {
			vals[idx] = "stall"
			return
		}
		vals[idx] = secs(m)
	})
	for ni, n := range nets {
		row := append([]string{n.name}, vals[ni*len(sizes):(ni+1)*len(sizes)]...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

func byteLabel(b int64) string {
	switch {
	case b >= 1_000_000_000:
		return fmt.Sprintf("%dGB", b/1_000_000_000)
	case b >= 1_000_000:
		return fmt.Sprintf("%dMB", b/1_000_000)
	default:
		return fmt.Sprintf("%dkB", b/1_000)
	}
}

func runFig13a(Params) Table {
	t := Table{
		ID:     "fig13a",
		Title:  "Published DC flow size CDFs (paper Fig. 13a)",
		Note:   "embedded piecewise approximations of the published distributions",
		Header: []string{"trace", "P10", "P50", "P90", "P99", "mean"},
	}
	for _, c := range traces.All() {
		t.Rows = append(t.Rows, []string{
			c.Name,
			byteLabelF(c.Quantile(0.10)), byteLabelF(c.Quantile(0.50)),
			byteLabelF(c.Quantile(0.90)), byteLabelF(c.Quantile(0.99)),
			byteLabelF(c.MeanBytes()),
		})
	}
	return t
}

func byteLabelF(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.1fGB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1fMB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1fkB", b/1e3)
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// runTraceFCT implements fig13b/c and the appendix cells: closed-loop
// flows with sizes drawn from a published distribution, single-path
// routing, four concurrent flows per host.
func runTraceFCT(id string, cdf traces.SizeCDF, speed float64, topoKind string, p Params) Table {
	sw, deg, hps := 16, 4, 4
	flowsPerLoop := 4
	sizeCap := int64(20_000_000)
	if p.Scale == ScaleFull {
		sw, deg, hps = 98, 7, 7
		flowsPerLoop = 10
		sizeCap = 0
	}

	var nets []netUnderTest
	sel := workload.Selection{Policy: workload.ECMP}
	if topoKind == "fattree" {
		k := 6
		if p.Scale == ScaleFull {
			k = 14
		}
		nets = fatTreeNUT(k, 4, speed, sel, sel)
	} else {
		nets = jellyfishNUT(sw, deg, hps, 4, speed, p.Seed, sel, sel)
	}

	t := Table{
		ID:    id,
		Title: fmt.Sprintf("%s trace FCTs at %d/%dG on %s (paper Fig. 13/16-20)", cdf.Name, int(speed), int(speed)*4, topoKind),
		Note: fmt.Sprintf("closed loop, 4 flows/host, single-path routing, sizes from %s%s",
			cdf.Name, capNote(sizeCap)),
		Header: []string{"network", "median", "p90", "p99", "mean"},
	}
	// One cell per network: each owns a driver and a trace workload
	// seeded from p.Seed, so the four networks simulate concurrently.
	rows := make([][]string, len(nets))
	p.cells(len(nets), func(i int) {
		n := nets[i]
		d := p.newDriver(n.tp, sim.Config{}, tcp.Config{})
		res, err := workload.RunTrace(d, workload.TraceConfig{
			CDF:          cdf,
			LoopsPerHost: 4,
			FlowsPerLoop: flowsPerLoop,
			SizeCap:      sizeCap,
			Sel:          n.sel,
			Seed:         p.Seed,
			Deadline:     300 * sim.Second,
		})
		if err != nil {
			rows[i] = []string{n.name, "stall", "", "", ""}
			return
		}
		s := metrics.Summarize(res.FCTs)
		rows[i] = []string{n.name, secs(s.Median), secs(s.P90), secs(s.P99), secs(s.Mean)}
	})
	t.Rows = append(t.Rows, rows...)
	return t
}

func capNote(cap int64) string {
	if cap == 0 {
		return ""
	}
	return fmt.Sprintf(" (sizes capped at %s)", byteLabel(cap))
}

func runFigAppendix(p Params) Table {
	// Small scale: websearch + datamining at both speeds on Jellyfish
	// (the paper's representative pair); full scale: all five traces on
	// both topology families.
	cdfs := []traces.SizeCDF{traces.WebSearch, traces.DataMining}
	topos := []string{"jellyfish"}
	if p.Scale == ScaleFull {
		cdfs = traces.All()
		topos = []string{"fattree", "jellyfish"}
	}
	speeds := []float64{10, 100}

	out := Table{
		ID:     "figapp",
		Title:  "Appendix FCT sweep (paper Figs. 16-20)",
		Note:   "median/p99 FCT per network; rows = trace x speed x topology x network",
		Header: []string{"trace", "speed", "topology", "network", "median", "p99"},
	}
	// The outer sweep stays serial (rows must interleave in trace/speed/
	// topology order); each runTraceFCT fans its four networks out, and
	// nested calls degrade gracefully once the worker pool is saturated.
	for _, cdf := range cdfs {
		for _, sp := range speeds {
			for _, tk := range topos {
				sub := runTraceFCT("cell", cdf, sp, tk, p)
				for _, row := range sub.Rows {
					median, p99 := "stall", ""
					if len(row) >= 4 && row[1] != "stall" {
						median, p99 = row[1], row[3]
					}
					out.Rows = append(out.Rows, []string{
						cdf.Name, fmt.Sprintf("%d/%dG", int(sp), int(sp)*4), tk, row[0], median, p99,
					})
				}
			}
		}
	}
	return out
}
