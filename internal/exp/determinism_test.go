package exp

import (
	"fmt"
	"reflect"
	"testing"

	"pnet/internal/obs"
	"pnet/internal/par"
	"pnet/internal/report"
	"pnet/internal/workload"
)

// The parallel execution contract (DESIGN.md "Parallel execution"):
// every sweep cell owns its engine, RNG, and result slot, so tables and
// summaries are byte-identical at any worker count. These tests pin the
// contract at workers=1 (the serial fallback path, inline in par.Do)
// versus workers=8 (real goroutine fan-out even on one core).

// runAt runs one experiment with the process pool and per-run worker
// request both set to n, restoring the default pool afterwards.
func runAt(t *testing.T, id string, n int) Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	par.SetLimit(n)
	defer par.SetLimit(0)
	return e.Run(Params{Seed: 1, Workers: n})
}

// TestTablesWorkerInvariant renders each (cheap) experiment's table
// serially and at width 8 and requires the bytes to match. The set
// covers every parallelized cell shape: normalized baselines computed
// after the join (fig6b/fig6c/fig8c), 2-D grids with index dispatch
// (incast), name-keyed maps assembled post-join (fig10), per-variant
// chaos cells (faults), and scenario cells sharing a baseline
// (isolation is exercised via the cheaper fig14 path plus incast).
func TestTablesWorkerInvariant(t *testing.T) {
	for _, id := range []string{"fig6b", "fig6c", "fig8c", "fig10", "fig14", "incast", "faults"} {
		serial := runAt(t, id, 1).String()
		wide := runAt(t, id, 8).String()
		if serial != wide {
			t.Errorf("%s: table differs between -workers=1 and -workers=8\n--- serial ---\n%s\n--- workers=8 ---\n%s",
				id, serial, wide)
		}
	}
}

// TestSummaryWorkerInvariant runs fig6c — solver records, a packet-level
// companion run, link/plane/engine sampling — through the streaming
// Aggregator at both widths and requires every deterministic RunSummary
// field to match. Wall-clock fields are the only legitimate difference,
// so they are zeroed before comparing.
func TestSummaryWorkerInvariant(t *testing.T) {
	run := func(n int) report.RunSummary {
		par.SetLimit(n)
		defer par.SetLimit(0)
		c := obs.NewCollector()
		aggr := report.NewAggregator()
		c.Sink = aggr
		c.DropSamples = true
		e, _ := ByID("fig6c")
		e.Run(Params{Seed: 1, Workers: n, Obs: c})
		s := aggr.Summarize(c, report.Meta{Exp: "fig6c", Scale: "small", Seed: 1})
		// Wall time is the one quantity allowed to move with scheduling.
		s.Solver.WallSec = 0
		s.Engine.WallSec = 0
		s.Engine.EventsPerSec = 0
		s.Engine.RunWallSec = 0
		return s
	}
	serial := run(1)
	wide := run(8)
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("RunSummary differs between workers=1 and workers=8:\nserial: %+v\nwide:   %+v", serial, wide)
	}
	if serial.Flows == 0 || serial.Solver.Calls == 0 {
		t.Fatalf("summary is empty — the comparison proved nothing: %+v", serial)
	}
}

// TestSpansSummaryWorkerInvariant reruns the invariance check with the
// attribution spans and the event-loop flight recorder enabled. The
// attribution tables are integer-summed picoseconds, so they must be
// byte-identical at any worker count; the profile's event counts are
// deterministic too, while its wall-clock and pool-occupancy fields are
// the only quantities allowed to move with scheduling.
func TestSpansSummaryWorkerInvariant(t *testing.T) {
	run := func(n int) report.RunSummary {
		par.SetLimit(n)
		defer par.SetLimit(0)
		c := obs.NewCollector()
		c.Spans = true
		c.Profile = true
		aggr := report.NewAggregator()
		c.Sink = aggr
		c.DropSamples = true
		e, _ := ByID("fig6c")
		e.Run(Params{Seed: 1, Workers: n, Obs: c})
		s := aggr.Summarize(c, report.Meta{Exp: "fig6c", Scale: "small", Seed: 1})
		s.Solver.WallSec = 0
		s.Engine.WallSec = 0
		s.Engine.EventsPerSec = 0
		s.Engine.RunWallSec = 0
		if s.Profile != nil {
			s.Profile.WallSec = 0
			s.Profile.HostWallSec = 0
			s.Profile.SpeedupWallBound = 0
			s.Profile.PoolLimit, s.Profile.PoolPeak, s.Profile.PoolTasks = 0, 0, 0
			for i := range s.Profile.Bins {
				s.Profile.Bins[i].WallSec = 0
			}
			for i := range s.Profile.Planes {
				s.Profile.Planes[i].WallSec = 0
			}
		}
		return s
	}
	serial := run(1)
	wide := run(8)
	if serial.Attribution == nil || serial.Profile == nil {
		t.Fatalf("spans run produced no attribution/profile: %+v", serial)
	}
	if got, want := wide.AttributionString(), serial.AttributionString(); got != want {
		t.Errorf("attribution tables differ between workers=1 and workers=8:\n--- serial ---\n%s\n--- workers=8 ---\n%s", want, got)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("spans RunSummary differs between workers=1 and workers=8:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}

// TestFingerprintWorkerInvariant pins the determinism-fingerprint
// contract: the rolling hash chains folded over every fired event —
// global, host (timers), and per-plane — are identical at workers=1 and
// workers=8. The chains are order-sensitive within an engine, so this
// only holds because each sweep cell owns its engine; across engines the
// summary XOR-folds, which no attach order can disturb.
func TestFingerprintWorkerInvariant(t *testing.T) {
	run := func(n int) *report.FingerprintSummary {
		par.SetLimit(n)
		defer par.SetLimit(0)
		c := obs.NewCollector()
		c.Fingerprint = true
		aggr := report.NewAggregator()
		c.Sink = aggr
		c.DropSamples = true
		e, _ := ByID("fig6c")
		e.Run(Params{Seed: 1, Workers: n, Obs: c})
		s := aggr.Summarize(c, report.Meta{Exp: "fig6c", Scale: "small", Seed: 1})
		if s.Fingerprint == nil {
			t.Fatalf("workers=%d: summary has no fingerprint", n)
		}
		return s.Fingerprint
	}
	serial := run(1)
	wide := run(8)
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("fingerprints differ between workers=1 and workers=8:\nserial: %+v\nwide:   %+v", serial, wide)
	}
	if serial.Events == 0 || serial.Global == "0000000000000000" {
		t.Fatalf("fingerprint is empty — the comparison proved nothing: %+v", serial)
	}
}

// TestShardedFingerprintIdentical pins the plane-sharded PDES contract
// (DESIGN.md "Plane-sharded PDES"): running the same experiment on the
// sharded engine at any shard count reproduces the serial run byte for
// byte — the global, host, and per-plane fingerprint chains AND the full
// RunSummary (flows, drops, retransmits, fault timeline, everything).
// fig6c covers steady-state traffic across planes; faults adds timer
// cancellation, chaos injection, blackholes, and repathing mid-window.
func TestShardedFingerprintIdentical(t *testing.T) {
	run := func(id string, shards int) report.RunSummary {
		c := obs.NewCollector()
		c.Fingerprint = true
		aggr := report.NewAggregator()
		c.Sink = aggr
		c.DropSamples = true
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		e.Run(Params{Seed: 1, Workers: 1, Obs: c, Shards: shards})
		s := aggr.Summarize(c, report.Meta{Exp: id, Scale: "small", Seed: 1})
		// Wall time is the one quantity allowed to move with sharding.
		s.Solver.WallSec = 0
		s.Engine.WallSec = 0
		s.Engine.EventsPerSec = 0
		s.Engine.RunWallSec = 0
		return s
	}
	for _, id := range []string{"fig6c", "faults"} {
		serial := run(id, 0)
		if serial.Fingerprint == nil || serial.Fingerprint.Events == 0 ||
			serial.Fingerprint.Global == "0000000000000000" {
			t.Fatalf("%s: serial fingerprint is empty — the comparison proves nothing: %+v",
				id, serial.Fingerprint)
		}
		for _, shards := range []int{2, 4} {
			sharded := run(id, shards)
			if !reflect.DeepEqual(serial.Fingerprint, sharded.Fingerprint) {
				t.Errorf("%s: fingerprints differ between serial and shards=%d:\nserial:  %+v\nsharded: %+v",
					id, shards, serial.Fingerprint, sharded.Fingerprint)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Errorf("%s: RunSummary differs between serial and shards=%d:\nserial:  %+v\nsharded: %+v",
					id, shards, serial, sharded)
			}
		}
	}
}

// TestHostSubShardFingerprintIdentical extends the sharded-determinism
// contract to host sub-sharding (DESIGN.md "Host sub-sharding"): splitting
// the host boundary into H per-host sub-shards — which moves NIC delivers,
// TCP endpoint work, and in-window fn scheduling off the serial host shard
// and onto concurrently-running engines — must leave every deterministic
// output byte-identical to the serial run at any (shards, host-shards)
// combination. Same workloads as above: fig6c for steady traffic, faults
// for timer cancellation, chaos, blackholes, and mid-window repathing.
func TestHostSubShardFingerprintIdentical(t *testing.T) {
	run := func(id string, shards, hostShards int) report.RunSummary {
		c := obs.NewCollector()
		c.Fingerprint = true
		aggr := report.NewAggregator()
		c.Sink = aggr
		c.DropSamples = true
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		e.Run(Params{Seed: 1, Workers: 1, Obs: c, Shards: shards, HostShards: hostShards})
		s := aggr.Summarize(c, report.Meta{Exp: id, Scale: "small", Seed: 1})
		// Wall time is the one quantity allowed to move with sharding.
		s.Solver.WallSec = 0
		s.Engine.WallSec = 0
		s.Engine.EventsPerSec = 0
		s.Engine.RunWallSec = 0
		return s
	}
	for _, id := range []string{"fig6c", "faults"} {
		serial := run(id, 0, 0)
		if serial.Fingerprint == nil || serial.Fingerprint.Events == 0 ||
			serial.Fingerprint.Global == "0000000000000000" {
			t.Fatalf("%s: serial fingerprint is empty — the comparison proves nothing: %+v",
				id, serial.Fingerprint)
		}
		for _, shards := range []int{2, 4} {
			for _, hostShards := range []int{1, 2, 4} {
				sub := run(id, shards, hostShards)
				if !reflect.DeepEqual(serial.Fingerprint, sub.Fingerprint) {
					t.Errorf("%s: fingerprints differ between serial and shards=%d host-shards=%d:\nserial:     %+v\nsub-sharded: %+v",
						id, shards, hostShards, serial.Fingerprint, sub.Fingerprint)
				}
				if !reflect.DeepEqual(serial, sub) {
					t.Errorf("%s: RunSummary differs between serial and shards=%d host-shards=%d:\nserial:     %+v\nsub-sharded: %+v",
						id, shards, hostShards, serial, sub)
				}
			}
		}
	}
}

// TestPlacementInvariance is the placement-invariance property test
// (DESIGN.md "Load-balanced shard placement"): placement decides only
// which engine fires an event, never the committed order, so EVERY valid
// placement — the balanced LPT plan and seeded random scatters alike —
// must reproduce the serial run byte for byte: fingerprint chains AND
// the full RunSummary. fig6c covers steady traffic, faults adds timer
// cancellation, chaos, blackholes, and mid-window repathing.
func TestPlacementInvariance(t *testing.T) {
	run := func(id string, shards, hostShards int, place workload.Placement) report.RunSummary {
		c := obs.NewCollector()
		c.Fingerprint = true
		aggr := report.NewAggregator()
		c.Sink = aggr
		c.DropSamples = true
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		e.Run(Params{Seed: 1, Workers: 1, Obs: c, Shards: shards, HostShards: hostShards, Placement: place})
		s := aggr.Summarize(c, report.Meta{Exp: id, Scale: "small", Seed: 1})
		// Wall time is the one quantity allowed to move with placement.
		s.Solver.WallSec = 0
		s.Engine.WallSec = 0
		s.Engine.EventsPerSec = 0
		s.Engine.RunWallSec = 0
		return s
	}
	places := []workload.Placement{
		{Mode: workload.PlaceBalanced},
		{Mode: workload.PlaceSeeded, Seed: 1},
		{Mode: workload.PlaceSeeded, Seed: 2},
		{Mode: workload.PlaceSeeded, Seed: 3},
	}
	dimsList := [][2]int{{2, 2}, {4, 4}}
	if raceEnabled {
		// The full 2-exp × 2-dims × 4-placement matrix blows past go
		// test's timeout under the race detector; one dim pair and two
		// placements still exercise every concurrent placement path.
		places = places[:2]
		dimsList = dimsList[1:]
	}
	for _, id := range []string{"fig6c", "faults"} {
		serial := run(id, 0, 0, workload.Placement{})
		if serial.Fingerprint == nil || serial.Fingerprint.Events == 0 ||
			serial.Fingerprint.Global == "0000000000000000" {
			t.Fatalf("%s: serial fingerprint is empty — the comparison proves nothing: %+v",
				id, serial.Fingerprint)
		}
		for _, dims := range dimsList {
			for _, place := range places {
				placed := run(id, dims[0], dims[1], place)
				label := place.Mode
				if place.Mode == workload.PlaceSeeded {
					label = fmt.Sprintf("%s(%d)", place.Mode, place.Seed)
				}
				if !reflect.DeepEqual(serial.Fingerprint, placed.Fingerprint) {
					t.Errorf("%s: fingerprints differ between serial and shards=%d host-shards=%d placement=%s:\nserial: %+v\nplaced: %+v",
						id, dims[0], dims[1], label, serial.Fingerprint, placed.Fingerprint)
				}
				if !reflect.DeepEqual(serial, placed) {
					t.Errorf("%s: RunSummary differs between serial and shards=%d host-shards=%d placement=%s:\nserial: %+v\nplaced: %+v",
						id, dims[0], dims[1], label, serial, placed)
				}
			}
		}
	}
}
