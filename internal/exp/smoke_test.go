package exp

import (
	"strings"
	"testing"
)

// Smoke tests for the cheap experiments: each must produce a well-formed
// table with the expected networks/rows. The expensive packet-simulation
// experiments are exercised by the benchmark suite instead.

func TestDeployExperiment(t *testing.T) {
	e, _ := ByID("deploy")
	tab := e.Run(Params{Seed: 1})
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// Homogeneous bundling divides host cables by the plane count.
	if tab.Rows[0][2] == tab.Rows[1][2] {
		t.Error("bundling did not change host cable count")
	}
}

func TestFig14Experiment(t *testing.T) {
	e, _ := ByID("fig14")
	tab := e.Run(Params{Seed: 1})
	if len(tab.Rows) != 15 { // 3 networks x 5 failure fractions
		t.Fatalf("rows = %d, want 15", len(tab.Rows))
	}
	nets := map[string]bool{}
	for _, r := range tab.Rows {
		nets[r[0]] = true
	}
	for _, want := range []string{"serial", "parallel homogeneous", "parallel heterogeneous"} {
		if !nets[want] {
			t.Errorf("missing network %q", want)
		}
	}
}

func TestFig6bExperiment(t *testing.T) {
	e, _ := ByID("fig6b")
	tab := e.Run(Params{Seed: 1})
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The headline shape: serial high-bw reaches ~8x, parallel stays low.
	if lastCell := tab.Rows[4][1]; lastCell < "7" {
		t.Errorf("serial high-bw normalized throughput = %s, want ~8", lastCell)
	}
	if par8 := tab.Rows[3][1]; par8 >= "3" {
		t.Errorf("parallel 8x permutation = %s, want < 3 (ECMP can't exploit planes)", par8)
	}
}

func TestCSVOutput(t *testing.T) {
	tab := Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,y", `q"z`}, {"plain", "2"}},
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"x,y","q""z"` {
		t.Errorf("quoted row = %q", lines[1])
	}
	if lines[2] != "plain,2" {
		t.Errorf("plain row = %q", lines[2])
	}
}

func TestJfSizes(t *testing.T) {
	sw, deg, hps := jfSize(ScaleSmall)
	if sw*hps != 96 || deg != 4 {
		t.Errorf("small = %d/%d/%d", sw, deg, hps)
	}
	sw, deg, hps = jfSize(ScaleFull)
	if sw != 98 || deg != 7 || hps != 7 || sw*hps != 686 {
		t.Errorf("full = %d/%d/%d, want the paper's 686-host config", sw, deg, hps)
	}
	if ftArity(ScaleFull) != 16 {
		t.Error("full fat tree arity != 16")
	}
}
