package exp

import (
	"fmt"

	"pnet/internal/failure"
	"pnet/internal/topo"
)

func runFig14(p Params) Table {
	sw, deg, hps := jfSize(p.Scale)
	pairs, trials := 1000, 3
	if p.Scale == ScaleFull {
		pairs, trials = 5000, 5
	}
	set := topo.JellyfishSet(sw, deg, hps, 4, 100, p.Seed)
	cfg := failure.Config{
		Fractions: []float64{0, 0.1, 0.2, 0.3, 0.4},
		Pairs:     pairs,
		Trials:    trials,
		Seed:      p.Seed,
	}

	t := Table{
		ID:    "fig14",
		Title: "Average hop count across src/dst pairs under link failures (paper Fig. 14)",
		Note: fmt.Sprintf("%d-host Jellyfish, 4 planes for parallel networks; random inter-switch cable failures; "+
			"growth%% = increase over the network's own zero-failure hop count", sw*hps),
		Header: []string{"network", "fail%", "avg hops", "growth%", "unreachable%"},
	}
	nets := []struct {
		name string
		tp   *topo.Topology
	}{
		{"serial", set.SerialLow},
		{"parallel homogeneous", set.ParallelHomo},
		{"parallel heterogeneous", set.ParallelHetero},
	}
	for _, n := range nets {
		pts := failure.HopCountSweep(n.tp, cfg)
		base := pts[0].AvgHops
		for _, pt := range pts {
			t.Rows = append(t.Rows, []string{
				n.name,
				fmt.Sprintf("%.0f", pt.Fraction*100),
				f3(pt.AvgHops),
				fmt.Sprintf("%+.1f", (pt.AvgHops/base-1)*100),
				fmt.Sprintf("%.2f", pt.Unreachable*100),
			})
		}
	}
	return t
}
