package exp

import (
	"fmt"
	"math"

	"pnet/internal/chaos"
	"pnet/internal/core"
	"pnet/internal/graph"
	"pnet/internal/obs"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

func init() {
	register("faults", "Extension (§3.4): runtime plane outage — detection, failover, recovery", runFaults)
}

// faultsCfg sizes one faults run. The registered experiment derives it
// from the scale; tests shrink it further through runFaultsWith.
type faultsCfg struct {
	faultAt sim.Time // default plane-0 outage injection time
	runDur  sim.Time
	window  sim.Time // goodput timeline bucket
	flows   int
	netID   int // tags fault records when several networks share a collector
}

// faultsMetrics is one network's measured ride through the outage.
type faultsMetrics struct {
	preBps      float64  // goodput before the fault
	dipFrac     float64  // deepest relative goodput loss after it
	detectLat   sim.Time // injection → monitor verdict (-1: never detected)
	failoverLat sim.Time // verdict → first subflow repath (-1: never)
	recovery    sim.Time // injection → goodput back at ≥90% of preBps (-1: never)
	postFrac    float64  // goodput over the final windows, relative to preBps
	blackholed  int64
}

func (m faultsMetrics) row(name string) []string {
	lat := func(t sim.Time) string {
		if t < 0 {
			return "-"
		}
		return secs(t.Seconds())
	}
	return []string{
		name,
		fmt.Sprintf("%.1f", m.preBps/1e9),
		fmt.Sprintf("%.0f%%", m.dipFrac*100),
		lat(m.detectLat),
		lat(m.failoverLat),
		lat(m.recovery),
		fmt.Sprintf("%.0f%%", m.postFrac*100),
		fmt.Sprintf("%d", m.blackholed),
	}
}

// runFaults rides the paper's network types through the same mid-run
// dataplane outage. The serial baseline has nowhere to fail over to and
// never recovers; the parallel P-Nets detect the outage from probe
// silence (no oracle), repath the stalled flows onto surviving planes,
// and return to their pre-fault goodput — the §3.4 fault tolerance
// argument made measurable.
func runFaults(p Params) Table {
	cfg := faultsCfg{
		faultAt: 6 * sim.Millisecond,
		runDur:  30 * sim.Millisecond,
		window:  sim.Millisecond,
		flows:   4,
	}
	ftK, jfSw, speed := 4, 8, 40.0
	if p.Scale == ScaleFull {
		cfg = faultsCfg{
			faultAt: 20 * sim.Millisecond,
			runDur:  80 * sim.Millisecond,
			window:  2 * sim.Millisecond,
			flows:   16,
		}
		ftK, jfSw, speed = 8, 32, 100.0
	}
	ft := topo.FatTreeSet(ftK, 2, speed)
	jf := topo.ScaledJellyfish(jfSw, 2, speed, p.Seed)

	script := fmt.Sprintf("plane 0 dies at t=%s and stays down", secs(cfg.faultAt.Seconds()))
	if p.Chaos != nil {
		script = fmt.Sprintf("chaos script %q", p.Chaos)
	}
	t := Table{
		ID:    "faults",
		Title: "Runtime plane outage: detection, failover, recovery (extension of paper §3.4)",
		Note: fmt.Sprintf("%s; probe-based detection, "+
			"stall-driven repathing; goodput over %s windows",
			script, secs(cfg.window.Seconds())),
		Header: []string{"network", "pre Gbit/s", "dip", "detect", "failover", "recovery", "post", "blackholed"},
	}
	variants := []struct {
		name string
		tp   *topo.Topology
	}{
		{"serial", ft.SerialLow},
		{"parallel homogeneous", ft.ParallelHomo},
		{"parallel heterogeneous", jf.ParallelHetero},
	}
	// The variants are independent cells: each owns a distinct topology
	// (the chaos injector mutates link state, so sharing a graph across
	// concurrent cells would race), its own engine, monitor, and
	// injector. cfg is copied per cell to carry the network ID.
	rows := make([][]string, len(variants))
	p.cells(len(variants), func(i int) {
		c := cfg
		c.netID = i
		rows[i] = runFaultsWith(p, variants[i].tp, c).row(variants[i].name)
	})
	t.Rows = append(t.Rows, rows...)
	return t
}

// runFaultsWith runs one network through the fault script and measures
// the full lifecycle. Flows are pinned round-robin across planes at
// start, so a plane-0 outage always hits a known share of the traffic;
// stalled subflows re-resolve through the driver's shortest-path
// default, which by then reflects the monitor's verdict.
func runFaultsWith(p Params, tp *topo.Topology, cfg faultsCfg) faultsMetrics {
	d := p.newDriver(tp, sim.Config{}, tcp.Config{StallRTOs: 1})

	// The fault script: the -chaos flag when given, otherwise a permanent
	// plane-0 outage at cfg.faultAt. Latency accounting is anchored at the
	// script's first injecting event.
	var sched chaos.Schedule
	if p.Chaos != nil {
		sched = p.Chaos.Build(tp.G, p.Seed)
	} else {
		sched.PlaneOutage(0, cfg.faultAt, 0)
	}
	faultAt := cfg.faultAt
	for _, e := range sched.Events {
		if e.Kind.Injecting() {
			faultAt = e.At
			break // events are time-sorted
		}
	}
	inj := chaos.NewInjector(d.Eng, d.Net, sched)
	inj.Obs = p.Obs
	inj.NetID = cfg.netID
	inj.Arm()

	m := faultsMetrics{detectLat: -1, failoverLat: -1, recovery: -1}
	var detectAt sim.Time = -1
	mon := core.NewHealthMonitor(d.Eng, d.Net, d.PNet, 0, 1, core.HealthConfig{Until: cfg.runDur})
	mon.OnChange = func(e core.PlaneEvent) {
		if !e.Up && detectAt < 0 {
			detectAt = e.At
			m.detectLat = e.At - faultAt
			if p.Obs != nil {
				p.Obs.RecordFault(obs.FaultRecord{
					Net: cfg.netID, TPs: int64(e.At), Event: "detect",
					Target:     fmt.Sprintf("plane:%d", e.Plane),
					Plane:      int32(e.Plane),
					LatencySec: m.detectLat.Seconds(),
				})
			}
		}
	}
	mon.Start()

	var firstRepath sim.Time = -1
	d.OnRepath = func(f *tcp.Flow, i int, to graph.Path) {
		if firstRepath >= 0 {
			return
		}
		firstRepath = d.Eng.Now()
		if detectAt >= 0 {
			m.failoverLat = firstRepath - detectAt
		}
		if p.Obs != nil {
			p.Obs.RecordFault(obs.FaultRecord{
				Net: cfg.netID, TPs: int64(firstRepath), Event: "failover",
				Target:     fmt.Sprintf("plane:%d", to.Plane(tp.G)),
				Plane:      to.Plane(tp.G),
				LatencySec: m.failoverLat.Seconds(),
			})
		}
	}

	// Long-lived flows between distinct host pairs, each pinned to plane
	// i%planes so every plane carries a deterministic share of the load.
	// Paths are chosen least-loaded-first over the KSP candidates (a
	// deterministic stand-in for a traffic-engineered assignment): the
	// pre-fault traffic must not share one bottleneck link, or the
	// timeline measures core contention instead of the outage — and the
	// post-fault refugees must spread over the surviving planes' cores
	// instead of piling onto one shortest path.
	used := map[graph.LinkID]int{}
	pick := func(cand []graph.Path) graph.Path {
		best, bestScore := cand[0], int(^uint(0)>>1)
		for _, c := range cand {
			s := 0
			for _, l := range c.Links {
				s += used[l]
			}
			if s < bestScore {
				best, bestScore = c, s
			}
		}
		for _, l := range best.Links {
			used[l]++
		}
		return best
	}

	hosts := tp.Hosts
	flows := make([]*tcp.Flow, 0, cfg.flows)
	for i := 0; i < cfg.flows; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+len(hosts)/2)%len(hosts)]
		cand := d.PNet.HighThroughputPaths(src, dst, 4*tp.Planes)
		if len(cand) == 0 {
			panic(fmt.Sprintf("exp: no paths %d->%d in %s", src, dst, tp.Name))
		}
		want := int32(i % tp.Planes)
		var inPlane []graph.Path
		for _, c := range cand {
			if c.Plane(tp.G) == want {
				inPlane = append(inPlane, c)
			}
		}
		if len(inPlane) == 0 {
			inPlane = cand
		}
		f, err := d.StartFlowOnPaths([]graph.Path{pick(inPlane)}, 1<<40, nil, nil)
		if err != nil {
			panic(err)
		}
		// Stalled flows re-resolve with the same least-loaded rule over
		// whatever paths survive — HighThroughputPaths consults the
		// post-detection routing state, so the dead plane is excluded.
		f.Repath = func(fl *tcp.Flow, si int) (graph.Path, bool) {
			cur := fl.SubflowPath(si)
			cand := d.PNet.HighThroughputPaths(cur.Src(tp.G), cur.Dst(tp.G), 4*tp.Planes)
			if len(cand) == 0 {
				return graph.Path{}, false
			}
			return pick(cand), true
		}
		flows = append(flows, f)
	}

	// Goodput timeline: delivered packets per window across all flows.
	nw := int(cfg.runDur / cfg.window)
	wins := make([]float64, nw)
	var prev int64
	for w := 1; w <= nw; w++ {
		w := w
		d.Eng.At(sim.Time(w)*cfg.window, func() {
			var tot int64
			for _, f := range flows {
				tot += f.DeliveredPkts()
			}
			wins[w-1] = float64(tot - prev)
			prev = tot
		})
	}
	d.RunUntil(cfg.runDur + sim.Microsecond)

	// Reduce the timeline. Window indices: [0, faultIdx) are clean
	// pre-fault windows (skip window 0, the slow-start ramp), faultIdx
	// straddles the injection, and everything after is post-fault.
	faultIdx := int(faultAt / cfg.window)
	pktBits := 1500 * 8.0
	toBps := pktBits / cfg.window.Seconds()

	pre, n := 0.0, 0
	for w := 1; w < faultIdx && w < nw; w++ {
		pre += wins[w]
		n++
	}
	if n > 0 {
		pre /= float64(n)
	}
	m.preBps = pre * toBps

	minWin := math.Inf(1)
	for w := faultIdx + 1; w < nw; w++ {
		if wins[w] < minWin {
			minWin = wins[w]
		}
		if m.recovery < 0 && pre > 0 && wins[w] >= 0.9*pre {
			m.recovery = sim.Time(w+1)*cfg.window - faultAt
		}
	}
	if pre > 0 && !math.IsInf(minWin, 1) {
		m.dipFrac = math.Max(0, 1-minWin/pre)
	}

	post, n := 0.0, 0
	for w := nw - nw/4; w < nw; w++ {
		post += wins[w]
		n++
	}
	if n > 0 && pre > 0 {
		m.postFrac = post / float64(n) / pre
	}
	m.blackholed = d.Net.TotalBlackholed()

	if m.recovery >= 0 && p.Obs != nil {
		p.Obs.RecordFault(obs.FaultRecord{
			Net: cfg.netID, TPs: int64(faultAt + m.recovery), Event: "recover",
			Target:     "plane:0",
			Plane:      0,
			LatencySec: m.recovery.Seconds(),
			DipFrac:    m.dipFrac,
		})
	}
	return m
}
