package exp

import (
	"strings"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/topo"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"deploy", "faults", "fig10", "fig11", "fig12", "fig13a", "fig13b", "fig13c",
		"fig14", "fig6a", "fig6b", "fig6c", "fig7", "fig8a", "fig8b",
		"fig8c", "fig9", "figapp", "incast", "isolation", "mixed", "table1", "table2",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1"); !ok {
		t.Error("table1 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("found nonexistent experiment")
	}
}

func TestTableString(t *testing.T) {
	tab := Table{
		ID: "x", Title: "test", Note: "a note",
		Header: []string{"col", "value"},
		Rows:   [][]string{{"row1", "1.0"}, {"longer-row", "2.0"}},
	}
	s := tab.String()
	for _, want := range []string{"== x: test ==", "a note", "col", "longer-row"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestTable1Experiment(t *testing.T) {
	e, _ := ByID("table1")
	tab := e.Run(Params{})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Spot-check the paper's numbers.
	if tab.Rows[0][3] != "3584" || tab.Rows[2][3] != "1536" {
		t.Errorf("chip counts wrong: %v", tab.Rows)
	}
}

func TestFig13aExperiment(t *testing.T) {
	e, _ := ByID("fig13a")
	tab := e.Run(Params{})
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 traces", len(tab.Rows))
	}
}

func TestByteLabels(t *testing.T) {
	cases := map[int64]string{
		100_000:       "100kB",
		10_000_000:    "10MB",
		1_000_000_000: "1GB",
	}
	for b, want := range cases {
		if got := byteLabel(b); got != want {
			t.Errorf("byteLabel(%d) = %q, want %q", b, got, want)
		}
	}
	if got := byteLabelF(1.5e3); got != "1.5kB" {
		t.Errorf("byteLabelF = %q", got)
	}
	if got := secs(0.000_002); got != "2us" {
		t.Errorf("secs = %q", got)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s < 1.99 || s > 2.01 {
		t.Errorf("std = %v, want 2", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd not zero")
	}
}

// TestSpliceKSPMatchesDirect verifies that the ToR-splicing optimization
// produces the same path lengths (and valid paths) as the direct
// per-commodity KSP computation.
func TestSpliceKSPMatchesDirect(t *testing.T) {
	set := topo.JellyfishSet(10, 3, 2, 2, 100, 5)
	tp := set.ParallelHetero
	sp := newSpliceKSP(tp, 6, 1)

	pairs := [][2]graph.NodeID{
		{tp.Hosts[0], tp.Hosts[19]},
		{tp.Hosts[3], tp.Hosts[11]},
		{tp.Hosts[0], tp.Hosts[1]}, // same rack
	}
	for _, pair := range pairs {
		spliced := sp.paths(pair[0], pair[1])
		direct := route.KSPPaths(tp.G, []route.Commodity{{Src: pair[0], Dst: pair[1], Demand: 1}}, 6)[0]
		if len(spliced) == 0 {
			t.Fatalf("no spliced paths for %v", pair)
		}
		for i, p := range spliced {
			if !p.Valid(tp.G) {
				t.Fatalf("spliced path %d invalid for %v", i, pair)
			}
			if p.Src(tp.G) != pair[0] || p.Dst(tp.G) != pair[1] {
				t.Fatalf("spliced path %d endpoints wrong", i)
			}
		}
		// Multisets of lengths must agree for the shared prefix length.
		n := len(spliced)
		if len(direct) < n {
			n = len(direct)
		}
		sl := lengths(spliced[:n])
		dl := lengths(direct[:n])
		for i := range sl {
			if sl[i] != dl[i] {
				t.Errorf("pair %v: spliced lengths %v != direct %v", pair, sl, dl)
				break
			}
		}
	}
}

func lengths(ps []graph.Path) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.Len()
	}
	// lengths are already sorted by construction; normalize anyway
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestScaleString(t *testing.T) {
	if ScaleSmall.String() != "small" || ScaleFull.String() != "full" {
		t.Error("scale strings wrong")
	}
}
