package exp

import (
	"fmt"
	"math/rand"

	"pnet/internal/core"
	"pnet/internal/metrics"
	"pnet/internal/ndp"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

// Extension experiments: beyond the paper's published figures, these
// exercise the directions the paper sketches in §6.5 (incast with an
// incast-aware transport) and §7 (performance isolation via plane
// assignment). They are part of this reproduction's "future work
// implemented" scope — see DESIGN.md §6 and EXPERIMENTS.md.

func init() {
	register("incast", "Extension (§6.5): incast completion time, TCP vs DCTCP, serial vs parallel", runIncast)
	register("isolation", "Extension (§7): tenant isolation via plane assignment", runIsolation)
	register("deploy", "Extension (§6.1): physical deployment plan with bundling and patch panels", runDeploy)
}

func runIncast(p Params) Table {
	sw, deg, hps := 16, 4, 4
	fanIns := []int{8, 16, 32}
	if p.Scale == ScaleFull {
		sw, deg, hps = 98, 7, 7
		fanIns = []int{8, 16, 32, 64, 128}
	}
	set := topo.JellyfishSet(sw, deg, hps, 4, 100, p.Seed)

	type variant struct {
		name   string
		tp     *topo.Topology
		simCfg sim.Config
		tcpCfg tcp.Config
	}
	ecn := sim.Config{ECNThresholdBytes: 30 * 1500} // DCTCP K=30 packets
	variants := []variant{
		{"serial low-bw / TCP", set.SerialLow, sim.Config{}, tcp.Config{}},
		{"parallel homo / TCP", set.ParallelHomo, sim.Config{}, tcp.Config{}},
		{"serial low-bw / DCTCP", set.SerialLow, ecn, tcp.Config{DCTCP: true}},
		{"parallel homo / DCTCP", set.ParallelHomo, ecn, tcp.Config{DCTCP: true}},
	}

	t := Table{
		ID:    "incast",
		Title: "Incast completion time (extension of paper §6.5)",
		Note: fmt.Sprintf("%d-host Jellyfish; fan-in senders each ship 256kB to one receiver; "+
			"median across rounds; ECMP single-path spreads P-Net fan-in over 4 planes; "+
			"NDP sprays per-packet with trimming", sw*hps),
		Header: []string{"variant", "fan-in", "median ICT", "p99 ICT", "drops", "retransmits"},
	}
	// One cell per (variant, fan-in) plus one NDP cell per fan-in; the
	// variants share read-only topologies, every cell owns its engine.
	tcpRows := make([][]string, len(variants)*len(fanIns))
	ndpRows := make([][]string, len(fanIns))
	p.cells(len(tcpRows)+len(ndpRows), func(idx int) {
		if idx >= len(tcpRows) {
			fan := fanIns[idx-len(tcpRows)]
			ndpRows[idx-len(tcpRows)] = ndpIncast(set.ParallelHomo, fan, p)
			return
		}
		v, fan := variants[idx/len(fanIns)], fanIns[idx%len(fanIns)]
		d := p.newDriver(v.tp, v.simCfg, v.tcpCfg)
		res, err := workload.RunIncast(d, workload.IncastConfig{
			FanIn:      fan,
			BlockBytes: 256_000,
			Rounds:     7,
			Sel:        workload.Selection{Policy: workload.ECMP},
			Seed:       p.Seed,
		})
		if err != nil {
			tcpRows[idx] = []string{v.name, fmt.Sprint(fan), "stall", "", "", ""}
			return
		}
		s := metrics.Summarize(res.CompletionTimes)
		tcpRows[idx] = []string{
			v.name, fmt.Sprint(fan),
			secs(s.Median), secs(s.P99),
			fmt.Sprint(res.Drops), fmt.Sprint(res.Retransmits),
		}
	})
	t.Rows = append(t.Rows, tcpRows...)
	t.Rows = append(t.Rows, ndpRows...)
	return t
}

// ndpIncast runs the NDP variant: 8-packet queues with trimming, each
// response sprayed over 4 cross-plane shortest paths.
func ndpIncast(tp *topo.Topology, fanIn int, p Params) []string {
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, tp.G, sim.Config{
		QueueBytes:  8 * 1500,
		TrimToBytes: 64,
	})
	if p.Obs != nil {
		p.Obs.AttachNetwork(eng, net)
	}
	pn := core.New(tp)
	rng := rand.New(rand.NewSource(p.Seed))
	var times []float64
	const rounds = 7
	for round := 0; round < rounds; round++ {
		perm := rng.Perm(tp.NumHosts())
		receiver := tp.Hosts[perm[0]]
		t0 := eng.Now()
		remaining := fanIn
		stalled := false
		for _, s := range perm[1 : 1+fanIn] {
			paths := pn.HighThroughputPaths(tp.Hosts[s], receiver, 4)
			f, err := ndp.NewFlow(net, ndp.Config{}, paths, 256_000)
			if err != nil {
				stalled = true
				break
			}
			f.OnComplete = func(*ndp.Flow) { remaining-- }
			f.Start()
		}
		if stalled {
			break
		}
		for remaining > 0 && eng.Now() < 10*sim.Second {
			if !eng.Step() {
				break
			}
		}
		if remaining > 0 {
			break
		}
		times = append(times, (eng.Now() - t0).Seconds())
	}
	if len(times) < rounds {
		return []string{"parallel homo / NDP", fmt.Sprint(fanIn), "stall", "", "", ""}
	}
	s := metrics.Summarize(times)
	return []string{
		"parallel homo / NDP", fmt.Sprint(fanIn),
		secs(s.Median), secs(s.P99),
		fmt.Sprint(net.TotalDrops()), "-",
	}
}

func runIsolation(p Params) Table {
	sw, deg, hps := 12, 4, 4
	bulkHosts, rounds := 16, 8
	if p.Scale == ScaleFull {
		sw, deg, hps = 98, 7, 7
		bulkHosts, rounds = 128, 50
	}
	set := topo.JellyfishSet(sw, deg, hps, 4, 100, p.Seed)
	tp := set.ParallelHomo

	// Latency tenant: ping-pong RPCs across all hosts. Bulk tenant:
	// closed-loop 10 MB flows from a subset of hosts. Compare the RPC
	// tail with and without plane isolation, and against an unloaded
	// network.
	runRPC := func(d *workload.Driver, sel workload.Selection) metrics.Summary {
		samples, _ := workload.RunRPC(d, workload.RPCConfig{
			ReqBytes: 1500, RespBytes: 1500,
			Rounds: rounds, LoopsPerHost: 1,
			Sel:      sel,
			Seed:     p.Seed,
			Deadline: sim.Second,
		})
		return metrics.Summarize(samples)
	}
	startBulk := func(d *workload.Driver, sel workload.Selection) {
		hosts := d.PNet.Topo.Hosts
		for h := 0; h < bulkHosts; h++ {
			for l := 0; l < 2; l++ {
				dst := (h + 7 + l) % len(hosts)
				if dst == h {
					dst = (dst + 1) % len(hosts)
				}
				var loop func()
				src, dstN := hosts[h], hosts[dst]
				loop = func() {
					_, err := d.StartFlow(src, dstN, 10_000_000, sel, nil, func(*tcp.Flow) { loop() })
					if err != nil {
						panic(err)
					}
				}
				loop()
			}
		}
	}

	t := Table{
		ID:    "isolation",
		Title: "Performance isolation by plane assignment (extension of paper §7)",
		Note: fmt.Sprintf("%d-host 4-plane Jellyfish; bulk tenant = 2x10MB closed loops per host; "+
			"latency tenant = 1500B RPCs", sw*hps),
		Header: []string{"scenario", "rpc median", "rpc p99", "vs unloaded p99"},
	}

	// Three independent scenario cells against the shared read-only
	// topology; the "vs unloaded" column needs the baseline's P99, so
	// rows are assembled after the join.
	scenarios := make([]metrics.Summary, 3)
	p.cells(3, func(i int) {
		switch i {
		case 0: // baseline: unloaded network
			d := p.newDriver(tp, sim.Config{}, tcp.Config{})
			scenarios[0] = runRPC(d, workload.Selection{Policy: workload.ECMP})
		case 1: // shared: both tenants over all four planes
			d := p.newDriver(tp, sim.Config{}, tcp.Config{})
			startBulk(d, workload.Selection{Policy: workload.ECMP})
			scenarios[1] = runRPC(d, workload.Selection{Policy: workload.ECMP})
		case 2: // isolated: bulk pinned to planes {0,1}, RPCs to {2,3}
			d := p.newDriver(tp, sim.Config{}, tcp.Config{})
			if err := d.PNet.SetClass("bulk", []int{0, 1}); err != nil {
				panic(err)
			}
			if err := d.PNet.SetClass("latency", []int{2, 3}); err != nil {
				panic(err)
			}
			startBulk(d, workload.Selection{Policy: workload.ECMP, Class: "bulk"})
			scenarios[2] = runRPC(d, workload.Selection{Policy: workload.ECMP, Class: "latency"})
		}
	})
	base, shared, iso := scenarios[0], scenarios[1], scenarios[2]
	t.Rows = append(t.Rows, []string{"unloaded", secs(base.Median), secs(base.P99), f2(1.0)})
	t.Rows = append(t.Rows, []string{"shared planes", secs(shared.Median), secs(shared.P99), f2(shared.P99 / base.P99)})
	t.Rows = append(t.Rows, []string{"isolated planes", secs(iso.Median), secs(iso.P99), f2(iso.P99 / base.P99)})
	return t
}

func runDeploy(p Params) Table {
	sw, deg, hps := jfSize(p.Scale)
	planes := 4
	homo := topo.JellyfishSet(sw, deg, hps, planes, 100, p.Seed).ParallelHomo
	hetero := topo.JellyfishSet(sw, deg, hps, planes, 100, p.Seed).ParallelHetero

	t := Table{
		ID:    "deploy",
		Title: "Deployment plans under §6.1 optimizations",
		Note:  fmt.Sprintf("%d-host 4-plane Jellyfish; duplex cable counts", sw*hps),
		Header: []string{"network", "options", "host cables", "core cables",
			"panel ports", "boxes", "transceivers"},
	}
	add := func(name string, tp *topo.Topology, opts topo.DeployOptions, label string) {
		d := topo.PlanDeployment(tp, opts)
		t.Rows = append(t.Rows, []string{
			name, label,
			fmt.Sprint(d.HostCables), fmt.Sprint(d.CoreCables),
			fmt.Sprint(d.PatchPanelPorts), fmt.Sprint(d.SwitchBoxes),
			fmt.Sprint(d.Transceivers),
		})
	}
	add("homogeneous", homo, topo.DeployOptions{}, "naive")
	add("homogeneous", homo, topo.DeployOptions{Bundle: true}, "bundled")
	add("heterogeneous", hetero, topo.DeployOptions{}, "naive")
	add("heterogeneous", hetero, topo.DeployOptions{Bundle: true}, "bundled (no panel)")
	add("heterogeneous", hetero, topo.DeployOptions{Bundle: true, PatchPanel: true}, "bundled + panel")
	return t
}
