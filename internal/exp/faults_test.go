package exp

import (
	"testing"

	"pnet/internal/chaos"
	"pnet/internal/obs"
	"pnet/internal/sim"
	"pnet/internal/topo"
)

// faultsTestCfg is the small-scale sizing used by runFaults, reused here
// so the acceptance numbers match what `pnetbench -exp faults` prints.
func faultsTestCfg() faultsCfg {
	return faultsCfg{
		faultAt: 6 * sim.Millisecond,
		runDur:  30 * sim.Millisecond,
		window:  sim.Millisecond,
		flows:   4,
	}
}

// TestFaultsAcceptance pins the ISSUE acceptance scenario on the
// homogeneous P-Net: a plane outage at t=T blackholes packets, the
// monitor detects it with positive latency, and goodput on the surviving
// plane recovers to at least 90% of the pre-fault level.
func TestFaultsAcceptance(t *testing.T) {
	tp := topo.FatTreeSet(4, 2, 40).ParallelHomo
	m := runFaultsWith(Params{Seed: 1}, tp, faultsTestCfg())

	if m.blackholed == 0 {
		t.Error("outage blackholed no packets")
	}
	if m.detectLat <= 0 {
		t.Errorf("detection latency = %v, want positive", m.detectLat)
	}
	if m.failoverLat <= 0 {
		t.Errorf("failover latency = %v, want positive", m.failoverLat)
	}
	if m.recovery < 0 {
		t.Fatal("goodput never recovered on the surviving plane")
	}
	if m.postFrac < 0.9 {
		t.Errorf("post-recovery goodput = %.0f%% of pre-fault, want >= 90%%", m.postFrac*100)
	}
	if m.dipFrac < 0.25 {
		t.Errorf("dip = %.0f%%, want a visible outage (>= 25%%)", m.dipFrac*100)
	}
}

// TestFaultsSerialNeverRecovers pins the contrast the experiment exists
// to show: the serial baseline has no surviving plane.
func TestFaultsSerialNeverRecovers(t *testing.T) {
	tp := topo.FatTreeSet(4, 2, 40).SerialLow
	m := runFaultsWith(Params{Seed: 1}, tp, faultsTestCfg())
	if m.recovery >= 0 {
		t.Errorf("serial network recovered in %v with no plane to fail over to", m.recovery)
	}
	if m.dipFrac < 0.99 {
		t.Errorf("serial dip = %.0f%%, want total loss", m.dipFrac*100)
	}
	if m.detectLat <= 0 {
		t.Error("even a serial network should detect the outage")
	}
}

// TestFaultsDeterministic runs the same configuration twice: every
// measured quantity must be bit-identical for a fixed seed.
func TestFaultsDeterministic(t *testing.T) {
	// A fresh topology per run: the health monitor's MarkPlaneDown is
	// deliberately sticky on the graph, so reusing one would leak the
	// first run's verdict into the second.
	a := runFaultsWith(Params{Seed: 7}, topo.FatTreeSet(4, 2, 40).ParallelHomo, faultsTestCfg())
	b := runFaultsWith(Params{Seed: 7}, topo.FatTreeSet(4, 2, 40).ParallelHomo, faultsTestCfg())
	if a != b {
		t.Errorf("same-seed runs differ:\n  %+v\n  %+v", a, b)
	}
}

// TestFaultsChaosSpecOverride drives the experiment through a parsed
// -chaos script instead of the built-in outage, including a transient
// fault that clears mid-run.
func TestFaultsChaosSpecOverride(t *testing.T) {
	spec, err := chaos.ParseSpec("plane:0@4ms+10ms")
	if err != nil {
		t.Fatal(err)
	}
	tp := topo.FatTreeSet(4, 2, 40).ParallelHomo
	m := runFaultsWith(Params{Seed: 1, Chaos: spec}, tp, faultsTestCfg())
	if m.blackholed == 0 {
		t.Error("scripted outage blackholed nothing")
	}
	// Latency accounting anchors at the script's injection time (4ms),
	// not the default 6ms: detection is a few probe intervals, far less
	// than the 2ms anchor error would be.
	if m.detectLat <= 0 || m.detectLat > sim.Millisecond {
		t.Errorf("detect latency = %v, want ~3 probe intervals from the 4ms injection", m.detectLat)
	}
}

// TestFaultsRecordsTelemetry checks the experiment's fault lifecycle
// lands in the collector: inject from the injector, detect/failover/
// recover from the measurements.
func TestFaultsRecordsTelemetry(t *testing.T) {
	c := obs.NewCollector()
	tp := topo.FatTreeSet(4, 2, 40).ParallelHomo
	runFaultsWith(Params{Seed: 1, Obs: c}, tp, faultsTestCfg())
	events := map[string]int{}
	for _, f := range c.Faults {
		events[f.Event]++
	}
	for _, want := range []string{"inject", "detect", "failover", "recover"} {
		if events[want] == 0 {
			t.Errorf("no %q fault record; got %v", want, events)
		}
	}
}

// TestFaultsTable checks the registered experiment's shape without
// re-running the packet sims at full small-scale size: three networks,
// eight measured columns.
func TestFaultsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale faults table in -short mode")
	}
	e, ok := ByID("faults")
	if !ok {
		t.Fatal("faults experiment not registered")
	}
	tab := e.Run(Params{Seed: 1})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want serial + homo + hetero", len(tab.Rows))
	}
	if len(tab.Header) != 8 {
		t.Fatalf("header = %v", tab.Header)
	}
	names := map[string]bool{}
	for _, r := range tab.Rows {
		names[r[0]] = true
	}
	for _, want := range []string{"serial", "parallel homogeneous", "parallel heterogeneous"} {
		if !names[want] {
			t.Errorf("missing network %q", want)
		}
	}
}
