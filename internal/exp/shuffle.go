package exp

import (
	"fmt"

	"pnet/internal/metrics"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/workload"
)

func init() {
	register("fig12", "Hadoop-like shuffle per-worker completion time per stage", runFig12)
	register("fig14", "Average hop count under random link failures", runFig14) // defined in misc.go
}

func runFig12(p Params) Table {
	// The paper sorts 100 GB across 32 mappers + 32 reducers on a
	// 250-host cluster with 128 MB blocks. Small scale keeps the shape
	// (workers ≈ 1/4 of hosts, ~16 blocks per mapper, shuffle flows a
	// block-sized fraction) at 1/64 the bytes.
	sw, deg, hps := 16, 4, 4
	cfg := workload.ShuffleConfig{
		Mappers: 8, Reducers: 8,
		TotalBytes:  512 << 20, // 512 MB
		BlockBytes:  8 << 20,   // 8 MB
		Concurrency: 4,
		Sel:         workload.Selection{Policy: workload.ECMP},
		Seed:        p.Seed,
		Deadline:    300 * sim.Second,
	}
	if p.Scale == ScaleFull {
		sw, deg, hps = 64, 7, 4 // 256 hosts ≈ the paper's 250-host cluster
		cfg.Mappers, cfg.Reducers = 32, 32
		cfg.TotalBytes = 100 << 30
		cfg.BlockBytes = 128 << 20
	}

	sel := cfg.Sel
	nets := jellyfishNUT(sw, deg, hps, 4, 100, p.Seed, sel, sel)

	t := Table{
		ID:    "fig12",
		Title: "Simulated Hadoop-like workload per-worker completion times (paper Fig. 12)",
		Note: fmt.Sprintf("%d hosts, %d mappers + %d reducers, %s total, %s blocks, single-path routing",
			sw*hps, cfg.Mappers, cfg.Reducers, byteLabel(cfg.TotalBytes), byteLabel(cfg.BlockBytes)),
		Header: []string{"network", "stage", "median", "p90", "max"},
	}
	for _, n := range nets {
		d := p.newDriver(n.tp, sim.Config{}, tcp.Config{})
		times, err := workload.RunShuffle(d, cfg)
		if err != nil {
			t.Rows = append(t.Rows, []string{n.name, "stall", "", "", ""})
			continue
		}
		for _, st := range []struct {
			name string
			xs   []float64
		}{
			{"1 read input", times.Read},
			{"2 shuffle", times.Shuffle},
			{"3 write output", times.Write},
		} {
			s := metrics.Summarize(st.xs)
			t.Rows = append(t.Rows, []string{n.name, st.name, secs(s.Median), secs(s.P90), secs(s.Max)})
		}
	}
	return t
}
