//go:build race

package exp

// raceEnabled mirrors the race build tag so heavyweight matrix tests can
// shrink themselves under the ~10-20x race-detector slowdown.
const raceEnabled = true
