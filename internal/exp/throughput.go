package exp

import (
	"fmt"
	"math/rand"
	"time"

	"pnet/internal/graph"
	"pnet/internal/mcf"
	"pnet/internal/route"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func init() {
	register("table1", "Component counts for serial, chassis, and 8x parallel fat trees (8192 hosts)", runTable1)
	register("fig6a", "Fat tree all-to-all throughput under ECMP vs number of planes", runFig6a)
	register("fig6b", "Fat tree permutation throughput under ECMP vs number of planes", runFig6b)
	register("fig6c", "Fat tree permutation throughput vs multipath degree (MPTCP+KSP)", runFig6c)
	register("fig7", "Jellyfish rack-level all-to-all ideal throughput (no path constraint)", runFig7)
	register("fig8a", "Jellyfish all-to-all throughput under 8-way KSP vs number of planes", runFig8a)
	register("fig8b", "Jellyfish permutation throughput under 8-way KSP vs number of planes", runFig8b)
	register("fig8c", "Jellyfish permutation throughput vs multipath degree", runFig8c)
}

func runTable1(Params) Table {
	rows := topo.Table1()
	t := Table{
		ID:     "table1",
		Title:  "Component counts (paper Table 1)",
		Header: []string{"architecture", "tiers", "hops", "chips", "boxes", "links"},
	}
	names := []string{"Serial (scale-out)", "Serial chassis", "Parallel 8x"}
	for i, r := range rows {
		t.Rows = append(t.Rows, []string{
			names[i],
			fmt.Sprint(r.Tiers), fmt.Sprint(r.Hops), fmt.Sprint(r.Chips),
			fmt.Sprint(r.Boxes), fmt.Sprintf("%.1fk", float64(r.Links)/1000),
		})
	}
	return t
}

// ftArity returns the fat tree arity per scale: k=8 (128 hosts) small,
// k=16 (1024 hosts, the paper's size) full.
func ftArity(s Scale) int {
	if s == ScaleFull {
		return 16
	}
	return 8
}

// jfSize returns the Jellyfish sizing per scale: (switches, netDegree,
// hostsPerSwitch). Full scale is the paper's 686-host 98x(7+7)
// configuration; small keeps the 50/50 port split at 24 switches.
func jfSize(s Scale) (sw, deg, hps int) {
	if s == ScaleFull {
		return 98, 7, 7
	}
	return 24, 4, 4
}

const trialCount = 3 // the paper repeats each experiment >= 5 times; we default to 3

// ecmpThroughput measures the achieved total throughput under per-flow
// ECMP: every commodity is pinned to its hash-selected path and rates are
// allocated max-min fairly (what a fair transport converges to on fixed
// routes). Commodities carry zero demand, i.e. rates are network-limited.
func ecmpThroughput(tp *topo.Topology, cs []route.Commodity, seed uint64) float64 {
	paths := route.ECMPPaths(tp.G, cs, seed)
	return mcf.MaxMinPinned(tp.G, cs, paths).Total
}

// runECMPFigure runs fig6a/fig6b: a traffic pattern under ECMP across
// plane counts, normalized to the serial low-bandwidth network.
func runECMPFigure(id, title string, p Params, pattern func(*topo.Topology, *rand.Rand) []route.Commodity) Table {
	k := ftArity(p.Scale)
	planeCounts := []int{2, 4, 8}

	measure := func(tp *topo.Topology, trial int64) float64 {
		rng := rand.New(rand.NewSource(p.Seed + trial))
		cs := pattern(tp, rng)
		return ecmpThroughput(tp, cs, uint64(p.Seed+trial*7919))
	}
	trials := func(tp *topo.Topology) (mean, std float64) {
		var vals []float64
		for trial := int64(0); trial < trialCount; trial++ {
			vals = append(vals, measure(tp, trial))
		}
		return meanStd(vals)
	}

	// Every network is an independent cell: it builds its own topology
	// and derives all randomness from (p.Seed, trial), so the cells can
	// run concurrently and the stats land in per-cell slots.
	type cell struct {
		name  string
		build func() *topo.Topology
	}
	cells := []cell{
		{"serial low-bw (1x100G)", func() *topo.Topology { return topo.FatTreeSet(k, 8, 100).SerialLow }},
	}
	for _, n := range planeCounts {
		cells = append(cells, cell{
			fmt.Sprintf("parallel %dx100G", n),
			func() *topo.Topology { return topo.FatTreeSet(k, n, 100).ParallelHomo },
		})
	}
	cells = append(cells, cell{
		"serial high-bw (1x800G)",
		func() *topo.Topology { return topo.FatTreeSet(k, 8, 100).SerialHigh },
	})

	type stat struct{ mean, std float64 }
	stats := make([]stat, len(cells))
	p.cells(len(cells), func(i int) {
		m, s := trials(cells[i].build())
		stats[i] = stat{m, s}
	})
	base := stats[0].mean

	t := Table{
		ID: id, Title: title,
		Note:   fmt.Sprintf("k=%d fat tree (%d hosts), ECMP single path per flow; normalized to serial low-bw", k, k*k*k/4),
		Header: []string{"network", "throughput(norm)", "stddev"},
	}
	t.Rows = append(t.Rows, []string{cells[0].name, f2(1.0), f2(0)})
	for i := 1; i < len(cells); i++ {
		t.Rows = append(t.Rows, []string{cells[i].name, f2(stats[i].mean / base), f2(stats[i].std / base)})
	}
	return t
}

func runFig6a(p Params) Table {
	return runECMPFigure("fig6a", "All-to-all throughput, ECMP (paper Fig. 6a)", p,
		func(tp *topo.Topology, _ *rand.Rand) []route.Commodity {
			return workload.AllToAllCommodities(tp, 0) // network-limited rates
		})
}

func runFig6b(p Params) Table {
	return runECMPFigure("fig6b", "Permutation throughput, ECMP (paper Fig. 6b)", p,
		func(tp *topo.Topology, rng *rand.Rand) []route.Commodity {
			return workload.PermutationCommodities(tp, 0, rng) // network-limited
		})
}

// kspSweep measures permutation throughput across multipath degrees. The
// K-path sets are prefixes of the K=maxK set, so Yen runs once per pair.
// rec, when non-nil, observes every solver result (for telemetry).
func kspSweep(tp *topo.Topology, cs []route.Commodity, ks []int, eps float64, seed int64, rec func(k int, r mcf.Result)) []float64 {
	maxK := ks[len(ks)-1]
	full := route.KSPPathsSeeded(tp.G, cs, maxK, seed)
	out := make([]float64, len(ks))
	for i, k := range ks {
		paths := make([][]graph.Path, len(full))
		for j, ps := range full {
			if len(ps) > k {
				ps = ps[:k]
			}
			paths[j] = ps
		}
		r := mcf.FixedPaths(tp.G, cs, paths, mcf.Options{Epsilon: eps})
		if rec != nil {
			rec(k, r)
		}
		out[i] = r.Lambda
	}
	return out
}

func runFig6c(p Params) Table {
	k := ftArity(p.Scale)
	ks := []int{1, 2, 4, 8, 16, 32}
	nets := []struct {
		name   string
		planes int
		pick   func(topo.NetworkSet) *topo.Topology
	}{
		{"serial low-bw", 1, func(s topo.NetworkSet) *topo.Topology { return s.SerialLow }},
		{"parallel 2x", 2, func(s topo.NetworkSet) *topo.Topology { return s.ParallelHomo }},
		{"parallel 4x", 4, func(s topo.NetworkSet) *topo.Topology { return s.ParallelHomo }},
	}
	if p.Scale == ScaleFull {
		nets = append(nets, struct {
			name   string
			planes int
			pick   func(topo.NetworkSet) *topo.Topology
		}{"parallel 8x", 8, func(s topo.NetworkSet) *topo.Topology { return s.ParallelHomo }})
	}

	t := Table{
		ID:    "fig6c",
		Title: "Single-path vs multi-path permutation throughput (paper Fig. 6c)",
		Note: fmt.Sprintf("k=%d fat tree, MPTCP+KSP; normalized to saturated serial low-bw; "+
			"circled point = first K reaching 95%% of the plane count", k),
		Header: append([]string{"network"}, func() []string {
			h := make([]string, len(ks))
			for i, kk := range ks {
				h[i] = fmt.Sprintf("K=%d", kk)
			}
			return h
		}()...),
	}

	// The permutation RNG is shared across networks, so commodity
	// generation must stay in serial net order; the expensive KSP+LP
	// sweeps are then independent per network and fan out.
	rng := rand.New(rand.NewSource(p.Seed))
	type prep struct {
		tp *topo.Topology
		cs []route.Commodity
	}
	preps := make([]prep, len(nets))
	for i, net := range nets {
		tp := net.pick(topo.FatTreeSet(k, net.planes, 100))
		preps[i] = prep{tp, workload.PermutationCommodities(tp, 100, rng)}
	}
	allVals := make([][]float64, len(nets))
	p.cells(len(nets), func(i int) {
		allVals[i] = kspSweep(preps[i].tp, preps[i].cs, ks, 0.08, p.Seed, func(k int, r mcf.Result) {
			p.recordSolver("fig6c", "gk-fixed", k, r)
		})
	})

	var base float64
	for i, net := range nets {
		if net.planes == 1 {
			base = allVals[i][len(allVals[i])-1] // saturated serial low-bw
		}
	}
	for i, net := range nets {
		vals := allVals[i]
		row := []string{net.name}
		circled := false
		for _, v := range vals {
			norm := v / base
			cell := f2(norm)
			if !circled && norm >= 0.95*float64(net.planes) {
				cell += "*"
				circled = true
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	companionFig6c(p)
	return t
}

// companionFig6c runs a small packet-level permutation alongside the
// LP sweep when telemetry is enabled, so `-trace`/`-metrics` capture a
// real packet lifecycle (queue depths, enqueue/deliver events, per-flow
// FCTs) for this figure. The LP itself never moves packets.
func companionFig6c(p Params) {
	if p.Obs == nil {
		return
	}
	tp := topo.FatTreeSet(4, 2, 100).ParallelHomo // 16 hosts, 2 planes: cheap
	d := p.newDriver(tp, sim.Config{}, tcp.Config{})
	rng := rand.New(rand.NewSource(p.Seed))
	cs := workload.PermutationCommodities(tp, 1, rng)
	sel := workload.Selection{Policy: workload.KSP, K: 4}
	for _, c := range cs {
		if _, err := d.StartFlow(c.Src, c.Dst, 1_000_000, sel, nil, nil); err != nil {
			return
		}
	}
	_ = d.MustRunUntil(10*sim.Second, int64(len(cs)))
}

func runFig7(p Params) Table {
	sw, deg, hps := jfSize(p.Scale)
	planeCounts := []int{2, 4, 8}
	eps := 0.08

	ideal := func(tp *topo.Topology) float64 {
		g, cs := workload.RackAllToAll(tp, 10)
		r := mcf.Free(g, cs, mcf.Options{Epsilon: eps})
		p.recordSolver("fig7", "gk-free", 0, r)
		return r.Lambda
	}

	// Topology construction is cheap and shares the seed, so it stays
	// serial; the GK solves — one per network — fan out as cells.
	baseSet := topo.JellyfishSet(sw, deg, hps, 2, 100, p.Seed)
	tops := []*topo.Topology{baseSet.SerialLow}
	for _, n := range planeCounts {
		set := topo.JellyfishSet(sw, deg, hps, n, 100, p.Seed)
		tops = append(tops, set.SerialHigh, set.ParallelHetero)
	}
	vals := make([]float64, len(tops))
	p.cells(len(tops), func(i int) { vals[i] = ideal(tops[i]) })
	base := vals[0]

	t := Table{
		ID:    "fig7",
		Title: "Ideal rack-level all-to-all throughput on Jellyfish (paper Fig. 7)",
		Note: fmt.Sprintf("%d racks, degree %d; no path constraint (network-core capacity); "+
			"normalized to serial low-bw", sw, deg),
		Header: []string{"network", "planes", "throughput(norm)", "vs serial high"},
	}
	t.Rows = append(t.Rows, []string{"serial low-bw", "1", f2(1.0), ""})
	for i, n := range planeCounts {
		high, het := vals[1+2*i], vals[2+2*i]
		t.Rows = append(t.Rows, []string{"serial high-bw", fmt.Sprintf("(%dx speed)", n), f2(high / base), f2(1.0)})
		t.Rows = append(t.Rows, []string{"parallel heterogeneous", fmt.Sprint(n), f2(het / base), f2(het / high)})
	}
	companionFig7(p)
	return t
}

// companionFig7 runs a small packet-level permutation on a 2-plane
// Jellyfish when the run asked for event-loop profiling, so `pnetstat
// profile` has a Jellyfish data point next to the fat-tree one — the LP
// in runFig7 never moves a packet. It attaches ONLY the flight recorder
// (Collector.AttachProfile): no sampler, tracer, or flow records, so
// every deterministic metric of the run's summary is byte-identical to
// a run without the companion.
func companionFig7(p Params) {
	if p.Obs == nil || !p.Obs.Profile {
		return
	}
	sw, deg, hps := jfSize(ScaleSmall) // always small: a profile sample, not a result
	set := topo.JellyfishSet(sw, deg, hps, 2, 100, p.Seed)
	tp := set.ParallelHetero
	d := workload.NewDriver(tp, sim.Config{}, tcp.Config{})
	p.Obs.AttachProfile(d.Eng, d.Net)
	// The driver is deliberately not Instrumented (see above), so shard
	// after the profile attach and time the run by hand: run_wall_s is a
	// wall-clock field, free to record without touching gated metrics.
	d.ShardPlaced(p.Shards, p.HostShards, p.Lookahead, p.Placement)
	defer d.Close()
	rng := rand.New(rand.NewSource(p.Seed))
	// A matching, not a uniform derangement: each flow colocates its two
	// endpoints onto one host sub-shard, so a derangement's giant
	// permutation cycle (~2/3 of the hosts in one colocation group here)
	// would pin most of the host boundary to a single sub-shard no matter
	// the placement. Pairs keep every colocation group at two hosts —
	// load the sub-shard split and the placement planner can actually
	// move.
	cs := workload.MatchingCommodities(tp, 1, rng)
	sel := workload.Selection{Policy: workload.KSP, K: 4}
	for _, c := range cs {
		if _, err := d.StartFlow(c.Src, c.Dst, 1_000_000, sel, nil, nil); err != nil {
			return
		}
	}
	start := time.Now()
	_ = d.MustRunUntil(10*sim.Second, int64(len(cs)))
	p.Obs.AddRunWall(time.Since(start))
}

// spliceKSP computes host-to-host K-shortest path sets for many
// commodities cheaply by running Yen between ToR pairs once per plane and
// splicing host uplinks/downlinks on. Exact for host-level KSP because a
// host's first and last hop are forced on every plane.
type spliceKSP struct {
	tp    *topo.Topology
	k     int
	seed  int64
	masks [][]bool                  // shared per-graph cache, indexed by plane
	cache map[[3]int64][]graph.Path // (torSrc, torDst, plane) -> switch paths
}

func newSpliceKSP(tp *topo.Topology, k int, seed int64) *spliceKSP {
	return &spliceKSP{tp: tp, k: k, seed: seed, masks: tp.G.PlaneMasks(), cache: map[[3]int64][]graph.Path{}}
}

func (s *spliceKSP) torPaths(torSrc, torDst graph.NodeID, plane int32) []graph.Path {
	key := [3]int64{int64(torSrc), int64(torDst), int64(plane)}
	if ps, ok := s.cache[key]; ok {
		return ps
	}
	var ps []graph.Path
	if torSrc != torDst {
		var mask []bool
		if int(plane) < len(s.masks) {
			mask = s.masks[plane]
		}
		// Overshoot so host-level tie shuffling samples from (nearly)
		// complete equal-length groups.
		ps = graph.KShortestPathsMasked(s.tp.G, torSrc, torDst, s.k+8, mask)
	}
	s.cache[key] = ps
	return ps
}

// paths returns up to k host-level paths for (src, dst), interleaved
// across planes by length.
func (s *spliceKSP) paths(src, dst graph.NodeID) []graph.Path {
	var all []graph.Path
	hs, hd := int(src), int(dst)
	for plane := 0; plane < s.tp.Planes; plane++ {
		up := s.tp.Uplinks[hs][plane]
		down := s.tp.Downlinks[hd][plane]
		torSrc := s.tp.ToR[hs][plane]
		torDst := s.tp.ToR[hd][plane]
		if torSrc == torDst {
			all = append(all, graph.Path{Links: []graph.LinkID{up, down}})
			continue
		}
		for _, mid := range s.torPaths(torSrc, torDst, int32(plane)) {
			links := make([]graph.LinkID, 0, len(mid.Links)+2)
			links = append(links, up)
			links = append(links, mid.Links...)
			links = append(links, down)
			all = append(all, graph.Path{Links: links})
		}
	}
	sortPathsByLen(all)
	rng := rand.New(rand.NewSource(s.seed + int64(src)*1_000_003 + int64(dst)))
	route.ShuffleTies(all, rng)
	all = route.InterleavePlanes(s.tp.G, all)
	if len(all) > s.k {
		all = all[:s.k]
	}
	return all
}

func sortPathsByLen(ps []graph.Path) {
	// insertion sort: path lists are short and mostly ordered
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Len() < ps[j-1].Len(); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// runJellyfishKSP runs fig8a/fig8b: a pattern routed over 8-way KSP.
func runJellyfishKSP(id, title string, p Params, allToAll bool) Table {
	sw, deg, hps := jfSize(p.Scale)
	const kWays = 8
	planeCounts := []int{2, 4, 8}
	eps := 0.08

	measure := func(tp *topo.Topology) float64 {
		var cs []route.Commodity
		if allToAll {
			cs = workload.AllToAllCommodities(tp, 100.0/float64(tp.NumHosts()-1))
		} else {
			rng := rand.New(rand.NewSource(p.Seed))
			cs = workload.PermutationCommodities(tp, 100, rng)
		}
		sp := newSpliceKSP(tp, kWays, p.Seed)
		paths := make([][]graph.Path, len(cs))
		for i, c := range cs {
			paths[i] = sp.paths(c.Src, c.Dst)
		}
		return mcf.FixedPaths(tp.G, cs, paths, mcf.Options{Epsilon: eps}).Lambda
	}

	// Each measure() cell builds its own RNG, splice cache, and solver
	// state against a read-only topology, so all networks run at once.
	baseSet := topo.JellyfishSet(sw, deg, hps, 2, 100, p.Seed)
	tops := []*topo.Topology{baseSet.SerialLow}
	for _, n := range planeCounts {
		set := topo.JellyfishSet(sw, deg, hps, n, 100, p.Seed)
		tops = append(tops, set.ParallelHomo, set.ParallelHetero)
	}
	tops = append(tops, baseSet.SerialHigh)
	vals := make([]float64, len(tops))
	p.cells(len(tops), func(i int) { vals[i] = measure(tops[i]) })
	base := vals[0]

	t := Table{
		ID: id, Title: title,
		Note: fmt.Sprintf("Jellyfish %dsw x (%d hosts + deg %d), default %d-way KSP; normalized to serial low-bw",
			sw, hps, deg, kWays),
		Header: []string{"network", "planes", "throughput(norm)"},
	}
	t.Rows = append(t.Rows, []string{"serial low-bw", "1", f2(1.0)})
	for i, n := range planeCounts {
		homo, het := vals[1+2*i], vals[2+2*i]
		t.Rows = append(t.Rows, []string{"parallel homogeneous", fmt.Sprint(n), f2(homo / base)})
		t.Rows = append(t.Rows, []string{"parallel heterogeneous", fmt.Sprint(n), f2(het / base)})
	}
	t.Rows = append(t.Rows, []string{"serial high-bw", "(2x speed)", f2(vals[len(vals)-1] / base)})
	return t
}

func runFig8a(p Params) Table {
	return runJellyfishKSP("fig8a", "All-to-all throughput, 8-way KSP (paper Fig. 8a)", p, true)
}

func runFig8b(p Params) Table {
	return runJellyfishKSP("fig8b", "Permutation throughput, 8-way KSP (paper Fig. 8b)", p, false)
}

func runFig8c(p Params) Table {
	sw, deg, hps := jfSize(p.Scale)
	ks := []int{1, 2, 4, 8, 16, 32}
	nets := []struct {
		name   string
		planes int
		hetero bool
	}{
		{"serial low-bw", 1, false},
		{"parallel homo 2x", 2, false},
		{"parallel homo 4x", 4, false},
		{"parallel hetero 4x", 4, true},
	}

	t := Table{
		ID:    "fig8c",
		Title: "Multipath performance scaling on Jellyfish (paper Fig. 8c)",
		Note:  "permutation traffic; normalized to saturated serial low-bw; * = first K at 95% of plane count",
		Header: append([]string{"network"}, func() []string {
			h := make([]string, len(ks))
			for i, kk := range ks {
				h[i] = fmt.Sprintf("K=%d", kk)
			}
			return h
		}()...),
	}

	// Unlike fig6c, each network cell seeds its own permutation RNG from
	// p.Seed, so the whole cell — topology, commodities, sweep — is
	// self-contained and cells run concurrently.
	allVals := make([][]float64, len(nets))
	p.cells(len(nets), func(i int) {
		net := nets[i]
		set := topo.JellyfishSet(sw, deg, hps, max(net.planes, 2), 100, p.Seed)
		tp := set.SerialLow
		if net.planes > 1 {
			if net.hetero {
				tp = set.ParallelHetero
			} else {
				tp = set.ParallelHomo
			}
		}
		rng := rand.New(rand.NewSource(p.Seed))
		cs := workload.PermutationCommodities(tp, 100, rng)
		allVals[i] = kspSweep(tp, cs, ks, 0.08, p.Seed, func(k int, r mcf.Result) {
			p.recordSolver("fig8c", "gk-fixed", k, r)
		})
	})

	var base float64
	for i, net := range nets {
		if net.planes == 1 {
			base = allVals[i][len(allVals[i])-1]
		}
	}
	for i, net := range nets {
		row := []string{net.name}
		circled := false
		for _, v := range allVals[i] {
			norm := v / base
			cell := f2(norm)
			if !circled && norm >= 0.95*float64(net.planes) {
				cell += "*"
				circled = true
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
