package obs

// This file is the single source of truth for every JSONL record shape
// the telemetry streams emit. internal/report decodes streams with these
// same structs, so a field added or renamed here changes writer and
// reader together — schema drift between the two is a compile error, not
// a silent mis-parse.
//
// Every line in a metrics stream carries a "type" discriminator (one of
// the Kind* constants); the packet-trace stream is all KindPacket lines.

import (
	"fmt"
	"strconv"

	"pnet/internal/sim"
)

// Record type discriminators, the "type" field of every JSONL line.
const (
	KindLink        = "link"
	KindPlane       = "plane"
	KindEngine      = "engine"
	KindFlow        = "flow"
	KindSolver      = "solver"
	KindMetric      = "metric"
	KindPacket      = "pkt"
	KindFault       = "fault"
	KindProfile     = "profile"
	KindFingerprint = "fp"
	KindFPEvent     = "fpev"
)

// LinkRecord is one active link's state at one sampling instant. Util is
// busy transmission time over the sampling interval; TxBytes and Drops
// are cumulative since the simulation started.
type LinkRecord struct {
	Type       string  `json:"type"` // "link"
	Net        int     `json:"net"`
	TPs        int64   `json:"t_ps"`
	Link       int64   `json:"link"`
	Plane      int32   `json:"plane"`
	QueueBytes int32   `json:"queue_bytes"`
	Util       float64 `json:"util"`
	TxBytes    int64   `json:"tx_bytes"`
	Drops      int64   `json:"drops"`
	Blackholed int64   `json:"blackholed,omitempty"`
}

// PlaneRecord is one dataplane's cumulative transmitted bytes at one
// sampling instant — the merged cross-plane view of §7's monitoring.
type PlaneRecord struct {
	Type    string `json:"type"` // "plane"
	Net     int    `json:"net"`
	TPs     int64  `json:"t_ps"`
	Plane   int32  `json:"plane"`
	TxBytes int64  `json:"tx_bytes"`
}

// EngineRecord is the event engine's state at one sampling instant:
// events fired and wall time since the previous sample, plus the current
// heap size.
type EngineRecord struct {
	Type     string `json:"type"` // "engine"
	Net      int    `json:"net"`
	TPs      int64  `json:"t_ps"`
	Events   uint64 `json:"events"`
	HeapLen  int    `json:"heap"`
	WallNano int64  `json:"wall_ns"`
}

// FlowRecord captures one completed transport flow.
type FlowRecord struct {
	Type string `json:"type"` // "flow"
	ID   int64  `json:"id"`
	// TPs is the sim time the flow completed, in picoseconds — with FCT
	// it anchors the flow's interval on a timeline (export-trace).
	TPs         int64   `json:"t_ps,omitempty"`
	Transport   string  `json:"transport"` // "tcp" | "ndp"
	Src         int64   `json:"src"`
	Dst         int64   `json:"dst"`
	Bytes       int64   `json:"bytes"`
	FCT         float64 `json:"fct_s"`
	Retransmits int64   `json:"retransmits"`
	Subflows    int     `json:"subflows"`
	// Planes lists the distinct dataplanes the flow's paths use — the
	// path/plane choice the paper's §7 monitoring must merge.
	Planes []int32 `json:"planes"`
	// Spans is the flow's FCT decomposition (latency attribution), present
	// only when the run enabled span recording. The ps durations sum to
	// the FCT exactly; carrying integer picoseconds (not float seconds)
	// keeps downstream aggregation order-independent and bit-exact.
	Spans []SpanShare `json:"spans,omitempty"`
}

// SpanShare is one (component, plane) cell of a flow's latency
// attribution. Plane is -1 for components not tied to a link (stalls,
// host waits).
type SpanShare struct {
	Component string `json:"c"`
	Plane     int32  `json:"plane"`
	Ps        int64  `json:"ps"`
}

// ValidSpanComponent reports whether name is a span component this
// schema version emits — the reader's defense against typo'd or
// future-version streams.
func ValidSpanComponent(name string) bool {
	_, ok := sim.ParseSpanComponent(name)
	return ok
}

// KindSubShard is the pseudo event kind of per-host-sub-shard occupancy
// profile records: Plane carries the sub-shard index instead of a
// dataplane, Events the events that sub-shard fired. It is not a
// sim.EventKind — readers must branch on it before ValidEventKind.
const KindSubShard = "subshard"

// KindHostLoad is the pseudo event kind of per-host delivery-count
// profile records: Plane carries the host node ID, Events the packets
// delivered to that host — the measured weights `pnetstat profile
// -emit-placement` exports. Like KindSubShard, not a sim.EventKind.
const KindHostLoad = "hostload"

// KindPlaneShard is the pseudo event kind of per-plane-shard occupancy
// profile records: Plane carries the plane-shard index, Events the
// events that shard fired — the plane-side imbalance telemetry. Like
// KindSubShard, not a sim.EventKind.
const KindPlaneShard = "planeshard"

// ProfileRecord is one (engine, event-kind, plane) bin of the event-loop
// flight recorder, written when the collector closes. Events is
// deterministic for a fixed seed; WallNano is not (it measures this
// run's host). LookaheadPs is the engine's conservative PDES lookahead
// (the network's host–ToR propagation delay), repeated on each of the
// engine's bins.
type ProfileRecord struct {
	Type        string `json:"type"` // "profile"
	Net         int    `json:"net"`
	Kind        string `json:"kind"`  // hop | deliver | tx | timer | subshard | hostload | planeshard
	Plane       int32  `json:"plane"` // -1 for timer (no plane); sub-shard index, host ID, or plane-shard index for the pseudo kinds
	Events      int64  `json:"events"`
	WallNano    int64  `json:"wall_ns"`
	LookaheadPs int64  `json:"lookahead_ps,omitempty"`
	// SimPs is the engine's sim time when snapshotted — the profiled
	// duration, repeated on each of the engine's bins.
	SimPs int64 `json:"sim_ps,omitempty"`
}

// ValidEventKind reports whether name is an event kind this schema
// version emits.
func ValidEventKind(name string) bool {
	_, ok := sim.ParseEventKind(name)
	return ok
}

// FingerprintRecord is one epoch checkpoint of an engine's determinism
// hash chain (internal/sim fingerprints), written when the collector
// closes. Hashes are rendered as 16-digit hex strings, not JSON numbers:
// uint64 values above 2^53 would be silently rounded by any consumer
// that parses them as float64. Net identifies the engine within this
// stream only — attach order is nondeterministic under workers > 1, so
// cross-run comparison pairs engines canonically by hash sequence (see
// internal/report divergence), never by Net.
type FingerprintRecord struct {
	Type   string `json:"type"` // "fp"
	Net    int    `json:"net"`
	Epoch  int64  `json:"epoch"`
	Events int64  `json:"events"` // cumulative events at this checkpoint
	TPs    int64  `json:"t_ps"`   // sim time of the last folded event
	// EpochEvents is the checkpoint cadence, repeated on every record so
	// a reader can validate two streams used the same cadence.
	EpochEvents int64       `json:"epoch_events"`
	Hash        string      `json:"hash"` // global chain, %016x
	Host        string      `json:"host"` // plane-less (timer) chain
	Planes      []PlaneHash `json:"planes,omitempty"`
	// Final marks the trailing partial checkpoint of an epoch still in
	// progress when the run ended.
	Final bool `json:"final,omitempty"`
}

// PlaneHash is one dataplane's chain value within a checkpoint.
type PlaneHash struct {
	Plane int32  `json:"plane"`
	Hash  string `json:"hash"`
}

// FingerprintEventRecord is one folded event of a fingerprint journal —
// the per-event stream a divergence re-run records so the first
// divergent event can be named exactly. I is the event's 0-based index
// within its epoch; Hash is the global chain after folding it.
type FingerprintEventRecord struct {
	Type  string `json:"type"` // "fpev"
	Net   int    `json:"net"`
	Epoch int64  `json:"epoch"`
	I     int64  `json:"i"`
	TPs   int64  `json:"t_ps"`
	Kind  string `json:"kind"`  // hop | deliver | tx | timer
	Plane int32  `json:"plane"` // -1 for timer (no plane)
	Link  int64  `json:"link"`  // -1 for timer
	Flow  int64  `json:"flow,omitempty"`
	Seq   int64  `json:"seq,omitempty"`
	Size  int32  `json:"size,omitempty"`
	Hash  string `json:"hash"`
}

// FormatHash renders a chain value as the fixed-width hex string the
// fingerprint records carry.
func FormatHash(h uint64) string { return fmt.Sprintf("%016x", h) }

// ParseHash inverts FormatHash.
func ParseHash(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("obs: hash %q: want 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: hash %q: %v", s, err)
	}
	return v, nil
}

// SolverRecord captures one LP/flow-solver invocation: which experiment
// asked, which solver ran, and the Garg–Könemann phase/iteration counts
// and wall time from internal/mcf.
type SolverRecord struct {
	Type       string  `json:"type"` // "solver"
	Exp        string  `json:"exp"`
	Solver     string  `json:"solver"` // "gk-fixed" | "gk-free" | "maxmin" | "simplex"
	K          int     `json:"k,omitempty"`
	Lambda     float64 `json:"lambda"`
	Phases     int     `json:"phases"`
	Iterations int64   `json:"iterations"`
	Attempts   int     `json:"attempts"`
	WallSec    float64 `json:"wall_s"`
}

// MetricSnapshot is one metric's exported state, written once per metric
// when the collector closes.
type MetricSnapshot struct {
	Type string `json:"type"` // "metric"
	Name string `json:"name"`
	Kind string `json:"kind"` // counter | gauge | histogram
	// Value is the counter/gauge value, or the histogram mean.
	Value float64 `json:"value"`
	Count int64   `json:"count,omitempty"` // histogram observations
	Min   float64 `json:"min,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	P999  float64 `json:"p999,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// FaultRecord is one runtime-fault lifecycle event: "inject" and "clear"
// come from the chaos injector (physical truth), "detect", "failover",
// and "recover" from the measuring side (health monitor, transport,
// experiment harness). The Latency/Dip fields are filled only by the
// events that define them: detect latency on "detect", failover latency
// on "failover", recovery time and goodput-dip depth on "recover".
type FaultRecord struct {
	Type   string `json:"type"` // "fault"
	Net    int    `json:"net"`
	TPs    int64  `json:"t_ps"`
	Event  string `json:"event"`  // inject | clear | detect | failover | recover
	Target string `json:"target"` // e.g. "link:12", "switch:3", "plane:1"
	Plane  int32  `json:"plane"`  // affected plane, -1 if not plane-specific
	// LatencySec is the elapsed sim time the event measures: inject→detect
	// for "detect", detect→failover for "failover", inject→recovery for
	// "recover".
	LatencySec float64 `json:"latency_s,omitempty"`
	// DipFrac is the goodput dip depth in [0,1] (1 = total stall),
	// reported on "recover".
	DipFrac float64 `json:"dip_frac,omitempty"`
}

// PacketRecord is one packet lifecycle event of the trace stream. The
// hot-path writer (JSONLSink) hand-builds these lines without going
// through encoding/json; TestTraceLineMatchesPacketRecord pins the two
// representations together.
type PacketRecord struct {
	Type    string `json:"type"` // "pkt"
	Ev      string `json:"ev"`   // enqueue | drop | trim | deliver | blackhole
	TPs     int64  `json:"t_ps"`
	Link    int64  `json:"link"`
	Plane   int32  `json:"plane"`
	Flow    int64  `json:"flow"`
	Seq     int64  `json:"seq"`
	Size    int32  `json:"size"`
	Trimmed bool   `json:"trimmed,omitempty"`
}
