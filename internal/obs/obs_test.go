package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(2)
	if r.Counter("a") != c || c.Value() != 3 {
		t.Errorf("counter identity/value broken: %d", c.Value())
	}
	g := r.Gauge("b")
	g.Set(1.5)
	if r.Gauge("b").Value() != 1.5 {
		t.Error("gauge identity broken")
	}
	h := r.Histogram("c")
	h.Observe(1)
	if r.Histogram("c").Count() != 1 {
		t.Error("histogram identity broken")
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	// Sorted by (kind, name): counter a, gauge b, histogram c.
	if snap[0].Kind != "counter" || snap[1].Kind != "gauge" || snap[2].Kind != "histogram" {
		t.Errorf("snapshot order: %+v", snap)
	}
	for _, m := range snap {
		if m.Type != "metric" {
			t.Errorf("snapshot type = %q", m.Type)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// Values spanning decades, like FCTs in seconds.
	vals := []float64{1e-6, 2e-6, 5e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != int64(len(vals)) {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-sum/float64(len(vals))) > 1e-12 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != 1e-6 || h.Max() != 10 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Log buckets guarantee 2x relative accuracy.
	if q := h.Quantile(0.5); q < 1e-4/2 || q > 1e-4*2 {
		t.Errorf("p50 = %v, want within 2x of 1e-4", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Errorf("p100 = %v, want max", q)
	}
	if q := h.Quantile(0.01); q < 1e-6 {
		t.Errorf("p1 = %v below min", q)
	}
}

// TestSnapshotTailQuantiles: the snapshot must carry the p999 tail
// (what Fig. 11 actually plots) and the exact minimum, alongside the
// existing p50/p99/max.
func TestSnapshotTailQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fct")
	// 500 observations at 1ms, one at 1s: the outlier is the top 0.2%
	// of the sample, so p99 stays low while p999 must reach its bucket.
	for i := 0; i < 500; i++ {
		h.Observe(1e-3)
	}
	h.Observe(1.0)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	m := snap[0]
	if m.Min != 1e-3 {
		t.Errorf("min = %v, want 1e-3", m.Min)
	}
	if m.P999 < 0.5 || m.P999 > 1.0 {
		t.Errorf("p999 = %v, want within 2x of the 1s outlier", m.P999)
	}
	if m.P99 > 2e-3 {
		t.Errorf("p99 = %v, should not see the outlier", m.P99)
	}
	if m.P999 < m.P99 || m.Max != 1.0 {
		t.Errorf("tail ordering broken: p99=%v p999=%v max=%v", m.P99, m.P999, m.Max)
	}
}

// countingSink reduces samples on arrival, standing in for
// internal/report's aggregator.
type countingSink struct {
	links, planes, engines int
	lastNet                int
}

func (c *countingSink) LinkSample(net int, s LinkSample)     { c.links++; c.lastNet = net }
func (c *countingSink) PlaneSample(net int, s PlaneSample)   { c.planes++ }
func (c *countingSink) EngineSample(net int, s EngineSample) { c.engines++ }

// TestSampleSinkWithDropSamples: with a sink attached and DropSamples
// set, samples flow to the sink and the sampler retains nothing — the
// bounded-memory path `pnetbench -report` uses.
func TestSampleSinkWithDropSamples(t *testing.T) {
	g, p0, _ := twoPlane()
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})

	sink := &countingSink{lastNet: -1}
	c := NewCollector()
	c.Interval = sim.Microsecond
	c.Sink = sink
	c.DropSamples = true
	sampler := c.AttachNetwork(eng, net)
	if sampler == nil {
		t.Fatal("no sampler started for a sink-only collector")
	}

	rs := &releaseSink{net: net}
	for i := 0; i < 10; i++ {
		p := net.NewPacket()
		p.Size = 1500
		p.Route = p0
		p.Deliver = rs
		net.Send(p)
	}
	eng.Run()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if sink.engines == 0 || sink.planes == 0 || sink.links == 0 {
		t.Fatalf("sink saw %d/%d/%d link/plane/engine samples", sink.links, sink.planes, sink.engines)
	}
	if sink.lastNet != 0 {
		t.Errorf("sink net id = %d", sink.lastNet)
	}
	if len(sampler.Links) != 0 || len(sampler.Planes) != 0 || len(sampler.Engine) != 0 {
		t.Errorf("DropSamples retained %d/%d/%d samples",
			len(sampler.Links), len(sampler.Planes), len(sampler.Engine))
	}
}

// TestTraceLineMatchesPacketRecord pins the hand-built trace line to
// the PacketRecord schema struct: decoding a sink line into the struct
// and re-encoding it must agree field for field.
func TestTraceLineMatchesPacketRecord(t *testing.T) {
	g, p0, _ := twoPlane()
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, eng, g)
	net.Tracer = sink

	rs := &releaseSink{net: net}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = p0
	p.Deliver = rs
	p.FlowID = 42
	p.Seq = 7
	net.Send(p)
	eng.Run()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := nonEmptyLines(buf.String())
	if len(lines) == 0 {
		t.Fatal("no trace lines")
	}
	for _, line := range lines {
		var rec PacketRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line does not decode into PacketRecord: %q: %v", line, err)
		}
		if rec.Type != KindPacket || rec.Ev == "" {
			t.Errorf("decoded record = %+v", rec)
		}
		if rec.Flow != 42 || rec.Seq != 7 || rec.Size != 1500 {
			t.Errorf("field mismatch: %+v from %q", rec, line)
		}
		// Re-encode and decode again: generic maps of both forms must
		// be identical, so the hand-built line carries exactly the
		// schema's fields.
		reenc, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var a, b map[string]any
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(reenc, &b); err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("hand-built line has fields the schema lacks (or vice versa):\n%q\n%q", line, reenc)
		}
		for k, v := range a {
			if bv, ok := b[k]; !ok || bv != v {
				t.Errorf("field %q: line %v vs schema %v", k, v, bv)
			}
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0) // lands in bucket 0, no panic
	h.Observe(-1)
	h.Observe(math.MaxFloat64) // clamps to last bucket
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if q := h.Quantile(0.99); math.IsNaN(q) || math.IsInf(q, 0) {
		t.Errorf("quantile = %v", q)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.RecordFlow(FlowRecord{Bytes: 1})
	c.RecordSolver(SolverRecord{Phases: 1})
	if c.AttachNetwork(nil, nil) != nil {
		t.Error("nil collector attached a sampler")
	}
	if c.FCTs() != nil || c.MetricsLines() != 0 || c.TraceEvents() != 0 {
		t.Error("nil collector reported state")
	}
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}

// releaseSink recycles delivered packets.
type releaseSink struct{ net *sim.Network }

func (r *releaseSink) HandlePacket(p *sim.Packet) { r.net.Release(p) }

// twoPlane builds a 2-host network with one switch per plane:
// host 0 - sw2 - host 1 on plane 0, host 0 - sw3 - host 1 on plane 1.
func twoPlane() (*graph.Graph, []graph.LinkID, []graph.LinkID) {
	g := graph.New(4)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	a0, _ := g.AddDuplex(0, 2, 100, 0)
	_, d0 := g.AddDuplex(1, 2, 100, 0)
	a1, _ := g.AddDuplex(0, 3, 100, 1)
	_, d1 := g.AddDuplex(1, 3, 100, 1)
	return g, []graph.LinkID{a0, d0}, []graph.LinkID{a1, d1}
}

// TestCollectorEndToEnd drives packets over a two-plane network with
// both streams attached and checks the JSONL output: every line parses,
// trace covers enqueue and deliver with sim timestamps and plane ids,
// and the metrics stream carries link/plane/engine samples plus the
// final registry snapshot.
func TestCollectorEndToEnd(t *testing.T) {
	g, p0, p1 := twoPlane()
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})

	var mbuf, tbuf bytes.Buffer
	c := NewCollector()
	c.Interval = sim.Microsecond
	c.StreamMetrics(&mbuf)
	c.StreamTrace(&tbuf)
	if c.AttachNetwork(eng, net) == nil {
		t.Fatal("no sampler started")
	}

	s := &releaseSink{net: net}
	for i := 0; i < 10; i++ {
		p := net.NewPacket()
		p.Size = 1500
		if i%2 == 0 {
			p.Route = p0
		} else {
			p.Route = p1
		}
		p.Deliver = s
		p.FlowID = int64(i % 2)
		net.Send(p)
	}
	eng.Run()

	c.RecordFlow(FlowRecord{ID: 1, Transport: "tcp", Bytes: 15000, FCT: 1e-5, Planes: []int32{0, 1}})
	c.RecordSolver(SolverRecord{Exp: "test", Solver: "gk-fixed", Phases: 3, Iterations: 10, WallSec: 0.01})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if c.TraceEvents() == 0 || c.MetricsLines() == 0 {
		t.Fatalf("no output: %d trace events, %d metric lines", c.TraceEvents(), c.MetricsLines())
	}

	// Every trace line parses; enqueue and deliver both appear; both
	// planes appear; timestamps are sim picoseconds (monotone from 0).
	evs := map[string]int{}
	planes := map[float64]bool{}
	lastT := -1.0
	for _, line := range nonEmptyLines(tbuf.String()) {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec["type"] != "pkt" {
			t.Fatalf("trace line type = %v", rec["type"])
		}
		evs[rec["ev"].(string)]++
		planes[rec["plane"].(float64)] = true
		tPs := rec["t_ps"].(float64)
		if tPs < lastT {
			t.Fatalf("trace timestamps not monotone: %v after %v", tPs, lastT)
		}
		lastT = tPs
	}
	if evs["enqueue"] == 0 || evs["deliver"] == 0 {
		t.Errorf("trace events = %v, want enqueue and deliver", evs)
	}
	if !planes[0] || !planes[1] {
		t.Errorf("planes seen = %v, want both", planes)
	}

	// Every metrics line parses; link, plane, engine, flow, solver, and
	// metric records all appear; link samples carry link/plane ids.
	kinds := map[string]int{}
	for _, line := range nonEmptyLines(mbuf.String()) {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad metrics line %q: %v", line, err)
		}
		k := rec["type"].(string)
		kinds[k]++
		if k == "link" {
			if _, ok := rec["link"]; !ok {
				t.Fatalf("link sample without link id: %q", line)
			}
			if _, ok := rec["plane"]; !ok {
				t.Fatalf("link sample without plane id: %q", line)
			}
			if rec["t_ps"].(float64) <= 0 {
				t.Fatalf("link sample without sim timestamp: %q", line)
			}
		}
	}
	for _, want := range []string{"link", "plane", "engine", "flow", "solver", "metric"} {
		if kinds[want] == 0 {
			t.Errorf("metrics stream has no %q records (got %v)", want, kinds)
		}
	}

	// The collector also kept the records in memory.
	if len(c.Flows) != 1 || len(c.Solver) != 1 {
		t.Errorf("in-memory records: %d flows, %d solver", len(c.Flows), len(c.Solver))
	}
	if got := c.FCTs(); len(got) != 1 || got[0] != 1e-5 {
		t.Errorf("FCTs = %v", got)
	}
	if n := c.Reg.Counter("flows.completed").Value(); n != 1 {
		t.Errorf("flows.completed = %d", n)
	}
}

// TestMultiNetworkTraceStaysWellFormed attaches several networks to one
// trace stream and pushes enough events through each to exceed any
// single buffer: every line must still parse. (Regression: per-sink
// buffered writers used to flush independently into the shared file,
// interleaving lines mid-write.)
func TestMultiNetworkTraceStaysWellFormed(t *testing.T) {
	var tbuf bytes.Buffer
	c := NewCollector()
	c.StreamTrace(&tbuf)

	for n := 0; n < 3; n++ {
		g, p0, _ := twoPlane()
		eng := sim.NewEngine()
		net := sim.NewNetwork(eng, g, sim.Config{})
		c.AttachNetwork(eng, net)
		s := &releaseSink{net: net}
		for i := 0; i < 500; i++ { // ~3 events x ~90 B each, > 64 kB total
			p := net.NewPacket()
			p.Size = 1500
			p.Route = p0
			p.Deliver = s
			net.Send(p)
		}
		eng.Run()
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	lines := nonEmptyLines(tbuf.String())
	if tbuf.Len() < 2<<16 {
		t.Fatalf("only %d trace bytes; test no longer exceeds the 64 kB sink buffer", tbuf.Len())
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("malformed trace line: %q", line)
		}
	}
}

// TestSamplerTerminates checks the sampler does not keep an otherwise
// finished simulation alive: Engine.Run returns even though the sampler
// reschedules itself while work remains.
func TestSamplerTerminates(t *testing.T) {
	g, p0, _ := twoPlane()
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	s := NewSampler(eng, net, sim.Microsecond)
	s.Start()

	sink := &releaseSink{net: net}
	p := net.NewPacket()
	p.Size = 1500
	p.Route = p0
	p.Deliver = sink
	net.Send(p)

	done := eng.RunUntil(sim.Second)
	if eng.HeapLen() != 0 {
		t.Fatalf("sampler left %d events pending after %d fired", eng.HeapLen(), done)
	}
	if len(s.Engine) == 0 {
		t.Error("no engine samples recorded")
	}
	for _, ls := range s.Links {
		if ls.Util < 0 || ls.Util > 1.000001 {
			t.Errorf("link %d util = %v", ls.Link, ls.Util)
		}
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
