package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// sendPacket pushes one packet with the given flow id over path p.
func sendPacket(net *sim.Network, p0 []graph.LinkID, flow int64) {
	p := net.NewPacket()
	p.Size = 1500
	p.Route = p0
	p.Deliver = &releaseSink{net: net}
	p.FlowID = flow
	net.Send(p)
}

func TestTraceFlowFilter(t *testing.T) {
	g, p0, _ := twoPlane()
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	var buf bytes.Buffer
	c := NewCollector()
	c.TraceFlows = []int64{42}
	c.StreamTrace(&buf)
	c.AttachNetwork(eng, net)

	sendPacket(net, p0, 42)
	sendPacket(net, p0, 7)
	sendPacket(net, p0, 42)
	eng.Run()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	lines := nonEmptyLines(buf.String())
	if len(lines) == 0 {
		t.Fatal("no trace lines for the selected flow")
	}
	for _, line := range lines {
		var rec PacketRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec.Flow != 42 {
			t.Errorf("flow %d leaked through the -trace-flow filter: %q", rec.Flow, line)
		}
	}
}

// TestTraceFlowFilterZeroAlloc proves the filtered-out path is free:
// rejecting a packet event must not allocate or write.
func TestTraceFlowFilterZeroAlloc(t *testing.T) {
	g, p0, _ := twoPlane()
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, eng, g)
	sink.only = []int64{42}

	p := net.NewPacket()
	p.Size = 1500
	p.FlowID = 7 // not traced
	if avg := testing.AllocsPerRun(100, func() {
		sink.PacketEvent(sim.TraceEnqueue, p, p0[0])
	}); avg != 0 {
		t.Errorf("filtered PacketEvent allocates %v per call, want 0", avg)
	}
	if sink.EventCount() != 0 || buf.Len() != 0 {
		t.Error("filtered events were recorded anyway")
	}
	net.Release(p)
}

// TestProfileRecordsOnClose checks the flight recorder's bins reach the
// metrics stream as decodable profile records with valid event kinds.
func TestProfileRecordsOnClose(t *testing.T) {
	g, p0, _ := twoPlane()
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{PropDelay: 500 * sim.Nanosecond})
	var buf bytes.Buffer
	c := NewCollector()
	c.Spans = true
	c.Profile = true
	c.StreamMetrics(&buf)
	c.AttachNetwork(eng, net)
	if !net.SpansOn() {
		t.Fatal("AttachNetwork did not enable spans")
	}

	for i := 0; i < 4; i++ {
		sendPacket(net, p0, int64(i))
	}
	eng.Run()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var profiles []ProfileRecord
	for _, line := range nonEmptyLines(buf.String()) {
		if !strings.Contains(line, `"type":"profile"`) {
			continue
		}
		var rec ProfileRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad profile line %q: %v", line, err)
		}
		profiles = append(profiles, rec)
	}
	if len(profiles) == 0 {
		t.Fatal("no profile records in the metrics stream")
	}
	var events, hostLoads int64
	for _, rec := range profiles {
		if rec.Kind == KindHostLoad {
			// Pseudo kind: per-host delivery counts (Plane = host node ID).
			hostLoads += rec.Events
			continue
		}
		if !ValidEventKind(rec.Kind) {
			t.Errorf("invalid event kind %q", rec.Kind)
		}
		if rec.SimPs <= 0 {
			t.Errorf("profile record without sim time: %+v", rec)
		}
		if rec.LookaheadPs != int64(500*sim.Nanosecond) {
			t.Errorf("lookahead = %d ps, want the 500ns prop delay", rec.LookaheadPs)
		}
		events += rec.Events
	}
	if events == 0 {
		t.Error("profile records carry no events")
	}
	if hostLoads == 0 {
		t.Error("no hostload records: delivered packets should be counted per host")
	}
}

// TestAttachProfileIsolation checks the profiling hook's contract: it
// must not consume a NetID, start a sampler, or touch the registry, so
// a profiling companion cannot shift any deterministic output.
func TestAttachProfileIsolation(t *testing.T) {
	c := NewCollector()
	var buf bytes.Buffer
	c.StreamMetrics(&buf)

	mk := func() (*sim.Engine, *sim.Network) {
		g, _, _ := twoPlane()
		eng := sim.NewEngine()
		return eng, sim.NewNetwork(eng, g, sim.Config{})
	}
	engA, netA := mk()
	sa := c.AttachNetwork(engA, netA)
	engB, netB := mk()
	if rec := c.AttachProfile(engB, netB); rec == nil || engB.Recorder != rec {
		t.Fatal("AttachProfile did not hook the engine")
	}
	engC, netC := mk()
	sc := c.AttachNetwork(engC, netC)

	if sa.NetID != 0 || sc.NetID != 1 {
		t.Errorf("sampler NetIDs = %d, %d: AttachProfile consumed an ID", sa.NetID, sc.NetID)
	}
	if got := c.Reg.Counter("networks.attached").Value(); got != 2 {
		t.Errorf("networks.attached = %d, want 2 (profile attach must not count)", got)
	}
	if len(c.Samplers()) != 2 {
		t.Errorf("samplers = %d, want 2", len(c.Samplers()))
	}
	if netB.SpansOn() {
		t.Error("AttachProfile enabled spans on the profiled network")
	}
}
