package obs

import (
	"sort"
	"time"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// LinkSample is one link's state at one sampling instant.
type LinkSample struct {
	T          sim.Time
	Link       graph.LinkID
	Plane      int32
	QueueBytes int32
	// Util is the link's utilization over the sampling interval (busy
	// transmission time divided by elapsed sim time since the last tick).
	Util       float64
	TxBytes    int64 // cumulative
	Drops      int64 // cumulative
	Blackholed int64 // cumulative, packets lost to a down link
}

// PlaneSample is one dataplane's cumulative transmitted bytes at one
// sampling instant — the merged cross-plane view of Network.PlaneBytes.
type PlaneSample struct {
	T       sim.Time
	Plane   int32
	TxBytes int64
}

// EngineSample is the event engine's state at one sampling instant: how
// many events fired since the last tick, how long that took in wall
// time, and the current heap size. Together they locate where simulated
// and wall-clock time go.
type EngineSample struct {
	T       sim.Time
	Events  uint64 // fired since the previous sample
	HeapLen int
	Wall    time.Duration // wall time since the previous sample
}

// SampleSink receives samples as they are taken — the streaming
// alternative to the Sampler's retained series for consumers (like
// internal/report's aggregator) that reduce on the fly and must not
// hold millions of samples live.
type SampleSink interface {
	LinkSample(net int, s LinkSample)
	PlaneSample(net int, s PlaneSample)
	EngineSample(net int, s EngineSample)
}

// Sampler periodically snapshots a network from inside the event loop.
// It schedules itself on the simulation engine, so samples carry sim
// timestamps; when its tick finds the event heap otherwise empty the
// simulation is over and it stops rescheduling, which keeps Engine.Run
// terminating.
//
// To bound overhead on long simulations the sampler decimates itself:
// after every decimateAfter ticks the interval doubles, so the tick
// count grows only logarithmically with simulated time.
type Sampler struct {
	Eng *sim.Engine
	Net *sim.Network

	// In-memory series, appended on every tick. Links holds only links
	// that were active (nonzero queue, or traffic/drops since the last
	// tick); idle links would dominate the series without carrying
	// information.
	Links  []LinkSample
	Planes []PlaneSample
	Engine []EngineSample

	// NetID distinguishes multiple sampled networks in a shared stream.
	NetID int

	stream *MetricsWriter // optional JSONL mirror of every sample
	sink   SampleSink     // optional streaming consumer
	retain bool           // keep the in-memory series (the default)

	interval   sim.Time
	ticks      int
	stopped    bool
	prevTx     []int64
	prevDrops  []int64
	prevBH     []int64
	prevBusy   []sim.Time
	prevFired  uint64
	prevWall   time.Time
	planeOf    []int32
	planeOrder []int32
}

const decimateAfter = 4096

// NewSampler prepares a sampler at the given interval (which must be
// positive). Call Start to begin sampling.
func NewSampler(eng *sim.Engine, net *sim.Network, interval sim.Time) *Sampler {
	n := net.G.NumLinks()
	s := &Sampler{
		Eng:       eng,
		Net:       net,
		retain:    true,
		interval:  interval,
		prevTx:    make([]int64, n),
		prevDrops: make([]int64, n),
		prevBH:    make([]int64, n),
		prevBusy:  make([]sim.Time, n),
		planeOf:   make([]int32, n),
	}
	seen := map[int32]bool{}
	for i := 0; i < n; i++ {
		p := net.G.Link(graph.LinkID(i)).Plane
		s.planeOf[i] = p
		if !seen[p] {
			seen[p] = true
			s.planeOrder = append(s.planeOrder, p)
		}
	}
	sort.Slice(s.planeOrder, func(i, j int) bool { return s.planeOrder[i] < s.planeOrder[j] })
	return s
}

// Start schedules the first tick one interval from now.
func (s *Sampler) Start() {
	s.prevWall = time.Now()
	s.prevFired = s.Eng.EventsFired()
	s.Eng.After(s.interval, s.tick)
}

// Stop prevents any further samples.
func (s *Sampler) Stop() { s.stopped = true }

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	now := s.Eng.Now()
	wall := time.Now()

	// Engine sample.
	fired := s.Eng.EventsFired()
	es := EngineSample{
		T:       now,
		Events:  fired - s.prevFired,
		HeapLen: s.Eng.HeapLen(),
		Wall:    wall.Sub(s.prevWall),
	}
	if s.retain {
		s.Engine = append(s.Engine, es)
	}
	s.prevFired = fired
	s.prevWall = wall
	if s.stream != nil {
		s.stream.writeEngineSample(s.NetID, es)
	}
	if s.sink != nil {
		s.sink.EngineSample(s.NetID, es)
	}

	// Link samples, active links only.
	planeBytes := make(map[int32]int64, len(s.planeOrder))
	intervalSec := s.interval.Seconds()
	for i := range s.prevTx {
		id := graph.LinkID(i)
		st := s.Net.Stats(id)
		planeBytes[s.planeOf[i]] += st.TxBytes
		depth := s.Net.QueueDepth(id)
		active := depth > 0 || st.TxBytes != s.prevTx[i] || st.Drops != s.prevDrops[i] || st.Blackholed != s.prevBH[i]
		if active {
			util := 0.0
			if intervalSec > 0 {
				util = (st.Busy - s.prevBusy[i]).Seconds() / intervalSec
			}
			ls := LinkSample{
				T:          now,
				Link:       id,
				Plane:      s.planeOf[i],
				QueueBytes: depth,
				Util:       util,
				TxBytes:    st.TxBytes,
				Drops:      st.Drops,
				Blackholed: st.Blackholed,
			}
			if s.retain {
				s.Links = append(s.Links, ls)
			}
			if s.stream != nil {
				s.stream.writeLinkSample(s.NetID, ls)
			}
			if s.sink != nil {
				s.sink.LinkSample(s.NetID, ls)
			}
		}
		s.prevTx[i] = st.TxBytes
		s.prevDrops[i] = st.Drops
		s.prevBH[i] = st.Blackholed
		s.prevBusy[i] = st.Busy
	}

	// Per-plane totals.
	for _, p := range s.planeOrder {
		ps := PlaneSample{T: now, Plane: p, TxBytes: planeBytes[p]}
		if s.retain {
			s.Planes = append(s.Planes, ps)
		}
		if s.stream != nil {
			s.stream.writePlaneSample(s.NetID, ps)
		}
		if s.sink != nil {
			s.sink.PlaneSample(s.NetID, ps)
		}
	}

	s.ticks++
	if s.ticks%decimateAfter == 0 {
		s.interval *= 2
	}
	// Reschedule only while other work remains: an empty heap here means
	// nothing else can ever fire, so the simulation is done.
	if s.Eng.HeapLen() > 0 {
		s.Eng.After(s.interval, s.tick)
	}
}
