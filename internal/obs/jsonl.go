package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"sync"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// JSONLSink is a sim.Tracer that streams packet lifecycle events as one
// JSON object per line, htsim-log style:
//
//	{"type":"pkt","ev":"enqueue","t_ps":1280,"link":3,"plane":0,"flow":7,"seq":41,"size":1500}
//
// "ev" is one of enqueue | drop | trim | deliver | blackhole; "t_ps" is the sim
// timestamp in picoseconds; "trimmed":true is added for packets whose
// payload was already cut to a header. Lines are hand-built into a
// reused buffer so tracing costs no per-event allocations beyond the
// buffered writes themselves.
type JSONLSink struct {
	eng *sim.Engine
	g   *graph.Graph
	w   *bufio.Writer
	buf []byte

	// mu, when set, serializes writes to w — required when several
	// networks' sinks share one buffered writer and their engines run on
	// different goroutines (the parallel sweep). Each sink still builds
	// its line in a private buf outside the lock. Nil for the
	// single-network, single-goroutine case.
	mu *sync.Mutex

	// only, when non-empty, restricts the stream to the listed flow IDs;
	// other packets' events return before any line is built (a linear
	// scan — the list is a handful of hand-picked flows).
	only []int64

	// Events counts lines written. Use EventCount to read it while other
	// goroutines may still be tracing.
	Events int64
	err    error
}

// NewJSONLSink builds a sink writing to w. Call Flush when the
// simulation is done. If w is already a *bufio.Writer it is used
// directly — sinks for different networks in one run must share one
// buffer, or their independent flushes would interleave mid-line.
func NewJSONLSink(w io.Writer, eng *sim.Engine, g *graph.Graph) *JSONLSink {
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriterSize(w, 1<<16)
	}
	return &JSONLSink{eng: eng, g: g, w: bw, buf: make([]byte, 0, 160)}
}

// PacketEvent implements sim.Tracer.
func (s *JSONLSink) PacketEvent(ev sim.TraceEvent, p *sim.Packet, link graph.LinkID) {
	if len(s.only) > 0 {
		keep := false
		for _, id := range s.only {
			if id == p.FlowID {
				keep = true
				break
			}
		}
		if !keep {
			return
		}
	}
	b := s.buf[:0]
	b = append(b, `{"type":"pkt","ev":"`...)
	b = append(b, ev.String()...)
	b = append(b, `","t_ps":`...)
	b = strconv.AppendInt(b, int64(s.eng.Now()), 10)
	b = append(b, `,"link":`...)
	b = strconv.AppendInt(b, int64(link), 10)
	b = append(b, `,"plane":`...)
	b = strconv.AppendInt(b, int64(s.g.Link(link).Plane), 10)
	b = append(b, `,"flow":`...)
	b = strconv.AppendInt(b, p.FlowID, 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, p.Seq, 10)
	b = append(b, `,"size":`...)
	b = strconv.AppendInt(b, int64(p.Size), 10)
	if p.Trimmed {
		b = append(b, `,"trimmed":true`...)
	}
	b = append(b, '}', '\n')
	s.buf = b
	if s.mu != nil {
		s.mu.Lock()
	}
	if _, err := s.w.Write(b); err != nil && s.err == nil {
		s.err = err
	}
	s.Events++
	if s.mu != nil {
		s.mu.Unlock()
	}
}

// EventCount returns the number of lines written, taking the shared
// write lock when one is set.
func (s *JSONLSink) EventCount() int64 {
	if s.mu != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.Events
}

// Flush drains the buffer and returns the first write error, if any.
func (s *JSONLSink) Flush() error {
	if s.mu != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// MetricsWriter streams metric records — samples, flow records, solver
// records, metric snapshots — as JSONL. Unlike the packet sink this is
// not a hot path, so records go through encoding/json, and an internal
// mutex makes it safe for the samplers of concurrently-running networks
// to share one stream (individual lines never interleave; line order
// across producers is arrival order).
type MetricsWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder

	// Lines counts records written. Use Count to read it while other
	// goroutines may still be writing.
	Lines int64
	err   error
}

// NewMetricsWriter builds a writer streaming to w.
func NewMetricsWriter(w io.Writer) *MetricsWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &MetricsWriter{w: bw, enc: json.NewEncoder(bw)}
}

func (m *MetricsWriter) write(v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return
	}
	if err := m.enc.Encode(v); err != nil {
		m.err = err
		return
	}
	m.Lines++
}

// Count returns the number of records written so far.
func (m *MetricsWriter) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Lines
}

// Flush drains the buffer and returns the first error, if any.
func (m *MetricsWriter) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.w.Flush(); err != nil && m.err == nil {
		m.err = err
	}
	return m.err
}

// The JSONL record shapes live in schema.go; every line carries "type"
// so a stream mixing sample kinds, flow records, and solver records
// stays self-describing.

// Record converts an in-memory sample to its JSONL record shape.
func (s LinkSample) Record(net int) LinkRecord {
	return LinkRecord{
		Type: KindLink, Net: net, TPs: int64(s.T), Link: int64(s.Link), Plane: s.Plane,
		QueueBytes: s.QueueBytes, Util: s.Util, TxBytes: s.TxBytes, Drops: s.Drops,
		Blackholed: s.Blackholed,
	}
}

// Record converts an in-memory sample to its JSONL record shape.
func (s PlaneSample) Record(net int) PlaneRecord {
	return PlaneRecord{Type: KindPlane, Net: net, TPs: int64(s.T), Plane: s.Plane, TxBytes: s.TxBytes}
}

// Record converts an in-memory sample to its JSONL record shape.
func (s EngineSample) Record(net int) EngineRecord {
	return EngineRecord{
		Type: KindEngine, Net: net, TPs: int64(s.T), Events: s.Events,
		HeapLen: s.HeapLen, WallNano: s.Wall.Nanoseconds(),
	}
}

func (m *MetricsWriter) writeLinkSample(net int, s LinkSample) { m.write(s.Record(net)) }

func (m *MetricsWriter) writePlaneSample(net int, s PlaneSample) { m.write(s.Record(net)) }

func (m *MetricsWriter) writeEngineSample(net int, s EngineSample) { m.write(s.Record(net)) }
