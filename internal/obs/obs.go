// Package obs is the simulator's telemetry layer: named counters,
// gauges, and log-bucketed histograms (this file); a periodic Sampler
// that snapshots per-link and per-plane state from a running simulation
// (sampler.go); JSONL sinks for packet traces and metric streams
// (jsonl.go); and a Collector that bundles them for the experiment
// harness (collector.go).
//
// The paper's §7 treats per-plane monitoring as a first-class concern of
// P-Nets, and every figure in its evaluation is a time series or a
// distribution. This package makes those observable while a simulation
// runs instead of reconstructable only from final tables.
//
// Everything here is stdlib-only and single-threaded, like the simulator
// itself. All hooks are nil-safe: a nil *Collector accepts records and
// does nothing, and an unattached network pays only the existing
// one-branch cost of sim.Network's nil Tracer check.
package obs

import (
	"math"
	"sort"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a last-value-wins float metric.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// histBuckets spans 2^-64 .. 2^63, wide enough for picosecond times
// expressed in seconds on one end and byte counts on the other.
const histBuckets = 128

// Histogram is a log-bucketed histogram: bucket i counts observations in
// [2^(i-65), 2^(i-64)), so relative error of a quantile estimate is at
// most 2x regardless of scale — the right trade for latency-style
// distributions that span many decades.
type Histogram struct {
	buckets  [histBuckets]int64
	count    int64
	sum      float64
	min, max float64
}

func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	_, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	idx := exp + 64
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean (the sum is tracked outside the buckets).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extremes.
func (h *Histogram) Min() float64 { return h.min }
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-th quantile (0 < q ≤ 1): the
// geometric midpoint of the bucket where the cumulative count crosses q,
// clamped to the observed [min, max]. Accurate to within the 2x bucket
// width.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			lo := math.Ldexp(1, i-65)
			hi := math.Ldexp(1, i-64)
			v := math.Sqrt(lo * hi)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Registry is a get-or-create namespace of metrics. The simulator is
// single-threaded, so there is no locking; a registry must not be shared
// across goroutines.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every metric (as MetricSnapshot records, see
// schema.go), sorted by (kind, name) for determinism.
func (r *Registry) Snapshot() []MetricSnapshot {
	var out []MetricSnapshot
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Type: "metric", Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Type: "metric", Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, MetricSnapshot{
			Type: "metric", Name: name, Kind: "histogram",
			Value: h.Mean(), Count: h.Count(), Min: h.Min(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), P999: h.Quantile(0.999),
			Max: h.Max(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}
