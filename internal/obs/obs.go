// Package obs is the simulator's telemetry layer: named counters,
// gauges, and log-bucketed histograms (this file); a periodic Sampler
// that snapshots per-link and per-plane state from a running simulation
// (sampler.go); JSONL sinks for packet traces and metric streams
// (jsonl.go); and a Collector that bundles them for the experiment
// harness (collector.go).
//
// The paper's §7 treats per-plane monitoring as a first-class concern of
// P-Nets, and every figure in its evaluation is a time series or a
// distribution. This package makes those observable while a simulation
// runs instead of reconstructable only from final tables.
//
// Everything here is stdlib-only. Each sim engine remains single-threaded,
// but the parallel sweep harness runs many engines at once against one
// shared Collector, so every primitive in this package is safe for
// concurrent producers: counters and gauges are atomics, histograms and
// registries carry a mutex, and per-cell registries can be folded into a
// shared one with Merge. All hooks are nil-safe: a nil *Collector accepts
// records and does nothing, and an unattached network pays only the
// existing one-branch cost of sim.Network's nil Tracer check.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Safe for
// concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric. Safe for concurrent use.
type Gauge struct{ v atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// histBuckets spans 2^-64 .. 2^63, wide enough for picosecond times
// expressed in seconds on one end and byte counts on the other.
const histBuckets = 128

// Histogram is a log-bucketed histogram: bucket i counts observations in
// [2^(i-65), 2^(i-64)), so relative error of a quantile estimate is at
// most 2x regardless of scale — the right trade for latency-style
// distributions that span many decades. Safe for concurrent use; because
// every update is commutative, the final contents are independent of
// observation order and hence of worker count.
type Histogram struct {
	mu       sync.Mutex
	buckets  [histBuckets]int64
	count    int64
	sum      float64
	min, max float64
}

func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	_, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	idx := exp + 64
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Merge folds every observation recorded in src into h. This is the
// fan-in step for per-cell histograms: because buckets, count, sum, and
// the extremes all combine commutatively, merging cells in any order
// yields the same histogram.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || h == src {
		return
	}
	src.mu.Lock()
	buckets, count, sum, min, max := src.buckets, src.count, src.sum, src.min, src.max
	src.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	for i, n := range buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || min < h.min {
		h.min = min
	}
	if h.count == 0 || max > h.max {
		h.max = max
	}
	h.count += count
	h.sum += sum
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the exact mean (the sum is tracked outside the buckets).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extremes.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the q-th quantile (0 < q ≤ 1): the
// geometric midpoint of the bucket where the cumulative count crosses q,
// clamped to the observed [min, max]. Accurate to within the 2x bucket
// width.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			lo := math.Ldexp(1, i-65)
			hi := math.Ldexp(1, i-64)
			v := math.Sqrt(lo * hi)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Registry is a get-or-create namespace of metrics. Safe for concurrent
// use: parallel experiment cells share one registry (all primitives
// combine commutatively), or keep private registries and fold them in
// with Merge.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Merge folds every metric in src into r: counters add, histograms merge
// bucket-wise, and gauges keep src's value (last-write-wins, matching
// Set). Use it to combine per-cell registries after a parallel sweep;
// counters and histograms merge commutatively, so any fold order gives
// identical totals.
func (r *Registry) Merge(src *Registry) {
	if src == nil || r == src {
		return
	}
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for name, h := range src.hists {
		hists[name] = h
	}
	src.mu.Unlock()
	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, v := range gauges {
		r.Gauge(name).Set(v)
	}
	for name, h := range hists {
		r.Histogram(name).Merge(h)
	}
}

// Snapshot returns every metric (as MetricSnapshot records, see
// schema.go), sorted by (kind, name) for determinism.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []MetricSnapshot
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Type: "metric", Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Type: "metric", Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, MetricSnapshot{
			Type: "metric", Name: name, Kind: "histogram",
			Value: h.Mean(), Count: h.Count(), Min: h.Min(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), P999: h.Quantile(0.999),
			Max: h.Max(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}
