package obs

import (
	"bufio"
	"io"

	"pnet/internal/sim"
)

// FlowRecord captures one completed transport flow.
type FlowRecord struct {
	Type        string  `json:"type"` // "flow"
	ID          int64   `json:"id"`
	Transport   string  `json:"transport"` // "tcp" | "ndp"
	Src         int64   `json:"src"`
	Dst         int64   `json:"dst"`
	Bytes       int64   `json:"bytes"`
	FCT         float64 `json:"fct_s"`
	Retransmits int64   `json:"retransmits"`
	Subflows    int     `json:"subflows"`
	// Planes lists the distinct dataplanes the flow's paths use — the
	// path/plane choice the paper's §7 monitoring must merge.
	Planes []int32 `json:"planes"`
}

// SolverRecord captures one LP/flow-solver invocation: which experiment
// asked, which solver ran, and the Garg–Könemann phase/iteration counts
// and wall time from internal/mcf.
type SolverRecord struct {
	Type       string  `json:"type"` // "solver"
	Exp        string  `json:"exp"`
	Solver     string  `json:"solver"` // "gk-fixed" | "gk-free" | "maxmin" | "simplex"
	K          int     `json:"k,omitempty"`
	Lambda     float64 `json:"lambda"`
	Phases     int     `json:"phases"`
	Iterations int64   `json:"iterations"`
	Attempts   int     `json:"attempts"`
	WallSec    float64 `json:"wall_s"`
}

// Collector bundles the telemetry of one harness run: a metric registry,
// optional JSONL streams, and per-network samplers/tracers. Every method
// is nil-safe so instrumented code needs no guards of its own.
type Collector struct {
	// Reg aggregates counters and histograms across everything the
	// collector sees (flows, solver calls, attach events).
	Reg *Registry
	// Interval is the sampling period in sim time; zero selects 10 µs.
	Interval sim.Time

	// Flows and Solver accumulate records in memory for programmatic use
	// (the JSONL streams carry the same data).
	Flows  []FlowRecord
	Solver []SolverRecord

	mw       *MetricsWriter
	tw       *bufio.Writer // shared by every network's JSONLSink
	samplers []*Sampler
	sinks    []*JSONLSink
	nets     int
}

// NewCollector returns a collector with a fresh registry and no streams.
func NewCollector() *Collector { return &Collector{Reg: NewRegistry()} }

// StreamMetrics mirrors samples, flow/solver records, and the final
// metric snapshot to w as JSONL.
func (c *Collector) StreamMetrics(w io.Writer) { c.mw = NewMetricsWriter(w) }

// StreamTrace streams packet lifecycle events of every attached network
// to w as JSONL.
func (c *Collector) StreamTrace(w io.Writer) { c.tw = bufio.NewWriterSize(w, 1<<16) }

// MetricsLines returns the number of metric records written so far.
func (c *Collector) MetricsLines() int64 {
	if c == nil || c.mw == nil {
		return 0
	}
	return c.mw.Lines
}

// TraceEvents returns the number of trace lines written so far.
func (c *Collector) TraceEvents() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for _, s := range c.sinks {
		n += s.Events
	}
	return n
}

func (c *Collector) interval() sim.Time {
	if c.Interval > 0 {
		return c.Interval
	}
	return 10 * sim.Microsecond
}

// AttachNetwork instruments one simulation: the network's tracer is
// pointed at the trace stream (if any) and a sampler is started on the
// engine (if a metrics stream is set). Safe to call on a nil collector.
// It returns the sampler, or nil if none was started.
func (c *Collector) AttachNetwork(eng *sim.Engine, net *sim.Network) *Sampler {
	if c == nil {
		return nil
	}
	id := c.nets
	c.nets++
	c.Reg.Counter("networks.attached").Inc()
	if c.tw != nil {
		sink := NewJSONLSink(c.tw, eng, net.G)
		net.Tracer = sink
		c.sinks = append(c.sinks, sink)
	}
	var sampler *Sampler
	if c.mw != nil {
		sampler = NewSampler(eng, net, c.interval())
		sampler.NetID = id
		sampler.stream = c.mw
		sampler.Start()
		c.samplers = append(c.samplers, sampler)
	}
	return sampler
}

// RecordFlow accepts one completed flow.
func (c *Collector) RecordFlow(r FlowRecord) {
	if c == nil {
		return
	}
	r.Type = "flow"
	c.Flows = append(c.Flows, r)
	c.Reg.Counter("flows.completed").Inc()
	c.Reg.Counter("flows.bytes").Add(r.Bytes)
	c.Reg.Counter("flows.retransmits").Add(r.Retransmits)
	if r.FCT > 0 {
		c.Reg.Histogram("flow.fct_s").Observe(r.FCT)
	}
	if c.mw != nil {
		c.mw.write(r)
	}
}

// RecordSolver accepts one solver invocation.
func (c *Collector) RecordSolver(r SolverRecord) {
	if c == nil {
		return
	}
	r.Type = "solver"
	c.Solver = append(c.Solver, r)
	c.Reg.Counter("solver.calls").Inc()
	c.Reg.Counter("solver.phases").Add(int64(r.Phases))
	c.Reg.Counter("solver.iterations").Add(r.Iterations)
	if r.WallSec > 0 {
		c.Reg.Histogram("solver.wall_s").Observe(r.WallSec)
	}
	if c.mw != nil {
		c.mw.write(r)
	}
}

// FCTs returns the recorded flow completion times in seconds.
func (c *Collector) FCTs() []float64 {
	if c == nil {
		return nil
	}
	out := make([]float64, 0, len(c.Flows))
	for _, f := range c.Flows {
		out = append(out, f.FCT)
	}
	return out
}

// Close stops samplers, dumps the registry snapshot to the metrics
// stream, and flushes both streams. It returns the first error any
// stream hit.
func (c *Collector) Close() error {
	if c == nil {
		return nil
	}
	var first error
	for _, s := range c.samplers {
		s.Stop()
	}
	if c.mw != nil {
		for _, m := range c.Reg.Snapshot() {
			c.mw.write(m)
		}
		if err := c.mw.Flush(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range c.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
