package obs

import (
	"bufio"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pnet/internal/sim"
)

// FlowRecord and SolverRecord (the in-memory record types accumulated
// here) are defined with the rest of the JSONL schema in schema.go.

// Collector bundles the telemetry of one harness run: a metric registry,
// optional JSONL streams, and per-network samplers/tracers. Every method
// is nil-safe so instrumented code needs no guards of its own.
//
// A Collector is safe for concurrent producers: parallel experiment
// cells attach networks and record flows/solver calls/faults against one
// shared instance. Record slices then accumulate in completion order —
// nondeterministic under workers > 1 — but every consumer (the registry,
// report summarization) aggregates commutatively, so derived results do
// not depend on worker count. The exported Flows/Solver/Faults fields
// must only be read directly after all producers have finished.
type Collector struct {
	// Reg aggregates counters and histograms across everything the
	// collector sees (flows, solver calls, attach events).
	Reg *Registry
	// Interval is the sampling period in sim time; zero selects 10 µs.
	Interval sim.Time
	// AlwaysSample starts a sampler on every attached network even when
	// no metrics stream is set, so samples accumulate for post-run
	// summarization (internal/report) without the JSONL round-trip.
	AlwaysSample bool
	// Sink, when non-nil, receives every sample as it is taken — the
	// streaming aggregation path. Must be set before AttachNetwork.
	Sink SampleSink
	// DropSamples stops samplers from retaining their in-memory series;
	// set it alongside Sink to keep memory bounded on long runs whose
	// consumer aggregates on the fly.
	DropSamples bool
	// Spans enables latency-attribution span recording on every attached
	// network; completed flows then carry their FCT decomposition
	// (FlowRecord.Spans). Must be set before AttachNetwork.
	Spans bool
	// Profile attaches an event-loop flight recorder to every attached
	// engine; Close writes the per-(kind, plane) bins as profile records.
	// Must be set before AttachNetwork.
	Profile bool
	// Fingerprint attaches a determinism fingerprinter to every attached
	// engine; Close writes its epoch checkpoints as fingerprint records.
	// Must be set before AttachNetwork.
	Fingerprint bool
	// FingerprintEpoch overrides the checkpoint cadence in events; zero
	// selects sim.DefaultFingerprintEpoch. Must be set before
	// AttachNetwork.
	FingerprintEpoch int64
	// TraceFlows, when non-empty, restricts the packet-trace stream to
	// the listed flow IDs. Events for other flows return before a line is
	// built — filtered tracing stays allocation-free.
	TraceFlows []int64

	// Flows, Solver, and Faults accumulate records in memory for
	// programmatic use (the JSONL streams carry the same data).
	Flows  []FlowRecord
	Solver []SolverRecord
	Faults []FaultRecord

	mu      sync.Mutex // guards the record slices and attach bookkeeping
	traceMu sync.Mutex // serializes all JSONLSinks sharing tw

	// runWallNs accumulates wall time spent inside engine runs
	// (workload.Driver.RunUntil), summed across sweep cells — the
	// measured side of predicted-vs-achieved PDES speedup. Atomic:
	// parallel cells add concurrently.
	runWallNs atomic.Int64
	mw        *MetricsWriter
	jw        *MetricsWriter // fingerprint journal stream, if any
	tw        *bufio.Writer  // shared by every network's JSONLSink
	samplers  []*Sampler
	sinks     []*JSONLSink
	profiles  []profileEntry
	fps       []fingerprintEntry
	nets      int
}

// fingerprintEntry pairs a fingerprinter with the NetID it was attached
// under, so checkpoint records carry the same Net as the engine's
// samples in the metrics stream.
type fingerprintEntry struct {
	fp  *sim.Fingerprinter
	net int
}

// FingerprintSnapshot is one engine's fingerprint state: its epoch
// checkpoints (including the trailing partial one) and the cadence.
type FingerprintSnapshot struct {
	NetID       int
	EpochEvents int64
	Checkpoints []sim.FingerprintCheckpoint
}

// profileEntry pairs a flight recorder with its engine, its network
// (for the per-host delivery counts), and the engine's conservative PDES
// lookahead (the network's propagation delay). Recorder IDs are a
// sequence of their own, independent of network attach order, so
// profile-only attachments never shift the NetIDs of the metrics
// stream.
type profileEntry struct {
	rec       *sim.FlightRecorder
	eng       *sim.Engine
	net       *sim.Network
	lookahead sim.Time
}

// HostOccupancy is one host's measured event load within a profile
// snapshot: the packets delivered to it over the profiled run.
type HostOccupancy struct {
	Host   int64
	Events int64
}

// ProfileSnapshot is one engine's flight-recorder state: the non-empty
// (kind, plane) bins, the engine's conservative PDES lookahead, and the
// sim time it had reached when snapshotted (the profiled duration).
// SubShards, present only when the engine ran host-sub-sharded
// (host-shards > 1), is the events fired per host sub-shard — the
// occupancy split the sub-shard speedup predictors need. PlaneShards is
// the analogous per-plane-shard split (present when plane shards > 1).
// Hosts is the per-host delivery count in host-ID order, covering every
// bound host (zeros included) so `-emit-placement` files are complete.
type ProfileSnapshot struct {
	NetID       int
	Lookahead   sim.Time
	SimTime     sim.Time
	Bins        []sim.ProfileBin
	SubShards   []int64
	PlaneShards []int64
	Hosts       []HostOccupancy
}

// NewCollector returns a collector with a fresh registry and no streams.
func NewCollector() *Collector { return &Collector{Reg: NewRegistry()} }

// StreamMetrics mirrors samples, flow/solver records, and the final
// metric snapshot to w as JSONL.
func (c *Collector) StreamMetrics(w io.Writer) { c.mw = NewMetricsWriter(w) }

// StreamTrace streams packet lifecycle events of every attached network
// to w as JSONL.
func (c *Collector) StreamTrace(w io.Writer) { c.tw = bufio.NewWriterSize(w, 1<<16) }

// StreamFingerprintJournal streams every folded event of every attached
// fingerprinter to w as fpev JSONL records — the heavyweight divergence-
// debugging mode. Lines from different engines interleave in completion
// order, so journal runs meant for event-level comparison should use
// workers=1 (per-engine order is deterministic either way; `pnetstat
// divergence` groups by net before comparing). Must be called before
// AttachNetwork, and only with Fingerprint set.
func (c *Collector) StreamFingerprintJournal(w io.Writer) { c.jw = NewMetricsWriter(w) }

// MetricsLines returns the number of metric records written so far.
func (c *Collector) MetricsLines() int64 {
	if c == nil || c.mw == nil {
		return 0
	}
	return c.mw.Count()
}

// TraceEvents returns the number of trace lines written so far.
func (c *Collector) TraceEvents() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	sinks := c.sinks
	c.mu.Unlock()
	var n int64
	for _, s := range sinks {
		n += s.EventCount()
	}
	return n
}

func (c *Collector) interval() sim.Time {
	if c.Interval > 0 {
		return c.Interval
	}
	return 10 * sim.Microsecond
}

// AttachNetwork instruments one simulation: the network's tracer is
// pointed at the trace stream (if any) and a sampler is started on the
// engine (if a metrics stream is set). Safe to call on a nil collector.
// It returns the sampler, or nil if none was started.
func (c *Collector) AttachNetwork(eng *sim.Engine, net *sim.Network) *Sampler {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	id := c.nets
	c.nets++
	var sink *JSONLSink
	if c.tw != nil {
		sink = NewJSONLSink(c.tw, eng, net.G)
		sink.mu = &c.traceMu // every sink shares tw; writes must serialize
		sink.only = c.TraceFlows
		c.sinks = append(c.sinks, sink)
	}
	c.mu.Unlock()
	c.Reg.Counter("networks.attached").Inc()
	if sink != nil {
		net.Tracer = sink
	}
	if c.Spans {
		net.EnableSpans()
	}
	if c.Profile {
		c.AttachProfile(eng, net)
	}
	if c.Fingerprint {
		fp := sim.NewFingerprinter(c.FingerprintEpoch)
		if c.jw != nil {
			fp.Journal = c.journalFunc(id)
		}
		eng.Fingerprint = fp
		c.mu.Lock()
		c.fps = append(c.fps, fingerprintEntry{fp: fp, net: id})
		c.mu.Unlock()
	}
	var sampler *Sampler
	if c.mw != nil || c.AlwaysSample || c.Sink != nil {
		sampler = NewSampler(eng, net, c.interval())
		sampler.NetID = id
		sampler.stream = c.mw
		sampler.sink = c.Sink
		sampler.retain = !c.DropSamples
		sampler.Start()
		c.mu.Lock()
		c.samplers = append(c.samplers, sampler)
		c.mu.Unlock()
	}
	return sampler
}

// AttachProfile hooks an event-loop flight recorder onto one engine and
// nothing else: no sampler, no tracer, no registry traffic. It exists so
// a profiling companion can measure an otherwise-uninstrumented
// simulation without perturbing any deterministic output of the run
// (record streams, counters, NetID assignment all stay untouched).
func (c *Collector) AttachProfile(eng *sim.Engine, net *sim.Network) *sim.FlightRecorder {
	if c == nil {
		return nil
	}
	rec := sim.NewFlightRecorder()
	eng.Recorder = rec
	// Count final-hop delivers per destination while profiling — the
	// measured host weights `-emit-placement` exports. Counting changes no
	// event order, so the run's deterministic output is still untouched.
	net.EnableHostLoad()
	c.mu.Lock()
	c.profiles = append(c.profiles, profileEntry{rec: rec, eng: eng, net: net, lookahead: net.PropDelay()})
	c.mu.Unlock()
	return rec
}

// hostOccupancies renders a network's per-host delivery counts: every
// bound host in node-ID order (zeros included, so exported placement
// files are complete), or — on serial runs with no host binds — just the
// nodes that received anything.
func hostOccupancies(net *sim.Network) []HostOccupancy {
	loads := net.HostLoads()
	if loads == nil {
		return nil
	}
	if bound := net.BoundHosts(); len(bound) > 0 {
		out := make([]HostOccupancy, 0, len(bound))
		for _, h := range bound {
			out = append(out, HostOccupancy{Host: int64(h), Events: loads[h]})
		}
		return out
	}
	var out []HostOccupancy
	for id, ev := range loads {
		if ev > 0 {
			out = append(out, HostOccupancy{Host: int64(id), Events: ev})
		}
	}
	return out
}

// Profiles snapshots every attached flight recorder, in attach order.
// Call it only after the profiled engines have stopped.
func (c *Collector) Profiles() []ProfileSnapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ProfileSnapshot, 0, len(c.profiles))
	for i, e := range c.profiles {
		out = append(out, ProfileSnapshot{
			NetID: i, Lookahead: e.lookahead, SimTime: e.eng.Now(), Bins: e.rec.Snapshot(),
			SubShards: e.eng.SubShardEvents(), PlaneShards: e.eng.PlaneShardEvents(),
			Hosts: hostOccupancies(e.net),
		})
	}
	return out
}

// journalFunc builds the per-engine journal hook: each folded event
// becomes one fpev line on the journal stream. The closure allocates
// once per engine at attach time; the per-event path allocates only what
// encoding/json needs (journal mode is explicitly not the cheap path).
func (c *Collector) journalFunc(netID int) func(sim.FingerprintJournalEntry) {
	return func(e sim.FingerprintJournalEntry) {
		c.jw.write(FingerprintEventRecord{
			Type: KindFPEvent, Net: netID, Epoch: e.Epoch, I: e.Index,
			TPs: int64(e.T), Kind: e.Kind.String(), Plane: e.Plane,
			Link: e.Link, Flow: e.Flow, Seq: e.Seq, Size: e.Size,
			Hash: FormatHash(e.Hash),
		})
	}
}

// Fingerprints snapshots every attached fingerprinter. Call it only
// after the fingerprinted engines have stopped.
func (c *Collector) Fingerprints() []FingerprintSnapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FingerprintSnapshot, 0, len(c.fps))
	for _, e := range c.fps {
		out = append(out, FingerprintSnapshot{
			NetID: e.net, EpochEvents: e.fp.EpochEvents(), Checkpoints: e.fp.Checkpoints(),
		})
	}
	return out
}

// Samplers returns the samplers started so far, one per attached
// network, in attach order (so index matches the NetID of the stream).
func (c *Collector) Samplers() []*Sampler {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.samplers
	sort.Slice(out, func(i, j int) bool { return out[i].NetID < out[j].NetID })
	return out
}

// EffectiveInterval reports the sampling period attached networks use.
func (c *Collector) EffectiveInterval() sim.Time {
	if c == nil {
		return 0
	}
	return c.interval()
}

// RecordFlow accepts one completed flow.
func (c *Collector) RecordFlow(r FlowRecord) {
	if c == nil {
		return
	}
	r.Type = "flow"
	c.mu.Lock()
	c.Flows = append(c.Flows, r)
	c.mu.Unlock()
	c.Reg.Counter("flows.completed").Inc()
	c.Reg.Counter("flows.bytes").Add(r.Bytes)
	c.Reg.Counter("flows.retransmits").Add(r.Retransmits)
	if r.FCT > 0 {
		c.Reg.Histogram("flow.fct_s").Observe(r.FCT)
	}
	if c.mw != nil {
		c.mw.write(r)
	}
}

// RecordSolver accepts one solver invocation.
func (c *Collector) RecordSolver(r SolverRecord) {
	if c == nil {
		return
	}
	r.Type = "solver"
	c.mu.Lock()
	c.Solver = append(c.Solver, r)
	c.mu.Unlock()
	c.Reg.Counter("solver.calls").Inc()
	c.Reg.Counter("solver.phases").Add(int64(r.Phases))
	c.Reg.Counter("solver.iterations").Add(r.Iterations)
	if r.WallSec > 0 {
		c.Reg.Histogram("solver.wall_s").Observe(r.WallSec)
	}
	if c.mw != nil {
		c.mw.write(r)
	}
}

// RecordFault accepts one fault lifecycle event (injection, clearance,
// detection, failover, recovery).
func (c *Collector) RecordFault(r FaultRecord) {
	if c == nil {
		return
	}
	r.Type = KindFault
	c.mu.Lock()
	c.Faults = append(c.Faults, r)
	c.mu.Unlock()
	switch r.Event {
	case "inject":
		c.Reg.Counter("faults.injected").Inc()
	case "clear":
		c.Reg.Counter("faults.cleared").Inc()
	case "detect":
		c.Reg.Counter("faults.detected").Inc()
		if r.LatencySec > 0 {
			c.Reg.Histogram("fault.detect_latency_s").Observe(r.LatencySec)
		}
	case "failover":
		if r.LatencySec > 0 {
			c.Reg.Histogram("fault.failover_latency_s").Observe(r.LatencySec)
		}
	case "recover":
		if r.LatencySec > 0 {
			c.Reg.Histogram("fault.recovery_s").Observe(r.LatencySec)
		}
		if r.DipFrac > 0 {
			c.Reg.Histogram("fault.dip_frac").Observe(r.DipFrac)
		}
	}
	if c.mw != nil {
		c.mw.write(r)
	}
}

// FCTs returns the recorded flow completion times in seconds.
func (c *Collector) FCTs() []float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, 0, len(c.Flows))
	for _, f := range c.Flows {
		out = append(out, f.FCT)
	}
	return out
}

// Merge folds src into c: in-memory records are appended and registries
// merged. It is the fan-in step for runs that give each parallel cell a
// private collector (for deterministic per-cell record order) and
// combine them afterwards; merging in cell-index order makes even the
// merged record order deterministic. Streams and samplers are not
// carried over — merge before Close, and only into a collector whose
// producers are quiescent.
func (c *Collector) Merge(src *Collector) {
	if c == nil || src == nil || c == src {
		return
	}
	src.mu.Lock()
	flows := append([]FlowRecord(nil), src.Flows...)
	solver := append([]SolverRecord(nil), src.Solver...)
	faults := append([]FaultRecord(nil), src.Faults...)
	profiles := append([]profileEntry(nil), src.profiles...)
	fps := append([]fingerprintEntry(nil), src.fps...)
	src.mu.Unlock()
	c.mu.Lock()
	c.Flows = append(c.Flows, flows...)
	c.Solver = append(c.Solver, solver...)
	c.Faults = append(c.Faults, faults...)
	c.profiles = append(c.profiles, profiles...)
	for _, e := range fps {
		// Re-key under this collector's NetID sequence: per-cell collectors
		// each start at zero, so carried IDs would collide.
		e.net = c.nets
		c.nets++
		c.fps = append(c.fps, e)
	}
	c.mu.Unlock()
	c.runWallNs.Add(src.runWallNs.Load())
	c.Reg.Merge(src.Reg)
}

// AddRunWall accumulates wall time spent inside an engine run. Safe from
// concurrent sweep cells.
func (c *Collector) AddRunWall(d time.Duration) { c.runWallNs.Add(int64(d)) }

// RunWallNs reports the accumulated engine-run wall time in nanoseconds.
func (c *Collector) RunWallNs() int64 { return c.runWallNs.Load() }

// Close stops samplers, dumps the registry snapshot to the metrics
// stream, and flushes both streams. It returns the first error any
// stream hit.
func (c *Collector) Close() error {
	if c == nil {
		return nil
	}
	var first error
	c.mu.Lock()
	samplers := c.samplers
	sinks := c.sinks
	c.mu.Unlock()
	for _, s := range samplers {
		s.Stop()
	}
	if c.mw != nil {
		for _, snap := range c.Profiles() {
			for _, b := range snap.Bins {
				c.mw.write(ProfileRecord{
					Type: KindProfile, Net: snap.NetID, Kind: b.Kind.String(),
					Plane: b.Plane, Events: b.Events, WallNano: b.WallNs,
					LookaheadPs: int64(snap.Lookahead), SimPs: int64(snap.SimTime),
				})
			}
			// Host-sub-sharded engines additionally report the per-sub-shard
			// occupancy split: Kind "subshard" with Plane = sub-shard index.
			for i, ev := range snap.SubShards {
				c.mw.write(ProfileRecord{
					Type: KindProfile, Net: snap.NetID, Kind: KindSubShard,
					Plane: int32(i), Events: ev,
					LookaheadPs: int64(snap.Lookahead), SimPs: int64(snap.SimTime),
				})
			}
			// ... and the per-plane-shard split: Kind "planeshard" with
			// Plane = plane-shard index.
			for i, ev := range snap.PlaneShards {
				c.mw.write(ProfileRecord{
					Type: KindProfile, Net: snap.NetID, Kind: KindPlaneShard,
					Plane: int32(i), Events: ev,
					LookaheadPs: int64(snap.Lookahead), SimPs: int64(snap.SimTime),
				})
			}
			// Per-host delivery counts: Kind "hostload" with Plane = host
			// node ID — the measured weights `-emit-placement` replays.
			for _, h := range snap.Hosts {
				c.mw.write(ProfileRecord{
					Type: KindProfile, Net: snap.NetID, Kind: KindHostLoad,
					Plane: int32(h.Host), Events: h.Events,
					LookaheadPs: int64(snap.Lookahead), SimPs: int64(snap.SimTime),
				})
			}
		}
		for _, snap := range c.Fingerprints() {
			for _, cp := range snap.Checkpoints {
				r := FingerprintRecord{
					Type: KindFingerprint, Net: snap.NetID, Epoch: cp.Epoch,
					Events: cp.Events, TPs: int64(cp.T), EpochEvents: snap.EpochEvents,
					Hash: FormatHash(cp.Global), Host: FormatHash(cp.Host), Final: cp.Partial,
				}
				for pl, h := range cp.Planes {
					r.Planes = append(r.Planes, PlaneHash{Plane: int32(pl), Hash: FormatHash(h)})
				}
				c.mw.write(r)
			}
		}
		for _, m := range c.Reg.Snapshot() {
			c.mw.write(m)
		}
		if err := c.mw.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if c.jw != nil {
		if err := c.jw.Flush(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
