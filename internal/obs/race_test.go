package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// The parallel sweep harness points many concurrently-running experiment
// cells at one shared Collector. These tests hammer that surface from
// many goroutines; run with -race (CI does) they are the proof that the
// concurrent-producer contract in the package doc holds.

func TestCollectorConcurrentStress(t *testing.T) {
	var mbuf bytes.Buffer
	c := NewCollector()
	c.StreamMetrics(&mbuf)

	const producers = 8
	const perProducer = 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c.RecordFlow(FlowRecord{
					ID: int64(p*perProducer + i), Transport: "tcp",
					Bytes: 1500, FCT: float64(i+1) * 1e-6, Planes: []int32{int32(p % 4)},
				})
				c.RecordSolver(SolverRecord{
					Exp: "stress", Solver: "gk-fixed",
					Phases: 3, Iterations: 17, Attempts: 1, WallSec: 1e-4,
				})
				c.RecordFault(FaultRecord{
					Net: p, Event: "detect", LatencySec: 1e-3,
				})
				// Interleave readers with the writers: these take the same
				// locks and must never observe torn state.
				_ = c.FCTs()
				_ = c.MetricsLines()
				_ = c.TraceEvents()
				c.Reg.Counter("stress.ticks").Inc()
				c.Reg.Gauge("stress.last").Set(float64(i))
				c.Reg.Histogram("stress.h").Observe(float64(i + 1))
			}
		}(p)
	}
	wg.Wait()

	const total = producers * perProducer
	if len(c.Flows) != total || len(c.Solver) != total || len(c.Faults) != total {
		t.Fatalf("records = %d/%d/%d, want %d each", len(c.Flows), len(c.Solver), len(c.Faults), total)
	}
	if got := c.Reg.Counter("flows.completed").Value(); got != total {
		t.Errorf("flows.completed = %d, want %d", got, total)
	}
	if got := c.Reg.Counter("stress.ticks").Value(); got != total {
		t.Errorf("stress.ticks = %d, want %d", got, total)
	}
	if got := c.Reg.Histogram("flow.fct_s").Count(); got != total {
		t.Errorf("fct histogram count = %d, want %d", got, total)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMerge checks the fan-in path gives the same histogram as
// observing everything into one instance, regardless of split.
func TestHistogramMerge(t *testing.T) {
	vals := []float64{1e-6, 3e-6, 0.5, 2, 1024, 7e7}
	var whole, a, b Histogram
	for i, v := range vals {
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	a.Merge(nil) // no-ops must not corrupt state
	a.Merge(&a)
	var empty Histogram
	a.Merge(&empty)

	if a.Count() != whole.Count() || a.Sum() != whole.Sum() {
		t.Fatalf("count/sum = %d/%g, want %d/%g", a.Count(), a.Sum(), whole.Count(), whole.Sum())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("min/max = %g/%g, want %g/%g", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.99} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("quantile(%g) = %g, want %g", q, got, want)
		}
	}
	// Merging into an empty histogram must adopt src's extremes, not
	// keep the zero values.
	var fresh Histogram
	fresh.Merge(&whole)
	if fresh.Min() != whole.Min() || fresh.Max() != whole.Max() {
		t.Errorf("empty-dst merge min/max = %g/%g, want %g/%g", fresh.Min(), fresh.Max(), whole.Min(), whole.Max())
	}
}

func TestRegistryMerge(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Counter("c").Add(2)
	src.Counter("c").Add(3)
	src.Counter("src-only").Add(7)
	dst.Gauge("g").Set(1)
	src.Gauge("g").Set(9)
	dst.Histogram("h").Observe(1)
	src.Histogram("h").Observe(4)

	dst.Merge(src)
	dst.Merge(nil)
	dst.Merge(dst)

	if got := dst.Counter("c").Value(); got != 5 {
		t.Errorf("counter c = %d, want 5", got)
	}
	if got := dst.Counter("src-only").Value(); got != 7 {
		t.Errorf("counter src-only = %d, want 7", got)
	}
	if got := dst.Gauge("g").Value(); got != 9 {
		t.Errorf("gauge g = %g, want 9 (last-write-wins)", got)
	}
	h := dst.Histogram("h")
	if h.Count() != 2 || math.Abs(h.Sum()-5) > 1e-12 {
		t.Errorf("histogram h count/sum = %d/%g, want 2/5", h.Count(), h.Sum())
	}
}

func TestCollectorMerge(t *testing.T) {
	shared := NewCollector()
	shared.RecordFlow(FlowRecord{ID: 1, FCT: 1e-3, Bytes: 10})
	cell := NewCollector()
	cell.RecordFlow(FlowRecord{ID: 2, FCT: 2e-3, Bytes: 20})
	cell.RecordSolver(SolverRecord{Exp: "x", Phases: 1, Iterations: 5, Attempts: 1})
	cell.RecordFault(FaultRecord{Event: "inject"})

	shared.Merge(cell)
	shared.Merge(nil)
	shared.Merge(shared)

	if len(shared.Flows) != 2 || len(shared.Solver) != 1 || len(shared.Faults) != 1 {
		t.Fatalf("records = %d/%d/%d, want 2/1/1", len(shared.Flows), len(shared.Solver), len(shared.Faults))
	}
	if shared.Flows[1].ID != 2 {
		t.Errorf("merged flow order lost: %+v", shared.Flows)
	}
	if got := shared.Reg.Counter("flows.completed").Value(); got != 2 {
		t.Errorf("merged flows.completed = %d, want 2", got)
	}
	if got := shared.Reg.Counter("faults.injected").Value(); got != 1 {
		t.Errorf("merged faults.injected = %d, want 1", got)
	}
}
