package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("P50 = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("mean = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 50.5 || s.Median != 50.5 {
		t.Errorf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Errorf("p99 = %v", s.P99)
	}
}

func TestRelative(t *testing.T) {
	a := Summary{Mean: 80, Median: 50, P99: 90}
	base := Summary{Mean: 100, Median: 100, P99: 100}
	r := a.Relative(base)
	if r.Mean != 0.8 || r.Median != 0.5 || r.P99 != 0.9 {
		t.Errorf("relative = %+v", r)
	}
	if !math.IsNaN(a.Relative(Summary{}).Mean) {
		t.Error("division by zero base not NaN")
	}
}

func TestCDFAtAndQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v", got)
	}
}

func TestCDFQuantileAtInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50+r.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		c := NewCDF(xs)
		// For every sample x: Quantile(At(x)) == x when x is unique-ish;
		// weaker invariant: At(Quantile(p)) >= p for p in (0,1].
		for i := 0; i < 10; i++ {
			p := (float64(i) + 1) / 10
			if c.At(c.Quantile(p)) < p-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[4][0] != 10 || pts[4][1] != 1 {
		t.Errorf("last point = %v", pts[4])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] <= pts[i-1][1] {
			t.Errorf("non-increasing probabilities: %v", pts)
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if str := s.String(); str == "" {
		t.Error("empty string")
	}
}
