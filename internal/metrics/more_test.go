package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCDFN(t *testing.T) {
	if got := NewCDF([]float64{1, 2, 3}).N(); got != 3 {
		t.Errorf("N = %d", got)
	}
	if got := NewCDF(nil).N(); got != 0 {
		t.Errorf("empty N = %d", got)
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	c := NewCDF(xs)
	xs[0] = 100
	if c.Quantile(1) == 100 {
		t.Error("CDF aliases caller's slice")
	}
}

func TestEmptyCDFQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewCDF(nil).Quantile(0.5)
}

func TestSummaryPercentileConsistency(t *testing.T) {
	// Median from Summarize must equal Percentile(xs, 50) for random data.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 10+rng.Intn(90))
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		s := Summarize(xs)
		return s.Median == Percentile(xs, 50) &&
			s.P99 == Percentile(xs, 99) &&
			s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPointsSmallN(t *testing.T) {
	c := NewCDF([]float64{5})
	pts := c.Points(10)
	if len(pts) != 1 || pts[0][0] != 5 || pts[0][1] != 1 {
		t.Errorf("points = %v", pts)
	}
	if NewCDF(nil).Points(5) != nil {
		t.Error("empty CDF points not nil")
	}
}
