// Package metrics provides the summary statistics the paper reports:
// means, medians, tail percentiles, empirical CDFs, and normalization
// helpers for "relative to serial low-bandwidth" plots.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("metrics: percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean; it panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: mean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Summary bundles the statistics reported in the paper's tables.
type Summary struct {
	N            int
	Mean, Median float64
	P90, P99     float64
	Min, Max     float64
}

// Summarize computes a Summary; it panics on an empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("metrics: summarize of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	return Summary{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		Median: percentileSorted(s, 50),
		P90:    percentileSorted(s, 90),
		P99:    percentileSorted(s, 99),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// Relative expresses each field of s as a fraction of the corresponding
// field of base — the paper's Table 2 normalization.
func (s Summary) Relative(base Summary) Summary {
	div := func(a, b float64) float64 {
		if b == 0 {
			return math.NaN()
		}
		return a / b
	}
	return Summary{
		N:      s.N,
		Mean:   div(s.Mean, base.Mean),
		Median: div(s.Median, base.Median),
		P90:    div(s.P90, base.P90),
		P99:    div(s.P99, base.P99),
		Min:    div(s.Min, base.Min),
		Max:    div(s.Max, base.Max),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g p90=%.4g p99=%.4g",
		s.N, s.Mean, s.Median, s.P90, s.P99)
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	xs []float64 // sorted
}

// NewCDF builds an empirical CDF from samples.
func NewCDF(samples []float64) CDF {
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	return CDF{xs: xs}
}

// N returns the sample count.
func (c CDF) N() int { return len(c.xs) }

// At returns P(X ≤ x).
func (c CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the smallest sample x with At(x) ≥ p (0 < p ≤ 1).
func (c CDF) Quantile(p float64) float64 {
	if len(c.xs) == 0 {
		panic("metrics: quantile of empty CDF")
	}
	i := int(math.Ceil(p*float64(len(c.xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.xs) {
		i = len(c.xs) - 1
	}
	return c.xs[i]
}

// Points returns up to n evenly spaced (x, P(X≤x)) pairs for plotting.
func (c CDF) Points(n int) [][2]float64 {
	if len(c.xs) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.xs) {
		n = len(c.xs)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(c.xs) / n
		if idx > len(c.xs) {
			idx = len(c.xs)
		}
		out = append(out, [2]float64{c.xs[idx-1], float64(idx) / float64(len(c.xs))})
	}
	return out
}
