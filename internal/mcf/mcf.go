// Package mcf computes maximum concurrent multicommodity flow — the
// "ideal throughput" metric the paper obtains from an LP solver (§5.1.1).
//
// Given commodities (src, dst, demand), the max concurrent flow is the
// largest λ such that every commodity can simultaneously ship λ×demand
// through the network without exceeding any link capacity. Three routing
// regimes are supported, matching the paper's methodology:
//
//   - Pinned: every commodity is restricted to a single given path (the
//     model of per-flow ECMP). Solved exactly in closed form.
//   - FixedPaths: every commodity may split flow across a given path set
//     (the model of MPTCP over K shortest paths). Solved by the
//     Garg–Könemann/Fleischer multiplicative-weights FPTAS, or exactly by
//     the simplex solver for small instances.
//   - Free: no path restriction (the paper's "ideal throughput under no
//     path constraint", Figure 7). Garg–Könemann with a Dijkstra oracle.
package mcf

import (
	"fmt"
	"math"
	"time"

	"pnet/internal/graph"
	"pnet/internal/par"
	"pnet/internal/route"
)

// Options configures the approximation solvers.
type Options struct {
	// Epsilon is the Garg–Könemann accuracy parameter; the returned λ is
	// at least (1-O(ε)) times optimal. Zero selects the default 0.10.
	Epsilon float64
}

func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 {
		return 0.10
	}
	return o.Epsilon
}

// SolverStats instruments an approximation-solver run: how much work the
// Garg–Könemann iteration did and how long it took in wall time. The
// telemetry layer (internal/obs) exports these per invocation.
type SolverStats struct {
	// Phases counts completed GK phases, summed over rescaling attempts.
	Phases int
	// Iterations counts inner augmentations (oracle calls that shipped
	// flow), summed over rescaling attempts.
	Iterations int64
	// Attempts counts adaptive demand-rescaling runs of the core solver.
	Attempts int
	// Wall is the measured wall-clock time of the whole solve.
	Wall time.Duration
}

// Result reports a max-concurrent-flow computation.
type Result struct {
	// Lambda is the concurrent throughput multiplier: every commodity can
	// ship Lambda×Demand simultaneously.
	Lambda float64
	// TotalThroughput is Lambda times the sum of demands.
	TotalThroughput float64
	// Unrouted counts commodities that had no usable path. If nonzero,
	// Lambda is necessarily 0 unless those commodities were skipped; they
	// are included here so callers can detect partitioned inputs.
	Unrouted int
	// Stats holds solver instrumentation; zero for the closed-form
	// (Pinned) and exact (simplex) paths.
	Stats SolverStats
}

func result(lambda float64, cs []route.Commodity, unrouted int) Result {
	var sum float64
	for _, c := range cs {
		sum += c.Demand
	}
	return Result{Lambda: lambda, TotalThroughput: lambda * sum, Unrouted: unrouted}
}

// Pinned computes the exact max concurrent flow when each commodity is
// pinned to one path: λ = min over links of capacity/load, where load sums
// the demands of commodities crossing the link.
func Pinned(g *graph.Graph, cs []route.Commodity, paths [][]graph.Path) Result {
	if len(paths) != len(cs) {
		panic("mcf: paths/commodities length mismatch")
	}
	load := make([]float64, g.NumLinks())
	unrouted := 0
	for i, ps := range paths {
		if len(ps) == 0 {
			unrouted++
			continue
		}
		for _, l := range ps[0].Links {
			load[l] += cs[i].Demand
		}
	}
	if unrouted > 0 {
		return result(0, cs, unrouted)
	}
	lambda := math.Inf(1)
	for i, ld := range load {
		if ld > 0 {
			if r := g.Link(graph.LinkID(i)).Capacity / ld; r < lambda {
				lambda = r
			}
		}
	}
	if math.IsInf(lambda, 1) {
		lambda = 0
	}
	return result(lambda, cs, 0)
}

// FixedPaths computes max concurrent flow where each commodity may split
// across its given path set, using Garg–Könemann. Commodities with an
// empty path set make the instance infeasible (λ=0).
//
// The oracle scans a precomputed flat path→link incidence (CSR layout:
// per-commodity path offsets into one contiguous link array) instead of
// re-walking the [][]Path slices, so a warm oracle call is a single
// cache-linear sweep with zero allocations. Tie-breaking (first path
// with the strictly smallest length wins, in the caller's path order)
// is unchanged.
func FixedPaths(g *graph.Graph, cs []route.Commodity, paths [][]graph.Path, opts Options) Result {
	if len(paths) != len(cs) {
		panic("mcf: paths/commodities length mismatch")
	}
	for _, ps := range paths {
		if len(ps) == 0 {
			return result(0, cs, countEmpty(paths))
		}
	}
	o := newFixedOracle(paths)
	lambda, stats := adaptiveGK(g.Frozen(), cs, o.pick, opts.epsilon())
	r := result(lambda, cs, 0)
	r.Stats = stats
	return r
}

// fixedOracle holds the flattened path→link incidence for a FixedPaths
// solve. Commodity j's paths are pathStart[commStart[j]:commStart[j+1]+1]
// offsets into links.
type fixedOracle struct {
	paths     [][]graph.Path // originals, returned to the solver
	commStart []int32        // len(cs)+1, indexes pathStart
	pathStart []int32        // len(total paths)+1, indexes links
	links     []graph.LinkID // all path links, concatenated
}

func newFixedOracle(paths [][]graph.Path) *fixedOracle {
	np, nl := 0, 0
	for _, ps := range paths {
		np += len(ps)
		for _, p := range ps {
			nl += len(p.Links)
		}
	}
	o := &fixedOracle{
		paths:     paths,
		commStart: make([]int32, len(paths)+1),
		pathStart: make([]int32, 0, np+1),
		links:     make([]graph.LinkID, 0, nl),
	}
	for j, ps := range paths {
		o.commStart[j] = int32(len(o.pathStart))
		for _, p := range ps {
			o.pathStart = append(o.pathStart, int32(len(o.links)))
			o.links = append(o.links, p.Links...)
		}
	}
	o.commStart[len(paths)] = int32(len(o.pathStart))
	o.pathStart = append(o.pathStart, int32(len(o.links)))
	return o
}

func (o *fixedOracle) pick(j int, length []float64) (graph.Path, bool) {
	lo, hi := o.commStart[j], o.commStart[j+1]
	best, bestLen := int32(-1), math.Inf(1)
	for p := lo; p < hi; p++ {
		var l float64
		for _, e := range o.links[o.pathStart[p]:o.pathStart[p+1]] {
			l += length[e]
		}
		if l < bestLen {
			best, bestLen = p, l
		}
	}
	return o.paths[j][best-lo], true
}

// Free computes max concurrent flow with no path restriction ("ideal"
// capacity), using Garg–Könemann with a lazy Dijkstra shortest-path
// oracle on the CSR frozen view.
//
// Source amortization happens where it cannot perturb the solve: the
// reachability probe runs one BFS sweep per unique source (serving every
// commodity that shares it) instead of one per commodity, and all of a
// solve's Dijkstra refreshes share one scratch space, so a warm refresh
// allocates nothing. The refreshes themselves stay per-(consult,
// commodity): GK interleaves an augmentation between any two oracle
// consults, so two same-source commodities never see the same length
// vector, and batching their cache refreshes from one tree would change
// which of several equal-length shortest paths each one augments — see
// DESIGN.md "Solver hot path" for why that breaks trajectory
// reproducibility.
func Free(g *graph.Graph, cs []route.Commodity, opts Options) Result {
	fz := g.Frozen()
	eps := opts.epsilon()
	o := &freeOracle{fz: fz, cs: cs, eps: eps,
		scratch: graph.NewScratch(), cache: make([]freeCache, len(cs))}
	// Probe reachability first so unroutable commodities are reported
	// rather than looping forever. One full BFS per unique source covers
	// all its commodities — reachability is a property of the tree, so
	// this is identical to per-commodity probes — and the per-source
	// sweeps only read the frozen view, so they fan out across cores.
	// The GK phase loop itself stays sequential — each phase's length
	// function depends on every earlier routing decision, and reordering
	// them would change the result.
	var srcs []graph.NodeID
	members := map[graph.NodeID][]int{}
	for j, c := range cs {
		if _, ok := members[c.Src]; !ok {
			srcs = append(srcs, c.Src)
		}
		members[c.Src] = append(members[c.Src], j)
	}
	unrouted := 0
	for _, bad := range par.Map(len(srcs), 0, func(i int) int {
		s := graph.GetScratch()
		defer graph.PutScratch(s)
		fz.BFS(s, srcs[i], -1, nil, nil)
		bad := 0
		for _, j := range members[srcs[i]] {
			// A degenerate src==dst commodity counts as unrouted, as it
			// always has (BFS marks the source reached, a per-pair probe
			// rejects the empty path).
			if d := cs[j].Dst; d == srcs[i] || !s.Reached(d) {
				bad++
			}
		}
		return bad
	}) {
		unrouted += bad
	}
	if unrouted > 0 {
		return result(0, cs, unrouted)
	}
	lambda, stats := adaptiveGK(fz, cs, o.paths, eps)
	r := result(lambda, cs, 0)
	r.Stats = stats
	return r
}

// freeOracle is the Free solver's lazy shortest-path oracle state: one
// path cache per commodity (link buffers are recycled across refreshes)
// and one shared Dijkstra scratch space. After the first few refreshes
// have grown the buffers, a warm oracle call — cached or refreshing —
// performs zero allocations (enforced by TestFreeOracleZeroAlloc).
type freeOracle struct {
	fz      *graph.Frozen
	cs      []route.Commodity
	eps     float64
	scratch *graph.Scratch
	cache   []freeCache
}

type freeCache struct {
	links        []graph.LinkID
	lenAtCompute float64
	valid        bool
}

func (o *freeOracle) paths(j int, length []float64) (graph.Path, bool) {
	c := &o.cache[j]
	if c.valid {
		var cur float64
		for _, e := range c.links {
			cur += length[e]
		}
		if cur <= (1+o.eps)*c.lenAtCompute {
			if cur < c.lenAtCompute {
				c.lenAtCompute = cur
			}
			return graph.Path{Links: c.links}, true
		}
	}
	src, dst := o.cs[j].Src, o.cs[j].Dst
	if src == dst || !o.fz.Dijkstra(o.scratch, src, length, dst) {
		return graph.Path{}, false
	}
	c.links = o.fz.AppendPath(o.scratch, src, dst, c.links[:0])
	c.lenAtCompute = o.scratch.Dist(dst)
	c.valid = true
	return graph.Path{Links: c.links}, true
}

// adaptiveGK wraps gargKonemann with demand rescaling. GK's accuracy
// degrades when termination happens within the first few phases (λ much
// smaller than the demand scale) and its runtime explodes when λ is much
// larger than the demand scale. The driver first scales demands by an
// upper bound on λ (source-capacity bound), then re-runs with the measured
// estimate if too few phases completed for the requested accuracy.
//
// The oracle closure owns whatever scratch state it needs (path caches,
// Dijkstra scratch, flat incidence). Each concurrent solve — one per
// sweep-cell worker — builds its own oracle, so no scratch is ever
// shared across workers.
func adaptiveGK(fz *graph.Frozen, cs []route.Commodity, oracle func(int, []float64) (graph.Path, bool), eps float64) (float64, SolverStats) {
	start := time.Now()
	var stats SolverStats
	// Upper bound: commodity j cannot exceed capOut(src)/demand.
	ub := math.Inf(1)
	for _, c := range cs {
		var capOut float64
		for _, id := range fz.OutLinks(c.Src) {
			if fz.LinkUp(id) {
				capOut += fz.LinkCap(id)
			}
		}
		if b := capOut / c.Demand; b < ub {
			ub = b
		}
	}
	if math.IsInf(ub, 1) || ub <= 0 {
		stats.Wall = time.Since(start)
		return 0, stats
	}
	scale := ub
	minPhases := int(math.Ceil(2 / eps))
	var lambda float64
	for attempt := 0; attempt < 12; attempt++ {
		scaled := make([]route.Commodity, len(cs))
		for i, c := range cs {
			scaled[i] = c
			scaled[i].Demand = c.Demand * scale
		}
		lam, phases, iters := gargKonemann(fz, scaled, oracle, eps)
		stats.Attempts++
		stats.Phases += phases
		stats.Iterations += iters
		lambda = lam * scale
		if phases >= minPhases {
			break
		}
		if lambda == 0 {
			// The scale was so far above λ that the run stopped inside
			// the first phase before touching every commodity. Back off
			// geometrically until a full phase completes.
			scale /= 1024
			continue
		}
		// Too few phases: demands were scaled too high. Re-center the
		// scale on the estimate so the next run completes ~T phases.
		scale = lambda
	}
	stats.Wall = time.Since(start)
	return lambda, stats
}

// gargKonemann runs the Fleischer variant of the Garg–Könemann max
// concurrent flow algorithm. oracle(j, lengths) returns commodity j's
// cheapest usable path under the given link lengths. It returns the
// feasible concurrent ratio, the number of full phases completed, and
// the number of inner augmentation iterations.
func gargKonemann(fz *graph.Frozen, cs []route.Commodity, oracle func(int, []float64) (graph.Path, bool), eps float64) (float64, int, int64) {
	m := 0
	cap := make([]float64, fz.NumLinks())
	for i := 0; i < fz.NumLinks(); i++ {
		id := graph.LinkID(i)
		cap[i] = fz.LinkCap(id)
		if fz.LinkUp(id) && cap[i] > 0 {
			m++
		}
	}
	if m == 0 || len(cs) == 0 {
		return 0, 0, 0
	}

	delta := math.Pow(float64(m)/(1-eps), -1/eps)
	length := make([]float64, fz.NumLinks())
	var dual float64 // D(l) = sum cap(e)*length(e)
	for i := range length {
		if cap[i] > 0 {
			length[i] = delta / cap[i]
			dual += delta
		}
	}

	routed := make([]float64, len(cs)) // total flow shipped per commodity
	scaleT := math.Log(1/delta) / math.Log(1+eps)
	phases := 0
	var iters int64

	for dual < 1 {
		for j := range cs {
			remaining := cs[j].Demand
			for remaining > 0 && dual < 1 {
				p, ok := oracle(j, length)
				if !ok {
					return 0, phases, iters
				}
				iters++
				// Bottleneck capacity along the path.
				bottleneck := math.Inf(1)
				for _, e := range p.Links {
					if cap[e] < bottleneck {
						bottleneck = cap[e]
					}
				}
				f := math.Min(remaining, bottleneck)
				for _, e := range p.Links {
					old := length[e]
					length[e] = old * (1 + eps*f/cap[e])
					dual += cap[e] * (length[e] - old)
				}
				routed[j] += f
				remaining -= f
			}
		}
		if dual < 1 {
			phases++
		}
	}

	lambda := math.Inf(1)
	for j := range cs {
		if r := routed[j] / cs[j].Demand; r < lambda {
			lambda = r
		}
	}
	return lambda / scaleT, phases, iters
}

func countEmpty(paths [][]graph.Path) int {
	n := 0
	for _, ps := range paths {
		if len(ps) == 0 {
			n++
		}
	}
	return n
}

// Validate checks that a path set is usable for the given commodities:
// endpoints match and every path is valid in g. It returns a descriptive
// error for the first problem found.
func Validate(g *graph.Graph, cs []route.Commodity, paths [][]graph.Path) error {
	if len(paths) != len(cs) {
		return fmt.Errorf("mcf: %d path sets for %d commodities", len(paths), len(cs))
	}
	for i, ps := range paths {
		for pi, p := range ps {
			if !p.Valid(g) {
				return fmt.Errorf("mcf: commodity %d path %d invalid", i, pi)
			}
			if p.Src(g) != cs[i].Src || p.Dst(g) != cs[i].Dst {
				return fmt.Errorf("mcf: commodity %d path %d endpoint mismatch", i, pi)
			}
		}
	}
	return nil
}
