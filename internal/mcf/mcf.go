// Package mcf computes maximum concurrent multicommodity flow — the
// "ideal throughput" metric the paper obtains from an LP solver (§5.1.1).
//
// Given commodities (src, dst, demand), the max concurrent flow is the
// largest λ such that every commodity can simultaneously ship λ×demand
// through the network without exceeding any link capacity. Three routing
// regimes are supported, matching the paper's methodology:
//
//   - Pinned: every commodity is restricted to a single given path (the
//     model of per-flow ECMP). Solved exactly in closed form.
//   - FixedPaths: every commodity may split flow across a given path set
//     (the model of MPTCP over K shortest paths). Solved by the
//     Garg–Könemann/Fleischer multiplicative-weights FPTAS, or exactly by
//     the simplex solver for small instances.
//   - Free: no path restriction (the paper's "ideal throughput under no
//     path constraint", Figure 7). Garg–Könemann with a Dijkstra oracle.
package mcf

import (
	"fmt"
	"math"
	"time"

	"pnet/internal/graph"
	"pnet/internal/par"
	"pnet/internal/route"
)

// Options configures the approximation solvers.
type Options struct {
	// Epsilon is the Garg–Könemann accuracy parameter; the returned λ is
	// at least (1-O(ε)) times optimal. Zero selects the default 0.10.
	Epsilon float64
}

func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 {
		return 0.10
	}
	return o.Epsilon
}

// SolverStats instruments an approximation-solver run: how much work the
// Garg–Könemann iteration did and how long it took in wall time. The
// telemetry layer (internal/obs) exports these per invocation.
type SolverStats struct {
	// Phases counts completed GK phases, summed over rescaling attempts.
	Phases int
	// Iterations counts inner augmentations (oracle calls that shipped
	// flow), summed over rescaling attempts.
	Iterations int64
	// Attempts counts adaptive demand-rescaling runs of the core solver.
	Attempts int
	// Wall is the measured wall-clock time of the whole solve.
	Wall time.Duration
}

// Result reports a max-concurrent-flow computation.
type Result struct {
	// Lambda is the concurrent throughput multiplier: every commodity can
	// ship Lambda×Demand simultaneously.
	Lambda float64
	// TotalThroughput is Lambda times the sum of demands.
	TotalThroughput float64
	// Unrouted counts commodities that had no usable path. If nonzero,
	// Lambda is necessarily 0 unless those commodities were skipped; they
	// are included here so callers can detect partitioned inputs.
	Unrouted int
	// Stats holds solver instrumentation; zero for the closed-form
	// (Pinned) and exact (simplex) paths.
	Stats SolverStats
}

func result(lambda float64, cs []route.Commodity, unrouted int) Result {
	var sum float64
	for _, c := range cs {
		sum += c.Demand
	}
	return Result{Lambda: lambda, TotalThroughput: lambda * sum, Unrouted: unrouted}
}

// Pinned computes the exact max concurrent flow when each commodity is
// pinned to one path: λ = min over links of capacity/load, where load sums
// the demands of commodities crossing the link.
func Pinned(g *graph.Graph, cs []route.Commodity, paths [][]graph.Path) Result {
	if len(paths) != len(cs) {
		panic("mcf: paths/commodities length mismatch")
	}
	load := make([]float64, g.NumLinks())
	unrouted := 0
	for i, ps := range paths {
		if len(ps) == 0 {
			unrouted++
			continue
		}
		for _, l := range ps[0].Links {
			load[l] += cs[i].Demand
		}
	}
	if unrouted > 0 {
		return result(0, cs, unrouted)
	}
	lambda := math.Inf(1)
	for i, ld := range load {
		if ld > 0 {
			if r := g.Link(graph.LinkID(i)).Capacity / ld; r < lambda {
				lambda = r
			}
		}
	}
	if math.IsInf(lambda, 1) {
		lambda = 0
	}
	return result(lambda, cs, 0)
}

// FixedPaths computes max concurrent flow where each commodity may split
// across its given path set, using Garg–Könemann. Commodities with an
// empty path set make the instance infeasible (λ=0).
func FixedPaths(g *graph.Graph, cs []route.Commodity, paths [][]graph.Path, opts Options) Result {
	if len(paths) != len(cs) {
		panic("mcf: paths/commodities length mismatch")
	}
	for _, ps := range paths {
		if len(ps) == 0 {
			return result(0, cs, countEmpty(paths))
		}
	}
	oracle := func(j int, length []float64) (graph.Path, bool) {
		best, bestLen := -1, math.Inf(1)
		for pi, p := range paths[j] {
			var l float64
			for _, e := range p.Links {
				l += length[e]
			}
			if l < bestLen {
				best, bestLen = pi, l
			}
		}
		return paths[j][best], true
	}
	lambda, stats := adaptiveGK(g, cs, oracle, opts.epsilon())
	r := result(lambda, cs, 0)
	r.Stats = stats
	return r
}

// Free computes max concurrent flow with no path restriction ("ideal"
// capacity), using Garg–Könemann with a lazy Dijkstra shortest-path oracle.
func Free(g *graph.Graph, cs []route.Commodity, opts Options) Result {
	cache := make([]cachedPath, len(cs))
	eps := opts.epsilon()
	oracle := func(j int, length []float64) (graph.Path, bool) {
		c := &cache[j]
		if c.valid {
			cur := pathLen(c.path, length)
			if cur <= (1+eps)*c.lenAtCompute {
				c.lenAtCompute = math.Min(c.lenAtCompute, cur)
				return c.path, true
			}
		}
		p, d, ok := graph.WeightedShortestPath(g, cs[j].Src, cs[j].Dst, length)
		if !ok {
			return graph.Path{}, false
		}
		cache[j] = cachedPath{path: p, lenAtCompute: d, valid: true}
		return p, true
	}
	// Probe reachability first so unroutable commodities are reported
	// rather than looping forever. The per-commodity probes only read the
	// graph, so they fan out across cores; the GK phase loop itself stays
	// sequential — each phase's length function depends on every earlier
	// routing decision, and reordering them would change the result.
	unrouted := 0
	for _, ok := range par.Map(len(cs), 0, func(j int) bool {
		_, ok := graph.ShortestPath(g, cs[j].Src, cs[j].Dst)
		return ok
	}) {
		if !ok {
			unrouted++
		}
	}
	if unrouted > 0 {
		return result(0, cs, unrouted)
	}
	lambda, stats := adaptiveGK(g, cs, oracle, eps)
	r := result(lambda, cs, 0)
	r.Stats = stats
	return r
}

type cachedPath struct {
	path         graph.Path
	lenAtCompute float64
	valid        bool
}

func pathLen(p graph.Path, length []float64) float64 {
	var l float64
	for _, e := range p.Links {
		l += length[e]
	}
	return l
}

// adaptiveGK wraps gargKonemann with demand rescaling. GK's accuracy
// degrades when termination happens within the first few phases (λ much
// smaller than the demand scale) and its runtime explodes when λ is much
// larger than the demand scale. The driver first scales demands by an
// upper bound on λ (source-capacity bound), then re-runs with the measured
// estimate if too few phases completed for the requested accuracy.
func adaptiveGK(g *graph.Graph, cs []route.Commodity, oracle func(int, []float64) (graph.Path, bool), eps float64) (float64, SolverStats) {
	start := time.Now()
	var stats SolverStats
	// Upper bound: commodity j cannot exceed capOut(src)/demand.
	ub := math.Inf(1)
	for _, c := range cs {
		var capOut float64
		for _, id := range g.OutLinks(c.Src) {
			if l := g.Link(id); l.Up {
				capOut += l.Capacity
			}
		}
		if b := capOut / c.Demand; b < ub {
			ub = b
		}
	}
	if math.IsInf(ub, 1) || ub <= 0 {
		stats.Wall = time.Since(start)
		return 0, stats
	}
	scale := ub
	minPhases := int(math.Ceil(2 / eps))
	var lambda float64
	for attempt := 0; attempt < 12; attempt++ {
		scaled := make([]route.Commodity, len(cs))
		for i, c := range cs {
			scaled[i] = c
			scaled[i].Demand = c.Demand * scale
		}
		lam, phases, iters := gargKonemann(g, scaled, oracle, eps)
		stats.Attempts++
		stats.Phases += phases
		stats.Iterations += iters
		lambda = lam * scale
		if phases >= minPhases {
			break
		}
		if lambda == 0 {
			// The scale was so far above λ that the run stopped inside
			// the first phase before touching every commodity. Back off
			// geometrically until a full phase completes.
			scale /= 1024
			continue
		}
		// Too few phases: demands were scaled too high. Re-center the
		// scale on the estimate so the next run completes ~T phases.
		scale = lambda
	}
	stats.Wall = time.Since(start)
	return lambda, stats
}

// gargKonemann runs the Fleischer variant of the Garg–Könemann max
// concurrent flow algorithm. oracle(j, lengths) returns commodity j's
// cheapest usable path under the given link lengths. It returns the
// feasible concurrent ratio, the number of full phases completed, and
// the number of inner augmentation iterations.
func gargKonemann(g *graph.Graph, cs []route.Commodity, oracle func(int, []float64) (graph.Path, bool), eps float64) (float64, int, int64) {
	m := 0
	cap := make([]float64, g.NumLinks())
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		cap[i] = l.Capacity
		if l.Up && l.Capacity > 0 {
			m++
		}
	}
	if m == 0 || len(cs) == 0 {
		return 0, 0, 0
	}

	delta := math.Pow(float64(m)/(1-eps), -1/eps)
	length := make([]float64, g.NumLinks())
	var dual float64 // D(l) = sum cap(e)*length(e)
	for i := range length {
		if cap[i] > 0 {
			length[i] = delta / cap[i]
			dual += delta
		}
	}

	routed := make([]float64, len(cs)) // total flow shipped per commodity
	scaleT := math.Log(1/delta) / math.Log(1+eps)
	phases := 0
	var iters int64

	for dual < 1 {
		for j := range cs {
			remaining := cs[j].Demand
			for remaining > 0 && dual < 1 {
				p, ok := oracle(j, length)
				if !ok {
					return 0, phases, iters
				}
				iters++
				// Bottleneck capacity along the path.
				bottleneck := math.Inf(1)
				for _, e := range p.Links {
					if cap[e] < bottleneck {
						bottleneck = cap[e]
					}
				}
				f := math.Min(remaining, bottleneck)
				for _, e := range p.Links {
					old := length[e]
					length[e] = old * (1 + eps*f/cap[e])
					dual += cap[e] * (length[e] - old)
				}
				routed[j] += f
				remaining -= f
			}
		}
		if dual < 1 {
			phases++
		}
	}

	lambda := math.Inf(1)
	for j := range cs {
		if r := routed[j] / cs[j].Demand; r < lambda {
			lambda = r
		}
	}
	return lambda / scaleT, phases, iters
}

func countEmpty(paths [][]graph.Path) int {
	n := 0
	for _, ps := range paths {
		if len(ps) == 0 {
			n++
		}
	}
	return n
}

// Validate checks that a path set is usable for the given commodities:
// endpoints match and every path is valid in g. It returns a descriptive
// error for the first problem found.
func Validate(g *graph.Graph, cs []route.Commodity, paths [][]graph.Path) error {
	if len(paths) != len(cs) {
		return fmt.Errorf("mcf: %d path sets for %d commodities", len(paths), len(cs))
	}
	for i, ps := range paths {
		for pi, p := range ps {
			if !p.Valid(g) {
				return fmt.Errorf("mcf: commodity %d path %d invalid", i, pi)
			}
			if p.Src(g) != cs[i].Src || p.Dst(g) != cs[i].Dst {
				return fmt.Errorf("mcf: commodity %d path %d endpoint mismatch", i, pi)
			}
		}
	}
	return nil
}
