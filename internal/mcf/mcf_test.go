package mcf

import (
	"math"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/topo"
)

// twoPathNet: host 0 and host 3 joined by two disjoint 2-switch paths of
// capacity 10 each.
func twoPathNet() (*graph.Graph, []route.Commodity, [][]graph.Path) {
	g := graph.New(4)
	g.SetTransit(0, false)
	g.SetTransit(3, false)
	g.AddDuplex(0, 1, 10, 0)
	g.AddDuplex(1, 3, 10, 0)
	g.AddDuplex(0, 2, 10, 0)
	g.AddDuplex(2, 3, 10, 0)
	cs := []route.Commodity{{Src: 0, Dst: 3, Demand: 10}}
	paths := route.KSPPaths(g, cs, 4)
	return g, cs, paths
}

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestPinnedSingleLink(t *testing.T) {
	g := graph.New(2)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	// Direct host link is unusual but legal for the solver.
	g.AddLink(0, 1, 10, 0)
	cs := []route.Commodity{{Src: 0, Dst: 1, Demand: 10}}
	paths := [][]graph.Path{{{Links: []graph.LinkID{0}}}}
	r := Pinned(g, cs, paths)
	almost(t, "lambda", r.Lambda, 1, 1e-12)
	almost(t, "total", r.TotalThroughput, 10, 1e-12)
}

func TestPinnedSharedBottleneck(t *testing.T) {
	// Two commodities pinned to the same 10G link: λ = 0.5.
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(2, false)
	g.AddDuplex(0, 1, 10, 0)
	g.AddDuplex(1, 2, 10, 0)
	p, _ := graph.ShortestPath(g, 0, 2)
	cs := []route.Commodity{
		{Src: 0, Dst: 2, Demand: 10},
		{Src: 0, Dst: 2, Demand: 10},
	}
	r := Pinned(g, cs, [][]graph.Path{{p}, {p}})
	almost(t, "lambda", r.Lambda, 0.5, 1e-12)
}

func TestPinnedUnrouted(t *testing.T) {
	g := graph.New(2)
	cs := []route.Commodity{{Src: 0, Dst: 1, Demand: 1}}
	r := Pinned(g, cs, [][]graph.Path{nil})
	if r.Unrouted != 1 || r.Lambda != 0 {
		t.Errorf("r = %+v, want unrouted", r)
	}
}

func TestFixedPathsTwoDisjoint(t *testing.T) {
	g, cs, paths := twoPathNet()
	if err := Validate(g, cs, paths); err != nil {
		t.Fatal(err)
	}
	r := FixedPaths(g, cs, paths, Options{Epsilon: 0.03})
	// Both 10G paths usable: λ = 2 (20G for a 10G demand).
	almost(t, "lambda", r.Lambda, 2, 0.15)
}

func TestFixedPathsExactTwoDisjoint(t *testing.T) {
	g, cs, paths := twoPathNet()
	r, err := FixedPathsExact(g, cs, paths)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "lambda", r.Lambda, 2, 1e-9)
}

func TestGKMatchesSimplexOnFatTree(t *testing.T) {
	// Random permutation on a k=4 fat tree with 8-way KSP: compare GK
	// against the exact LP.
	set := topo.FatTreeSet(4, 2, 100)
	for _, tp := range []*topo.Topology{set.SerialLow, set.ParallelHomo} {
		perm := []int{5, 12, 0, 9, 14, 2, 7, 1}
		var cs []route.Commodity
		for i := 0; i+1 < len(perm); i += 2 {
			cs = append(cs, route.Commodity{
				Src: tp.Hosts[perm[i]], Dst: tp.Hosts[perm[i+1]], Demand: 100,
			})
		}
		paths := route.KSPPaths(tp.G, cs, 8)
		exact, err := FixedPathsExact(tp.G, cs, paths)
		if err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		approx := FixedPaths(tp.G, cs, paths, Options{Epsilon: 0.03})
		if approx.Lambda < exact.Lambda*0.90 || approx.Lambda > exact.Lambda*1.001 {
			t.Errorf("%s: GK λ=%v vs exact λ=%v", tp.Name, approx.Lambda, exact.Lambda)
		}
	}
}

func TestFixedPathsParallelDoublesSerial(t *testing.T) {
	// The headline P-Net property: with enough multipath, a 2-plane
	// parallel fat tree carries twice the permutation throughput of its
	// serial low-bandwidth plane.
	set := topo.FatTreeSet(4, 2, 100)
	perm := [][2]int{{0, 10}, {10, 5}, {5, 14}, {14, 3}, {3, 0}}
	mk := func(tp *topo.Topology) Result {
		var cs []route.Commodity
		for _, p := range perm {
			cs = append(cs, route.Commodity{Src: tp.Hosts[p[0]], Dst: tp.Hosts[p[1]], Demand: 100})
		}
		paths := route.KSPPaths(tp.G, cs, 16)
		return FixedPaths(tp.G, cs, paths, Options{Epsilon: 0.05})
	}
	serial := mk(set.SerialLow)
	parallel := mk(set.ParallelHomo)
	ratio := parallel.Lambda / serial.Lambda
	if ratio < 1.7 || ratio > 2.2 {
		t.Errorf("parallel/serial = %v, want ~2 (serial λ=%v parallel λ=%v)",
			ratio, serial.Lambda, parallel.Lambda)
	}
}

func TestFreeSingleCommodity(t *testing.T) {
	g, cs, _ := twoPathNet()
	r := Free(g, cs, Options{Epsilon: 0.03})
	almost(t, "lambda", r.Lambda, 2, 0.15)
}

func TestFreeUnreachable(t *testing.T) {
	g := graph.New(2)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	r := Free(g, []route.Commodity{{Src: 0, Dst: 1, Demand: 1}}, Options{})
	if r.Unrouted != 1 || r.Lambda != 0 {
		t.Errorf("r = %+v", r)
	}
}

func TestFreeNoWorseThanFixed(t *testing.T) {
	set := topo.FatTreeSet(4, 1, 100)
	tp := set.SerialLow
	cs := []route.Commodity{
		{Src: tp.Hosts[0], Dst: tp.Hosts[15], Demand: 100},
		{Src: tp.Hosts[15], Dst: tp.Hosts[0], Demand: 100},
	}
	fixed := FixedPaths(tp.G, cs, route.KSPPaths(tp.G, cs, 8), Options{Epsilon: 0.05})
	free := Free(tp.G, cs, Options{Epsilon: 0.05})
	if free.Lambda < fixed.Lambda*0.9 {
		t.Errorf("free λ=%v below fixed λ=%v", free.Lambda, fixed.Lambda)
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	g, cs, paths := twoPathNet()
	if err := Validate(g, cs, paths[:0]); err == nil {
		t.Error("no error for length mismatch")
	}
	bad := [][]graph.Path{{{Links: []graph.LinkID{0, 0}}}}
	if err := Validate(g, cs, bad); err == nil {
		t.Error("no error for invalid path")
	}
	// Endpoint mismatch: reverse path.
	rev := route.KSPPaths(g, []route.Commodity{{Src: 3, Dst: 0, Demand: 1}}, 1)
	if err := Validate(g, cs, rev); err == nil {
		t.Error("no error for endpoint mismatch")
	}
}

func TestSimplexBasics(t *testing.T) {
	// max x+y s.t. x ≤ 3, y ≤ 4, x+y ≤ 5.
	x, obj, err := simplexMax(
		[]float64{1, 1},
		[][]float64{{1, 0}, {0, 1}, {1, 1}},
		[]float64{3, 4, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "obj", obj, 5, 1e-9)
	almost(t, "x+y", x[0]+x[1], 5, 1e-9)
}

func TestSimplexUnbounded(t *testing.T) {
	_, _, err := simplexMax([]float64{1}, [][]float64{{-1}}, []float64{1})
	if err == nil {
		t.Fatal("no error for unbounded LP")
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// b contains zeros (like our demand rows): must not cycle.
	x, obj, err := simplexMax(
		[]float64{1, 0, 0},
		[][]float64{{1, -1, 0}, {1, 0, -1}, {0, 1, 0}, {0, 0, 1}},
		[]float64{0, 0, 2, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "obj", obj, 2, 1e-9)
	_ = x
}

func TestResultTotalThroughput(t *testing.T) {
	g, cs, paths := twoPathNet()
	r := FixedPaths(g, cs, paths, Options{Epsilon: 0.05})
	almost(t, "total", r.TotalThroughput, r.Lambda*10, 1e-9)
}

func TestSolverStatsPopulated(t *testing.T) {
	g, cs, paths := twoPathNet()
	r := FixedPaths(g, cs, paths, Options{Epsilon: 0.1})
	if r.Stats.Phases <= 0 || r.Stats.Iterations <= 0 || r.Stats.Attempts <= 0 {
		t.Errorf("FixedPaths stats = %+v", r.Stats)
	}
	if r.Stats.Wall <= 0 {
		t.Errorf("FixedPaths wall = %v", r.Stats.Wall)
	}
	rf := Free(g, cs, Options{Epsilon: 0.1})
	if rf.Stats.Phases <= 0 || rf.Stats.Iterations <= 0 || rf.Stats.Wall <= 0 {
		t.Errorf("Free stats = %+v", rf.Stats)
	}
}
