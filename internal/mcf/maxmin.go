package mcf

import (
	"math"

	"pnet/internal/graph"
	"pnet/internal/route"
)

// MaxMinResult reports a max-min fair allocation over pinned paths.
type MaxMinResult struct {
	// Rates is the per-commodity allocation.
	Rates []float64
	// Total is the sum of rates — the "achieved throughput" of a traffic
	// pattern under fixed routing.
	Total float64
	// MinRate is the smallest allocation among routed commodities.
	MinRate float64
	// Unrouted counts commodities without a path (rate 0).
	Unrouted int
}

// MaxMinPinned computes the max-min fair rate allocation when every
// commodity is pinned to a single path, by progressive filling: all
// unfrozen flows rise at the same rate; whenever a link saturates, the
// flows crossing it freeze at the current level; a flow also freezes on
// reaching its demand (a non-positive demand means unbounded). This
// models what a fair per-flow transport achieves over hash-pinned ECMP
// routes; Total is the "achieved throughput" plotted in the paper's ECMP
// figures.
func MaxMinPinned(g *graph.Graph, cs []route.Commodity, paths [][]graph.Path) MaxMinResult {
	if len(paths) != len(cs) {
		panic("mcf: paths/commodities length mismatch")
	}
	n := len(cs)
	res := MaxMinResult{Rates: make([]float64, n)}

	remaining := make([]float64, g.NumLinks())
	for i := range remaining {
		remaining[i] = g.Link(graph.LinkID(i)).Capacity
	}
	flowsOn := make([][]int32, g.NumLinks())
	activeOn := make([]int, g.NumLinks())
	active := make([]bool, n)
	activeCount := 0
	for i, ps := range paths {
		if len(ps) == 0 {
			res.Unrouted++
			continue
		}
		active[i] = true
		activeCount++
		for _, e := range ps[0].Links {
			flowsOn[e] = append(flowsOn[e], int32(i))
			activeOn[e]++
		}
	}

	freeze := func(f int32, level float64) {
		if !active[f] {
			return
		}
		active[f] = false
		activeCount--
		res.Rates[f] = level
		for _, e := range paths[f][0].Links {
			activeOn[e]--
		}
	}

	level := 0.0
	for activeCount > 0 {
		// Next event: a link saturates or a flow reaches its demand.
		inc := math.Inf(1)
		for e := range activeOn {
			if activeOn[e] > 0 {
				if share := remaining[e] / float64(activeOn[e]); share < inc {
					inc = share
				}
			}
		}
		for i := range cs {
			if active[i] && cs[i].Demand > 0 {
				if room := cs[i].Demand - level; room < inc {
					inc = room
				}
			}
		}
		if math.IsInf(inc, 1) {
			// Active flows with neither a constraining link nor a demand.
			for i := range cs {
				if active[i] {
					freeze(int32(i), level)
				}
			}
			break
		}
		if inc < 0 {
			inc = 0
		}

		level += inc
		for e := range activeOn {
			if activeOn[e] > 0 {
				remaining[e] -= inc * float64(activeOn[e])
			}
		}
		const tol = 1e-9
		progressed := false
		for e := range activeOn {
			if activeOn[e] > 0 && remaining[e] <= tol*g.Link(graph.LinkID(e)).Capacity {
				for _, f := range flowsOn[e] {
					if active[f] {
						freeze(f, level)
						progressed = true
					}
				}
			}
		}
		for i := range cs {
			if active[i] && cs[i].Demand > 0 && level >= cs[i].Demand-tol {
				freeze(int32(i), level)
				progressed = true
			}
		}
		if !progressed {
			// Numerical corner: force progress rather than spin.
			for i := range cs {
				if active[i] {
					freeze(int32(i), level)
				}
			}
		}
	}

	res.MinRate = math.Inf(1)
	for i, r := range res.Rates {
		res.Total += r
		if len(paths[i]) > 0 && r < res.MinRate {
			res.MinRate = r
		}
	}
	if math.IsInf(res.MinRate, 1) {
		res.MinRate = 0
	}
	return res
}
