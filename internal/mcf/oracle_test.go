package mcf

import (
	"math"
	"math/rand"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/par"
	"pnet/internal/route"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

// freeReference is a faithful copy of the pre-CSR Free solver: a per-pair
// graph.WeightedShortestPath oracle with the same (1+ε) path cache, and
// one graph.ShortestPath reachability probe per commodity. It exists so
// TestFreeMatchesReference can prove the source-amortized hot path
// reproduces the historical solver trajectory bit for bit.
func freeReference(g *graph.Graph, cs []route.Commodity, opts Options) Result {
	type cachedPath struct {
		path         graph.Path
		lenAtCompute float64
		valid        bool
	}
	cache := make([]cachedPath, len(cs))
	eps := opts.epsilon()
	oracle := func(j int, length []float64) (graph.Path, bool) {
		c := &cache[j]
		if c.valid {
			var cur float64
			for _, e := range c.path.Links {
				cur += length[e]
			}
			if cur <= (1+eps)*c.lenAtCompute {
				c.lenAtCompute = math.Min(c.lenAtCompute, cur)
				return c.path, true
			}
		}
		p, d, ok := graph.WeightedShortestPath(g, cs[j].Src, cs[j].Dst, length)
		if !ok {
			return graph.Path{}, false
		}
		cache[j] = cachedPath{path: p, lenAtCompute: d, valid: true}
		return p, true
	}
	unrouted := 0
	for _, ok := range par.Map(len(cs), 0, func(j int) bool {
		_, ok := graph.ShortestPath(g, cs[j].Src, cs[j].Dst)
		return ok
	}) {
		if !ok {
			unrouted++
		}
	}
	if unrouted > 0 {
		return result(0, cs, unrouted)
	}
	lambda, stats := adaptiveGK(g.Frozen(), cs, oracle, eps)
	r := result(lambda, cs, 0)
	r.Stats = stats
	return r
}

// TestFreeMatchesReference: the CSR frozen view, the scratch-space
// Dijkstra, and the per-source reachability probe must not perturb the
// Garg–Könemann trajectory at all — λ, phase counts, iteration counts,
// and rescaling attempts are required to be bit-identical to the
// reference per-pair solver across topology families, plane counts, and
// accuracy settings.
func TestFreeMatchesReference(t *testing.T) {
	type instance struct {
		name string
		g    *graph.Graph
		cs   []route.Commodity
	}
	var instances []instance
	for _, planes := range []int{1, 4} {
		for _, tc := range []struct {
			name string
			set  topo.NetworkSet
		}{
			{"fattree", topo.FatTreeSet(4, planes, 100)},
			{"jellyfish", topo.JellyfishSet(8, 3, 2, planes, 100, 42)},
		} {
			tp := tc.set.ParallelHomo
			rng := rand.New(rand.NewSource(int64(planes)))
			instances = append(instances, instance{
				name: tc.name + "/perm",
				g:    tp.G,
				cs:   workload.PermutationCommodities(tp, 100, rng),
			})
			rg, rcs := workload.RackAllToAll(tp, 10)
			instances = append(instances, instance{
				name: tc.name + "/rack",
				g:    rg,
				cs:   rcs,
			})
		}
	}
	for _, inst := range instances {
		for _, eps := range []float64{0.05, 0.10} {
			got := Free(inst.g, inst.cs, Options{Epsilon: eps})
			want := freeReference(inst.g, inst.cs, Options{Epsilon: eps})
			if got.Lambda != want.Lambda {
				t.Errorf("%s eps=%v: lambda %v != reference %v", inst.name, eps, got.Lambda, want.Lambda)
			}
			if got.TotalThroughput != want.TotalThroughput {
				t.Errorf("%s eps=%v: throughput %v != reference %v", inst.name, eps, got.TotalThroughput, want.TotalThroughput)
			}
			if got.Unrouted != want.Unrouted {
				t.Errorf("%s eps=%v: unrouted %d != reference %d", inst.name, eps, got.Unrouted, want.Unrouted)
			}
			if got.Stats.Phases != want.Stats.Phases ||
				got.Stats.Iterations != want.Stats.Iterations ||
				got.Stats.Attempts != want.Stats.Attempts {
				t.Errorf("%s eps=%v: trajectory (phases=%d iters=%d attempts=%d) != reference (phases=%d iters=%d attempts=%d)",
					inst.name, eps,
					got.Stats.Phases, got.Stats.Iterations, got.Stats.Attempts,
					want.Stats.Phases, want.Stats.Iterations, want.Stats.Attempts)
			}
		}
	}
}

// TestFreeRejectsDegenerateCommodity: a src==dst commodity has always
// counted as unrouted (the per-pair probe rejects the empty path); the
// per-source BFS probe must preserve that.
func TestFreeRejectsDegenerateCommodity(t *testing.T) {
	tp := topo.FatTreeSet(4, 2, 100).ParallelHomo
	cs := []route.Commodity{
		{Src: tp.Hosts[0], Dst: tp.Hosts[1], Demand: 1},
		{Src: tp.Hosts[2], Dst: tp.Hosts[2], Demand: 1},
	}
	r := Free(tp.G, cs, Options{})
	if r.Lambda != 0 || r.Unrouted != 1 {
		t.Fatalf("degenerate commodity: lambda=%v unrouted=%d, want 0 and 1", r.Lambda, r.Unrouted)
	}
}

// TestFreeOracleZeroAlloc: once the per-commodity link buffers and the
// shared scratch space have been grown, the Free oracle must not allocate
// — neither on a cache hit nor on a Dijkstra refresh. Doubling every
// length between calls forces the (1+ε) staleness check to fail, so the
// measured loop exercises the full refresh path (search + AppendPath into
// the recycled buffer).
func TestFreeOracleZeroAlloc(t *testing.T) {
	tp := topo.FatTreeSet(4, 2, 100).ParallelHomo
	fz := tp.G.Frozen()
	cs := []route.Commodity{
		{Src: tp.Hosts[0], Dst: tp.Hosts[7], Demand: 1},
		{Src: tp.Hosts[0], Dst: tp.Hosts[12], Demand: 1},
	}
	o := &freeOracle{fz: fz, cs: cs, eps: 0.1,
		scratch: graph.NewScratch(), cache: make([]freeCache, len(cs))}
	length := make([]float64, fz.NumLinks())
	for i := range length {
		length[i] = 1
	}
	warm := func(f func()) float64 {
		f() // grow buffers before measuring
		return testing.AllocsPerRun(100, f)
	}
	if avg := warm(func() {
		for i := range length {
			length[i] *= 2 // force a refresh on every consult
		}
		for j := range cs {
			if _, ok := o.paths(j, length); !ok {
				t.Fatal("oracle found no path")
			}
		}
	}); avg != 0 {
		t.Fatalf("refreshing oracle call allocates %v allocs/run, want 0", avg)
	}
	if avg := warm(func() {
		for j := range cs {
			if _, ok := o.paths(j, length); !ok {
				t.Fatal("oracle found no path")
			}
		}
	}); avg != 0 {
		t.Fatalf("cache-hit oracle call allocates %v allocs/run, want 0", avg)
	}
}

// TestFixedOracleMatchesScan: the flat CSR incidence must reproduce the
// naive nested-slice scan exactly, including first-minimum tie-breaking.
func TestFixedOracleMatchesScan(t *testing.T) {
	g, cs, paths := randomInstance(5)
	o := newFixedOracle(paths)
	length := make([]float64, g.NumLinks())
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		for i := range length {
			// Coarse quantization manufactures exact float ties.
			length[i] = float64(1+rng.Intn(3)) * 0.25
		}
		for j := range cs {
			got, _ := o.pick(j, length)
			best, bestLen := -1, math.Inf(1)
			for p, path := range paths[j] {
				var l float64
				for _, e := range path.Links {
					l += length[e]
				}
				if l < bestLen {
					best, bestLen = p, l
				}
			}
			if !got.Equal(paths[j][best]) {
				t.Fatalf("trial %d commodity %d: pick chose %v, scan chose %v",
					trial, j, got.Links, paths[j][best].Links)
			}
		}
	}
}

// TestFixedOracleZeroAlloc: a warm FixedPaths oracle call is a pure scan
// over the flat incidence and must not allocate.
func TestFixedOracleZeroAlloc(t *testing.T) {
	g, cs, paths := randomInstance(6)
	o := newFixedOracle(paths)
	length := make([]float64, g.NumLinks())
	for i := range length {
		length[i] = 1
	}
	if avg := testing.AllocsPerRun(100, func() {
		for j := range cs {
			o.pick(j, length)
		}
	}); avg != 0 {
		t.Fatalf("warm fixed oracle allocates %v allocs/run, want 0", avg)
	}
}
