package mcf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

// randomInstance builds a small random Jellyfish with a random
// permutation and KSP path sets.
func randomInstance(seed int64) (*graph.Graph, []route.Commodity, [][]graph.Path) {
	set := topo.JellyfishSet(8, 3, 2, 2, 100, seed)
	tp := set.ParallelHomo
	rng := rand.New(rand.NewSource(seed))
	cs := workload.PermutationCommodities(tp, 100, rng)
	paths := route.KSPPaths(tp.G, cs, 4)
	return tp.G, cs, paths
}

// TestGKNeverExceedsExact: the approximation must lower-bound the exact
// LP (within numerical slack) and stay within its guarantee.
func TestGKNeverExceedsExact(t *testing.T) {
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		g, cs, paths := randomInstance(seed%64 + 1)
		exact, err := FixedPathsExact(g, cs, paths)
		if err != nil {
			return true // skip pathological simplex cases
		}
		approx := FixedPaths(g, cs, paths, Options{Epsilon: 0.05})
		if approx.Lambda > exact.Lambda*1.002 {
			t.Logf("seed %d: GK %v > exact %v", seed, approx.Lambda, exact.Lambda)
			return false
		}
		if approx.Lambda < exact.Lambda*0.80 {
			t.Logf("seed %d: GK %v too far below exact %v", seed, approx.Lambda, exact.Lambda)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestFreeDominatesFixed: removing the path restriction can only help.
func TestFreeDominatesFixed(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g, cs, paths := randomInstance(seed)
		fixed := FixedPaths(g, cs, paths, Options{Epsilon: 0.06})
		free := Free(g, cs, Options{Epsilon: 0.06})
		// Allow the approximation slack on both sides.
		if free.Lambda < fixed.Lambda*0.85 {
			t.Errorf("seed %d: free λ=%v < fixed λ=%v", seed, free.Lambda, fixed.Lambda)
		}
	}
}

// TestMaxMinTotalDominatesConcurrent: the max-min-fair TOTAL is at least
// the equal-rate total (concurrent λ × n × demand) for the same pinned
// paths — fairness can only move rate around, never below the uniform
// optimum in aggregate.
func TestMaxMinTotalDominatesConcurrent(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		set := topo.JellyfishSet(8, 3, 2, 2, 100, seed)
		tp := set.ParallelHomo
		rng := rand.New(rand.NewSource(seed))
		cs := workload.PermutationCommodities(tp, 0, rng)
		paths := route.ECMPPaths(tp.G, cs, uint64(seed))
		mm := MaxMinPinned(tp.G, cs, paths)

		csCap := make([]route.Commodity, len(cs))
		copy(csCap, cs)
		for i := range csCap {
			csCap[i].Demand = 100
		}
		conc := Pinned(tp.G, csCap, paths)
		concTotal := conc.Lambda * 100 * float64(len(cs))
		if mm.Total < concTotal*0.999 {
			t.Errorf("seed %d: max-min total %v < concurrent total %v", seed, mm.Total, concTotal)
		}
		if mm.MinRate > conc.Lambda*100*1.001 {
			t.Errorf("seed %d: max-min min-rate %v exceeds concurrent rate %v",
				seed, mm.MinRate, conc.Lambda*100)
		}
	}
}

// TestMaxMinRatesRespectCapacities: no link carries more than capacity.
func TestMaxMinRatesRespectCapacities(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		set := topo.JellyfishSet(8, 3, 2, 2, 100, seed)
		tp := set.ParallelHomo
		rng := rand.New(rand.NewSource(seed))
		cs := workload.PermutationCommodities(tp, 0, rng)
		paths := route.ECMPPaths(tp.G, cs, uint64(seed))
		mm := MaxMinPinned(tp.G, cs, paths)

		load := make([]float64, tp.G.NumLinks())
		for i, ps := range paths {
			if len(ps) == 0 {
				continue
			}
			for _, l := range ps[0].Links {
				load[l] += mm.Rates[i]
			}
		}
		for i, ld := range load {
			cap := tp.G.Link(graph.LinkID(i)).Capacity
			if ld > cap*1.0001 {
				t.Fatalf("seed %d: link %d load %v exceeds capacity %v", seed, i, ld, cap)
			}
		}
	}
}

// TestSimplexMatchesHandLP checks the simplex against a hand-solved LP:
// max 3x+2y st x+y<=4, x<=2, y<=3 -> x=2,y=2, obj=10.
func TestSimplexMatchesHandLP(t *testing.T) {
	x, obj, err := simplexMax(
		[]float64{3, 2},
		[][]float64{{1, 1}, {1, 0}, {0, 1}},
		[]float64{4, 2, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "obj", obj, 10, 1e-9)
	almost(t, "x", x[0], 2, 1e-9)
	almost(t, "y", x[1], 2, 1e-9)
}
