package mcf

import (
	"errors"
	"math"

	"pnet/internal/graph"
	"pnet/internal/route"
)

// FixedPathsExact solves the same LP as FixedPaths exactly with a dense
// primal simplex. Intended for small instances (tests, cross-validation of
// the Garg–Könemann approximation); cost grows cubically with the number
// of paths plus constraints.
func FixedPathsExact(g *graph.Graph, cs []route.Commodity, paths [][]graph.Path) (Result, error) {
	for _, ps := range paths {
		if len(ps) == 0 {
			return result(0, cs, countEmpty(paths)), nil
		}
	}
	// Variable layout: x[0] = λ; then one flow variable per (commodity,
	// path) in order.
	nvar := 1
	varBase := make([]int, len(cs))
	for j, ps := range paths {
		varBase[j] = nvar
		nvar += len(ps)
	}

	// Links that can carry flow.
	usedLinks := map[graph.LinkID]int{}
	for _, ps := range paths {
		for _, p := range ps {
			for _, e := range p.Links {
				if _, ok := usedLinks[e]; !ok {
					usedLinks[e] = len(usedLinks)
				}
			}
		}
	}

	mRows := len(cs) + len(usedLinks)
	A := make([][]float64, mRows)
	b := make([]float64, mRows)
	for i := range A {
		A[i] = make([]float64, nvar)
	}
	// Demand rows: λ·d_j - Σ_p x_{j,p} ≤ 0.
	for j := range cs {
		A[j][0] = cs[j].Demand
		for pi := range paths[j] {
			A[j][varBase[j]+pi] = -1
		}
		b[j] = 0
	}
	// Capacity rows: Σ x over paths crossing e ≤ cap(e).
	for e, row := range usedLinks {
		r := len(cs) + row
		b[r] = g.Link(e).Capacity
		for j, ps := range paths {
			for pi, p := range ps {
				for _, pe := range p.Links {
					if pe == e {
						A[r][varBase[j]+pi]++
					}
				}
			}
		}
	}

	obj := make([]float64, nvar)
	obj[0] = 1
	_, lambda, err := simplexMax(obj, A, b)
	if err != nil {
		return Result{}, err
	}
	return result(lambda, cs, 0), nil
}

var errUnbounded = errors.New("mcf: LP unbounded")
var errIterations = errors.New("mcf: simplex iteration limit exceeded")

// simplexMax maximizes c·x subject to A·x ≤ b, x ≥ 0 with b ≥ 0, using a
// dense tableau and Bland's anti-cycling rule. It returns the optimal x
// and objective.
func simplexMax(c []float64, A [][]float64, b []float64) ([]float64, float64, error) {
	const tol = 1e-9
	m, n := len(A), len(c)
	// Tableau columns: n structural + m slack + 1 rhs. Row m is -c (the
	// objective row); basis starts as the slack identity.
	width := n + m + 1
	t := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, width)
		copy(t[i], A[i])
		t[i][n+i] = 1
		t[i][width-1] = b[i]
	}
	t[m] = make([]float64, width)
	for j := 0; j < n; j++ {
		t[m][j] = -c[j]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	maxIter := 200 * (m + n)
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return nil, 0, errIterations
		}
		// Bland: entering variable = lowest index with negative reduced cost.
		enter := -1
		for j := 0; j < n+m; j++ {
			if t[m][j] < -tol {
				enter = j
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test; Bland tie-break on lowest basis variable index.
		leave, best := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > tol {
				r := t[i][width-1] / t[i][enter]
				if r < best-tol || (r < best+tol && (leave < 0 || basis[i] < basis[leave])) {
					best, leave = r, i
				}
			}
		}
		if leave < 0 {
			return nil, 0, errUnbounded
		}
		pivot(t, leave, enter)
		basis[leave] = enter
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = t[i][width-1]
		}
	}
	return x, t[m][width-1], nil
}

func pivot(t [][]float64, row, col int) {
	p := t[row][col]
	for j := range t[row] {
		t[row][j] /= p
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[row][j]
		}
	}
}
