package mcf

import (
	"math/rand"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func TestMaxMinSharedLink(t *testing.T) {
	// Two flows pinned to the same 10G path: 5 each.
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(2, false)
	g.AddDuplex(0, 1, 10, 0)
	g.AddDuplex(1, 2, 10, 0)
	p, _ := graph.ShortestPath(g, 0, 2)
	cs := []route.Commodity{{Src: 0, Dst: 2}, {Src: 0, Dst: 2}}
	r := MaxMinPinned(g, cs, [][]graph.Path{{p}, {p}})
	almost(t, "total", r.Total, 10, 1e-9)
	almost(t, "rate0", r.Rates[0], 5, 1e-9)
	almost(t, "minrate", r.MinRate, 5, 1e-9)
}

func TestMaxMinWaterFilling(t *testing.T) {
	// Classic three-flow example: flows A (x->z) and B (y->z) share the
	// 10G link into z; flow C (x->y) shares x's 30G uplink with A.
	// Max-min: A=B=5 on the z link; C then fills x's uplink to 25.
	g := graph.New(4)
	// hosts 0 (x), 1 (y); switch 2; host 3 (z) hangs off switch 2.
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	g.SetTransit(3, false)
	g.AddDuplex(0, 2, 30, 0) // x uplink
	g.AddDuplex(1, 2, 30, 0) // y uplink
	g.AddDuplex(2, 3, 10, 0) // z downlink (bottleneck)
	pa, _ := graph.ShortestPath(g, 0, 3)
	pb, _ := graph.ShortestPath(g, 1, 3)
	pc, _ := graph.ShortestPath(g, 0, 1)
	cs := []route.Commodity{{Src: 0, Dst: 3}, {Src: 1, Dst: 3}, {Src: 0, Dst: 1}}
	r := MaxMinPinned(g, cs, [][]graph.Path{{pa}, {pb}, {pc}})
	almost(t, "A", r.Rates[0], 5, 1e-9)
	almost(t, "B", r.Rates[1], 5, 1e-9)
	almost(t, "C", r.Rates[2], 25, 1e-9)
	almost(t, "total", r.Total, 35, 1e-9)
}

func TestMaxMinDemandCap(t *testing.T) {
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(2, false)
	g.AddDuplex(0, 1, 10, 0)
	g.AddDuplex(1, 2, 10, 0)
	p, _ := graph.ShortestPath(g, 0, 2)
	// Demand 3 caps the first flow; the second takes the rest.
	cs := []route.Commodity{{Src: 0, Dst: 2, Demand: 3}, {Src: 0, Dst: 2}}
	r := MaxMinPinned(g, cs, [][]graph.Path{{p}, {p}})
	almost(t, "capped", r.Rates[0], 3, 1e-9)
	almost(t, "filler", r.Rates[1], 7, 1e-9)
}

func TestMaxMinUnrouted(t *testing.T) {
	g := graph.New(2)
	cs := []route.Commodity{{Src: 0, Dst: 1}}
	r := MaxMinPinned(g, cs, [][]graph.Path{nil})
	if r.Unrouted != 1 || r.Total != 0 {
		t.Errorf("r = %+v", r)
	}
}

func TestMaxMinMatchesConcurrentOnSymmetricCase(t *testing.T) {
	// When all flows share one bottleneck equally, max-min rates equal
	// the concurrent λ times demand.
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(2, false)
	g.AddDuplex(0, 1, 12, 0)
	g.AddDuplex(1, 2, 12, 0)
	p, _ := graph.ShortestPath(g, 0, 2)
	cs := []route.Commodity{
		{Src: 0, Dst: 2, Demand: 100},
		{Src: 0, Dst: 2, Demand: 100},
		{Src: 0, Dst: 2, Demand: 100},
	}
	paths := [][]graph.Path{{p}, {p}, {p}}
	mm := MaxMinPinned(g, cs, paths)
	conc := Pinned(g, cs, paths)
	almost(t, "maxmin rate", mm.Rates[0], conc.Lambda*100, 1e-9)
}

func TestMaxMinECMPAllToAllSaturates(t *testing.T) {
	// Sanity for the Fig. 6a metric: dense all-to-all under ECMP on a
	// 2-plane fat tree should achieve close to 2x the serial network.
	set := topo.FatTreeSet(4, 2, 100)
	run := func(tp *topo.Topology) float64 {
		cs := workload.AllToAllCommodities(tp, 0)
		paths := route.ECMPPaths(tp.G, cs, 77)
		return MaxMinPinned(tp.G, cs, paths).Total
	}
	serial := run(set.SerialLow)
	parallel := run(set.ParallelHomo)
	ratio := parallel / serial
	if ratio < 1.5 || ratio > 2.1 {
		t.Errorf("all-to-all ECMP ratio = %.2f, want ~2", ratio)
	}
}

func TestMaxMinDeterministic(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	rng := rand.New(rand.NewSource(3))
	cs := workload.PermutationCommodities(tp, 0, rng)
	paths := route.ECMPPaths(tp.G, cs, 5)
	a := MaxMinPinned(tp.G, cs, paths)
	b := MaxMinPinned(tp.G, cs, paths)
	if a.Total != b.Total {
		t.Error("MaxMinPinned not deterministic")
	}
}
