package failure

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/topo"
)

func TestHopCountSweepBaseline(t *testing.T) {
	set := topo.ScaledJellyfish(16, 1, 100, 3)
	pts := HopCountSweep(set.SerialLow, Config{
		Fractions: []float64{0},
		Pairs:     200,
		Trials:    1,
		Seed:      1,
	})
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Unreachable != 0 {
		t.Errorf("unreachable at 0%% failures: %v", pts[0].Unreachable)
	}
	// Host-to-host in a Jellyfish: at least host-tor-tor-host = 3 links.
	if pts[0].AvgHops < 3 {
		t.Errorf("avg hops = %v, want >= 3", pts[0].AvgHops)
	}
}

func TestHopCountMonotoneDegradation(t *testing.T) {
	set := topo.ScaledJellyfish(16, 1, 100, 3)
	pts := HopCountSweep(set.SerialLow, Config{
		Fractions: []float64{0, 0.2, 0.4},
		Pairs:     200,
		Trials:    3,
		Seed:      1,
	})
	if pts[2].AvgHops < pts[0].AvgHops {
		t.Errorf("hops decreased under failures: %v -> %v", pts[0].AvgHops, pts[2].AvgHops)
	}
}

func TestParallelDegradesLessThanSerial(t *testing.T) {
	// The Figure 14 headline: at 40% failures, a 4-plane homogeneous
	// P-Net loses far fewer short paths than the serial network.
	set := topo.ScaledJellyfish(24, 4, 100, 5)
	cfg := Config{Fractions: []float64{0, 0.4}, Pairs: 300, Trials: 3, Seed: 9}

	serial := HopCountSweep(set.SerialLow, cfg)
	parallel := HopCountSweep(set.ParallelHomo, cfg)

	serialGrowth := serial[1].AvgHops / serial[0].AvgHops
	parallelGrowth := parallel[1].AvgHops / parallel[0].AvgHops
	if parallelGrowth >= serialGrowth {
		t.Errorf("parallel growth %.3f >= serial growth %.3f", parallelGrowth, serialGrowth)
	}
	if parallel[1].Unreachable > serial[1].Unreachable {
		t.Errorf("parallel unreachable %.3f > serial %.3f",
			parallel[1].Unreachable, serial[1].Unreachable)
	}
}

func TestHeterogeneousStartsShorter(t *testing.T) {
	// Heterogeneous planes offer shorter min paths at zero failures.
	set := topo.ScaledJellyfish(24, 4, 100, 5)
	cfg := Config{Fractions: []float64{0}, Pairs: 300, Trials: 1, Seed: 2}
	homo := HopCountSweep(set.ParallelHomo, cfg)
	hetero := HopCountSweep(set.ParallelHetero, cfg)
	if hetero[0].AvgHops >= homo[0].AvgHops {
		t.Errorf("hetero avg hops %.3f >= homo %.3f", hetero[0].AvgHops, homo[0].AvgHops)
	}
}

func TestSweepDeterministicForSeed(t *testing.T) {
	set := topo.ScaledJellyfish(16, 2, 100, 3)
	cfg := Config{Fractions: []float64{0.3}, Pairs: 100, Trials: 2, Seed: 42}
	a := HopCountSweep(set.ParallelHomo, cfg)
	b := HopCountSweep(set.ParallelHomo, cfg)
	if a[0].AvgHops != b[0].AvgHops || a[0].Unreachable != b[0].Unreachable {
		t.Error("sweep not deterministic for fixed seed")
	}
}

func TestSweepFracZeroIsFailureFree(t *testing.T) {
	// frac=0 must be a no-op sweep: nothing unreachable, and every trial
	// measures the identical pristine graph — listing the fraction twice
	// must yield bit-identical points even though the RNG advances
	// between them.
	set := topo.ScaledJellyfish(16, 2, 100, 3)
	pts := HopCountSweep(set.ParallelHomo, Config{
		Fractions: []float64{0, 0},
		Pairs:     200,
		Trials:    3,
		Seed:      7,
	})
	for i, pt := range pts {
		if pt.Unreachable != 0 {
			t.Errorf("point %d: unreachable = %v at frac=0", i, pt.Unreachable)
		}
	}
	if pts[0] != pts[1] {
		t.Errorf("frac=0 points differ: %+v vs %+v", pts[0], pts[1])
	}
}

func TestSweepFracOneKillsEveryCable(t *testing.T) {
	// frac=1 downs every inter-switch cable. Host uplinks never fail, so
	// the only survivors are same-switch pairs at exactly
	// host->switch->host = 2 hops; everything else is unreachable.
	set := topo.ScaledJellyfish(16, 1, 100, 3)
	pts := HopCountSweep(set.SerialLow, Config{
		Fractions: []float64{1},
		Pairs:     500,
		Trials:    2,
		Seed:      5,
	})
	pt := pts[0]
	// 4 hosts per switch: ~5% of random ordered pairs share a switch.
	if pt.Unreachable < 0.8 || pt.Unreachable >= 1 {
		t.Errorf("unreachable = %v, want most pairs cut off but same-switch pairs alive", pt.Unreachable)
	}
	if pt.AvgHops != 2 {
		t.Errorf("avg hops over survivors = %v, want exactly 2 (host-switch-host)", pt.AvgHops)
	}
}

func TestOriginalGraphUntouched(t *testing.T) {
	set := topo.ScaledJellyfish(16, 1, 100, 3)
	tp := set.SerialLow
	HopCountSweep(tp, Config{Fractions: []float64{0.5}, Pairs: 50, Trials: 1, Seed: 1})
	for i := 0; i < tp.G.NumLinks(); i++ {
		if !tp.G.Link(graph.LinkID(i)).Up {
			t.Fatal("sweep modified the original topology")
		}
	}
}
