// Package failure implements the paper's fault-tolerance analysis (§5.4,
// Figure 14): knock out random fractions of inter-switch cables and
// measure how the average shortest-path hop count between hosts degrades.
// A P-Net's multiple planes keep short paths alive far longer than a
// serial network's single plane.
package failure

import (
	"math/rand"

	"pnet/internal/graph"
	"pnet/internal/topo"
)

// Config controls a hop-count degradation sweep.
type Config struct {
	// Fractions lists cable-failure rates to evaluate (e.g. 0, 0.1, ...).
	Fractions []float64
	// Pairs is the number of random host pairs sampled per trial.
	// Zero selects 2000.
	Pairs int
	// Trials averages over this many random failure draws. Zero selects 3.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) pairs() int {
	if c.Pairs == 0 {
		return 2000
	}
	return c.Pairs
}

func (c Config) trials() int {
	if c.Trials == 0 {
		return 3
	}
	return c.Trials
}

// Point is one measurement of a sweep.
type Point struct {
	Fraction float64
	// AvgHops is the mean host-to-host shortest-path hop count over
	// reachable sampled pairs (min across planes).
	AvgHops float64
	// Unreachable is the mean fraction of sampled pairs with no
	// surviving path.
	Unreachable float64
}

// HopCountSweep measures average shortest-path hops under random
// inter-switch cable failures. Failing a cable takes down both directed
// links; host uplinks never fail (the paper fails network links).
func HopCountSweep(t *topo.Topology, cfg Config) []Point {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := samplePairs(t, cfg.pairs(), rng)
	cables := interSwitchCables(t)

	out := make([]Point, 0, len(cfg.Fractions))
	for _, frac := range cfg.Fractions {
		var hops, unreach float64
		for trial := 0; trial < cfg.trials(); trial++ {
			g := t.G.Clone()
			failCables(g, cables, frac, rng)
			avg, bad := graph.AvgShortestHops(g, pairs)
			hops += avg
			unreach += float64(bad) / float64(len(pairs))
		}
		out = append(out, Point{
			Fraction:    frac,
			AvgHops:     hops / float64(cfg.trials()),
			Unreachable: unreach / float64(cfg.trials()),
		})
	}
	return out
}

// samplePairs draws distinct random (src, dst) host pairs.
func samplePairs(t *topo.Topology, n int, rng *rand.Rand) [][2]graph.NodeID {
	hosts := t.Hosts
	maxPairs := len(hosts) * (len(hosts) - 1)
	if n > maxPairs {
		n = maxPairs
	}
	pairs := make([][2]graph.NodeID, 0, n)
	seen := make(map[[2]graph.NodeID]bool, n)
	for len(pairs) < n {
		a := hosts[rng.Intn(len(hosts))]
		b := hosts[rng.Intn(len(hosts))]
		if a == b {
			continue
		}
		p := [2]graph.NodeID{a, b}
		if seen[p] {
			continue
		}
		seen[p] = true
		pairs = append(pairs, p)
	}
	return pairs
}

// interSwitchCables groups the topology's inter-switch directed links
// into duplex cables.
func interSwitchCables(t *topo.Topology) [][2]graph.LinkID {
	var cables [][2]graph.LinkID
	seen := make(map[graph.LinkID]bool)
	for _, id := range t.InterSwitchLinks() {
		if seen[id] {
			continue
		}
		rid, ok := t.G.ReverseLink(id)
		if !ok {
			continue
		}
		seen[id] = true
		seen[rid] = true
		cables = append(cables, [2]graph.LinkID{id, rid})
	}
	return cables
}

// failCables takes down a random fraction of cables (both directions).
func failCables(g *graph.Graph, cables [][2]graph.LinkID, frac float64, rng *rand.Rand) {
	n := int(float64(len(cables))*frac + 0.5)
	perm := rng.Perm(len(cables))
	for _, idx := range perm[:n] {
		g.SetLinkUp(cables[idx][0], false)
		g.SetLinkUp(cables[idx][1], false)
	}
}
