package tcp

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MTU != 1500 || c.AckSize != 64 || c.InitCwnd != 10 {
		t.Errorf("defaults = %+v", c)
	}
	if c.RTOMin != 10*sim.Millisecond || c.DupAckThresh != 3 {
		t.Errorf("defaults = %+v", c)
	}
	if c.DCTCPGain != 1.0/16 {
		t.Errorf("dctcp gain = %v", c.DCTCPGain)
	}
	// Explicit values survive.
	c2 := Config{MTU: 9000, InitCwnd: 2}.withDefaults()
	if c2.MTU != 9000 || c2.InitCwnd != 2 {
		t.Errorf("overrides lost: %+v", c2)
	}
}

func TestMTUAffectsPacketCount(t *testing.T) {
	_, net, p := dumbbell(100, sim.Config{})
	f, _ := NewFlow(net, Config{MTU: 9000}, []graph.Path{p}, 90_000)
	if f.SizePkts != 10 {
		t.Errorf("SizePkts = %d, want 10 at 9k MTU", f.SizePkts)
	}
	f2, _ := NewFlow(net, Config{}, []graph.Path{p}, 90_000)
	if f2.SizePkts != 60 {
		t.Errorf("SizePkts = %d, want 60 at default MTU", f2.SizePkts)
	}
}

func TestRTOBackoffDoubles(t *testing.T) {
	// Break the path mid-flow by downing the forward link; timeouts must
	// back off exponentially (bounded), and restoring the link must let
	// the flow finish.
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	g.AddDuplex(0, 2, 100, 0)
	g.AddDuplex(1, 2, 100, 0)
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	p, _ := graph.ShortestPath(g, 0, 1)
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 30_000)
	f.Start()

	// After a short time, "fail" by saturating nothing — instead check
	// backoff growth directly through repeated forced timeouts.
	sf := f.subs[0]
	eng.RunUntil(100 * sim.Microsecond)
	if !f.Done() {
		t.Fatal("clean 20-packet flow should be done in 100us")
	}
	if sf.backoff != 0 {
		t.Errorf("backoff = %d after clean run", sf.backoff)
	}

	// Fresh flow with a black-holed path: packets enqueue to a downed
	// link? Downing before sending makes trySend panic-free but packets
	// just sit; instead simulate ack loss with a 64B-only queue so data
	// drops at once.
	eng2 := sim.NewEngine()
	net2 := sim.NewNetwork(eng2, g, sim.Config{QueueBytes: 64})
	f2, _ := NewFlow(net2, Config{}, []graph.Path{p}, 3000)
	f2.Start()
	eng2.RunUntil(200 * sim.Millisecond)
	sf2 := f2.subs[0]
	if f2.Done() {
		t.Fatal("flow completed through a queue that can't fit data")
	}
	if sf2.backoff < 3 {
		t.Errorf("backoff = %d after repeated timeouts, want >= 3", sf2.backoff)
	}
	if sf2.backoff > 6 {
		t.Errorf("backoff = %d exceeds cap", sf2.backoff)
	}
}

func TestMPTCPSchedulerBalancesEqualPaths(t *testing.T) {
	// On two symmetric paths, the packet split should be near 50/50.
	eng, net, paths := twoPlane(100)
	f, _ := NewFlow(net, Config{}, paths, 10_000_000)
	f.Start()
	eng.RunUntil(20 * sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	a := f.subs[0].sndMax
	b := f.subs[1].sndMax
	total := a + b
	if total < f.SizePkts {
		t.Fatalf("assigned %d < size %d", total, f.SizePkts)
	}
	ratio := float64(a) / float64(total)
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("subflow split %d/%d (%.2f), want near even", a, b, ratio)
	}
}

func TestDupAckThresholdConfigurable(t *testing.T) {
	// With DupAckThresh high enough, a single loss must be repaired by
	// RTO instead of fast retransmit.
	eng, net, p := dumbbell(100, sim.Config{QueueBytes: 4 * 1500})
	f, _ := NewFlow(net, Config{InitCwnd: 16, DupAckThresh: 1000}, []graph.Path{p}, 30_000)
	fct := runFlow(t, eng, f)
	if net.TotalDrops() == 0 {
		t.Skip("no drop produced; nothing to verify")
	}
	if fct < 10*sim.Millisecond {
		t.Errorf("FCT = %v: loss repaired without RTO despite threshold", fct)
	}
}

func TestFlowFCTAndSubflows(t *testing.T) {
	eng, net, paths := twoPlane(100)
	f, _ := NewFlow(net, Config{}, paths, 1500)
	if f.Subflows() != 2 {
		t.Errorf("subflows = %d", f.Subflows())
	}
	runFlow(t, eng, f)
	if f.FCT() <= 0 || f.Finished <= f.Started {
		t.Errorf("FCT bookkeeping wrong: %v", f.FCT())
	}
	if f.DeliveredPkts() != f.SizePkts {
		t.Errorf("delivered = %d of %d", f.DeliveredPkts(), f.SizePkts)
	}
}

func TestUncoupledConfig(t *testing.T) {
	// Uncoupled subflows in congestion avoidance grow like independent
	// NewReno: after forcing CA (low ssthresh), each increase is 1/cwnd.
	eng, net, paths := twoPlane(100)
	f, _ := NewFlow(net, Config{Uncoupled: true}, paths, 1_000_000)
	for _, sf := range f.subs {
		sf.ssthresh = 1 // force congestion avoidance from the start
	}
	f.Start()
	eng.RunUntil(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	_ = f
}
