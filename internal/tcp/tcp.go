// Package tcp implements the transports the paper simulates on htsim:
// TCP NewReno and MPTCP with Linked-Increases (LIA) coupled congestion
// control [Wischik et al., NSDI 2011; RFC 6356]. A Flow moves a fixed
// number of MTU-sized packets from one host to another over one or more
// subflows, each pinned to a source-routed path — in a P-Net, each subflow
// therefore lives entirely within one dataplane.
//
// The model follows htsim's conventions: packet-counted congestion
// windows, 1500 B data packets, 64 B cumulative ACKs, fast retransmit at
// three duplicate ACKs, go-back-N on retransmission timeout, and a 10 ms
// minimum RTO as the paper tunes per DCTCP guidance.
package tcp

import (
	"fmt"
	"math"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// Config holds transport parameters. The zero value selects the defaults
// described in the package comment.
type Config struct {
	// MTU is the data packet size in bytes (default 1500).
	MTU int32
	// AckSize is the ACK packet size in bytes (default 64).
	AckSize int32
	// InitCwnd is the initial congestion window in packets (default 10).
	InitCwnd float64
	// RTOMin floors the retransmission timeout (default 10 ms, the
	// paper's tuning following DCTCP).
	RTOMin sim.Time
	// DupAckThresh triggers fast retransmit (default 3).
	DupAckThresh int
	// Uncoupled disables LIA: each subflow runs an independent NewReno
	// window. The default (false) couples subflows, which only matters
	// for flows with more than one path.
	Uncoupled bool
	// NoSACK disables selective-repeat loss recovery. By default the
	// sender repairs all holes during fast recovery, one per returning
	// ACK (modelling SACK); without it, recovery degrades to NewReno's
	// one-hole-per-RTT partial-ack repair, which badly inflates FCTs
	// after the burst losses of slow-start overshoot.
	NoSACK bool
	// DCTCP enables ECN-reaction congestion control [Alizadeh et al.,
	// SIGCOMM 2010], the paper's suggested direction for incast traffic
	// (§6.5): receivers echo CE marks, and once per window the sender
	// scales cwnd by the EWMA marking fraction. Requires the network to
	// be built with a nonzero sim.Config.ECNThresholdBytes.
	DCTCP bool
	// DCTCPGain is the EWMA gain g for the marking estimate (default 1/16).
	DCTCPGain float64
	// StallRTOs, when positive, treats that many consecutive timeouts on
	// one subflow as a stalled path and consults Flow.Repath for a
	// replacement — MPTCP's re-establishment of subflows on surviving
	// planes after a runtime fault. Zero disables repathing.
	StallRTOs int
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = 1500
	}
	if c.AckSize == 0 {
		c.AckSize = 64
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10
	}
	if c.RTOMin == 0 {
		c.RTOMin = 10 * sim.Millisecond
	}
	if c.DupAckThresh == 0 {
		c.DupAckThresh = 3
	}
	if c.DCTCPGain == 0 {
		c.DCTCPGain = 1.0 / 16
	}
	return c
}

// Flow is one (MP)TCP transfer.
type Flow struct {
	net *sim.Network
	cfg Config
	// bind is the host placement cell both endpoints share (NewFlow
	// colocates them): the engine whose clock and timers this flow's
	// callbacks use, and the pool its packets come from. On serial runs
	// it names the network's engine, so every path below is uniform.
	bind *sim.HostBind

	// ID labels the flow in packet traces (sim.Packet.FlowID). Callers
	// that want per-flow telemetry assign it before Start; the workload
	// driver numbers flows 1..n in start order.
	ID int64

	// SizePkts is the transfer length in MTU packets.
	SizePkts int64
	subs     []*subflow
	assigned int64 // packets handed to subflows for first transmission
	rcvd     int64 // distinct packets seen by the receiver

	// Started and Finished bracket the transfer: Started is set by
	// Start, Finished when the last ACK returns to the sender.
	Started, Finished sim.Time
	done              bool
	started           bool

	// OnComplete fires at the sender when every packet is acked.
	OnComplete func(*Flow)
	// OnDelivered fires at the receiver when every packet has arrived.
	OnDelivered func(*Flow)

	// Retransmits counts data packets sent more than once.
	Retransmits int64

	// Repath, consulted when Config.StallRTOs consecutive timeouts hit
	// one subflow, may return a replacement path (same endpoints). The
	// subflow keeps its sequence space and receiver state — only the
	// route changes, like an MPTCP subflow re-established on a surviving
	// plane. Returning ok=false, the current path, or a path without a
	// reverse twin leaves the subflow where it is.
	Repath func(f *Flow, subflow int) (graph.Path, bool)
	// OnRepath observes every successful path swap.
	OnRepath func(f *Flow, subflow int, to graph.Path)
	// Repaths counts successful subflow path swaps.
	Repaths int64

	// Latency attribution (sim.Network.EnableSpans): the flow's lifetime
	// is partitioned at sender-side ACK-progress instants and each
	// interval charged to the journey of the packet whose delivery
	// produced the progress, so the attribution totals sum to the FCT
	// exactly. spanOn is latched from the network at NewFlow.
	spanOn       bool
	lastProgress sim.Time
	attrib       sim.SpanAttribution
}

// NewFlow prepares a transfer of sizeBytes over the given paths (one
// subflow per path). Paths must share endpoints and each must have a
// reverse twin for ACKs.
func NewFlow(net *sim.Network, cfg Config, paths []graph.Path, sizeBytes int64) (*Flow, error) {
	cfg = cfg.withDefaults()
	if len(paths) == 0 {
		return nil, fmt.Errorf("tcp: flow needs at least one path")
	}
	if sizeBytes <= 0 {
		return nil, fmt.Errorf("tcp: flow size %d", sizeBytes)
	}
	f := &Flow{
		net:      net,
		cfg:      cfg,
		SizePkts: (sizeBytes + int64(cfg.MTU) - 1) / int64(cfg.MTU),
		spanOn:   net.SpansOn(),
	}
	src, dst := paths[0].Src(net.G), paths[0].Dst(net.G)
	// Sender and receiver state live in one struct and call each other
	// synchronously, so under host sub-sharding both endpoints must fire
	// on one sub-shard; Colocate merges their components (a no-op when
	// sub-sharding is off or they already share one).
	net.Colocate(src, dst)
	f.bind = net.BindOf(src)
	for i, p := range paths {
		if p.Src(net.G) != src || p.Dst(net.G) != dst {
			return nil, fmt.Errorf("tcp: path %d endpoints differ from path 0", i)
		}
		rev, ok := graph.ReversePath(net.G, p)
		if !ok {
			return nil, fmt.Errorf("tcp: path %d has no reverse", i)
		}
		sf := &subflow{
			f:        f,
			idx:      i,
			fwd:      p.Links,
			rev:      rev.Links,
			cwnd:     cfg.InitCwnd,
			ssthresh: math.Inf(1),
			ooo:      make(map[int64]struct{}),
			// DCTCP starts with α=1 (react strongly to the first marks).
			dctcpAlpha: 1,
		}
		sf.dataH = dataHandler{sf}
		sf.ackH = ackHandler{sf}
		f.subs = append(f.subs, sf)
	}
	return f, nil
}

// Subflows returns the number of subflows.
func (f *Flow) Subflows() int { return len(f.subs) }

// SubflowPath returns subflow i's current forward path — after a repath,
// the replacement, not the path the flow started on. Callers must not
// mutate the links.
func (f *Flow) SubflowPath(i int) graph.Path { return graph.Path{Links: f.subs[i].fwd} }

// FCT returns the flow completion time; valid once done.
func (f *Flow) FCT() sim.Time { return f.Finished - f.Started }

// Done reports whether every packet has been acked.
func (f *Flow) Done() bool { return f.done }

// DeliveredPkts returns the number of distinct packets the receiver has
// seen so far — the flow's goodput numerator for in-progress sampling.
func (f *Flow) DeliveredPkts() int64 { return f.rcvd }

// Start begins transmission at the current simulated time.
func (f *Flow) Start() {
	if f.started {
		panic("tcp: flow started twice")
	}
	f.started = true
	f.Started = f.bind.Eng().Now()
	f.lastProgress = f.Started
	for _, sf := range f.subs {
		sf.trySend()
	}
}

// Attribution returns the flow's FCT decomposition as (component, plane,
// duration) cells sorted by (component, plane). Empty unless the network
// had spans enabled before the flow was created; once the flow is done,
// the durations sum to FCT() exactly.
func (f *Flow) Attribution() []sim.SpanTotal { return f.attrib.Totals() }

// AttributedTime returns the total simulated time attributed so far —
// equal to FCT() once the flow is done.
func (f *Flow) AttributedTime() sim.Time { return f.attrib.Total() }

func (f *Flow) checkComplete() {
	if f.done || f.assigned < f.SizePkts {
		return
	}
	for _, sf := range f.subs {
		if sf.sndUna < sf.sndMax {
			return
		}
	}
	f.done = true
	f.Finished = f.bind.Eng().Now()
	for _, sf := range f.subs {
		if sf.rtoEv != nil {
			sf.rtoEv.Cancel()
		}
	}
	if f.OnComplete != nil {
		f.OnComplete(f)
	}
}

// totalCwnd sums the windows of subflows (LIA's w_total).
func (f *Flow) totalCwnd() float64 {
	var t float64
	for _, sf := range f.subs {
		t += sf.cwnd
	}
	return t
}

// liaAlpha computes the MPTCP LIA aggressiveness parameter
// (RFC 6356 §3): alpha = w_total * max_i(w_i/rtt_i^2) / (sum_i w_i/rtt_i)^2.
// Subflows without an RTT sample assume the flow's best-known RTT.
func (f *Flow) liaAlpha() float64 {
	var best sim.Time = math.MaxInt64
	for _, sf := range f.subs {
		if sf.srtt > 0 && sf.srtt < best {
			best = sf.srtt
		}
	}
	if best == math.MaxInt64 {
		best = sim.Millisecond // arbitrary; cancels out when all equal
	}
	var maxTerm, sumTerm float64
	for _, sf := range f.subs {
		rtt := sf.srtt
		if rtt == 0 {
			rtt = best
		}
		r := rtt.Seconds()
		if term := sf.cwnd / (r * r); term > maxTerm {
			maxTerm = term
		}
		sumTerm += sf.cwnd / r
	}
	if sumTerm == 0 {
		return 1
	}
	return f.totalCwnd() * maxTerm / (sumTerm * sumTerm)
}

// subflow carries one path's sender and receiver state.
type subflow struct {
	f        *Flow
	idx      int
	fwd, rev []graph.LinkID

	// Sender.
	cwnd, ssthresh float64
	sndUna, sndNxt int64 // subflow packet sequence space
	sndMax         int64
	dupacks        int
	inRecovery     bool
	recover        int64
	holeCursor     int64 // next sequence considered for SACK repair
	srtt, rttvar   sim.Time

	// DCTCP state: per-window mark accounting and the EWMA estimate.
	dctcpAlpha  float64
	ackedInWin  int64
	markedInWin int64
	winEnd      int64 // window boundary in subflow sequence space
	// RTO uses a lazy wakeup: armRTO only moves rtoDeadline; at most one
	// event is ever scheduled, and a stale firing re-schedules itself to
	// the current deadline. This keeps the event heap free of the
	// millions of cancelled timers a cancel-per-packet scheme creates.
	rtoDeadline sim.Time
	rtoEv       *sim.Event
	backoff     uint
	consecRTOs  int // timeouts since the last ACK progress; repath trigger
	timing      bool
	timedSeq    int64
	timedAt     sim.Time
	// spanCause classifies the next transmission for latency attribution:
	// fresh (window-clocked), RTO retransmission, or first send after a
	// repath. Reset to fresh on ACK progress.
	spanCause sim.SpanCause

	// Receiver.
	rcvNxt int64
	rcvMax int64 // one past the highest sequence ever received
	ooo    map[int64]struct{}

	dataH dataHandler
	ackH  ackHandler
}

type dataHandler struct{ sf *subflow }

func (h dataHandler) HandlePacket(p *sim.Packet) { h.sf.onData(p) }

type ackHandler struct{ sf *subflow }

func (h ackHandler) HandlePacket(p *sim.Packet) { h.sf.onAck(p) }

func (sf *subflow) inflight() int64 { return sf.sndNxt - sf.sndUna }

// trySend transmits as long as the window allows: first any rewound
// sequence range (after a timeout), then fresh packets drawn from the
// flow's unassigned pool.
func (sf *subflow) trySend() {
	for float64(sf.inflight()) < sf.cwnd {
		fresh := false
		switch {
		case sf.sndNxt < sf.sndMax: // go-back-N retransmission
			sf.f.Retransmits++
		case sf.f.assigned < sf.f.SizePkts: // fresh data
			sf.f.assigned++
			sf.sndMax++
			fresh = true
		default:
			return
		}
		sf.transmit(sf.sndNxt, fresh)
		sf.sndNxt++
	}
}

// transmit sends one packet. fresh guards Karn's rule: only
// first-transmission packets may be timed for RTT estimation.
func (sf *subflow) transmit(seq int64, fresh bool) {
	bind := sf.f.bind
	p := sf.f.net.NewPacketOn(bind.Shard())
	p.Size = sf.f.cfg.MTU
	p.Route = sf.fwd
	p.Deliver = sf.dataH
	p.Seq = seq
	p.FlowID = sf.f.ID
	if sf.f.spanOn {
		p.AttachSpan(sf.f.net.NewSpanOn(sf.spanCause, bind.Eng().Now(), bind.Shard()))
	}
	sf.f.net.Send(p)
	if fresh && !sf.timing {
		sf.timing = true
		sf.timedSeq = seq
		sf.timedAt = bind.Eng().Now()
	}
	sf.armRTO()
}

func (sf *subflow) rto() sim.Time {
	if sf.srtt == 0 {
		return sf.f.cfg.RTOMin
	}
	rto := sf.srtt + 4*sf.rttvar
	if rto < sf.f.cfg.RTOMin {
		rto = sf.f.cfg.RTOMin
	}
	return rto
}

func (sf *subflow) armRTO() {
	eng := sf.f.bind.Eng()
	sf.rtoDeadline = eng.Now() + (sf.rto() << sf.backoff)
	if sf.rtoEv == nil || !sf.rtoEv.Pending() {
		sf.rtoEv = eng.At(sf.rtoDeadline, sf.rtoWake)
	}
}

// rtoWake fires at a (possibly stale) deadline; if the deadline has since
// moved, it re-schedules itself instead of acting.
func (sf *subflow) rtoWake() {
	if sf.f.done || sf.sndUna >= sf.sndMax {
		return // idle; next transmission re-arms
	}
	eng := sf.f.bind.Eng()
	if eng.Now() < sf.rtoDeadline {
		sf.rtoEv = eng.At(sf.rtoDeadline, sf.rtoWake)
		return
	}
	sf.onRTO()
}

func (sf *subflow) onRTO() {
	sf.ssthresh = math.Max(sf.cwnd/2, 2)
	sf.cwnd = 1
	sf.sndNxt = sf.sndUna
	sf.dupacks = 0
	sf.inRecovery = false
	sf.timing = false
	sf.consecRTOs++
	sf.spanCause = sim.CauseRTO
	if sf.maybeRepath() {
		// A fresh path deserves a fresh timeout: keep backing off only
		// while stuck on the same (possibly dead) route.
		sf.backoff = 0
		sf.spanCause = sim.CauseRepath
	} else if sf.backoff < 6 {
		sf.backoff++
	}
	sf.trySend()
}

// maybeRepath asks the flow's Repath hook for a replacement path once
// the consecutive-timeout budget is spent. The subflow's sequence space
// and receiver state survive the swap; only the route (and the now
// meaningless RTT estimate) change.
func (sf *subflow) maybeRepath() bool {
	f := sf.f
	if f.cfg.StallRTOs <= 0 || sf.consecRTOs < f.cfg.StallRTOs || f.Repath == nil {
		return false
	}
	// Spend the budget either way; a fruitless query waits another
	// StallRTOs timeouts before asking again.
	sf.consecRTOs = 0
	path, ok := f.Repath(f, sf.idx)
	if !ok || len(path.Links) == 0 || samePath(path.Links, sf.fwd) {
		return false
	}
	g := f.net.G
	if path.Src(g) != g.Link(sf.fwd[0]).Src || path.Dst(g) != g.Link(sf.fwd[len(sf.fwd)-1]).Dst {
		return false // replacement must connect the same endpoints
	}
	rev, ok := graph.ReversePath(g, path)
	if !ok {
		return false
	}
	sf.fwd = path.Links
	sf.rev = rev.Links
	sf.srtt, sf.rttvar = 0, 0
	f.Repaths++
	if f.OnRepath != nil {
		f.OnRepath(f, sf.idx, path)
	}
	return true
}

func samePath(a, b []graph.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// onData runs at the receiver.
func (sf *subflow) onData(p *sim.Packet) {
	seq := p.Seq
	ce := p.CE
	// The data packet's span continues onto its ACK: delivery, ACK send,
	// and ACK enqueue all happen at this instant, so the combined journey
	// stays contiguous from the original send to the ACK's arrival.
	span := p.TakeSpan()
	sf.f.net.ReleaseOn(p, sf.f.bind.Shard())
	if seq+1 > sf.rcvMax {
		sf.rcvMax = seq + 1
	}
	newData := false
	switch {
	case seq == sf.rcvNxt:
		sf.rcvNxt++
		newData = true
		for {
			if _, ok := sf.ooo[sf.rcvNxt]; !ok {
				break
			}
			delete(sf.ooo, sf.rcvNxt)
			sf.rcvNxt++
		}
	case seq > sf.rcvNxt:
		if _, dup := sf.ooo[seq]; !dup {
			sf.ooo[seq] = struct{}{}
			newData = true
		}
	}
	if newData {
		sf.f.rcvd++
		if sf.f.rcvd == sf.f.SizePkts && sf.f.OnDelivered != nil {
			sf.f.OnDelivered(sf.f)
		}
	}
	ack := sf.f.net.NewPacketOn(sf.f.bind.Shard())
	ack.Size = sf.f.cfg.AckSize
	ack.Route = sf.rev
	ack.Deliver = sf.ackH
	ack.AckSeq = sf.rcvNxt
	ack.FlowID = sf.f.ID
	ack.ECE = ce // echo the CE mark (per-packet, as DCTCP requires)
	if span != nil {
		ack.AttachSpan(span)
	}
	sf.f.net.Send(ack)
}

// onAck runs at the sender.
func (sf *subflow) onAck(p *sim.Packet) {
	ackSeq := p.AckSeq
	ece := p.ECE
	span := p.TakeSpan()
	sf.f.net.ReleaseOn(p, sf.f.bind.Shard())
	if sf.f.done {
		sf.f.net.FreeSpanOn(span, sf.f.bind.Shard())
		return
	}
	if sf.f.cfg.DCTCP {
		sf.dctcpOnAck(ackSeq, ece)
	}
	switch {
	case ackSeq > sf.sndUna:
		// Progress: charge [lastProgress, now] to the journey of the
		// packet this ACK answers, *before* checkComplete — at completion
		// lastProgress has reached Finished, so the per-component totals
		// sum to the FCT exactly.
		sf.spanCause = sim.CauseFresh
		if sf.f.spanOn {
			now := sf.f.bind.Eng().Now()
			sf.f.attrib.Attribute(span, sf.f.lastProgress, now)
			sf.f.lastProgress = now
		}
		newly := ackSeq - sf.sndUna
		sf.sndUna = ackSeq
		if sf.sndNxt < sf.sndUna {
			sf.sndNxt = sf.sndUna
		}
		sf.backoff = 0
		sf.consecRTOs = 0
		if sf.timing && ackSeq > sf.timedSeq {
			sf.sampleRTT(sf.f.bind.Eng().Now() - sf.timedAt)
			sf.timing = false
		}
		if sf.inRecovery {
			if ackSeq >= sf.recover { // full ack: leave recovery
				sf.inRecovery = false
				sf.cwnd = sf.ssthresh
				sf.dupacks = 0
			} else { // partial ack: the next hole is lost too
				sf.repairHole()
				sf.cwnd = math.Max(sf.cwnd-float64(newly)+1, 1)
			}
		} else {
			sf.dupacks = 0
			for i := int64(0); i < newly; i++ {
				sf.increaseCwnd()
			}
		}
		if sf.sndUna < sf.sndMax {
			sf.armRTO()
		} else if sf.rtoEv != nil {
			sf.rtoEv.Cancel()
		}
		sf.f.checkComplete()
		if !sf.f.done {
			sf.trySend()
		}
	case ackSeq == sf.sndUna && sf.sndUna < sf.sndMax:
		sf.dupacks++
		if !sf.inRecovery && sf.dupacks == sf.f.cfg.DupAckThresh {
			sf.inRecovery = true
			sf.recover = sf.sndMax
			sf.holeCursor = sf.sndUna
			sf.ssthresh = math.Max(sf.cwnd/2, 2)
			sf.cwnd = sf.ssthresh + float64(sf.f.cfg.DupAckThresh)
			sf.repairHole()
		} else if sf.inRecovery {
			sf.cwnd++ // window inflation per extra dupack
			if !sf.f.cfg.NoSACK {
				// Each returning ACK clocks out one more hole repair.
				sf.repairHole()
			}
			sf.trySend()
		}
	}
	sf.f.net.FreeSpanOn(span, sf.f.bind.Shard())
}

// repairHole retransmits the next lost packet. With SACK (the default),
// the sender walks forward from the cumulative ack, skipping sequences
// the receiver already holds out of order — repairing one hole per
// returning ACK, as a SACK scoreboard would. Without SACK it can only
// resend the first unacked packet (NewReno).
func (sf *subflow) repairHole() {
	if sf.f.cfg.NoSACK {
		sf.f.Retransmits++
		sf.transmit(sf.sndUna, false)
		return
	}
	if sf.holeCursor < sf.sndUna {
		sf.holeCursor = sf.sndUna
	}
	// Only sequences below the receiver's highest arrival are provably
	// lost: each subflow's path is FIFO, so a missing sequence with a
	// later arrival above it cannot still be in flight.
	limit := sf.recover
	if sf.rcvMax < limit {
		limit = sf.rcvMax
	}
	for sf.holeCursor < limit {
		seq := sf.holeCursor
		sf.holeCursor++
		if seq < sf.rcvNxt {
			continue // already received in order
		}
		if _, ok := sf.ooo[seq]; ok {
			continue // received out of order; no repair needed
		}
		sf.f.Retransmits++
		sf.transmit(seq, false)
		return
	}
}

// dctcpOnAck runs DCTCP's per-window marking estimator: count acks and
// echoes, and once per window of data update α and (if the window saw any
// marks) scale cwnd by 1−α/2.
func (sf *subflow) dctcpOnAck(ackSeq int64, ece bool) {
	sf.ackedInWin++
	if ece {
		sf.markedInWin++
	}
	if ackSeq <= sf.winEnd {
		return
	}
	g := sf.f.cfg.DCTCPGain
	frac := float64(sf.markedInWin) / float64(sf.ackedInWin)
	sf.dctcpAlpha = (1-g)*sf.dctcpAlpha + g*frac
	if sf.markedInWin > 0 {
		sf.cwnd = math.Max(sf.cwnd*(1-sf.dctcpAlpha/2), 1)
		// A congestion signal ends slow start.
		if sf.ssthresh > sf.cwnd {
			sf.ssthresh = sf.cwnd
		}
	}
	sf.ackedInWin, sf.markedInWin = 0, 0
	sf.winEnd = sf.sndNxt
}

func (sf *subflow) sampleRTT(s sim.Time) {
	if sf.srtt == 0 {
		sf.srtt = s
		sf.rttvar = s / 2
		return
	}
	d := sf.srtt - s
	if d < 0 {
		d = -d
	}
	sf.rttvar = (3*sf.rttvar + d) / 4
	sf.srtt = (7*sf.srtt + s) / 8
}

// increaseCwnd applies one ACK's worth of growth: slow start doubles per
// RTT; congestion avoidance follows NewReno (uncoupled) or LIA (coupled,
// the MPTCP default).
func (sf *subflow) increaseCwnd() {
	if sf.cwnd < sf.ssthresh {
		sf.cwnd++
		return
	}
	if sf.f.cfg.Uncoupled || len(sf.f.subs) == 1 {
		sf.cwnd += 1 / sf.cwnd
		return
	}
	alpha := sf.f.liaAlpha()
	inc := math.Min(alpha/sf.f.totalCwnd(), 1/sf.cwnd)
	sf.cwnd += inc
}
