package tcp

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// cutPath takes every link of a path (and its reverse) physically down.
func cutPath(net *sim.Network, p graph.Path, up bool) {
	for _, id := range p.Links {
		net.SetLinkUp(id, up)
		if rid, ok := net.G.ReverseLink(id); ok {
			net.SetLinkUp(rid, up)
		}
	}
}

func TestRepathMovesStalledSubflow(t *testing.T) {
	eng, net, paths := twoPlane(100)
	cfg := Config{StallRTOs: 2}
	f, err := NewFlow(net, cfg, paths[:1], 3000*1500) // single-path flow on plane 0
	if err != nil {
		t.Fatal(err)
	}
	var moved []graph.Path
	f.Repath = func(fl *Flow, i int) (graph.Path, bool) { return paths[1], true }
	f.OnRepath = func(fl *Flow, i int, to graph.Path) { moved = append(moved, to) }

	// Kill plane 0 mid-transfer (3000 packets ≈ 360 µs of wire time);
	// the flow must finish on plane 1.
	eng.At(50*sim.Microsecond, func() { cutPath(net, paths[0], false) })
	runFlow(t, eng, f)

	if f.Repaths != 1 {
		t.Errorf("Repaths = %d, want 1", f.Repaths)
	}
	if len(moved) != 1 || !moved[0].Equal(paths[1]) {
		t.Errorf("OnRepath saw %v, want the plane-1 path", moved)
	}
	if got := f.SubflowPath(0); !got.Equal(paths[1]) {
		t.Errorf("subflow path = %v after repath", got)
	}
	if net.TotalBlackholed() == 0 {
		t.Error("no packets blackholed by the cut")
	}
	// Two stall timeouts before the swap: 10ms + 20ms (backed off) ≈ 31ms.
	if fct := f.FCT(); fct < 30*sim.Millisecond || fct > 100*sim.Millisecond {
		t.Errorf("FCT = %v, want ~31ms (stall + recovery)", fct)
	}
}

func TestRepathRejectsSamePath(t *testing.T) {
	eng, net, paths := twoPlane(100)
	cfg := Config{StallRTOs: 1}
	f, err := NewFlow(net, cfg, paths[:1], 1000*1500)
	if err != nil {
		t.Fatal(err)
	}
	queries := 0
	f.Repath = func(fl *Flow, i int) (graph.Path, bool) {
		queries++
		return paths[0], true // no alternative — a serial network's answer
	}
	eng.At(50*sim.Microsecond, func() { cutPath(net, paths[0], false) })
	eng.At(500*sim.Millisecond, func() { cutPath(net, paths[0], true) })
	f.Start()
	eng.RunUntil(5 * sim.Second)

	if !f.Done() {
		t.Fatal("flow did not finish after the fault cleared")
	}
	if f.Repaths != 0 {
		t.Errorf("Repaths = %d on a same-path answer", f.Repaths)
	}
	if queries == 0 {
		t.Error("Repath hook never consulted")
	}
}

func TestRepathDisabledByDefault(t *testing.T) {
	eng, net, paths := twoPlane(100)
	f, err := NewFlow(net, Config{}, paths[:1], 1000*1500)
	if err != nil {
		t.Fatal(err)
	}
	f.Repath = func(fl *Flow, i int) (graph.Path, bool) {
		t.Error("Repath consulted with StallRTOs = 0")
		return graph.Path{}, false
	}
	eng.At(50*sim.Microsecond, func() { cutPath(net, paths[0], false) })
	f.Start()
	eng.RunUntil(200 * sim.Millisecond)
	if f.Done() {
		t.Error("flow finished across a dead link without repathing")
	}
}
