package tcp

import (
	"math"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/sim"
	"pnet/internal/topo"
)

// dumbbell returns a 2-host network joined through one switch with
// speed-Gb/s links, plus the forward path.
func dumbbell(speed float64, cfg sim.Config) (*sim.Engine, *sim.Network, graph.Path) {
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	g.AddDuplex(0, 2, speed, 0)
	g.AddDuplex(1, 2, speed, 0)
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, cfg)
	p, ok := graph.ShortestPath(g, 0, 1)
	if !ok {
		panic("no path")
	}
	return eng, net, p
}

// twoPlane returns a 2-host network with two disjoint single-switch paths.
func twoPlane(speed float64) (*sim.Engine, *sim.Network, []graph.Path) {
	g := graph.New(4)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	g.AddDuplex(0, 2, speed, 0)
	g.AddDuplex(2, 1, speed, 0)
	g.AddDuplex(0, 3, speed, 1)
	g.AddDuplex(3, 1, speed, 1)
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	paths := route.KSPPaths(g, []route.Commodity{{Src: 0, Dst: 1, Demand: 1}}, 2)[0]
	if len(paths) != 2 {
		panic("expected 2 paths")
	}
	return eng, net, paths
}

func runFlow(t *testing.T, eng *sim.Engine, f *Flow) sim.Time {
	t.Helper()
	f.Start()
	eng.RunUntil(20 * sim.Second)
	if !f.Done() {
		t.Fatalf("flow did not complete (acked/assigned=%d/%d of %d)",
			f.rcvd, f.assigned, f.SizePkts)
	}
	return f.FCT()
}

func TestNewFlowValidation(t *testing.T) {
	_, net, p := dumbbell(100, sim.Config{})
	if _, err := NewFlow(net, Config{}, nil, 1000); err == nil {
		t.Error("no error for empty path set")
	}
	if _, err := NewFlow(net, Config{}, []graph.Path{p}, 0); err == nil {
		t.Error("no error for zero size")
	}
	rev, _ := graph.ReversePath(net.G, p)
	if _, err := NewFlow(net, Config{}, []graph.Path{p, rev}, 1000); err == nil {
		t.Error("no error for mismatched endpoints")
	}
}

func TestSinglePacketFlow(t *testing.T) {
	eng, net, p := dumbbell(100, sim.Config{PropDelay: 500 * sim.Nanosecond})
	f, err := NewFlow(net, Config{}, []graph.Path{p}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if f.SizePkts != 1 {
		t.Fatalf("SizePkts = %d", f.SizePkts)
	}
	fct := runFlow(t, eng, f)
	// Data: 2 hops × (120 ns tx + 500 ns prop) = 1240 ns.
	// ACK: 2 hops × (5.12 ns tx + 500 ns prop) ≈ 1010 ns.
	want := 2250 * sim.Nanosecond
	if fct < want-20*sim.Nanosecond || fct > want+20*sim.Nanosecond {
		t.Errorf("FCT = %v, want ≈%v", fct, want)
	}
	if f.Retransmits != 0 {
		t.Errorf("retransmits = %d", f.Retransmits)
	}
}

func TestOnDeliveredBeforeOnComplete(t *testing.T) {
	eng, net, p := dumbbell(100, sim.Config{})
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 3000)
	var deliveredAt, completedAt sim.Time
	f.OnDelivered = func(*Flow) { deliveredAt = eng.Now() }
	f.OnComplete = func(*Flow) { completedAt = eng.Now() }
	runFlow(t, eng, f)
	if deliveredAt == 0 || completedAt == 0 {
		t.Fatal("callbacks not fired")
	}
	if deliveredAt >= completedAt {
		t.Errorf("delivered at %v, completed at %v", deliveredAt, completedAt)
	}
}

func TestBulkThroughputNearLineRate(t *testing.T) {
	// 10 MB over a clean 100G path: FCT should approach the 800 µs
	// serialization floor once slow start finishes.
	eng, net, p := dumbbell(100, sim.Config{})
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 10_000_000)
	fct := runFlow(t, eng, f)
	floor := sim.Time(f.SizePkts) * 120 * sim.Nanosecond
	if fct < floor {
		t.Fatalf("FCT %v below serialization floor %v", fct, floor)
	}
	if fct > 2*floor {
		t.Errorf("FCT %v more than 2x floor %v: transport too slow", fct, floor)
	}
	// Slow start legitimately overshoots the buffer once; losses must
	// stay a small fraction of the transfer.
	if f.Retransmits > f.SizePkts/20 {
		t.Errorf("retransmits = %d of %d packets", f.Retransmits, f.SizePkts)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	// With init cwnd 1 and no losses, cwnd doubles per RTT in slow start.
	eng, net, p := dumbbell(100, sim.Config{})
	f, _ := NewFlow(net, Config{InitCwnd: 1}, []graph.Path{p}, 100*1500)
	f.Start()
	// After a few RTTs the window should have grown well past 1.
	eng.RunUntil(20 * sim.Microsecond)
	if f.subs[0].cwnd < 4 {
		t.Errorf("cwnd = %v after 20us, want >= 4", f.subs[0].cwnd)
	}
	eng.RunUntil(20 * sim.Second)
	if !f.Done() {
		t.Fatal("flow stuck")
	}
}

func TestSACKBeatsNewRenoOnBurstLoss(t *testing.T) {
	// Slow-start overshoot drops a burst of packets. SACK repairs one
	// hole per ACK; NewReno repairs one hole per RTT. The transfer must
	// finish faster and with no spurious retransmissions under SACK.
	run := func(noSACK bool) (sim.Time, int64, int64) {
		eng, net, p := dumbbell(100, sim.Config{})
		f, _ := NewFlow(net, Config{NoSACK: noSACK}, []graph.Path{p}, 10_000_000)
		fct := runFlow(t, eng, f)
		return fct, f.Retransmits, net.TotalDrops()
	}
	sackFCT, sackRxt, sackDrops := run(false)
	renoFCT, _, _ := run(true)
	if sackFCT >= renoFCT {
		t.Errorf("SACK FCT %v >= NewReno FCT %v", sackFCT, renoFCT)
	}
	// With per-path FIFO, SACK repair is exact: every retransmission
	// corresponds to a genuine drop (plus at most a handful of RTO-driven
	// go-back-N resends).
	if sackRxt > sackDrops+20 {
		t.Errorf("SACK retransmits %d far exceed drops %d (spurious repair)",
			sackRxt, sackDrops)
	}
}

func TestFastRetransmitRecoversLoss(t *testing.T) {
	// A queue of 8 packets with init cwnd 64 forces drops; the flow must
	// still complete, using fast retransmit rather than only timeouts.
	eng, net, p := dumbbell(100, sim.Config{QueueBytes: 8 * 1500})
	f, _ := NewFlow(net, Config{InitCwnd: 64}, []graph.Path{p}, 200*1500)
	fct := runFlow(t, eng, f)
	if f.Retransmits == 0 {
		t.Error("expected retransmits with a tiny queue")
	}
	if net.TotalDrops() == 0 {
		t.Error("expected drops")
	}
	// Fast retransmit should keep FCT well under an RTO-dominated run.
	if fct > 100*sim.Millisecond {
		t.Errorf("FCT = %v: loss recovery appears RTO-bound", fct)
	}
}

func TestRTORecoversTailLoss(t *testing.T) {
	// Drop-everything-then-heal scenario is hard to stage without fault
	// hooks; instead verify the RTO floor: a 2-packet flow through a
	// 1-packet queue loses the second packet (no dupacks possible) and
	// must wait ~10 ms for the timeout.
	eng, net, p := dumbbell(100, sim.Config{QueueBytes: 1500})
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 2*1500)
	fct := runFlow(t, eng, f)
	if fct < 10*sim.Millisecond {
		t.Errorf("FCT = %v, want >= RTOMin 10ms", fct)
	}
	if fct > 30*sim.Millisecond {
		t.Errorf("FCT = %v, want a single RTO", fct)
	}
	if net.TotalDrops() != 1 {
		t.Errorf("drops = %d, want 1", net.TotalDrops())
	}
}

func TestMPTCPUsesBothPlanes(t *testing.T) {
	// 10 MB over two disjoint 100G paths finishes faster than a single
	// path. Coupled (LIA) MPTCP is deliberately conservative — it grows
	// the aggregate window like ONE TCP (the paper's §5.1.2 note that
	// MPTCP is slow to probe at small time scales) — so only the
	// uncoupled variant approaches the full 2x.
	mptcpFCT := func(uncoupled bool) sim.Time {
		eng, net, paths := twoPlane(100)
		_ = net
		mp, _ := NewFlow(net, Config{Uncoupled: uncoupled}, paths, 10_000_000)
		return runFlow(t, eng, mp)
	}
	eng1, net1, p := dumbbell(100, sim.Config{})
	single, _ := NewFlow(net1, Config{}, []graph.Path{p}, 10_000_000)
	singleFCT := runFlow(t, eng1, single)
	_ = net1

	coupled := float64(singleFCT) / float64(mptcpFCT(false))
	uncoupled := float64(singleFCT) / float64(mptcpFCT(true))
	if coupled < 1.25 {
		t.Errorf("coupled MPTCP speedup = %.2f, want > 1.25", coupled)
	}
	if uncoupled < 1.6 {
		t.Errorf("uncoupled MPTCP speedup = %.2f, want ~2", uncoupled)
	}
	if uncoupled < coupled {
		t.Errorf("uncoupled (%.2f) should beat coupled (%.2f) on disjoint paths",
			uncoupled, coupled)
	}
}

func TestMPTCPSubflowsStayOnTheirPlane(t *testing.T) {
	_, net, paths := twoPlane(100)
	f, _ := NewFlow(net, Config{}, paths, 1500)
	for i, sf := range f.subs {
		plane := net.G.Link(sf.fwd[0]).Plane
		for _, l := range sf.fwd {
			if net.G.Link(l).Plane != plane {
				t.Errorf("subflow %d forward path crosses planes", i)
			}
		}
		for _, l := range sf.rev {
			if net.G.Link(l).Plane != plane {
				t.Errorf("subflow %d ack path crosses planes", i)
			}
		}
	}
}

func TestLIAFairnessAtSharedBottleneck(t *testing.T) {
	// An MPTCP flow with 2 subflows and a plain TCP flow share one 100G
	// bottleneck. LIA should keep the MPTCP flow from taking much more
	// than the single-path flow (unlike uncoupled, which behaves like 2
	// competing TCPs).
	build := func(uncoupled bool) (mp, single *Flow, eng *sim.Engine) {
		g := graph.New(4)
		g.SetTransit(0, false)
		g.SetTransit(1, false)
		g.SetTransit(3, false)
		// Hosts 0,3 send to 1 through switch 2; bottleneck is 2->1.
		g.AddDuplex(0, 2, 100, 0)
		g.AddDuplex(3, 2, 100, 0)
		g.AddDuplex(2, 1, 100, 0)
		eng = sim.NewEngine()
		net := sim.NewNetwork(eng, g, sim.Config{})
		p0, _ := graph.ShortestPath(g, 0, 1)
		p3, _ := graph.ShortestPath(g, 3, 1)
		mp, _ = NewFlow(net, Config{Uncoupled: uncoupled}, []graph.Path{p0, p0}, 40_000_000)
		single, _ = NewFlow(net, Config{}, []graph.Path{p3}, 40_000_000)
		return mp, single, eng
	}

	mp, single, eng := build(false)
	mp.Start()
	single.Start()
	eng.RunUntil(3 * sim.Millisecond)
	mpRate := float64(mp.rcvd)
	singleRate := float64(single.rcvd)
	if singleRate == 0 {
		t.Fatal("single flow starved")
	}
	ratio := mpRate / singleRate
	if ratio > 2.0 {
		t.Errorf("coupled MPTCP got %.1fx the single flow's share, want near 1x", ratio)
	}
}

func TestUncoupledBeatsCoupledAtSharedBottleneck(t *testing.T) {
	// Sanity check of the coupling mechanism itself: an uncoupled
	// 2-subflow flow should take a larger share than a coupled one.
	share := func(uncoupled bool) float64 {
		g := graph.New(4)
		g.SetTransit(0, false)
		g.SetTransit(1, false)
		g.SetTransit(3, false)
		g.AddDuplex(0, 2, 100, 0)
		g.AddDuplex(3, 2, 100, 0)
		g.AddDuplex(2, 1, 100, 0)
		eng := sim.NewEngine()
		net := sim.NewNetwork(eng, g, sim.Config{})
		p0, _ := graph.ShortestPath(g, 0, 1)
		p3, _ := graph.ShortestPath(g, 3, 1)
		mp, _ := NewFlow(net, Config{Uncoupled: uncoupled}, []graph.Path{p0, p0}, 40_000_000)
		single, _ := NewFlow(net, Config{}, []graph.Path{p3}, 40_000_000)
		mp.Start()
		single.Start()
		eng.RunUntil(3 * sim.Millisecond)
		return float64(mp.rcvd) / math.Max(float64(single.rcvd), 1)
	}
	coupled := share(false)
	uncoupled := share(true)
	if uncoupled <= coupled {
		t.Errorf("uncoupled share %.2f <= coupled share %.2f", uncoupled, coupled)
	}
}

func TestFlowOnFatTree(t *testing.T) {
	// End-to-end: a flow across a 2-plane parallel fat tree with 4-way
	// multipath completes and uses both planes.
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, tp.G, sim.Config{})
	cs := []route.Commodity{{Src: tp.Hosts[0], Dst: tp.Hosts[15], Demand: 1}}
	paths := route.KSPPaths(tp.G, cs, 4)[0]
	f, err := NewFlow(net, Config{}, paths, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if route.PlaneSpread(tp.G, paths) != 2 {
		t.Fatal("paths do not cover both planes")
	}
	fct := runFlow(t, eng, f)
	if fct <= 0 {
		t.Error("non-positive FCT")
	}
}

func TestStartTwicePanics(t *testing.T) {
	eng, net, p := dumbbell(100, sim.Config{})
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 1500)
	f.Start()
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	f.Start()
	_ = eng
}
