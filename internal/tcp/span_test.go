package tcp

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/sim"
)

// componentSums folds the per-(component, plane) totals by component.
func componentSums(totals []sim.SpanTotal) map[sim.SpanComponent]sim.Time {
	out := map[sim.SpanComponent]sim.Time{}
	for _, t := range totals {
		out[t.Comp] += t.Dur
	}
	return out
}

// checkConservation asserts the tentpole invariant: the span components
// sum to the flow's FCT exactly, with no residual.
func checkConservation(t *testing.T, f *Flow) map[sim.SpanComponent]sim.Time {
	t.Helper()
	if got, want := f.AttributedTime(), f.FCT(); got != want {
		t.Fatalf("attributed time %v != FCT %v (residual %v)", got, want, want-got)
	}
	return componentSums(f.Attribution())
}

func TestSpanConservationCleanFlow(t *testing.T) {
	eng, net, p := dumbbell(100, sim.Config{PropDelay: 500 * sim.Nanosecond})
	net.EnableSpans()
	f, err := NewFlow(net, Config{}, []graph.Path{p}, 100*1500)
	if err != nil {
		t.Fatal(err)
	}
	runFlow(t, eng, f)
	sums := checkConservation(t, f)
	if sums[sim.SpanSerialize] == 0 || sums[sim.SpanPropagate] == 0 {
		t.Errorf("clean flow missing wire components: %v", sums)
	}
	if sums[sim.SpanRTOStall] != 0 || sums[sim.SpanRepathGap] != 0 {
		t.Errorf("clean flow charged stall time: %v", sums)
	}
}

func TestSpanConservationRTO(t *testing.T) {
	// The RTO-floor scenario: a 2-packet flow through a 1-packet queue
	// loses the tail packet and waits out the 10ms minimum timeout. That
	// dead time must land in rto_stall, and the books must still balance.
	eng, net, p := dumbbell(100, sim.Config{QueueBytes: 1500})
	net.EnableSpans()
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 2*1500)
	runFlow(t, eng, f)
	sums := checkConservation(t, f)
	if sums[sim.SpanRTOStall] < 5*sim.Millisecond {
		t.Errorf("rto_stall = %v, want most of the 10ms RTO", sums[sim.SpanRTOStall])
	}
}

func TestSpanConservationBurstLoss(t *testing.T) {
	// Tiny queue + big initial window: drops recovered mostly by fast
	// retransmit. Queueing dominates, and the partition stays exact even
	// with reordered repair traffic in flight.
	eng, net, p := dumbbell(100, sim.Config{QueueBytes: 8 * 1500})
	net.EnableSpans()
	f, _ := NewFlow(net, Config{InitCwnd: 64}, []graph.Path{p}, 200*1500)
	runFlow(t, eng, f)
	if f.Retransmits == 0 {
		t.Fatal("scenario produced no retransmits")
	}
	checkConservation(t, f)
}

func TestSpanConservationQueueing(t *testing.T) {
	// Cross traffic: a 64-packet burst fills the shared host egress
	// queue just before a 1-packet flow starts. The small flow's packet
	// waits behind the burst, and that wait must surface as queue time.
	eng, net, p := dumbbell(100, sim.Config{})
	net.EnableSpans()
	burst, _ := NewFlow(net, Config{InitCwnd: 64}, []graph.Path{p}, 64*1500)
	small, _ := NewFlow(net, Config{}, []graph.Path{p}, 1500)
	burst.Start()
	small.Start()
	eng.RunUntil(20 * sim.Second)
	if !burst.Done() || !small.Done() {
		t.Fatal("flows did not complete")
	}
	sums := checkConservation(t, small)
	// 63 packets ahead at 120ns each ≈ 7.6us of waiting.
	if sums[sim.SpanQueue] < 5*sim.Microsecond {
		t.Errorf("queue = %v, want >= 5us behind the burst", sums[sim.SpanQueue])
	}
}

func TestSpanConservationRepath(t *testing.T) {
	// Plane 0 dies mid-transfer; the flow stalls, repaths to plane 1,
	// and finishes. The detection window is charged to repath_gap.
	eng, net, paths := twoPlane(100)
	net.EnableSpans()
	f, err := NewFlow(net, Config{StallRTOs: 2}, paths[:1], 3000*1500)
	if err != nil {
		t.Fatal(err)
	}
	f.Repath = func(fl *Flow, i int) (graph.Path, bool) { return paths[1], true }
	eng.At(50*sim.Microsecond, func() { cutPath(net, paths[0], false) })
	runFlow(t, eng, f)
	if f.Repaths != 1 {
		t.Fatalf("Repaths = %d, want 1", f.Repaths)
	}
	sums := checkConservation(t, f)
	// Stall detection takes two backed-off RTOs (~30ms); the first shows
	// up as rto_stall, the post-swap catch-up as repath_gap.
	if sums[sim.SpanRepathGap] == 0 {
		t.Errorf("repath flow charged no repath_gap: %v", sums)
	}
	if sums[sim.SpanRTOStall]+sums[sim.SpanRepathGap] < 20*sim.Millisecond {
		t.Errorf("stall components sum to %v, want most of the ~31ms outage",
			sums[sim.SpanRTOStall]+sums[sim.SpanRepathGap])
	}
}

func TestSpanConservationMPTCP(t *testing.T) {
	// A two-subflow MPTCP transfer over disjoint planes: attribution
	// stays exact when ACKs from both subflows interleave, and the
	// per-plane totals show both planes carried wire time. The planes
	// run at different speeds — with identical planes both subflows ACK
	// at the same instants, and the tie-winner absorbs the whole
	// progress interval, leaving the other plane legitimately at zero.
	g := graph.New(4)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	g.AddDuplex(0, 2, 100, 0)
	g.AddDuplex(2, 1, 100, 0)
	g.AddDuplex(0, 3, 40, 1)
	g.AddDuplex(3, 1, 40, 1)
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	paths := route.KSPPaths(g, []route.Commodity{{Src: 0, Dst: 1, Demand: 1}}, 2)[0]
	if len(paths) != 2 {
		t.Fatal("expected 2 disjoint paths")
	}
	net.EnableSpans()
	f, _ := NewFlow(net, Config{Uncoupled: true}, paths, 2_000_000)
	runFlow(t, eng, f)
	checkConservation(t, f)
	planes := map[int32]sim.Time{}
	for _, tot := range f.Attribution() {
		if tot.Comp == sim.SpanSerialize || tot.Comp == sim.SpanPropagate {
			planes[tot.Plane] += tot.Dur
		}
	}
	if planes[0] == 0 || planes[1] == 0 {
		t.Errorf("wire time per plane = %v, want both planes > 0", planes)
	}
}

func TestSpanDisabledNoAttribution(t *testing.T) {
	eng, net, p := dumbbell(100, sim.Config{})
	f, _ := NewFlow(net, Config{}, []graph.Path{p}, 10*1500)
	runFlow(t, eng, f)
	if got := f.Attribution(); len(got) != 0 {
		t.Errorf("spans disabled but attribution = %v", got)
	}
	if f.AttributedTime() != 0 {
		t.Errorf("spans disabled but attributed time = %v", f.AttributedTime())
	}
}
