package tcp

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
)

// ecnDumbbell builds a 2-host network with DCTCP-style ECN marking.
func ecnDumbbell(thresholdPkts int32) (*sim.Engine, *sim.Network, graph.Path) {
	return dumbbellCfg(sim.Config{ECNThresholdBytes: thresholdPkts * 1500})
}

func dumbbellCfg(cfg sim.Config) (*sim.Engine, *sim.Network, graph.Path) {
	g := graph.New(3)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	g.AddDuplex(0, 2, 100, 0)
	g.AddDuplex(1, 2, 100, 0)
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, cfg)
	p, _ := graph.ShortestPath(g, 0, 1)
	return eng, net, p
}

func TestDCTCPKeepsQueueShort(t *testing.T) {
	// A long transfer under DCTCP should hold the bottleneck queue near
	// the marking threshold instead of filling the 100-packet buffer.
	eng, net, p := ecnDumbbell(10)
	f, _ := NewFlow(net, Config{DCTCP: true}, []graph.Path{p}, 20_000_000)
	f.Start()

	maxQueue := int32(0)
	probe := func() {}
	probe = func() {
		if q := net.QueueDepth(p.Links[1]); q > maxQueue {
			maxQueue = q
		}
		if !f.Done() {
			eng.After(10*sim.Microsecond, probe)
		}
	}
	eng.After(200*sim.Microsecond, probe) // after slow start settles
	eng.RunUntil(20 * sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	// Steady-state queue should stay well below the drop-tail limit of
	// 100 packets (DCTCP targets ~K).
	if maxQueue > 60*1500 {
		t.Errorf("max steady-state queue = %d bytes, want < 90kB", maxQueue)
	}
	if net.TotalDrops() != 0 {
		t.Errorf("drops = %d under DCTCP, want 0", net.TotalDrops())
	}
}

func TestDCTCPStillCompletesAndFillsLink(t *testing.T) {
	eng, net, p := ecnDumbbell(20)
	f, _ := NewFlow(net, Config{DCTCP: true}, []graph.Path{p}, 20_000_000)
	f.Start()
	eng.RunUntil(20 * sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	floor := sim.Time(f.SizePkts) * 120 * sim.Nanosecond
	if f.FCT() > 2*floor {
		t.Errorf("DCTCP FCT %v more than 2x serialization floor %v", f.FCT(), floor)
	}
}

func TestDCTCPReactsProportionally(t *testing.T) {
	// With marking, alpha should settle strictly between 0 and 1 in
	// steady state (partial marking), not slam to full backoff.
	eng, net, p := ecnDumbbell(10)
	f, _ := NewFlow(net, Config{DCTCP: true}, []graph.Path{p}, 20_000_000)
	f.Start()
	eng.RunUntil(20 * sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	alpha := f.subs[0].dctcpAlpha
	if alpha <= 0 || alpha >= 1 {
		t.Errorf("steady-state alpha = %v, want in (0,1)", alpha)
	}
}

func TestDCTCPIncastBeatsTCP(t *testing.T) {
	// 8-to-1 incast into a small buffer: TCP loses bursts and some
	// flows RTO; DCTCP throttles early and avoids the timeout cliff.
	run := func(dctcp bool) (sim.Time, int64) {
		g := graph.New(10)
		for i := 0; i < 9; i++ {
			g.SetTransit(graph.NodeID(i), false)
		}
		sw := graph.NodeID(9)
		for i := 0; i < 9; i++ {
			g.AddDuplex(graph.NodeID(i), sw, 100, 0)
		}
		cfg := sim.Config{QueueBytes: 64 * 1500}
		if dctcp {
			cfg.ECNThresholdBytes = 10 * 1500
		}
		eng := sim.NewEngine()
		net := sim.NewNetwork(eng, g, cfg)
		done := 0
		var last sim.Time
		for i := 1; i <= 8; i++ {
			p, _ := graph.ShortestPath(g, graph.NodeID(i), 0)
			f, _ := NewFlow(net, Config{DCTCP: dctcp}, []graph.Path{p}, 256_000)
			f.OnComplete = func(*Flow) {
				done++
				last = eng.Now()
			}
			f.Start()
		}
		eng.RunUntil(10 * sim.Second)
		if done != 8 {
			t.Fatalf("only %d of 8 incast flows completed", done)
		}
		return last, net.TotalDrops()
	}
	tcpICT, tcpDrops := run(false)
	dctcpICT, dctcpDrops := run(true)
	// At this small scale SACK keeps TCP off the RTO cliff, so completion
	// times are comparable (the full cliff shows in the `incast`
	// experiment); the robust invariant is loss avoidance.
	if dctcpDrops >= tcpDrops {
		t.Errorf("DCTCP drops %d >= TCP drops %d", dctcpDrops, tcpDrops)
	}
	if dctcpICT > 2*tcpICT {
		t.Errorf("DCTCP incast %v more than 2x TCP %v", dctcpICT, tcpICT)
	}
}
