package report

import (
	"bytes"
	"strings"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/obs"
	"pnet/internal/sim"
)

// fpEvent is one synthetic event identity for replay through a
// Fingerprinter — the test's stand-in for an engine dispatch.
type fpEvent struct {
	t     sim.Time
	kind  sim.EventKind
	plane int32
	link  int64
	flow  int64
	seq   int64
}

// replayStream folds events through a real Fingerprinter and packages
// the result exactly as the collector writes it: checkpoint records plus
// a full journal, all under one net.
func replayStream(events []fpEvent, epoch int64, net int) *Stream {
	f := sim.NewFingerprinter(epoch)
	st := &Stream{}
	f.Journal = func(e sim.FingerprintJournalEntry) {
		st.FPEvents = append(st.FPEvents, obs.FingerprintEventRecord{
			Type: obs.KindFPEvent, Net: net, Epoch: e.Epoch, I: e.Index,
			TPs: int64(e.T), Kind: e.Kind.String(), Plane: e.Plane,
			Link: e.Link, Flow: e.Flow, Seq: e.Seq, Size: e.Size,
			Hash: obs.FormatHash(e.Hash),
		})
	}
	for _, e := range events {
		f.Fold(e.t, e.kind, e.plane, e.link, e.flow, e.seq, 1500)
	}
	for _, cp := range f.Checkpoints() {
		r := obs.FingerprintRecord{
			Type: obs.KindFingerprint, Net: net, Epoch: cp.Epoch,
			Events: cp.Events, TPs: int64(cp.T), EpochEvents: epoch,
			Hash: obs.FormatHash(cp.Global), Host: obs.FormatHash(cp.Host), Final: cp.Partial,
		}
		for pl, h := range cp.Planes {
			r.Planes = append(r.Planes, obs.PlaneHash{Plane: int32(pl), Hash: obs.FormatHash(h)})
		}
		st.Fingerprints = append(st.Fingerprints, r)
	}
	return st
}

// syntheticEvents builds n packet events across two planes with distinct
// flow IDs, so any swap is fingerprint-visible.
func syntheticEvents(n int) []fpEvent {
	out := make([]fpEvent, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fpEvent{
			t: sim.Time(1000 * (i + 1)), kind: sim.EvHop,
			plane: int32(i % 2), link: int64(i % 5),
			flow: int64(i%7 + 1), seq: int64(i),
		})
	}
	return out
}

func TestDivergenceMatch(t *testing.T) {
	ev := syntheticEvents(200)
	base := replayStream(ev, 32, 0)
	cur := replayStream(ev, 32, 3) // different NetID: pairing must not care
	d, err := FindDivergence(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Match {
		t.Fatalf("identical replays reported divergent: %s", d)
	}
	if !strings.Contains(d.String(), "MATCH") {
		t.Errorf("rendering = %q", d.String())
	}
}

// TestDivergencePerturbed is the acceptance check: flip the order of two
// adjacent events and the divergence must be localized to exactly that
// epoch and that event index, with the right plane attribution.
func TestDivergencePerturbed(t *testing.T) {
	const epoch = 32
	ev := syntheticEvents(200)
	base := replayStream(ev, epoch, 0)
	// Swap events 100 and 101: epoch 3 (100/32), indices 4 and 5. Same
	// timestamps stay monotone because the swap only reorders identity.
	perturbed := append([]fpEvent(nil), ev...)
	perturbed[100], perturbed[101] = perturbed[101], perturbed[100]
	perturbed[100].t, perturbed[101].t = ev[100].t, ev[101].t // keep times, swap identity
	cur := replayStream(perturbed, epoch, 0)

	d, err := FindDivergence(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if d.Match {
		t.Fatal("perturbed replay reported as matching")
	}
	if d.Epoch != 100/epoch {
		t.Fatalf("divergent epoch = %d, want %d", d.Epoch, 100/epoch)
	}
	// Both swapped events are on distinct planes (planes 0 and 1), so
	// both plane chains diverge.
	if len(d.Planes) != 2 || d.Planes[0] != 0 || d.Planes[1] != 1 {
		t.Errorf("diverging planes = %v, want [0 1]", d.Planes)
	}
	if d.HostDiffers {
		t.Error("host chain flagged, but no timer events were perturbed")
	}
	if err := d.LocalizeEvents(base, cur, 2); err != nil {
		t.Fatal(err)
	}
	if d.Event == nil || d.Event.Index != 100%epoch {
		t.Fatalf("divergent event = %+v, want index %d", d.Event, 100%epoch)
	}
	if d.Event.Base.Flow != ev[100].flow || d.Event.Cur.Flow != ev[101].flow {
		t.Errorf("event flows = base %d cur %d, want %d and %d",
			d.Event.Base.Flow, d.Event.Cur.Flow, ev[100].flow, ev[101].flow)
	}
	if len(d.Event.ContextBase) != 5 { // ±2 around the event
		t.Errorf("context window = %d records, want 5", len(d.Event.ContextBase))
	}
	out := d.String()
	for _, want := range []string{"DIVERGED", "epoch 3", "first divergent event", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestDivergenceStructuralMismatches(t *testing.T) {
	ev := syntheticEvents(100)
	one := replayStream(ev, 32, 0)
	// Engine-count mismatch: cur has two engines.
	two := replayStream(ev, 32, 0)
	extra := replayStream(ev[:50], 32, 1)
	two.Fingerprints = append(two.Fingerprints, extra.Fingerprints...)
	d, err := FindDivergence(one, two)
	if err != nil {
		t.Fatal(err)
	}
	if d.Match || !strings.Contains(d.Note, "engine count differs") {
		t.Errorf("verdict = %+v", d)
	}
	// Cadence mismatch.
	other := replayStream(ev, 16, 0)
	d, err = FindDivergence(one, other)
	if err != nil {
		t.Fatal(err)
	}
	if d.Match || !strings.Contains(d.Note, "cadence differs") {
		t.Errorf("verdict = %+v", d)
	}
	// No fingerprints at all.
	if _, err := FindDivergence(&Stream{}, one); err == nil {
		t.Error("empty base stream: want error")
	}
}

// TestDivergencePrefixRun: a run that simply stopped early (its journal
// and checkpoints are a strict prefix) diverges at the first checkpoint
// only one side has.
func TestDivergencePrefixRun(t *testing.T) {
	ev := syntheticEvents(200)
	base := replayStream(ev, 32, 0)
	cur := replayStream(ev[:100], 32, 0)
	d, err := FindDivergence(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if d.Match {
		t.Fatal("prefix run reported as matching")
	}
	// 100 events at epoch 32: cur's last checkpoint is the partial one at
	// epoch 3; base matches it only if 100 lands on a boundary (it does
	// not), so the divergence is at cur's partial checkpoint epoch 3.
	if d.Epoch != 3 {
		t.Errorf("divergent epoch = %d, want 3", d.Epoch)
	}
}

// TestFingerprintSummaryRoundTrip drives a real two-plane simulation
// through a collector with fingerprinting on, and checks that (a) the
// JSONL round-trip agrees with the in-memory path, (b) two identical
// runs produce identical summaries that Diff passes, and (c) a hash
// flip fails the gate.
func TestFingerprintSummaryRoundTrip(t *testing.T) {
	run := func() (RunSummary, RunSummary) {
		g := graph.New(4)
		g.SetTransit(0, false)
		g.SetTransit(1, false)
		a0, _ := g.AddDuplex(0, 2, 100, 0)
		_, d0 := g.AddDuplex(1, 2, 100, 0)
		a1, _ := g.AddDuplex(0, 3, 100, 1)
		_, d1 := g.AddDuplex(1, 3, 100, 1)

		var buf bytes.Buffer
		c := obs.NewCollector()
		c.Interval = sim.Microsecond
		c.Fingerprint = true
		c.FingerprintEpoch = 16
		c.StreamMetrics(&buf)
		eng := sim.NewEngine()
		net := sim.NewNetwork(eng, g, sim.Config{})
		c.AttachNetwork(eng, net)
		if eng.Fingerprint == nil {
			t.Fatal("collector did not attach a fingerprinter")
		}
		sink := releaseSink{net}
		for i := 0; i < 50; i++ {
			p := net.NewPacket()
			p.Size = 1500
			if i%2 == 0 {
				p.Route = []graph.LinkID{a0, d0}
			} else {
				p.Route = []graph.LinkID{a1, d1}
			}
			p.Deliver = sink
			p.FlowID = int64(i%3 + 1)
			net.Send(p)
		}
		eng.Run()
		m := Meta{Exp: "fp"}
		fromMem := FromCollector(c, m)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := ReadStream(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Fingerprints) == 0 {
			t.Fatal("no fingerprint records in the stream")
		}
		return fromMem, FromStream(st, m)
	}
	mem1, jsonl1 := run()
	mem2, _ := run()
	for _, s := range []RunSummary{mem1, jsonl1, mem2} {
		if s.Fingerprint == nil || s.Fingerprint.Events == 0 {
			t.Fatalf("fingerprint summary missing/empty: %+v", s.Fingerprint)
		}
	}
	if *sumFP(t, mem1) != *sumFP(t, jsonl1) {
		t.Errorf("stream path disagrees with memory path:\nmem:   %+v\njsonl: %+v", mem1.Fingerprint, jsonl1.Fingerprint)
	}
	if mem1.Fingerprint.Global != mem2.Fingerprint.Global {
		t.Errorf("identical runs produced different global chains: %s vs %s",
			mem1.Fingerprint.Global, mem2.Fingerprint.Global)
	}
	if d := Diff(mem1, mem2, Thresholds{}); !d.Pass {
		t.Errorf("identical fingerprinted runs fail the diff:\n%s", d)
	}
	bad := mem2
	fp := *mem2.Fingerprint
	fp.Global = obs.FormatHash(0xdeadbeef)
	bad.Fingerprint = &fp
	if d := Diff(mem1, bad, Thresholds{}); d.Pass {
		t.Errorf("fingerprint mismatch passed the diff:\n%s", d)
	}
	if !strings.Contains(mem1.String(), "fingerprint: global=") {
		t.Errorf("summary rendering lacks fingerprint line:\n%s", mem1.String())
	}
}

// sumFP flattens the plane slice so the struct is comparable with ==.
func sumFP(t *testing.T, s RunSummary) *struct {
	Engines int
	Events  int64
	Global  string
	Host    string
	Planes  string
} {
	t.Helper()
	var planes strings.Builder
	for _, p := range s.Fingerprint.Planes {
		planes.WriteString(p.Hash)
	}
	return &struct {
		Engines int
		Events  int64
		Global  string
		Host    string
		Planes  string
	}{s.Fingerprint.Engines, s.Fingerprint.Events, s.Fingerprint.Global, s.Fingerprint.Host, planes.String()}
}
