package report

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzStream hammers the JSONL reader with corrupted input: whatever
// arrives, ReadStream must return a usable (possibly partial) Stream
// and either nil or one of its typed errors — never panic, never an
// anonymous error the CLI can't classify.
func FuzzStream(f *testing.F) {
	seeds := []string{
		goodStream,
		"",
		"\n\n\n",
		"not json at all\n",
		`{"type":"flow","id":7`, // cut off mid-record, no newline
		goodStream[:len(goodStream)-30],
		`{"type":"martian","x":1}` + "\n",
		`{"type":""}` + "\n",
		`{"no_type_at_all":true}` + "\n",
		`{"type":"flow","id":"seven"}` + "\n", // wrong field type
		`{"type":"pkt","ev":"warp","t_ps":-1}` + "\n",
		`{"type":"fp","net":0,"epoch":1,"events":32,"epoch_events":32,"hash":"zz"}` + "\n",
		`{"type":"fp","net":0,"epoch":1,"events":32,"epoch_events":0,"hash":"0123456789abcdef","host":"0123456789abcdef"}` + "\n",
		`{"type":"fpev","net":0,"epoch":1,"i":0,"kind":"hop","hash":"0123"}` + "\n",
		// Mixed: valid records, then a schema the reader predates.
		goodStream + `{"type":"fp","net":0,"epoch":0,"events":64,"epoch_events":64,"hash":"0123456789abcdef","host":"0123456789abcdef"}` + "\n" + `{"type":"from_the_future","v":2}` + "\n",
		"\x00\x01\x02",
		`[1,2,3]` + "\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadStream(bytes.NewReader(data))
		if st == nil {
			t.Fatal("ReadStream returned a nil stream")
		}
		if err == nil {
			return
		}
		var pe *ParseError
		var uk *UnknownKindError
		if !errors.As(err, &pe) && !errors.As(err, &uk) && !errors.Is(err, ErrEmptyStream) {
			t.Fatalf("untyped error %T: %v", err, err)
		}
	})
}
