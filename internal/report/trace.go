package report

import (
	"fmt"
	"sort"

	"pnet/internal/sim"
)

// Chrome Trace Event export: convert a telemetry JSONL stream into the
// Trace Event JSON format that Perfetto (ui.perfetto.dev) and
// chrome://tracing load natively, so the span timelines and
// flight-recorder data of PR 6 get a real timeline viewer instead of
// aggregate tables.
//
// Mapping (the ISSUE's contract): dataplanes become processes, flows
// become tracks (threads) under a synthetic "hosts" process, and each
// flow's latency-attribution components become child slices inside its
// flow slice. Plane byte counters and engine heap depth ride along as
// counter tracks; fault lifecycle events and traced packet events become
// instants on their plane's process.
//
// Timestamps: the trace format's ts/dur are microseconds (doubles), so
// picosecond sim times divide by 1e6. displayTimeUnit "ns" makes
// Perfetto render at nanosecond granularity.
//
// One caveat is recorded in each component slice's args: a flow's span
// shares are exact integer-picosecond totals per (component, plane) but
// carry no ordering, so the child slices partition the flow interval in
// canonical component order — durations are exact, chronology within the
// flow is synthetic.

// TraceEvent is one Trace Event JSON object. Field set covers the
// phases this exporter emits: M (metadata), X (complete slice),
// C (counter), i (instant).
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: g(lobal)/p(rocess)/t(hread)
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON object format of the Trace Event spec (the
// array format is just TraceEvents without the wrapper).
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// hostPID is the synthetic process holding per-flow tracks; plane
// processes are assigned from planeBasePID up in (net, plane) order.
const (
	hostPID      = 1
	planeBasePID = 2
)

func psToUs(ps int64) float64 { return float64(ps) / 1e6 }

// ExportTrace converts a decoded telemetry stream into a Chrome trace.
// It needs a stream with flow records (pnetbench -metrics); span-enabled
// runs (-spans) additionally get per-component child slices, profiled
// runs (-spans implies sampling; -metrics with profile on) get
// flight-recorder summary slices, and packet traces (-trace) become
// per-packet instants.
func ExportTrace(st *Stream) (*ChromeTrace, error) {
	if len(st.Flows) == 0 && len(st.Planes) == 0 && len(st.Packets) == 0 && len(st.Profiles) == 0 {
		return nil, fmt.Errorf("report: stream has no flows, plane samples, packets, or profile bins to export")
	}
	tr := &ChromeTrace{DisplayTimeUnit: "ns"}

	// Assign one process per (net, plane) seen anywhere in the stream,
	// in sorted order so the export is deterministic.
	type netPlane struct {
		net   int
		plane int32
	}
	planeSet := map[netPlane]bool{}
	nets := map[int]bool{}
	for _, r := range st.Planes {
		planeSet[netPlane{r.Net, r.Plane}] = true
		nets[r.Net] = true
	}
	for _, r := range st.Links {
		planeSet[netPlane{r.Net, r.Plane}] = true
		nets[r.Net] = true
	}
	for _, r := range st.Packets {
		if r.Plane >= 0 {
			planeSet[netPlane{0, r.Plane}] = true
		}
	}
	for _, r := range st.Profiles {
		if r.Plane >= 0 {
			planeSet[netPlane{r.Net, r.Plane}] = true
			nets[r.Net] = true
		}
	}
	keys := make([]netPlane, 0, len(planeSet))
	for k := range planeSet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].net != keys[j].net {
			return keys[i].net < keys[j].net
		}
		return keys[i].plane < keys[j].plane
	})
	pids := map[netPlane]int64{}
	for i, k := range keys {
		pid := planeBasePID + int64(i)
		pids[k] = pid
		name := fmt.Sprintf("plane %d", k.plane)
		if len(nets) > 1 {
			name = fmt.Sprintf("net %d plane %d", k.net, k.plane)
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name},
		})
	}
	tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
		Name: "process_name", Ph: "M", Pid: hostPID, Args: map[string]any{"name": "hosts (flows)"},
	})

	// Flows: one track (tid = flow ID) per flow under the hosts process,
	// an X slice spanning the flow's lifetime, and child slices for its
	// attribution components. The flow interval is anchored at its
	// completion time (t_ps); its start is completion minus the exact
	// span total when spans are present, else minus the (float) FCT.
	for _, f := range st.Flows {
		if f.TPs <= 0 {
			continue // older stream without completion timestamps
		}
		var spanPs int64
		for _, sp := range f.Spans {
			spanPs += sp.Ps
		}
		durPs := spanPs
		if durPs == 0 {
			durPs = int64(f.FCT * 1e12)
		}
		startPs := f.TPs - durPs
		if startPs < 0 {
			startPs = 0
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: hostPID, Tid: f.ID,
			Args: map[string]any{"name": fmt.Sprintf("flow %d (%s)", f.ID, f.Transport)},
		})
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: fmt.Sprintf("flow %d", f.ID), Ph: "X", Cat: "flow",
			Ts: psToUs(startPs), Dur: psToUs(durPs), Pid: hostPID, Tid: f.ID,
			Args: map[string]any{
				"bytes": f.Bytes, "fct_s": f.FCT, "retransmits": f.Retransmits,
				"src": f.Src, "dst": f.Dst, "planes": f.Planes,
			},
		})
		// Components partition [start, end) in canonical order: exact
		// durations, synthetic chronology.
		cursor := startPs
		for _, name := range sim.SpanComponentNames() {
			for _, sp := range f.Spans {
				if sp.Component != name || sp.Ps <= 0 {
					continue
				}
				tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
					Name: sp.Component, Ph: "X", Cat: "span",
					Ts: psToUs(cursor), Dur: psToUs(sp.Ps), Pid: hostPID, Tid: f.ID,
					Args: map[string]any{"plane": sp.Plane, "ps": sp.Ps, "chronology": "synthetic"},
				})
				cursor += sp.Ps
			}
		}
	}

	// Plane byte counters: cumulative tx_bytes per sample.
	for _, r := range st.Planes {
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "tx_bytes", Ph: "C", Ts: psToUs(r.TPs),
			Pid: pids[netPlane{r.Net, r.Plane}], Tid: 0,
			Args: map[string]any{"bytes": r.TxBytes},
		})
	}
	// Engine heap depth as a counter on the hosts process.
	for _, r := range st.Engines {
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: fmt.Sprintf("event heap (net %d)", r.Net), Ph: "C",
			Ts: psToUs(r.TPs), Pid: hostPID, Tid: 0,
			Args: map[string]any{"pending": r.HeapLen},
		})
	}

	// Fault lifecycle: instants on the affected plane's process (global
	// scope so Perfetto draws a full-height marker), host process when
	// the fault is not plane-specific.
	for _, r := range st.Faults {
		pid := int64(hostPID)
		if r.Plane >= 0 {
			if p, ok := pids[netPlane{r.Net, r.Plane}]; ok {
				pid = p
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: fmt.Sprintf("fault %s %s", r.Event, r.Target), Ph: "i", Cat: "fault",
			Ts: psToUs(r.TPs), Pid: pid, Tid: 0, S: "g",
			Args: map[string]any{"latency_s": r.LatencySec, "dip_frac": r.DipFrac},
		})
	}

	// Packet trace events: per-packet instants on the link's plane
	// process, one track per link. Dense, but Perfetto handles millions
	// of events; -trace-flow keeps exports focused.
	for _, r := range st.Packets {
		pid := int64(hostPID)
		if r.Plane >= 0 {
			if p, ok := pids[netPlane{0, r.Plane}]; ok {
				pid = p
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: fmt.Sprintf("%s flow %d", r.Ev, r.Flow), Ph: "i", Cat: "pkt",
			Ts: psToUs(r.TPs), Pid: pid, Tid: r.Link, S: "t",
			Args: map[string]any{"seq": r.Seq, "size": r.Size},
		})
	}

	// Flight-recorder bins: one full-span slice per (net, kind, plane)
	// summarizing how many events of that kind the plane ran — the
	// aggregate view on the same timeline. Tid is the kind index so the
	// four kinds stack as four rows.
	for _, r := range st.Profiles {
		ki, ok := sim.ParseEventKind(r.Kind)
		if !ok || r.SimPs <= 0 {
			continue
		}
		pid := int64(hostPID)
		if r.Plane >= 0 {
			if p, ok := pids[netPlane{r.Net, r.Plane}]; ok {
				pid = p
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: fmt.Sprintf("%s ×%d", r.Kind, r.Events), Ph: "X", Cat: "profile",
			Ts: 0, Dur: psToUs(r.SimPs), Pid: pid, Tid: 1000 + int64(ki),
			Args: map[string]any{"events": r.Events, "wall_ns": r.WallNano},
		})
	}
	return tr, nil
}
