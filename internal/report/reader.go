// Package report turns the telemetry of internal/obs into decisions: it
// reads the JSONL metrics streams back (reader.go), aggregates a run
// into a RunSummary of the quantities the paper's figures plot
// (summary.go), compares two summaries with thresholded per-metric
// deltas (diff.go), and maintains the repository's benchmark trajectory
// as BENCH_<stamp>.json files (bench.go). cmd/pnetstat is the CLI over
// all of it.
package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pnet/internal/obs"
)

// Stream holds every record decoded from one metrics JSONL stream,
// bucketed by kind in input order.
type Stream struct {
	Links    []obs.LinkRecord
	Planes   []obs.PlaneRecord
	Engines  []obs.EngineRecord
	Flows    []obs.FlowRecord
	Solvers  []obs.SolverRecord
	Metrics  []obs.MetricSnapshot
	Packets  []obs.PacketRecord
	Faults   []obs.FaultRecord
	Profiles []obs.ProfileRecord
	// Fingerprints are determinism-chain epoch checkpoints; FPEvents are
	// per-event journal records from a divergence re-run.
	Fingerprints []obs.FingerprintRecord
	FPEvents     []obs.FingerprintEventRecord
	// Lines counts successfully decoded records.
	Lines int
}

// ErrEmptyStream reports a stream with no records at all — usually a
// run that never attached telemetry, which callers should distinguish
// from a run whose metrics are legitimately zero.
var ErrEmptyStream = errors.New("report: empty telemetry stream")

// ParseError reports a line that could not be decoded. Truncated marks
// a final line with no trailing newline — the expected shape of a
// stream cut off mid-write, which callers typically tolerate.
type ParseError struct {
	Line      int // 1-based line number
	Truncated bool
	Err       error
}

func (e *ParseError) Error() string {
	if e.Truncated {
		return fmt.Sprintf("report: truncated final line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("report: bad line %d: %v", e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// UnknownKindError reports a line whose "type" field names a record
// kind this reader does not know — a schema mismatch between writer
// and reader versions.
type UnknownKindError struct {
	Line int
	Kind string
}

func (e *UnknownKindError) Error() string {
	return fmt.Sprintf("report: line %d: unknown record kind %q", e.Line, e.Kind)
}

// ReadStream decodes a metrics (or trace) JSONL stream line at a time.
// On malformed input it returns everything decoded so far alongside a
// typed error (*ParseError, *UnknownKindError, or ErrEmptyStream), so a
// partially written stream still yields its prefix.
func ReadStream(r io.Reader) (*Stream, error) {
	s := &Stream{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	sawData := false
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		sawData = true
		if err := s.decodeLine(b); err != nil {
			var uk *UnknownKindError
			if errors.As(err, &uk) {
				uk.Line = line
				return s, uk
			}
			return s, &ParseError{Line: line, Truncated: lastLine(sc), Err: err}
		}
	}
	if err := sc.Err(); err != nil {
		return s, &ParseError{Line: line + 1, Err: err}
	}
	if !sawData {
		return s, ErrEmptyStream
	}
	return s, nil
}

// lastLine reports whether the scanner is at input end — i.e. the
// failing line was the final one. bufio.Scanner strips the trailing
// newline either way, so "final line" is the best proxy for "cut off
// mid-write" without re-reading the source.
func lastLine(sc *bufio.Scanner) bool { return !sc.Scan() }

// kindHeader decodes only the discriminator, cheap relative to a full
// record decode.
type kindHeader struct {
	Type string `json:"type"`
}

func (s *Stream) decodeLine(b []byte) error {
	var h kindHeader
	if err := json.Unmarshal(b, &h); err != nil {
		return err
	}
	switch h.Type {
	case obs.KindLink:
		var r obs.LinkRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		s.Links = append(s.Links, r)
	case obs.KindPlane:
		var r obs.PlaneRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		s.Planes = append(s.Planes, r)
	case obs.KindEngine:
		var r obs.EngineRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		s.Engines = append(s.Engines, r)
	case obs.KindFlow:
		var r obs.FlowRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		for _, sp := range r.Spans {
			if !obs.ValidSpanComponent(sp.Component) {
				return fmt.Errorf("flow %d: unknown span component %q", r.ID, sp.Component)
			}
		}
		s.Flows = append(s.Flows, r)
	case obs.KindSolver:
		var r obs.SolverRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		s.Solvers = append(s.Solvers, r)
	case obs.KindMetric:
		var r obs.MetricSnapshot
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		s.Metrics = append(s.Metrics, r)
	case obs.KindPacket:
		var r obs.PacketRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		s.Packets = append(s.Packets, r)
	case obs.KindFault:
		var r obs.FaultRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		s.Faults = append(s.Faults, r)
	case obs.KindProfile:
		var r obs.ProfileRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		// "subshard", "planeshard", and "hostload" are pseudo kinds
		// (occupancy splits and per-host delivery counts), not
		// sim.EventKinds — accept them alongside the real kinds.
		if r.Kind != obs.KindSubShard && r.Kind != obs.KindPlaneShard &&
			r.Kind != obs.KindHostLoad && !obs.ValidEventKind(r.Kind) {
			return fmt.Errorf("profile net %d: unknown event kind %q", r.Net, r.Kind)
		}
		s.Profiles = append(s.Profiles, r)
	case obs.KindFingerprint:
		var r obs.FingerprintRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		if _, err := obs.ParseHash(r.Hash); err != nil {
			return fmt.Errorf("fingerprint net %d epoch %d: %v", r.Net, r.Epoch, err)
		}
		if _, err := obs.ParseHash(r.Host); err != nil {
			return fmt.Errorf("fingerprint net %d epoch %d: %v", r.Net, r.Epoch, err)
		}
		for _, p := range r.Planes {
			if _, err := obs.ParseHash(p.Hash); err != nil {
				return fmt.Errorf("fingerprint net %d epoch %d plane %d: %v", r.Net, r.Epoch, p.Plane, err)
			}
		}
		if r.EpochEvents <= 0 {
			return fmt.Errorf("fingerprint net %d epoch %d: epoch_events %d, want > 0", r.Net, r.Epoch, r.EpochEvents)
		}
		s.Fingerprints = append(s.Fingerprints, r)
	case obs.KindFPEvent:
		var r obs.FingerprintEventRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		if !obs.ValidEventKind(r.Kind) {
			return fmt.Errorf("fpev net %d epoch %d i %d: unknown event kind %q", r.Net, r.Epoch, r.I, r.Kind)
		}
		if _, err := obs.ParseHash(r.Hash); err != nil {
			return fmt.Errorf("fpev net %d epoch %d i %d: %v", r.Net, r.Epoch, r.I, err)
		}
		s.FPEvents = append(s.FPEvents, r)
	default:
		return &UnknownKindError{Kind: h.Type}
	}
	s.Lines++
	return nil
}
