package report

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pnet/internal/sim"
)

// spanStream is a small run with attribution spans and profile records:
// two flows (one slow outlier dominated by an RTO stall) plus one
// engine's flight recording over 10ms of sim time.
const spanStream = `{"type":"flow","id":1,"transport":"tcp","bytes":1000000,"fct_s":0.001,"spans":[{"c":"queue","plane":0,"ps":200000000},{"c":"serialize","plane":0,"ps":500000000},{"c":"propagate","plane":0,"ps":300000000}]}
{"type":"flow","id":2,"transport":"tcp","bytes":1000000,"fct_s":0.011,"spans":[{"c":"serialize","plane":1,"ps":1000000000},{"c":"rto_stall","plane":-1,"ps":10000000000}]}
{"type":"profile","net":0,"kind":"hop","plane":0,"events":600,"wall_ns":3000,"lookahead_ps":500000,"sim_ps":10000000000}
{"type":"profile","net":0,"kind":"tx","plane":0,"events":200,"wall_ns":1000,"lookahead_ps":500000,"sim_ps":10000000000}
{"type":"profile","net":0,"kind":"hop","plane":1,"events":100,"wall_ns":500,"lookahead_ps":500000,"sim_ps":10000000000}
{"type":"profile","net":0,"kind":"deliver","plane":1,"events":80,"wall_ns":400,"lookahead_ps":500000,"sim_ps":10000000000}
{"type":"profile","net":0,"kind":"timer","plane":-1,"events":20,"wall_ns":100,"lookahead_ps":500000,"sim_ps":10000000000}
`

func loadSpanStream(t *testing.T) RunSummary {
	t.Helper()
	st, err := ReadStream(strings.NewReader(spanStream))
	if err != nil {
		t.Fatal(err)
	}
	return FromStream(st, Meta{Exp: "test"})
}

func TestAttributionSummaryFromStream(t *testing.T) {
	s := loadSpanStream(t)
	a := s.Attribution
	if a == nil {
		t.Fatal("no attribution summary from a stream with spans")
	}
	if a.Flows != 2 {
		t.Errorf("flows = %d, want 2", a.Flows)
	}
	// 12 ms of attributed time in total.
	if math.Abs(a.TotalSec-0.012) > 1e-12 {
		t.Errorf("total = %v s, want 0.012", a.TotalSec)
	}
	var shareSum float64
	for _, c := range a.Overall {
		shareSum += c.Share
		if c.Seconds <= 0 {
			t.Errorf("cell %+v has non-positive seconds", c)
		}
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", shareSum)
	}
	// rto_stall dominates: 10ms of 12ms.
	if got := a.ComponentShare("rto_stall"); math.Abs(got-10.0/12) > 1e-9 {
		t.Errorf("rto_stall share = %v, want %v", got, 10.0/12)
	}
	// Cells are sorted by (component enum order, plane) — deterministic
	// output in the order the pipeline stages run.
	for i := 1; i < len(a.Overall); i++ {
		p, c := a.Overall[i-1], a.Overall[i]
		pc, ok1 := sim.ParseSpanComponent(p.Component)
		cc, ok2 := sim.ParseSpanComponent(c.Component)
		if !ok1 || !ok2 {
			t.Fatalf("unparseable component in %+v / %+v", p, c)
		}
		if pc > cc || (pc == cc && p.Plane >= c.Plane) {
			t.Errorf("cells out of order at %d: %+v then %+v", i, p, c)
		}
	}
	// The tail (p99.9 of 2 flows = the slow one) is nearly all stall.
	if a.TailFlows != 1 {
		t.Errorf("tail flows = %d, want 1", a.TailFlows)
	}
	var tailStall float64
	for _, c := range a.Tail {
		if c.Component == "rto_stall" {
			tailStall += c.Share
		}
	}
	if tailStall < 0.9 {
		t.Errorf("tail rto_stall share = %v, want > 0.9", tailStall)
	}
	if !strings.Contains(s.AttributionString(), "rto_stall") {
		t.Error("AttributionString missing component rows")
	}
}

func TestProfileSummaryFromStream(t *testing.T) {
	s := loadSpanStream(t)
	p := s.Profile
	if p == nil {
		t.Fatal("no profile summary from a stream with profile records")
	}
	if p.Engines != 1 || p.Events != 1000 {
		t.Errorf("engines=%d events=%d, want 1/1000", p.Engines, p.Events)
	}
	if p.HostEvents != 100 { // deliver 80 + timer 20
		t.Errorf("host events = %d, want 100", p.HostEvents)
	}
	if math.Abs(p.HostFrac-0.1) > 1e-9 {
		t.Errorf("host frac = %v, want 0.1", p.HostFrac)
	}
	// Critical path: plane 0 owns 800 events, host 100 →
	// bound = 1000 / (800 + 100).
	if want := 1000.0 / 900.0; math.Abs(p.SpeedupEventBound-want) > 1e-9 {
		t.Errorf("event bound = %v, want %v", p.SpeedupEventBound, want)
	}
	// Amdahl with P=2 planes, f=0.1: 1 / (0.1 + 0.9/2).
	if want := 1.0 / (0.1 + 0.9/2); math.Abs(p.SpeedupAmdahl-want) > 1e-9 {
		t.Errorf("amdahl = %v, want %v", p.SpeedupAmdahl, want)
	}
	if p.LookaheadPs != 500000 {
		t.Errorf("lookahead = %d ps, want 500000", p.LookaheadPs)
	}
	// In-plane events 900 over 2 planes in 0.01 s of sim time, 500 ns
	// lookahead → (900/2)/0.01 * 5e-7 events per window.
	if want := (900.0 / 2 / 0.01) * 5e-7; math.Abs(p.EventsPerLookahead-want) > 1e-9 {
		t.Errorf("events per lookahead = %v, want %v", p.EventsPerLookahead, want)
	}
	out := s.ProfileString()
	for _, needle := range []string{"host boundary", "pdes speedup bound", "plane 0"} {
		if !strings.Contains(out, needle) {
			t.Errorf("ProfileString missing %q:\n%s", needle, out)
		}
	}
}

// TestReadStreamTruncatedSpanRecord: a stream cut off in the middle of a
// flow record's span list must yield the complete prefix plus a typed
// *ParseError with Truncated set.
func TestReadStreamTruncatedSpanRecord(t *testing.T) {
	lines := strings.SplitAfter(spanStream, "\n")
	in := lines[0] + lines[1][:len(lines[1])-40] // cut inside flow 2's spans
	st, err := ReadStream(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if !pe.Truncated || pe.Line != 2 {
		t.Errorf("ParseError = %+v, want Truncated at line 2", pe)
	}
	if len(st.Flows) != 1 || len(st.Flows[0].Spans) != 3 {
		t.Errorf("prefix lost: %+v", st.Flows)
	}
}

// TestReadStreamUnknownSpanComponent: a component name this schema does
// not define is a typed *ParseError, not a panic and not silent skew.
func TestReadStreamUnknownSpanComponent(t *testing.T) {
	in := `{"type":"flow","id":1,"fct_s":0.1,"spans":[{"c":"warp_drive","plane":0,"ps":1}]}` + "\n"
	st, err := ReadStream(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if !strings.Contains(pe.Error(), "warp_drive") {
		t.Errorf("error does not name the bad component: %v", pe)
	}
	if len(st.Flows) != 0 {
		t.Errorf("bad flow record kept: %+v", st.Flows)
	}
}

func TestReadStreamUnknownProfileKind(t *testing.T) {
	in := `{"type":"profile","net":0,"kind":"teleport","plane":0,"events":1,"wall_ns":1}` + "\n"
	st, err := ReadStream(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if !strings.Contains(pe.Error(), "teleport") {
		t.Errorf("error does not name the bad kind: %v", pe)
	}
	if len(st.Profiles) != 0 {
		t.Errorf("bad profile record kept: %+v", st.Profiles)
	}
}

// TestDiffAddedMetrics: metrics measured only by the current run must
// surface as added entries — visible, never gating.
func TestDiffAddedMetrics(t *testing.T) {
	cur := loadSpanStream(t)
	cur.GoBench = []GoBench{{Name: "New", NsPerOp: 5}}
	base := RunSummary{Flows: 2, FlowBytes: cur.FlowBytes}

	d := Diff(base, cur, Thresholds{})
	if !d.Pass {
		t.Errorf("added-only diff failed the gate: %+v", d.Regressions())
	}
	added := map[string]bool{}
	for _, dl := range d.Added {
		added[dl.Metric] = true
	}
	for _, want := range []string{
		"fct_s.p50",
		"attribution.rto_stall.plane-1.share",
		"profile.events",
		"profile.host_frac",
		"gobench.New.ns_per_op",
	} {
		if !added[want] {
			t.Errorf("added is missing %q; got %v", want, added)
		}
	}
	// Added entries must never appear as gated deltas.
	for _, dl := range d.Deltas {
		if added[dl.Metric] {
			t.Errorf("%q is both a delta and an added entry", dl.Metric)
		}
	}
	if !strings.Contains(d.String(), "new in current run") {
		t.Error("DiffReport.String does not render added metrics")
	}
}

// TestDiffAttributionGated: when both runs carry attribution, growth in
// the stall shares beyond the threshold fails the gate.
func TestDiffAttributionGated(t *testing.T) {
	base := loadSpanStream(t)
	cur := loadSpanStream(t)
	for i := range cur.Attribution.Overall {
		c := &cur.Attribution.Overall[i]
		if c.Component == "rto_stall" {
			c.Share *= 1.5
		}
	}
	d := Diff(base, cur, Thresholds{})
	if d.Pass {
		t.Fatal("50% more rto_stall share passed the gate")
	}
	found := false
	for _, dl := range d.Regressions() {
		if dl.Metric == "attribution.rto_stall.share" {
			found = true
		}
	}
	if !found {
		t.Errorf("regressions = %+v, want attribution.rto_stall.share", d.Regressions())
	}
}
