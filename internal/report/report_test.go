package report

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/obs"
	"pnet/internal/sim"
)

func sampleSummary() RunSummary {
	a := newAgg()
	for i := 1; i <= 1000; i++ {
		a.addFlow(obs.FlowRecord{Bytes: 1000, FCT: float64(i) * 1e-4})
	}
	a.addSolver(obs.SolverRecord{Phases: 10, Iterations: 300, Attempts: 1, WallSec: 0.5})
	a.addSolver(obs.SolverRecord{Phases: 5, Iterations: 100, Attempts: 1, WallSec: 0.25})
	// Two networks, cumulative plane counters: plane 0 carries 3 MB,
	// plane 1 carries 1 MB in total.
	a.addPlane(obs.PlaneRecord{Net: 0, TPs: 1e9, Plane: 0, TxBytes: 1_000_000})
	a.addPlane(obs.PlaneRecord{Net: 0, TPs: 2e9, Plane: 0, TxBytes: 2_000_000})
	a.addPlane(obs.PlaneRecord{Net: 0, TPs: 2e9, Plane: 1, TxBytes: 1_000_000})
	a.addPlane(obs.PlaneRecord{Net: 1, TPs: 2e9, Plane: 0, TxBytes: 1_000_000})
	a.addLink(obs.LinkRecord{Net: 0, TPs: 1e9, Link: 1, Plane: 0, QueueBytes: 1500, Util: 0.5, Drops: 1})
	a.addLink(obs.LinkRecord{Net: 0, TPs: 2e9, Link: 1, Plane: 0, QueueBytes: 3000, Util: 0.9, Drops: 4})
	a.addLink(obs.LinkRecord{Net: 1, TPs: 2e9, Link: 1, Plane: 0, QueueBytes: 0, Util: 0.1, Drops: 2})
	a.addEngine(obs.EngineRecord{Net: 0, TPs: 2e9, Events: 5000, WallNano: 1e6})
	a.addEngine(obs.EngineRecord{Net: 1, TPs: 2e9, Events: 5000, WallNano: 1e6})
	a.engines = 2
	return a.summary(Meta{Exp: "test", Scale: "small", Seed: 1, Created: "2026-08-05T00:00:00Z"})
}

func TestRunSummaryAggregation(t *testing.T) {
	s := sampleSummary()
	if s.SchemaVersion != SchemaVersion {
		t.Errorf("schema version = %d", s.SchemaVersion)
	}
	if s.Flows != 1000 || s.FlowBytes != 1_000_000 {
		t.Errorf("flows = %d bytes = %d", s.Flows, s.FlowBytes)
	}
	// FCTs are 0.1ms..100ms uniform; exact percentiles.
	if math.Abs(s.FCT.P50-0.05) > 0.001 {
		t.Errorf("fct p50 = %v, want ~0.05", s.FCT.P50)
	}
	if s.FCT.P99 < 0.098 || s.FCT.P99 > 0.1 {
		t.Errorf("fct p99 = %v", s.FCT.P99)
	}
	if s.FCT.P999 <= s.FCT.P99 || s.FCT.P999 > s.FCT.Max {
		t.Errorf("fct p999 = %v not in (p99, max]", s.FCT.P999)
	}
	// Plane shares: cumulative counters resolve to last value per
	// (net, plane): plane0 = 2MB + 1MB = 3MB, plane1 = 1MB.
	if len(s.PlaneShares) != 2 {
		t.Fatalf("plane shares = %+v", s.PlaneShares)
	}
	if s.PlaneShares[0].Bytes != 3_000_000 || s.PlaneShares[1].Bytes != 1_000_000 {
		t.Errorf("plane bytes = %+v", s.PlaneShares)
	}
	if math.Abs(s.PlaneShares[0].Share-0.75) > 1e-9 {
		t.Errorf("plane 0 share = %v", s.PlaneShares[0].Share)
	}
	// Imbalance: max 3MB over mean 2MB.
	if math.Abs(s.PlaneImbalance-1.5) > 1e-9 {
		t.Errorf("imbalance = %v", s.PlaneImbalance)
	}
	// Drops: cumulative per (net, link): 4 + 2.
	if s.Drops != 6 {
		t.Errorf("drops = %d", s.Drops)
	}
	if s.Solver.Calls != 2 || s.Solver.Phases != 15 || s.Solver.Iterations != 400 {
		t.Errorf("solver = %+v", s.Solver)
	}
	if s.Solver.WallSec != 0.75 {
		t.Errorf("solver wall = %v", s.Solver.WallSec)
	}
	if s.Engine.Events != 10000 || s.Engine.SimSec != 2e-3 {
		t.Errorf("engine = %+v", s.Engine)
	}
	// Goodput: 1 MB over 2 ms of sim time = 4 Gbit/s.
	if math.Abs(s.GoodputBps-4e9) > 1 {
		t.Errorf("goodput = %v", s.GoodputBps)
	}
	// Human rendering carries the acceptance quantities.
	out := s.String()
	for _, want := range []string{"p50=", "p99=", "p999=", "planes:", "solver:", "wall 0.750s"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestFromStreamMatchesFromCollector(t *testing.T) {
	// Drive a tiny two-plane sim through a collector with a JSONL
	// stream, then summarize both ways: the JSONL round-trip must agree
	// with the in-memory path on every deterministic field.
	g := graph.New(4)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	a0, _ := g.AddDuplex(0, 2, 100, 0)
	_, d0 := g.AddDuplex(1, 2, 100, 0)
	a1, _ := g.AddDuplex(0, 3, 100, 1)
	_, d1 := g.AddDuplex(1, 3, 100, 1)

	var buf bytes.Buffer
	c := obs.NewCollector()
	c.Interval = sim.Microsecond
	c.StreamMetrics(&buf)
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{})
	c.AttachNetwork(eng, net)

	sink := releaseSink{net}
	for i := 0; i < 50; i++ {
		p := net.NewPacket()
		p.Size = 1500
		if i%2 == 0 {
			p.Route = []graph.LinkID{a0, d0}
		} else {
			p.Route = []graph.LinkID{a1, d1}
		}
		p.Deliver = sink
		net.Send(p)
	}
	eng.Run()
	c.RecordFlow(obs.FlowRecord{ID: 1, Bytes: 75000, FCT: 2e-5, Planes: []int32{0, 1}})
	c.RecordSolver(obs.SolverRecord{Exp: "t", Solver: "gk-fixed", Phases: 2, Iterations: 9, WallSec: 0.01})

	m := Meta{Exp: "t", Scale: "small", Seed: 1}
	fromMem := FromCollector(c, m)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL := FromStream(st, m)

	if fromMem.Flows != fromJSONL.Flows || fromMem.FCT != fromJSONL.FCT {
		t.Errorf("flow mismatch: mem %+v jsonl %+v", fromMem.FCT, fromJSONL.FCT)
	}
	if fromMem.Drops != fromJSONL.Drops {
		t.Errorf("drops: mem %d jsonl %d", fromMem.Drops, fromJSONL.Drops)
	}
	if len(fromMem.PlaneShares) != len(fromJSONL.PlaneShares) {
		t.Fatalf("plane shares: mem %+v jsonl %+v", fromMem.PlaneShares, fromJSONL.PlaneShares)
	}
	for i := range fromMem.PlaneShares {
		if fromMem.PlaneShares[i] != fromJSONL.PlaneShares[i] {
			t.Errorf("plane share %d: mem %+v jsonl %+v", i, fromMem.PlaneShares[i], fromJSONL.PlaneShares[i])
		}
	}
	if fromMem.LinkUtil != fromJSONL.LinkUtil {
		t.Errorf("link util: mem %+v jsonl %+v", fromMem.LinkUtil, fromJSONL.LinkUtil)
	}
	if fromMem.Engine.Events != fromJSONL.Engine.Events || fromMem.Engine.SimSec != fromJSONL.Engine.SimSec {
		t.Errorf("engine: mem %+v jsonl %+v", fromMem.Engine, fromJSONL.Engine)
	}
	if fromMem.Solver != fromJSONL.Solver {
		t.Errorf("solver: mem %+v jsonl %+v", fromMem.Solver, fromJSONL.Solver)
	}
	if len(fromMem.PlaneShares) != 2 {
		t.Errorf("expected both planes sampled: %+v", fromMem.PlaneShares)
	}
}

type releaseSink struct{ net *sim.Network }

func (r releaseSink) HandlePacket(p *sim.Packet) { r.net.Release(p) }

func TestDiffPassAndFail(t *testing.T) {
	base := sampleSummary()

	// Identical runs pass with zero deltas.
	d := Diff(base, base, Thresholds{})
	if !d.Pass || len(d.Regressions()) != 0 {
		t.Fatalf("self-diff failed: %s", d)
	}

	// p99 FCT inflated 20% beyond the 10% default threshold fails the
	// gate — the acceptance scenario.
	bad := sampleSummary()
	bad.FCT.P99 *= 1.2
	d = Diff(base, bad, Thresholds{})
	if d.Pass {
		t.Fatalf("inflated p99 passed:\n%s", d)
	}
	regs := d.Regressions()
	found := false
	for _, r := range regs {
		if r.Metric == "fct_s.p99" && r.Rel > 0.19 && r.Rel < 0.21 {
			found = true
		}
	}
	if !found {
		t.Errorf("regressions = %+v, want fct_s.p99 at +20%%", regs)
	}

	// Same inflation under a 30% threshold passes.
	d = Diff(base, bad, Thresholds{Rel: 0.30})
	if !d.Pass {
		t.Errorf("20%% inflation failed a 30%% threshold:\n%s", d)
	}

	// Per-metric override tightens just one metric.
	d = Diff(base, bad, Thresholds{Rel: 0.30, PerMetric: map[string]float64{"fct_s.p99": 0.05}})
	if d.Pass {
		t.Error("per-metric override did not gate fct_s.p99")
	}

	// Improvements never fail, whatever the direction.
	better := sampleSummary()
	better.FCT.P99 *= 0.5
	better.GoodputBps *= 2
	d = Diff(base, better, Thresholds{})
	if !d.Pass {
		t.Errorf("improvement failed the gate:\n%s", d)
	}

	// Goodput is lower-is-worse.
	slower := sampleSummary()
	slower.GoodputBps *= 0.5
	d = Diff(base, slower, Thresholds{})
	if d.Pass {
		t.Error("halved goodput passed the gate")
	}
}

func TestDiffWallMetricsInformational(t *testing.T) {
	base := sampleSummary()
	noisy := sampleSummary()
	noisy.Solver.WallSec *= 10
	noisy.Engine.WallSec *= 10
	noisy.Engine.EventsPerSec /= 10
	if d := Diff(base, noisy, Thresholds{}); !d.Pass {
		t.Errorf("wall-clock noise failed the default gate:\n%s", d)
	}
	if d := Diff(base, noisy, Thresholds{GateWall: true}); d.Pass {
		t.Error("GateWall did not gate wall-clock metrics")
	}
}

func TestBenchTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LatestBench(dir); !errors.Is(err, ErrNoBaseline) {
		t.Fatalf("empty dir err = %v, want ErrNoBaseline", err)
	}

	older := sampleSummary()
	older.Created = "2026-08-01T12:00:00Z"
	newer := sampleSummary()
	newer.Created = "2026-08-05T09:30:00Z"
	newer.Exp = "newest"
	for _, s := range []RunSummary{older, newer} {
		if _, err := WriteBench(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	path, got, err := LatestBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_20260805T093000.json" {
		t.Errorf("latest = %s", path)
	}
	if got.Exp != "newest" || got.FCT != newer.FCT || got.PlaneImbalance != newer.PlaneImbalance {
		t.Errorf("round-trip mismatch: %+v", got)
	}

	// LoadRun reads the same file via format auto-detection.
	loaded, err := LoadRun(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Exp != "newest" {
		t.Errorf("LoadRun exp = %q", loaded.Exp)
	}

	// A summary with no timestamp cannot be stamped into the trajectory.
	unstamped := sampleSummary()
	unstamped.Created = ""
	if _, err := WriteBench(dir, unstamped); err == nil {
		t.Error("WriteBench accepted a summary without Created")
	}
}

func TestLoadRunJSONLAndTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.jsonl")
	jsonl := `{"type":"flow","id":1,"bytes":100,"fct_s":0.01}` + "\n" +
		`{"type":"flow","id":2,"bytes":100,"fct_s":0.03}` + "\n"
	if err := os.WriteFile(path, []byte(jsonl), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadRun(path, Meta{Exp: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Flows != 2 || s.FCT.Max != 0.03 || s.Exp != "x" {
		t.Errorf("summary = %+v", s)
	}

	// A truncated final line is tolerated: prefix summarized, no error.
	if err := os.WriteFile(path, []byte(jsonl+`{"type":"flow","id":3,"by`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = LoadRun(path, Meta{})
	if err != nil {
		t.Fatalf("truncated stream not tolerated: %v", err)
	}
	if s.Flows != 2 {
		t.Errorf("flows = %d, want the 2 complete records", s.Flows)
	}

	// Mid-file garbage is not: partial summary plus the typed error.
	if err := os.WriteFile(path, []byte("junk\n"+jsonl), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err = LoadRun(path, Meta{}); err == nil {
		t.Error("mid-file garbage loaded silently")
	}
}

func faultySummary() RunSummary {
	a := newAgg()
	a.addFlow(obs.FlowRecord{Bytes: 1000, FCT: 0.01})
	a.addFault(obs.FaultRecord{Event: "inject", Target: "plane:0", Plane: 0, TPs: 1e9})
	a.addFault(obs.FaultRecord{Event: "detect", Target: "plane:0", Plane: 0, TPs: 2e9, LatencySec: 3e-4})
	a.addFault(obs.FaultRecord{Event: "failover", Target: "plane:0", Plane: 0, TPs: 3e9, LatencySec: 2e-2})
	a.addFault(obs.FaultRecord{Event: "recover", Target: "plane:0", Plane: 0, TPs: 5e9, LatencySec: 4e-2, DipFrac: 0.8})
	a.addFault(obs.FaultRecord{Event: "clear", Target: "plane:0", Plane: 0, TPs: 9e9})
	// Cumulative blackhole counters per (net, link): last value wins.
	a.addLink(obs.LinkRecord{Net: 0, TPs: 2e9, Link: 3, Blackholed: 10})
	a.addLink(obs.LinkRecord{Net: 0, TPs: 3e9, Link: 3, Blackholed: 25})
	a.addLink(obs.LinkRecord{Net: 0, TPs: 3e9, Link: 4, Blackholed: 5})
	return a.summary(Meta{Exp: "faults", Scale: "small", Seed: 1, Created: "2026-08-05T00:00:00Z"})
}

func TestFaultSummaryAggregation(t *testing.T) {
	// A fault-free run carries no Faults block at all — older baselines
	// stay byte-compatible.
	if s := sampleSummary(); s.Faults != nil {
		t.Fatalf("fault-free summary has Faults = %+v", s.Faults)
	}

	s := faultySummary()
	f := s.Faults
	if f == nil {
		t.Fatal("faulty run has no Faults block")
	}
	if f.Injected != 1 || f.Cleared != 1 || f.Detected != 1 {
		t.Errorf("counts = %+v", f)
	}
	if f.Blackholed != 30 {
		t.Errorf("blackholed = %d, want 25+5", f.Blackholed)
	}
	if f.DetectLatency.Count != 1 || f.DetectLatency.Max != 3e-4 {
		t.Errorf("detect latency = %+v", f.DetectLatency)
	}
	if f.FailoverLatency.P50 != 2e-2 || f.Recovery.P50 != 4e-2 {
		t.Errorf("failover = %+v recovery = %+v", f.FailoverLatency, f.Recovery)
	}
	if f.DipFrac.Mean != 0.8 {
		t.Errorf("dip = %+v", f.DipFrac)
	}
	out := s.String()
	for _, want := range []string{"faults:", "1 injected", "30 blackholed", "detect p50="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestFaultRecordsRoundTripThroughJSONL(t *testing.T) {
	var buf bytes.Buffer
	c := obs.NewCollector()
	c.StreamMetrics(&buf)
	c.RecordFault(obs.FaultRecord{Net: 0, TPs: 1e9, Event: "inject", Target: "link:7", Plane: 1})
	c.RecordFault(obs.FaultRecord{Net: 0, TPs: 2e9, Event: "detect", Target: "plane:1", Plane: 1, LatencySec: 5e-4})
	m := Meta{Exp: "t"}
	fromMem := FromCollector(c, m)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Faults) != 2 || st.Faults[0].Target != "link:7" || st.Faults[1].LatencySec != 5e-4 {
		t.Fatalf("decoded faults = %+v", st.Faults)
	}
	fromJSONL := FromStream(st, m)
	if fromMem.Faults == nil || fromJSONL.Faults == nil {
		t.Fatalf("faults block missing: mem %+v jsonl %+v", fromMem.Faults, fromJSONL.Faults)
	}
	if *fromMem.Faults != *fromJSONL.Faults {
		t.Errorf("fault summary mismatch: mem %+v jsonl %+v", *fromMem.Faults, *fromJSONL.Faults)
	}
}

func TestDiffFaultMetrics(t *testing.T) {
	base := faultySummary()

	// Fault metrics only compare when both runs have them: a faulty run
	// against a fault-free baseline must not trip the gate.
	clean := sampleSummary()
	d := Diff(clean, base, Thresholds{Rel: 10}) // huge slack for unrelated metrics
	for _, dl := range d.Deltas {
		if strings.HasPrefix(dl.Metric, "faults.") {
			t.Errorf("fault metric %q compared against a fault-free baseline", dl.Metric)
		}
	}

	// Identical faulty runs pass.
	if d := Diff(base, base, Thresholds{}); !d.Pass {
		t.Fatalf("self-diff failed:\n%s", d)
	}

	// A 50% slower detection fails the gate.
	worse := faultySummary()
	worse.Faults.DetectLatency.P50 *= 1.5
	worse.Faults.DetectLatency.Max *= 1.5
	d = Diff(base, worse, Thresholds{})
	if d.Pass {
		t.Fatalf("slower detection passed:\n%s", d)
	}
	found := false
	for _, r := range d.Regressions() {
		if r.Metric == "faults.detect_latency_s.p50" {
			found = true
		}
	}
	if !found {
		t.Errorf("regressions = %+v, want faults.detect_latency_s.p50", d.Regressions())
	}

	// Blackhole counts ride along informationally — they scale with the
	// injected fault load, not with code quality.
	noisier := faultySummary()
	noisier.Faults.Blackholed *= 100
	if d := Diff(base, noisier, Thresholds{}); !d.Pass {
		t.Errorf("blackhole count gated:\n%s", d)
	}
}

func TestParseGoBench(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: pnet
BenchmarkEngineEventLoop-8   	 5000000	       251.5 ns/op	      16 B/op	       1 allocs/op
BenchmarkGKSolverPhase-8     	     100	   1200000 ns/op	        42.0 phases	      28571 ns/phase
PASS
ok  	pnet	3.1s
`
	got, err := ParseGoBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks: %+v", len(got), got)
	}
	e := got[0]
	if e.Name != "BenchmarkEngineEventLoop" || e.Runs != 5000000 ||
		e.NsPerOp != 251.5 || e.BytesPerOp != 16 || e.AllocsPerOp != 1 {
		t.Errorf("engine bench = %+v", e)
	}
	g := got[1]
	if g.Name != "BenchmarkGKSolverPhase" || g.NsPerOp != 1200000 {
		t.Errorf("gk bench = %+v", g)
	}
	if g.Metrics["phases"] != 42 || g.Metrics["ns/phase"] != 28571 {
		t.Errorf("custom metrics = %+v", g.Metrics)
	}
}
