package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pnet/internal/metrics"
	"pnet/internal/obs"
	"pnet/internal/sim"
)

// SchemaVersion is bumped whenever RunSummary's JSON shape changes
// incompatibly, so old BENCH_*.json baselines are detectable.
const SchemaVersion = 1

// Dist summarizes one distribution. FCT distributions are computed
// exactly from the raw samples; link-level distributions come from
// log-bucketed histograms (2x worst-case quantile error, like
// obs.Histogram).
type Dist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// PlaneShare is one dataplane's slice of the run's traffic.
type PlaneShare struct {
	Plane int32   `json:"plane"`
	Bytes int64   `json:"bytes"`
	Share float64 `json:"share"` // fraction of all plane bytes
}

// SolverSummary aggregates the LP/flow-solver invocations of a run.
type SolverSummary struct {
	Calls      int     `json:"calls"`
	Phases     int64   `json:"phases"`
	Iterations int64   `json:"iterations"`
	Attempts   int64   `json:"attempts"`
	WallSec    float64 `json:"wall_s"` // total wall time of all solves
}

// EngineSummary aggregates the event-engine samples of a run.
type EngineSummary struct {
	Networks     int     `json:"networks"`
	Events       uint64  `json:"events"`
	WallSec      float64 `json:"wall_s"`
	EventsPerSec float64 `json:"events_per_sec"`
	SimSec       float64 `json:"sim_s"` // latest sim timestamp sampled
	// RunWallSec is wall time measured inside engine runs
	// (workload.Driver.RunUntil), summed across sweep cells — the
	// denominator (sharded) and numerator (serial) of achieved PDES
	// speedup in `pnetstat profile -serial`. Absent in older baselines
	// and in stream-path summaries; never gated (wall clock).
	RunWallSec float64 `json:"run_wall_s,omitempty"`
}

// FaultSummary aggregates a run's runtime-fault lifecycle: what the
// chaos injector did, what the hosts measured while surviving it. All
// latency distributions are in seconds of sim time.
type FaultSummary struct {
	Injected   int64 `json:"injected"`
	Cleared    int64 `json:"cleared"`
	Detected   int64 `json:"detected"`
	Blackholed int64 `json:"blackholed"` // packets lost to down links
	// DetectLatency is injection→detection (the health monitor's lag);
	// FailoverLatency is detection→first repath; Recovery is
	// injection→goodput back at pre-fault level; DipFrac is the goodput
	// dip depth in [0,1].
	DetectLatency   Dist `json:"detect_latency_s"`
	FailoverLatency Dist `json:"failover_latency_s"`
	Recovery        Dist `json:"recovery_s"`
	DipFrac         Dist `json:"dip_frac"`
}

// FingerprintSummary folds the per-engine determinism chains into
// run-level invariants. Global, Host, and Planes are XOR folds of each
// engine's final chain value — XOR is commutative, so the fold is
// independent of engine attach order and therefore of worker count,
// even though the engines' NetIDs are not. Two runs of the same
// experiment at the same seed must match on every field.
type FingerprintSummary struct {
	Engines     int   `json:"engines"`
	EpochEvents int64 `json:"epoch_events"`
	Events      int64 `json:"events"` // total events folded, all engines
	// Global/Host and the plane hashes are 16-digit hex (see
	// obs.FormatHash).
	Global string          `json:"global"`
	Host   string          `json:"host"`
	Planes []obs.PlaneHash `json:"planes,omitempty"`
}

// GoBench is one `go test -bench` result folded into the trajectory.
type GoBench struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// RunSummary is one run of the experiment harness reduced to the
// quantities the paper's evaluation plots: FCT percentiles (Figs. 9-11,
// 13, 16-20), per-plane balance (Figs. 6/8), solver convergence, and
// engine throughput. It is the unit of the BENCH_*.json trajectory and
// of pnetstat's diff/gate.
type RunSummary struct {
	SchemaVersion int    `json:"schema_version"`
	Created       string `json:"created,omitempty"` // RFC3339
	Exp           string `json:"exp,omitempty"`
	Scale         string `json:"scale,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	// Workers and GOMAXPROCS record the parallelism the run executed
	// with, so BENCH trajectories can attribute wall-clock movements to
	// scheduling rather than code. Neither affects any gated metric:
	// results are bit-identical across worker counts.
	Workers    int `json:"workers,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Shards and LookaheadPs record the plane-sharded PDES configuration
	// (pnetbench -shards/-lookahead; 0 = serial engine). Like Workers,
	// they change only wall clock, never a gated metric: sharded output
	// is bit-identical to serial. HostShards records the host sub-shard
	// count (pnetbench -host-shards; 0/1 = single host shard).
	Shards      int   `json:"shards,omitempty"`
	HostShards  int   `json:"host_shards,omitempty"`
	LookaheadPs int64 `json:"lookahead_ps,omitempty"`
	// Placement records the shard placement mode (pnetbench -placement;
	// "" = the default round-robin). Like Shards, it changes only wall
	// clock, never a gated metric.
	Placement string `json:"placement,omitempty"`

	Flows       int64   `json:"flows"`
	FlowBytes   int64   `json:"flow_bytes"`
	Retransmits int64   `json:"retransmits"`
	FCT         Dist    `json:"fct_s"`
	GoodputBps  float64 `json:"goodput_bps,omitempty"`

	PlaneShares    []PlaneShare `json:"plane_shares,omitempty"`
	PlaneImbalance float64      `json:"plane_imbalance,omitempty"` // max/mean of plane bytes

	LinkUtil   Dist  `json:"link_util"`
	QueueBytes Dist  `json:"queue_bytes"`
	Drops      int64 `json:"drops"`

	Solver SolverSummary `json:"solver"`
	Engine EngineSummary `json:"engine"`

	// Attribution decomposes the run's FCTs into span components; Profile
	// is the event-loop flight recording with the PDES sizing bounds.
	// Both are present only for runs that enabled them (pnetbench -spans),
	// so baselines from span-free runs stay byte-compatible.
	Attribution *AttributionSummary `json:"attribution,omitempty"`
	Profile     *ProfileSummary     `json:"profile,omitempty"`

	// Faults is present only for runs with fault activity (chaos
	// injection or blackholed packets) — absent for the fault-free runs
	// of older baselines, which keeps the schema backward compatible.
	Faults *FaultSummary `json:"faults,omitempty"`

	// Fingerprint is the run's determinism fingerprint, present only for
	// runs that enabled it (pnetbench -fingerprint).
	Fingerprint *FingerprintSummary `json:"fingerprint,omitempty"`

	GoBench []GoBench `json:"go_bench,omitempty"`
}

// Meta carries run identity that telemetry itself does not record.
type Meta struct {
	Exp     string
	Scale   string
	Seed    int64
	Created string // RFC3339; stamped by the caller, never by this package
	// Workers and GOMAXPROCS attribute the run's parallelism (0 = not
	// recorded, keeping older baselines byte-compatible).
	Workers    int
	GOMAXPROCS int
	// Shards and LookaheadPs attribute the run's PDES sharding (0 = the
	// serial engine); HostShards the host sub-shard count (0/1 = single
	// host shard).
	Shards      int
	HostShards  int
	LookaheadPs int64
	// Placement names the shard placement mode ("" = round-robin).
	Placement string
}

// agg accumulates telemetry into a RunSummary; both construction paths
// (in-memory collector, JSONL stream) feed the same aggregation.
type agg struct {
	fcts    []float64
	bytes   int64
	retrans int64
	util    obs.Histogram
	queue   obs.Histogram
	// drops and tx samples are cumulative per (net, link)/(net, plane);
	// keep the last value per key and sum at the end.
	linkDrops  map[[2]int64]int64
	linkBH     map[[2]int64]int64
	planeBytes map[[2]int64]int64
	engines    int
	events     uint64
	wallNs     int64
	runWallNs  int64
	simPs      int64
	solver     SolverSummary

	faultInjected, faultCleared, faultDetected int64
	detectLat, failoverLat, recovery, dipFrac  []float64

	// Latency attribution: exact integer-picosecond sums per (component,
	// plane) — commutative, so worker count cannot change them — plus the
	// per-flow spans retained for the tail re-aggregation.
	spanPs    map[[2]int64]int64
	spanFlows []spanFlow

	// Flight-recorder bins per (kind, plane): [events, wallNs].
	profBins    map[[2]int64][2]int64
	profEngines int
	profSimPs   int64 // profiled sim time, summed over engines
	profLookPs  int64 // conservative PDES lookahead (max over engines)
	profNets    map[int]bool
	// profSub is events fired per host sub-shard (index = sub-shard),
	// summed index-wise across host-sub-sharded engines. Empty unless some
	// profiled engine ran with host-shards > 1. profPlaneShards is the
	// analogous per-plane-shard split; profHosts the per-host delivery
	// counts (keyed by host node ID) behind `-emit-placement`.
	profSub         []int64
	profPlaneShards []int64
	profHosts       map[int64]int64

	// Determinism fingerprints: XOR folds of each engine's final chains
	// (commutative, so worker count cannot change them). The stream path
	// keeps the last checkpoint seen per net and folds at summary time.
	fpEngines int
	fpEpoch   int64
	fpEvents  int64
	fpGlobal  uint64
	fpHost    uint64
	fpPlanes  []uint64
	fpLast    map[int]obs.FingerprintRecord
}

func newAgg() *agg {
	return &agg{
		linkDrops:  map[[2]int64]int64{},
		linkBH:     map[[2]int64]int64{},
		planeBytes: map[[2]int64]int64{},
		spanPs:     map[[2]int64]int64{},
		profBins:   map[[2]int64][2]int64{},
		profNets:   map[int]bool{},
		profHosts:  map[int64]int64{},
		fpLast:     map[int]obs.FingerprintRecord{},
	}
}

// foldFP XORs one engine's final chain state into the run-level fold.
func (a *agg) foldFP(events int64, epoch int64, global, host uint64, planes []uint64) {
	a.fpEngines++
	a.fpEvents += events
	if epoch > a.fpEpoch {
		a.fpEpoch = epoch
	}
	a.fpGlobal ^= global
	a.fpHost ^= host
	for pl, h := range planes {
		for pl >= len(a.fpPlanes) {
			a.fpPlanes = append(a.fpPlanes, 0)
		}
		a.fpPlanes[pl] ^= h
	}
}

// addFingerprintSnapshot folds one engine's fingerprint state (the
// in-memory collector path). The final checkpoint carries the chains.
func (a *agg) addFingerprintSnapshot(snap obs.FingerprintSnapshot) {
	if len(snap.Checkpoints) == 0 {
		return
	}
	cp := snap.Checkpoints[len(snap.Checkpoints)-1]
	a.foldFP(cp.Events, snap.EpochEvents, cp.Global, cp.Host, cp.Planes)
}

// addFingerprintRecord folds one JSONL checkpoint (the stream path):
// checkpoints are cumulative, so only the last one per net counts.
// Records arrive in epoch order within a net, so last-write wins.
func (a *agg) addFingerprintRecord(r obs.FingerprintRecord) {
	a.fpLast[r.Net] = r
}

func (a *agg) addFault(r obs.FaultRecord) {
	switch r.Event {
	case "inject":
		a.faultInjected++
	case "clear":
		a.faultCleared++
	case "detect":
		a.faultDetected++
		if r.LatencySec > 0 {
			a.detectLat = append(a.detectLat, r.LatencySec)
		}
	case "failover":
		if r.LatencySec > 0 {
			a.failoverLat = append(a.failoverLat, r.LatencySec)
		}
	case "recover":
		if r.LatencySec > 0 {
			a.recovery = append(a.recovery, r.LatencySec)
		}
		if r.DipFrac > 0 {
			a.dipFrac = append(a.dipFrac, r.DipFrac)
		}
	}
}

func (a *agg) addFlow(f obs.FlowRecord) {
	a.fcts = append(a.fcts, f.FCT)
	a.bytes += f.Bytes
	a.retrans += f.Retransmits
	if len(f.Spans) > 0 {
		for _, sp := range f.Spans {
			ci, ok := sim.ParseSpanComponent(sp.Component)
			if !ok {
				continue // the reader rejects these; defensive for in-memory paths
			}
			a.spanPs[[2]int64{int64(ci), int64(sp.Plane)}] += sp.Ps
		}
		a.spanFlows = append(a.spanFlows, spanFlow{fct: f.FCT, spans: f.Spans})
	}
}

// addProfileRecord folds one JSONL profile bin (the stream path).
func (a *agg) addProfileRecord(r obs.ProfileRecord) {
	switch r.Kind {
	case obs.KindSubShard:
		// Pseudo kind: Plane is the sub-shard index, Events its fired count.
		a.addSubShard(int(r.Plane), r.Events)
	case obs.KindPlaneShard:
		// Pseudo kind: Plane is the plane-shard index.
		a.addPlaneShard(int(r.Plane), r.Events)
	case obs.KindHostLoad:
		// Pseudo kind: Plane is the host node ID, Events its delivers.
		a.profHosts[int64(r.Plane)] += r.Events
	default:
		ki, ok := sim.ParseEventKind(r.Kind)
		if !ok {
			return // the reader rejects these; defensive for direct callers
		}
		k := [2]int64{int64(ki), int64(r.Plane)}
		b := a.profBins[k]
		b[0] += r.Events
		b[1] += r.WallNano
		a.profBins[k] = b
	}
	if !a.profNets[r.Net] {
		a.profNets[r.Net] = true
		a.profEngines++
		a.profSimPs += r.SimPs
	}
	if r.LookaheadPs > a.profLookPs {
		a.profLookPs = r.LookaheadPs
	}
}

// addProfileSnapshot folds one engine's recorder state (the in-memory
// collector path).
func (a *agg) addProfileSnapshot(snap obs.ProfileSnapshot) {
	a.profEngines++
	a.profSimPs += int64(snap.SimTime)
	if int64(snap.Lookahead) > a.profLookPs {
		a.profLookPs = int64(snap.Lookahead)
	}
	for _, bin := range snap.Bins {
		k := [2]int64{int64(bin.Kind), int64(bin.Plane)}
		b := a.profBins[k]
		b[0] += bin.Events
		b[1] += bin.WallNs
		a.profBins[k] = b
	}
	for i, ev := range snap.SubShards {
		a.addSubShard(i, ev)
	}
	for i, ev := range snap.PlaneShards {
		a.addPlaneShard(i, ev)
	}
	for _, h := range snap.Hosts {
		a.profHosts[h.Host] += h.Events
	}
}

// addSubShard folds one host sub-shard's fired-event count, growing the
// index-wise sum as needed.
func (a *agg) addSubShard(idx int, events int64) {
	for idx >= len(a.profSub) {
		a.profSub = append(a.profSub, 0)
	}
	a.profSub[idx] += events
}

// addPlaneShard folds one plane shard's fired-event count.
func (a *agg) addPlaneShard(idx int, events int64) {
	for idx >= len(a.profPlaneShards) {
		a.profPlaneShards = append(a.profPlaneShards, 0)
	}
	a.profPlaneShards[idx] += events
}

func (a *agg) addSolver(r obs.SolverRecord) {
	a.solver.Calls++
	a.solver.Phases += int64(r.Phases)
	a.solver.Iterations += r.Iterations
	a.solver.Attempts += int64(r.Attempts)
	a.solver.WallSec += r.WallSec
}

func (a *agg) addLink(r obs.LinkRecord) {
	a.util.Observe(r.Util)
	a.queue.Observe(float64(r.QueueBytes))
	a.linkDrops[[2]int64{int64(r.Net), r.Link}] = r.Drops
	if r.Blackholed > 0 {
		a.linkBH[[2]int64{int64(r.Net), r.Link}] = r.Blackholed
	}
	if r.TPs > a.simPs {
		a.simPs = r.TPs
	}
}

func (a *agg) addPlane(r obs.PlaneRecord) {
	a.planeBytes[[2]int64{int64(r.Net), int64(r.Plane)}] = r.TxBytes
	if r.TPs > a.simPs {
		a.simPs = r.TPs
	}
}

func (a *agg) addEngine(r obs.EngineRecord) {
	a.events += r.Events
	a.wallNs += r.WallNano
	if r.TPs > a.simPs {
		a.simPs = r.TPs
	}
}

func (a *agg) summary(m Meta) RunSummary {
	s := RunSummary{
		SchemaVersion: SchemaVersion,
		Created:       m.Created,
		Exp:           m.Exp,
		Scale:         m.Scale,
		Seed:          m.Seed,
		Workers:       m.Workers,
		GOMAXPROCS:    m.GOMAXPROCS,
		Shards:        m.Shards,
		HostShards:    m.HostShards,
		LookaheadPs:   m.LookaheadPs,
		Placement:     m.Placement,
		Flows:         int64(len(a.fcts)),
		FlowBytes:     a.bytes,
		Retransmits:   a.retrans,
		FCT:           distFromSamples(a.fcts),
		LinkUtil:      distFromHist(&a.util),
		QueueBytes:    distFromHist(&a.queue),
		Solver:        a.solver,
	}

	for _, d := range a.linkDrops {
		s.Drops += d
	}

	var blackholed int64
	for _, b := range a.linkBH {
		blackholed += b
	}
	if a.faultInjected > 0 || a.faultDetected > 0 || blackholed > 0 {
		s.Faults = &FaultSummary{
			Injected:        a.faultInjected,
			Cleared:         a.faultCleared,
			Detected:        a.faultDetected,
			Blackholed:      blackholed,
			DetectLatency:   distFromSamples(a.detectLat),
			FailoverLatency: distFromSamples(a.failoverLat),
			Recovery:        distFromSamples(a.recovery),
			DipFrac:         distFromSamples(a.dipFrac),
		}
	}

	// Per-plane byte shares, merged across networks, sorted by plane.
	perPlane := map[int32]int64{}
	var total int64
	for key, b := range a.planeBytes {
		perPlane[int32(key[1])] += b
		total += b
	}
	planes := make([]int32, 0, len(perPlane))
	for p := range perPlane {
		planes = append(planes, p)
	}
	sort.Slice(planes, func(i, j int) bool { return planes[i] < planes[j] })
	var maxBytes int64
	for _, p := range planes {
		b := perPlane[p]
		share := 0.0
		if total > 0 {
			share = float64(b) / float64(total)
		}
		s.PlaneShares = append(s.PlaneShares, PlaneShare{Plane: p, Bytes: b, Share: share})
		if b > maxBytes {
			maxBytes = b
		}
	}
	if len(planes) > 0 && total > 0 {
		mean := float64(total) / float64(len(planes))
		s.PlaneImbalance = float64(maxBytes) / mean
	}

	s.Engine = EngineSummary{
		Networks:   a.engines,
		Events:     a.events,
		WallSec:    float64(a.wallNs) / 1e9,
		SimSec:     float64(a.simPs) / 1e12,
		RunWallSec: float64(a.runWallNs) / 1e9,
	}
	if s.Engine.WallSec > 0 {
		s.Engine.EventsPerSec = float64(a.events) / s.Engine.WallSec
	}
	if s.Engine.SimSec > 0 {
		s.GoodputBps = float64(a.bytes) * 8 / s.Engine.SimSec
	}

	// Fold stream-path checkpoints in (XOR — order-free), then render.
	for _, r := range a.fpLast {
		g, _ := obs.ParseHash(r.Hash) // the reader validated these
		h, _ := obs.ParseHash(r.Host)
		planes := make([]uint64, 0, len(r.Planes))
		for _, p := range r.Planes {
			for int(p.Plane) >= len(planes) {
				planes = append(planes, 0)
			}
			v, _ := obs.ParseHash(p.Hash)
			planes[p.Plane] = v
		}
		a.foldFP(r.Events, r.EpochEvents, g, h, planes)
	}
	if a.fpEngines > 0 {
		fp := &FingerprintSummary{
			Engines:     a.fpEngines,
			EpochEvents: a.fpEpoch,
			Events:      a.fpEvents,
			Global:      obs.FormatHash(a.fpGlobal),
			Host:        obs.FormatHash(a.fpHost),
		}
		for pl, h := range a.fpPlanes {
			fp.Planes = append(fp.Planes, obs.PlaneHash{Plane: int32(pl), Hash: obs.FormatHash(h)})
		}
		s.Fingerprint = fp
	}

	s.Attribution = a.attributionSummary(s.FCT.P999)
	s.Profile = a.profileSummary()
	return s
}

// Aggregator is the streaming construction path for RunSummary: attach
// it as the collector's SampleSink (with DropSamples set) and every
// sample reduces on arrival instead of accumulating in sampler series —
// bounded memory however long the run. This is what `pnetbench -report`
// uses; `-exp all` would otherwise hold tens of millions of link
// samples live.
//
// An Aggregator accepts samples from concurrently-running networks:
// every reduction it performs (sums, per-(net,key) last-value maps,
// histogram buckets, max sim time) is commutative, so the summary it
// produces is independent of sample arrival order — and therefore of
// worker count.
type Aggregator struct {
	mu sync.Mutex
	a  *agg
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator { return &Aggregator{a: newAgg()} }

// LinkSample implements obs.SampleSink.
func (x *Aggregator) LinkSample(net int, s obs.LinkSample) {
	x.mu.Lock()
	x.a.addLink(s.Record(net))
	x.mu.Unlock()
}

// PlaneSample implements obs.SampleSink.
func (x *Aggregator) PlaneSample(net int, s obs.PlaneSample) {
	x.mu.Lock()
	x.a.addPlane(s.Record(net))
	x.mu.Unlock()
}

// EngineSample implements obs.SampleSink.
func (x *Aggregator) EngineSample(net int, s obs.EngineSample) {
	x.mu.Lock()
	x.a.addEngine(s.Record(net))
	x.mu.Unlock()
}

// Summarize folds the collector's flow and solver records in and
// returns the run summary. Call once, when the run is over and every
// producer has finished.
func (x *Aggregator) Summarize(c *obs.Collector, m Meta) RunSummary {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, f := range c.Flows {
		x.a.addFlow(f)
	}
	for _, r := range c.Solver {
		x.a.addSolver(r)
	}
	for _, r := range c.Faults {
		x.a.addFault(r)
	}
	for _, snap := range c.Profiles() {
		x.a.addProfileSnapshot(snap)
	}
	for _, snap := range c.Fingerprints() {
		x.a.addFingerprintSnapshot(snap)
	}
	x.a.engines = len(c.Samplers())
	x.a.runWallNs = c.RunWallNs()
	return x.a.summary(m)
}

// FromCollector summarizes a run from the collector's retained sampler
// series — the simple path when DropSamples is off. Runs that attached
// an Aggregator as the collector's sink should use its Summarize
// instead.
func FromCollector(c *obs.Collector, m Meta) RunSummary {
	a := newAgg()
	for _, f := range c.Flows {
		a.addFlow(f)
	}
	for _, r := range c.Solver {
		a.addSolver(r)
	}
	for _, r := range c.Faults {
		a.addFault(r)
	}
	for _, sm := range c.Samplers() {
		a.engines++
		for _, ls := range sm.Links {
			a.addLink(ls.Record(sm.NetID))
		}
		for _, ps := range sm.Planes {
			a.addPlane(ps.Record(sm.NetID))
		}
		for _, es := range sm.Engine {
			a.addEngine(es.Record(sm.NetID))
		}
	}
	for _, snap := range c.Profiles() {
		a.addProfileSnapshot(snap)
	}
	for _, snap := range c.Fingerprints() {
		a.addFingerprintSnapshot(snap)
	}
	a.runWallNs = c.RunWallNs()
	return a.summary(m)
}

// FromStream summarizes a run from a decoded JSONL metrics stream.
func FromStream(st *Stream, m Meta) RunSummary {
	a := newAgg()
	for _, f := range st.Flows {
		a.addFlow(f)
	}
	for _, r := range st.Solvers {
		a.addSolver(r)
	}
	for _, r := range st.Faults {
		a.addFault(r)
	}
	nets := map[int]bool{}
	for _, r := range st.Links {
		a.addLink(r)
	}
	for _, r := range st.Planes {
		a.addPlane(r)
	}
	for _, r := range st.Engines {
		nets[r.Net] = true
		a.addEngine(r)
	}
	for _, r := range st.Profiles {
		a.addProfileRecord(r)
	}
	for _, r := range st.Fingerprints {
		a.addFingerprintRecord(r)
	}
	a.engines = len(nets)
	return a.summary(m)
}

func distFromSamples(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return Dist{
		Count: int64(len(sorted)),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		P50:   metrics.Percentile(sorted, 50),
		P99:   metrics.Percentile(sorted, 99),
		P999:  metrics.Percentile(sorted, 99.9),
		Max:   sorted[len(sorted)-1],
	}
}

func distFromHist(h *obs.Histogram) Dist {
	if h.Count() == 0 {
		return Dist{}
	}
	return Dist{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String renders the summary for humans: the FCT tail, plane balance,
// solver convergence, and engine throughput the acceptance figures need.
func (s RunSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: exp=%s scale=%s seed=%d", orDash(s.Exp), orDash(s.Scale), s.Seed)
	if s.Created != "" {
		fmt.Fprintf(&b, " created=%s", s.Created)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "flows: %d (%d bytes, %d retransmits)\n", s.Flows, s.FlowBytes, s.Retransmits)
	if s.FCT.Count > 0 {
		fmt.Fprintf(&b, "fct:   p50=%s p99=%s p999=%s mean=%s max=%s\n",
			secs(s.FCT.P50), secs(s.FCT.P99), secs(s.FCT.P999), secs(s.FCT.Mean), secs(s.FCT.Max))
	}
	if s.GoodputBps > 0 {
		fmt.Fprintf(&b, "goodput: %.4g Gbit/s over %.4g s of sim time\n", s.GoodputBps/1e9, s.Engine.SimSec)
	}
	if len(s.PlaneShares) > 0 {
		b.WriteString("planes:")
		for _, p := range s.PlaneShares {
			fmt.Fprintf(&b, " %d=%.1f%%", p.Plane, p.Share*100)
		}
		fmt.Fprintf(&b, " (imbalance max/mean %.3f)\n", s.PlaneImbalance)
	}
	if s.LinkUtil.Count > 0 {
		fmt.Fprintf(&b, "link util: p50=%.3f p99=%.3f max=%.3f (%d samples); drops=%d\n",
			s.LinkUtil.P50, s.LinkUtil.P99, s.LinkUtil.Max, s.LinkUtil.Count, s.Drops)
	}
	fmt.Fprintf(&b, "solver: %d calls, %d phases, %d iterations, wall %.3fs\n",
		s.Solver.Calls, s.Solver.Phases, s.Solver.Iterations, s.Solver.WallSec)
	if s.Engine.Events > 0 {
		fmt.Fprintf(&b, "engine: %d events in %.3fs wall (%.3g events/s) across %d networks\n",
			s.Engine.Events, s.Engine.WallSec, s.Engine.EventsPerSec, s.Engine.Networks)
	}
	if a := s.Attribution; a != nil {
		b.WriteString("attribution:")
		byComp := map[string]float64{}
		for _, c := range a.Overall {
			byComp[c.Component] += c.Share
		}
		for _, name := range sim.SpanComponentNames() {
			if sh, ok := byComp[name]; ok {
				fmt.Fprintf(&b, " %s=%.1f%%", name, sh*100)
			}
		}
		fmt.Fprintf(&b, " over %d flows (pnetstat attribution for the tables)\n", a.Flows)
	}
	if p := s.Profile; p != nil {
		fmt.Fprintf(&b, "profile: %d events, host boundary %.1f%%", p.Events, p.HostFrac*100)
		if p.SpeedupEventBound > 0 {
			fmt.Fprintf(&b, ", pdes bound %.2fx", p.SpeedupEventBound)
		}
		b.WriteString(" (pnetstat profile for detail)\n")
	}
	if fp := s.Fingerprint; fp != nil {
		fmt.Fprintf(&b, "fingerprint: global=%s host=%s (%d events, %d engines, epoch %d)\n",
			fp.Global, fp.Host, fp.Events, fp.Engines, fp.EpochEvents)
	}
	if f := s.Faults; f != nil {
		fmt.Fprintf(&b, "faults: %d injected, %d cleared, %d detected; %d blackholed",
			f.Injected, f.Cleared, f.Detected, f.Blackholed)
		if f.DetectLatency.Count > 0 {
			fmt.Fprintf(&b, "; detect p50=%s max=%s", secs(f.DetectLatency.P50), secs(f.DetectLatency.Max))
		}
		if f.FailoverLatency.Count > 0 {
			fmt.Fprintf(&b, "; failover p50=%s", secs(f.FailoverLatency.P50))
		}
		if f.Recovery.Count > 0 {
			fmt.Fprintf(&b, "; recovery p50=%s", secs(f.Recovery.P50))
		}
		b.WriteByte('\n')
	}
	for _, g := range s.GoBench {
		fmt.Fprintf(&b, "gobench: %s %.4g ns/op", g.Name, g.NsPerOp)
		for _, k := range sortedKeys(g.Metrics) {
			fmt.Fprintf(&b, " %.4g %s", g.Metrics[k], k)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// secs formats seconds with engineering-friendly precision.
func secs(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.3gs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3gms", v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%.3gus", v*1e6)
	default:
		return fmt.Sprintf("%.0fns", v*1e9)
	}
}
