package report

import (
	"errors"
	"strings"
	"testing"

	"pnet/internal/obs"
)

const goodStream = `{"type":"engine","net":0,"t_ps":10000000,"events":100,"heap":5,"wall_ns":2000}
{"type":"link","net":0,"t_ps":10000000,"link":3,"plane":1,"queue_bytes":3000,"util":0.5,"tx_bytes":150000,"drops":2}
{"type":"plane","net":0,"t_ps":10000000,"plane":1,"tx_bytes":150000}
{"type":"flow","id":7,"transport":"tcp","src":1,"dst":2,"bytes":1000000,"fct_s":0.002,"retransmits":1,"subflows":4,"planes":[0,1]}
{"type":"solver","exp":"fig6c","solver":"gk-fixed","k":8,"lambda":0.9,"phases":12,"iterations":400,"attempts":2,"wall_s":0.05}
{"type":"metric","name":"flows.completed","kind":"counter","value":1}
{"type":"pkt","ev":"enqueue","t_ps":1280,"link":3,"plane":0,"flow":7,"seq":41,"size":1500}
`

func TestReadStreamAllKinds(t *testing.T) {
	s, err := ReadStream(strings.NewReader(goodStream))
	if err != nil {
		t.Fatal(err)
	}
	if s.Lines != 7 {
		t.Fatalf("decoded %d lines, want 7", s.Lines)
	}
	if len(s.Engines) != 1 || len(s.Links) != 1 || len(s.Planes) != 1 ||
		len(s.Flows) != 1 || len(s.Solvers) != 1 || len(s.Metrics) != 1 || len(s.Packets) != 1 {
		t.Fatalf("bucket counts = %+v", s)
	}
	if s.Flows[0].FCT != 0.002 || s.Flows[0].Planes[1] != 1 {
		t.Errorf("flow = %+v", s.Flows[0])
	}
	if s.Links[0].Util != 0.5 || s.Links[0].Plane != 1 {
		t.Errorf("link = %+v", s.Links[0])
	}
	if s.Packets[0].Ev != "enqueue" || s.Packets[0].Size != 1500 {
		t.Errorf("packet = %+v", s.Packets[0])
	}
}

// TestReadStreamTruncatedFinalLine: a stream cut off mid-write must
// yield every complete record plus a typed *ParseError with Truncated
// set — not a panic, not silent loss.
func TestReadStreamTruncatedFinalLine(t *testing.T) {
	cut := goodStream[:len(goodStream)-30] // mid final record, no newline
	s, err := ReadStream(strings.NewReader(cut))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if !pe.Truncated {
		t.Errorf("ParseError.Truncated = false for cut-off final line: %v", pe)
	}
	if pe.Line != 7 {
		t.Errorf("ParseError.Line = %d, want 7", pe.Line)
	}
	if s.Lines != 6 {
		t.Errorf("partial stream has %d records, want the 6 complete ones", s.Lines)
	}
	if len(s.Flows) != 1 || len(s.Solvers) != 1 {
		t.Errorf("partial stream lost records: %+v", s)
	}
}

// TestReadStreamUnknownKind: a record kind from a future writer must
// surface as a typed *UnknownKindError with the decoded prefix intact.
func TestReadStreamUnknownKind(t *testing.T) {
	in := goodStream + `{"type":"warp","coil":9}` + "\n"
	s, err := ReadStream(strings.NewReader(in))
	var uk *UnknownKindError
	if !errors.As(err, &uk) {
		t.Fatalf("err = %v, want *UnknownKindError", err)
	}
	if uk.Kind != "warp" || uk.Line != 8 {
		t.Errorf("UnknownKindError = %+v", uk)
	}
	if s.Lines != 7 {
		t.Errorf("partial stream has %d records, want 7", s.Lines)
	}
}

func TestReadStreamEmpty(t *testing.T) {
	for _, in := range []string{"", "\n\n  \n"} {
		s, err := ReadStream(strings.NewReader(in))
		if !errors.Is(err, ErrEmptyStream) {
			t.Fatalf("ReadStream(%q) err = %v, want ErrEmptyStream", in, err)
		}
		if s == nil || s.Lines != 0 {
			t.Errorf("ReadStream(%q) stream = %+v", in, s)
		}
	}
}

// TestReadStreamGarbageMidFile: corruption before the end is a
// *ParseError without Truncated — the caller should not mistake it for
// a benign cut-off.
func TestReadStreamGarbageMidFile(t *testing.T) {
	in := `{"type":"flow","id":1,"fct_s":0.1}` + "\n" + `not json at all` + "\n" +
		`{"type":"flow","id":2,"fct_s":0.2}` + "\n"
	s, err := ReadStream(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Truncated {
		t.Error("mid-file garbage flagged as truncation")
	}
	if pe.Line != 2 {
		t.Errorf("ParseError.Line = %d, want 2", pe.Line)
	}
	if len(s.Flows) != 1 {
		t.Errorf("prefix flows = %d, want 1", len(s.Flows))
	}
}

// TestRoundTripWriterReader pins writer and reader to the same schema:
// records written by obs.Collector's stream must decode back into
// identical structs.
func TestRoundTripWriterReader(t *testing.T) {
	var buf strings.Builder
	c := obs.NewCollector()
	c.StreamMetrics(&buf)
	flow := obs.FlowRecord{ID: 3, Transport: "ndp", Src: 4, Dst: 5, Bytes: 9000,
		FCT: 1.5e-4, Retransmits: 2, Subflows: 8, Planes: []int32{0, 2}}
	solve := obs.SolverRecord{Exp: "fig7", Solver: "gk-free", Lambda: 1.25,
		Phases: 9, Iterations: 77, Attempts: 1, WallSec: 0.25}
	c.RecordFlow(flow)
	c.RecordSolver(solve)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := ReadStream(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Flows) != 1 || len(s.Solvers) != 1 {
		t.Fatalf("stream = %+v", s)
	}
	got := s.Flows[0]
	got.Type = "" // writer stamps the discriminator
	flowWant := flow
	if got.ID != flowWant.ID || got.FCT != flowWant.FCT || got.Subflows != flowWant.Subflows ||
		len(got.Planes) != 2 || got.Planes[1] != 2 {
		t.Errorf("flow round-trip: got %+v want %+v", got, flowWant)
	}
	if s.Solvers[0].Iterations != 77 || s.Solvers[0].WallSec != 0.25 {
		t.Errorf("solver round-trip: %+v", s.Solvers[0])
	}
	// The close snapshot rides along as metric records.
	if len(s.Metrics) == 0 {
		t.Error("no metric snapshot records in stream")
	}
}
