package report

import (
	"fmt"
	"sort"
	"strings"

	"pnet/internal/obs"
)

// Divergence localization: given two fingerprint checkpoint streams from
// runs that should have been identical (same experiment, same seed,
// different worker count / branch / machine), find the first epoch where
// their determinism chains part ways — and, when per-event journals for
// that epoch are available, the exact first divergent event.
//
// Engine NetIDs are attach-order and therefore not comparable across
// runs (workers > 1 attaches in completion order), so engines are paired
// canonically: each engine is keyed by its checkpoint hash sequence and
// the two runs' engines are sorted by that key and paired index-wise.
// Two identical runs pair exactly; two diverging runs pair their
// identical engines first and leave the diverging ones aligned at the
// end, which is as good as pairing gets without cross-run IDs.
//
// The chains are cumulative, so "checkpoints match" is a prefix-closed
// predicate over epochs; the first divergent epoch is found by binary
// search rather than a scan — the bisection that gives the pnetstat
// subcommand its name.

// EngineChain is one engine's checkpoint sequence, extracted from a
// stream and sorted by epoch.
type EngineChain struct {
	Net         int
	EpochEvents int64
	Checkpoints []obs.FingerprintRecord
}

// key is the canonical pairing key: the hash sequence itself.
func (e EngineChain) key() string {
	var b strings.Builder
	for _, cp := range e.Checkpoints {
		b.WriteString(cp.Hash)
	}
	return b.String()
}

// ExtractChains groups a stream's fingerprint records by engine and
// sorts each engine's checkpoints by epoch.
func ExtractChains(st *Stream) []EngineChain {
	byNet := map[int][]obs.FingerprintRecord{}
	for _, r := range st.Fingerprints {
		byNet[r.Net] = append(byNet[r.Net], r)
	}
	out := make([]EngineChain, 0, len(byNet))
	for net, cps := range byNet {
		sort.Slice(cps, func(i, j int) bool { return cps[i].Epoch < cps[j].Epoch })
		out = append(out, EngineChain{Net: net, EpochEvents: cps[0].EpochEvents, Checkpoints: cps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// DivergentEvent is the event-level localization inside the divergent
// epoch, available when both runs supplied journals.
type DivergentEvent struct {
	// Index is the first journal position (within the epoch) where the
	// two runs disagree; -1 if one journal is a strict prefix of the
	// other (the shorter run simply stopped).
	Index int64
	// Base and Cur are the records at that position (zero Type if absent
	// on that side).
	Base, Cur obs.FingerprintEventRecord
	// ContextBase and ContextCur are the ±K windows around the event.
	ContextBase, ContextCur []obs.FingerprintEventRecord
}

// Divergence is the verdict of comparing two fingerprint streams.
type Divergence struct {
	// Match is true when every paired engine's chain is identical end to
	// end and the runs have the same engine count.
	Match bool
	// Engines is the number of paired engines; Note carries structural
	// mismatches (engine count, cadence) that preempt bisection.
	Engines int
	Note    string

	// The earliest divergence across all pairs:
	Pair              int   // pair index (canonical order)
	BaseNet, CurNet   int   // the pair's NetIDs in each stream
	Epoch             int64 // first divergent epoch
	Events            int64 // cumulative events at that checkpoint
	BaseHash, CurHash string
	// Planes lists the planes whose chains differ at the divergent
	// checkpoint; HostDiffers marks the plane-less (timer) chain.
	Planes      []int32
	HostDiffers bool

	// Event is the event-level localization, set by LocalizeEvents.
	Event *DivergentEvent
}

// FindDivergence pairs the two streams' engines canonically and binary-
// searches each pair's checkpoints for the first divergent epoch,
// returning the earliest divergence found (by epoch, then pair index).
func FindDivergence(base, cur *Stream) (*Divergence, error) {
	bc := ExtractChains(base)
	cc := ExtractChains(cur)
	if len(bc) == 0 || len(cc) == 0 {
		return nil, fmt.Errorf("report: no fingerprint records (base %d engines, cur %d) — were the runs made with -fingerprint?", len(bc), len(cc))
	}
	d := &Divergence{Engines: len(bc), Epoch: -1}
	if len(bc) != len(cc) {
		d.Note = fmt.Sprintf("engine count differs: base has %d, cur has %d — the runs did not execute the same simulations", len(bc), len(cc))
		return d, nil
	}
	if be, ce := bc[0].EpochEvents, cc[0].EpochEvents; be != ce {
		d.Note = fmt.Sprintf("checkpoint cadence differs: base epoch=%d events, cur epoch=%d — rerun with matching -fingerprint-epoch", be, ce)
		return d, nil
	}
	found := false
	for i := range bc {
		b, c := bc[i], cc[i]
		n := len(b.Checkpoints)
		if len(c.Checkpoints) < n {
			n = len(c.Checkpoints)
		}
		// Chains are cumulative: equal checkpoints stay equal until the
		// first divergence, after which every checkpoint differs. That
		// makes "differs at epoch i" monotone in i — binary-searchable.
		first := sort.Search(n, func(j int) bool {
			return b.Checkpoints[j].Hash != c.Checkpoints[j].Hash
		})
		if first == n {
			if len(b.Checkpoints) == len(c.Checkpoints) {
				continue // identical end to end
			}
			// One run recorded more epochs: the shared prefix matches, so
			// the divergence is the first checkpoint only one side has.
			longer := b.Checkpoints
			if len(c.Checkpoints) > len(b.Checkpoints) {
				longer = c.Checkpoints
			}
			cp := longer[n]
			if !found || cp.Epoch < d.Epoch {
				found = true
				d.Pair, d.BaseNet, d.CurNet = i, b.Net, c.Net
				d.Epoch, d.Events = cp.Epoch, cp.Events
				d.BaseHash, d.CurHash = hashAt(b.Checkpoints, n), hashAt(c.Checkpoints, n)
				d.Planes, d.HostDiffers = nil, false
			}
			continue
		}
		bcp, ccp := b.Checkpoints[first], c.Checkpoints[first]
		if !found || bcp.Epoch < d.Epoch {
			found = true
			d.Pair, d.BaseNet, d.CurNet = i, b.Net, c.Net
			d.Epoch, d.Events = bcp.Epoch, bcp.Events
			d.BaseHash, d.CurHash = bcp.Hash, ccp.Hash
			d.Planes, d.HostDiffers = divergentPlanes(bcp, ccp)
		}
	}
	d.Match = !found
	return d, nil
}

func hashAt(cps []obs.FingerprintRecord, i int) string {
	if i < len(cps) {
		return cps[i].Hash
	}
	return "(run ended)"
}

// divergentPlanes names the per-plane chains that differ at a
// checkpoint — the attribution that tells a PDES debugger which plane's
// event order broke first.
func divergentPlanes(b, c obs.FingerprintRecord) (planes []int32, host bool) {
	host = b.Host != c.Host
	bp := map[int32]string{}
	for _, p := range b.Planes {
		bp[p.Plane] = p.Hash
	}
	seen := map[int32]bool{}
	for _, p := range c.Planes {
		seen[p.Plane] = true
		if bp[p.Plane] != p.Hash {
			planes = append(planes, p.Plane)
		}
	}
	for _, p := range b.Planes {
		if !seen[p.Plane] {
			planes = append(planes, p.Plane)
		}
	}
	sort.Slice(planes, func(i, j int) bool { return planes[i] < planes[j] })
	return planes, host
}

// LocalizeEvents refines a checkpoint-level divergence to the first
// divergent event, given per-event journals (pnetbench
// -fingerprint-journal) from both runs. Only the divergent (net, epoch)
// is consulted, so journals recorded for just that epoch's re-run
// suffice. K sets the ± context window.
func (d *Divergence) LocalizeEvents(base, cur *Stream, k int) error {
	if d.Match || d.Epoch < 0 {
		return fmt.Errorf("report: no divergent epoch to localize")
	}
	be := journalEpoch(base, d.BaseNet, d.Epoch)
	ce := journalEpoch(cur, d.CurNet, d.Epoch)
	if len(be) == 0 || len(ce) == 0 {
		return fmt.Errorf("report: no journal records for the divergent epoch (base net %d: %d, cur net %d: %d) — rerun both with -fingerprint-journal",
			d.BaseNet, len(be), d.CurNet, len(ce))
	}
	n := len(be)
	if len(ce) < n {
		n = len(ce)
	}
	// Search over the cumulative chain hashes, not the event identities:
	// after a swapped pair the identities match again, but the chains
	// stay apart forever — the monotone predicate bisection needs.
	first := sort.Search(n, func(i int) bool { return be[i].Hash != ce[i].Hash })
	ev := &DivergentEvent{Index: -1}
	if first < n {
		ev.Index = be[first].I
		ev.Base, ev.Cur = be[first], ce[first]
	} else if len(be) != len(ce) {
		first = n // one journal is a prefix of the other
		if first < len(be) {
			ev.Index, ev.Base = be[first].I, be[first]
		} else {
			ev.Index, ev.Cur = ce[first].I, ce[first]
		}
	} else {
		return fmt.Errorf("report: journals for epoch %d are identical — the divergence is in another epoch or engine pairing", d.Epoch)
	}
	ev.ContextBase = window(be, first, k)
	ev.ContextCur = window(ce, first, k)
	d.Event = ev
	return nil
}

// journalEpoch returns one engine's journal records for one epoch, in
// index order.
func journalEpoch(st *Stream, net int, epoch int64) []obs.FingerprintEventRecord {
	var out []obs.FingerprintEventRecord
	for _, r := range st.FPEvents {
		if r.Net == net && r.Epoch == epoch {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].I < out[j].I })
	return out
}

func window(xs []obs.FingerprintEventRecord, at, k int) []obs.FingerprintEventRecord {
	lo, hi := at-k, at+k+1
	if lo < 0 {
		lo = 0
	}
	if hi > len(xs) {
		hi = len(xs)
	}
	return append([]obs.FingerprintEventRecord(nil), xs[lo:hi]...)
}

// String renders the divergence verdict for humans — the output of
// `pnetstat divergence`.
func (d *Divergence) String() string {
	var b strings.Builder
	if d.Note != "" {
		fmt.Fprintf(&b, "DIVERGED (structural): %s\n", d.Note)
		return b.String()
	}
	if d.Match {
		fmt.Fprintf(&b, "MATCH: %d engine(s), all checkpoint chains identical\n", d.Engines)
		return b.String()
	}
	fmt.Fprintf(&b, "DIVERGED: engine pair %d (base net %d, cur net %d) at epoch %d (≤ %d events)\n",
		d.Pair, d.BaseNet, d.CurNet, d.Epoch, d.Events)
	fmt.Fprintf(&b, "  global chain: base %s != cur %s\n", d.BaseHash, d.CurHash)
	if len(d.Planes) > 0 || d.HostDiffers {
		b.WriteString("  diverging chains:")
		for _, p := range d.Planes {
			fmt.Fprintf(&b, " plane %d", p)
		}
		if d.HostDiffers {
			b.WriteString(" host(timers)")
		}
		b.WriteByte('\n')
	}
	if ev := d.Event; ev != nil {
		fmt.Fprintf(&b, "  first divergent event: epoch %d index %d\n", d.Epoch, ev.Index)
		if ev.Base.Type != "" {
			fmt.Fprintf(&b, "    base: %s\n", fmtEvent(ev.Base))
		} else {
			b.WriteString("    base: (run ended before this event)\n")
		}
		if ev.Cur.Type != "" {
			fmt.Fprintf(&b, "    cur:  %s\n", fmtEvent(ev.Cur))
		} else {
			b.WriteString("    cur:  (run ended before this event)\n")
		}
		if len(ev.ContextBase) > 0 {
			b.WriteString("  context (base):\n")
			for _, r := range ev.ContextBase {
				mark := "  "
				if r.I == ev.Index {
					mark = "->"
				}
				fmt.Fprintf(&b, "    %s i=%-6d %s\n", mark, r.I, fmtEvent(r))
			}
		}
		if len(ev.ContextCur) > 0 {
			b.WriteString("  context (cur):\n")
			for _, r := range ev.ContextCur {
				mark := "  "
				if r.I == ev.Index {
					mark = "->"
				}
				fmt.Fprintf(&b, "    %s i=%-6d %s\n", mark, r.I, fmtEvent(r))
			}
		}
	} else {
		fmt.Fprintf(&b, "  (rerun both with -fingerprint-journal and pass the journals to localize the exact event)\n")
	}
	return b.String()
}

func fmtEvent(r obs.FingerprintEventRecord) string {
	switch r.Kind {
	case "timer":
		return fmt.Sprintf("t=%dps timer", r.TPs)
	default:
		return fmt.Sprintf("t=%dps %s plane=%d link=%d flow=%d seq=%d size=%d",
			r.TPs, r.Kind, r.Plane, r.Link, r.Flow, r.Seq, r.Size)
	}
}
