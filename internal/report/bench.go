package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchPrefix names the trajectory files: BENCH_<stamp>.json at the
// repository root, one per recorded run, newest = lexicographically
// greatest stamp (stamps are UTC 20060102T150405, so name order is time
// order).
const BenchPrefix = "BENCH_"

// BenchStamp formats a timestamp the way trajectory filenames expect.
func BenchStamp(t time.Time) string { return t.UTC().Format("20060102T150405") }

// BenchPath returns dir/BENCH_<stamp>.json.
func BenchPath(dir, stamp string) string {
	return filepath.Join(dir, BenchPrefix+stamp+".json")
}

// WriteBench serializes s to dir/BENCH_<stamp>.json, deriving the stamp
// from s.Created (RFC3339). The file is indented so committed baselines
// diff readably.
func WriteBench(dir string, s RunSummary) (string, error) {
	if s.Created == "" {
		return "", errors.New("report: summary has no Created timestamp to derive a stamp from")
	}
	t, err := time.Parse(time.RFC3339, s.Created)
	if err != nil {
		return "", fmt.Errorf("report: bad Created timestamp %q: %w", s.Created, err)
	}
	path := BenchPath(dir, BenchStamp(t))
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ErrNoBaseline reports an empty trajectory: no BENCH_*.json committed
// yet.
var ErrNoBaseline = errors.New("report: no BENCH_*.json baseline found")

// LatestBench finds and loads the newest BENCH_*.json in dir.
func LatestBench(dir string) (string, RunSummary, error) {
	paths, err := filepath.Glob(filepath.Join(dir, BenchPrefix+"*.json"))
	if err != nil {
		return "", RunSummary{}, err
	}
	if len(paths) == 0 {
		return "", RunSummary{}, ErrNoBaseline
	}
	sort.Strings(paths)
	path := paths[len(paths)-1]
	s, err := readSummaryJSON(path)
	return path, s, err
}

func readSummaryJSON(path string) (RunSummary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return RunSummary{}, err
	}
	var s RunSummary
	if err := json.Unmarshal(b, &s); err != nil {
		return RunSummary{}, fmt.Errorf("report: %s: %w", path, err)
	}
	if s.SchemaVersion == 0 {
		return RunSummary{}, fmt.Errorf("report: %s: not a RunSummary (no schema_version)", path)
	}
	if s.SchemaVersion > SchemaVersion {
		return RunSummary{}, fmt.Errorf("report: %s: schema_version %d newer than this binary's %d",
			path, s.SchemaVersion, SchemaVersion)
	}
	return s, nil
}

// LoadRun reads a run from disk in either accepted format: a RunSummary
// JSON written by `pnetbench -report`/WriteBench, or a raw metrics JSONL
// stream, auto-detected by shape. JSONL streams that end in a truncated
// final line still load (the partial prefix is summarized); the typed
// error is returned alongside the summary so callers can warn.
func LoadRun(path string, m Meta) (RunSummary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return RunSummary{}, err
	}
	if isSummaryJSON(b) {
		return readSummaryJSON(path)
	}
	st, rerr := ReadStream(bytes.NewReader(b))
	if rerr != nil {
		var pe *ParseError
		if !errors.As(rerr, &pe) || !pe.Truncated {
			return FromStream(st, m), fmt.Errorf("%s: %w", path, rerr)
		}
		// Tolerated: a stream cut off mid-write keeps its prefix.
	}
	return FromStream(st, m), nil
}

// LoadStream reads a raw metrics JSONL stream, for subcommands that
// need record-level data (fingerprint checkpoints, journals, trace
// export) which the aggregate RunSummary no longer carries. A summary
// JSON is rejected with a pointer at the right input; a truncated final
// line is tolerated like LoadRun.
func LoadStream(path string) (*Stream, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if isSummaryJSON(b) {
		return nil, fmt.Errorf("%s: is a RunSummary JSON; this command needs the raw metrics JSONL stream (pnetbench -metrics)", path)
	}
	st, rerr := ReadStream(bytes.NewReader(b))
	if rerr != nil {
		var pe *ParseError
		if !errors.As(rerr, &pe) || !pe.Truncated {
			return st, fmt.Errorf("%s: %w", path, rerr)
		}
		// Tolerated: a stream cut off mid-write keeps its prefix.
	}
	return st, nil
}

// isSummaryJSON distinguishes one indented RunSummary object from a
// JSONL stream: a stream's first line is a complete object mentioning a
// "type" discriminator, a summary starts with "schema_version".
func isSummaryJSON(b []byte) bool {
	var probe struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return false // multiple JSONL lines fail whole-buffer unmarshal
	}
	return probe.SchemaVersion != 0
}

// ParseGoBench extracts benchmark results from `go test -bench` output:
//
//	BenchmarkEngineEventLoop-8   5000000   250.3 ns/op   16 B/op   1 allocs/op
//	BenchmarkGKSolverPhase-8     100       1.2e6 ns/op   42.0 phases
//
// The -<GOMAXPROCS> suffix is stripped; units beyond ns/op, B/op, and
// allocs/op land in GoBench.Metrics keyed by unit. Lines that are not
// benchmark results are skipped.
func ParseGoBench(r io.Reader) ([]GoBench, error) {
	var out []GoBench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		runs, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		g := GoBench{Name: name, Runs: runs}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				g.NsPerOp = v
			case "B/op":
				g.BytesPerOp = v
			case "allocs/op":
				g.AllocsPerOp = v
			default:
				if g.Metrics == nil {
					g.Metrics = map[string]float64{}
				}
				g.Metrics[unit] = v
			}
		}
		out = append(out, g)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
