package report

// Latency attribution and event-loop profile summaries: the two sides of
// this package's "explain the time" story. Attribution decomposes
// simulated FCT into span components (deterministic, gateable); the
// profile decomposes the event loop's work by kind and plane and derives
// the PDES sizing bounds of ROADMAP item 1. Everything here except the
// wall-second fields is bit-identical across worker counts.

import (
	"fmt"
	"sort"
	"strings"

	"pnet/internal/obs"
	"pnet/internal/sim"
)

// AttributionCell is one (component, plane) slice of attributed time.
// Plane is -1 for components not tied to a link (stalls, host waits).
type AttributionCell struct {
	Component string  `json:"component"`
	Plane     int32   `json:"plane"`
	Seconds   float64 `json:"seconds"`
	Share     float64 `json:"share"`
}

// AttributionSummary is a run's FCT decomposition: where the seconds of
// every flow's completion time went. Overall covers all flows carrying
// spans; Tail re-aggregates only the flows at or above the FCT p99.9,
// answering "what is the tail made of" directly.
type AttributionSummary struct {
	Flows    int64             `json:"flows"`
	TotalSec float64           `json:"total_s"`
	Overall  []AttributionCell `json:"overall"`

	TailThresholdSec float64           `json:"tail_threshold_s,omitempty"`
	TailFlows        int64             `json:"tail_flows,omitempty"`
	Tail             []AttributionCell `json:"tail,omitempty"`
}

// ComponentShare sums a component's share across planes (0 if absent).
func (a *AttributionSummary) ComponentShare(name string) float64 {
	if a == nil {
		return 0
	}
	var s float64
	for _, c := range a.Overall {
		if c.Component == name {
			s += c.Share
		}
	}
	return s
}

// ProfileBinSummary is one (event kind, plane) bin of the merged flight
// recordings. Events is deterministic; WallSec is this host's.
type ProfileBinSummary struct {
	Kind    string  `json:"kind"`
	Plane   int32   `json:"plane"`
	Events  int64   `json:"events"`
	WallSec float64 `json:"wall_s"`
}

// ProfilePlane is one dataplane's in-plane work (hop + tx events).
type ProfilePlane struct {
	Plane   int32   `json:"plane"`
	Events  int64   `json:"events"`
	WallSec float64 `json:"wall_s"`
	// EventsPerSimSec is the plane's event rate per second of profiled
	// sim time — how much work a per-plane PDES queue would own.
	EventsPerSimSec float64 `json:"events_per_sim_sec,omitempty"`
}

// ProfileSummary is the event-loop flight recording reduced to the PDES
// sizing question: how much of the event loop is per-plane work, how
// much crosses the host boundary, and what speedup per-plane event
// queues could therefore reach. The event-count bounds (SpeedupAmdahl,
// SpeedupEventBound) are deterministic; the wall-based bound rides along
// for this machine.
type ProfileSummary struct {
	Engines int     `json:"engines"`
	Events  int64   `json:"events"`
	WallSec float64 `json:"wall_s"`
	SimSec  float64 `json:"sim_s,omitempty"` // profiled sim time, summed over engines

	Bins   []ProfileBinSummary `json:"bins"`
	Planes []ProfilePlane      `json:"planes,omitempty"`

	// SubShards is the events fired per host sub-shard (index = sub-shard)
	// and HostShards its length, present only when some profiled engine
	// ran host-sub-sharded (-host-shards > 1). When present, the speedup
	// predictors model the host boundary as H concurrent sub-shards: the
	// critical path per window is the busiest plane plus the busiest
	// sub-shard, not the whole host boundary.
	SubShards  []int64 `json:"sub_shards,omitempty"`
	HostShards int     `json:"host_shards,omitempty"`

	// PlaneShards is the events fired per plane shard (index = plane
	// shard), present only when the profiled engine ran with more than
	// one plane shard.
	PlaneShards []int64 `json:"plane_shards,omitempty"`

	// SubShardImbalance and PlaneShardImbalance are the max/mean
	// occupancy ratios of the corresponding splits (1.0 = perfectly
	// balanced) — the load-balance verdict placement planning targets.
	// Present only when the split has more than one member with work.
	SubShardImbalance   float64 `json:"sub_shard_imbalance,omitempty"`
	PlaneShardImbalance float64 `json:"plane_shard_imbalance,omitempty"`

	// HostLoads is the per-host delivery count in host-ID order — the
	// measured weights `pnetstat profile -emit-placement` exports.
	HostLoads []HostLoad `json:"host_loads,omitempty"`

	// HostEvents counts deliver + timer events — the work that executes
	// host-side code and serializes a per-plane partition.
	HostEvents  int64   `json:"host_events"`
	HostFrac    float64 `json:"host_frac"`
	HostWallSec float64 `json:"host_wall_s"`

	// LookaheadPs is the conservative PDES lookahead (the host–ToR
	// propagation delay); EventsPerLookahead is the mean number of events
	// one plane fires inside one lookahead window — the batch size that
	// must amortize synchronization for conservative PDES to win.
	LookaheadPs        int64   `json:"lookahead_ps,omitempty"`
	EventsPerLookahead float64 `json:"events_per_lookahead,omitempty"`

	// SpeedupAmdahl treats host events as the serial fraction over P
	// plane workers; SpeedupEventBound is the critical-path bound
	// total/(max-plane + host). Both are event-count based and
	// deterministic. SpeedupWallBound is the same critical path in
	// measured wall time (informational).
	SpeedupAmdahl     float64 `json:"speedup_amdahl,omitempty"`
	SpeedupEventBound float64 `json:"speedup_event_bound,omitempty"`
	SpeedupWallBound  float64 `json:"speedup_wall_bound,omitempty"`

	// Worker-pool occupancy of the run that produced the profile (from
	// internal/par), recorded by the harness: how much of the machine the
	// current cell-level parallelism already uses.
	PoolLimit int   `json:"pool_limit,omitempty"`
	PoolPeak  int   `json:"pool_peak,omitempty"`
	PoolTasks int64 `json:"pool_tasks,omitempty"`
}

// HostLoad is one host's measured delivery count within a profile.
type HostLoad struct {
	Host   int64 `json:"host"`
	Events int64 `json:"events"`
}

// maxMean returns the max/mean ratio of a split, or 0 when the split has
// fewer than two members or no work at all.
func maxMean(xs []int64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum, max int64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum <= 0 {
		return 0
	}
	return float64(max) / (float64(sum) / float64(len(xs)))
}

// spanFlow retains one flow's spans for tail re-aggregation.
type spanFlow struct {
	fct   float64
	spans []obs.SpanShare
}

// attributionSummary reduces the accumulated span cells. thresh is the
// tail FCT threshold in seconds (p99.9 of the run's FCTs).
func (a *agg) attributionSummary(thresh float64) *AttributionSummary {
	if len(a.spanPs) == 0 {
		return nil
	}
	var totalPs int64
	for _, ps := range a.spanPs {
		totalPs += ps
	}
	s := &AttributionSummary{
		Flows:    int64(len(a.spanFlows)),
		TotalSec: float64(totalPs) / 1e12,
		Overall:  cellsFromPs(a.spanPs, totalPs),
	}
	if thresh > 0 {
		tail := map[[2]int64]int64{}
		var tailPs int64
		for _, f := range a.spanFlows {
			if f.fct < thresh {
				continue
			}
			s.TailFlows++
			for _, sp := range f.spans {
				ci, ok := sim.ParseSpanComponent(sp.Component)
				if !ok {
					continue
				}
				tail[[2]int64{int64(ci), int64(sp.Plane)}] += sp.Ps
				tailPs += sp.Ps
			}
		}
		if s.TailFlows > 0 {
			s.TailThresholdSec = thresh
			s.Tail = cellsFromPs(tail, tailPs)
		}
	}
	return s
}

// cellsFromPs renders a (component, plane) → picoseconds map as sorted
// cells. Shares are ratios of exact integer sums, so they are identical
// however the picoseconds accumulated.
func cellsFromPs(m map[[2]int64]int64, totalPs int64) []AttributionCell {
	keys := make([][2]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]AttributionCell, 0, len(keys))
	for _, k := range keys {
		share := 0.0
		if totalPs > 0 {
			share = float64(m[k]) / float64(totalPs)
		}
		out = append(out, AttributionCell{
			Component: sim.SpanComponent(k[0]).String(),
			Plane:     int32(k[1]),
			Seconds:   float64(m[k]) / 1e12,
			Share:     share,
		})
	}
	return out
}

// profileSummary reduces the accumulated flight-recorder bins.
func (a *agg) profileSummary() *ProfileSummary {
	if len(a.profBins) == 0 {
		return nil
	}
	keys := make([][2]int64, 0, len(a.profBins))
	for k := range a.profBins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	s := &ProfileSummary{
		Engines:     a.profEngines,
		SimSec:      float64(a.profSimPs) / 1e12,
		LookaheadPs: a.profLookPs,
	}
	var hostWallNs, totalWallNs int64
	planeEv := map[int32]int64{}
	planeWall := map[int32]int64{}
	for _, k := range keys {
		b := a.profBins[k]
		kind := sim.EventKind(k[0])
		plane := int32(k[1])
		s.Bins = append(s.Bins, ProfileBinSummary{
			Kind: kind.String(), Plane: plane,
			Events: b[0], WallSec: float64(b[1]) / 1e9,
		})
		s.Events += b[0]
		totalWallNs += b[1]
		if kind.HostBoundary() {
			s.HostEvents += b[0]
			hostWallNs += b[1]
		} else if plane >= 0 {
			planeEv[plane] += b[0]
			planeWall[plane] += b[1]
		}
	}
	s.WallSec = float64(totalWallNs) / 1e9
	s.HostWallSec = float64(hostWallNs) / 1e9
	if s.Events > 0 {
		s.HostFrac = float64(s.HostEvents) / float64(s.Events)
	}

	planes := make([]int32, 0, len(planeEv))
	for p := range planeEv {
		planes = append(planes, p)
	}
	sort.Slice(planes, func(i, j int) bool { return planes[i] < planes[j] })
	var maxPlaneEv, maxPlaneWall int64
	for _, p := range planes {
		pp := ProfilePlane{Plane: p, Events: planeEv[p], WallSec: float64(planeWall[p]) / 1e9}
		if s.SimSec > 0 {
			pp.EventsPerSimSec = float64(planeEv[p]) / s.SimSec
		}
		s.Planes = append(s.Planes, pp)
		if planeEv[p] > maxPlaneEv {
			maxPlaneEv = planeEv[p]
		}
		if planeWall[p] > maxPlaneWall {
			maxPlaneWall = planeWall[p]
		}
	}

	if len(a.profSub) > 1 {
		s.SubShards = append([]int64(nil), a.profSub...)
		s.HostShards = len(a.profSub)
		s.SubShardImbalance = maxMean(s.SubShards)
	}
	if len(a.profPlaneShards) > 1 {
		s.PlaneShards = append([]int64(nil), a.profPlaneShards...)
		s.PlaneShardImbalance = maxMean(s.PlaneShards)
	}
	if len(a.profHosts) > 0 {
		hosts := make([]int64, 0, len(a.profHosts))
		for h := range a.profHosts {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		s.HostLoads = make([]HostLoad, 0, len(hosts))
		for _, h := range hosts {
			s.HostLoads = append(s.HostLoads, HostLoad{Host: h, Events: a.profHosts[h]})
		}
	}

	if n := len(planes); n > 0 && s.Events > 0 {
		// Serial residue per window: the whole host boundary on a classic
		// single host shard, only the busiest sub-shard when the boundary
		// is split across H concurrent sub-shards.
		serialEv := s.HostEvents
		if len(s.SubShards) > 1 {
			serialEv = 0
			for _, ev := range s.SubShards {
				if ev > serialEv {
					serialEv = ev
				}
			}
		}
		f := float64(serialEv) / float64(s.Events)
		s.SpeedupAmdahl = 1 / (f + (1-f)/float64(n))
		if denom := maxPlaneEv + serialEv; denom > 0 {
			s.SpeedupEventBound = float64(s.Events) / float64(denom)
		}
		if denom := maxPlaneWall + hostWallNs; denom > 0 {
			s.SpeedupWallBound = float64(totalWallNs) / float64(denom)
		}
		if s.SimSec > 0 && s.LookaheadPs > 0 {
			inPlane := s.Events - s.HostEvents
			perPlaneRate := float64(inPlane) / float64(n) / s.SimSec
			s.EventsPerLookahead = perPlaneRate * float64(s.LookaheadPs) / 1e12
		}
	}
	return s
}

// AttributionString renders the full attribution tables — the payload of
// `pnetstat attribution`. Purely simulated-time quantities: the output
// is byte-identical for a fixed seed at any worker count.
func (s RunSummary) AttributionString() string {
	a := s.Attribution
	if a == nil {
		return "no attribution data (run with spans enabled, e.g. pnetbench -spans)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "attribution: %d flows, %s attributed", a.Flows, secs(a.TotalSec))
	if s.FCT.Count > 0 {
		fmt.Fprintf(&b, " (fct p50=%s p999=%s)", secs(s.FCT.P50), secs(s.FCT.P999))
	}
	b.WriteByte('\n')
	writeCells(&b, "overall", a.Overall)
	if len(a.Tail) > 0 {
		fmt.Fprintf(&b, "tail: %d flows with fct >= %s (p99.9)\n", a.TailFlows, secs(a.TailThresholdSec))
		writeCells(&b, "tail", a.Tail)
	}
	return b.String()
}

func writeCells(b *strings.Builder, label string, cells []AttributionCell) {
	for _, c := range cells {
		plane := "    -"
		if c.Plane >= 0 {
			plane = fmt.Sprintf("%5d", c.Plane)
		}
		fmt.Fprintf(b, "  %-8s %-10s plane %s  %12s  %6.2f%%\n",
			label, c.Component, plane, secs(c.Seconds), c.Share*100)
	}
}

// ProfileString renders the event-loop profile and PDES sizing verdict —
// the payload of `pnetstat profile`. Event counts and the *_event bounds
// are deterministic; wall times are this machine's.
func (s RunSummary) ProfileString() string {
	p := s.Profile
	if p == nil {
		return "no profile data (run with the flight recorder enabled, e.g. pnetbench -spans)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d events across %d engine(s), %.3fs wall\n",
		p.Events, p.Engines, p.WallSec)
	for _, bin := range p.Bins {
		plane := "    -"
		if bin.Plane >= 0 {
			plane = fmt.Sprintf("%5d", bin.Plane)
		}
		fmt.Fprintf(&b, "  %-8s plane %s  %12d events  %10.4fs wall\n",
			bin.Kind, plane, bin.Events, bin.WallSec)
	}
	for _, pl := range p.Planes {
		fmt.Fprintf(&b, "plane %d: %d in-plane events", pl.Plane, pl.Events)
		if pl.EventsPerSimSec > 0 {
			fmt.Fprintf(&b, " (%.4g events per sim-second)", pl.EventsPerSimSec)
		}
		b.WriteByte('\n')
	}
	for i, ev := range p.SubShards {
		fmt.Fprintf(&b, "host sub-shard %d: %d events\n", i, ev)
	}
	if p.SubShardImbalance > 0 {
		fmt.Fprintf(&b, "host sub-shard imbalance: max/mean %.2f\n", p.SubShardImbalance)
	}
	for i, ev := range p.PlaneShards {
		fmt.Fprintf(&b, "plane shard %d: %d events\n", i, ev)
	}
	if p.PlaneShardImbalance > 0 {
		fmt.Fprintf(&b, "plane shard imbalance: max/mean %.2f\n", p.PlaneShardImbalance)
	}
	if len(p.HostLoads) > 0 {
		fmt.Fprintf(&b, "host loads: %d hosts measured (-emit-placement exports them)\n", len(p.HostLoads))
	}
	fmt.Fprintf(&b, "host boundary: %d events (%.2f%% of all), %.3fs wall",
		p.HostEvents, p.HostFrac*100, p.HostWallSec)
	if p.HostShards > 1 {
		fmt.Fprintf(&b, " (split across %d sub-shards)", p.HostShards)
	}
	b.WriteByte('\n')
	if p.LookaheadPs > 0 {
		fmt.Fprintf(&b, "lookahead: %s", sim.Time(p.LookaheadPs))
		if p.EventsPerLookahead > 0 {
			fmt.Fprintf(&b, " (%.4g events per plane per window)", p.EventsPerLookahead)
		}
		b.WriteByte('\n')
	}
	if p.SpeedupEventBound > 0 {
		fmt.Fprintf(&b, "pdes speedup bound: %.2fx critical-path (events), %.2fx amdahl",
			p.SpeedupEventBound, p.SpeedupAmdahl)
		if p.SpeedupWallBound > 0 {
			fmt.Fprintf(&b, ", %.2fx critical-path (wall, this host)", p.SpeedupWallBound)
		}
		b.WriteByte('\n')
	}
	if p.PoolLimit > 0 {
		fmt.Fprintf(&b, "worker pool: limit %d, peak %d, %d tasks\n",
			p.PoolLimit, p.PoolPeak, p.PoolTasks)
	}
	return b.String()
}
