package report

import (
	"fmt"
	"strings"
)

// DefaultRelThreshold is the relative worsening beyond which a gated
// metric fails the diff: 10%, loose enough to absorb the log-bucket
// quantile error while catching real regressions.
const DefaultRelThreshold = 0.10

// Thresholds configures Diff. Zero value = defaults.
type Thresholds struct {
	// Rel is the allowed relative worsening for gated metrics; zero
	// selects DefaultRelThreshold.
	Rel float64
	// PerMetric overrides Rel for individual metric names.
	PerMetric map[string]float64
	// GateWall also gates the wall-clock metrics (solver/engine wall
	// time, events/sec, go-bench ns/op). Off by default: the simulation
	// metrics are deterministic for a fixed seed, wall time is not, and
	// a gate that fails on a noisy CI machine teaches people to ignore
	// it. Turn this on for like-for-like comparisons on one machine.
	GateWall bool
}

func (t Thresholds) threshold(metric string) float64 {
	if v, ok := t.PerMetric[metric]; ok {
		return v
	}
	if t.Rel > 0 {
		return t.Rel
	}
	return DefaultRelThreshold
}

// Delta is one metric's change from base to cur. Rel is signed so that
// positive always means "worse" regardless of the metric's direction
// (FCT up = worse, goodput down = worse).
type Delta struct {
	Metric   string  `json:"metric"`
	Base     float64 `json:"base"`
	Cur      float64 `json:"cur"`
	Rel      float64 `json:"rel"` // + = worse, - = better
	Gated    bool    `json:"gated"`
	Exceeded bool    `json:"exceeded"`
}

// DiffReport is the verdict of comparing two runs. Added lists metrics
// present only in the current run — a baseline from before the metric
// existed says nothing about regression, but silently dropping the
// comparison hid that the run now measures more; added metrics never
// fail the gate.
type DiffReport struct {
	Deltas []Delta `json:"deltas"`
	Added  []Delta `json:"added,omitempty"`
	Pass   bool    `json:"pass"`
}

// Regressions returns the gated deltas that exceeded their threshold.
func (d DiffReport) Regressions() []Delta {
	var out []Delta
	for _, dl := range d.Deltas {
		if dl.Exceeded {
			out = append(out, dl)
		}
	}
	return out
}

// String renders the diff as an aligned table, regressions marked and
// current-run-only metrics prefixed with '+'.
func (d DiffReport) String() string {
	var b strings.Builder
	for _, dl := range d.Deltas {
		mark := " "
		if dl.Exceeded {
			mark = "✗"
		} else if !dl.Gated {
			mark = "·"
		}
		fmt.Fprintf(&b, "%s %-28s %14.6g -> %14.6g  %+7.2f%%\n", mark, dl.Metric, dl.Base, dl.Cur, dl.Rel*100)
	}
	for _, dl := range d.Added {
		fmt.Fprintf(&b, "+ %-28s %14s -> %14.6g  (new in current run)\n", dl.Metric, "-", dl.Cur)
	}
	if d.Pass {
		b.WriteString("PASS\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d gated metric(s) regressed\n", len(d.Regressions()))
	}
	return b.String()
}

// direction encodes which way a metric worsens.
type direction int

const (
	higherWorse direction = iota
	lowerWorse
)

// Diff compares cur against base metric by metric. Deterministic
// simulation metrics (FCT percentiles, goodput, plane imbalance, drops,
// solver phases/iterations, engine event counts) are gated: worsening
// beyond the threshold fails the report. Wall-clock metrics ride along
// informationally unless t.GateWall is set. Metrics absent from either
// run (zero observations) are skipped rather than compared against zero.
func Diff(base, cur RunSummary, t Thresholds) DiffReport {
	var d DiffReport
	add := func(name string, b, c float64, dir direction, gated bool) {
		if b == 0 && c == 0 {
			return
		}
		rel := relWorsening(b, c, dir)
		dl := Delta{Metric: name, Base: b, Cur: c, Rel: rel, Gated: gated}
		dl.Exceeded = gated && rel > t.threshold(name)
		d.Deltas = append(d.Deltas, dl)
	}
	added := func(name string, c float64) {
		d.Added = append(d.Added, Delta{Metric: name, Cur: c})
	}

	switch {
	case base.FCT.Count > 0 && cur.FCT.Count > 0:
		add("fct_s.p50", base.FCT.P50, cur.FCT.P50, higherWorse, true)
		add("fct_s.p99", base.FCT.P99, cur.FCT.P99, higherWorse, true)
		add("fct_s.p999", base.FCT.P999, cur.FCT.P999, higherWorse, true)
		add("fct_s.mean", base.FCT.Mean, cur.FCT.Mean, higherWorse, true)
	case cur.FCT.Count > 0:
		added("fct_s.p50", cur.FCT.P50)
		added("fct_s.p99", cur.FCT.P99)
		added("fct_s.p999", cur.FCT.P999)
		added("fct_s.mean", cur.FCT.Mean)
	}
	add("flows", float64(base.Flows), float64(cur.Flows), lowerWorse, true)
	add("flow_bytes", float64(base.FlowBytes), float64(cur.FlowBytes), lowerWorse, true)
	add("retransmits", float64(base.Retransmits), float64(cur.Retransmits), higherWorse, true)
	add("goodput_bps", base.GoodputBps, cur.GoodputBps, lowerWorse, true)
	add("plane_imbalance", base.PlaneImbalance, cur.PlaneImbalance, higherWorse, true)
	add("drops", float64(base.Drops), float64(cur.Drops), higherWorse, true)
	switch {
	case base.LinkUtil.Count > 0 && cur.LinkUtil.Count > 0:
		add("link_util.p99", base.LinkUtil.P99, cur.LinkUtil.P99, higherWorse, false)
		add("queue_bytes.p99", base.QueueBytes.P99, cur.QueueBytes.P99, higherWorse, false)
	case cur.LinkUtil.Count > 0:
		added("link_util.p99", cur.LinkUtil.P99)
		added("queue_bytes.p99", cur.QueueBytes.P99)
	}
	add("solver.phases", float64(base.Solver.Phases), float64(cur.Solver.Phases), higherWorse, true)
	add("solver.iterations", float64(base.Solver.Iterations), float64(cur.Solver.Iterations), higherWorse, true)
	add("solver.wall_s", base.Solver.WallSec, cur.Solver.WallSec, higherWorse, t.GateWall)
	add("engine.events", float64(base.Engine.Events), float64(cur.Engine.Events), higherWorse, true)
	add("engine.wall_s", base.Engine.WallSec, cur.Engine.WallSec, higherWorse, t.GateWall)
	add("engine.events_per_sec", base.Engine.EventsPerSec, cur.Engine.EventsPerSec, lowerWorse, t.GateWall)

	// Attribution shares compare only when both runs recorded spans. The
	// stall shares are gated: a change that shifts FCT composition toward
	// dead protocol time (more RTO stalls, more repath gaps) is a
	// regression even when the FCT percentiles still squeak under their
	// thresholds. Shares are in [0,1], so gate on absolute movement via
	// the same relative rule (base==0 → any appearance trips it, which is
	// exactly right for stall time).
	switch {
	case base.Attribution != nil && cur.Attribution != nil:
		ba, ca := base.Attribution, cur.Attribution
		add("attribution.rto_stall.share", ba.ComponentShare("rto_stall"), ca.ComponentShare("rto_stall"), higherWorse, true)
		add("attribution.repath_gap.share", ba.ComponentShare("repath_gap"), ca.ComponentShare("repath_gap"), higherWorse, true)
		add("attribution.queue.share", ba.ComponentShare("queue"), ca.ComponentShare("queue"), higherWorse, false)
		add("attribution.host_wait.share", ba.ComponentShare("host_wait"), ca.ComponentShare("host_wait"), higherWorse, false)
	case cur.Attribution != nil:
		for _, c := range cur.Attribution.Overall {
			added(fmt.Sprintf("attribution.%s.plane%d.share", c.Component, c.Plane), c.Share)
		}
	}

	// The event-loop profile is informational (its wall side is machine-
	// local, its count side already gated via engine.events), but a
	// profile appearing for the first time is worth surfacing.
	if base.Profile == nil && cur.Profile != nil {
		added("profile.events", float64(cur.Profile.Events))
		added("profile.host_frac", cur.Profile.HostFrac)
		added("profile.speedup_event_bound", cur.Profile.SpeedupEventBound)
	}
	// Occupancy imbalance gates only when the baseline measured it too
	// (base > 0): older baselines carry no imbalance, and the base==0
	// "appeared from nowhere" rule would fail every first placed run.
	if base.Profile != nil && cur.Profile != nil {
		bp, cp := base.Profile, cur.Profile
		add("profile.sub_shard_imbalance", bp.SubShardImbalance, cp.SubShardImbalance,
			higherWorse, bp.SubShardImbalance > 0)
		add("profile.plane_shard_imbalance", bp.PlaneShardImbalance, cp.PlaneShardImbalance,
			higherWorse, bp.PlaneShardImbalance > 0)
	}

	// Fault metrics compare only when both runs exercised faults — a
	// fault-free baseline says nothing about failover latency, and the
	// base==0 "appeared from nowhere" rule would fail every first chaos
	// run against an old baseline.
	if base.Faults == nil && cur.Faults != nil {
		added("faults.blackholed", float64(cur.Faults.Blackholed))
		if cur.Faults.DetectLatency.Count > 0 {
			added("faults.detect_latency_s.p50", cur.Faults.DetectLatency.P50)
		}
		if cur.Faults.FailoverLatency.Count > 0 {
			added("faults.failover_latency_s.p50", cur.Faults.FailoverLatency.P50)
		}
		if cur.Faults.Recovery.Count > 0 {
			added("faults.recovery_s.p50", cur.Faults.Recovery.P50)
		}
	}
	if base.Faults != nil && cur.Faults != nil {
		bf, cf := base.Faults, cur.Faults
		add("faults.blackholed", float64(bf.Blackholed), float64(cf.Blackholed), higherWorse, false)
		if bf.DetectLatency.Count > 0 && cf.DetectLatency.Count > 0 {
			add("faults.detect_latency_s.p50", bf.DetectLatency.P50, cf.DetectLatency.P50, higherWorse, true)
			add("faults.detect_latency_s.max", bf.DetectLatency.Max, cf.DetectLatency.Max, higherWorse, true)
		}
		if bf.FailoverLatency.Count > 0 && cf.FailoverLatency.Count > 0 {
			add("faults.failover_latency_s.p50", bf.FailoverLatency.P50, cf.FailoverLatency.P50, higherWorse, true)
		}
		if bf.Recovery.Count > 0 && cf.Recovery.Count > 0 {
			add("faults.recovery_s.p50", bf.Recovery.P50, cf.Recovery.P50, higherWorse, true)
		}
		if bf.DipFrac.Count > 0 && cf.DipFrac.Count > 0 {
			add("faults.dip_frac.mean", bf.DipFrac.Mean, cf.DipFrac.Mean, higherWorse, false)
		}
	}

	// Determinism fingerprints compare only when both runs carry them (a
	// fingerprint-free baseline pins nothing). Hashes either match or
	// they don't: a mismatch is rendered as a 0→1 gated delta, which
	// exceeds every sane threshold — exactly the semantics we want for
	// "these runs did not execute the same events".
	if base.Fingerprint != nil && cur.Fingerprint != nil {
		bf, cf := base.Fingerprint, cur.Fingerprint
		mismatch := 0.0
		if bf.Global != cf.Global {
			mismatch = 1
		}
		add("fingerprint.global.mismatch", 0, mismatch, higherWorse, true)
		add("fingerprint.events", float64(bf.Events), float64(cf.Events), higherWorse, true)
	} else if cur.Fingerprint != nil {
		added("fingerprint.events", float64(cur.Fingerprint.Events))
	}

	// Go benchmarks, matched by name; wall-clock, so gated only with
	// GateWall. Allocations are deterministic and always gated.
	curBench := map[string]GoBench{}
	for _, g := range cur.GoBench {
		curBench[g.Name] = g
	}
	baseBench := map[string]bool{}
	for _, g := range base.GoBench {
		baseBench[g.Name] = true
		c, ok := curBench[g.Name]
		if !ok {
			continue
		}
		add("gobench."+g.Name+".ns_per_op", g.NsPerOp, c.NsPerOp, higherWorse, t.GateWall)
		add("gobench."+g.Name+".allocs_per_op", g.AllocsPerOp, c.AllocsPerOp, higherWorse, true)
	}
	for _, g := range cur.GoBench {
		if !baseBench[g.Name] {
			added("gobench."+g.Name+".ns_per_op", g.NsPerOp)
		}
	}

	d.Pass = len(d.Regressions()) == 0
	return d
}

// relWorsening returns the signed relative change in the "worse"
// direction: +0.25 means 25% worse, -0.10 means 10% better. A metric
// appearing out of nowhere (base 0, cur > 0, higher = worse) counts as
// 100% worse so it trips any sane threshold.
func relWorsening(base, cur float64, dir direction) float64 {
	delta := cur - base
	if dir == lowerWorse {
		delta = -delta
	}
	if base == 0 {
		if delta > 0 {
			return 1
		}
		if delta < 0 {
			return -1
		}
		return 0
	}
	return delta / abs(base)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
