package report

import (
	"encoding/json"
	"math"
	"testing"

	"pnet/internal/obs"
)

// traceStream builds a small synthetic stream covering every record
// shape the exporter consumes: span-carrying flows, plane/engine
// samples, faults, packets, and profile bins.
func traceStream() *Stream {
	return &Stream{
		Flows: []obs.FlowRecord{
			{ID: 1, TPs: 5_000_000, Transport: "tcp", Src: 0, Dst: 1, Bytes: 30000, FCT: 3e-6,
				Planes: []int32{0, 1},
				Spans: []obs.SpanShare{
					{Component: "serialize", Plane: 0, Ps: 1_000_000},
					{Component: "queue", Plane: 1, Ps: 2_000_000},
				}},
			{ID: 2, TPs: 9_000_000, Transport: "tcp", Src: 1, Dst: 0, Bytes: 1500, FCT: 2e-6},
			{ID: 3, Transport: "tcp", Bytes: 10}, // no TPs: old stream, skipped
		},
		Planes: []obs.PlaneRecord{
			{Net: 0, TPs: 1_000_000, Plane: 0, TxBytes: 1000},
			{Net: 0, TPs: 2_000_000, Plane: 1, TxBytes: 500},
		},
		Engines: []obs.EngineRecord{{Net: 0, TPs: 1_000_000, Events: 10, HeapLen: 3}},
		Faults: []obs.FaultRecord{
			{Net: 0, TPs: 4_000_000, Event: "inject", Target: "link:2", Plane: 1},
			{Net: 0, TPs: 6_000_000, Event: "detect", Target: "plane:1", Plane: -1, LatencySec: 2e-6},
		},
		Packets: []obs.PacketRecord{
			{Ev: "enqueue", TPs: 100_000, Link: 2, Plane: 1, Flow: 1, Seq: 0, Size: 1500},
		},
		Profiles: []obs.ProfileRecord{
			{Net: 0, Kind: "hop", Plane: 0, Events: 42, WallNano: 10, SimPs: 9_000_000},
			{Net: 0, Kind: "timer", Plane: -1, Events: 7, WallNano: 5, SimPs: 9_000_000},
		},
	}
}

// TestExportTraceSchema validates the export against the Chrome Trace
// Event format: the wrapper object, the phase set this exporter emits,
// metadata naming, and non-negative microsecond timestamps.
func TestExportTraceSchema(t *testing.T) {
	tr, err := ExportTrace(traceStream())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Unit != "ns" && doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ns or ms", doc.Unit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]bool{"M": true, "X": true, "C": true, "i": true}
	sawPhase := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if !phases[ph] {
			t.Fatalf("event %d: phase %q outside the spec set M/X/C/i: %v", i, ph, ev)
		}
		sawPhase[ph] = true
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d: pid missing or not a number: %v", i, ev)
		}
		switch ph {
		case "M":
			name, _ := ev["name"].(string)
			if name != "process_name" && name != "thread_name" {
				t.Errorf("event %d: metadata name %q", i, name)
			}
			args, _ := ev["args"].(map[string]any)
			if _, ok := args["name"].(string); !ok {
				t.Errorf("event %d: metadata without args.name: %v", i, ev)
			}
		case "X":
			if ts := ev["ts"].(float64); ts < 0 {
				t.Errorf("event %d: negative ts %v", i, ts)
			}
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				t.Errorf("event %d: negative dur %v", i, dur)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "g" && s != "p" && s != "t" && s != "" {
				t.Errorf("event %d: instant scope %q", i, s)
			}
		}
	}
	for _, ph := range []string{"M", "X", "C", "i"} {
		if !sawPhase[ph] {
			t.Errorf("export exercised no %q events", ph)
		}
	}
}

// TestExportTraceFlows pins the flow mapping: span children partition
// the flow slice exactly, flows without spans fall back to the FCT, and
// flows without completion timestamps are skipped.
func TestExportTraceFlows(t *testing.T) {
	tr, err := ExportTrace(traceStream())
	if err != nil {
		t.Fatal(err)
	}
	var flow1 *TraceEvent
	var children []TraceEvent
	flowSlices := 0
	for i := range tr.TraceEvents {
		ev := tr.TraceEvents[i]
		if ev.Cat == "flow" {
			flowSlices++
			if ev.Tid == 1 {
				flow1 = &tr.TraceEvents[i]
			}
		}
		if ev.Cat == "span" && ev.Tid == 1 {
			children = append(children, ev)
		}
	}
	if flowSlices != 2 {
		t.Errorf("flow slices = %d, want 2 (flow 3 lacks t_ps)", flowSlices)
	}
	if flow1 == nil {
		t.Fatal("flow 1 slice missing")
	}
	// Flow 1: spans total 3e6 ps, completes at 5e6 ps → [2, 5] us.
	if flow1.Ts != 2 || flow1.Dur != 3 {
		t.Errorf("flow 1 interval = [%v, +%v]us, want [2, +3]", flow1.Ts, flow1.Dur)
	}
	if len(children) != 2 {
		t.Fatalf("flow 1 has %d span children, want 2", len(children))
	}
	var sum float64
	end := flow1.Ts
	for _, c := range children {
		if c.Ts < flow1.Ts-1e-9 || c.Ts+c.Dur > flow1.Ts+flow1.Dur+1e-9 {
			t.Errorf("span child [%v,+%v] outside flow [%v,+%v]", c.Ts, c.Dur, flow1.Ts, flow1.Dur)
		}
		if math.Abs(c.Ts-end) > 1e-9 {
			t.Errorf("span child at %v does not abut previous end %v", c.Ts, end)
		}
		end = c.Ts + c.Dur
		sum += c.Dur
	}
	if math.Abs(sum-flow1.Dur) > 1e-9 {
		t.Errorf("span children sum to %v us, flow dur %v", sum, flow1.Dur)
	}
}

func TestExportTraceEmpty(t *testing.T) {
	if _, err := ExportTrace(&Stream{}); err == nil {
		t.Error("empty stream: want error")
	}
}
