package route

import (
	"math/rand"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/topo"
)

func TestKSPPathsSeededDeterministic(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	cs := commoditiesAmong(tp.Hosts, [][2]int{{0, 15}, {3, 9}})
	a := KSPPathsSeeded(tp.G, cs, 8, 7)
	b := KSPPathsSeeded(tp.G, cs, 8, 7)
	for i := range cs {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("commodity %d: %d vs %d paths", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Fatalf("commodity %d path %d differs between runs", i, j)
			}
		}
	}
}

func TestKSPPathsSeededVariesPerCommodity(t *testing.T) {
	// Two commodities between the SAME endpoints should get differently
	// ordered tie groups — the decorrelation that fixes deterministic
	// Yen's collision pile-ups.
	set := topo.FatTreeSet(8, 1, 100)
	tp := set.SerialLow
	cs := []Commodity{
		{Src: tp.Hosts[0], Dst: tp.Hosts[127], Demand: 1},
		{Src: tp.Hosts[0], Dst: tp.Hosts[127], Demand: 1},
		{Src: tp.Hosts[0], Dst: tp.Hosts[127], Demand: 1},
	}
	paths := KSPPathsSeeded(tp.G, cs, 4, 3)
	distinct := false
	for i := 1; i < len(paths); i++ {
		for j := range paths[i] {
			if !paths[i][j].Equal(paths[0][j]) {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Error("seeded KSP produced identical path orders for all commodities")
	}
}

func TestKSPPathsSeededStillSorted(t *testing.T) {
	set := topo.JellyfishSet(12, 4, 2, 2, 100, 5)
	tp := set.ParallelHetero
	cs := commoditiesAmong(tp.Hosts, [][2]int{{0, 23}})
	paths := KSPPathsSeeded(tp.G, cs, 10, 11)[0]
	for i := 1; i < len(paths); i++ {
		if paths[i].Len() < paths[i-1].Len() {
			t.Fatalf("seeded KSP broke length order at %d", i)
		}
	}
	for _, p := range paths {
		if !p.Valid(tp.G) {
			t.Fatal("invalid seeded path")
		}
	}
}

func TestShuffleTiesPreservesGroups(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	cs := commoditiesAmong(tp.Hosts, [][2]int{{0, 15}})
	paths := KSPPaths(tp.G, cs, 8)[0]
	lens := make([]int, len(paths))
	for i, p := range paths {
		lens[i] = p.Len()
	}
	ShuffleTies(paths, rand.New(rand.NewSource(2)))
	for i, p := range paths {
		if p.Len() != lens[i] {
			t.Fatalf("shuffle moved a path across length groups at %d", i)
		}
	}
	// All paths still present (by key set).
	seen := map[string]bool{}
	for _, p := range paths {
		seen[pathKey(p)] = true
	}
	if len(seen) != len(paths) {
		t.Error("shuffle lost or duplicated paths")
	}
}

func pathKey(p graph.Path) string {
	b := make([]byte, 0, 4*len(p.Links))
	for _, l := range p.Links {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}
