// Package route computes the path selections studied in the paper:
// per-flow ECMP (a single hash-pinned shortest path, possibly choosing a
// dataplane at the host) and K-shortest-paths (the bounded multipath sets
// fed to MPTCP). Both operate on a Topology's combined multi-plane graph,
// where plane disjointness guarantees every path stays within one plane.
package route

import (
	"math/rand"
	"sort"

	"pnet/internal/graph"
	"pnet/internal/par"
)

// Commodity is a traffic demand between two nodes.
type Commodity struct {
	Src, Dst graph.NodeID
	// Demand is in the same units as link capacity (Gb/s). The
	// max-concurrent-flow experiments use equal demands of 1 host
	// bandwidth unit.
	Demand float64
}

// ECMPPaths pins each commodity to a single path: at every hop the
// shortest-path DAG's equal-cost next hops are hashed on the flow identity,
// exactly as a switch ECMP pipeline (and, at the host, the hash across the
// dataplane uplinks) would do. Commodity i uses flow hash seed+i. The
// returned slice has one single-element path list per commodity; pairs
// with no path get an empty list.
func ECMPPaths(g *graph.Graph, cs []Commodity, seed uint64) [][]graph.Path {
	// Per-destination DAG builds are the expensive part and independent of
	// each other: fan them out, then walk commodities against the shared
	// read-only DAG map. Results are indexed by commodity, so worker count
	// never changes the output.
	var dsts []graph.NodeID
	seen := map[graph.NodeID]int{}
	for _, c := range cs {
		if _, ok := seen[c.Dst]; !ok {
			seen[c.Dst] = len(dsts)
			dsts = append(dsts, c.Dst)
		}
	}
	dags := par.Map(len(dsts), 0, func(i int) [][]graph.LinkID {
		return graph.ShortestDAG(g, dsts[i])
	})
	out := make([][]graph.Path, len(cs))
	par.Do(len(cs), 0, func(i int) {
		c := cs[i]
		dag := dags[seen[c.Dst]]
		if p, ok := graph.ECMPPath(g, dag, c.Src, c.Dst, seed+uint64(i)*0x9e3779b97f4a7c15); ok {
			out[i] = []graph.Path{p}
		}
	})
	return out
}

// KSPPaths computes up to k shortest paths per commodity across all
// dataplanes: Yen's algorithm runs within each plane, the per-plane lists
// are merged in increasing length, and equal-length paths interleave
// round-robin across planes. Interleaving matters for homogeneous P-Nets:
// all planes offer identical path lengths, and a K-subflow MPTCP
// connection should spread its subflows over planes rather than exhaust
// one plane's path diversity first.
func KSPPaths(g *graph.Graph, cs []Commodity, k int) [][]graph.Path {
	// KSPPaths is deterministic per (src,dst): commodity lists with
	// duplicate pairs (permutation workloads, repeated demands) would redo
	// Yen's algorithm per duplicate. Deduplicate first, run Yen once per
	// unique pair in parallel, then fan the shared result back out.
	masks := g.PlaneMasks()
	type pair struct{ src, dst graph.NodeID }
	var uniq []pair
	idx := map[pair]int{}
	for _, c := range cs {
		p := pair{c.Src, c.Dst}
		if _, ok := idx[p]; !ok {
			idx[p] = len(uniq)
			uniq = append(uniq, p)
		}
	}
	paths := par.Map(len(uniq), 0, func(i int) []graph.Path {
		return kspAcrossPlanes(g, masks, uniq[i].src, uniq[i].dst, k)
	})
	out := make([][]graph.Path, len(cs))
	for i, c := range cs {
		out[i] = paths[idx[pair{c.Src, c.Dst}]]
	}
	return out
}

func kspAcrossPlanes(g *graph.Graph, masks [][]bool, src, dst graph.NodeID, k int) []graph.Path {
	if len(masks) <= 1 {
		return graph.KShortestPaths(g, src, dst, k)
	}
	var all []graph.Path
	for _, mask := range masks {
		all = append(all, graph.KShortestPathsMasked(g, src, dst, k, mask)...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Len() < all[j].Len() })
	all = InterleavePlanes(g, all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// KSPPathsSeeded is KSPPaths with per-commodity randomized tie-breaking:
// within each group of equal-length candidate paths, ordering is shuffled
// by a commodity-specific RNG before plane interleaving. Deterministic
// Yen ordering makes every flow between nearby endpoints prefer the same
// low-numbered switches; production multipath routing (and the paper's
// simulator) decorrelates flows by hashing, which this reproduces.
// Commodity i derives its randomness from seed+i, so runs are
// reproducible.
func KSPPathsSeeded(g *graph.Graph, cs []Commodity, k int, seed int64) [][]graph.Path {
	masks := g.PlaneMasks()
	out := make([][]graph.Path, len(cs))
	par.Do(len(cs), 0, func(i int) {
		c := cs[i]
		out[i] = kspSeededOne(g, masks, c.Src, c.Dst, k, seed+int64(i)*0x9e3779b9)
	})
	return out
}

func kspSeededOne(g *graph.Graph, masks [][]bool, src, dst graph.NodeID, k int, seed int64) []graph.Path {
	// Overshoot so that equal-length tie groups are (mostly) fully
	// enumerated before sampling from them.
	overshoot := k + 8
	var all []graph.Path
	if len(masks) == 0 {
		all = graph.KShortestPaths(g, src, dst, overshoot)
	}
	for _, mask := range masks {
		all = append(all, graph.KShortestPathsMasked(g, src, dst, overshoot, mask)...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Len() < all[j].Len() })
	rng := rand.New(rand.NewSource(seed))
	ShuffleTies(all, rng)
	all = InterleavePlanes(g, all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// ShuffleTies randomly permutes paths within each run of equal lengths,
// preserving the overall by-length ordering. Paths must be sorted by
// length.
func ShuffleTies(paths []graph.Path, rng *rand.Rand) {
	for lo := 0; lo < len(paths); {
		hi := lo + 1
		for hi < len(paths) && paths[hi].Len() == paths[lo].Len() {
			hi++
		}
		group := paths[lo:hi]
		rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		lo = hi
	}
}

// InterleavePlanes stably reorders paths so that, within each group of
// equal-length paths, planes alternate (plane 0, 1, 2, ..., 0, 1, ...).
// Paths are assumed sorted by length, as returned by KShortestPaths.
func InterleavePlanes(g *graph.Graph, paths []graph.Path) []graph.Path {
	out := make([]graph.Path, 0, len(paths))
	for lo := 0; lo < len(paths); {
		hi := lo + 1
		for hi < len(paths) && paths[hi].Len() == paths[lo].Len() {
			hi++
		}
		out = append(out, interleaveGroup(g, paths[lo:hi])...)
		lo = hi
	}
	return out
}

func interleaveGroup(g *graph.Graph, group []graph.Path) []graph.Path {
	if len(group) <= 1 {
		return group
	}
	byPlane := map[int32][]graph.Path{}
	var planes []int32
	for _, p := range group {
		pl := p.Plane(g)
		if _, ok := byPlane[pl]; !ok {
			planes = append(planes, pl)
		}
		byPlane[pl] = append(byPlane[pl], p)
	}
	sort.Slice(planes, func(i, j int) bool { return planes[i] < planes[j] })
	out := make([]graph.Path, 0, len(group))
	for len(out) < len(group) {
		for _, pl := range planes {
			if ps := byPlane[pl]; len(ps) > 0 {
				out = append(out, ps[0])
				byPlane[pl] = ps[1:]
			}
		}
	}
	return out
}

// SinglePath returns one shortest path per commodity (the "low-latency"
// interface of §3.4): in a heterogeneous P-Net this naturally picks the
// plane with the fewest hops for each pair.
//
// The work is amortized by source: one full BFS tree on the CSR frozen
// view serves every commodity sharing a source, and the per-source trees
// fan out across cores. A BFS parent tree does not depend on where the
// search would have stopped, so each traced path is identical to the
// per-pair graph.ShortestPath result, at any worker count.
func SinglePath(g *graph.Graph, cs []Commodity) [][]graph.Path {
	fz := g.Frozen()
	var srcs []graph.NodeID
	idx := map[graph.NodeID]int{}
	members := map[graph.NodeID][]int{}
	for j, c := range cs {
		if _, ok := idx[c.Src]; !ok {
			idx[c.Src] = len(srcs)
			srcs = append(srcs, c.Src)
		}
		members[c.Src] = append(members[c.Src], j)
	}
	out := make([][]graph.Path, len(cs))
	par.Do(len(srcs), 0, func(i int) {
		s := graph.GetScratch()
		defer graph.PutScratch(s)
		src := srcs[i]
		fz.BFS(s, src, -1, nil, nil)
		for _, j := range members[src] {
			if d := cs[j].Dst; d != src && s.Reached(d) {
				out[j] = []graph.Path{fz.PathTo(s, src, d)}
			}
		}
	})
	return out
}

// PlaneSpread counts, for a path list, how many distinct planes it covers.
func PlaneSpread(g *graph.Graph, paths []graph.Path) int {
	seen := map[int32]bool{}
	for _, p := range paths {
		seen[p.Plane(g)] = true
	}
	return len(seen)
}
