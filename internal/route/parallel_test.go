package route

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/par"
	"pnet/internal/topo"
)

// The per-commodity fan-out in ECMPPaths/KSPPaths/KSPPathsSeeded and
// the (src,dst) memoization inside KSPPaths must never change results:
// serial and 8-wide runs have to agree path-for-path.

func equalPathSets(t *testing.T, what string, a, b [][]graph.Path) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d commodities", what, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: commodity %d has %d vs %d paths", what, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Errorf("%s: commodity %d path %d differs", what, i, j)
			}
		}
	}
}

func TestRoutingWorkerInvariant(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	// Repeated (src,dst) pairs on purpose: they hit the KSPPaths memo,
	// which must fan the shared result back to every duplicate.
	cs := commoditiesAmong(tp.Hosts, [][2]int{
		{0, 15}, {3, 12}, {5, 9}, {0, 15}, {3, 12}, {7, 8}, {0, 15},
	})

	run := func(workers int) (ecmp, ksp, seeded, single [][]graph.Path) {
		par.SetLimit(workers)
		defer par.SetLimit(0)
		ecmp = ECMPPaths(tp.G, cs, 7)
		ksp = KSPPaths(tp.G, cs, 8)
		seeded = KSPPathsSeeded(tp.G, cs, 8, 42)
		single = SinglePath(tp.G, cs)
		return
	}
	e1, k1, s1, p1 := run(1)
	e8, k8, s8, p8 := run(8)
	equalPathSets(t, "ECMPPaths", e1, e8)
	equalPathSets(t, "KSPPaths", k1, k8)
	equalPathSets(t, "KSPPathsSeeded", s1, s8)
	equalPathSets(t, "SinglePath", p1, p8)

	// The memo must hand duplicates the identical path set, and the
	// results must be real paths.
	equalPathSets(t, "memo duplicates", [][]graph.Path{k1[0], k1[1]}, [][]graph.Path{k1[3], k1[4]})
	for i, ps := range k1 {
		if len(ps) == 0 {
			t.Fatalf("KSP commodity %d found no paths", i)
		}
		for _, p := range ps {
			if !p.Valid(tp.G) {
				t.Fatalf("KSP commodity %d produced invalid path", i)
			}
		}
	}
}
