package route

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/topo"
)

func commoditiesAmong(hosts []graph.NodeID, pairs [][2]int) []Commodity {
	cs := make([]Commodity, len(pairs))
	for i, p := range pairs {
		cs[i] = Commodity{Src: hosts[p[0]], Dst: hosts[p[1]], Demand: 1}
	}
	return cs
}

func TestECMPPathsPinned(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	cs := commoditiesAmong(tp.Hosts, [][2]int{{0, 15}, {3, 12}, {5, 9}})
	a := ECMPPaths(tp.G, cs, 1)
	b := ECMPPaths(tp.G, cs, 1)
	for i := range cs {
		if len(a[i]) != 1 {
			t.Fatalf("commodity %d: %d paths, want 1", i, len(a[i]))
		}
		if !a[i][0].Equal(b[i][0]) {
			t.Errorf("commodity %d: ECMP not deterministic", i)
		}
		if !a[i][0].Valid(tp.G) {
			t.Errorf("commodity %d: invalid path", i)
		}
		if a[i][0].Src(tp.G) != cs[i].Src || a[i][0].Dst(tp.G) != cs[i].Dst {
			t.Errorf("commodity %d: wrong endpoints", i)
		}
	}
}

func TestECMPSpreadsOverPlanes(t *testing.T) {
	set := topo.FatTreeSet(4, 4, 100)
	tp := set.ParallelHomo
	// Many flows between the same pair should hash across all 4 planes.
	var cs []Commodity
	for i := 0; i < 64; i++ {
		cs = append(cs, Commodity{Src: tp.Hosts[0], Dst: tp.Hosts[15], Demand: 1})
	}
	paths := ECMPPaths(tp.G, cs, 99)
	planes := map[int32]bool{}
	for _, ps := range paths {
		planes[ps[0].Plane(tp.G)] = true
	}
	if len(planes) != 4 {
		t.Errorf("64 flows hashed onto %d planes, want 4", len(planes))
	}
}

func TestECMPUnreachable(t *testing.T) {
	g := graph.New(2)
	g.SetTransit(0, false)
	g.SetTransit(1, false)
	paths := ECMPPaths(g, []Commodity{{Src: 0, Dst: 1, Demand: 1}}, 0)
	if len(paths[0]) != 0 {
		t.Error("found path in disconnected graph")
	}
}

func TestKSPPathsCrossPlanes(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	cs := commoditiesAmong(tp.Hosts, [][2]int{{0, 15}})
	paths := KSPPaths(tp.G, cs, 8)[0]
	if len(paths) != 8 {
		t.Fatalf("got %d paths, want 8", len(paths))
	}
	for _, p := range paths {
		if !p.Valid(tp.G) {
			t.Fatalf("invalid path %v", p.Links)
		}
	}
	if PlaneSpread(tp.G, paths) != 2 {
		t.Errorf("8 KSP paths cover %d planes, want 2", PlaneSpread(tp.G, paths))
	}
	// Cross-pod shortest is 6 hops; all 8 paths should be 6 hops in a
	// 2-plane k=4 parallel fat tree (4 shortest per plane).
	for i, p := range paths {
		if p.Len() != 6 {
			t.Errorf("path %d length %d, want 6", i, p.Len())
		}
	}
}

func TestKSPInterleavingAlternatesPlanes(t *testing.T) {
	set := topo.FatTreeSet(4, 4, 100)
	tp := set.ParallelHomo
	cs := commoditiesAmong(tp.Hosts, [][2]int{{0, 15}})
	paths := KSPPaths(tp.G, cs, 8)[0]
	if len(paths) < 8 {
		t.Fatalf("got %d paths", len(paths))
	}
	// First 4 equal-length paths must land on 4 distinct planes.
	seen := map[int32]bool{}
	for _, p := range paths[:4] {
		seen[p.Plane(tp.G)] = true
	}
	if len(seen) != 4 {
		t.Errorf("first 4 paths cover %d planes, want 4", len(seen))
	}
}

func TestSinglePathPrefersShortPlane(t *testing.T) {
	// Heterogeneous two-plane network: plane 0 forces 2 switch hops
	// between the hosts' ToRs, plane 1 connects them directly.
	long := topo.PlaneSpec{
		Switches: 3,
		Edges:    [][2]int{{0, 1}, {1, 2}},
		HostPort: []int{0, 2},
		Kind:     "line",
	}
	short := topo.PlaneSpec{
		Switches: 2,
		Edges:    [][2]int{{0, 1}},
		HostPort: []int{0, 1},
		Kind:     "direct",
	}
	tp := topo.Assemble("hetero", 100, long, short)
	cs := []Commodity{{Src: tp.Hosts[0], Dst: tp.Hosts[1], Demand: 1}}
	paths := SinglePath(tp.G, cs)[0]
	if len(paths) != 1 {
		t.Fatal("no path")
	}
	if paths[0].Plane(tp.G) != 1 {
		t.Errorf("single path used plane %d, want 1 (shorter)", paths[0].Plane(tp.G))
	}
	if paths[0].Len() != 3 { // host-sw-sw-host
		t.Errorf("path length = %d, want 3", paths[0].Len())
	}
}

func TestInterleavePlanesPreservesLengthOrder(t *testing.T) {
	set := topo.JellyfishSet(12, 4, 2, 4, 100, 5)
	tp := set.ParallelHetero
	cs := commoditiesAmong(tp.Hosts, [][2]int{{0, 23}})
	paths := KSPPaths(tp.G, cs, 12)[0]
	for i := 1; i < len(paths); i++ {
		if paths[i].Len() < paths[i-1].Len() {
			t.Fatalf("interleaving broke length order at %d", i)
		}
	}
}

func TestPlaneSpread(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.SerialLow
	cs := commoditiesAmong(tp.Hosts, [][2]int{{0, 15}})
	paths := KSPPaths(tp.G, cs, 4)[0]
	if got := PlaneSpread(tp.G, paths); got != 1 {
		t.Errorf("serial network plane spread = %d, want 1", got)
	}
}
