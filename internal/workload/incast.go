package workload

import (
	"fmt"
	"math/rand"

	"pnet/internal/sim"
	"pnet/internal/tcp"
)

// IncastConfig describes the many-to-one pattern of §6.5: fanIn senders
// each ship blockBytes to one receiver simultaneously — the classic
// partition/aggregate burst that overflows the receiver's last-hop queue.
// P-Net spreads the fan-in over its planes (each sender hashes or KSPs
// onto a plane), multiplying the last-hop buffering and drain rate.
type IncastConfig struct {
	// FanIn is the number of simultaneous senders.
	FanIn int
	// BlockBytes is each sender's response size.
	BlockBytes int64
	// Rounds repeats the incast (fresh random senders each round).
	Rounds int
	// Sel routes the responses.
	Sel  Selection
	Seed int64
	// Deadline bounds the simulation; zero selects 60 s.
	Deadline sim.Time
}

func (c IncastConfig) deadline() sim.Time {
	if c.Deadline == 0 {
		return 60 * sim.Second
	}
	return c.Deadline
}

// IncastResult reports per-round incast completion times (time until the
// slowest response arrives) and loss totals.
type IncastResult struct {
	// CompletionTimes has one entry per round, in seconds.
	CompletionTimes []float64
	// Drops is the total packet loss across the run.
	Drops int64
	// Retransmits sums transport retransmissions.
	Retransmits int64
}

// RunIncast executes the workload: each round picks a random receiver and
// FanIn random senders, starts all responses at once, and waits for the
// slowest.
func RunIncast(d *Driver, cfg IncastConfig) (IncastResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	hosts := d.PNet.Topo.Hosts
	if cfg.FanIn >= len(hosts) {
		return IncastResult{}, fmt.Errorf("workload: fan-in %d >= hosts %d", cfg.FanIn, len(hosts))
	}
	var res IncastResult

	var startRound func(round int)
	startRound = func(round int) {
		if round >= cfg.Rounds {
			return
		}
		perm := rng.Perm(len(hosts))
		receiver := hosts[perm[0]]
		senders := perm[1 : 1+cfg.FanIn]
		t0 := d.Eng.Now()
		remaining := cfg.FanIn
		for _, s := range senders {
			_, err := d.StartFlow(hosts[s], receiver, cfg.BlockBytes, cfg.Sel, nil,
				func(f *tcp.Flow) {
					res.Retransmits += f.Retransmits
					remaining--
					if remaining == 0 {
						res.CompletionTimes = append(res.CompletionTimes, (d.Eng.Now() - t0).Seconds())
						startRound(round + 1)
					}
				})
			if err != nil {
				panic(err)
			}
		}
	}
	startRound(0)
	deadline := cfg.deadline()
	for len(res.CompletionTimes) < cfg.Rounds && d.Eng.Now() < deadline {
		if !d.Step() {
			break
		}
	}
	res.Drops = d.Net.TotalDrops()
	if len(res.CompletionTimes) < cfg.Rounds {
		return res, fmt.Errorf("workload: %d of %d incast rounds completed",
			len(res.CompletionTimes), cfg.Rounds)
	}
	return res, nil
}
