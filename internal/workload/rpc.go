package workload

import (
	"fmt"
	"math/rand"

	"pnet/internal/sim"
	"pnet/internal/tcp"
)

// RPCConfig describes the ping-pong RPC workload of §5.2.1: every host
// runs closed request/response loops against random servers and measures
// end-to-end request completion time (request sent → response fully
// received back at the client).
type RPCConfig struct {
	// ReqBytes and RespBytes size the two directions (the paper uses a
	// 1500 B request with an equal response for Figure 10, and 100 kB
	// requests for the concurrency sweep of Figure 11).
	ReqBytes, RespBytes int64
	// Rounds is the number of request/response cycles per loop.
	Rounds int
	// LoopsPerHost is the number of concurrent loops each host runs
	// (Figure 11 sweeps 1..10).
	LoopsPerHost int
	// Sel routes both request and response.
	Sel Selection
	// Seed drives destination sampling.
	Seed int64
	// Deadline bounds the simulation; zero selects 30 s.
	Deadline sim.Time
}

func (c RPCConfig) deadline() sim.Time {
	if c.Deadline == 0 {
		return 30 * sim.Second
	}
	return c.Deadline
}

// RunRPC executes the workload and returns one completion time per
// request, in seconds.
func RunRPC(d *Driver, cfg RPCConfig) ([]float64, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	hosts := d.PNet.Topo.Hosts
	n := len(hosts)
	var samples []float64
	expected := int64(n * cfg.LoopsPerHost * cfg.Rounds)

	// One closed loop: request to a random server; the server's receipt
	// triggers the response; the client's receipt records a sample and
	// starts the next round.
	var startRound func(client int, round int)
	startRound = func(client, round int) {
		if round >= cfg.Rounds {
			return
		}
		server := rng.Intn(n - 1)
		if server >= client {
			server++
		}
		t0 := d.Eng.Now()
		_, err := d.StartFlow(hosts[client], hosts[server], cfg.ReqBytes, cfg.Sel,
			func(*tcp.Flow) {
				// Server received the request: send the response.
				_, err := d.StartFlow(hosts[server], hosts[client], cfg.RespBytes, cfg.Sel,
					func(*tcp.Flow) {
						samples = append(samples, (d.Eng.Now() - t0).Seconds())
						startRound(client, round+1)
					}, nil)
				if err != nil {
					panic(err)
				}
			}, nil)
		if err != nil {
			panic(err)
		}
	}

	for h := 0; h < n; h++ {
		for l := 0; l < cfg.LoopsPerHost; l++ {
			startRound(h, 0)
		}
	}
	// Step rather than run to the deadline: background workloads (e.g.
	// an isolation experiment's bulk tenant) may generate events forever.
	deadline := cfg.deadline()
	for int64(len(samples)) < expected && d.Eng.Now() < deadline {
		if !d.Step() {
			break
		}
	}
	if int64(len(samples)) < expected {
		return samples, fmt.Errorf("workload: %d of %d RPCs completed (drops=%d)",
			len(samples), expected, d.Net.TotalDrops())
	}
	return samples, nil
}
