package workload

import (
	"reflect"
	"testing"

	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

// The step-driven workloads (RPC loops, shuffle stages, incast rounds,
// trace replay) interleave an exit check between single events, so they
// drive the run through Driver.Step rather than RunUntil. Under sharding
// that must route through the ShardSet's serialized step — stepping only
// the host engine would stall every packet on a plane shard's heap — and
// the samples must come out identical to the serial engine's.

// runRPCAt runs the Figure 10 ping-pong workload on a fresh driver with
// the given plane-shard count (0 = serial) and returns its samples.
func runRPCAt(t *testing.T, shards int) []float64 {
	t.Helper()
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := NewDriver(set.ParallelHomo, sim.Config{}, tcp.Config{})
	if shards > 1 {
		d.Shard(shards, 2, 0)
		defer d.Close()
	}
	samples, err := RunRPC(d, RPCConfig{
		ReqBytes: 1500, RespBytes: 1500,
		Rounds: 3, LoopsPerHost: 1,
		Sel:  Selection{Policy: ECMP},
		Seed: 7,
	})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return samples
}

func TestRPCShardedMatchesSerial(t *testing.T) {
	serial := runRPCAt(t, 0)
	if len(serial) == 0 {
		t.Fatal("serial run produced no samples")
	}
	for _, shards := range []int{2, 4} {
		sharded := runRPCAt(t, shards)
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("shards=%d: samples diverge from serial (%d vs %d)",
				shards, len(sharded), len(serial))
		}
	}
}

func TestShuffleShardedMatchesSerial(t *testing.T) {
	run := func(shards int) StageTimes {
		set := topo.ScaledJellyfish(8, 2, 100, 3)
		d := NewDriver(set.ParallelHomo, sim.Config{}, tcp.Config{})
		if shards > 1 {
			d.Shard(shards, 2, 0)
			defer d.Close()
		}
		times, err := RunShuffle(d, ShuffleConfig{
			Mappers: 4, Reducers: 4,
			TotalBytes: 8 << 20, BlockBytes: 2 << 20, Concurrency: 2,
			Sel:  Selection{Policy: ECMP},
			Seed: 5,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return times
	}
	serial := run(0)
	if !reflect.DeepEqual(serial, run(4)) {
		t.Error("shards=4: shuffle stage times diverge from serial")
	}
}
