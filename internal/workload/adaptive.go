package workload

import (
	"fmt"

	"pnet/internal/graph"
	"pnet/internal/tcp"
)

// Adaptive path selection in the spirit of DARD [Wu & Yang, ICDCS 2012],
// which §3.4 of the paper cites as an end-host routing solution that
// P-Nets can run per dataplane: each new flow inspects the load of its
// candidate paths and takes the least-loaded one, instead of hashing
// blindly. The load signal here is the simulator's per-link transmitted
// bytes since the selector's last decay — an end-host-observable proxy
// for path utilization.

// AdaptiveSelector picks, per flow, the candidate path whose most-loaded
// link has carried the fewest bytes recently. It decays its view
// periodically so old load does not pin decisions forever.
type AdaptiveSelector struct {
	d *Driver
	// K is the candidate set size (cross-plane KSP; default 8).
	K int

	baseline []int64 // per-link TxBytes at last Decay
}

// NewAdaptiveSelector builds a selector over the driver's network.
func NewAdaptiveSelector(d *Driver, k int) *AdaptiveSelector {
	if k <= 0 {
		k = 8
	}
	return &AdaptiveSelector{
		d:        d,
		K:        k,
		baseline: make([]int64, d.PNet.Topo.G.NumLinks()),
	}
}

// Decay resets the load view: subsequent decisions consider only traffic
// transmitted after this call. Callers typically decay on a timer coarser
// than a flow lifetime.
func (a *AdaptiveSelector) Decay() {
	g := a.d.PNet.Topo.G
	for i := 0; i < g.NumLinks(); i++ {
		a.baseline[i] = a.d.Net.Stats(graph.LinkID(i)).TxBytes
	}
}

// load returns the bytes a link has carried since the last Decay.
func (a *AdaptiveSelector) load(id graph.LinkID) int64 {
	return a.d.Net.Stats(id).TxBytes - a.baseline[id]
}

// Pick returns the candidate path minimizing the maximum per-link load.
// Ties break toward the shorter, then first, candidate.
func (a *AdaptiveSelector) Pick(src, dst graph.NodeID) (graph.Path, error) {
	candidates := a.d.PNet.HighThroughputPaths(src, dst, a.K)
	if len(candidates) == 0 {
		return graph.Path{}, fmt.Errorf("workload: no candidate paths %d->%d", src, dst)
	}
	best := -1
	var bestLoad int64
	for i, p := range candidates {
		var worst int64
		for _, l := range p.Links {
			if ld := a.load(l); ld > worst {
				worst = ld
			}
		}
		if best < 0 || worst < bestLoad ||
			(worst == bestLoad && p.Len() < candidates[best].Len()) {
			best = i
			bestLoad = worst
		}
	}
	return candidates[best], nil
}

// StartFlowAdaptive starts a single-path flow on the adaptively chosen
// path; callbacks as in Driver.StartFlow.
func (a *AdaptiveSelector) StartFlowAdaptive(src, dst graph.NodeID, sizeBytes int64,
	onDelivered, onComplete func(*tcp.Flow)) (*tcp.Flow, error) {

	path, err := a.Pick(src, dst)
	if err != nil {
		return nil, err
	}
	return a.d.StartFlowOnPaths([]graph.Path{path}, sizeBytes, onDelivered, onComplete)
}
