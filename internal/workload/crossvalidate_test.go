package workload

import (
	"math/rand"
	"testing"

	"pnet/internal/mcf"
	"pnet/internal/route"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

// TestSimMatchesLPOnPermutation cross-validates the two measurement
// substrates: for a permutation of long flows over pinned ECMP paths, the
// packet simulator's aggregate goodput must come close to the max-min
// fair allocation the LP-side solver predicts for the same paths. This is
// the consistency check between the paper's "LP solver" and "htsim"
// methodologies.
func TestSimMatchesLPOnPermutation(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	rng := rand.New(rand.NewSource(9))
	cs := PermutationCommodities(tp, 0, rng)
	paths := route.ECMPPaths(tp.G, cs, 42)

	// LP prediction: max-min fair total throughput in Gb/s.
	predicted := mcf.MaxMinPinned(tp.G, cs, paths).Total

	// Simulate the same pinned flows for a fixed window and measure
	// aggregate goodput.
	d := NewDriver(tp, sim.Config{}, tcp.Config{})
	const flowBytes = 80_000_000 // long enough to stay in steady state
	flows := make([]*tcp.Flow, len(cs))
	for i := range cs {
		f, err := d.StartFlowOnPaths(paths[i], flowBytes, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		flows[i] = f
	}
	const window = 4 * sim.Millisecond
	d.Eng.RunUntil(window)

	var deliveredBytes float64
	for _, f := range flows {
		deliveredBytes += float64(f.DeliveredPkts()) * 1500
	}
	measured := deliveredBytes * 8 / window.Seconds() / 1e9 // Gb/s

	ratio := measured / predicted
	if ratio < 0.70 || ratio > 1.05 {
		t.Errorf("sim goodput %.1f Gb/s vs LP prediction %.1f Gb/s (ratio %.2f)",
			measured, predicted, ratio)
	}
}
