package workload

import (
	"math/rand"
	"testing"

	"pnet/internal/graph"
	"pnet/internal/mcf"
	"pnet/internal/route"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/traces"
)

func TestPermutationCommodities(t *testing.T) {
	set := topo.FatTreeSet(4, 1, 100)
	tp := set.SerialLow
	cs := PermutationCommodities(tp, 100, rand.New(rand.NewSource(1)))
	if len(cs) != 16 {
		t.Fatalf("commodities = %d", len(cs))
	}
	srcSeen := map[graph.NodeID]bool{}
	dstSeen := map[graph.NodeID]bool{}
	for _, c := range cs {
		if c.Src == c.Dst {
			t.Fatal("fixed point in permutation")
		}
		if srcSeen[c.Src] || dstSeen[c.Dst] {
			t.Fatal("not a permutation")
		}
		srcSeen[c.Src] = true
		dstSeen[c.Dst] = true
		if c.Demand != 100 {
			t.Fatal("wrong demand")
		}
	}
}

func TestAllToAllCommodities(t *testing.T) {
	set := topo.FatTreeSet(4, 1, 100)
	cs := AllToAllCommodities(set.SerialLow, 2.5)
	if len(cs) != 16*15 {
		t.Fatalf("commodities = %d", len(cs))
	}
}

func TestRackAllToAllCoreOnly(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	g, cs := RackAllToAll(tp, 1)
	if len(cs) != 8*7 {
		t.Fatalf("rack commodities = %d, want 56", len(cs))
	}
	// Rack nodes must be non-transit and reachable from each other.
	for _, c := range cs[:5] {
		if g.Transit(c.Src) || g.Transit(c.Dst) {
			t.Fatal("rack node is transit")
		}
		if _, ok := graph.ShortestPath(g, c.Src, c.Dst); !ok {
			t.Fatal("rack nodes disconnected")
		}
	}
	// The original graph is untouched.
	if tp.G.NumNodes() == g.NumNodes() {
		t.Error("RackAllToAll did not copy the graph")
	}
}

func TestRackAllToAllHeteroThroughputAdvantage(t *testing.T) {
	// Figure 7's mechanism in miniature: heterogeneous planes give
	// higher ideal rack-level throughput than the serial high-bandwidth
	// equivalent because some pairs find shorter paths on other planes.
	set := topo.JellyfishSet(12, 3, 2, 4, 100, 21)
	solve := func(tp *topo.Topology) float64 {
		g, cs := RackAllToAll(tp, 10)
		return mcf.Free(g, cs, mcf.Options{Epsilon: 0.08}).Lambda
	}
	hetero := solve(set.ParallelHetero)
	high := solve(set.SerialHigh)
	if hetero < high {
		t.Errorf("hetero ideal throughput %.3f < serial-high %.3f", hetero, high)
	}
}

func TestRandomPairs(t *testing.T) {
	set := topo.FatTreeSet(4, 1, 100)
	pairs := RandomPairs(set.SerialLow, 50, rand.New(rand.NewSource(2)))
	if len(pairs) != 50 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("self pair")
		}
	}
}

func newTestDriver(t *testing.T, tp *topo.Topology) *Driver {
	t.Helper()
	return NewDriver(tp, sim.Config{}, tcp.Config{})
}

func TestDriverPathsForPolicies(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	d := newTestDriver(t, set.ParallelHomo)
	src, dst := set.ParallelHomo.Hosts[0], set.ParallelHomo.Hosts[15]

	single, err := d.PathsFor(src, dst, Selection{Policy: Shortest})
	if err != nil || len(single) != 1 {
		t.Fatalf("shortest: %v %d", err, len(single))
	}
	ecmp1, err := d.PathsFor(src, dst, Selection{Policy: ECMP})
	if err != nil || len(ecmp1) != 1 {
		t.Fatalf("ecmp: %v", err)
	}
	ksp, err := d.PathsFor(src, dst, Selection{Policy: KSP, K: 6})
	if err != nil || len(ksp) != 6 {
		t.Fatalf("ksp: %v %d", err, len(ksp))
	}
	kspDefault, err := d.PathsFor(src, dst, Selection{Policy: KSP})
	if err != nil || len(kspDefault) != 16 { // 8 × 2 planes
		t.Fatalf("ksp default: %v %d", err, len(kspDefault))
	}
}

func TestDriverECMPVariesAcrossFlows(t *testing.T) {
	set := topo.FatTreeSet(4, 4, 100)
	d := newTestDriver(t, set.ParallelHomo)
	src, dst := set.ParallelHomo.Hosts[0], set.ParallelHomo.Hosts[15]
	planes := map[int32]bool{}
	for i := 0; i < 32; i++ {
		ps, err := d.PathsFor(src, dst, Selection{Policy: ECMP})
		if err != nil {
			t.Fatal(err)
		}
		planes[ps[0].Plane(d.PNet.Topo.G)] = true
	}
	if len(planes) < 3 {
		t.Errorf("32 ECMP flows covered %d planes, want most of 4", len(planes))
	}
}

func TestStartFlowAndCompletion(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	d := newTestDriver(t, set.ParallelHomo)
	tp := set.ParallelHomo
	done := 0
	_, err := d.StartFlow(tp.Hosts[0], tp.Hosts[15], 150_000, Selection{Policy: Shortest},
		nil, func(f *tcp.Flow) { done++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := d.MustRunUntil(sim.Second, 1); err != nil {
		t.Fatal(err)
	}
	if done != 1 || d.Completed != 1 {
		t.Errorf("done=%d completed=%d", done, d.Completed)
	}
}

func TestMustRunUntilReportsStall(t *testing.T) {
	set := topo.FatTreeSet(4, 1, 100)
	d := newTestDriver(t, set.SerialLow)
	if err := d.MustRunUntil(sim.Millisecond, 5); err == nil {
		t.Error("no error for unmet completion count")
	}
}

func TestRunRPCPingPong(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	samples, err := RunRPC(d, RPCConfig{
		ReqBytes: 1500, RespBytes: 1500,
		Rounds: 3, LoopsPerHost: 1,
		Sel:  Selection{Policy: ECMP},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := set.ParallelHomo.NumHosts() * 3
	if len(samples) != want {
		t.Fatalf("samples = %d, want %d", len(samples), want)
	}
	for _, s := range samples {
		if s <= 0 || s > 0.1 {
			t.Fatalf("implausible RPC time %v s", s)
		}
	}
}

func TestRPCHeteroFasterThanSerial(t *testing.T) {
	// §5.2.1 in miniature: heterogeneous P-Net RPCs beat the serial
	// low-bandwidth network on median completion time thanks to
	// shorter paths.
	set := topo.ScaledJellyfish(16, 4, 100, 7)
	run := func(tp *topo.Topology) float64 {
		d := NewDriver(tp, sim.Config{}, tcp.Config{})
		samples, err := RunRPC(d, RPCConfig{
			ReqBytes: 1500, RespBytes: 1500,
			Rounds: 5, LoopsPerHost: 1,
			Sel:  Selection{Policy: Shortest},
			Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, s := range samples {
			sum += s
		}
		return sum / float64(len(samples))
	}
	serial := run(set.SerialLow)
	hetero := run(set.ParallelHetero)
	if hetero >= serial {
		t.Errorf("hetero mean RPC %.3gs >= serial %.3gs", hetero, serial)
	}
}

func TestRunShuffleStages(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	times, err := RunShuffle(d, ShuffleConfig{
		Mappers: 4, Reducers: 4,
		TotalBytes:  64 << 20, // 64 MB total
		BlockBytes:  4 << 20,  // 4 MB blocks
		Concurrency: 2,
		Sel:         Selection{Policy: ECMP},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times.Read) != 4 || len(times.Shuffle) != 4 || len(times.Write) != 4 {
		t.Fatalf("stage sizes: %d %d %d", len(times.Read), len(times.Shuffle), len(times.Write))
	}
	for _, stage := range [][]float64{times.Read, times.Shuffle, times.Write} {
		for _, v := range stage {
			if v <= 0 {
				t.Fatal("non-positive worker completion time")
			}
		}
	}
}

func TestRunTraceClosedLoop(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	res, err := RunTrace(d, TraceConfig{
		CDF:          traces.WebServer,
		LoopsPerHost: 2,
		FlowsPerLoop: 3,
		SizeCap:      1 << 20,
		Sel:          Selection{Policy: ECMP},
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := set.ParallelHomo.NumHosts() * 2 * 3
	if len(res.FCTs) != want {
		t.Fatalf("flows = %d, want %d", len(res.FCTs), want)
	}
	if len(res.Bytes) != len(res.FCTs) {
		t.Fatal("bytes/fct length mismatch")
	}
	for i, b := range res.Bytes {
		if b < 1 || b > 1<<20 {
			t.Fatalf("size %d outside cap", b)
		}
		if res.FCTs[i] <= 0 {
			t.Fatal("non-positive FCT")
		}
	}
}

func TestSelectionString(t *testing.T) {
	if (Selection{Policy: Shortest}).String() != "shortest" {
		t.Error("shortest string")
	}
	if (Selection{Policy: KSP, K: 4}).String() != "ksp-4" {
		t.Error("ksp string")
	}
	if (Selection{Policy: ECMP}).String() != "ecmp" {
		t.Error("ecmp string")
	}
}

var _ = route.Commodity{} // keep import for doc references
