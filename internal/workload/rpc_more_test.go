package workload

import (
	"testing"

	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

func TestRPCDeadlineReportsShortfall(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	// An impossible deadline: 1 µs for multi-round RPCs.
	samples, err := RunRPC(d, RPCConfig{
		ReqBytes: 1500, RespBytes: 1500,
		Rounds: 5, LoopsPerHost: 1,
		Sel:      Selection{Policy: ECMP},
		Seed:     1,
		Deadline: sim.Microsecond,
	})
	if err == nil {
		t.Error("no error for unmet deadline")
	}
	if len(samples) != 0 {
		t.Errorf("samples = %d within 1us", len(samples))
	}
}

func TestRPCAsymmetricSizes(t *testing.T) {
	// 100 kB request, tiny response (the Figure 11 configuration).
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	samples, err := RunRPC(d, RPCConfig{
		ReqBytes: 100_000, RespBytes: 1500,
		Rounds: 2, LoopsPerHost: 1,
		Sel:  Selection{Policy: ECMP},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := set.ParallelHomo.NumHosts() * 2
	if len(samples) != want {
		t.Fatalf("samples = %d, want %d", len(samples), want)
	}
	// A 100 kB request takes at least its serialization time (~8 µs).
	for _, s := range samples {
		if s < 8e-6 {
			t.Fatalf("sample %v below serialization floor", s)
		}
	}
}

func TestDriverCounters(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	tp := set.ParallelHomo
	for i := 0; i < 3; i++ {
		if _, err := d.StartFlow(tp.Hosts[i], tp.Hosts[i+8], 15_000,
			Selection{Policy: ECMP}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if d.Flows != 3 {
		t.Errorf("Flows = %d", d.Flows)
	}
	if err := d.MustRunUntil(sim.Second, 3); err != nil {
		t.Fatal(err)
	}
	if d.Completed != 3 {
		t.Errorf("Completed = %d", d.Completed)
	}
}

func TestStartFlowUnreachableErrors(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	tp := set.ParallelHomo
	for p := 0; p < tp.Planes; p++ {
		d.PNet.FailLink(tp.Uplinks[0][p])
	}
	_, err := d.StartFlow(tp.Hosts[0], tp.Hosts[5], 1500, Selection{Policy: Shortest}, nil, nil)
	if err == nil {
		t.Error("no error for host with all uplinks down")
	}
	_ = tcp.Config{}
}
