package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/traces"
)

// traceFixture returns a small deterministic size distribution.
func traceFixture() traces.SizeCDF {
	return traces.WebServer
}

func TestShuffleTooManyWorkers(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	_, err := RunShuffle(d, ShuffleConfig{
		Mappers: 100, Reducers: 100,
		TotalBytes: 1 << 20, BlockBytes: 1 << 18, Concurrency: 2,
		Sel: Selection{Policy: ECMP},
	})
	if err == nil {
		t.Error("no error for oversized worker count")
	}
}

func TestShuffleDeterministicForSeed(t *testing.T) {
	run := func() StageTimes {
		set := topo.ScaledJellyfish(8, 2, 100, 3)
		d := NewDriver(set.ParallelHomo, sim.Config{}, tcp.Config{})
		times, err := RunShuffle(d, ShuffleConfig{
			Mappers: 4, Reducers: 4,
			TotalBytes: 32 << 20, BlockBytes: 4 << 20, Concurrency: 2,
			Sel:  Selection{Policy: ECMP},
			Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	for i := range a.Read {
		if a.Read[i] != b.Read[i] || a.Shuffle[i] != b.Shuffle[i] {
			t.Fatal("shuffle not deterministic for fixed seed")
		}
	}
}

func TestShuffleStagesAreSequential(t *testing.T) {
	// The shuffle stage starts only after every mapper finished reading:
	// total elapsed must be at least the max of stage sums (stages don't
	// overlap). We verify via wall-clock of the engine versus per-stage
	// maxima.
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	times, err := RunShuffle(d, ShuffleConfig{
		Mappers: 4, Reducers: 4,
		TotalBytes: 32 << 20, BlockBytes: 4 << 20, Concurrency: 2,
		Sel:  Selection{Policy: ECMP},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	sumOfMaxima := maxOf(times.Read) + maxOf(times.Shuffle) + maxOf(times.Write)
	elapsed := d.Eng.Now().Seconds()
	if elapsed < sumOfMaxima*0.999 {
		t.Errorf("elapsed %.4fs < sum of stage maxima %.4fs: stages overlapped", elapsed, sumOfMaxima)
	}
}

func TestDerangementProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		p := derangement(n, rng)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for i, v := range p {
			if v == i || v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTraceDeterministicForSeed(t *testing.T) {
	run := func() []float64 {
		set := topo.ScaledJellyfish(8, 2, 100, 3)
		d := NewDriver(set.ParallelHomo, sim.Config{}, tcp.Config{})
		res, err := RunTrace(d, TraceConfig{
			CDF:          traceFixture(),
			LoopsPerHost: 1,
			FlowsPerLoop: 2,
			SizeCap:      1 << 20,
			Sel:          Selection{Policy: ECMP},
			Seed:         4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FCTs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace workload not deterministic for fixed seed")
		}
	}
}
