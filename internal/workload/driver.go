package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"pnet/internal/core"
	"pnet/internal/graph"
	"pnet/internal/obs"
	"pnet/internal/pdes"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

// Policy selects how a driver routes each flow.
type Policy int

const (
	// Shortest uses the single lowest-hop path across all planes (the
	// paper's "low-latency" interface; in heterogeneous P-Nets this
	// exploits per-pair shorter planes).
	Shortest Policy = iota
	// ECMP pins each flow to one hash-selected shortest path; distinct
	// flows between the same pair spread over planes and equal-cost
	// paths, as in the paper's single-path experiments.
	ECMP
	// KSP gives each flow K subflows over the K shortest paths across
	// planes (MPTCP).
	KSP
)

// Selection is a routing policy plus its multipath degree.
type Selection struct {
	Policy Policy
	// K is the subflow count for KSP (ignored otherwise).
	K int
	// Class, when set, confines routing to the planes assigned to the
	// named traffic class (core.SetClass) — the paper's §7 performance
	// isolation.
	Class string
}

func (s Selection) String() string {
	var name string
	switch s.Policy {
	case Shortest:
		name = "shortest"
	case ECMP:
		name = "ecmp"
	default:
		name = fmt.Sprintf("ksp-%d", s.K)
	}
	if s.Class != "" {
		name += "@" + s.Class
	}
	return name
}

// Driver couples a topology, its packet-level network, and the P-Net
// end-host control plane, and starts transport flows under a Selection.
type Driver struct {
	PNet *core.PNet
	Eng  *sim.Engine
	Net  *sim.Network
	TCP  tcp.Config

	// Obs, when set (via Instrument), receives per-flow records and
	// drives the network's tracer and sampler. Nil costs nothing.
	Obs *obs.Collector

	// OnRepath, when set, observes every subflow path swap (see Repaths).
	OnRepath func(f *tcp.Flow, subflow int, to graph.Path)

	topo    *topo.Topology
	runner  *pdes.Runner  // nil on serial runs; set when a pending Shard materializes
	pending *pendingShard // sharding deferred until the first run (see ShardPlaced)
	// loads accumulates per-endpoint flow weight between ShardPlaced and
	// materialization — the balanced planner's host weights. Nil outside
	// balanced mode.
	loads   map[graph.NodeID]int64
	hashCtr uint64
	// Flows counts flows started; Completed counts OnComplete callbacks.
	Flows, Completed int64
	// Repaths counts subflow path swaps across all flows — nonzero only
	// when TCP.StallRTOs enables stall-driven repathing and a fault
	// actually pushed flows off their original routes.
	Repaths int64
}

// NewDriver builds the simulation environment for a topology.
func NewDriver(t *topo.Topology, simCfg sim.Config, tcpCfg tcp.Config) *Driver {
	eng := sim.NewEngine()
	return &Driver{
		PNet: core.New(t),
		Eng:  eng,
		Net:  sim.NewNetwork(eng, t.G, simCfg),
		TCP:  tcpCfg,
		topo: t,
	}
}

// Placement mode names, as spelled on the `pnetbench -placement` flag.
const (
	// PlaceRR is the default: round-robin host binding in node-ID order
	// and plane p on shard p mod shards — PR-for-PR identical to the
	// binding the engine used before placement existed.
	PlaceRR = "rr"
	// PlaceBalanced runs the LPT planner over the driver's own flow
	// knowledge: host weights from the flows started before the first run
	// (colocation groups stay whole), plane weights from link capacities.
	PlaceBalanced = "balanced"
	// PlaceFile replays a `pnetstat profile -emit-placement` file: the
	// measured occupancy of a profiled run becomes exact planner weights.
	PlaceFile = "file"
	// PlaceSeeded assigns groups and planes uniformly at random from a
	// seeded generator — the adversarial mode the placement-invariance
	// property test sweeps to prove output never depends on placement.
	PlaceSeeded = "seeded"
)

// Placement selects how a sharded run partitions hosts over sub-shards
// and planes over plane shards. The zero value is PlaceRR.
type Placement struct {
	// Mode is one of the Place* constants ("" = PlaceRR).
	Mode string
	// Seed drives PlaceSeeded's generator.
	Seed int64
	// File is the loaded placement file for PlaceFile; Path labels its
	// validation errors.
	File *pdes.PlacementFile
	Path string
}

// pendingShard is a Shard call waiting for its first run: the partition
// widths, placement spec, and host predicate to materialize with.
type pendingShard struct {
	shards, hostShards int
	lookahead          sim.Time
	place              Placement
	hostSide           func(graph.LinkID) bool
}

// Shard switches the run onto the plane-sharded PDES engine with the
// given plane-shard count, host sub-shard count (≤ 1 keeps the classic
// single host shard), and conservative lookahead (zero lookahead selects
// the propagation delay, its provable maximum), under the default
// round-robin placement. shards ≤ 1 is a no-op: the driver keeps the
// untouched serial engine.
func (d *Driver) Shard(shards, hostShards int, lookahead sim.Time) {
	d.ShardPlaced(shards, hostShards, lookahead, Placement{})
}

// ShardPlaced is Shard with an explicit placement spec. The switch is
// lazy: host placement cells are prepared immediately (so flows created
// from here on bind through them), but the ShardSet itself materializes
// on the first RunUntil/Step — by which point the driver has seen the
// workload's flows and the balanced planner has real weights to pack.
// Call after Instrument (so shard engines inherit the fingerprinter and
// recorder). The run's output is byte-identical at every placement;
// placement only changes how fast it is produced.
func (d *Driver) ShardPlaced(shards, hostShards int, lookahead sim.Time, place Placement) {
	if shards <= 1 || d.runner != nil || d.pending != nil {
		return
	}
	isHost := make([]bool, d.Net.G.NumNodes())
	for _, h := range d.topo.Hosts {
		isHost[h] = true
	}
	hostSide := func(id graph.LinkID) bool {
		return isHost[d.Net.G.Link(id).Src]
	}
	d.pending = &pendingShard{
		shards: shards, hostShards: hostShards, lookahead: lookahead,
		place: place, hostSide: hostSide,
	}
	d.Net.PrepareHostBinds(hostShards, hostSide)
	if place.Mode == PlaceBalanced {
		d.loads = make(map[graph.NodeID]int64)
	}
}

// materialize turns a pending Shard into the live runner. Placement
// construction failures (a placement file that does not match the
// topology) panic with the validation error — they are configuration
// errors, detected at the first run.
func (d *Driver) materialize() {
	cfg := d.pending
	if cfg == nil {
		return
	}
	place, err := d.buildPlacement(cfg)
	if err != nil {
		panic("workload: " + err.Error())
	}
	d.pending = nil
	d.loads = nil
	d.runner = pdes.New(d.Eng, d.Net, cfg.hostSide, pdes.Config{
		Shards: cfg.shards, HostShards: cfg.hostShards,
		Lookahead: cfg.lookahead, Placement: place,
	})
}

// buildPlacement resolves a placement spec into the engine-level
// partition. Nil means the default round-robin / plane-mod-shards.
func (d *Driver) buildPlacement(cfg *pendingShard) (*sim.Placement, error) {
	switch cfg.place.Mode {
	case "", PlaceRR:
		return nil, nil
	case PlaceBalanced:
		hosts, err := sim.PlanHosts(d.Net.ColocationGroups(), d.loads, nil, cfg.hostShards)
		if err != nil {
			return nil, err
		}
		planes, err := sim.PlanPlanes(sim.PlaneLoadsFromCapacity(d.Net.G), nil, cfg.shards)
		if err != nil {
			return nil, err
		}
		return &sim.Placement{Hosts: hosts, Planes: planes}, nil
	case PlaceSeeded:
		return d.seededPlacement(cfg), nil
	case PlaceFile:
		return d.filePlacement(cfg)
	default:
		return nil, fmt.Errorf("unknown placement mode %q (want %s, %s, %s, or %s)",
			cfg.place.Mode, PlaceRR, PlaceBalanced, PlaceFile, PlaceSeeded)
	}
}

// seededPlacement scatters colocation groups and planes uniformly at
// random — valid by construction (group-granular), wildly unbalanced by
// design.
func (d *Driver) seededPlacement(cfg *pendingShard) *sim.Placement {
	rng := rand.New(rand.NewSource(cfg.place.Seed))
	hosts := map[graph.NodeID]int{}
	for _, g := range d.Net.ColocationGroups() {
		s := rng.Intn(cfg.hostShards)
		for _, h := range g {
			hosts[h] = s
		}
	}
	planes := map[int32]int{}
	for _, pl := range sortedPlanes(d.Net.G) {
		planes[pl] = rng.Intn(cfg.shards)
	}
	return &sim.Placement{Hosts: hosts, Planes: planes}
}

// filePlacement replays a placement file, cross-checked against the live
// topology: partition widths must match the file's headers, the file must
// weigh every bound host and no others, and a plane section (optional)
// must cover the graph's planes exactly.
func (d *Driver) filePlacement(cfg *pendingShard) (*sim.Placement, error) {
	f := cfg.place.File
	if f == nil {
		return nil, fmt.Errorf("placement mode %q without a loaded file", PlaceFile)
	}
	fail := func(detail, remedy string) error {
		return &pdes.PlacementError{Path: cfg.place.Path, Detail: detail, Remedy: remedy}
	}
	regen := "regenerate with `pnetstat profile -emit-placement` from a profiled run of this topology"
	if f.HostShards != 0 && f.HostShards != cfg.hostShards {
		return nil, fail(fmt.Sprintf("generated for host_shards=%d, this run uses %d", f.HostShards, cfg.hostShards),
			"rerun with -host-shards "+fmt.Sprint(f.HostShards)+" or "+regen)
	}
	if f.Shards != 0 && f.Shards != cfg.shards {
		return nil, fail(fmt.Sprintf("generated for shards=%d, this run uses %d", f.Shards, cfg.shards),
			"rerun with -shards "+fmt.Sprint(f.Shards)+" or "+regen)
	}
	hw, hpins := f.HostWeights()
	weights := make(map[graph.NodeID]int64, len(hw))
	pins := map[graph.NodeID]int{}
	for _, h := range d.Net.BoundHosts() {
		w, ok := hw[int64(h)]
		if !ok {
			return nil, fail(fmt.Sprintf("missing host %d, which this topology binds", h), regen)
		}
		weights[h] = w
		if s, ok := hpins[int64(h)]; ok {
			pins[h] = s
		}
		delete(hw, int64(h))
	}
	for id := range hw {
		return nil, fail(fmt.Sprintf("host %d is not a bound host of this topology", id), regen)
	}
	hosts, err := sim.PlanHosts(d.Net.ColocationGroups(), weights, pins, cfg.hostShards)
	if err != nil {
		return nil, fail(err.Error(), regen)
	}
	place := &sim.Placement{Hosts: hosts}
	if len(f.Planes) > 0 {
		pw, ppins := f.PlaneWeights()
		graphPlanes := sortedPlanes(d.Net.G)
		for _, pl := range graphPlanes {
			if _, ok := pw[pl]; !ok {
				return nil, fail(fmt.Sprintf("missing plane %d, which this topology has", pl), regen)
			}
		}
		if len(pw) != len(graphPlanes) {
			for pl := range pw {
				if !hasPlane(graphPlanes, pl) {
					return nil, fail(fmt.Sprintf("plane %d is not a plane of this topology", pl), regen)
				}
			}
		}
		planes, err := sim.PlanPlanes(pw, ppins, cfg.shards)
		if err != nil {
			return nil, fail(err.Error(), regen)
		}
		place.Planes = planes
	}
	return place, nil
}

// sortedPlanes lists the graph's dataplanes in ascending order.
func sortedPlanes(g *graph.Graph) []int32 {
	caps := sim.PlaneLoadsFromCapacity(g)
	out := make([]int32, 0, len(caps))
	for pl := range caps {
		out = append(out, pl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func hasPlane(planes []int32, pl int32) bool {
	for _, p := range planes {
		if p == pl {
			return true
		}
	}
	return false
}

// Runner exposes the sharded-run statistics — nil on serial runs and
// before a pending Shard materializes at the first RunUntil/Step.
func (d *Driver) Runner() *pdes.Runner { return d.runner }

// Close releases the sharded runner's worker goroutines, if any. Safe on
// serial drivers and safe to call twice.
func (d *Driver) Close() {
	if d.runner != nil {
		d.runner.Close()
	}
}

// RunUntil fires all events up to and including the deadline — through
// the sharded runner when Shard was called, the serial engine otherwise —
// and accumulates the wall time spent into the collector (the measured
// side of `pnetstat profile`'s predicted-vs-achieved speedup).
func (d *Driver) RunUntil(deadline sim.Time) int {
	d.materialize()
	start := time.Now()
	var fired int
	if d.runner != nil {
		fired = d.runner.RunUntil(deadline)
	} else {
		fired = d.Eng.RunUntil(deadline)
	}
	if d.Obs != nil {
		d.Obs.AddRunWall(time.Since(start))
	}
	return fired
}

// Step fires the single next event — through the sharded runner's
// serialized step when Shard was called, the engine's own Step otherwise.
// Workload loops that check an exit condition between events must use this
// rather than d.Eng.Step: under sharding the packet events live on the
// plane shards' heaps, and stepping only the host engine would stall every
// in-flight flow. Returns false when no events remain.
func (d *Driver) Step() bool {
	d.materialize()
	if d.runner != nil {
		return d.runner.Step()
	}
	return d.Eng.Step()
}

// PathsFor resolves a Selection into concrete paths for a flow.
func (d *Driver) PathsFor(src, dst graph.NodeID, sel Selection) ([]graph.Path, error) {
	if sel.Class != "" {
		return d.classPathsFor(src, dst, sel)
	}
	switch sel.Policy {
	case Shortest:
		p, ok := d.PNet.LowLatencyPath(src, dst)
		if !ok {
			return nil, fmt.Errorf("workload: no path %d->%d", src, dst)
		}
		return []graph.Path{p}, nil
	case ECMP:
		d.hashCtr++
		p, ok := d.PNet.ECMPPath(src, dst, d.hashCtr*0x9e3779b97f4a7c15)
		if !ok {
			return nil, fmt.Errorf("workload: no ECMP path %d->%d", src, dst)
		}
		return []graph.Path{p}, nil
	case KSP:
		k := sel.K
		if k <= 0 {
			k = core.SubflowsFor(d.PNet.Planes())
		}
		ps := d.PNet.HighThroughputPaths(src, dst, k)
		if len(ps) == 0 {
			return nil, fmt.Errorf("workload: no KSP paths %d->%d", src, dst)
		}
		return ps, nil
	default:
		return nil, fmt.Errorf("workload: unknown policy %d", sel.Policy)
	}
}

// classPathsFor resolves a class-confined Selection.
func (d *Driver) classPathsFor(src, dst graph.NodeID, sel Selection) ([]graph.Path, error) {
	switch sel.Policy {
	case Shortest:
		p, ok := d.PNet.ClassLowLatencyPath(sel.Class, src, dst)
		if !ok {
			return nil, fmt.Errorf("workload: class %q: no path %d->%d", sel.Class, src, dst)
		}
		return []graph.Path{p}, nil
	case ECMP:
		d.hashCtr++
		p, ok := d.PNet.ClassPath(sel.Class, src, dst, d.hashCtr*0x9e3779b97f4a7c15)
		if !ok {
			return nil, fmt.Errorf("workload: class %q: no ECMP path %d->%d", sel.Class, src, dst)
		}
		return []graph.Path{p}, nil
	case KSP:
		k := sel.K
		if k <= 0 {
			k = core.SubflowsFor(len(d.PNet.Class(sel.Class)))
		}
		ps := d.PNet.ClassPaths(sel.Class, src, dst, k)
		if len(ps) == 0 {
			return nil, fmt.Errorf("workload: class %q: no KSP paths %d->%d", sel.Class, src, dst)
		}
		return ps, nil
	default:
		return nil, fmt.Errorf("workload: unknown policy %d", sel.Policy)
	}
}

// StartFlow creates and starts a flow of sizeBytes from src to dst.
// onDelivered (optional) fires at the receiver when all bytes arrive;
// onComplete (optional) fires at the sender when all bytes are acked.
func (d *Driver) StartFlow(src, dst graph.NodeID, sizeBytes int64, sel Selection,
	onDelivered, onComplete func(*tcp.Flow)) (*tcp.Flow, error) {

	paths, err := d.PathsFor(src, dst, sel)
	if err != nil {
		return nil, err
	}
	f, err := d.StartFlowOnPaths(paths, sizeBytes, onDelivered, onComplete)
	if err != nil {
		return nil, err
	}
	// Stalled subflows re-resolve through the same selection, which by
	// now reflects what the health monitor has learned — the end-host
	// failover loop of §3.4. (Setting the hook after Start is safe: it is
	// only consulted at retransmission timeouts.)
	f.Repath = d.repathFor(sel)
	return f, nil
}

// repathFor builds the stall-repath resolver for a selection: re-run the
// policy against the current (post-detection) routing state and give
// subflow i the i-th resulting path. On a serial network, or before the
// monitor has condemned the broken plane, this naturally returns the
// same path and the subflow stays put.
func (d *Driver) repathFor(sel Selection) func(*tcp.Flow, int) (graph.Path, bool) {
	return func(f *tcp.Flow, i int) (graph.Path, bool) {
		cur := f.SubflowPath(i)
		src, dst := cur.Src(d.Net.G), cur.Dst(d.Net.G)
		paths, err := d.PathsFor(src, dst, sel)
		if err != nil || len(paths) == 0 {
			return graph.Path{}, false
		}
		return paths[i%len(paths)], true
	}
}

// Instrument attaches a telemetry collector: the network's tracer and
// sampler are wired up, and every completed flow is recorded. A nil
// collector is a no-op.
func (d *Driver) Instrument(c *obs.Collector) {
	d.Obs = c
	c.AttachNetwork(d.Eng, d.Net)
}

// StartFlowOnPaths starts a flow over explicitly chosen paths (used by
// the adaptive selector and custom policies).
func (d *Driver) StartFlowOnPaths(paths []graph.Path, sizeBytes int64,
	onDelivered, onComplete func(*tcp.Flow)) (*tcp.Flow, error) {

	f, err := tcp.NewFlow(d.Net, d.TCP, paths, sizeBytes)
	if err != nil {
		return nil, err
	}
	if d.loads != nil {
		// Balanced placement is still collecting weights: charge both
		// endpoints the flow's packet count (its event footprint, roughly).
		w := sizeBytes/1500 + 1
		d.loads[paths[0].Src(d.Net.G)] += w
		d.loads[paths[0].Dst(d.Net.G)] += w
	}
	f.OnDelivered = onDelivered
	d.Flows++
	f.ID = d.Flows
	f.Repath = d.repathFor(Selection{Policy: Shortest})
	f.OnRepath = func(fl *tcp.Flow, i int, to graph.Path) {
		d.Repaths++
		if d.Obs != nil {
			d.Obs.Reg.Counter("flows.repaths").Inc()
		}
		if d.OnRepath != nil {
			d.OnRepath(fl, i, to)
		}
	}
	f.OnComplete = func(fl *tcp.Flow) {
		// Completion fires on the flow's host sub-shard, possibly inside
		// a window concurrent with other sub-shards' completions — hence
		// the atomic counter and the flow's own clock for the timestamp
		// (identical to the engine clock on serial runs).
		atomic.AddInt64(&d.Completed, 1)
		if d.Obs != nil {
			d.Obs.RecordFlow(obs.FlowRecord{
				ID:          fl.ID,
				TPs:         int64(fl.Finished),
				Transport:   "tcp",
				Src:         int64(paths[0].Src(d.Net.G)),
				Dst:         int64(paths[0].Dst(d.Net.G)),
				Bytes:       sizeBytes,
				FCT:         fl.FCT().Seconds(),
				Retransmits: fl.Retransmits,
				Subflows:    fl.Subflows(),
				Planes:      planesOf(d.Net.G, paths),
				Spans:       spanShares(fl.Attribution()),
			})
		}
		if onComplete != nil {
			onComplete(fl)
		}
	}
	f.Start()
	return f, nil
}

// planesOf returns the distinct dataplanes a path set touches, sorted.
func planesOf(g *graph.Graph, paths []graph.Path) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, p := range paths {
		pl := p.Plane(g)
		if !seen[pl] {
			seen[pl] = true
			out = append(out, pl)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// spanShares converts a flow's attribution cells to their JSONL shape.
// Nil in, nil out: flows on span-disabled networks carry no spans field.
func spanShares(totals []sim.SpanTotal) []obs.SpanShare {
	if len(totals) == 0 {
		return nil
	}
	out := make([]obs.SpanShare, len(totals))
	for i, t := range totals {
		out[i] = obs.SpanShare{Component: t.Comp.String(), Plane: t.Plane, Ps: int64(t.Dur)}
	}
	return out
}

// MustRunUntil drives the engine to the deadline and returns an error if
// fewer than want flows completed — the signal that a workload stalled.
func (d *Driver) MustRunUntil(deadline sim.Time, want int64) error {
	d.RunUntil(deadline)
	if done := atomic.LoadInt64(&d.Completed); done < want {
		return fmt.Errorf("workload: %d of %d flows completed by %v (drops=%d)",
			done, want, deadline, d.Net.TotalDrops())
	}
	return nil
}
