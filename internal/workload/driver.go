package workload

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"pnet/internal/core"
	"pnet/internal/graph"
	"pnet/internal/obs"
	"pnet/internal/pdes"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

// Policy selects how a driver routes each flow.
type Policy int

const (
	// Shortest uses the single lowest-hop path across all planes (the
	// paper's "low-latency" interface; in heterogeneous P-Nets this
	// exploits per-pair shorter planes).
	Shortest Policy = iota
	// ECMP pins each flow to one hash-selected shortest path; distinct
	// flows between the same pair spread over planes and equal-cost
	// paths, as in the paper's single-path experiments.
	ECMP
	// KSP gives each flow K subflows over the K shortest paths across
	// planes (MPTCP).
	KSP
)

// Selection is a routing policy plus its multipath degree.
type Selection struct {
	Policy Policy
	// K is the subflow count for KSP (ignored otherwise).
	K int
	// Class, when set, confines routing to the planes assigned to the
	// named traffic class (core.SetClass) — the paper's §7 performance
	// isolation.
	Class string
}

func (s Selection) String() string {
	var name string
	switch s.Policy {
	case Shortest:
		name = "shortest"
	case ECMP:
		name = "ecmp"
	default:
		name = fmt.Sprintf("ksp-%d", s.K)
	}
	if s.Class != "" {
		name += "@" + s.Class
	}
	return name
}

// Driver couples a topology, its packet-level network, and the P-Net
// end-host control plane, and starts transport flows under a Selection.
type Driver struct {
	PNet *core.PNet
	Eng  *sim.Engine
	Net  *sim.Network
	TCP  tcp.Config

	// Obs, when set (via Instrument), receives per-flow records and
	// drives the network's tracer and sampler. Nil costs nothing.
	Obs *obs.Collector

	// OnRepath, when set, observes every subflow path swap (see Repaths).
	OnRepath func(f *tcp.Flow, subflow int, to graph.Path)

	topo    *topo.Topology
	runner  *pdes.Runner // nil on serial runs; set by Shard
	hashCtr uint64
	// Flows counts flows started; Completed counts OnComplete callbacks.
	Flows, Completed int64
	// Repaths counts subflow path swaps across all flows — nonzero only
	// when TCP.StallRTOs enables stall-driven repathing and a fault
	// actually pushed flows off their original routes.
	Repaths int64
}

// NewDriver builds the simulation environment for a topology.
func NewDriver(t *topo.Topology, simCfg sim.Config, tcpCfg tcp.Config) *Driver {
	eng := sim.NewEngine()
	return &Driver{
		PNet: core.New(t),
		Eng:  eng,
		Net:  sim.NewNetwork(eng, t.G, simCfg),
		TCP:  tcpCfg,
		topo: t,
	}
}

// Shard switches the run onto the plane-sharded PDES engine with the
// given plane-shard count, host sub-shard count (≤ 1 keeps the classic
// single host shard), and conservative lookahead (zero lookahead selects
// the propagation delay, its provable maximum). shards ≤ 1 is a no-op:
// the driver keeps the untouched serial engine. Call after Instrument
// (so shard engines inherit the fingerprinter and recorder) and before
// starting flows or timers. The run's output is byte-identical either
// way; Shard only changes how fast it is produced.
func (d *Driver) Shard(shards, hostShards int, lookahead sim.Time) {
	if shards <= 1 || d.runner != nil {
		return
	}
	isHost := make([]bool, d.Net.G.NumNodes())
	for _, h := range d.topo.Hosts {
		isHost[h] = true
	}
	d.runner = pdes.New(d.Eng, d.Net, func(id graph.LinkID) bool {
		return isHost[d.Net.G.Link(id).Src]
	}, pdes.Config{Shards: shards, HostShards: hostShards, Lookahead: lookahead})
}

// Runner exposes the sharded-run statistics (nil on serial runs).
func (d *Driver) Runner() *pdes.Runner { return d.runner }

// Close releases the sharded runner's worker goroutines, if any. Safe on
// serial drivers and safe to call twice.
func (d *Driver) Close() {
	if d.runner != nil {
		d.runner.Close()
	}
}

// RunUntil fires all events up to and including the deadline — through
// the sharded runner when Shard was called, the serial engine otherwise —
// and accumulates the wall time spent into the collector (the measured
// side of `pnetstat profile`'s predicted-vs-achieved speedup).
func (d *Driver) RunUntil(deadline sim.Time) int {
	start := time.Now()
	var fired int
	if d.runner != nil {
		fired = d.runner.RunUntil(deadline)
	} else {
		fired = d.Eng.RunUntil(deadline)
	}
	if d.Obs != nil {
		d.Obs.AddRunWall(time.Since(start))
	}
	return fired
}

// Step fires the single next event — through the sharded runner's
// serialized step when Shard was called, the engine's own Step otherwise.
// Workload loops that check an exit condition between events must use this
// rather than d.Eng.Step: under sharding the packet events live on the
// plane shards' heaps, and stepping only the host engine would stall every
// in-flight flow. Returns false when no events remain.
func (d *Driver) Step() bool {
	if d.runner != nil {
		return d.runner.Step()
	}
	return d.Eng.Step()
}

// PathsFor resolves a Selection into concrete paths for a flow.
func (d *Driver) PathsFor(src, dst graph.NodeID, sel Selection) ([]graph.Path, error) {
	if sel.Class != "" {
		return d.classPathsFor(src, dst, sel)
	}
	switch sel.Policy {
	case Shortest:
		p, ok := d.PNet.LowLatencyPath(src, dst)
		if !ok {
			return nil, fmt.Errorf("workload: no path %d->%d", src, dst)
		}
		return []graph.Path{p}, nil
	case ECMP:
		d.hashCtr++
		p, ok := d.PNet.ECMPPath(src, dst, d.hashCtr*0x9e3779b97f4a7c15)
		if !ok {
			return nil, fmt.Errorf("workload: no ECMP path %d->%d", src, dst)
		}
		return []graph.Path{p}, nil
	case KSP:
		k := sel.K
		if k <= 0 {
			k = core.SubflowsFor(d.PNet.Planes())
		}
		ps := d.PNet.HighThroughputPaths(src, dst, k)
		if len(ps) == 0 {
			return nil, fmt.Errorf("workload: no KSP paths %d->%d", src, dst)
		}
		return ps, nil
	default:
		return nil, fmt.Errorf("workload: unknown policy %d", sel.Policy)
	}
}

// classPathsFor resolves a class-confined Selection.
func (d *Driver) classPathsFor(src, dst graph.NodeID, sel Selection) ([]graph.Path, error) {
	switch sel.Policy {
	case Shortest:
		p, ok := d.PNet.ClassLowLatencyPath(sel.Class, src, dst)
		if !ok {
			return nil, fmt.Errorf("workload: class %q: no path %d->%d", sel.Class, src, dst)
		}
		return []graph.Path{p}, nil
	case ECMP:
		d.hashCtr++
		p, ok := d.PNet.ClassPath(sel.Class, src, dst, d.hashCtr*0x9e3779b97f4a7c15)
		if !ok {
			return nil, fmt.Errorf("workload: class %q: no ECMP path %d->%d", sel.Class, src, dst)
		}
		return []graph.Path{p}, nil
	case KSP:
		k := sel.K
		if k <= 0 {
			k = core.SubflowsFor(len(d.PNet.Class(sel.Class)))
		}
		ps := d.PNet.ClassPaths(sel.Class, src, dst, k)
		if len(ps) == 0 {
			return nil, fmt.Errorf("workload: class %q: no KSP paths %d->%d", sel.Class, src, dst)
		}
		return ps, nil
	default:
		return nil, fmt.Errorf("workload: unknown policy %d", sel.Policy)
	}
}

// StartFlow creates and starts a flow of sizeBytes from src to dst.
// onDelivered (optional) fires at the receiver when all bytes arrive;
// onComplete (optional) fires at the sender when all bytes are acked.
func (d *Driver) StartFlow(src, dst graph.NodeID, sizeBytes int64, sel Selection,
	onDelivered, onComplete func(*tcp.Flow)) (*tcp.Flow, error) {

	paths, err := d.PathsFor(src, dst, sel)
	if err != nil {
		return nil, err
	}
	f, err := d.StartFlowOnPaths(paths, sizeBytes, onDelivered, onComplete)
	if err != nil {
		return nil, err
	}
	// Stalled subflows re-resolve through the same selection, which by
	// now reflects what the health monitor has learned — the end-host
	// failover loop of §3.4. (Setting the hook after Start is safe: it is
	// only consulted at retransmission timeouts.)
	f.Repath = d.repathFor(sel)
	return f, nil
}

// repathFor builds the stall-repath resolver for a selection: re-run the
// policy against the current (post-detection) routing state and give
// subflow i the i-th resulting path. On a serial network, or before the
// monitor has condemned the broken plane, this naturally returns the
// same path and the subflow stays put.
func (d *Driver) repathFor(sel Selection) func(*tcp.Flow, int) (graph.Path, bool) {
	return func(f *tcp.Flow, i int) (graph.Path, bool) {
		cur := f.SubflowPath(i)
		src, dst := cur.Src(d.Net.G), cur.Dst(d.Net.G)
		paths, err := d.PathsFor(src, dst, sel)
		if err != nil || len(paths) == 0 {
			return graph.Path{}, false
		}
		return paths[i%len(paths)], true
	}
}

// Instrument attaches a telemetry collector: the network's tracer and
// sampler are wired up, and every completed flow is recorded. A nil
// collector is a no-op.
func (d *Driver) Instrument(c *obs.Collector) {
	d.Obs = c
	c.AttachNetwork(d.Eng, d.Net)
}

// StartFlowOnPaths starts a flow over explicitly chosen paths (used by
// the adaptive selector and custom policies).
func (d *Driver) StartFlowOnPaths(paths []graph.Path, sizeBytes int64,
	onDelivered, onComplete func(*tcp.Flow)) (*tcp.Flow, error) {

	f, err := tcp.NewFlow(d.Net, d.TCP, paths, sizeBytes)
	if err != nil {
		return nil, err
	}
	f.OnDelivered = onDelivered
	d.Flows++
	f.ID = d.Flows
	f.Repath = d.repathFor(Selection{Policy: Shortest})
	f.OnRepath = func(fl *tcp.Flow, i int, to graph.Path) {
		d.Repaths++
		if d.Obs != nil {
			d.Obs.Reg.Counter("flows.repaths").Inc()
		}
		if d.OnRepath != nil {
			d.OnRepath(fl, i, to)
		}
	}
	f.OnComplete = func(fl *tcp.Flow) {
		// Completion fires on the flow's host sub-shard, possibly inside
		// a window concurrent with other sub-shards' completions — hence
		// the atomic counter and the flow's own clock for the timestamp
		// (identical to the engine clock on serial runs).
		atomic.AddInt64(&d.Completed, 1)
		if d.Obs != nil {
			d.Obs.RecordFlow(obs.FlowRecord{
				ID:          fl.ID,
				TPs:         int64(fl.Finished),
				Transport:   "tcp",
				Src:         int64(paths[0].Src(d.Net.G)),
				Dst:         int64(paths[0].Dst(d.Net.G)),
				Bytes:       sizeBytes,
				FCT:         fl.FCT().Seconds(),
				Retransmits: fl.Retransmits,
				Subflows:    fl.Subflows(),
				Planes:      planesOf(d.Net.G, paths),
				Spans:       spanShares(fl.Attribution()),
			})
		}
		if onComplete != nil {
			onComplete(fl)
		}
	}
	f.Start()
	return f, nil
}

// planesOf returns the distinct dataplanes a path set touches, sorted.
func planesOf(g *graph.Graph, paths []graph.Path) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, p := range paths {
		pl := p.Plane(g)
		if !seen[pl] {
			seen[pl] = true
			out = append(out, pl)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// spanShares converts a flow's attribution cells to their JSONL shape.
// Nil in, nil out: flows on span-disabled networks carry no spans field.
func spanShares(totals []sim.SpanTotal) []obs.SpanShare {
	if len(totals) == 0 {
		return nil
	}
	out := make([]obs.SpanShare, len(totals))
	for i, t := range totals {
		out[i] = obs.SpanShare{Component: t.Comp.String(), Plane: t.Plane, Ps: int64(t.Dur)}
	}
	return out
}

// MustRunUntil drives the engine to the deadline and returns an error if
// fewer than want flows completed — the signal that a workload stalled.
func (d *Driver) MustRunUntil(deadline sim.Time, want int64) error {
	d.RunUntil(deadline)
	if done := atomic.LoadInt64(&d.Completed); done < want {
		return fmt.Errorf("workload: %d of %d flows completed by %v (drops=%d)",
			done, want, deadline, d.Net.TotalDrops())
	}
	return nil
}
