package workload

import (
	"testing"

	"pnet/internal/chaos"
	"pnet/internal/core"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

// TestDriverFailsOverThroughMidRunOutage is the end-to-end loop the
// chaos subsystem exists for: a physical plane outage is injected
// mid-flow, the health monitor detects it from probe silence, the
// stalled subflow repaths onto the surviving plane, and the flow
// completes — with every stage measured, none of it oracle-driven.
func TestDriverFailsOverThroughMidRunOutage(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	d := NewDriver(tp, sim.Config{}, tcp.Config{StallRTOs: 2})

	mon := core.NewHealthMonitor(d.Eng, d.Net, d.PNet, 0, 1, core.HealthConfig{
		Interval: 100 * sim.Microsecond,
	})
	var detected []core.PlaneEvent
	mon.OnChange = func(e core.PlaneEvent) { detected = append(detected, e) }
	mon.Start()

	faultAt := 500 * sim.Microsecond
	var sched chaos.Schedule
	sched.PlaneOutage(0, faultAt, 0)
	inj := chaos.NewInjector(d.Eng, d.Net, sched)
	inj.Arm()

	src, dst := tp.Hosts[2], tp.Hosts[13]
	f, err := d.StartFlow(src, dst, 30000*1500, Selection{Policy: KSP, K: 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Eng.RunUntil(200 * sim.Millisecond)

	if !f.Done() {
		t.Fatalf("flow did not survive the outage (delivered %d of %d)",
			f.DeliveredPkts(), f.SizePkts)
	}
	if len(detected) == 0 || detected[0].Plane != 0 || detected[0].Up {
		t.Fatalf("monitor events = %v, want plane 0 down", detected)
	}
	if lat := detected[0].At - faultAt; lat <= 0 {
		t.Errorf("detection latency %v not positive", lat)
	}
	if d.Repaths == 0 {
		t.Error("no subflow repathed off the dead plane")
	}
	if d.Net.TotalBlackholed() == 0 {
		t.Error("outage blackholed nothing mid-flow")
	}
	// After failover every subflow must route over the surviving plane.
	for i := 0; i < f.Subflows(); i++ {
		if pl := f.SubflowPath(i).Plane(tp.G); pl != 1 {
			t.Errorf("subflow %d still on plane %d", i, pl)
		}
	}
}

// TestDriverRepathNoOpOnHealthyNet pins the guard rail: with repathing
// enabled but no fault, nothing moves.
func TestDriverRepathNoOpOnHealthyNet(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	d := NewDriver(set.ParallelHomo, sim.Config{}, tcp.Config{StallRTOs: 2})
	src, dst := set.ParallelHomo.Hosts[0], set.ParallelHomo.Hosts[15]
	f, err := d.StartFlow(src, dst, 1000*1500, Selection{Policy: KSP, K: 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Eng.RunUntil(100 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if d.Repaths != 0 {
		t.Errorf("Repaths = %d on a healthy network", d.Repaths)
	}
}
