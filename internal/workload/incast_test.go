package workload

import (
	"testing"

	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

func TestRunIncastCompletes(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	res, err := RunIncast(d, IncastConfig{
		FanIn:      8,
		BlockBytes: 100_000,
		Rounds:     3,
		Sel:        Selection{Policy: ECMP},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CompletionTimes) != 3 {
		t.Fatalf("rounds = %d", len(res.CompletionTimes))
	}
	for _, ct := range res.CompletionTimes {
		if ct <= 0 {
			t.Fatal("non-positive completion time")
		}
	}
}

func TestRunIncastFanInTooLarge(t *testing.T) {
	set := topo.ScaledJellyfish(8, 2, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	if _, err := RunIncast(d, IncastConfig{FanIn: 1000, BlockBytes: 1000, Rounds: 1}); err == nil {
		t.Error("no error for oversized fan-in")
	}
}

func TestIncastParallelDropsFewerThanSerial(t *testing.T) {
	set := topo.ScaledJellyfish(8, 4, 100, 3)
	run := func(tp *topo.Topology) int64 {
		d := NewDriver(tp, sim.Config{}, tcp.Config{})
		res, err := RunIncast(d, IncastConfig{
			FanIn:      16,
			BlockBytes: 150_000,
			Rounds:     5,
			Sel:        Selection{Policy: ECMP},
			Seed:       4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Drops
	}
	serial := run(set.SerialLow)
	parallel := run(set.ParallelHomo)
	if parallel >= serial {
		t.Errorf("parallel incast drops %d >= serial %d", parallel, serial)
	}
}

func TestClassSelectionInDriver(t *testing.T) {
	set := topo.ScaledJellyfish(8, 4, 100, 3)
	d := newTestDriver(t, set.ParallelHomo)
	if err := d.PNet.SetClass("x", []int{1, 3}); err != nil {
		t.Fatal(err)
	}
	tp := set.ParallelHomo
	for _, sel := range []Selection{
		{Policy: Shortest, Class: "x"},
		{Policy: ECMP, Class: "x"},
		{Policy: KSP, K: 4, Class: "x"},
	} {
		paths, err := d.PathsFor(tp.Hosts[0], tp.Hosts[20], sel)
		if err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		for _, p := range paths {
			if pl := p.Plane(tp.G); pl != 1 && pl != 3 {
				t.Errorf("%v: path on plane %d", sel, pl)
			}
		}
	}
	// Undefined class errors.
	if _, err := d.PathsFor(tp.Hosts[0], tp.Hosts[20], Selection{Policy: Shortest, Class: "nope"}); err == nil {
		t.Error("no error for undefined class")
	}
}

func TestSelectionStringWithClass(t *testing.T) {
	s := Selection{Policy: ECMP, Class: "bulk"}
	if s.String() != "ecmp@bulk" {
		t.Errorf("string = %q", s.String())
	}
}
