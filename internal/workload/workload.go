// Package workload generates the paper's traffic patterns, in two forms:
// commodity lists for the max-concurrent-flow ("LP") experiments, and
// packet-simulation drivers for the flow-completion-time experiments —
// ping-pong RPCs, concurrent RPCs, Hadoop-style shuffles, and closed-loop
// trace-driven flows.
package workload

import (
	"math/rand"

	"pnet/internal/graph"
	"pnet/internal/route"
	"pnet/internal/topo"
)

// PermutationCommodities returns a random permutation traffic matrix: each
// host sends to exactly one other host and receives from exactly one (a
// random derangement), with the given per-flow demand. This is the paper's
// canonical sparse pattern.
func PermutationCommodities(t *topo.Topology, demand float64, rng *rand.Rand) []route.Commodity {
	n := t.NumHosts()
	perm := derangement(n, rng)
	cs := make([]route.Commodity, n)
	for i := 0; i < n; i++ {
		cs[i] = route.Commodity{Src: t.Hosts[i], Dst: t.Hosts[perm[i]], Demand: demand}
	}
	return cs
}

// derangement returns a uniform random permutation with no fixed points.
func derangement(n int, rng *rand.Rand) []int {
	for {
		p := rng.Perm(n)
		ok := true
		for i, v := range p {
			if i == v {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}

// MatchingCommodities returns a random perfect-matching traffic matrix:
// hosts are paired up and each pair exchanges one flow in each direction,
// so — like PermutationCommodities — every host sends exactly one flow
// and receives exactly one. The difference is the flow graph's shape: a
// uniform derangement's connected components are its permutation cycles
// (typically one cycle spans most hosts), while a matching's components
// are single pairs. Host sub-shard placement partitions hosts by
// flow-endpoint colocation group, so component sizes bound how evenly ANY
// placement can split the host boundary; a matching keeps that bound at
// two hosts. With an odd host count the last host stays idle.
func MatchingCommodities(t *topo.Topology, demand float64, rng *rand.Rand) []route.Commodity {
	n := t.NumHosts()
	p := rng.Perm(n)
	cs := make([]route.Commodity, 0, n)
	for i := 0; i+1 < n; i += 2 {
		a, b := t.Hosts[p[i]], t.Hosts[p[i+1]]
		cs = append(cs, route.Commodity{Src: a, Dst: b, Demand: demand})
		cs = append(cs, route.Commodity{Src: b, Dst: a, Demand: demand})
	}
	return cs
}

// AllToAllCommodities returns the dense pattern: every ordered host pair,
// each with demand demandPerPair. For H hosts this creates H×(H-1)
// commodities; use hostBandwidth/(H-1) as the per-pair demand to express
// "each host offers its full uplink bandwidth".
func AllToAllCommodities(t *topo.Topology, demandPerPair float64) []route.Commodity {
	n := t.NumHosts()
	cs := make([]route.Commodity, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				cs = append(cs, route.Commodity{Src: t.Hosts[i], Dst: t.Hosts[j], Demand: demandPerPair})
			}
		}
	}
	return cs
}

// RackAllToAll builds the paper's Figure 7 instance: rack-level all-to-all
// traffic measuring the capacity of the network core. It returns a copy of
// the topology's graph augmented with one non-transit "rack node" per
// rack, attached by effectively infinite links to every ToR that serves
// the rack's hosts on every plane, plus commodities between all rack
// pairs. Host uplink bottlenecks are thus excluded — only the core
// constrains the result, as in the paper's "no path constraint" setup.
func RackAllToAll(t *topo.Topology, demandPerPair float64) (*graph.Graph, []route.Commodity) {
	g := t.G.Clone()
	const hugeCapacity = 1e9 // Gb/s; never the bottleneck

	racks := t.RackMembers()
	rackNodes := make([]graph.NodeID, len(racks))
	for r, members := range racks {
		vn := g.AddNode(false)
		rackNodes[r] = vn
		for plane := 0; plane < t.Planes; plane++ {
			seen := map[graph.NodeID]bool{}
			for _, h := range members {
				tor := t.ToR[h][plane]
				if !seen[tor] {
					seen[tor] = true
					g.AddDuplex(vn, tor, hugeCapacity, int32(plane))
				}
			}
		}
	}

	var cs []route.Commodity
	for i := range rackNodes {
		for j := range rackNodes {
			if i != j {
				cs = append(cs, route.Commodity{Src: rackNodes[i], Dst: rackNodes[j], Demand: demandPerPair})
			}
		}
	}
	return g, cs
}

// RandomPairs samples n random (src, dst) host pairs with src ≠ dst,
// allowing repeats; useful for latency sampling on large topologies.
func RandomPairs(t *topo.Topology, n int, rng *rand.Rand) [][2]graph.NodeID {
	pairs := make([][2]graph.NodeID, n)
	for i := range pairs {
		a := rng.Intn(t.NumHosts())
		b := rng.Intn(t.NumHosts() - 1)
		if b >= a {
			b++
		}
		pairs[i] = [2]graph.NodeID{t.Hosts[a], t.Hosts[b]}
	}
	return pairs
}
