package workload

import (
	"fmt"
	"math/rand"

	"pnet/internal/graph"
	"pnet/internal/sim"
	"pnet/internal/tcp"
)

// ShuffleConfig describes the Hadoop-sort workload of §5.2.2: mappers read
// input blocks from random remote hosts, shuffle buckets all-to-all to
// reducers, and reducers write output blocks to random replicas. Stages
// run under a global barrier, and each worker keeps a bounded number of
// block transfers in flight.
type ShuffleConfig struct {
	Mappers, Reducers int
	// TotalBytes is the dataset size split evenly over mappers (the
	// paper sorts 100 GB across 32+32 workers).
	TotalBytes int64
	// BlockBytes is the read/write block size (paper: 128 MB).
	BlockBytes int64
	// Concurrency is the number of in-flight blocks per worker (paper: 4).
	Concurrency int
	// Sel routes every transfer (the paper uses single-path routing for
	// these ~100 MB flows, per the §5.1.2 policy).
	Sel  Selection
	Seed int64
	// Deadline bounds the simulation; zero selects 60 s.
	Deadline sim.Time
}

func (c ShuffleConfig) deadline() sim.Time {
	if c.Deadline == 0 {
		return 60 * sim.Second
	}
	return c.Deadline
}

// StageTimes reports per-worker completion times, in seconds from the
// stage's barrier, for the three stages (Figure 12's distributions).
type StageTimes struct {
	Read    []float64 // per mapper
	Shuffle []float64 // per mapper
	Write   []float64 // per reducer
}

// RunShuffle executes the three-stage job and returns per-worker stage
// completion times.
func RunShuffle(d *Driver, cfg ShuffleConfig) (StageTimes, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	hosts := d.PNet.Topo.Hosts
	if cfg.Mappers+cfg.Reducers > len(hosts) {
		return StageTimes{}, fmt.Errorf("workload: %d workers > %d hosts", cfg.Mappers+cfg.Reducers, len(hosts))
	}
	// Workers occupy distinct random hosts; other hosts serve as the
	// distributed filesystem ("remote racks" of the paper).
	perm := rng.Perm(len(hosts))
	mappers := make([]graph.NodeID, cfg.Mappers)
	reducers := make([]graph.NodeID, cfg.Reducers)
	for i := range mappers {
		mappers[i] = hosts[perm[i]]
	}
	for i := range reducers {
		reducers[i] = hosts[perm[cfg.Mappers+i]]
	}
	others := perm[cfg.Mappers+cfg.Reducers:]
	randomOther := func() graph.NodeID {
		if len(others) == 0 {
			return hosts[perm[rng.Intn(len(perm))]]
		}
		return hosts[others[rng.Intn(len(others))]]
	}

	var times StageTimes

	// runStage runs one barrier-synchronized stage: worker w must move
	// transfers[w] flows, Concurrency at a time; flow f's source and
	// destination come from the spec function. done is called with the
	// per-worker completion times when every worker finishes.
	runStage := func(workers int, flows func(w int) []flowSpec, record *[]float64, next func()) {
		start := d.Eng.Now()
		*record = make([]float64, workers)
		remainingWorkers := workers
		for w := 0; w < workers; w++ {
			specs := flows(w)
			if len(specs) == 0 {
				(*record)[w] = 0
				remainingWorkers--
				continue
			}
			nextIdx := 0
			outstanding := 0
			remaining := len(specs)
			w := w
			var launch func()
			var onDone func(*tcp.Flow)
			onDone = func(*tcp.Flow) {
				outstanding--
				remaining--
				if remaining == 0 {
					(*record)[w] = (d.Eng.Now() - start).Seconds()
					remainingWorkers--
					if remainingWorkers == 0 {
						next()
					}
					return
				}
				launch()
			}
			launch = func() {
				for outstanding < cfg.Concurrency && nextIdx < len(specs) {
					s := specs[nextIdx]
					nextIdx++
					outstanding++
					if _, err := d.StartFlow(s.src, s.dst, s.size, cfg.Sel, s.deliveredHook(onDone), s.completeHook(onDone)); err != nil {
						panic(err)
					}
				}
			}
			launch()
		}
		if remainingWorkers == 0 {
			next()
		}
	}

	perMapper := cfg.TotalBytes / int64(cfg.Mappers)
	readBlocks := int(max64(1, (perMapper+cfg.BlockBytes-1)/cfg.BlockBytes))
	shuffleBytes := max64(1, cfg.TotalBytes/int64(cfg.Mappers)/int64(cfg.Reducers))
	perReducer := cfg.TotalBytes / int64(cfg.Reducers)
	writeBlocks := int(max64(1, (perReducer+cfg.BlockBytes-1)/cfg.BlockBytes))

	finished := false
	stage3 := func() {
		runStage(cfg.Reducers, func(w int) []flowSpec {
			specs := make([]flowSpec, writeBlocks)
			for b := range specs {
				// Reducer writes its output block to a random replica.
				specs[b] = flowSpec{src: reducers[w], dst: randomOther(), size: cfg.BlockBytes, senderSide: true}
			}
			return specs
		}, &times.Write, func() { finished = true })
	}
	stage2 := func() {
		runStage(cfg.Mappers, func(w int) []flowSpec {
			specs := make([]flowSpec, cfg.Reducers)
			for r := range specs {
				// One bucket per (mapper, reducer) pair.
				specs[r] = flowSpec{src: mappers[w], dst: reducers[r], size: shuffleBytes, senderSide: true}
			}
			return specs
		}, &times.Shuffle, stage3)
	}
	runStage(cfg.Mappers, func(w int) []flowSpec {
		specs := make([]flowSpec, readBlocks)
		for b := range specs {
			// Mapper loads an input block from a random remote host;
			// completion is observed at the mapper (the receiver).
			specs[b] = flowSpec{src: randomOther(), dst: mappers[w], size: cfg.BlockBytes}
		}
		return specs
	}, &times.Read, stage2)

	deadline := cfg.deadline()
	for !finished && d.Eng.Now() < deadline {
		if !d.Step() {
			break
		}
	}
	if !finished {
		return times, fmt.Errorf("workload: shuffle incomplete by %v (drops=%d)",
			cfg.deadline(), d.Net.TotalDrops())
	}
	return times, nil
}

// flowSpec is one transfer within a stage. senderSide selects whether the
// worker observes completion at the sender (its own writes) or the
// receiver (its reads).
type flowSpec struct {
	src, dst   graph.NodeID
	size       int64
	senderSide bool
}

func (s flowSpec) deliveredHook(onDone func(*tcp.Flow)) func(*tcp.Flow) {
	if s.senderSide {
		return nil
	}
	return onDone
}

func (s flowSpec) completeHook(onDone func(*tcp.Flow)) func(*tcp.Flow) {
	if s.senderSide {
		return onDone
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
