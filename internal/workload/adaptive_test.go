package workload

import (
	"testing"

	"pnet/internal/graph"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
)

// planePath returns a single path confined to the given plane.
func planePath(t *testing.T, d *Driver, plane int, src, dst graph.NodeID) []graph.Path {
	t.Helper()
	if err := d.PNet.SetClass("_test", []int{plane}); err != nil {
		t.Fatal(err)
	}
	p, ok := d.PNet.ClassPath("_test", src, dst, 0)
	if !ok {
		t.Fatalf("no path on plane %d", plane)
	}
	return []graph.Path{p}
}

func TestAdaptiveAvoidsLoadedPlane(t *testing.T) {
	// Two-plane fat tree: saturate plane 0 with a long flow, then ask
	// the adaptive selector for a path — it must pick plane 1.
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	d := newTestDriver(t, tp)
	sel := NewAdaptiveSelector(d, 8)

	bg := planePath(t, d, 0, tp.Hosts[0], tp.Hosts[12])
	if _, err := d.StartFlowOnPaths(bg, 20_000_000, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Let load accumulate, then decide.
	d.Eng.RunUntil(200 * sim.Microsecond)
	path, err := sel.Pick(tp.Hosts[0], tp.Hosts[12])
	if err != nil {
		t.Fatal(err)
	}
	if path.Plane(tp.G) != 1 {
		t.Errorf("adaptive picked loaded plane %d, want 1", path.Plane(tp.G))
	}
}

func TestAdaptiveDecayForgets(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	d := newTestDriver(t, tp)
	sel := NewAdaptiveSelector(d, 8)

	bg := planePath(t, d, 0, tp.Hosts[0], tp.Hosts[12])
	done := false
	if _, err := d.StartFlowOnPaths(bg, 2_000_000, nil, func(*tcp.Flow) { done = true }); err != nil {
		t.Fatal(err)
	}
	d.Eng.RunUntil(sim.Second)
	if !done {
		t.Fatal("background flow stuck")
	}
	// After decay, stale load is invisible.
	sel.Decay()
	path, err := sel.Pick(tp.Hosts[0], tp.Hosts[12])
	if err != nil {
		t.Fatal(err)
	}
	worst := int64(0)
	for _, l := range path.Links {
		if ld := sel.load(l); ld > worst {
			worst = ld
		}
	}
	if worst != 0 {
		t.Errorf("post-decay load = %d, want 0", worst)
	}
}

func TestStartFlowAdaptiveCompletes(t *testing.T) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	d := newTestDriver(t, tp)
	sel := NewAdaptiveSelector(d, 4)
	done := 0
	for i := 0; i < 4; i++ {
		if _, err := sel.StartFlowAdaptive(tp.Hosts[i], tp.Hosts[15-i], 150_000,
			nil, func(*tcp.Flow) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.MustRunUntil(sim.Second, 4); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Errorf("done = %d", done)
	}
}

func TestAdaptiveSpreadsConcurrentFlows(t *testing.T) {
	// Starting several flows between the same pair back-to-back (with
	// load observed between decisions) should use more than one plane.
	set := topo.FatTreeSet(4, 4, 100)
	tp := set.ParallelHomo
	d := newTestDriver(t, tp)
	sel := NewAdaptiveSelector(d, 8)
	planes := map[int32]bool{}
	for i := 0; i < 4; i++ {
		path, err := sel.Pick(tp.Hosts[0], tp.Hosts[15])
		if err != nil {
			t.Fatal(err)
		}
		planes[path.Plane(tp.G)] = true
		if _, err := d.StartFlowOnPaths([]graph.Path{path}, 1_000_000, nil, nil); err != nil {
			t.Fatal(err)
		}
		d.Eng.RunUntil(d.Eng.Now() + 50*sim.Microsecond)
	}
	if len(planes) < 2 {
		t.Errorf("adaptive used %d planes for 4 sequential flows, want >= 2", len(planes))
	}
}

func TestAdaptivePickNoPath(t *testing.T) {
	// Disconnected pair (all planes down for dst's uplinks).
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	d := newTestDriver(t, tp)
	for p := 0; p < tp.Planes; p++ {
		d.PNet.FailLink(tp.Uplinks[15][p])
		d.PNet.FailLink(tp.Downlinks[15][p])
	}
	sel := NewAdaptiveSelector(d, 4)
	if _, err := sel.Pick(tp.Hosts[0], tp.Hosts[15]); err == nil {
		t.Error("no error for unreachable destination")
	}
}
