package workload

import (
	"fmt"
	"math/rand"

	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/traces"
)

// TraceConfig describes the trace-driven workload of §5.3: every host runs
// a fixed number of concurrent closed loops, each drawing flow sizes from
// a published datacenter distribution and sending to a random destination.
type TraceConfig struct {
	// CDF is the flow-size distribution.
	CDF traces.SizeCDF
	// LoopsPerHost is the closed-loop concurrency (paper: 4).
	LoopsPerHost int
	// FlowsPerLoop is how many flows each loop completes.
	FlowsPerLoop int
	// SizeCap truncates sampled sizes (0 = uncapped). Reduced-scale runs
	// cap the multi-GB tail to keep packet counts tractable; see
	// EXPERIMENTS.md.
	SizeCap int64
	// Sel routes every flow (paper: single-path for closed-loop traces).
	Sel  Selection
	Seed int64
	// Deadline bounds the simulation; zero selects 60 s.
	Deadline sim.Time
}

func (c TraceConfig) deadline() sim.Time {
	if c.Deadline == 0 {
		return 60 * sim.Second
	}
	return c.Deadline
}

// TraceResult carries per-flow observations.
type TraceResult struct {
	// FCTs are flow completion times in seconds.
	FCTs []float64
	// Bytes are the corresponding flow sizes.
	Bytes []int64
}

// RunTrace executes the workload and returns per-flow completion times.
func RunTrace(d *Driver, cfg TraceConfig) (TraceResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	hosts := d.PNet.Topo.Hosts
	n := len(hosts)
	var res TraceResult
	expected := int64(n * cfg.LoopsPerHost * cfg.FlowsPerLoop)

	var startFlow func(client, round int)
	startFlow = func(client, round int) {
		if round >= cfg.FlowsPerLoop {
			return
		}
		dst := rng.Intn(n - 1)
		if dst >= client {
			dst++
		}
		size := cfg.CDF.Sample(rng)
		if cfg.SizeCap > 0 && size > cfg.SizeCap {
			size = cfg.SizeCap
		}
		if size < 1 {
			size = 1
		}
		_, err := d.StartFlow(hosts[client], hosts[dst], size, cfg.Sel, nil,
			func(f *tcp.Flow) {
				res.FCTs = append(res.FCTs, f.FCT().Seconds())
				res.Bytes = append(res.Bytes, size)
				startFlow(client, round+1)
			})
		if err != nil {
			panic(err)
		}
	}

	for h := 0; h < n; h++ {
		for l := 0; l < cfg.LoopsPerHost; l++ {
			startFlow(h, 0)
		}
	}
	deadline := cfg.deadline()
	for int64(len(res.FCTs)) < expected && d.Eng.Now() < deadline {
		if !d.Step() {
			break
		}
	}
	if int64(len(res.FCTs)) < expected {
		return res, fmt.Errorf("workload: %d of %d trace flows completed (drops=%d)",
			len(res.FCTs), expected, d.Net.TotalDrops())
	}
	return res, nil
}
