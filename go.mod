module pnet

go 1.22
