// Package pnet's benchmark suite regenerates every table and figure of
// the paper at reduced ("small") scale — one benchmark per artifact. Each
// benchmark runs the same code path as `pnetbench -exp <id>`; wall-clock
// time per iteration is the cost of regenerating that artifact.
//
//	go test -bench=. -benchmem
//
// Ablation benchmarks (BenchmarkAblation*) quantify the design choices
// called out in DESIGN.md §6.
package pnet

import (
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"pnet/internal/exp"
	"pnet/internal/graph"
	"pnet/internal/mcf"
	"pnet/internal/par"
	"pnet/internal/route"
	"pnet/internal/sim"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func runExperiment(b *testing.B, id string) exp.Table {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tab exp.Table
	for i := 0; i < b.N; i++ {
		tab = e.Run(exp.Params{Scale: exp.ScaleSmall, Seed: 1})
	}
	if len(tab.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	b.Logf("\n%s", tab.String())
	return tab
}

// lastFloat extracts the trailing float from a table cell like "7.29" or
// "2.00*"; used to surface one headline number per benchmark.
func lastFloat(cell string) float64 {
	cell = strings.TrimSuffix(cell, "*")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig6c(b *testing.B)  { runExperiment(b, "fig6c") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)  { runExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { runExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)  { runExperiment(b, "fig8c") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13a(b *testing.B) { runExperiment(b, "fig13a") }
func BenchmarkFig13b(b *testing.B) { runExperiment(b, "fig13b") }
func BenchmarkFig13c(b *testing.B) { runExperiment(b, "fig13c") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFigApp(b *testing.B) { runExperiment(b, "figapp") }

func BenchmarkFig6a(b *testing.B) {
	tab := runExperiment(b, "fig6a")
	// Headline: 8-plane all-to-all throughput (paper: ~8x).
	b.ReportMetric(lastFloat(tab.Rows[3][1]), "x-serial-low")
}

func BenchmarkFig6b(b *testing.B) {
	tab := runExperiment(b, "fig6b")
	// Headline: 8-plane permutation throughput (paper: barely above 1x).
	b.ReportMetric(lastFloat(tab.Rows[3][1]), "x-serial-low")
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkAblationKSPvsPlanes measures the paper's N×8 rule directly:
// the multipath degree needed to reach 95% of an N-plane fat tree's
// capacity, reported as the saturating K per plane count.
func BenchmarkAblationKSPvsPlanes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, planes := range []int{1, 2, 4} {
			set := topo.FatTreeSet(8, planes, 100)
			tp := set.SerialLow
			if planes > 1 {
				tp = set.ParallelHomo
			}
			cs := workload.PermutationCommodities(tp, 100, rng(7))
			lambdaAt := func(k int) float64 {
				paths := route.KSPPathsSeeded(tp.G, cs, k, 3)
				return mcf.FixedPaths(tp.G, cs, paths, mcf.Options{Epsilon: 0.08}).Lambda
			}
			// Saturation is judged against the network's own K=64 value,
			// cancelling the GK approximation's systematic ~ε shortfall.
			ref := lambdaAt(64)
			satK := 0
			for _, k := range []int{4, 8, 16, 32} {
				if lambdaAt(k) >= 0.95*ref {
					satK = k
					break
				}
			}
			if satK == 0 {
				satK = 64
			}
			b.ReportMetric(float64(satK), "satK-"+strconv.Itoa(planes)+"planes")
		}
	}
}

// BenchmarkAblationGKvsExact compares the Garg–Könemann approximation
// against the exact simplex LP on a small instance and reports the ratio.
func BenchmarkAblationGKvsExact(b *testing.B) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	cs := workload.PermutationCommodities(tp, 100, rng(5))
	paths := route.KSPPaths(tp.G, cs, 8)
	exact, err := mcf.FixedPathsExact(tp.G, cs, paths)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		approx := mcf.FixedPaths(tp.G, cs, paths, mcf.Options{Epsilon: 0.05})
		ratio = approx.Lambda / exact.Lambda
	}
	b.ReportMetric(ratio, "gk/exact")
	if ratio < 0.85 || ratio > 1.001 {
		b.Fatalf("GK ratio %v out of tolerance", ratio)
	}
}

// BenchmarkAblationECMPvsRoundRobin compares ECMP hashing against
// round-robin plane rotation for permutation traffic on a 4-plane fat
// tree (both pinned single path; metric = achieved throughput ratio
// round-robin / ECMP).
func BenchmarkAblationECMPvsRoundRobin(b *testing.B) {
	set := topo.FatTreeSet(8, 4, 100)
	tp := set.ParallelHomo
	var ratio float64
	for i := 0; i < b.N; i++ {
		cs := workload.PermutationCommodities(tp, 0, rng(11))
		ecmpPaths := route.ECMPPaths(tp.G, cs, 9)
		ecmp := mcf.MaxMinPinned(tp.G, cs, ecmpPaths).Total

		// Round-robin: commodity i uses plane i mod planes, then the
		// deterministic shortest path within it.
		rrPaths := make([][]graph.Path, len(cs))
		masks := tp.G.PlaneMasks()
		for j, c := range cs {
			plane := j % tp.Planes
			ps := graph.KShortestPathsMasked(tp.G, c.Src, c.Dst, 1, masks[plane])
			rrPaths[j] = ps
		}
		rr := mcf.MaxMinPinned(tp.G, cs, rrPaths).Total
		ratio = rr / ecmp
	}
	b.ReportMetric(ratio, "rr/ecmp")
}

// BenchmarkAblationLowestHopPlane quantifies the heterogeneous P-Net's
// shortest-path advantage: mean hop count of best-across-planes paths vs
// plane-0-only paths.
func BenchmarkAblationLowestHopPlane(b *testing.B) {
	set := topo.ScaledJellyfish(24, 4, 100, 7)
	tp := set.ParallelHetero
	var best, p0 float64
	for i := 0; i < b.N; i++ {
		pairs := workload.RandomPairs(tp, 500, rng(3))
		bestSum, p0Sum := 0.0, 0.0
		mask := tp.G.PlaneMasks()[0]
		for _, pr := range pairs {
			bp, _ := graph.ShortestPath(tp.G, pr[0], pr[1])
			bestSum += float64(bp.Len())
			zp := graph.KShortestPathsMasked(tp.G, pr[0], pr[1], 1, mask)
			p0Sum += float64(zp[0].Len())
		}
		best = bestSum / float64(len(pairs))
		p0 = p0Sum / float64(len(pairs))
	}
	b.ReportMetric(best, "hops-best-plane")
	b.ReportMetric(p0, "hops-plane0")
}

// --- Hot-path benchmarks -------------------------------------------------
//
// These two isolate the simulator's inner loops (event dispatch and GK
// phase work) from experiment setup, so regressions in either show up as
// ns/op and allocs/op rather than being buried in whole-figure times.
// `pnetstat summary -gobench` folds their output into the run report the
// perf gate compares.

// BenchmarkEngineEventLoop measures bare event dispatch: 256 concurrent
// self-rescheduling timer chains drain exactly b.N events through the
// heap, which is the engine pattern every packet transmission follows.
func BenchmarkEngineEventLoop(b *testing.B) {
	const chains = 256
	eng := sim.NewEngine()
	left := b.N - chains
	var tick func()
	tick = func() {
		if left > 0 {
			left--
			eng.After(sim.Microsecond, tick)
		}
	}
	for i := 0; i < chains && i < b.N; i++ {
		eng.After(sim.Time(i)*sim.Nanosecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
	b.StopTimer()
	if fired := eng.EventsFired(); fired != uint64(b.N) {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// BenchmarkGKSolverPhase measures one Garg–Könemann solve on a fixed
// 2-plane fat-tree instance and reports per-phase cost, the unit the
// solver's complexity bound is stated in.
func BenchmarkGKSolverPhase(b *testing.B) {
	set := topo.FatTreeSet(4, 2, 100)
	tp := set.ParallelHomo
	cs := workload.PermutationCommodities(tp, 100, rng(5))
	paths := route.KSPPaths(tp.G, cs, 8)
	var phases, iters int64
	var wall float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := mcf.FixedPaths(tp.G, cs, paths, mcf.Options{Epsilon: 0.1})
		phases += int64(r.Stats.Phases)
		iters += r.Stats.Iterations
		wall += r.Stats.Wall.Seconds()
	}
	b.StopTimer()
	if phases == 0 {
		b.Fatal("solver did no phases")
	}
	b.ReportMetric(float64(phases)/float64(b.N), "phases")
	b.ReportMetric(float64(iters)/float64(b.N), "iters")
	b.ReportMetric(wall*1e9/float64(phases), "ns/phase")
}

// pingPong bounces a packet between its two endpoints forever, so a
// sharded engine driven by the window protocol never drains — the
// benchmark loop decides when to stop. Round trips keep the per-engine
// event and packet pools balanced (a one-way stream would migrate one
// pool entry downstream per packet), so the steady state is
// allocation-free, like a transport exchanging data and ACKs.
type pingPong struct {
	net      *sim.Network
	fwd, rev []graph.LinkID
	back     bool
}

func (pp *pingPong) HandlePacket(p *sim.Packet) {
	if pp.back {
		p.Route = pp.fwd
	} else {
		p.Route = pp.rev
	}
	pp.back = !pp.back
	pp.net.Send(p)
}

// shardPingPong builds a single-switch star of 2*pairs hosts sharded
// into hostShards host sub-shards plus one plane shard, with one
// ping-pong packet in flight per host pair. Hosts round-robin onto the
// sub-shards, so every window has events on several engines — the k-way
// merge shape EndWindow pays for.
func shardPingPong(pairs, hostShards int) *sim.ShardSet {
	sw := graph.NodeID(2 * pairs)
	g := graph.New(2*pairs + 1)
	up := make([]graph.LinkID, 2*pairs)
	down := make([]graph.LinkID, 2*pairs)
	for h := 0; h < 2*pairs; h++ {
		g.SetTransit(graph.NodeID(h), false)
		up[h], down[h] = g.AddDuplex(graph.NodeID(h), sw, 100, 0)
	}
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{PropDelay: 500 * sim.Nanosecond})
	hostSide := func(id graph.LinkID) bool { return net.G.Link(id).Src != sw }
	set := sim.NewShardSet(eng, net, 1, hostShards, 0, hostSide)
	for i := 0; i < pairs; i++ {
		a, b := 2*i, 2*i+1
		pp := &pingPong{
			net: net,
			fwd: []graph.LinkID{up[a], down[b]},
			rev: []graph.LinkID{up[b], down[a]},
		}
		p := net.NewPacket()
		p.Size = 1500
		p.Route = pp.fwd
		p.Deliver = pp
		net.Send(p)
	}
	return set
}

// benchDeadline is far past any event a shard-window benchmark fires,
// so Advance never reports done while ping-pong traffic is in flight.
const benchDeadline = sim.Time(1) << 60

// runShardWindows drives the window protocol (the pdes.Runner.RunUntil
// loop with the shards run inline) until at least events have fired,
// and returns the exact count.
func runShardWindows(set *sim.ShardSet, events int) int {
	fired := 0
	for fired < events {
		limit, parallel, done := set.Advance(benchDeadline)
		if done {
			break
		}
		if !parallel {
			if !set.StepSerial() {
				break
			}
			fired++
			continue
		}
		set.BeginWindow(limit)
		for i := 0; i < set.Engines(); i++ {
			set.RunShard(i, limit)
		}
		fired += set.EndWindow()
	}
	return fired
}

// BenchmarkShardWindow measures event dispatch through the full window
// protocol — Advance, BeginWindow, RunShard, EndWindow — on a
// 4-sub-shard engine with ping-pong traffic on every sub-shard: the
// sharded counterpart to BenchmarkEngineEventLoop. allocs/op must stay
// 0 once the pools are warm (gated; see TestWindowPathZeroAlloc for
// the per-allocation breakdown).
func BenchmarkShardWindow(b *testing.B) {
	set := shardPingPong(4, 4)
	runShardWindows(set, 4096) // warm pools, window logs, merge scratch
	b.ReportAllocs()
	b.ResetTimer()
	fired := runShardWindows(set, b.N)
	b.StopTimer()
	if fired < b.N {
		b.Fatalf("fired %d events, want >= %d", fired, b.N)
	}
}

// BenchmarkEndWindowMerge isolates the barrier: windows are opened and
// run off the clock, and only EndWindow — the k-way merge, fingerprint
// fold, seq renumbering, and commit — is timed, so merge-cost
// regressions show up independently of the in-window event loop.
// Reports events/window for scale.
func BenchmarkEndWindowMerge(b *testing.B) {
	set := shardPingPong(4, 4)
	runShardWindows(set, 4096) // warm pools, window logs, merge scratch
	events := 0
	b.ReportAllocs()
	b.ResetTimer()
	b.StopTimer()
	for w := 0; w < b.N; {
		limit, parallel, done := set.Advance(benchDeadline)
		if done {
			b.Fatal("traffic drained")
		}
		if !parallel {
			set.StepSerial()
			continue
		}
		set.BeginWindow(limit)
		for i := 0; i < set.Engines(); i++ {
			set.RunShard(i, limit)
		}
		b.StartTimer()
		n := set.EndWindow()
		b.StopTimer()
		events += n
		w++
	}
	if events == 0 {
		b.Fatal("no events committed")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/window")
}

// BenchmarkPlacementPlan measures the LPT placement planner on a
// full-scale-shaped input: 512 colocation groups over 1024 hosts packed
// onto 8 sub-shards plus 8 planes onto 4 shards — the whole cost a
// balanced or replayed placement adds to driver materialization. The
// planner runs once per simulation, so allocs/op is gated but the bar is
// per-plan, not zero.
func BenchmarkPlacementPlan(b *testing.B) {
	const hosts, groupsN, hostShards = 1024, 512, 8
	groups := make([][]graph.NodeID, groupsN)
	weights := make(map[graph.NodeID]int64, hosts)
	for h := 0; h < hosts; h++ {
		id := graph.NodeID(h)
		g := h % groupsN
		groups[g] = append(groups[g], id)
		// Deterministic skew: a few heavy hosts, a long light tail.
		weights[id] = int64(1 + (h%7)*(h%13))
	}
	planeWeights := map[int32]int64{0: 100, 1: 100, 2: 400, 3: 400, 4: 25, 5: 25, 6: 900, 7: 50}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.PlanHosts(groups, weights, nil, hostShards); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.PlanPlanes(planeWeights, nil, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// shardPingPongPlaced is shardPingPong with a skewed explicit placement:
// pair i sends 1+i%4 packets, and the LPT plan from those weights packs
// the heavy pairs apart. Exercises the placed bindShards path end to end.
func shardPingPongPlaced(pairs, hostShards int) *sim.ShardSet {
	sw := graph.NodeID(2 * pairs)
	g := graph.New(2*pairs + 1)
	up := make([]graph.LinkID, 2*pairs)
	down := make([]graph.LinkID, 2*pairs)
	for h := 0; h < 2*pairs; h++ {
		g.SetTransit(graph.NodeID(h), false)
		up[h], down[h] = g.AddDuplex(graph.NodeID(h), sw, 100, 0)
	}
	eng := sim.NewEngine()
	net := sim.NewNetwork(eng, g, sim.Config{PropDelay: 500 * sim.Nanosecond})
	groups := make([][]graph.NodeID, pairs)
	weights := map[graph.NodeID]int64{}
	for i := 0; i < pairs; i++ {
		a, b := graph.NodeID(2*i), graph.NodeID(2*i+1)
		groups[i] = []graph.NodeID{a, b}
		weights[a], weights[b] = int64(1+i%4), int64(1+i%4)
	}
	hostMap, err := sim.PlanHosts(groups, weights, nil, hostShards)
	if err != nil {
		panic(err)
	}
	hostSide := func(id graph.LinkID) bool { return net.G.Link(id).Src != sw }
	set := sim.NewShardSetPlaced(eng, net, 1, hostShards, 0, hostSide, &sim.Placement{Hosts: hostMap})
	for i := 0; i < pairs; i++ {
		a, b := 2*i, 2*i+1
		pp := &pingPong{
			net: net,
			fwd: []graph.LinkID{up[a], down[b]},
			rev: []graph.LinkID{up[b], down[a]},
		}
		for n := 0; n <= i%4; n++ {
			p := net.NewPacket()
			p.Size = 1500
			p.Route = pp.fwd
			p.Deliver = pp
			net.Send(p)
		}
	}
	return set
}

// BenchmarkShardWindowBalanced is BenchmarkShardWindow through an
// explicit LPT placement over skewed per-pair traffic: same window
// protocol, non-default host binding. The spread against
// BenchmarkShardWindow is the dispatch cost of placed binding (none
// expected — the bind map is resolved before the first window).
// allocs/op must stay 0 once the pools are warm (gated).
func BenchmarkShardWindowBalanced(b *testing.B) {
	set := shardPingPongPlaced(8, 4)
	runShardWindows(set, 4096) // warm pools, window logs, merge scratch
	b.ReportAllocs()
	b.ResetTimer()
	fired := runShardWindows(set, b.N)
	b.StopTimer()
	if fired < b.N {
		b.Fatalf("fired %d events, want >= %d", fired, b.N)
	}
}

// --- Parallel execution benchmarks ---------------------------------------
//
// These measure the multicore sweep layer (internal/par): the same work
// run serially (-workers equivalent of 1) and at full width, with the
// serial/parallel wall-clock ratio reported as "speedup-x". The ratio is
// ~1.0 on a single-core runner and should exceed 2 on 4+ cores; it is a
// wall-clock quantity, so the perf gate records it without gating it.
// Neither benchmark calls ReportAllocs: goroutine fan-out makes allocs
// scheduling-dependent, and allocs_per_op is always gated.

// BenchmarkParallelSweep runs fig8c — self-contained (network, K) sweep
// cells, the experiment layer's canonical fan-out shape — serially and
// in parallel. The tables must match; the wall clocks should not.
func BenchmarkParallelSweep(b *testing.B) {
	e, ok := exp.ByID("fig8c")
	if !ok {
		b.Fatal("fig8c not registered")
	}
	run := func(workers int) (exp.Table, time.Duration) {
		par.SetLimit(workers)
		defer par.SetLimit(0)
		start := time.Now()
		tab := e.Run(exp.Params{Scale: exp.ScaleSmall, Seed: 1, Workers: workers})
		return tab, time.Since(start)
	}
	var serial, wide time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, sd := run(1)
		wt, wd := run(runtime.NumCPU())
		serial += sd
		wide += wd
		if st.String() != wt.String() {
			b.Fatal("serial and parallel sweeps disagree")
		}
	}
	b.StopTimer()
	if wide > 0 {
		b.ReportMetric(float64(serial)/float64(wide), "speedup-x")
	}
}

// BenchmarkParallelKSP runs the per-commodity KSP fan-out (route's
// hottest path-computation loop, including the per-(src,dst) memo and
// the cached plane masks) serially and in parallel over a permutation's
// worth of commodities.
func BenchmarkParallelKSP(b *testing.B) {
	set := topo.FatTreeSet(8, 4, 100)
	tp := set.ParallelHomo
	cs := workload.PermutationCommodities(tp, 0, rng(7))
	run := func(workers int) ([][]graph.Path, time.Duration) {
		par.SetLimit(workers)
		defer par.SetLimit(0)
		start := time.Now()
		paths := route.KSPPaths(tp.G, cs, 16)
		return paths, time.Since(start)
	}
	var serial, wide time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, sd := run(1)
		wp, wd := run(runtime.NumCPU())
		serial += sd
		wide += wd
		for j := range sp {
			if len(sp[j]) != len(wp[j]) {
				b.Fatal("serial and parallel KSP disagree")
			}
		}
	}
	b.StopTimer()
	if wide > 0 {
		b.ReportMetric(float64(serial)/float64(wide), "speedup-x")
	}
}

// --- Solver hot-path benchmarks ------------------------------------------
//
// These isolate the zero-allocation solver path introduced with the CSR
// frozen view (DESIGN.md "Solver hot path"): the Free solve end to end,
// one warm oracle tree, and serial Yen's on the frozen view. FreeSolve
// and KSPFrozen are the before/after headline numbers quoted in the
// README; OracleTree's allocs/op is the regression guard for the scratch
// space (always gated by the perf gate).

// BenchmarkFreeSolve measures the unrestricted Garg–Könemann solve on the
// Figure 7 instance shape: rack-level all-to-all on a 2-plane Jellyfish,
// where the Dijkstra oracle and its path caches dominate.
func BenchmarkFreeSolve(b *testing.B) {
	set := topo.JellyfishSet(12, 3, 2, 2, 100, 7)
	g, cs := workload.RackAllToAll(set.ParallelHomo, 10)
	var lambda float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lambda = mcf.Free(g, cs, mcf.Options{Epsilon: 0.08}).Lambda
	}
	b.StopTimer()
	if lambda == 0 {
		b.Fatal("solve failed")
	}
	b.ReportMetric(lambda, "lambda")
}

// BenchmarkOracleTree measures one warm full-tree Dijkstra on the frozen
// view — the unit of work behind every oracle refresh. allocs/op must be
// exactly 0 once the scratch space is warm.
func BenchmarkOracleTree(b *testing.B) {
	tp := topo.FatTreeSet(8, 2, 100).ParallelHomo
	fz := tp.G.Frozen()
	r := rng(3)
	w := make([]float64, fz.NumLinks())
	for i := range w {
		w[i] = 0.5 + r.Float64()
	}
	s := graph.NewScratch()
	fz.Dijkstra(s, 0, w, -1) // warm: grow dist/parent/heap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fz.Dijkstra(s, 0, w, -1)
	}
	b.StopTimer()
	if !s.Reached(graph.NodeID(fz.NumNodes() - 1)) {
		b.Fatal("tree incomplete")
	}
}

// BenchmarkKSPFrozen measures serial Yen's algorithm (k=8) over 32
// commodities on the frozen view — the spur-search loop that the CSR BFS
// and pooled scratch accelerate, without the parallel fan-out of
// BenchmarkParallelKSP masking per-search cost.
func BenchmarkKSPFrozen(b *testing.B) {
	tp := topo.FatTreeSet(8, 2, 100).ParallelHomo
	cs := workload.PermutationCommodities(tp, 0, rng(7))[:32]
	par.SetLimit(1)
	defer par.SetLimit(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := route.KSPPaths(tp.G, cs, 8)
		if len(paths) != len(cs) {
			b.Fatal("missing path sets")
		}
	}
}

func rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
