// Command pnettopo inspects P-Net topologies: sizes, per-plane structure,
// hop-count distributions, host redundancy (link-disjoint paths), and the
// §6.1 deployment plans with and without cable bundling and patch panels.
//
// Usage:
//
//	pnettopo -topo fattree -k 8 -planes 4
//	pnettopo -topo jellyfish -switches 98 -degree 7 -hostsper 7 -planes 4 -hetero
//	pnettopo -topo mixed -k 8 -planes 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pnet/internal/graph"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func main() {
	var (
		kind     = flag.String("topo", "fattree", "fattree | jellyfish | mixed")
		k        = flag.Int("k", 8, "fat tree arity (fattree/mixed)")
		switches = flag.Int("switches", 24, "jellyfish switches")
		degree   = flag.Int("degree", 4, "jellyfish network degree")
		hostsPer = flag.Int("hostsper", 4, "jellyfish hosts per switch")
		planes   = flag.Int("planes", 4, "number of dataplanes")
		hetero   = flag.Bool("hetero", false, "heterogeneous planes (jellyfish)")
		speed    = flag.Float64("speed", 100, "link speed in Gb/s")
		seed     = flag.Int64("seed", 1, "random seed")
		pairs    = flag.Int("pairs", 1000, "sampled host pairs for hop statistics")
	)
	flag.Parse()

	var tp *topo.Topology
	switch *kind {
	case "fattree":
		set := topo.FatTreeSet(*k, *planes, *speed)
		if *planes == 1 {
			tp = set.SerialLow
		} else {
			tp = set.ParallelHomo
		}
	case "jellyfish":
		set := topo.JellyfishSet(*switches, *degree, *hostsPer, *planes, *speed, *seed)
		switch {
		case *planes == 1:
			tp = set.SerialLow
		case *hetero:
			tp = set.ParallelHetero
		default:
			tp = set.ParallelHomo
		}
	case "mixed":
		tp = topo.MixedPNet(*k, *planes, *speed, *seed)
	default:
		fmt.Fprintf(os.Stderr, "pnettopo: unknown topology %q\n", *kind)
		os.Exit(2)
	}

	fmt.Printf("topology: %s\n", tp.Name)
	fmt.Printf("  hosts: %d   racks: %d   planes: %d   host bandwidth: %.0f Gb/s\n",
		tp.NumHosts(), tp.NumRacks, tp.Planes, tp.HostBandwidth())
	fmt.Printf("  nodes: %d   directed links: %d\n", tp.G.NumNodes(), tp.G.NumLinks())
	for p := 0; p < tp.Planes; p++ {
		fmt.Printf("  plane %d: %d switches\n", p, tp.SwitchCount[p])
	}

	// Hop-count distribution over sampled pairs.
	rng := rand.New(rand.NewSource(*seed))
	sample := workload.RandomPairs(tp, *pairs, rng)
	hist := map[int]int{}
	total, count := 0, 0
	for _, pr := range sample {
		if p, ok := graph.ShortestPath(tp.G, pr[0], pr[1]); ok {
			hist[p.Len()]++
			total += p.Len()
			count++
		}
	}
	fmt.Printf("\nshortest-path hop distribution (%d sampled pairs):\n", count)
	for h := 0; h <= maxKey(hist); h++ {
		if n := hist[h]; n > 0 {
			fmt.Printf("  %2d hops: %5.1f%%  %s\n", h, 100*float64(n)/float64(count),
				bar(40*n/count))
		}
	}
	fmt.Printf("  mean: %.3f hops\n", float64(total)/float64(count))

	// Host redundancy.
	if count > 0 {
		pr := sample[0]
		dj := graph.EdgeDisjointPaths(tp.G, pr[0], pr[1], 0)
		fmt.Printf("\nlink-disjoint host-to-host paths: %d (one per plane)\n", dj)
	}

	// Deployment plans.
	fmt.Println("\ndeployment plans (§6.1):")
	fmt.Printf("  %-22s %12s %12s %12s %8s %14s\n",
		"options", "host cables", "core cables", "panel ports", "boxes", "transceivers")
	for _, o := range []struct {
		label string
		opts  topo.DeployOptions
	}{
		{"naive", topo.DeployOptions{}},
		{"bundled", topo.DeployOptions{Bundle: true}},
		{"bundled+patch-panel", topo.DeployOptions{Bundle: true, PatchPanel: true}},
	} {
		d := topo.PlanDeployment(tp, o.opts)
		fmt.Printf("  %-22s %12d %12d %12d %8d %14d\n",
			o.label, d.HostCables, d.CoreCables, d.PatchPanelPorts, d.SwitchBoxes, d.Transceivers)
	}
}

func maxKey(m map[int]int) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

func bar(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
