package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pnet/internal/obs"
	"pnet/internal/sim"
)

// replayJSONL folds synthetic packet events through a real fingerprinter
// and writes the resulting records as JSONL: checkpoints (and a flow so
// the stream summarizes) to one file, the journal to another.
func replayJSONL(t *testing.T, dir, name string, n, swapAt int, epoch int64) (metrics, journal string) {
	t.Helper()
	f := sim.NewFingerprinter(epoch)
	var jlines []any
	f.Journal = func(e sim.FingerprintJournalEntry) {
		jlines = append(jlines, obs.FingerprintEventRecord{
			Type: obs.KindFPEvent, Net: 0, Epoch: e.Epoch, I: e.Index,
			TPs: int64(e.T), Kind: e.Kind.String(), Plane: e.Plane,
			Link: e.Link, Flow: e.Flow, Seq: e.Seq, Size: e.Size,
			Hash: obs.FormatHash(e.Hash),
		})
	}
	for i := 0; i < n; i++ {
		j := i
		if swapAt >= 0 {
			if i == swapAt {
				j = swapAt + 1
			} else if i == swapAt+1 {
				j = swapAt
			}
		}
		f.Fold(sim.Time(1000*(i+1)), sim.EvHop, int32(j%2), int64(j%5), int64(j%7+1), int64(j), 1500)
	}
	var mlines []any
	mlines = append(mlines, obs.FlowRecord{Type: obs.KindFlow, ID: 1, TPs: 1000 * int64(n), Transport: "tcp", Bytes: 1500, FCT: 1e-6})
	// Flow 3 carries spans so divergence can print the guilty flow's
	// FCT decomposition next to the localized event (synthetic events
	// use flow = i%7+1, so the perturbed pair at i=100 touches flow 3).
	mlines = append(mlines, obs.FlowRecord{Type: obs.KindFlow, ID: 3, TPs: 1000 * int64(n), Transport: "tcp", Bytes: 3000, FCT: 2e-6,
		Spans: []obs.SpanShare{{Component: "queue", Plane: 1, Ps: 2_000_000}}})
	for _, cp := range f.Checkpoints() {
		r := obs.FingerprintRecord{
			Type: obs.KindFingerprint, Net: 0, Epoch: cp.Epoch, Events: cp.Events,
			TPs: int64(cp.T), EpochEvents: epoch, Hash: obs.FormatHash(cp.Global),
			Host: obs.FormatHash(cp.Host), Final: cp.Partial,
		}
		for pl, h := range cp.Planes {
			r.Planes = append(r.Planes, obs.PlaneHash{Plane: int32(pl), Hash: obs.FormatHash(h)})
		}
		mlines = append(mlines, r)
	}
	write := func(suffix string, lines []any) string {
		var b bytes.Buffer
		for _, l := range lines {
			raw, err := json.Marshal(l)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(raw)
			b.WriteByte('\n')
		}
		path := filepath.Join(dir, name+suffix)
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write(".jsonl", mlines), write(".journal.jsonl", jlines)
}

func TestFingerprintCommand(t *testing.T) {
	dir := t.TempDir()
	m, _ := replayJSONL(t, dir, "a", 100, -1, 32)
	var out, errb bytes.Buffer
	if code := run2(t, []string{"fingerprint", m}, &out, &errb); code != 0 {
		t.Fatalf("fingerprint exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"global ", "host   ", "plane 0", "plane 1", "100 events"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// A run without fingerprints is a usage error with a pointer.
	noFP := writeRun(t, dir, "plain.json", testSummary())
	out.Reset()
	errb.Reset()
	if code := run2(t, []string{"fingerprint", noFP}, &out, &errb); code != 2 {
		t.Fatalf("fingerprint on fp-free run exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-fingerprint") {
		t.Errorf("error lacks remediation: %s", errb.String())
	}
}

func TestDivergenceCommand(t *testing.T) {
	dir := t.TempDir()
	base, baseJ := replayJSONL(t, dir, "base", 200, -1, 32)
	same, _ := replayJSONL(t, dir, "same", 200, -1, 32)
	pert, pertJ := replayJSONL(t, dir, "pert", 200, 100, 32)

	var out, errb bytes.Buffer
	if code := run2(t, []string{"divergence", base, same}, &out, &errb); code != 0 {
		t.Fatalf("matching runs exited %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "MATCH") {
		t.Errorf("output = %q", out.String())
	}

	out.Reset()
	errb.Reset()
	code := run2(t, []string{"divergence", "-k", "2", "-events-base", baseJ, "-events-cur", pertJ, base, pert}, &out, &errb)
	if code != 1 {
		t.Fatalf("diverged runs exited %d, want 1: %s%s", code, out.String(), errb.String())
	}
	text := out.String()
	// Events 100/101 land in epoch 3 at indices 4/5 with a 32-event
	// cadence; flows are i%7+1 = 3 and 4.
	for _, want := range []string{"DIVERGED", "epoch 3", "first divergent event: epoch 3 index 4", "flow=3", "flow=4",
		"flow 3 (base)", "queue[p1]=2000000ps"} {
		if !strings.Contains(text, want) {
			t.Errorf("divergence output missing %q:\n%s", want, text)
		}
	}

	// Without journals the epoch is still localized, with remediation.
	out.Reset()
	errb.Reset()
	if code := run2(t, []string{"divergence", base, pert}, &out, &errb); code != 1 {
		t.Fatalf("exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "-fingerprint-journal") {
		t.Errorf("journal-free output lacks remediation:\n%s", out.String())
	}
}

func TestExportTraceCommand(t *testing.T) {
	dir := t.TempDir()
	m, _ := replayJSONL(t, dir, "a", 50, -1, 32)
	outFile := filepath.Join(dir, "trace.json")
	var out, errb bytes.Buffer
	if code := run2(t, []string{"export-trace", "-o", outFile, m}, &out, &errb); code != 0 {
		t.Fatalf("export-trace exited %d: %s", code, errb.String())
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	// A RunSummary JSON is the wrong input; the error must say so.
	plain := writeRun(t, dir, "plain.json", testSummary())
	out.Reset()
	errb.Reset()
	if code := run2(t, []string{"export-trace", plain}, &out, &errb); code != 2 {
		t.Fatalf("export-trace on summary JSON exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "JSONL") {
		t.Errorf("error lacks input guidance: %s", errb.String())
	}
}
