package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pnet/internal/report"
)

func spanSummary() report.RunSummary {
	s := testSummary()
	s.Attribution = &report.AttributionSummary{
		Flows:    100,
		TotalSec: 2.0,
		Overall: []report.AttributionCell{
			{Component: "queue", Plane: 0, Seconds: 0.5, Share: 0.25},
			{Component: "serialize", Plane: 0, Seconds: 1.0, Share: 0.5},
			{Component: "rto_stall", Plane: -1, Seconds: 0.5, Share: 0.25},
		},
	}
	s.Profile = &report.ProfileSummary{
		Engines: 1, Events: 1000, SimSec: 0.01,
		Bins: []report.ProfileBinSummary{
			{Kind: "hop", Plane: 0, Events: 900},
			{Kind: "deliver", Plane: 0, Events: 100},
		},
		Planes:            []report.ProfilePlane{{Plane: 0, Events: 900, EventsPerSimSec: 9e4}},
		HostEvents:        100,
		HostFrac:          0.1,
		SpeedupAmdahl:     1.0,
		SpeedupEventBound: 1.0,
	}
	return s
}

func TestAttributionCommand(t *testing.T) {
	dir := t.TempDir()
	run := writeRun(t, dir, "r.json", spanSummary())

	var out, errb bytes.Buffer
	if code := run2(t, []string{"attribution", run}, &out, &errb); code != 0 {
		t.Fatalf("attribution exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"rto_stall", "serialize", "25.00%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("attribution output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run2(t, []string{"attribution", "-json", run}, &out, &errb); code != 0 {
		t.Fatalf("attribution -json exited %d: %s", code, errb.String())
	}
	var a report.AttributionSummary
	if err := json.Unmarshal(out.Bytes(), &a); err != nil {
		t.Fatalf("attribution -json output does not decode: %v", err)
	}
	if a.Flows != 100 || len(a.Overall) != 3 {
		t.Errorf("decoded attribution = %+v", a)
	}
}

func TestAttributionCommandNoSpans(t *testing.T) {
	dir := t.TempDir()
	run := writeRun(t, dir, "r.json", testSummary())
	var out, errb bytes.Buffer
	if code := run2(t, []string{"attribution", run}, &out, &errb); code != 0 {
		t.Fatalf("attribution exited %d on a span-less run: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "-spans") {
		t.Errorf("span-less output should point at pnetbench -spans:\n%s", out.String())
	}
}

func TestProfileCommand(t *testing.T) {
	dir := t.TempDir()
	run := writeRun(t, dir, "r.json", spanSummary())

	var out, errb bytes.Buffer
	if code := run2(t, []string{"profile", run}, &out, &errb); code != 0 {
		t.Fatalf("profile exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"host boundary", "pdes speedup bound", "plane 0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("profile output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run2(t, []string{"profile", "-json", run}, &out, &errb); code != 0 {
		t.Fatalf("profile -json exited %d: %s", code, errb.String())
	}
	var p report.ProfileSummary
	if err := json.Unmarshal(out.Bytes(), &p); err != nil {
		t.Fatalf("profile -json output does not decode: %v", err)
	}
	if p.Events != 1000 || p.HostEvents != 100 {
		t.Errorf("decoded profile = %+v", p)
	}
}

func TestProfileAchievedSpeedup(t *testing.T) {
	dir := t.TempDir()
	base := spanSummary()
	base.Engine.RunWallSec = 4.0
	cur := spanSummary()
	cur.Engine.RunWallSec = 2.0
	cur.Shards = 4
	basePath := writeRun(t, dir, "serial.json", base)
	curPath := writeRun(t, dir, "sharded.json", cur)

	var out, errb bytes.Buffer
	if code := run2(t, []string{"profile", "-serial", basePath, curPath}, &out, &errb); code != 0 {
		t.Fatalf("profile -serial exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"achieved speedup: 2.00x", "shards=4", "predicted"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("speedup output missing %q:\n%s", want, out.String())
		}
	}

	// The gate passes when the achieved speedup clears the floor...
	out.Reset()
	errb.Reset()
	if code := run2(t, []string{"profile", "-serial", basePath, "-min-speedup", "1.5", curPath}, &out, &errb); code != 0 {
		t.Errorf("min-speedup 1.5 against 2.00x exited %d: %s", code, errb.String())
	}
	// ...and fails with exit 1 when it does not.
	out.Reset()
	errb.Reset()
	if code := run2(t, []string{"profile", "-serial", basePath, "-min-speedup", "3", curPath}, &out, &errb); code != 1 {
		t.Errorf("min-speedup 3 against 2.00x exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "below required") {
		t.Errorf("failed gate should say so on stderr: %s", errb.String())
	}

	// A baseline without run_wall_s cannot yield a ratio: usage error.
	old := spanSummary() // RunWallSec zero, as pre-sharding runs record
	oldPath := writeRun(t, dir, "old.json", old)
	if code := run2(t, []string{"profile", "-serial", oldPath, curPath}, &out, &errb); code != 2 {
		t.Errorf("missing run_wall_s exited %d, want 2", code)
	}

	// -min-speedup is meaningless without a baseline to compare against.
	if code := run2(t, []string{"profile", "-min-speedup", "2", curPath}, &out, &errb); code != 2 {
		t.Errorf("-min-speedup without -serial exited %d, want 2", code)
	}
}

func TestAttributionUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run2(t, []string{"attribution"}, &out, &errb); code != 2 {
		t.Errorf("attribution without file exited %d, want 2", code)
	}
	if code := run2(t, []string{"profile"}, &out, &errb); code != 2 {
		t.Errorf("profile without file exited %d, want 2", code)
	}
}
