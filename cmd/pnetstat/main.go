// Command pnetstat turns the telemetry that pnetbench emits into
// decisions: human-readable run summaries, cross-run diffs, and a
// perf-regression gate against the repository's committed BENCH_*.json
// trajectory.
//
// Usage:
//
//	pnetstat summary [-json] [-o out.json] [-gobench bench.txt] <run>
//	pnetstat attribution [-json] <run>
//	pnetstat profile [-json] [-min-bound X] [-emit-placement p.json] [-serial base.json [-min-speedup X]] <run>
//	pnetstat fingerprint [-json] <run>
//	pnetstat divergence [-k 5] [-events-base j.jsonl] [-events-cur j.jsonl] <base> <cur>
//	pnetstat export-trace [-o trace.json] <metrics.jsonl>
//	pnetstat diff [-threshold 0.1] [-gate-wall] <base> <cur>
//	pnetstat gate [-dir .] [-threshold 0.1] [-gobench bench.txt] <run>
//	pnetstat baseline [-dir .] <run>
//
// <run>, <base>, and <cur> accept either a RunSummary JSON (written by
// `pnetbench -report` or by `pnetstat summary -o`) or a raw metrics
// JSONL stream (`pnetbench -metrics`), auto-detected. `gate` compares
// the run against the newest BENCH_*.json in -dir and exits 1 when a
// gated metric regresses beyond the threshold; `baseline` records a run
// into the trajectory. Exit codes: 0 ok, 1 regression, 2 usage/input
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pnet/internal/pdes"
	"pnet/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: pnetstat <command> [flags] <file...>

commands:
  summary [-json] [-o out.json] [-gobench bench.txt] <run>
      print a run summary (FCT percentiles, plane shares, solver/engine
      stats); -o writes the summary JSON, -gobench merges go test -bench
      results into it
  attribution [-json] <run>
      print the latency attribution tables: where every second of FCT
      went (queueing, serialization, propagation, RTO stalls, repath
      gaps, host waits) per plane, overall and for the p99.9 tail;
      needs a run recorded with pnetbench -spans
  profile [-json] [-min-bound X] [-emit-placement p.json] [-serial base.json [-min-speedup X]] <run>
      print the event-loop profile: per-(kind, plane) event counts and
      wall time, host-boundary fraction (with the per-sub-shard split
      when the run used -host-shards), shard occupancy imbalance, and
      the predicted PDES speedup bounds for per-plane event queues;
      needs pnetbench -spans. -emit-placement exports the measured
      per-host / per-plane occupancy as a placement JSON that
      pnetbench -placement replays as exact planner weights.
      -min-bound exits 1 when the predicted critical-path event bound
      falls short; -serial compares a serial baseline's engine wall time
      against this (sharded) run's and prints the ACHIEVED speedup next
      to the predictions; -min-speedup exits 1 when it falls short
  fingerprint [-json] <run>
      print the determinism fingerprint: the XOR-folded global, host,
      and per-plane hash chains; needs pnetbench -fingerprint
  divergence [-k 5] [-events-base j.jsonl] [-events-cur j.jsonl] <base> <cur>
      compare two runs' fingerprint checkpoint streams (metrics JSONL),
      binary-search to the first divergent epoch, and — given -events-*
      journals from -fingerprint-journal re-runs — print the first
      divergent event with a ±k context window and per-plane
      attribution; exit 0 match, 1 diverged, 2 error
  export-trace [-o trace.json] <metrics.jsonl>
      convert a metrics stream into Chrome Trace Event JSON viewable in
      Perfetto (ui.perfetto.dev): planes as processes, flows as tracks,
      span components as slices, faults and packets as instants
  diff [-threshold 0.1] [-gate-wall] <base> <cur>
      per-metric deltas between two runs; exit 1 if a gated metric
      worsens beyond the threshold
  gate [-dir .] [-threshold 0.1] [-gobench bench.txt] <run>
      diff <run> against the newest BENCH_*.json baseline in -dir;
      exit 1 on regression
  baseline [-dir .] <run>
      write <run> into the trajectory as BENCH_<stamp>.json

runs are RunSummary JSON (pnetbench -report) or metrics JSONL
(pnetbench -metrics), auto-detected.
`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "summary":
		return runSummary(rest, stdout, stderr)
	case "attribution":
		return runAttribution(rest, stdout, stderr)
	case "profile":
		return runProfile(rest, stdout, stderr)
	case "fingerprint":
		return runFingerprint(rest, stdout, stderr)
	case "divergence":
		return runDivergence(rest, stdout, stderr)
	case "export-trace":
		return runExportTrace(rest, stdout, stderr)
	case "diff":
		return runDiff(rest, stdout, stderr)
	case "gate":
		return runGate(rest, stdout, stderr)
	case "baseline":
		return runBaseline(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "pnetstat: unknown command %q\n\n%s", cmd, usage)
		return 2
	}
}

// loadRun reads a run file, tolerating nothing the library does not;
// errors go to stderr with exit code 2 semantics handled by callers.
func loadRun(path, gobench string, stderr io.Writer) (report.RunSummary, bool) {
	s, err := report.LoadRun(path, report.Meta{})
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return report.RunSummary{}, false
	}
	if gobench != "" {
		f, err := os.Open(gobench)
		if err != nil {
			fmt.Fprintf(stderr, "pnetstat: %v\n", err)
			return report.RunSummary{}, false
		}
		defer f.Close()
		gb, err := report.ParseGoBench(f)
		if err != nil {
			fmt.Fprintf(stderr, "pnetstat: %s: %v\n", gobench, err)
			return report.RunSummary{}, false
		}
		if len(gb) == 0 {
			fmt.Fprintf(stderr, "pnetstat: %s: no benchmark results found\n", gobench)
			return report.RunSummary{}, false
		}
		s.GoBench = mergeGoBench(s.GoBench, gb)
	}
	return s, true
}

// mergeGoBench overlays fresh results onto existing ones by name,
// appending names not seen before, preserving order.
func mergeGoBench(old, fresh []report.GoBench) []report.GoBench {
	out := append([]report.GoBench(nil), old...)
	for _, g := range fresh {
		replaced := false
		for i := range out {
			if out[i].Name == g.Name {
				out[i] = g
				replaced = true
				break
			}
		}
		if !replaced {
			out = append(out, g)
		}
	}
	return out
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the summary as JSON instead of text")
	out := fs.String("o", "", "also write the summary JSON to this file")
	gobench := fs.String("gobench", "", "merge `go test -bench` output from this file")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: pnetstat summary [-json] [-o out.json] [-gobench bench.txt] <run>")
		return 2
	}
	s, ok := loadRun(fs.Arg(0), *gobench, stderr)
	if !ok {
		return 2
	}
	if s.Created == "" {
		s.Created = time.Now().UTC().Format(time.RFC3339)
	}
	if *out != "" {
		b, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "pnetstat: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "pnetstat: %v\n", err)
			return 2
		}
	}
	if *asJSON {
		b, _ := json.MarshalIndent(s, "", "  ")
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprint(stdout, s.String())
	}
	return 0
}

func runAttribution(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("attribution", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the attribution summary as JSON instead of text")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: pnetstat attribution [-json] <run>")
		return 2
	}
	s, ok := loadRun(fs.Arg(0), "", stderr)
	if !ok {
		return 2
	}
	if *asJSON {
		b, _ := json.MarshalIndent(s.Attribution, "", "  ")
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprint(stdout, s.AttributionString())
	}
	return 0
}

func runProfile(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the profile summary as JSON instead of text")
	serial := fs.String("serial", "", "serial baseline run: print the sharded run's ACHIEVED speedup (baseline run_wall_s / this run's) next to the predicted bounds")
	minSpeedup := fs.Float64("min-speedup", 0, "exit 1 if the achieved speedup falls below this (requires -serial)")
	minBound := fs.Float64("min-bound", 0, "exit 1 if the predicted critical-path event bound falls below this")
	emit := fs.String("emit-placement", "", "export the measured per-host / per-plane occupancy as a placement JSON for pnetbench -placement")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: pnetstat profile [-json] [-min-bound X] [-emit-placement p.json] [-serial base.json [-min-speedup X]] <run>")
		return 2
	}
	if *minSpeedup > 0 && *serial == "" {
		fmt.Fprintln(stderr, "pnetstat: -min-speedup requires -serial")
		return 2
	}
	s, ok := loadRun(fs.Arg(0), "", stderr)
	if !ok {
		return 2
	}
	if *emit != "" {
		if code := emitPlacement(*emit, s, stdout, stderr); code != 0 {
			return code
		}
	}
	if *asJSON {
		b, _ := json.MarshalIndent(s.Profile, "", "  ")
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprint(stdout, s.ProfileString())
	}
	if *minBound > 0 {
		if s.Profile == nil || s.Profile.SpeedupEventBound <= 0 {
			fmt.Fprintln(stderr, "pnetstat: -min-bound needs a run with profile speedup bounds (pnetbench -spans)")
			return 2
		}
		if s.Profile.SpeedupEventBound < *minBound {
			fmt.Fprintf(stderr, "pnetstat: predicted event bound %.2fx below required %.2fx\n",
				s.Profile.SpeedupEventBound, *minBound)
			return 1
		}
	}
	if *serial == "" {
		return 0
	}

	// Predicted-vs-achieved: the profile's Amdahl / critical-path numbers
	// say what plane sharding COULD buy; the ratio of engine wall times
	// between a serial baseline and this (sharded) run says what it DID.
	base, ok := loadRun(*serial, "", stderr)
	if !ok {
		return 2
	}
	if base.Engine.RunWallSec <= 0 || s.Engine.RunWallSec <= 0 {
		fmt.Fprintf(stderr, "pnetstat: achieved speedup needs run_wall_s in both runs (base %.3fs, run %.3fs) — engine wall is only recorded by runs of this repo version\n",
			base.Engine.RunWallSec, s.Engine.RunWallSec)
		return 2
	}
	achieved := base.Engine.RunWallSec / s.Engine.RunWallSec
	fmt.Fprintf(stdout, "achieved speedup: %.2fx (serial %.3fs / this run %.3fs", achieved,
		base.Engine.RunWallSec, s.Engine.RunWallSec)
	if s.Shards > 1 {
		fmt.Fprintf(stdout, ", shards=%d", s.Shards)
	}
	if s.HostShards > 1 {
		fmt.Fprintf(stdout, ", host-shards=%d", s.HostShards)
	}
	fmt.Fprint(stdout, ")")
	if p := s.Profile; p != nil && p.SpeedupEventBound > 0 {
		fmt.Fprintf(stdout, " — predicted %.2fx amdahl, %.2fx critical-path (events)",
			p.SpeedupAmdahl, p.SpeedupEventBound)
	}
	fmt.Fprintln(stdout)
	if *minSpeedup > 0 && achieved < *minSpeedup {
		fmt.Fprintf(stderr, "pnetstat: achieved speedup %.2fx below required %.2fx\n", achieved, *minSpeedup)
		return 1
	}
	return 0
}

// emitPlacement exports a profiled run's measured occupancy as a
// placement file: host weights from the per-host delivery counts, plane
// weights from the per-plane event counts, and the run's partition
// widths as headers so a replay at different widths fails loudly instead
// of silently reusing splits measured for another partitioning.
func emitPlacement(path string, s report.RunSummary, stdout, stderr io.Writer) int {
	if s.Profile == nil || len(s.Profile.HostLoads) == 0 {
		fmt.Fprintln(stderr, "pnetstat: -emit-placement needs a run with measured host loads — rerun pnetbench with -spans (host loads are only recorded by profiled runs of this repo version)")
		return 2
	}
	pf := &pdes.PlacementFile{
		Version:    pdes.PlacementVersion,
		HostShards: s.HostShards,
		Shards:     s.Shards,
	}
	for _, h := range s.Profile.HostLoads {
		pf.Hosts = append(pf.Hosts, pdes.HostWeight{Host: h.Host, Weight: h.Events})
	}
	for _, p := range s.Profile.Planes {
		pf.Planes = append(pf.Planes, pdes.PlaneWeight{Plane: p.Plane, Weight: p.Events})
	}
	if err := pdes.WritePlacementFile(path, pf); err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s (%d hosts, %d planes)\n", path, len(pf.Hosts), len(pf.Planes))
	return 0
}

func runFingerprint(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fingerprint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the fingerprint summary as JSON instead of text")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: pnetstat fingerprint [-json] <run>")
		return 2
	}
	s, ok := loadRun(fs.Arg(0), "", stderr)
	if !ok {
		return 2
	}
	if s.Fingerprint == nil {
		fmt.Fprintf(stderr, "pnetstat: %s has no fingerprint records — rerun with pnetbench -fingerprint\n", fs.Arg(0))
		return 2
	}
	if *asJSON {
		b, _ := json.MarshalIndent(s.Fingerprint, "", "  ")
		fmt.Fprintln(stdout, string(b))
		return 0
	}
	fp := s.Fingerprint
	fmt.Fprintf(stdout, "fingerprint: %d engine(s), %d events, epoch %d\n", fp.Engines, fp.Events, fp.EpochEvents)
	fmt.Fprintf(stdout, "global %s\n", fp.Global)
	fmt.Fprintf(stdout, "host   %s\n", fp.Host)
	for _, p := range fp.Planes {
		fmt.Fprintf(stdout, "plane %d %s\n", p.Plane, p.Hash)
	}
	return 0
}

func runDivergence(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("divergence", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 5, "context window: events printed either side of the divergence")
	evBase := fs.String("events-base", "", "fingerprint journal JSONL for the base run (pnetbench -fingerprint-journal)")
	evCur := fs.String("events-cur", "", "fingerprint journal JSONL for the current run")
	if fs.Parse(args) != nil || fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: pnetstat divergence [-k 5] [-events-base j.jsonl] [-events-cur j.jsonl] <base> <cur>")
		return 2
	}
	base, err := report.LoadStream(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	cur, err := report.LoadStream(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	// Journals may live in the metrics streams themselves or in separate
	// files from a -fingerprint-journal re-run; fold the latter in.
	for _, j := range []struct {
		path string
		st   *report.Stream
	}{{*evBase, base}, {*evCur, cur}} {
		if j.path == "" {
			continue
		}
		js, err := report.LoadStream(j.path)
		if err != nil {
			fmt.Fprintf(stderr, "pnetstat: %v\n", err)
			return 2
		}
		j.st.FPEvents = append(j.st.FPEvents, js.FPEvents...)
	}
	d, err := report.FindDivergence(base, cur)
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	if !d.Match && d.Note == "" && (len(base.FPEvents) > 0 || len(cur.FPEvents) > 0) {
		if err := d.LocalizeEvents(base, cur, *k); err != nil {
			fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		}
	}
	fmt.Fprint(stdout, d.String())
	if d.Event != nil {
		divergenceContext(stdout, d, base, cur)
	}
	if !d.Match {
		return 1
	}
	return 0
}

// divergenceContext prints the span and flight-recorder context around
// a localized divergence, when the streams carry it: the divergent
// event's flow with its FCT decomposition (a -spans run), and the
// diverging planes' event-loop bins (the flight recorder). Both tell
// the debugger what the guilty event was doing, not just that it moved.
func divergenceContext(w io.Writer, d *report.Divergence, base, cur *report.Stream) {
	sides := []struct {
		name string
		st   *report.Stream
		flow int64
	}{{"base", base, d.Event.Base.Flow}, {"cur", cur, d.Event.Cur.Flow}}
	for _, s := range sides {
		if s.flow <= 0 {
			continue
		}
		for _, f := range s.st.Flows {
			if f.ID != s.flow {
				continue
			}
			fmt.Fprintf(w, "  flow %d (%s): %s %d bytes fct=%.3gs", f.ID, s.name, f.Transport, f.Bytes, f.FCT)
			for _, sp := range f.Spans {
				fmt.Fprintf(w, " %s[p%d]=%dps", sp.Component, sp.Plane, sp.Ps)
			}
			fmt.Fprintln(w)
			break
		}
	}
	for _, s := range sides[:1] { // bins are per-run; base suffices for orientation
		for _, p := range s.st.Profiles {
			for _, pl := range d.Planes {
				if p.Plane == pl {
					fmt.Fprintf(w, "  flight recorder (%s): plane %d %s ×%d\n", s.name, p.Plane, p.Kind, p.Events)
				}
			}
		}
	}
}

func runExportTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("export-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the trace JSON to this file instead of stdout")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: pnetstat export-trace [-o trace.json] <metrics.jsonl>")
		return 2
	}
	st, err := report.LoadStream(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	tr, err := report.ExportTrace(st)
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	b, err := json.Marshal(tr)
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	b = append(b, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintf(stderr, "pnetstat: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s (%d events)\n", *out, len(tr.TraceEvents))
		return 0
	}
	fmt.Fprint(stdout, string(b))
	return 0
}

func diffThresholds(rel float64, gateWall bool) report.Thresholds {
	return report.Thresholds{Rel: rel, GateWall: gateWall}
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rel := fs.Float64("threshold", 0, "relative worsening allowed on gated metrics (default 0.10)")
	gateWall := fs.Bool("gate-wall", false, "also gate wall-clock metrics (same-machine comparisons only)")
	if fs.Parse(args) != nil || fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: pnetstat diff [-threshold 0.1] [-gate-wall] <base> <cur>")
		return 2
	}
	base, ok := loadRun(fs.Arg(0), "", stderr)
	if !ok {
		return 2
	}
	cur, ok := loadRun(fs.Arg(1), "", stderr)
	if !ok {
		return 2
	}
	d := report.Diff(base, cur, diffThresholds(*rel, *gateWall))
	fmt.Fprint(stdout, d.String())
	if !d.Pass {
		return 1
	}
	return 0
}

func runGate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding the BENCH_*.json trajectory")
	rel := fs.Float64("threshold", 0, "relative worsening allowed on gated metrics (default 0.10)")
	gateWall := fs.Bool("gate-wall", false, "also gate wall-clock metrics (same-machine comparisons only)")
	gobench := fs.String("gobench", "", "merge `go test -bench` output from this file into the run")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: pnetstat gate [-dir .] [-threshold 0.1] [-gobench bench.txt] <run>")
		return 2
	}
	cur, ok := loadRun(fs.Arg(0), *gobench, stderr)
	if !ok {
		return 2
	}
	basePath, base, err := report.LatestBench(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "gate: %s vs baseline %s\n", fs.Arg(0), basePath)
	d := report.Diff(base, cur, diffThresholds(*rel, *gateWall))
	fmt.Fprint(stdout, d.String())
	if !d.Pass {
		return 1
	}
	return 0
}

func runBaseline(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("baseline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding the BENCH_*.json trajectory")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: pnetstat baseline [-dir .] <run>")
		return 2
	}
	s, ok := loadRun(fs.Arg(0), "", stderr)
	if !ok {
		return 2
	}
	if s.Created == "" {
		s.Created = time.Now().UTC().Format(time.RFC3339)
	}
	path, err := report.WriteBench(*dir, s)
	if err != nil {
		fmt.Fprintf(stderr, "pnetstat: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return 0
}
