package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pnet/internal/report"
)

// writeRun materializes a summary JSON for the CLI to consume.
func writeRun(t *testing.T, dir, name string, s report.RunSummary) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testSummary() report.RunSummary {
	return report.RunSummary{
		SchemaVersion: report.SchemaVersion,
		Created:       "2026-08-05T00:00:00Z",
		Exp:           "fig9",
		Scale:         "small",
		Seed:          1,
		Flows:         100,
		FlowBytes:     1_000_000,
		FCT:           report.Dist{Count: 100, Mean: 0.02, Min: 0.001, P50: 0.01, P99: 0.05, P999: 0.06, Max: 0.07},
		GoodputBps:    1e9,
		PlaneShares: []report.PlaneShare{
			{Plane: 0, Bytes: 600_000, Share: 0.6},
			{Plane: 1, Bytes: 400_000, Share: 0.4},
		},
		PlaneImbalance: 1.2,
		Solver:         report.SolverSummary{Calls: 3, Phases: 30, Iterations: 900, WallSec: 0.5},
		Engine:         report.EngineSummary{Networks: 2, Events: 10000, WallSec: 0.1, EventsPerSec: 1e5, SimSec: 0.008},
	}
}

func TestSummaryCommand(t *testing.T) {
	dir := t.TempDir()
	run := writeRun(t, dir, "r.json", testSummary())

	var out, errb bytes.Buffer
	if code := run2(t, []string{"summary", run}, &out, &errb); code != 0 {
		t.Fatalf("summary exited %d: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{"p50=10ms", "p99=50ms", "p999=60ms", "0=60.0%", "1=40.0%", "wall 0.500s"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary output missing %q:\n%s", want, text)
		}
	}

	// -json round-trips.
	out.Reset()
	if code := run2(t, []string{"summary", "-json", run}, &out, &errb); code != 0 {
		t.Fatalf("summary -json exited %d", code)
	}
	var s report.RunSummary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary -json output not JSON: %v", err)
	}
	if s.FCT.P999 != 0.06 {
		t.Errorf("p999 = %v", s.FCT.P999)
	}
}

func run2(t *testing.T, args []string, stdout, stderr *bytes.Buffer) int {
	t.Helper()
	return run(args, stdout, stderr)
}

func TestGateCommand(t *testing.T) {
	dir := t.TempDir()
	base := testSummary()
	if _, err := report.WriteBench(dir, base); err != nil {
		t.Fatal(err)
	}

	// Unchanged run passes the gate.
	same := writeRun(t, dir, "same.json", testSummary())
	var out, errb bytes.Buffer
	if code := run2(t, []string{"gate", "-dir", dir, same}, &out, &errb); code != 0 {
		t.Fatalf("gate on identical run exited %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("gate output:\n%s", out.String())
	}

	// p99 FCT inflated beyond threshold exits non-zero — the acceptance
	// scenario.
	bad := testSummary()
	bad.FCT.P99 *= 1.25
	badPath := writeRun(t, dir, "bad.json", bad)
	out.Reset()
	if code := run2(t, []string{"gate", "-dir", dir, badPath}, &out, &errb); code != 1 {
		t.Fatalf("gate on inflated p99 exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "fct_s.p99") || !strings.Contains(out.String(), "FAIL") {
		t.Errorf("gate failure output:\n%s", out.String())
	}

	// A generous threshold lets the same run through.
	out.Reset()
	if code := run2(t, []string{"gate", "-dir", dir, "-threshold", "0.5", badPath}, &out, &errb); code != 0 {
		t.Fatalf("gate with 50%% threshold exited %d", code)
	}

	// No baseline at all is a usage error, not a pass.
	empty := t.TempDir()
	if code := run2(t, []string{"gate", "-dir", empty, same}, &out, &errb); code != 2 {
		t.Fatalf("gate without baseline exited %d, want 2", code)
	}
}

func TestDiffCommand(t *testing.T) {
	dir := t.TempDir()
	a := writeRun(t, dir, "a.json", testSummary())
	worse := testSummary()
	worse.GoodputBps *= 0.7
	b := writeRun(t, dir, "b.json", worse)

	var out, errb bytes.Buffer
	if code := run2(t, []string{"diff", a, a}, &out, &errb); code != 0 {
		t.Fatalf("self-diff exited %d", code)
	}
	out.Reset()
	if code := run2(t, []string{"diff", a, b}, &out, &errb); code != 1 {
		t.Fatalf("diff with 30%% goodput loss exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "goodput_bps") {
		t.Errorf("diff output:\n%s", out.String())
	}
}

func TestBaselineCommandAndGoBenchMerge(t *testing.T) {
	dir := t.TempDir()
	run := writeRun(t, dir, "r.json", testSummary())
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(
		"BenchmarkEngineEventLoop-8 1000000 120.5 ns/op 0 B/op 0 allocs/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	merged := filepath.Join(dir, "merged.json")
	var out, errb bytes.Buffer
	if code := run2(t, []string{"summary", "-gobench", benchTxt, "-o", merged, run}, &out, &errb); code != 0 {
		t.Fatalf("summary -gobench exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "BenchmarkEngineEventLoop") {
		t.Errorf("merged summary output:\n%s", out.String())
	}

	tdir := t.TempDir()
	out.Reset()
	if code := run2(t, []string{"baseline", "-dir", tdir, merged}, &out, &errb); code != 0 {
		t.Fatalf("baseline exited %d: %s", code, errb.String())
	}
	path, s, err := report.LatestBench(tdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.GoBench) != 1 || s.GoBench[0].NsPerOp != 120.5 {
		t.Errorf("baseline %s gobench = %+v", path, s.GoBench)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run2(t, nil, &out, &errb); code != 2 {
		t.Errorf("no args exited %d", code)
	}
	if code := run2(t, []string{"bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown command exited %d", code)
	}
	if code := run2(t, []string{"summary"}, &out, &errb); code != 2 {
		t.Errorf("summary without file exited %d", code)
	}
	if code := run2(t, []string{"help"}, &out, &errb); code != 0 {
		t.Errorf("help exited %d", code)
	}
}
